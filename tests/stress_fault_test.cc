// Seeded stress/fuzz layer (ctest label: stress): drives the kv, fs and
// sqlite application stacks through randomized interleavings on the
// simulator's virtual-time executor with fault points armed, and asserts
// the crash-safety invariants after every event:
//
//   - no SB_CHECK death: every injected fault surfaces as a non-OK Status;
//   - no client is left in a server's EPT view (active_index == 0);
//   - no leaked shared-buffer slices or calls (InFlightCalls() == 0);
//   - the bridge's structural invariants hold (CheckInvariants());
//   - the same seed replays to a byte-identical trace-ring dump.
//
// Reproduce a failing run (see TESTING.md):
//
//   SB_STRESS_SEED=<seed> SB_STRESS_EVENTS=<n> ./tests/stress_fault_test
//
// SB_STRESS_ARTIFACT_DIR=<dir> additionally writes the failing seed's
// Chrome-trace replay to <dir>/stress_seed_<seed>.trace.json.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/kv.h"
#include "src/apps/sqlite_stack.h"
#include "src/base/faultpoint.h"
#include "src/base/rng.h"
#include "src/base/telemetry/trace.h"
#include "src/fs/block_device.h"
#include "src/fs/fs_rpc.h"
#include "src/fs/xv6fs.h"
#include "src/sim/executor.h"
#include "src/skybridge/skybridge.h"
#include "src/vmm/rootkernel.h"

namespace skybridge {
namespace {

using mk::CallEnv;
using mk::Message;
using sb::ErrorCode;
using sb::kGiB;

uint64_t EnvOrDefault(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  return std::strtoull(value, nullptr, 0);
}

// Every outcome a fault-armed call may legally produce. Anything else —
// and in particular a process abort — is a recovery bug.
bool IsAllowedOutcome(const sb::Status& status) {
  switch (status.code()) {
    case ErrorCode::kOk:
    case ErrorCode::kAborted:           // Handler crash, rootkernel-mediated.
    case ErrorCode::kOutOfRange:        // Reply rejected at the return gate.
    case ErrorCode::kUnavailable:       // Stale-slot retries exhausted.
    case ErrorCode::kPermissionDenied:  // Binding revoked.
    case ErrorCode::kInternal:          // Fault propagated through a stack.
    case ErrorCode::kNotFound:          // Plain application-level miss.
      return true;
    default:
      return false;
  }
}

// Block transport straight to a RamDisk: the stress target is the SkyBridge
// RPC hop in front of the fs, not block-device charging.
fsys::BlockTransport RamTransport(fsys::RamDisk* disk) {
  return [disk](const mk::Message& msg) -> sb::StatusOr<mk::Message> {
    uint32_t block = 0;
    std::memcpy(&block, msg.data.data(), 4);
    if (msg.tag == fsys::kBlockRead) {
      mk::Message reply(1);
      reply.data.resize(fsys::kBlockSize);
      SB_RETURN_IF_ERROR(disk->Read(nullptr, block, reply.data));
      return reply;
    }
    SB_RETURN_IF_ERROR(disk->Write(
        nullptr, block, std::span<const uint8_t>(msg.data.data() + 4, fsys::kBlockSize)));
    return mk::Message(1);
  };
}

// The full SkyBridge fault catalog plus the rootkernel registration fault.
const char* const kCatalog[] = {kFaultPreVmfunc,      kFaultHandlerCrash,
                                kFaultReplyCorrupt,   kFaultRevokeInflight,
                                kFaultSlotInstall,    vmm::kFaultBindingEptRefused,
                                kFaultExecScan};

struct ScenarioResult {
  std::string trace_json;  // Chrome-trace replay of the whole run.
  std::string counters;    // Deterministic counter fingerprint.
  std::map<std::string, uint64_t> fires;  // Per-point fire totals.
  std::map<std::string, uint64_t> crossing_enters;  // Per-backend crossings.
};

// One complete stress scenario on a fresh world. Deterministic: everything
// derives from `seed` and `events`; rerunning must reproduce the identical
// trace ring and counters.
class StressScenario {
 public:
  StressScenario(uint64_t seed, uint64_t events) : seed_(seed), events_(events) {}

  ScenarioResult Run() {
    sb::fault::DisarmAll();
    sb::telemetry::TraceClear();
    sb::telemetry::SetTraceEnabled(true);

    BuildWorld();
    SweepCatalog();
    RandomizedInterleavings();
    SlotThrashPhase();
    SqlitePhase();

    sb::fault::DisarmAll();
    sb::telemetry::SetTraceEnabled(false);

    ScenarioResult result;
    result.trace_json = sb::telemetry::TraceChromeJson(sb::telemetry::TraceSnapshot());
    result.counters = CounterFingerprint();
    result.fires = fires_;
    for (const CrossingBackendKind backend :
         {CrossingBackendKind::kEptp, CrossingBackendKind::kMpk,
          CrossingBackendKind::kSyscall}) {
      const std::string name = CrossingBackendName(backend);
      result.crossing_enters[name] =
          machine_->telemetry()
              .GetCounter("skybridge.crossing." + name + ".enters")
              .Value();
    }
    sb::telemetry::TraceClear();
    return result;
  }

 private:
  void BuildWorld() {
    hw::MachineConfig mc;
    mc.num_cores = 4;
    mc.ram_bytes = 4 * kGiB;
    machine_ = std::make_unique<hw::Machine>(mc);
    kernel_ = std::make_unique<mk::Kernel>(*machine_, mk::Sel4Profile());
    SB_CHECK(kernel_->Boot().ok());
    // The backend mix is pinned explicitly per server below; the config
    // default (kv pipeline, sweep helpers) stays kEptp regardless of the
    // SB_CROSSING_BACKEND matrix so the fault sweep hits the slot paths.
    SkyBridgeConfig config;
    config.crossing_backend = CrossingBackendKind::kEptp;
    sky_ = std::make_unique<SkyBridge>(*kernel_, config);

    // Echo server + client (cores 1 and 2 carry its threads; core 0 belongs
    // to the kv pipeline below). The server population is deliberately
    // mixed-backend (DESIGN.md section 16): echo pins EPTP, the fs hop runs
    // over MPK, and a second echo server takes the kernel fastpath, so every
    // stress phase exercises all three crossing paths side by side.
    echo_server_ = kernel_->CreateProcess("stress-echo-server").value();
    echo_sid_ = sky_->RegisterServer(echo_server_, 8,
                                     [](CallEnv& env) { return env.request; },
                                     CrossingBackendKind::kEptp)
                    .value();
    sys_server_ = kernel_->CreateProcess("stress-sys-server").value();
    sys_sid_ = sky_->RegisterServer(sys_server_, 8,
                                    [](CallEnv& env) { return env.request; },
                                    CrossingBackendKind::kSyscall)
                   .value();

    // xv6fs behind a SkyBridge RPC hop, crossing via MPK.
    disk_ = std::make_unique<fsys::RamDisk>(4096);
    fs_ = std::make_unique<fsys::Xv6Fs>(RamTransport(disk_.get()));
    SB_CHECK(fs_->Mkfs().ok());
    SB_CHECK(fs_->Mount().ok());
    fs_server_ = kernel_->CreateProcess("stress-fs-server").value();
    fs_sid_ = sky_->RegisterServer(fs_server_, 8, fsys::MakeFsHandler(fs_.get()),
                                   CrossingBackendKind::kMpk)
                  .value();

    client_ = kernel_->CreateProcess("stress-client").value();
    SB_CHECK(sky_->RegisterClient(client_, echo_sid_).ok());
    SB_CHECK(sky_->RegisterClient(client_, sys_sid_).ok());
    SB_CHECK(sky_->RegisterClient(client_, fs_sid_).ok());
    echo_thread_ = client_->AddThread(1);
    fs_thread_ = client_->AddThread(2);
    batch_thread_ = client_->AddThread(3);
    SB_CHECK(kernel_->ContextSwitchTo(machine_->core(1), client_).ok());
    SB_CHECK(kernel_->ContextSwitchTo(machine_->core(2), client_).ok());
    SB_CHECK(kernel_->ContextSwitchTo(machine_->core(3), client_).ok());

    // The Figure 1 kv pipeline (client -> encrypt -> kv store), SkyBridge
    // wiring, client on core 0.
    kv_ = std::make_unique<apps::KvPipeline>(*kernel_, sky_.get(), apps::KvWiring::kSkyBridge);
    SB_CHECK(kv_->Setup().ok());
  }

  void ExpectHealthy(const char* where) {
    const sb::Status invariants = sky_->CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << where << ": " << invariants.ToString();
    EXPECT_EQ(sky_->InFlightCalls(), 0u) << where;
  }

  void RecordFires(const char* point) { fires_[point] += sb::fault::StatsFor(point).fires; }

  // Phase 1: deterministically walk the whole catalog — every registered
  // fault point fires at least once, recovery observed each time.
  void SweepCatalog() {
    auto call = [&](uint64_t tag) { return sky_->DirectServerCall(echo_thread_, echo_sid_, Message(tag)); };
    ASSERT_TRUE(call(1).ok());

    auto arm_first_hit = [&](const char* point) {
      sb::fault::DisarmAll();
      sb::fault::SetSeed(seed_);
      sb::fault::FaultSpec spec;
      spec.nth_hit = 1;
      sb::fault::Arm(point, spec);
    };

    // Stale EPTP slot: recovered in-line, the caller never notices.
    arm_first_hit(kFaultPreVmfunc);
    auto rearmed = call(2);
    EXPECT_TRUE(rearmed.ok()) << rearmed.status().ToString();
    RecordFires(kFaultPreVmfunc);
    ExpectHealthy("pre_vmfunc");

    // Server thread crash: rootkernel-mediated abort.
    arm_first_hit(kFaultHandlerCrash);
    EXPECT_EQ(call(3).status().code(), ErrorCode::kAborted);
    RecordFires(kFaultHandlerCrash);
    ExpectHealthy("handler.crash");

    // Corrupt reply: rejected at the return gate.
    arm_first_hit(kFaultReplyCorrupt);
    EXPECT_EQ(call(4).status().code(), ErrorCode::kOutOfRange);
    RecordFires(kFaultReplyCorrupt);
    ExpectHealthy("reply_corrupt");

    // Revocation racing an in-flight call: the call drains, then the
    // binding refuses service until re-registered.
    arm_first_hit(kFaultRevokeInflight);
    EXPECT_TRUE(call(5).ok());
    RecordFires(kFaultRevokeInflight);
    sb::fault::DisarmAll();
    EXPECT_EQ(call(6).status().code(), ErrorCode::kPermissionDenied);
    ASSERT_TRUE(sky_->RegisterClient(client_, echo_sid_).ok());
    EXPECT_TRUE(call(7).ok());
    ExpectHealthy("revoke_inflight");

    // Rootkernel refuses the slot install on a slot fault: the call surfaces
    // Unavailable and the next attempt faults the slot in cleanly. Uses a
    // fresh server so the target EPT cannot already be resident (under
    // consolidation the echo server's shared EPT is installed on every core
    // by the earlier legs, which would skip the faultable install).
    auto* slot_server = kernel_->CreateProcess("stress-slot-server").value();
    const ServerId slot_sid =
        sky_->RegisterServer(slot_server, 4, [](CallEnv& env) { return env.request; }).value();
    auto* slot_client = kernel_->CreateProcess("stress-slot-client").value();
    SB_CHECK(sky_->RegisterClient(slot_client, slot_sid).ok());
    mk::Thread* slot_thread = slot_client->AddThread(1);
    SB_CHECK(kernel_->ContextSwitchTo(machine_->core(1), slot_client).ok());
    arm_first_hit(kFaultSlotInstall);
    EXPECT_EQ(sky_->DirectServerCall(slot_thread, slot_sid, Message(8)).status().code(),
              ErrorCode::kUnavailable);
    RecordFires(kFaultSlotInstall);
    sb::fault::DisarmAll();
    EXPECT_TRUE(sky_->DirectServerCall(slot_thread, slot_sid, Message(9)).ok());
    ExpectHealthy("slot_install");

    // Rootkernel refuses the binding EPT at registration time.
    arm_first_hit(vmm::kFaultBindingEptRefused);
    auto* late = kernel_->CreateProcess("stress-late-client").value();
    EXPECT_EQ(sky_->RegisterClient(late, echo_sid_).code(), ErrorCode::kInternal);
    RecordFires(vmm::kFaultBindingEptRefused);
    sb::fault::DisarmAll();
    EXPECT_TRUE(sky_->RegisterClient(late, echo_sid_).ok());
    ExpectHealthy("binding_ept_refused");

    ExecScanSweep();

    for (const char* point : kCatalog) {
      EXPECT_GE(fires_[point], 1u) << point << " never fired in the sweep";
    }
  }

  // Phase 1b: the staged-registration scan fault (DESIGN.md section 17),
  // driven in a dedicated lazy-mode world so the sweep exercises
  // rewrite-on-first-execute regardless of the SB_REGISTRATION_MODE matrix.
  void ExecScanSweep() {
    sb::fault::DisarmAll();
    sb::fault::SetSeed(seed_);
    hw::MachineConfig mc;
    mc.num_cores = 2;
    mc.ram_bytes = 2 * kGiB;
    hw::Machine machine(mc);
    mk::Kernel kernel(machine, mk::Sel4Profile());
    SB_CHECK(kernel.Boot().ok());
    SkyBridgeConfig config;
    config.crossing_backend = CrossingBackendKind::kEptp;
    config.registration_mode = RegistrationMode::kLazy;
    SkyBridge sky(kernel, config);
    auto* server = kernel.CreateProcess("lazy-server").value();
    const ServerId sid =
        sky.RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
    auto* client = kernel.CreateProcess("lazy-client").value();
    SB_CHECK(sky.RegisterClient(client, sid).ok());
    mk::Thread* thread = client->AddThread(0);
    SB_CHECK(kernel.ContextSwitchTo(machine.core(0), client).ok());

    // Persistent scan failure: the bounded retry drains and the first call
    // surfaces clean Unavailable; nothing is left executable or armed.
    sb::fault::Arm(kFaultExecScan);
    EXPECT_EQ(sky.DirectServerCall(thread, sid, Message(1)).status().code(),
              ErrorCode::kUnavailable);
    RecordFires(kFaultExecScan);
    const sb::Status invariants = sky.CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.ToString();
    EXPECT_EQ(sky.InFlightCalls(), 0u);

    // Fault cleared: the same call faults its pages in and succeeds.
    sb::fault::DisarmAll();
    EXPECT_TRUE(sky.DirectServerCall(thread, sid, Message(2)).ok());

    // A single transient fire is absorbed by the in-fault retry: the caller
    // never notices.
    auto* late = kernel.CreateProcess("lazy-late").value();
    SB_CHECK(sky.RegisterClient(late, sid).ok());
    mk::Thread* late_thread = late->AddThread(1);
    SB_CHECK(kernel.ContextSwitchTo(machine.core(1), late).ok());
    sb::fault::FaultSpec once;
    once.nth_hit = 1;
    sb::fault::Arm(kFaultExecScan, once);
    EXPECT_TRUE(sky.DirectServerCall(late_thread, sid, Message(3)).ok());
    RecordFires(kFaultExecScan);
    sb::fault::DisarmAll();

    const SkyBridgeStats lazy = sky.stats();
    lazy_exec_faults_ = lazy.exec_faults;
    lazy_rewrites_ = lazy.lazy_rewrites;
    lazy_cache_hits_ = lazy.cache_hits;
    lazy_cache_misses_ = lazy.cache_misses;
  }

  // Phase 2: three concurrent virtual-time threads (kv pipeline, echo,
  // xv6fs-over-SkyBridge) with the whole catalog armed at low probability.
  // Invariants are asserted after every event.
  void RandomizedInterleavings() {
    sb::fault::DisarmAll();
    sb::fault::SetSeed(seed_ ^ 0x9e3779b97f4a7c15ULL);
    auto arm = [](const char* point, double p) {
      sb::fault::FaultSpec spec;
      spec.probability = p;
      sb::fault::Arm(point, spec);
    };
    arm(kFaultPreVmfunc, 0.05);
    arm(kFaultHandlerCrash, 0.03);
    arm(kFaultReplyCorrupt, 0.03);
    arm(kFaultRevokeInflight, 0.01);

    auto after_event = [this](sim::SimThread& t, const sb::Status& status) {
      EXPECT_TRUE(IsAllowedOutcome(status)) << t.name() << ": " << status.ToString();
      // The caller is back in its own EPT view — never stranded in the
      // server's (slot indices are virtualized; compare EPT ids).
      mk::Process* current = kernel_->current_process(t.core().id());
      ASSERT_NE(current, nullptr) << t.name();
      EXPECT_EQ(kernel_->rootkernel()->ActiveEptId(t.core().id()), current->ept_id())
          << t.name();
      const sb::Status invariants = sky_->CheckInvariants();
      EXPECT_TRUE(invariants.ok()) << t.name() << ": " << invariants.ToString();
      EXPECT_EQ(sky_->InFlightCalls(), 0u) << t.name();
    };

    sim::Executor executor(*machine_);

    // kv: inserts and queries over a small key space. A revoked internal
    // binding degrades the pipeline to clean errors, never a death.
    executor.AddThread("kv", 0,
                       [this, after_event, rng = sb::Rng(seed_ ^ 0xa11ce5ULL),
                        n = uint64_t{0}](sim::SimThread& t) mutable {
                         const std::string key = "k" + std::to_string(rng.Below(16));
                         sb::Status status;
                         if (rng.OneIn(2)) {
                           status = kv_->Insert(key, std::string(1 + rng.Below(96), 'v'));
                         } else {
                           status = kv_->Query(key).status();
                         }
                         after_event(t, status);
                         return ++n < events_;
                       });

    // echo: variable payload sizes (registers, owned copies, and the
    // long-message shared-buffer path) over an alternating EPTP / kernel-
    // fastpath server pair; revives whichever binding got revoked.
    executor.AddThread("echo", 1,
                       [this, after_event, rng = sb::Rng(seed_ ^ 0xec40ULL),
                        n = uint64_t{0}](sim::SimThread& t) mutable {
                         const ServerId sid = rng.OneIn(3) ? sys_sid_ : echo_sid_;
                         Message msg(rng.Next());
                         const uint64_t size_class = rng.Below(3);
                         if (size_class > 0) {
                           msg.data.assign(size_class == 1 ? 16 : 2048,
                                           static_cast<uint8_t>(rng.Next()));
                         }
                         auto reply = sky_->DirectServerCall(echo_thread_, sid, msg);
                         if (reply.ok()) {
                           EXPECT_EQ(reply->tag, msg.tag);
                           EXPECT_EQ(reply->payload().size(), msg.data.size());
                         } else if (reply.status().code() == ErrorCode::kPermissionDenied) {
                           EXPECT_TRUE(sky_->RegisterClient(client_, sid).ok());
                         }
                         after_event(t, reply.status());
                         return ++n < events_;
                       });

    // fs: create/write/read/unlink over a handful of paths through the
    // RPC handler. Aborted ops never corrupt the fs (the handler either
    // never ran or its reply was dropped at the gate).
    executor.AddThread("fs", 2,
                       [this, after_event, rng = sb::Rng(seed_ ^ 0xf5f5ULL),
                        n = uint64_t{0}](sim::SimThread& t) mutable {
                         fsys::FsClient fs_client(
                             [this](const Message& msg) -> sb::StatusOr<Message> {
                               return sky_->DirectServerCall(fs_thread_, fs_sid_, msg);
                             });
                         const std::string path = "/s" + std::to_string(rng.Below(4));
                         sb::Status status;
                         switch (rng.Below(4)) {
                           case 0:
                             status = fs_client.Create(path).status();
                             break;
                           case 1: {
                             auto inum = fs_client.Open(path);
                             if (inum.ok()) {
                               std::vector<uint8_t> data(1 + rng.Below(512),
                                                         static_cast<uint8_t>(rng.Next()));
                               status = fs_client.Write(*inum, 0, data);
                             } else {
                               status = inum.status();
                             }
                             break;
                           }
                           case 2: {
                             auto inum = fs_client.Open(path);
                             status = inum.ok() ? fs_client.Read(*inum, 0, 512).status()
                                                : inum.status();
                             break;
                           }
                           default:
                             status = fs_client.Unlink(path);
                             break;
                         }
                         if (status.code() == ErrorCode::kPermissionDenied) {
                           EXPECT_TRUE(sky_->RegisterClient(client_, fs_sid_).ok());
                         }
                         after_event(t, status);
                         return ++n < events_;
                       });

    // batch: submission/completion rings over the echo server. A crash
    // mid-drain leaves the tail of the ring pending (reaped next event);
    // revocation fails the pending entries client-side without a crossing.
    executor.AddThread(
        "batch", 3,
        [this, after_event, rng = sb::Rng(seed_ ^ 0xba7cULL), n = uint64_t{0},
         outstanding = std::vector<uint64_t>{}](sim::SimThread& t) mutable {
          auto reregister = [&] {
            // A fresh binding means a fresh ring; old tokens are dead.
            outstanding.clear();
            EXPECT_TRUE(sky_->RegisterClient(client_, echo_sid_).ok());
          };
          const uint64_t depth = 1 + rng.Below(4);
          for (uint64_t i = 0; i < depth; ++i) {
            Message msg(rng.Next());
            if (rng.OneIn(2)) {
              msg.data.assign(1 + rng.Below(256), static_cast<uint8_t>(rng.Next()));
            }
            auto token = sky_->SubmitCall(batch_thread_, echo_sid_, msg);
            if (token.ok()) {
              outstanding.push_back(*token);
            } else if (token.status().code() == ErrorCode::kPermissionDenied) {
              reregister();
              break;
            }
          }
          const sb::Status flushed = sky_->FlushBatch(batch_thread_, echo_sid_);
          std::vector<uint64_t> still_pending;
          for (const uint64_t token : outstanding) {
            const sb::Status polled =
                sky_->PollCompletion(batch_thread_, echo_sid_, token).status();
            switch (polled.code()) {
              case ErrorCode::kOk:
              case ErrorCode::kAborted:           // Crash hit this entry.
              case ErrorCode::kOutOfRange:        // Reply rejected per-entry.
                break;
              case ErrorCode::kUnavailable:       // Untouched after a crash.
                still_pending.push_back(token);
                break;
              case ErrorCode::kPermissionDenied:  // Binding revoked.
                break;
              default:
                ADD_FAILURE() << "batch poll: " << polled.ToString();
                break;
            }
          }
          outstanding = std::move(still_pending);
          if (flushed.code() == ErrorCode::kPermissionDenied) {
            reregister();
          }
          after_event(t, flushed);
          return ++n < events_;
        });

    executor.RunToCompletion();
    for (const char* point : {kFaultPreVmfunc, kFaultHandlerCrash, kFaultReplyCorrupt,
                              kFaultRevokeInflight}) {
      RecordFires(point);
    }
    sb::fault::DisarmAll();
    ExpectHealthy("randomized");
  }

  // Phase 3: slot-thrash mix (DESIGN.md section 15) — far more bindings than
  // EPTP slots in a tight working set, with slot-install refusals and
  // pre-VMFUNC evictions injected. Every call must land an allowed outcome
  // and the per-core slot invariants must hold after every event. Runs in
  // its own world so the tiny working set does not perturb the main
  // scenario's counters.
  void SlotThrashPhase() {
    sb::fault::DisarmAll();
    hw::MachineConfig mc;
    mc.num_cores = 2;
    mc.ram_bytes = 2 * kGiB;
    hw::Machine machine(mc);
    mk::Kernel kernel(machine, mk::Sel4Profile());
    SB_CHECK(kernel.Boot().ok());
    SkyBridgeConfig config;
    config.eptp_working_set = 4;  // Base + 3 usable slots, 8 bindings: thrash.
    config.crossing_backend = CrossingBackendKind::kEptp;  // Slot mechanics.
    SkyBridge sky(kernel, config);

    constexpr int kServers = 8;
    std::vector<ServerId> sids;
    for (int i = 0; i < kServers; ++i) {
      auto* server = kernel.CreateProcess("thrash-server" + std::to_string(i)).value();
      sids.push_back(
          sky.RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value());
    }
    auto* client = kernel.CreateProcess("thrash-client").value();
    for (const ServerId sid : sids) {
      SB_CHECK(sky.RegisterClient(client, sid).ok());
    }
    mk::Thread* thread = client->AddThread(0);
    SB_CHECK(kernel.ContextSwitchTo(machine.core(0), client).ok());

    sb::fault::SetSeed(seed_ ^ 0x510f7a5bULL);
    sb::fault::FaultSpec spec;
    spec.probability = 0.05;
    sb::fault::Arm(kFaultSlotInstall, spec);
    sb::fault::Arm(kFaultPreVmfunc, spec);

    sb::Rng rng(seed_ ^ 0x7a5bULL);
    for (uint64_t i = 0; i < events_; ++i) {
      const ServerId sid = sids[rng.Below(kServers)];
      auto reply = sky.DirectServerCall(thread, sid, Message(i));
      EXPECT_TRUE(IsAllowedOutcome(reply.status())) << reply.status().ToString();
      if (reply.ok()) {
        EXPECT_EQ(reply->tag, i);
      }
      const sb::Status invariants = sky.CheckInvariants();
      EXPECT_TRUE(invariants.ok()) << invariants.ToString();
      EXPECT_EQ(sky.InFlightCalls(), 0u);
    }
    thrash_slot_faults_ = sky.stats().slot_faults;
    EXPECT_GT(thrash_slot_faults_, 0u);
    RecordFires(kFaultSlotInstall);
    RecordFires(kFaultPreVmfunc);
    sb::fault::DisarmAll();
  }

  // Phase 4: the Section 6.5 sqlite stack with only the transparent
  // stale-slot fault armed (the deeper stacks treat I/O failure as fatal by
  // design, so opaque faults stay off here). Every op must still succeed —
  // recovery is invisible to the application.
  void SqlitePhase() {
    apps::SqliteStackConfig config;
    config.transport = apps::StackTransport::kSkyBridge;
    config.preload_records = 16;
    auto stack = apps::SqliteStack::Create(config);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();

    sb::fault::DisarmAll();
    sb::fault::SetSeed(seed_ ^ 0x5eedULL);
    sb::fault::FaultSpec spec;
    spec.probability = 0.05;
    sb::fault::Arm(kFaultPreVmfunc, spec);

    sb::Rng rng(seed_ ^ 0xdbdbULL);
    std::vector<uint8_t> value(100, 0x5a);
    for (uint64_t i = 0; i < 16; ++i) {
      const uint64_t key = rng.Below(16);
      sb::Status status;
      switch (rng.Below(3)) {
        case 0:
          status = (*stack)->Insert(0, 1000 + key, value);
          break;
        case 1:
          status = (*stack)->Query(0, key).status();
          break;
        default:
          status = (*stack)->Update(0, key, value);
          break;
      }
      EXPECT_TRUE(status.ok() || status.code() == ErrorCode::kAlreadyExists ||
                  status.code() == ErrorCode::kNotFound)
          << status.ToString();
      const sb::Status invariants = (*stack)->sky()->CheckInvariants();
      EXPECT_TRUE(invariants.ok()) << invariants.ToString();
      EXPECT_EQ((*stack)->sky()->InFlightCalls(), 0u);
    }
    sqlite_stale_retries_ = (*stack)->sky()->stats().stale_slot_retries;
    RecordFires(kFaultPreVmfunc);
    sb::fault::DisarmAll();
  }

  // A printable fingerprint of everything that must replay identically.
  // Deliberately omits scan_threads: it is a widest-fan-out gauge whose
  // value depends on host scheduling inside the registration thread pool.
  std::string CounterFingerprint() const {
    const SkyBridgeStats s = sky_->stats();
    std::ostringstream out;
    out << "direct_calls=" << s.direct_calls << " long_calls=" << s.long_calls
        << " inplace_calls=" << s.inplace_calls << " rejected_calls=" << s.rejected_calls
        << " timeouts=" << s.timeouts << " eptp_misses=" << s.eptp_misses
        << " aborted_calls=" << s.aborted_calls << " gate_rejections=" << s.gate_rejections
        << " stale_slot_retries=" << s.stale_slot_retries
        << " revoked_rejections=" << s.revoked_rejections
        << " bindings_revoked=" << s.bindings_revoked
        << " batched_calls=" << s.batched_calls << " batch_flushes=" << s.batch_flushes
        << " batch_drain_rounds=" << s.batch_drain_rounds
        << " rootkernel_aborts=" << kernel_->rootkernel()->aborts()
        << " kv_inserts=" << kv_->stats().inserts << " kv_queries=" << kv_->stats().queries
        << " sqlite_stale_retries=" << sqlite_stale_retries_
        << " slot_faults=" << sky_->stats().slot_faults
        << " thrash_slot_faults=" << thrash_slot_faults_;
    for (const auto& [point, fires] : fires_) {
      out << " fires[" << point << "]=" << fires;
    }
    // Per-backend crossing totals: the mixed-backend population must replay
    // with the same number of crossings on every path.
    for (const CrossingBackendKind backend :
         {CrossingBackendKind::kEptp, CrossingBackendKind::kMpk,
          CrossingBackendKind::kSyscall}) {
      const std::string name = CrossingBackendName(backend);
      for (const char* leg : {"enters", "returns", "aborts"}) {
        out << " crossing[" << name << "." << leg << "]="
            << machine_->telemetry()
                   .GetCounter("skybridge.crossing." + name + "." + leg)
                   .Value();
      }
    }
    return out.str();
  }

  const uint64_t seed_;
  const uint64_t events_;

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<SkyBridge> sky_;
  std::unique_ptr<fsys::RamDisk> disk_;
  std::unique_ptr<fsys::Xv6Fs> fs_;
  std::unique_ptr<apps::KvPipeline> kv_;

  mk::Process* echo_server_ = nullptr;
  mk::Process* sys_server_ = nullptr;
  mk::Process* fs_server_ = nullptr;
  mk::Process* client_ = nullptr;
  mk::Thread* echo_thread_ = nullptr;
  mk::Thread* fs_thread_ = nullptr;
  mk::Thread* batch_thread_ = nullptr;
  ServerId echo_sid_ = 0;
  ServerId sys_sid_ = 0;
  ServerId fs_sid_ = 0;
  uint64_t sqlite_stale_retries_ = 0;
  uint64_t thrash_slot_faults_ = 0;
  uint64_t lazy_exec_faults_ = 0;
  uint64_t lazy_rewrites_ = 0;
  uint64_t lazy_cache_hits_ = 0;
  uint64_t lazy_cache_misses_ = 0;

  std::map<std::string, uint64_t> fires_;
};

class StressFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = EnvOrDefault("SB_STRESS_SEED", 0x5eedb41d6e55ULL);
    events_ = EnvOrDefault("SB_STRESS_EVENTS", 48);
    sb::fault::DisarmAll();
  }

  void TearDown() override {
    sb::fault::DisarmAll();
    sb::telemetry::SetTraceEnabled(false);
    // On failure, drop the replay artifact CI uploads (see ci.yml).
    const char* dir = std::getenv("SB_STRESS_ARTIFACT_DIR");
    if (HasFailure() && dir != nullptr && *dir != '\0' && !last_trace_.empty()) {
      const std::string path =
          std::string(dir) + "/stress_seed_" + std::to_string(seed_) + ".trace.json";
      std::ofstream out(path);
      out << last_trace_;
      std::ofstream counters(path + ".counters.txt");
      counters << last_counters_ << "\n";
    }
    sb::telemetry::TraceClear();
  }

  ScenarioResult RunScenario() {
    StressScenario scenario(seed_, events_);
    ScenarioResult result = scenario.Run();
    last_trace_ = result.trace_json;
    last_counters_ = result.counters;
    return result;
  }

  uint64_t seed_ = 0;
  uint64_t events_ = 0;
  std::string last_trace_;
  std::string last_counters_;
};

TEST_F(StressFaultTest, SeededRunSurvivesTheWholeCatalog) {
  const ScenarioResult result = RunScenario();
  // Every registered fault point fired at least once across the run.
  for (const char* point : kCatalog) {
    auto it = result.fires.find(point);
    ASSERT_NE(it, result.fires.end()) << point;
    EXPECT_GE(it->second, 1u) << point;
  }
  // The mixed-backend population actually crossed on all three paths.
  for (const char* backend : {"eptp", "mpk", "syscall"}) {
    auto it = result.crossing_enters.find(backend);
    ASSERT_NE(it, result.crossing_enters.end()) << backend;
    EXPECT_GE(it->second, 1u) << backend << " never crossed in the stress mix";
  }
  EXPECT_FALSE(result.trace_json.empty());
}

TEST_F(StressFaultTest, SameSeedReplaysByteIdenticalTrace) {
  const ScenarioResult first = RunScenario();
  const ScenarioResult second = RunScenario();
  // The trace ring is the flight recorder: byte-identical replay is what
  // makes a failing seed debuggable after the fact.
  EXPECT_EQ(first.trace_json, second.trace_json);
  EXPECT_EQ(first.counters, second.counters);
  EXPECT_EQ(first.fires, second.fires);
  EXPECT_EQ(first.crossing_enters, second.crossing_enters);
}

TEST_F(StressFaultTest, DifferentSeedsTakeDifferentPaths) {
  StressScenario a(seed_, events_);
  StressScenario b(seed_ + 1, events_);
  const ScenarioResult ra = a.Run();
  const ScenarioResult rb = b.Run();
  last_trace_ = ra.trace_json;
  last_counters_ = ra.counters;
  // Not a strict requirement of the fault model, but if two seeds ever
  // produce the same trace the randomization is broken.
  EXPECT_NE(ra.trace_json, rb.trace_json);
}

}  // namespace
}  // namespace skybridge
