// Hardware-model tests: physical memory, caches, TLB tagging, EPT walks,
// guest paging and — most importantly — the end-to-end CR3-remap behaviour
// that SkyBridge's VMFUNC address-space switch relies on.

#include <gtest/gtest.h>

#include "src/base/logging.h"
#include "src/hw/cache.h"
#include "src/hw/ept.h"
#include "src/hw/machine.h"
#include "src/hw/paging.h"
#include "src/hw/phys_mem.h"
#include "src/hw/tlb.h"

namespace hw {
namespace {

using sb::kGiB;
using sb::kMiB;
using sb::kPageSize;

TEST(HostPhysMem, ReadWriteRoundTrip) {
  HostPhysMem mem(16 * kMiB);
  mem.WriteU64(0x1000, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(mem.ReadU64(0x1000), 0xdeadbeefcafef00dULL);
}

TEST(HostPhysMem, UntouchedReadsZero) {
  HostPhysMem mem(16 * kMiB);
  EXPECT_EQ(mem.ReadU64(0x5000), 0u);
  EXPECT_EQ(mem.resident_frames(), 0u);
}

TEST(HostPhysMem, CrossFrameAccess) {
  HostPhysMem mem(16 * kMiB);
  std::vector<uint8_t> data(kPageSize * 2, 0xab);
  mem.Write(0x800, data);
  std::vector<uint8_t> out(data.size());
  mem.Read(0x800, out);
  EXPECT_EQ(out, data);
}

TEST(FrameAllocator, AllocatesDistinctZeroedFrames) {
  HostPhysMem mem(16 * kMiB);
  FrameAllocator alloc(0x100000, 1 * kMiB);
  auto f1 = alloc.Alloc(mem);
  auto f2 = alloc.Alloc(mem);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_NE(*f1, *f2);
  EXPECT_EQ(mem.ReadU64(*f1), 0u);
  EXPECT_EQ(alloc.allocated_frames(), 2u);
}

TEST(FrameAllocator, ExhaustsAndRecycles) {
  HostPhysMem mem(16 * kMiB);
  FrameAllocator alloc(0x100000, 2 * kPageSize);
  auto f1 = alloc.Alloc(mem);
  auto f2 = alloc.Alloc(mem);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_FALSE(alloc.Alloc(mem).ok());
  alloc.Free(*f1);
  auto f3 = alloc.Alloc(mem);
  ASSERT_TRUE(f3.ok());
  EXPECT_EQ(*f3, *f1);
}

TEST(Cache, HitAfterMiss) {
  Cache cache(L1dConfig());
  EXPECT_FALSE(cache.Access(0x1000, false));
  EXPECT_TRUE(cache.Access(0x1000, false));
  EXPECT_TRUE(cache.Access(0x1020, false));  // Same 64B line? No: 0x1020 is a
                                             // different offset but same line.
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, LruEviction) {
  // 2-way tiny cache: lines mapping to the same set evict LRU order.
  CacheConfig config{"tiny", 2 * 64, 2, 64};  // 1 set, 2 ways.
  Cache cache(config);
  EXPECT_FALSE(cache.Access(0x0, false));
  EXPECT_FALSE(cache.Access(0x40, false));
  EXPECT_TRUE(cache.Access(0x0, false));     // 0x40 is now LRU.
  EXPECT_FALSE(cache.Access(0x80, false));   // Evicts 0x40.
  EXPECT_FALSE(cache.Access(0x40, false));
  EXPECT_TRUE(cache.Probe(0x40));
}

TEST(Cache, FlushClears) {
  Cache cache(L1dConfig());
  cache.Access(0x1000, false);
  cache.Flush();
  EXPECT_FALSE(cache.Probe(0x1000));
}

TEST(Tlb, HitRequiresMatchingTags) {
  Tlb tlb(16);
  TlbEntry e{0x5000, false, true};
  tlb.Insert(0x400000, 12, /*vpid=*/1, /*pcid=*/2, /*ep4ta=*/0x9000, e);
  uint8_t shift = 0;
  EXPECT_NE(tlb.Lookup(0x400123, 1, 2, 0x9000, &shift), nullptr);
  EXPECT_EQ(shift, 12);
  // Different EP4TA: miss (this is why VMFUNC needs no flush).
  EXPECT_EQ(tlb.Lookup(0x400123, 1, 2, 0xa000, &shift), nullptr);
  // Different PCID: miss for non-global entries.
  EXPECT_EQ(tlb.Lookup(0x400123, 1, 3, 0x9000, &shift), nullptr);
}

TEST(Tlb, GlobalEntriesMatchAnyPcid) {
  Tlb tlb(16);
  TlbEntry e{0x5000, /*global=*/true, true};
  tlb.Insert(0xffff800000000000ULL, 12, 1, /*pcid=*/7, 0, e);
  uint8_t shift = 0;
  EXPECT_NE(tlb.Lookup(0xffff800000000123ULL, 1, /*pcid=*/9, 0, &shift), nullptr);
}

TEST(Tlb, FlushPcidSparesGlobals) {
  Tlb tlb(16);
  tlb.Insert(0x400000, 12, 1, 2, 0, TlbEntry{0x5000, false, true});
  tlb.Insert(0xffff800000000000ULL, 12, 1, 2, 0, TlbEntry{0x6000, true, true});
  tlb.FlushPcid(1, 2);
  uint8_t shift = 0;
  EXPECT_EQ(tlb.Lookup(0x400000, 1, 2, 0, &shift), nullptr);
  EXPECT_NE(tlb.Lookup(0xffff800000000000ULL, 1, 2, 0, &shift), nullptr);
}

TEST(Tlb, LruCapacity) {
  Tlb tlb(2);
  tlb.Insert(0x1000, 12, 1, 0, 0, TlbEntry{});
  tlb.Insert(0x2000, 12, 1, 0, 0, TlbEntry{});
  uint8_t shift = 0;
  EXPECT_NE(tlb.Lookup(0x1000, 1, 0, 0, &shift), nullptr);  // Touch 0x1000.
  tlb.Insert(0x3000, 12, 1, 0, 0, TlbEntry{});              // Evicts 0x2000.
  EXPECT_NE(tlb.Lookup(0x1000, 1, 0, 0, &shift), nullptr);
  EXPECT_EQ(tlb.Lookup(0x2000, 1, 0, 0, &shift), nullptr);
}

class EptTest : public ::testing::Test {
 protected:
  EptTest() : mem_(1 * kGiB), frames_(256 * kMiB, 128 * kMiB) {}

  HostPhysMem mem_;
  FrameAllocator frames_;
};

TEST_F(EptTest, MapAndWalk4K) {
  auto ept = Ept::Create(mem_, frames_);
  ASSERT_TRUE(ept.ok());
  ASSERT_TRUE((*ept)->Map(0x1000, 0x555000, kPageSize, kEptRwx).ok());
  const EptWalk walk = (*ept)->Walk(0x1234, kEptRead);
  ASSERT_TRUE(walk.ok);
  EXPECT_EQ(walk.hpa, 0x555234u);
  EXPECT_EQ(walk.num_table_reads, 4);
}

TEST_F(EptTest, WalkFaultsOnUnmapped) {
  auto ept = Ept::Create(mem_, frames_);
  ASSERT_TRUE(ept.ok());
  const EptWalk walk = (*ept)->Walk(0x99999000, kEptRead);
  EXPECT_FALSE(walk.ok);
  EXPECT_EQ(walk.fault_gpa, 0x99999000u);
}

TEST_F(EptTest, HugePage1GWalkIsShort) {
  auto ept = Ept::Create(mem_, frames_);
  ASSERT_TRUE(ept.ok());
  ASSERT_TRUE((*ept)->Map(0, 0, sb::kHugePage1G, kEptRwx).ok());
  const EptWalk walk = (*ept)->Walk(0x12345678, kEptRead);
  ASSERT_TRUE(walk.ok);
  EXPECT_EQ(walk.hpa, 0x12345678u);
  EXPECT_EQ(walk.num_table_reads, 2);  // PML4E + PDPTE(1G leaf).
  EXPECT_EQ(walk.page_shift, 30);
}

TEST_F(EptTest, RejectsDoubleMap) {
  auto ept = Ept::Create(mem_, frames_);
  ASSERT_TRUE(ept.ok());
  ASSERT_TRUE((*ept)->Map(0x1000, 0x2000, kPageSize, kEptRwx).ok());
  EXPECT_FALSE((*ept)->Map(0x1000, 0x3000, kPageSize, kEptRwx).ok());
}

TEST_F(EptTest, ShallowCopySharesMappings) {
  auto base = Ept::Create(mem_, frames_);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*base)->Map(0, 0, sb::kHugePage1G, kEptRwx).ok());
  auto copy = (*base)->ShallowCopy();
  ASSERT_TRUE(copy.ok());
  const EptWalk walk = (*copy)->Walk(0x777000, kEptRead);
  ASSERT_TRUE(walk.ok);
  EXPECT_EQ(walk.hpa, 0x777000u);
  EXPECT_EQ((*copy)->private_table_pages(), 1u);  // Just the new root.
}

TEST_F(EptTest, RemapGpaPageSplitsHugePagesAndIsolates) {
  auto base = Ept::Create(mem_, frames_);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*base)->Map(0, 0, sb::kHugePage1G, kEptRwx).ok());
  auto derived = (*base)->ShallowCopy();
  ASSERT_TRUE(derived.ok());

  ASSERT_TRUE((*derived)->RemapGpaPage(0x123000, 0x9000000).ok());
  // The derived EPT translates the remapped page differently...
  const EptWalk dwalk = (*derived)->Walk(0x123456, kEptRead);
  ASSERT_TRUE(dwalk.ok);
  EXPECT_EQ(dwalk.hpa, 0x9000456u);
  // ...while neighbours and the base EPT are untouched.
  EXPECT_EQ((*derived)->Walk(0x124000, kEptRead).hpa, 0x124000u);
  EXPECT_EQ((*base)->Walk(0x123456, kEptRead).hpa, 0x123456u);
  // Paper Section 4.3: only four pages are modified for the remap.
  EXPECT_EQ((*derived)->private_table_pages(), 4u);
}

TEST_F(EptTest, UnmapGpaPageFaults) {
  auto ept = Ept::Create(mem_, frames_);
  ASSERT_TRUE(ept.ok());
  ASSERT_TRUE((*ept)->Map(0, 0, sb::kHugePage1G, kEptRwx).ok());
  ASSERT_TRUE((*ept)->UnmapGpaPage(0x5000).ok());
  EXPECT_FALSE((*ept)->Walk(0x5123, kEptRead).ok);
  EXPECT_TRUE((*ept)->Walk(0x6123, kEptRead).ok);
}

class PagingTest : public ::testing::Test {
 protected:
  PagingTest() : mem_(1 * kGiB), frames_(64 * kMiB, 64 * kMiB) {}

  HostPhysMem mem_;
  FrameAllocator frames_;
};

TEST_F(PagingTest, MapAndWalk) {
  auto as = AddressSpace::Create(mem_, frames_, /*pcid=*/1);
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE((*as)->Map(0x400000, 0x800000, kPageSize, PageFlags{}).ok());
  const GuestWalk walk = (*as)->WalkVa(0x400123);
  ASSERT_TRUE(walk.ok);
  EXPECT_EQ(walk.gpa, 0x800123u);
}

TEST_F(PagingTest, MapAnonymousBacksRange) {
  auto as = AddressSpace::Create(mem_, frames_, 1);
  ASSERT_TRUE(as.ok());
  auto first = (*as)->MapAnonymous(0x600000, 3 * kPageSize, PageFlags{});
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    const GuestWalk walk = (*as)->WalkVa(0x600000 + static_cast<uint64_t>(i) * kPageSize);
    ASSERT_TRUE(walk.ok);
    EXPECT_EQ(walk.gpa, *first + static_cast<uint64_t>(i) * kPageSize);
  }
}

TEST_F(PagingTest, UnmapFaults) {
  auto as = AddressSpace::Create(mem_, frames_, 1);
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE((*as)->Map(0x400000, 0x800000, kPageSize, PageFlags{}).ok());
  ASSERT_TRUE((*as)->Unmap(0x400000).ok());
  EXPECT_FALSE((*as)->WalkVa(0x400000).ok);
}

TEST_F(PagingTest, ShareUpperHalf) {
  auto kernel = AddressSpace::Create(mem_, frames_, 0);
  ASSERT_TRUE(kernel.ok());
  const Gva kva = 0xffff800000000000ULL;
  ASSERT_TRUE(
      (*kernel)->Map(kva, 0x800000, kPageSize, PageFlags{true, false, true, true}).ok());
  auto proc = AddressSpace::Create(mem_, frames_, 1);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE((*proc)->ShareUpperHalf(**kernel).ok());
  const GuestWalk walk = (*proc)->WalkVa(kva);
  ASSERT_TRUE(walk.ok);
  EXPECT_EQ(walk.gpa, 0x800000u);
}

// ---- The core SkyBridge mechanism, end to end on the hardware model ----

class CoreTranslationTest : public ::testing::Test {
 protected:
  CoreTranslationTest()
      : machine_(MachineConfig{1, 2 * kGiB}),
        guest_frames_(16 * kMiB, 512 * kMiB),
        root_frames_(1536 * kMiB, 100 * kMiB) {}

  Machine machine_;
  FrameAllocator guest_frames_;
  FrameAllocator root_frames_;
};

TEST_F(CoreTranslationTest, NativeModeTranslatesThroughGuestPt) {
  auto as = AddressSpace::Create(machine_.mem(), guest_frames_, 1);
  ASSERT_TRUE(as.ok());
  auto frame = guest_frames_.Alloc(machine_.mem());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE((*as)->Map(0x400000, *frame, kPageSize, PageFlags{}).ok());
  machine_.mem().WriteU64(*frame + 0x10, 0x1122334455667788ULL);

  Core& core = machine_.core(0);
  core.WriteCr3((*as)->root_gpa(), 1, false);
  auto value = core.ReadVirtU64(0x400010);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0x1122334455667788ULL);
}

TEST_F(CoreTranslationTest, TlbCachesTranslations) {
  auto as = AddressSpace::Create(machine_.mem(), guest_frames_, 1);
  ASSERT_TRUE(as.ok());
  auto frame = guest_frames_.Alloc(machine_.mem());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE((*as)->Map(0x400000, *frame, kPageSize, PageFlags{}).ok());

  Core& core = machine_.core(0);
  core.WriteCr3((*as)->root_gpa(), 1, false);
  ASSERT_TRUE(core.ReadVirtU64(0x400000).ok());
  const uint64_t misses = core.pmu().dtlb_miss;
  ASSERT_TRUE(core.ReadVirtU64(0x400008).ok());
  EXPECT_EQ(core.pmu().dtlb_miss, misses);  // Second access hits the TLB.
}

TEST_F(CoreTranslationTest, PageFaultOnUnmapped) {
  auto as = AddressSpace::Create(machine_.mem(), guest_frames_, 1);
  ASSERT_TRUE(as.ok());
  Core& core = machine_.core(0);
  core.WriteCr3((*as)->root_gpa(), 1, false);
  EXPECT_FALSE(core.ReadVirtU64(0x400000).ok());
}

TEST_F(CoreTranslationTest, WriteProtectionEnforced) {
  auto as = AddressSpace::Create(machine_.mem(), guest_frames_, 1);
  ASSERT_TRUE(as.ok());
  auto frame = guest_frames_.Alloc(machine_.mem());
  ASSERT_TRUE(frame.ok());
  PageFlags ro;
  ro.writable = false;
  ASSERT_TRUE((*as)->Map(0x400000, *frame, kPageSize, ro).ok());
  Core& core = machine_.core(0);
  core.WriteCr3((*as)->root_gpa(), 1, false);
  EXPECT_TRUE(core.ReadVirtU64(0x400000).ok());
  EXPECT_FALSE(core.WriteVirtU64(0x400000, 1).ok());
}

// The SkyBridge trick: after VMFUNC to an EPT that remaps the GPA of the
// client's CR3 to the server's page-table root, the same CR3 value translates
// virtual addresses in the *server's* address space.
TEST_F(CoreTranslationTest, Cr3RemapSwitchesAddressSpaceViaVmfunc) {
  HostPhysMem& mem = machine_.mem();

  // Two processes mapping the same VA to different values.
  auto client_as = AddressSpace::Create(mem, guest_frames_, 1);
  auto server_as = AddressSpace::Create(mem, guest_frames_, 2);
  ASSERT_TRUE(client_as.ok());
  ASSERT_TRUE(server_as.ok());
  const Gva va = 0x400000;
  auto cframe = guest_frames_.Alloc(mem);
  auto sframe = guest_frames_.Alloc(mem);
  ASSERT_TRUE(cframe.ok());
  ASSERT_TRUE(sframe.ok());
  ASSERT_TRUE((*client_as)->Map(va, *cframe, kPageSize, PageFlags{}).ok());
  ASSERT_TRUE((*server_as)->Map(va, *sframe, kPageSize, PageFlags{}).ok());
  mem.WriteU64(*cframe, 0xc11e47ULL);
  mem.WriteU64(*sframe, 0x5e77e7ULL);

  // Rootkernel-style base EPT: identity map with 1G pages.
  auto base_ept = Ept::Create(mem, root_frames_);
  ASSERT_TRUE(base_ept.ok());
  ASSERT_TRUE((*base_ept)->Map(0, 0, sb::kHugePage1G, kEptRwx).ok());
  ASSERT_TRUE((*base_ept)->Map(kGiB, kGiB, sb::kHugePage1G, kEptRwx).ok());

  // Client EPT: plain copy. Server EPT: copy + CR3 remap.
  auto client_ept = (*base_ept)->ShallowCopy();
  auto server_ept = (*base_ept)->ShallowCopy();
  ASSERT_TRUE(client_ept.ok());
  ASSERT_TRUE(server_ept.ok());
  ASSERT_TRUE(
      (*server_ept)->RemapGpaPage((*client_as)->root_gpa(), (*server_as)->root_gpa()).ok());

  Core& core = machine_.core(0);
  machine_.SetVmExitHandler([](Core&, const VmExitInfo&) -> uint64_t { return 0; });
  core.EnterNonRoot(client_ept->get(), /*vpid=*/1);
  core.vmcs().eptp_list.push_back(server_ept->get());
  core.WriteCr3((*client_as)->root_gpa(), 1, false);

  // In the client's EPT the VA reads the client's value.
  auto v1 = core.ReadVirtU64(va);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 0xc11e47ULL);

  // VMFUNC(0, 1): switch to the server EPT. CR3 is untouched, yet the same
  // VA now reads the server's value — the page walker fetched the *server's*
  // page tables through the remapped EPT.
  ASSERT_TRUE(core.Vmfunc(0, 1).ok());
  EXPECT_EQ(core.cr3(), (*client_as)->root_gpa());
  auto v2 = core.ReadVirtU64(va);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 0x5e77e7ULL);

  // And back.
  ASSERT_TRUE(core.Vmfunc(0, 0).ok());
  auto v3 = core.ReadVirtU64(va);
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(*v3, 0xc11e47ULL);

  // No VM exits were needed for any of this.
  EXPECT_EQ(machine_.total_vm_exits(), 0u);
}

TEST_F(CoreTranslationTest, InvalidVmfuncIndexCausesVmExit) {
  auto base_ept = Ept::Create(machine_.mem(), root_frames_);
  ASSERT_TRUE(base_ept.ok());
  ASSERT_TRUE((*base_ept)->Map(0, 0, sb::kHugePage1G, kEptRwx).ok());
  Core& core = machine_.core(0);
  int exits = 0;
  machine_.SetVmExitHandler([&](Core&, const VmExitInfo& info) -> uint64_t {
    EXPECT_EQ(info.reason, VmExitReason::kVmfuncInvalid);
    ++exits;
    return 0;
  });
  core.EnterNonRoot(base_ept->get(), 1);
  EXPECT_FALSE(core.Vmfunc(0, 7).ok());
  EXPECT_EQ(exits, 1);
}

TEST_F(CoreTranslationTest, VmfuncChargesDocumentedCost) {
  auto base_ept = Ept::Create(machine_.mem(), root_frames_);
  ASSERT_TRUE(base_ept.ok());
  ASSERT_TRUE((*base_ept)->Map(0, 0, sb::kHugePage1G, kEptRwx).ok());
  Core& core = machine_.core(0);
  core.EnterNonRoot(base_ept->get(), 1);
  const uint64_t before = core.cycles();
  ASSERT_TRUE(core.Vmfunc(0, 0).ok());
  EXPECT_EQ(core.cycles() - before, machine_.costs().vmfunc);
}

TEST_F(CoreTranslationTest, VmfuncOutsideNonRootFails) {
  Core& core = machine_.core(0);
  EXPECT_FALSE(core.Vmfunc(0, 0).ok());
}

TEST_F(CoreTranslationTest, TwoDimensionalWalkChargesEptReads) {
  auto as = AddressSpace::Create(machine_.mem(), guest_frames_, 1);
  ASSERT_TRUE(as.ok());
  auto frame = guest_frames_.Alloc(machine_.mem());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE((*as)->Map(0x400000, *frame, kPageSize, PageFlags{}).ok());

  auto base_ept = Ept::Create(machine_.mem(), root_frames_);
  ASSERT_TRUE(base_ept.ok());
  ASSERT_TRUE((*base_ept)->Map(0, 0, sb::kHugePage1G, kEptRwx).ok());

  Core& core = machine_.core(0);
  machine_.SetVmExitHandler([](Core&, const VmExitInfo&) -> uint64_t { return 0; });
  core.EnterNonRoot(base_ept->get(), 1);
  core.WriteCr3((*as)->root_gpa(), 1, false);

  const uint64_t before = core.pmu().mem_accesses;
  ASSERT_TRUE(core.ReadVirtU64(0x400000).ok());
  // 2-D walk with 1G EPT pages: 4 guest levels x (2 EPT reads + 1 PTE read)
  // + 2 EPT reads for the final GPA + 1 data access = 15.
  EXPECT_EQ(core.pmu().mem_accesses - before, 15u);
}

// Paper Section 4.1: "one TLB miss in the 2-level address translation may
// require at most 24 memory accesses". With 4 KiB EPT pages, our walker hits
// exactly that bound: 4 guest levels x (4 EPT reads + 1 PTE read) + 4 EPT
// reads for the final GPA = 24, plus the data access itself.
TEST_F(CoreTranslationTest, TwoDimensionalWalkWorstCaseIs24Accesses) {
  auto as = AddressSpace::Create(machine_.mem(), guest_frames_, 1);
  ASSERT_TRUE(as.ok());
  auto frame = guest_frames_.Alloc(machine_.mem());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE((*as)->Map(0x400000, *frame, kPageSize, PageFlags{}).ok());

  // Build a 4 KiB-page EPT covering the guest range (no huge pages).
  auto ept = Ept::Create(machine_.mem(), root_frames_);
  ASSERT_TRUE(ept.ok());
  auto map_page = [&](Gpa gpa) {
    ASSERT_TRUE((*ept)->Map(sb::PageDown(gpa), sb::PageDown(gpa), kPageSize, kEptRwx).ok());
  };
  // Map the pages the walk will touch: the four guest table pages + target.
  const GuestWalk walk = (*as)->WalkVa(0x400000);
  ASSERT_TRUE(walk.ok);
  Gpa table = (*as)->root_gpa();
  map_page(table);
  for (int level = 4; level > 1; --level) {
    const int index = static_cast<int>((0x400000ull >> (12 + 9 * (level - 1))) & 0x1ff);
    const uint64_t entry = machine_.mem().ReadU64(table + static_cast<uint64_t>(index) * 8);
    table = entry & kPteFrameMask;
    map_page(table);
  }
  map_page(*frame);

  Core& core = machine_.core(0);
  machine_.SetVmExitHandler([](Core&, const VmExitInfo&) -> uint64_t { return 0; });
  core.EnterNonRoot(ept->get(), 1);
  core.WriteCr3((*as)->root_gpa(), 1, false);

  const uint64_t before = core.pmu().mem_accesses;
  ASSERT_TRUE(core.ReadVirtU64(0x400000).ok());
  // 24 walk accesses + 1 data access.
  EXPECT_EQ(core.pmu().mem_accesses - before, 25u);
}

// Table 2: VMFUNC with VPID enabled does not flush the TLB — translations
// cached under each EPTP survive round trips through the other.
TEST_F(CoreTranslationTest, VmfuncDoesNotFlushTlb) {
  HostPhysMem& mem = machine_.mem();
  auto client_as = AddressSpace::Create(mem, guest_frames_, 1);
  auto server_as = AddressSpace::Create(mem, guest_frames_, 2);
  ASSERT_TRUE(client_as.ok());
  ASSERT_TRUE(server_as.ok());
  const Gva va = 0x400000;
  auto cframe = guest_frames_.Alloc(mem);
  auto sframe = guest_frames_.Alloc(mem);
  ASSERT_TRUE((*client_as)->Map(va, *cframe, kPageSize, PageFlags{}).ok());
  ASSERT_TRUE((*server_as)->Map(va, *sframe, kPageSize, PageFlags{}).ok());

  auto base_ept = Ept::Create(mem, root_frames_);
  ASSERT_TRUE(base_ept.ok());
  ASSERT_TRUE((*base_ept)->Map(0, 0, sb::kHugePage1G, kEptRwx).ok());
  auto client_ept = (*base_ept)->ShallowCopy();
  auto server_ept = (*base_ept)->ShallowCopy();
  ASSERT_TRUE(
      (*server_ept)->RemapGpaPage((*client_as)->root_gpa(), (*server_as)->root_gpa()).ok());

  Core& core = machine_.core(0);
  machine_.SetVmExitHandler([](Core&, const VmExitInfo&) -> uint64_t { return 0; });
  core.EnterNonRoot(client_ept->get(), 1);
  core.vmcs().eptp_list.push_back(server_ept->get());
  core.WriteCr3((*client_as)->root_gpa(), 1, false);

  // Warm both views.
  ASSERT_TRUE(core.ReadVirtU64(va).ok());
  ASSERT_TRUE(core.Vmfunc(0, 1).ok());
  ASSERT_TRUE(core.ReadVirtU64(va).ok());
  ASSERT_TRUE(core.Vmfunc(0, 0).ok());

  // Now both translations hit: a full round trip adds no TLB misses.
  const uint64_t misses = core.pmu().dtlb_miss;
  ASSERT_TRUE(core.ReadVirtU64(va).ok());
  ASSERT_TRUE(core.Vmfunc(0, 1).ok());
  ASSERT_TRUE(core.ReadVirtU64(va).ok());
  ASSERT_TRUE(core.Vmfunc(0, 0).ok());
  ASSERT_TRUE(core.ReadVirtU64(va).ok());
  EXPECT_EQ(core.pmu().dtlb_miss, misses);
}

// ---- Contiguous backing (shared-buffer regions) ----

TEST(HostPhysMem, BackContiguousPreservesExistingContents) {
  HostPhysMem mem(64 * kMiB);
  mem.WriteU64(0x10008, 0x1122334455667788ULL);  // Materialize a sparse frame.
  mem.BackContiguous(0x10000, 4 * kPageSize);
  EXPECT_EQ(mem.ReadU64(0x10008), 0x1122334455667788ULL);  // Absorbed, not lost.
  EXPECT_EQ(mem.ReadU64(0x12000), 0u);  // Fresh pages read zero.
}

TEST(HostPhysMem, ContiguousSpanCoversRegionAndRejectsOverrun) {
  HostPhysMem mem(64 * kMiB);
  mem.BackContiguous(0x20000, 4 * kPageSize);
  uint8_t* base = mem.ContiguousSpan(0x20000, 4 * kPageSize);
  ASSERT_NE(base, nullptr);
  // The host pointer aliases guest-physical loads/stores across page bounds.
  base[kPageSize + 5] = 0xcd;
  std::vector<uint8_t> out(1);
  mem.Read(0x20000 + kPageSize + 5, out);
  EXPECT_EQ(out[0], 0xcd);
  uint8_t* off = mem.ContiguousSpan(0x20000 + kPageSize, kPageSize);
  EXPECT_EQ(off, base + kPageSize);
  EXPECT_EQ(mem.ContiguousSpan(0x20000 + kPageSize, 4 * kPageSize), nullptr);  // Overrun.
  EXPECT_EQ(mem.ContiguousSpan(0x50000, kPageSize), nullptr);  // Unbacked.
}

// ---- Bulk-copy engine ----

class BulkCopyTest : public ::testing::Test {
 protected:
  BulkCopyTest()
      : machine_(MachineConfig{1, 2 * kGiB}), guest_frames_(16 * kMiB, 512 * kMiB) {
    auto as = AddressSpace::Create(machine_.mem(), guest_frames_, 1);
    SB_CHECK(as.ok());
    as_ = std::move(*as);
    SB_CHECK(as_->MapAnonymous(kSrcVa, kLen, PageFlags{}).ok());
    SB_CHECK(as_->MapAnonymous(kDstVa, kLen, PageFlags{}).ok());
    machine_.core(0).WriteCr3(as_->root_gpa(), 1, false);
  }

  static constexpr Gva kSrcVa = 0x400000;
  static constexpr Gva kDstVa = 0x600000;
  static constexpr uint64_t kLen = 64 * 1024;

  Machine machine_;
  FrameAllocator guest_frames_;
  std::unique_ptr<AddressSpace> as_;
};

TEST_F(BulkCopyTest, CopyVirtMovesBytesAcrossPages) {
  Core& core = machine_.core(0);
  std::vector<uint8_t> pattern(10000);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<uint8_t>(i * 13 + 1);
  }
  // Unaligned start, crossing three pages.
  ASSERT_TRUE(core.WriteVirt(kSrcVa + 123, pattern).ok());
  ASSERT_TRUE(core.CopyVirt(kDstVa + 45, kSrcVa + 123, pattern.size()).ok());
  std::vector<uint8_t> out(pattern.size());
  ASSERT_TRUE(core.ReadVirt(kDstVa + 45, out).ok());
  EXPECT_EQ(out, pattern);
}

TEST_F(BulkCopyTest, CopyVirtCheaperThanReadPlusWrite) {
  Core& core = machine_.core(0);
  std::vector<uint8_t> data(16 * 1024, 0xee);
  ASSERT_TRUE(core.WriteVirt(kSrcVa, data).ok());
  // Warm both ranges and the TLB.
  ASSERT_TRUE(core.CopyVirt(kDstVa, kSrcVa, data.size()).ok());
  std::vector<uint8_t> bounce(data.size());
  ASSERT_TRUE(core.ReadVirt(kSrcVa, bounce).ok());
  ASSERT_TRUE(core.WriteVirt(kDstVa, bounce).ok());

  uint64_t start = core.cycles();
  ASSERT_TRUE(core.ReadVirt(kSrcVa, bounce).ok());
  ASSERT_TRUE(core.WriteVirt(kDstVa, bounce).ok());
  const uint64_t read_write = core.cycles() - start;

  start = core.cycles();
  ASSERT_TRUE(core.CopyVirt(kDstVa, kSrcVa, data.size()).ok());
  const uint64_t copy = core.cycles() - start;

  EXPECT_LT(copy, read_write);  // One startup, touches both streams once.
  EXPECT_GT(copy, 0u);
}

TEST_F(BulkCopyTest, SmallAccessesKeepSeedCosting) {
  Core& core = machine_.core(0);
  const uint64_t small = machine_.costs().bulk_min_bytes - 1;
  std::vector<uint8_t> data(small, 0x11);
  ASSERT_TRUE(core.WriteVirt(kSrcVa, data).ok());  // Warm.
  std::vector<uint8_t> out(small);
  ASSERT_TRUE(core.ReadVirt(kSrcVa, out).ok());    // Warm.

  const uint64_t start = core.cycles();
  ASSERT_TRUE(core.ReadVirt(kSrcVa, out).ok());
  const uint64_t cost = core.cycles() - start;
  // Warm per-line charging, no streaming startup: lines * l1_hit.
  const uint64_t lines = (small + 63) / 64;
  EXPECT_EQ(cost, lines * machine_.costs().l1_hit);
}

TEST_F(BulkCopyTest, CopyVirtSgMatchesSequentialCopies) {
  Core& core = machine_.core(0);
  std::vector<uint8_t> a(3000, 0xaa);
  std::vector<uint8_t> b(5000, 0xbb);
  ASSERT_TRUE(core.WriteVirt(kSrcVa, a).ok());
  ASSERT_TRUE(core.WriteVirt(kSrcVa + 8192, b).ok());
  const Core::CopySeg segs[] = {
      {kDstVa, kSrcVa, a.size()},
      {kDstVa + 8192, kSrcVa + 8192, b.size()},
  };
  ASSERT_TRUE(core.CopyVirtSg(segs).ok());
  std::vector<uint8_t> out_a(a.size());
  std::vector<uint8_t> out_b(b.size());
  ASSERT_TRUE(core.ReadVirt(kDstVa, out_a).ok());
  ASSERT_TRUE(core.ReadVirt(kDstVa + 8192, out_b).ok());
  EXPECT_EQ(out_a, a);
  EXPECT_EQ(out_b, b);
}

TEST(Machine, IpiCountsPerCore) {
  Machine machine(MachineConfig{4, 1 * kGiB});
  machine.SendIpi(0, 2);
  machine.SendIpi(0, 3);
  EXPECT_EQ(machine.total_ipis(), 2u);
  EXPECT_EQ(machine.core(0).pmu().ipis_sent, 2u);
}

TEST(Machine, VmcallDispatchesToHandler) {
  Machine machine(MachineConfig{1, 1 * kGiB});
  machine.SetVmExitHandler([](Core&, const VmExitInfo& info) -> uint64_t {
    EXPECT_EQ(info.reason, VmExitReason::kVmcall);
    return info.qualification + info.arg1;
  });
  EXPECT_EQ(machine.core(0).Vmcall(40, 2), 42u);
  EXPECT_EQ(machine.total_vm_exits(), 1u);
}

}  // namespace
}  // namespace hw
