// Long-message IPC tests: per-connection buffer carving, the in-place
// (zero-copy) call/reply API, copy-mode cost ordering, capacity boundaries,
// and the long-reply overflow regression (the client's EPT view must be
// restored even when the reply is rejected).

#include <algorithm>
#include <cstring>

#include <gtest/gtest.h>

#include "src/skybridge/skybridge.h"

namespace skybridge {
namespace {

using mk::CallEnv;
using mk::Handler;
using mk::Message;
using sb::kGiB;

hw::MachineConfig TestMachine() {
  hw::MachineConfig config;
  config.num_cores = 4;
  config.ram_bytes = 4 * kGiB;
  return config;
}

class LongIpcTest : public ::testing::Test {
 protected:
  void Boot(SkyBridgeConfig config = {}) {
    sky_.reset();
    kernel_.reset();
    machine_.reset();
    machine_ = std::make_unique<hw::Machine>(TestMachine());
    kernel_ = std::make_unique<mk::Kernel>(*machine_, mk::Sel4Profile());
    ASSERT_TRUE(kernel_->Boot().ok());
    sky_ = std::make_unique<SkyBridge>(*kernel_, config);
  }

  struct Pair {
    mk::Process* client;
    mk::Process* server;
    mk::Thread* thread;
    ServerId sid;
  };

  Pair MakePair(Handler handler, int connections = 8) {
    Pair p;
    p.client = kernel_->CreateProcess("client").value();
    p.server = kernel_->CreateProcess("server").value();
    p.sid = sky_->RegisterServer(p.server, connections, std::move(handler)).value();
    SB_CHECK(sky_->RegisterClient(p.client, p.sid).ok());
    p.thread = p.client->AddThread(0);
    SB_CHECK(kernel_->ContextSwitchTo(machine_->core(0), p.client).ok());
    return p;
  }

  uint64_t reg_capacity() const { return kernel_->profile().register_msg_capacity; }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<SkyBridge> sky_;
};

Handler EchoHandler() {
  return [](CallEnv& env) { return env.request; };
}

// ---- S1 regression: an oversized reply must not strand the client in the
// server's EPT view. ----

TEST_F(LongIpcTest, OversizedReplyRestoresClientViewAndFails) {
  Boot();
  const uint64_t too_big = SkyBridgeConfig{}.shared_buffer_bytes + 1;
  Handler handler = [too_big](CallEnv& env) {
    if (env.request.tag != 1) {
      return Message(0);
    }
    return Message::FromString(1, std::string(too_big, 'x'));
  };
  Pair p = MakePair(handler);
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());

  hw::Core& core = machine_->core(0);
  const size_t client_view = core.vmcs().active_index;
  const uint64_t rejected_before = sky_->stats().rejected_calls;

  auto result = sky_->DirectServerCall(p.thread, p.sid, Message(1));
  EXPECT_EQ(result.status().code(), sb::ErrorCode::kOutOfRange);
  // The return gate ran: we are back in the client's EPT view, not stranded
  // in the server's.
  EXPECT_EQ(core.vmcs().active_index, client_view);
  EXPECT_EQ(sky_->stats().rejected_calls, rejected_before + 1);

  // The connection still works.
  EXPECT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(2)).ok());
}

// ---- S2 regression: reply bytes written through the shared buffer must be
// visible in the returned message. ----

TEST_F(LongIpcTest, LongReplyBytesReachTheClient) {
  Boot();
  std::string payload(3000, 'r');
  payload[0] = 'R';
  payload[2999] = '!';
  Handler handler = [payload](CallEnv&) { return Message::FromString(1, payload); };
  Pair p = MakePair(handler);
  auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(0));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ToString(), payload);
}

TEST_F(LongIpcTest, LongReplyBytesReachTheClientInLegacyTwoCopyMode) {
  SkyBridgeConfig config;
  config.legacy_two_copy = true;
  Boot(config);
  std::string payload(3000, 's');
  payload[0] = 'S';
  Handler handler = [payload](CallEnv&) { return Message::FromString(1, payload); };
  Pair p = MakePair(handler);
  auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(0));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->borrowed());  // Two-copy mode hands back an owned copy.
  EXPECT_EQ(reply->ToString(), payload);
}

// ---- S3: capacity boundaries. ----

TEST_F(LongIpcTest, RegisterCapacityMessageStaysShort) {
  Boot();
  Pair p = MakePair(EchoHandler());
  Message msg(7);
  msg.data.assign(reg_capacity(), 0x5a);
  auto reply = sky_->DirectServerCall(p.thread, p.sid, msg);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->size(), reg_capacity());
  EXPECT_EQ(sky_->stats().long_calls, 0u);  // Fits in registers.
}

TEST_F(LongIpcTest, OneOverRegisterCapacityGoesLong) {
  Boot();
  Pair p = MakePair(EchoHandler());
  Message msg(7);
  msg.data.assign(reg_capacity() + 1, 0x5a);
  auto reply = sky_->DirectServerCall(p.thread, p.sid, msg);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->size(), reg_capacity() + 1);
  EXPECT_EQ(sky_->stats().long_calls, 1u);
}

TEST_F(LongIpcTest, FullSliceMessageFitsAndOneMoreByteIsRejected) {
  Boot();
  Pair p = MakePair(EchoHandler());
  const uint64_t cap = SkyBridgeConfig{}.shared_buffer_bytes;

  Message fits(7);
  fits.data.assign(cap, 0xa5);
  auto reply = sky_->DirectServerCall(p.thread, p.sid, fits);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->size(), cap);

  Message over(7);
  over.data.assign(cap + 1, 0xa5);
  const uint64_t rejected_before = sky_->stats().rejected_calls;
  auto result = sky_->DirectServerCall(p.thread, p.sid, over);
  EXPECT_EQ(result.status().code(), sb::ErrorCode::kOutOfRange);
  EXPECT_EQ(sky_->stats().rejected_calls, rejected_before + 1);
}

// ---- In-place (zero-copy) API. ----

TEST_F(LongIpcTest, InPlaceCallRoundTripCarriesBytes) {
  Boot();
  std::string seen;
  Handler handler = [&seen](CallEnv& env) {
    seen = env.request.ToString();
    return env.request;  // Borrowed echo: reply already in the slice.
  };
  Pair p = MakePair(handler);

  auto buf = sky_->AcquireSendBuffer(p.thread, p.sid);
  ASSERT_TRUE(buf.ok()) << buf.status().ToString();
  const uint64_t len = 4096;
  ASSERT_GE(buf->size(), len);
  for (uint64_t i = 0; i < len; ++i) {
    (*buf)[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  auto reply = sky_->DirectServerCallInPlace(p.thread, p.sid, 9, len);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, 9u);
  ASSERT_EQ(seen.size(), len);
  ASSERT_EQ(reply->size(), len);
  for (uint64_t i = 0; i < len; ++i) {
    EXPECT_EQ(static_cast<uint8_t>(seen[i]), static_cast<uint8_t>(i * 31 + 7));
    EXPECT_EQ(reply->payload()[i], static_cast<uint8_t>(i * 31 + 7));
  }
  EXPECT_EQ(sky_->stats().inplace_calls, 1u);
  EXPECT_EQ(sky_->stats().inplace_replies, 1u);
}

TEST_F(LongIpcTest, InPlaceCallChargesNoCopyCycles) {
  Boot();
  Pair p = MakePair(EchoHandler());
  // Warm up.
  auto buf = sky_->AcquireSendBuffer(p.thread, p.sid);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(sky_->DirectServerCallInPlace(p.thread, p.sid, 1, 16384).ok());

  mk::CostBreakdown bd;
  ASSERT_TRUE(sky_->DirectServerCallInPlace(p.thread, p.sid, 1, 16384, &bd).ok());
  EXPECT_EQ(bd.copy, 0u);  // Neither request nor reply was copied.
}

TEST_F(LongIpcTest, InPlaceCallOverCapacityRejected) {
  Boot();
  Pair p = MakePair(EchoHandler());
  ASSERT_TRUE(sky_->AcquireSendBuffer(p.thread, p.sid).ok());
  const uint64_t rejected_before = sky_->stats().rejected_calls;
  auto result = sky_->DirectServerCallInPlace(p.thread, p.sid, 1,
                                              SkyBridgeConfig{}.shared_buffer_bytes + 1);
  EXPECT_EQ(result.status().code(), sb::ErrorCode::kOutOfRange);
  EXPECT_EQ(sky_->stats().rejected_calls, rejected_before + 1);
}

TEST_F(LongIpcTest, AcquireSendBufferRejectsStrangers) {
  Boot();
  Pair p = MakePair(EchoHandler());
  EXPECT_EQ(sky_->AcquireSendBuffer(p.thread, p.sid + 1000).status().code(),
            sb::ErrorCode::kNotFound);

  auto* stranger = kernel_->CreateProcess("stranger").value();
  mk::Thread* t = stranger->AddThread(1);
  EXPECT_EQ(sky_->AcquireSendBuffer(t, p.sid).status().code(),
            sb::ErrorCode::kPermissionDenied);
}

// ---- Per-connection carving: two threads of the same binding use disjoint
// slices and do not corrupt each other. ----

TEST_F(LongIpcTest, TwoConnectionsUseDisjointSlices) {
  Boot();
  Handler handler = [](CallEnv& env) { return env.request; };
  Pair p = MakePair(handler);
  mk::Thread* t2 = p.client->AddThread(1);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(1), p.client).ok());

  auto buf_a = sky_->AcquireSendBuffer(p.thread, p.sid);
  auto buf_b = sky_->AcquireSendBuffer(t2, p.sid);
  ASSERT_TRUE(buf_a.ok());
  ASSERT_TRUE(buf_b.ok());
  ASSERT_NE(buf_a->data(), buf_b->data());

  // Fill both slices, then issue both calls: neither call may disturb the
  // other connection's in-flight payload.
  const uint64_t len = 8192;
  std::fill_n(buf_a->data(), len, 0xAA);
  std::fill_n(buf_b->data(), len, 0xBB);

  auto reply_a = sky_->DirectServerCallInPlace(p.thread, p.sid, 1, len);
  ASSERT_TRUE(reply_a.ok());
  auto reply_b = sky_->DirectServerCallInPlace(t2, p.sid, 2, len);
  ASSERT_TRUE(reply_b.ok());

  ASSERT_EQ(reply_a->size(), len);
  ASSERT_EQ(reply_b->size(), len);
  EXPECT_TRUE(std::all_of(reply_a->payload().begin(), reply_a->payload().end(),
                          [](uint8_t b) { return b == 0xAA; }));
  EXPECT_TRUE(std::all_of(reply_b->payload().begin(), reply_b->payload().end(),
                          [](uint8_t b) { return b == 0xBB; }));
}

// ---- Copy-mode cost ordering: zero-copy <= one-copy <= two-copy. ----

TEST_F(LongIpcTest, CopyModesOrderAsExpected) {
  const uint64_t len = 16384;

  auto measure = [&](bool legacy, bool in_place) -> uint64_t {
    SkyBridgeConfig config;
    config.legacy_two_copy = legacy;
    Boot(config);
    // One-copy must still pay the reply write, so echo an owned copy; the
    // zero-copy mode echoes the borrowed slice view directly.
    Handler handler = in_place ? EchoHandler()
                               : Handler([](CallEnv& env) { return env.request.ToOwned(); });
    Pair p = MakePair(std::move(handler));
    Message msg(1);
    if (!in_place) {
      msg.data.assign(len, 0xcd);
    }
    for (int i = 0; i < 4; ++i) {  // Warm caches and TLBs.
      if (in_place) {
        SB_CHECK(sky_->AcquireSendBuffer(p.thread, p.sid).ok());
        SB_CHECK(sky_->DirectServerCallInPlace(p.thread, p.sid, 1, len).ok());
      } else {
        SB_CHECK(sky_->DirectServerCall(p.thread, p.sid, msg).ok());
      }
    }
    mk::CostBreakdown bd;
    if (in_place) {
      SB_CHECK(sky_->DirectServerCallInPlace(p.thread, p.sid, 1, len, &bd).ok());
    } else {
      SB_CHECK(sky_->DirectServerCall(p.thread, p.sid, msg, &bd).ok());
    }
    return bd.copy;
  };

  const uint64_t two_copy = measure(/*legacy=*/true, /*in_place=*/false);
  const uint64_t one_copy = measure(/*legacy=*/false, /*in_place=*/false);
  const uint64_t zero_copy = measure(/*legacy=*/false, /*in_place=*/true);

  EXPECT_EQ(zero_copy, 0u);
  EXPECT_LT(zero_copy, one_copy);
  EXPECT_LT(one_copy, two_copy);
}

}  // namespace
}  // namespace skybridge
