// xv6fs tests: format/mount, files, directories, the write-ahead log and
// crash recovery, plus the block device and RPC layers.

#include "src/fs/xv6fs.h"

#include <gtest/gtest.h>

#include "src/fs/block_device.h"
#include "src/fs/fs_rpc.h"

namespace fsys {
namespace {

// A transport that talks straight to a RamDisk (no kernel, no charging).
BlockTransport DirectTransport(RamDisk* disk) {
  return [disk](const mk::Message& msg) -> sb::StatusOr<mk::Message> {
    switch (msg.tag) {
      case kBlockRead: {
        uint32_t block = 0;
        std::memcpy(&block, msg.data.data(), 4);
        mk::Message reply(1);
        reply.data.resize(kBlockSize);
        SB_RETURN_IF_ERROR(disk->Read(nullptr, block, reply.data));
        return reply;
      }
      case kBlockWrite: {
        uint32_t block = 0;
        std::memcpy(&block, msg.data.data(), 4);
        SB_RETURN_IF_ERROR(disk->Write(
            nullptr, block, std::span<const uint8_t>(msg.data.data() + 4, kBlockSize)));
        return mk::Message(1);
      }
      default:
        return sb::InvalidArgument("bad block op");
    }
  };
}

class FsTest : public ::testing::Test {
 protected:
  FsTest()
      : disk_(4096),
        fs_(DirectTransport(&disk_), Xv6Fs::Config{4096, 512, kLogCapacity + 1, 64}) {}

  void Format() {
    ASSERT_TRUE(fs_.Mkfs().ok());
    ASSERT_TRUE(fs_.Mount().ok());
  }

  RamDisk disk_;
  Xv6Fs fs_;
};

TEST_F(FsTest, MkfsAndMount) {
  Format();
  EXPECT_EQ(fs_.superblock().magic, kFsMagic);
  EXPECT_EQ(fs_.superblock().size, 4096u);
  auto names = fs_.ListDir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_TRUE(names->empty());
}

TEST_F(FsTest, MountFailsOnBlankDisk) {
  EXPECT_FALSE(fs_.Mount().ok());
}

TEST_F(FsTest, CreateWriteRead) {
  Format();
  auto inum = fs_.Create("/hello.txt");
  ASSERT_TRUE(inum.ok());
  const std::string text = "hello, microkernel world";
  ASSERT_TRUE(fs_.WriteFile(*inum, 0,
                            std::span<const uint8_t>(
                                reinterpret_cast<const uint8_t*>(text.data()), text.size()))
                  .ok());
  std::vector<uint8_t> out(text.size());
  auto n = fs_.ReadFile(*inum, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, text.size());
  EXPECT_EQ(std::string(out.begin(), out.end()), text);
  EXPECT_EQ(*fs_.FileSize(*inum), text.size());
}

TEST_F(FsTest, LookupFindsCreatedFile) {
  Format();
  auto inum = fs_.Create("/f1");
  ASSERT_TRUE(inum.ok());
  auto found = fs_.Lookup("/f1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *inum);
  EXPECT_FALSE(fs_.Lookup("/nope").ok());
}

TEST_F(FsTest, DuplicateCreateFails) {
  Format();
  ASSERT_TRUE(fs_.Create("/f").ok());
  EXPECT_FALSE(fs_.Create("/f").ok());
}

TEST_F(FsTest, SubdirectoryPaths) {
  Format();
  auto dir = fs_.Create("/etc", InodeType::kDir);
  ASSERT_TRUE(dir.ok());
  auto file = fs_.Create("/etc/config");
  ASSERT_TRUE(file.ok());
  auto found = fs_.Lookup("/etc/config");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *file);
  auto names = fs_.ListDir("/etc");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "config");
}

TEST_F(FsTest, LargeFileSpansIndirectBlocks) {
  Format();
  auto inum = fs_.Create("/big");
  ASSERT_TRUE(inum.ok());
  // Past the direct blocks (12 * 512) and into the single-indirect range.
  std::vector<uint8_t> chunk(kBlockSize, 0);
  for (uint32_t i = 0; i < 40; ++i) {
    std::fill(chunk.begin(), chunk.end(), static_cast<uint8_t>(i));
    ASSERT_TRUE(fs_.WriteFile(*inum, i * kBlockSize, chunk).ok()) << "block " << i;
  }
  for (uint32_t i = 0; i < 40; ++i) {
    std::vector<uint8_t> out(kBlockSize);
    ASSERT_TRUE(fs_.ReadFile(*inum, i * kBlockSize, out).ok());
    EXPECT_EQ(out[0], static_cast<uint8_t>(i));
    EXPECT_EQ(out[kBlockSize - 1], static_cast<uint8_t>(i));
  }
}

TEST_F(FsTest, DoubleIndirectRange) {
  Format();
  auto inum = fs_.Create("/huge");
  ASSERT_TRUE(inum.ok());
  // One write far beyond direct + single-indirect (12 + 128 blocks).
  const uint32_t far_block = kNumDirect + kPtrsPerBlock + 10;
  std::vector<uint8_t> chunk(kBlockSize, 0x5a);
  ASSERT_TRUE(fs_.WriteFile(*inum, far_block * kBlockSize, chunk).ok());
  std::vector<uint8_t> out(kBlockSize);
  ASSERT_TRUE(fs_.ReadFile(*inum, far_block * kBlockSize, out).ok());
  EXPECT_EQ(out[100], 0x5a);
}

TEST_F(FsTest, OverwriteInPlace) {
  Format();
  auto inum = fs_.Create("/f");
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> a(100, 'a');
  std::vector<uint8_t> b(50, 'b');
  ASSERT_TRUE(fs_.WriteFile(*inum, 0, a).ok());
  ASSERT_TRUE(fs_.WriteFile(*inum, 25, b).ok());
  std::vector<uint8_t> out(100);
  ASSERT_TRUE(fs_.ReadFile(*inum, 0, out).ok());
  EXPECT_EQ(out[0], 'a');
  EXPECT_EQ(out[30], 'b');
  EXPECT_EQ(out[80], 'a');
  EXPECT_EQ(*fs_.FileSize(*inum), 100u);
}

TEST_F(FsTest, UnlinkFreesAndRemoves) {
  Format();
  auto inum = fs_.Create("/gone");
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> data(2048, 1);
  ASSERT_TRUE(fs_.WriteFile(*inum, 0, data).ok());
  ASSERT_TRUE(fs_.Unlink("/gone").ok());
  EXPECT_FALSE(fs_.Lookup("/gone").ok());
  // The freed space is reusable.
  auto inum2 = fs_.Create("/new");
  ASSERT_TRUE(inum2.ok());
  ASSERT_TRUE(fs_.WriteFile(*inum2, 0, data).ok());
}

TEST_F(FsTest, ReadBeyondEofReturnsShort) {
  Format();
  auto inum = fs_.Create("/short");
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> data(10, 7);
  ASSERT_TRUE(fs_.WriteFile(*inum, 0, data).ok());
  std::vector<uint8_t> out(100);
  auto n = fs_.ReadFile(*inum, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10u);
  EXPECT_EQ(*fs_.ReadFile(*inum, 50, out), 0u);
}

TEST_F(FsTest, TransactionGroupsWrites) {
  Format();
  auto inum = fs_.Create("/txn");
  ASSERT_TRUE(inum.ok());
  const uint64_t before = fs_.stats().transactions;
  ASSERT_TRUE(fs_.BeginOp().ok());
  std::vector<uint8_t> data(64, 9);
  ASSERT_TRUE(fs_.WriteFile(*inum, 0, data).ok());
  ASSERT_TRUE(fs_.WriteFile(*inum, 64, data).ok());
  ASSERT_TRUE(fs_.EndOp().ok());
  EXPECT_EQ(fs_.stats().transactions, before + 1);
}

// Crash consistency: a committed-but-not-installed log replays on mount.
TEST_F(FsTest, LogRecoveryReplaysCommittedTransaction) {
  Format();
  auto inum = fs_.Create("/durable");
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> data(kBlockSize, 0xcd);
  ASSERT_TRUE(fs_.WriteFile(*inum, 0, data).ok());

  // Find the file's data block and simulate a torn install: clobber the
  // home location but leave the (already cleared) log alone. Then write a
  // committed log that restores it.
  const Superblock& sb = fs_.superblock();
  // Re-read inode from disk directly to find the data block.
  std::vector<uint8_t> iblock(kBlockSize);
  ASSERT_TRUE(disk_.Read(nullptr, sb.inode_start + *inum / 8, iblock).ok());
  DiskInode dino;
  std::memcpy(&dino, iblock.data() + (*inum % 8) * sizeof(DiskInode), sizeof(dino));
  const uint32_t data_block = dino.addrs[0];
  ASSERT_NE(data_block, 0u);

  // "Crash": home location gets garbage, but the log contains the commit.
  std::vector<uint8_t> garbage(kBlockSize, 0xff);
  ASSERT_TRUE(disk_.Write(nullptr, data_block, garbage).ok());
  ASSERT_TRUE(disk_.Write(nullptr, sb.log_start + 1, data).ok());
  std::vector<uint8_t> header(kBlockSize, 0);
  const uint32_t n = 1;
  std::memcpy(header.data(), &n, 4);
  std::memcpy(header.data() + 4, &data_block, 4);
  ASSERT_TRUE(disk_.Write(nullptr, sb.log_start, header).ok());

  // Remount: recovery must reinstall the logged block.
  Xv6Fs fs2(DirectTransport(&disk_));
  ASSERT_TRUE(fs2.Mount().ok());
  std::vector<uint8_t> out(kBlockSize);
  ASSERT_TRUE(fs2.ReadFile(*inum, 0, out).ok());
  EXPECT_EQ(out[0], 0xcd);
  EXPECT_EQ(out[kBlockSize - 1], 0xcd);
}

TEST_F(FsTest, WriteAmplificationFromLogging) {
  Format();
  auto inum = fs_.Create("/wa");
  ASSERT_TRUE(inum.ok());
  const uint64_t before = fs_.stats().block_writes;
  std::vector<uint8_t> data(kBlockSize, 1);
  ASSERT_TRUE(fs_.WriteFile(*inum, 0, data).ok());
  // Each logged block is written twice (log + home) plus 2 header writes.
  EXPECT_GE(fs_.stats().block_writes - before, 6u);
}

TEST_F(FsTest, RenameMovesFile) {
  Format();
  auto inum = fs_.Create("/old");
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> data(100, 0x2a);
  ASSERT_TRUE(fs_.WriteFile(*inum, 0, data).ok());
  ASSERT_TRUE(fs_.Rename("/old", "/new").ok());
  EXPECT_FALSE(fs_.Lookup("/old").ok());
  auto moved = fs_.Lookup("/new");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, *inum);
  EXPECT_EQ(*fs_.FileSize(*moved), 100u);
  EXPECT_TRUE(fs_.Fsck().ok());
}

TEST_F(FsTest, RenameReplacesTarget) {
  Format();
  auto a = fs_.Create("/a");
  auto b = fs_.Create("/b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<uint8_t> data(50, 0x11);
  ASSERT_TRUE(fs_.WriteFile(*a, 0, data).ok());
  ASSERT_TRUE(fs_.Rename("/a", "/b").ok());
  auto replaced = fs_.Lookup("/b");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(*replaced, *a);  // /b now refers to the old /a inode.
  EXPECT_FALSE(fs_.Lookup("/a").ok());
  const sb::Status fsck = fs_.Fsck();
  EXPECT_TRUE(fsck.ok()) << fsck.ToString();  // The old /b inode was freed.
}

TEST_F(FsTest, RenameAcrossDirectories) {
  Format();
  ASSERT_TRUE(fs_.Create("/d", InodeType::kDir).ok());
  auto inum = fs_.Create("/f");
  ASSERT_TRUE(inum.ok());
  ASSERT_TRUE(fs_.Rename("/f", "/d/f").ok());
  EXPECT_FALSE(fs_.Lookup("/f").ok());
  EXPECT_EQ(*fs_.Lookup("/d/f"), *inum);
}

TEST_F(FsTest, RenameMissingSourceFails) {
  Format();
  EXPECT_FALSE(fs_.Rename("/ghost", "/x").ok());
}

TEST_F(FsTest, FsckPassesAfterActivity) {
  Format();
  auto a = fs_.Create("/a");
  auto dir = fs_.Create("/d", InodeType::kDir);
  auto b = fs_.Create("/d/b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(b.ok());
  std::vector<uint8_t> data(3000, 0x31);
  ASSERT_TRUE(fs_.WriteFile(*a, 0, data).ok());
  ASSERT_TRUE(fs_.WriteFile(*b, 0, data).ok());
  ASSERT_TRUE(fs_.Unlink("/a").ok());
  const sb::Status fsck = fs_.Fsck();
  EXPECT_TRUE(fsck.ok()) << fsck.ToString();
}

TEST_F(FsTest, FsckDetectsBitmapCorruption) {
  Format();
  auto inum = fs_.Create("/f");
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> data(600, 1);
  ASSERT_TRUE(fs_.WriteFile(*inum, 0, data).ok());
  ASSERT_TRUE(fs_.Fsck().ok());

  // Corrupt the bitmap on disk: mark an unreferenced data block used.
  const Superblock& sb = fs_.superblock();
  std::vector<uint8_t> bmap(kBlockSize);
  ASSERT_TRUE(disk_.Read(nullptr, sb.bmap_start, bmap).ok());
  const uint32_t victim = sb.size - 2;
  bmap[victim / 8] |= static_cast<uint8_t>(1u << (victim % 8));
  ASSERT_TRUE(disk_.Write(nullptr, sb.bmap_start + victim / (kBlockSize * 8), bmap).ok());

  // Remount so the corruption is visible through the cache.
  Xv6Fs fs2(DirectTransport(&disk_), Xv6Fs::Config{4096, 512, kLogCapacity + 1, 64});
  ASSERT_TRUE(fs2.Mount().ok());
  EXPECT_FALSE(fs2.Fsck().ok());
}

TEST(RamDisk, ReadWriteRoundTrip) {
  RamDisk disk(16);
  std::vector<uint8_t> in(kBlockSize, 0x77);
  ASSERT_TRUE(disk.Write(nullptr, 3, in).ok());
  std::vector<uint8_t> out(kBlockSize);
  ASSERT_TRUE(disk.Read(nullptr, 3, out).ok());
  EXPECT_EQ(in, out);
  EXPECT_FALSE(disk.Read(nullptr, 16, out).ok());
  EXPECT_EQ(disk.reads(), 1u);  // Rejected reads are not counted.
  EXPECT_EQ(disk.writes(), 1u);
}

TEST(FsRpc, ClientServerRoundTripOverDirectHandler) {
  RamDisk disk(4096);
  Xv6Fs fs(DirectTransport(&disk));
  ASSERT_TRUE(fs.Mkfs().ok());
  ASSERT_TRUE(fs.Mount().ok());

  // Drive the RPC handler with a fake CallEnv on a standalone machine.
  hw::MachineConfig mc;
  mc.num_cores = 1;
  mc.ram_bytes = 1ULL << 30;
  hw::Machine machine(mc);
  mk::Kernel kernel(machine, mk::Sel4Profile(), mk::KernelOptions{false, {}, 1 << 20, 1 << 20, 1 << 20});
  ASSERT_TRUE(kernel.Boot().ok());
  auto proc = kernel.CreateProcess("fs");
  ASSERT_TRUE(proc.ok());

  mk::Handler handler = MakeFsHandler(&fs);
  FsClient client([&](const mk::Message& msg) -> sb::StatusOr<mk::Message> {
    mk::CallEnv env{kernel, machine.core(0), **proc, msg};
    return handler(env);
  });

  auto inum = client.Create("/rpc.txt");
  ASSERT_TRUE(inum.ok());
  const std::string text = "over the wire";
  ASSERT_TRUE(client
                  .Write(*inum, 0,
                         std::span<const uint8_t>(
                             reinterpret_cast<const uint8_t*>(text.data()), text.size()))
                  .ok());
  auto data = client.Read(*inum, 0, 64);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(data->begin(), data->end()), text);
  EXPECT_EQ(*client.Size(*inum), text.size());
  EXPECT_EQ(*client.Open("/rpc.txt"), *inum);
  ASSERT_TRUE(client.Unlink("/rpc.txt").ok());
  EXPECT_FALSE(client.Open("/rpc.txt").ok());
  EXPECT_EQ(client.rpcs(), 7u);
}

}  // namespace
}  // namespace fsys
