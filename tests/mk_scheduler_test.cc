// Scheduler tests: priorities, round-robin fairness, direct-process-switch
// accounting.

#include "src/mk/scheduler.h"

#include <gtest/gtest.h>

#include "src/base/logging.h"
#include "src/mk/kernel.h"

namespace mk {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() {
    hw::MachineConfig mc;
    mc.num_cores = 2;
    mc.ram_bytes = 2ULL << 30;
    machine_ = std::make_unique<hw::Machine>(mc);
    KernelOptions options;
    options.boot_rootkernel = false;
    kernel_ = std::make_unique<Kernel>(*machine_, Sel4Profile(), options);
    SB_CHECK(kernel_->Boot().ok());
    scheduler_ = std::make_unique<Scheduler>(kernel_.get(), 0);
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<Scheduler> scheduler_;
};

TEST_F(SchedulerTest, EmptyQueueIsNotFound) {
  EXPECT_EQ(scheduler_->Schedule().status().code(), sb::ErrorCode::kNotFound);
}

TEST_F(SchedulerTest, HigherPriorityWins) {
  auto* p = kernel_->CreateProcess("p").value();
  Thread* low = p->AddThread(0);
  Thread* high = p->AddThread(0);
  ASSERT_TRUE(scheduler_->Enqueue(low, 3).ok());
  ASSERT_TRUE(scheduler_->Enqueue(high, 0).ok());
  auto next = scheduler_->Schedule();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, high);
}

TEST_F(SchedulerTest, RoundRobinWithinPriority) {
  auto* p = kernel_->CreateProcess("p").value();
  Thread* a = p->AddThread(0);
  Thread* b = p->AddThread(0);
  Thread* c = p->AddThread(0);
  ASSERT_TRUE(scheduler_->Enqueue(a, 1).ok());
  ASSERT_TRUE(scheduler_->Enqueue(b, 1).ok());
  ASSERT_TRUE(scheduler_->Enqueue(c, 1).ok());
  EXPECT_EQ(*scheduler_->Schedule(), a);
  EXPECT_EQ(*scheduler_->Schedule(), b);
  EXPECT_EQ(*scheduler_->Schedule(), c);
  EXPECT_EQ(*scheduler_->Schedule(), a);  // Wraps around.
}

TEST_F(SchedulerTest, DoubleEnqueueRejected) {
  auto* p = kernel_->CreateProcess("p").value();
  Thread* t = p->AddThread(0);
  ASSERT_TRUE(scheduler_->Enqueue(t, 1).ok());
  EXPECT_EQ(scheduler_->Enqueue(t, 2).code(), sb::ErrorCode::kAlreadyExists);
}

TEST_F(SchedulerTest, DequeueRemovesBlockedThread) {
  auto* p = kernel_->CreateProcess("p").value();
  Thread* a = p->AddThread(0);
  Thread* b = p->AddThread(0);
  ASSERT_TRUE(scheduler_->Enqueue(a, 1).ok());
  ASSERT_TRUE(scheduler_->Enqueue(b, 1).ok());
  scheduler_->Dequeue(a);
  EXPECT_FALSE(scheduler_->IsQueued(a));
  EXPECT_EQ(scheduler_->ready_count(), 1u);
  EXPECT_EQ(*scheduler_->Schedule(), b);
}

TEST_F(SchedulerTest, ContextSwitchesOnlyAcrossProcesses) {
  auto* p1 = kernel_->CreateProcess("p1").value();
  auto* p2 = kernel_->CreateProcess("p2").value();
  Thread* a = p1->AddThread(0);
  Thread* b = p1->AddThread(0);
  Thread* c = p2->AddThread(0);
  ASSERT_TRUE(scheduler_->Enqueue(a, 1).ok());
  ASSERT_TRUE(scheduler_->Enqueue(b, 1).ok());
  ASSERT_TRUE(scheduler_->Enqueue(c, 1).ok());

  ASSERT_TRUE(scheduler_->Schedule().ok());  // a: switch to p1
  const uint64_t switches_after_first = scheduler_->process_switches();
  ASSERT_TRUE(scheduler_->Schedule().ok());  // b: same process, no switch
  EXPECT_EQ(scheduler_->process_switches(), switches_after_first);
  ASSERT_TRUE(scheduler_->Schedule().ok());  // c: switch to p2
  EXPECT_EQ(scheduler_->process_switches(), switches_after_first + 1);
  EXPECT_EQ(kernel_->current_process(0), p2);
}

TEST_F(SchedulerTest, DispatchChargesCycles) {
  auto* p = kernel_->CreateProcess("p").value();
  Thread* t = p->AddThread(0);
  ASSERT_TRUE(scheduler_->Enqueue(t, 0).ok());
  const uint64_t before = machine_->core(0).cycles();
  ASSERT_TRUE(scheduler_->Schedule().ok());
  EXPECT_GT(machine_->core(0).cycles(), before);
}

TEST_F(SchedulerTest, BadPriorityRejected) {
  auto* p = kernel_->CreateProcess("p").value();
  Thread* t = p->AddThread(0);
  EXPECT_EQ(scheduler_->Enqueue(t, -1).code(), sb::ErrorCode::kInvalidArgument);
  EXPECT_EQ(scheduler_->Enqueue(t, kNumPriorities).code(), sb::ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace mk
