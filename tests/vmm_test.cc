// Rootkernel tests: self-virtualization, the no-VM-exit steady state, the
// VMCALL interface and EPT derivation.

#include "src/vmm/rootkernel.h"

#include <gtest/gtest.h>

#include "src/hw/paging.h"

namespace vmm {
namespace {

using sb::kGiB;
using sb::kMiB;

hw::MachineConfig SmallMachine() {
  hw::MachineConfig config;
  config.num_cores = 2;
  config.ram_bytes = 4 * kGiB;
  return config;
}

TEST(Rootkernel, BootDowngradesAllCores) {
  hw::Machine machine(SmallMachine());
  auto rk = Rootkernel::Boot(machine);
  ASSERT_TRUE(rk.ok());
  for (int i = 0; i < machine.num_cores(); ++i) {
    EXPECT_TRUE(machine.core(i).in_nonroot());
    EXPECT_EQ(machine.core(i).vmcs().active_ept(), (*rk)->base_ept());
  }
}

TEST(Rootkernel, ReservesTopOfRam) {
  hw::Machine machine(SmallMachine());
  auto rk = Rootkernel::Boot(machine);
  ASSERT_TRUE(rk.ok());
  EXPECT_EQ((*rk)->guest_limit(), 4 * kGiB - 100 * kMiB);
  // Guest memory translates identity...
  EXPECT_TRUE((*rk)->base_ept()->Walk(0x12345000, hw::kEptRead).ok);
  // ...but the reserved region is not reachable through the base EPT.
  EXPECT_FALSE((*rk)->base_ept()->Walk((*rk)->guest_limit() + 0x1000, hw::kEptRead).ok);
}

TEST(Rootkernel, VmcallPing) {
  hw::Machine machine(SmallMachine());
  auto rk = Rootkernel::Boot(machine);
  ASSERT_TRUE(rk.ok());
  (*rk)->ResetExitCounters();
  EXPECT_EQ(machine.core(0).Vmcall(static_cast<uint64_t>(Hypercall::kPing)), kPingValue);
  EXPECT_EQ((*rk)->exits_vmcall(), 1u);
  EXPECT_EQ((*rk)->exits_total(), 1u);
}

TEST(Rootkernel, CpuidExitsAreCounted) {
  hw::Machine machine(SmallMachine());
  auto rk = Rootkernel::Boot(machine);
  ASSERT_TRUE(rk.ok());
  (*rk)->ResetExitCounters();
  machine.core(0).Cpuid();
  machine.core(1).Cpuid();
  EXPECT_EQ((*rk)->exits_cpuid(), 2u);
}

TEST(Rootkernel, GuestMemoryAccessCausesNoExits) {
  hw::Machine machine(SmallMachine());
  auto rk = Rootkernel::Boot(machine);
  ASSERT_TRUE(rk.ok());
  (*rk)->ResetExitCounters();

  // Build a guest page table and access memory through it: everything stays
  // inside non-root mode (the paper's zero-VM-exit steady state).
  hw::FrameAllocator frames(64 * kMiB, 64 * kMiB);
  auto as = hw::AddressSpace::Create(machine.mem(), frames, 1);
  ASSERT_TRUE(as.ok());
  auto frame = frames.Alloc(machine.mem());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE((*as)->Map(0x400000, *frame, sb::kPageSize, hw::PageFlags{}).ok());

  hw::Core& core = machine.core(0);
  core.WriteCr3((*as)->root_gpa(), 1, false);
  ASSERT_TRUE(core.WriteVirtU64(0x400000, 42).ok());
  auto v = core.ReadVirtU64(0x400000);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42u);
  EXPECT_EQ((*rk)->exits_total(), 0u);
  EXPECT_EQ(machine.total_vm_exits(), 0u);
}

TEST(Rootkernel, CreateProcessEptSharesBaseMappings) {
  hw::Machine machine(SmallMachine());
  auto rk = Rootkernel::Boot(machine);
  ASSERT_TRUE(rk.ok());
  auto id = (*rk)->CreateProcessEpt();
  ASSERT_TRUE(id.ok());
  hw::Ept* ept = (*rk)->ept(*id);
  ASSERT_NE(ept, nullptr);
  EXPECT_TRUE(ept->Walk(0x7777000, hw::kEptRead).ok);
  EXPECT_EQ(ept->Walk(0x7777000, hw::kEptRead).hpa, 0x7777000u);
}

TEST(Rootkernel, BindingEptRemapsClientCr3) {
  hw::Machine machine(SmallMachine());
  auto rk = Rootkernel::Boot(machine);
  ASSERT_TRUE(rk.ok());
  const hw::Gpa client_cr3 = 0x10000;
  const hw::Gpa server_cr3 = 0x20000;
  auto id = (*rk)->CreateBindingEpt(client_cr3, server_cr3);
  ASSERT_TRUE(id.ok());
  hw::Ept* ept = (*rk)->ept(*id);
  ASSERT_NE(ept, nullptr);
  // The client's CR3 GPA now translates to the server's CR3 page.
  EXPECT_EQ(ept->Walk(client_cr3 + 0x80, hw::kEptRead).hpa, server_cr3 + 0x80u);
  // Everything else is untouched.
  EXPECT_EQ(ept->Walk(0x30000, hw::kEptRead).hpa, 0x30000u);
  // And the base EPT still identity-maps the client CR3.
  EXPECT_EQ((*rk)->base_ept()->Walk(client_cr3, hw::kEptRead).hpa, client_cr3);
}

TEST(Rootkernel, BindingEptRejectsBogusCr3) {
  hw::Machine machine(SmallMachine());
  auto rk = Rootkernel::Boot(machine);
  ASSERT_TRUE(rk.ok());
  EXPECT_FALSE((*rk)->CreateBindingEpt(0x1001, 0x2000).ok());  // Misaligned.
  EXPECT_FALSE((*rk)->CreateBindingEpt(4 * kGiB, 0x2000).ok());  // Out of guest range.
}

TEST(Rootkernel, HypercallInterfaceEndToEnd) {
  hw::Machine machine(SmallMachine());
  auto rk = Rootkernel::Boot(machine);
  ASSERT_TRUE(rk.ok());
  hw::Core& core = machine.core(0);

  const uint64_t ept_id =
      core.Vmcall(static_cast<uint64_t>(Hypercall::kCreateBindingEpt), 0x10000, 0x20000);
  ASSERT_NE(ept_id, kHypercallError);
  EXPECT_EQ(core.Vmcall(static_cast<uint64_t>(Hypercall::kEptpListClear)), 0u);
  EXPECT_EQ(core.Vmcall(static_cast<uint64_t>(Hypercall::kEptpListAppend), 0), 0u);
  EXPECT_EQ(core.Vmcall(static_cast<uint64_t>(Hypercall::kEptpListAppend), ept_id), 1u);
  EXPECT_EQ(core.vmcs().eptp_list.size(), 2u);

  // VMFUNC into the appended EPT works without a VM exit.
  (*rk)->ResetExitCounters();
  ASSERT_TRUE(core.Vmfunc(0, 1).ok());
  EXPECT_EQ((*rk)->exits_total(), 0u);
}

TEST(Rootkernel, LazyBaseEptFaultsInPagesOnDemand) {
  hw::Machine machine(SmallMachine());
  RootkernelConfig config;
  config.lazy_base_ept = true;
  auto rk = Rootkernel::Boot(machine, config);
  ASSERT_TRUE(rk.ok());
  (*rk)->ResetExitCounters();

  hw::FrameAllocator frames(64 * kMiB, 64 * kMiB);
  auto as = hw::AddressSpace::Create(machine.mem(), frames, 1);
  ASSERT_TRUE(as.ok());
  auto frame = frames.Alloc(machine.mem());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE((*as)->Map(0x400000, *frame, sb::kPageSize, hw::PageFlags{}).ok());

  hw::Core& core = machine.core(0);
  core.WriteCr3((*as)->root_gpa(), 1, false);
  ASSERT_TRUE(core.WriteVirtU64(0x400000, 7).ok());
  // The walk faulted at least once and was healed by the Rootkernel.
  EXPECT_GT((*rk)->exits_ept_violation(), 0u);
  auto v = core.ReadVirtU64(0x400000);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7u);
}

TEST(Rootkernel, EptPageAccountingGrowsWithBindings) {
  hw::Machine machine(SmallMachine());
  auto rk = Rootkernel::Boot(machine);
  ASSERT_TRUE(rk.ok());
  const size_t before = (*rk)->ept_pages_allocated();
  ASSERT_TRUE((*rk)->CreateBindingEpt(0x10000, 0x20000).ok());
  // Shallow copy + CR3 remap: "only four pages ... are modified" (Section
  // 4.3): the copied root plus the cloned PDPT and the split PD and PT.
  EXPECT_EQ((*rk)->ept_pages_allocated() - before, 4u);
}

}  // namespace
}  // namespace vmm
