// Cross-module property tests: decoder fuzzing, EPT remaps against a
// reference map, file-system operations against a reference model (with a
// remount in the middle), and executor determinism.

#include <map>
#include <thread>

#include <gtest/gtest.h>

#include "src/apps/corpus.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/fs/block_device.h"
#include "src/fs/xv6fs.h"
#include "src/hw/ept.h"
#include "src/hw/machine.h"
#include "src/sim/executor.h"
#include "src/x86/decoder.h"
#include "src/x86/rewriter.h"
#include "src/x86/scanner.h"

namespace {

using sb::kGiB;
using sb::kMiB;
using sb::kPageSize;

// ---- Decoder fuzz: arbitrary bytes never crash, lengths stay sane ----

class DecoderFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DecoderFuzzTest, RandomBytesDecodeSafely) {
  sb::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  std::vector<uint8_t> bytes(4096);
  for (auto& b : bytes) {
    b = static_cast<uint8_t>(rng.Next());
  }
  size_t pos = 0;
  while (pos < bytes.size()) {
    const x86::Insn insn = x86::Decode(bytes, pos);
    ASSERT_GE(insn.length, 1);
    ASSERT_LE(insn.length, 15);
    if (insn.valid) {
      // Field offsets stay inside the instruction.
      if (insn.has_modrm) {
        ASSERT_LT(insn.modrm_off, insn.length);
      }
      if (insn.disp_len > 0) {
        ASSERT_LE(insn.disp_off + insn.disp_len, insn.length);
      }
      if (insn.imm_len > 0) {
        ASSERT_LE(insn.imm_off + insn.imm_len, insn.length);
      }
    }
    pos += insn.length;
  }
  // The sweep exactly tiles the buffer.
  const std::vector<size_t> starts = x86::LinearSweep(bytes);
  ASSERT_FALSE(starts.empty());
  EXPECT_EQ(starts.front(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest, ::testing::Range(0, 16));

// ---- EPT: random remaps behave like a reference map ----

class EptPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EptPropertyTest, RandomRemapsMatchReference) {
  hw::HostPhysMem mem(2 * kGiB);
  hw::FrameAllocator frames(1 * kGiB, 256 * kMiB);
  auto base = hw::Ept::Create(mem, frames);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*base)->Map(0, 0, sb::kHugePage1G, hw::kEptRwx).ok());

  auto derived = (*base)->ShallowCopy();
  ASSERT_TRUE(derived.ok());

  sb::Rng rng(static_cast<uint64_t>(GetParam()) * 1337 + 3);
  std::map<hw::Gpa, hw::Hpa> reference;
  for (int i = 0; i < 64; ++i) {
    const hw::Gpa gpa = rng.Below(1ULL << 18) * kPageSize;  // Within the 1G region.
    const hw::Hpa target = (rng.Below(1ULL << 18)) * kPageSize;
    ASSERT_TRUE((*derived)->RemapGpaPage(gpa, target).ok());
    reference[gpa] = target;
  }
  // Remapped pages translate to their targets; everything else is identity.
  for (const auto& [gpa, target] : reference) {
    const hw::EptWalk walk = (*derived)->Walk(gpa + 0x123, hw::kEptRead);
    ASSERT_TRUE(walk.ok);
    EXPECT_EQ(walk.hpa, target + 0x123);
    // The base EPT is untouched.
    EXPECT_EQ((*base)->Walk(gpa + 0x123, hw::kEptRead).hpa, gpa + 0x123);
  }
  for (int i = 0; i < 64; ++i) {
    const hw::Gpa gpa = rng.Below(1ULL << 18) * kPageSize;
    if (!reference.contains(gpa)) {
      EXPECT_EQ((*derived)->Walk(gpa, hw::kEptRead).hpa, gpa);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EptPropertyTest, ::testing::Range(0, 8));

// ---- File system vs a reference model, with a remount mid-way ----

fsys::BlockTransport DiskTransport(fsys::RamDisk* disk) {
  return [disk](const mk::Message& msg) -> sb::StatusOr<mk::Message> {
    uint32_t block = 0;
    std::memcpy(&block, msg.data.data(), 4);
    if (msg.tag == fsys::kBlockRead) {
      mk::Message reply(1);
      reply.data.resize(fsys::kBlockSize);
      SB_RETURN_IF_ERROR(disk->Read(nullptr, block, reply.data));
      return reply;
    }
    SB_RETURN_IF_ERROR(disk->Write(
        nullptr, block, std::span<const uint8_t>(msg.data.data() + 4, fsys::kBlockSize)));
    return mk::Message(1);
  };
}

class FsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FsPropertyTest, RandomOpsMatchReferenceModel) {
  fsys::RamDisk disk(8192);
  auto fs = std::make_unique<fsys::Xv6Fs>(DiskTransport(&disk));
  ASSERT_TRUE(fs->Mkfs().ok());
  ASSERT_TRUE(fs->Mount().ok());

  sb::Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 11);
  std::map<std::string, std::string> reference;  // path -> contents
  auto random_path = [&] { return "/f" + std::to_string(rng.Below(12)); };

  for (int step = 0; step < 250; ++step) {
    if (step == 125) {
      // Remount mid-run: everything must persist.
      fs = std::make_unique<fsys::Xv6Fs>(DiskTransport(&disk));
      ASSERT_TRUE(fs->Mount().ok());
    }
    const std::string path = random_path();
    switch (rng.Below(4)) {
      case 0: {  // Create
        const bool existed = reference.contains(path);
        const bool created = fs->Create(path).ok();
        EXPECT_EQ(created, !existed) << path;
        if (created) {
          reference[path] = "";
        }
        break;
      }
      case 1: {  // Write (append-style at a random offset within size+1K)
        if (!reference.contains(path)) {
          break;
        }
        auto inum = fs->Lookup(path);
        ASSERT_TRUE(inum.ok());
        std::string& contents = reference[path];
        const uint32_t offset = static_cast<uint32_t>(rng.Below(contents.size() + 512));
        const size_t len = 1 + rng.Below(700);
        std::string data(len, static_cast<char>('a' + rng.Below(26)));
        ASSERT_TRUE(fs->WriteFile(*inum, offset,
                                  std::span<const uint8_t>(
                                      reinterpret_cast<const uint8_t*>(data.data()), len))
                        .ok());
        if (contents.size() < offset + len) {
          contents.resize(offset + len, '\0');
        }
        contents.replace(offset, len, data);
        break;
      }
      case 2: {  // Read-verify the whole file
        if (!reference.contains(path)) {
          EXPECT_FALSE(fs->Lookup(path).ok());
          break;
        }
        auto inum = fs->Lookup(path);
        ASSERT_TRUE(inum.ok());
        const std::string& contents = reference[path];
        EXPECT_EQ(*fs->FileSize(*inum), contents.size());
        std::vector<uint8_t> out(contents.size());
        if (!contents.empty()) {
          ASSERT_TRUE(fs->ReadFile(*inum, 0, out).ok());
          EXPECT_EQ(std::string(out.begin(), out.end()), contents) << path;
        }
        break;
      }
      case 3: {  // Unlink
        const bool existed = reference.contains(path);
        EXPECT_EQ(fs->Unlink(path).ok(), existed) << path;
        reference.erase(path);
        break;
      }
    }
  }
  // Final directory listing matches the reference exactly, and the on-disk
  // structures pass the consistency check.
  auto names = fs->ListDir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), reference.size());
  const sb::Status fsck = fs->Fsck();
  EXPECT_TRUE(fsck.ok()) << fsck.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsPropertyTest, ::testing::Range(0, 8));

// ---- Parallel VMFUNC scan == serial scan, byte for byte ----

TEST(ScanParityProperty, ParallelScanMatchesSerialOnTable6Corpus) {
  sb::ThreadPool pool(4);
  const std::vector<apps::CorpusProgram> corpus = apps::BuildTable6Corpus(0x5eed);
  ASSERT_FALSE(corpus.empty());
  for (const apps::CorpusProgram& program : corpus) {
    const std::vector<size_t> serial = x86::FindVmfuncBytes(program.code);
    // Exercise several chunk sizes, including ones that do not divide the
    // image evenly.
    for (const size_t chunk : {size_t{4096}, size_t{4095}, size_t{1 << 16}, size_t{257}}) {
      x86::ScanOptions options;
      options.pool = &pool;
      options.chunk_bytes = chunk;
      EXPECT_EQ(x86::FindVmfuncBytes(program.code, options), serial)
          << program.name << " chunk=" << chunk;
    }
  }
}

TEST(ScanParityProperty, PatternsStraddlingChunkBoundariesAreFound) {
  sb::ThreadPool pool(4);
  // Place the 3-byte pattern at every offset around each chunk boundary so
  // the straddle cases (pattern starting 1 or 2 bytes before a boundary) are
  // all exercised.
  const size_t chunk = 256;
  std::vector<uint8_t> code(chunk * 8, 0x90);
  std::vector<size_t> expected;
  for (size_t b = 1; b < 8; ++b) {
    const size_t off = b * chunk - (b % 3);  // Boundary, boundary-1, boundary-2.
    code[off] = 0x0f;
    code[off + 1] = 0x01;
    code[off + 2] = 0xd4;
    expected.push_back(off);
  }
  EXPECT_EQ(x86::FindVmfuncBytes(code), expected);
  x86::ScanOptions options;
  options.pool = &pool;
  options.chunk_bytes = chunk;
  x86::ScanStats stats;
  options.stats = &stats;
  EXPECT_EQ(x86::FindVmfuncBytes(code, options), expected);
  EXPECT_EQ(stats.pages, 8u);
}

// Regression test for the scan-accounting data race: one ScanStats shared as
// the sink of scans running concurrently on different host threads (the
// shape RewriteProcessImage produces when registrations overlap). The fields
// are atomics; under TSan this test is the witness, and the folded totals
// must be exact.
TEST(ScanParityProperty, SharedScanStatsAcrossConcurrentScansIsExact) {
  const size_t chunk = 256;
  const std::vector<uint8_t> code(chunk * 16, 0x90);
  x86::ScanStats stats;
  constexpr int kScanners = 4;
  constexpr int kScansEach = 8;
  std::vector<std::thread> scanners;
  for (int t = 0; t < kScanners; ++t) {
    scanners.emplace_back([&code, &stats, chunk] {
      sb::ThreadPool pool(2);
      x86::ScanOptions options;
      options.pool = &pool;
      options.chunk_bytes = chunk;
      options.stats = &stats;
      for (int i = 0; i < kScansEach; ++i) {
        EXPECT_TRUE(x86::FindVmfuncBytes(code, options).empty());
      }
    });
  }
  for (std::thread& t : scanners) {
    t.join();
  }
  EXPECT_EQ(stats.pages, static_cast<uint64_t>(kScanners) * kScansEach * 16);
  EXPECT_GE(stats.threads, 1u);
  EXPECT_LE(stats.threads, 3u);  // Pool of 2 + the calling thread.
}

TEST(ScanParityProperty, ParallelRewriteMatchesSerialOnTable6Corpus) {
  sb::ThreadPool pool(4);
  for (const apps::CorpusProgram& program : apps::BuildTable6Corpus(0x5eed)) {
    x86::RewriteConfig serial_config;
    auto serial = x86::RewriteVmfunc(program.code, serial_config);
    ASSERT_TRUE(serial.ok()) << program.name;

    x86::RewriteConfig pooled_config;
    pooled_config.scan_pool = &pool;
    auto pooled = x86::RewriteVmfunc(program.code, pooled_config);
    ASSERT_TRUE(pooled.ok()) << program.name;

    // The rewrite output is byte-identical regardless of scan fan-out.
    EXPECT_EQ(pooled->code, serial->code) << program.name;
    EXPECT_EQ(pooled->rewrite_page, serial->rewrite_page) << program.name;
    EXPECT_EQ(pooled->stats.nop_replaced, serial->stats.nop_replaced) << program.name;
    EXPECT_EQ(pooled->stats.windows_relocated, serial->stats.windows_relocated) << program.name;
    EXPECT_EQ(pooled->stats.scan_pages, serial->stats.scan_pages) << program.name;
  }
}

// ---- Executor determinism ----

TEST(ExecutorProperty, RunsAreDeterministic) {
  auto run_once = [] {
    hw::MachineConfig mc;
    mc.num_cores = 4;
    mc.ram_bytes = 1 * kGiB;
    hw::Machine machine(mc);
    sim::Executor exec(machine);
    sim::FifoResource lock;
    sb::Rng rng(42);
    for (int t = 0; t < 4; ++t) {
      const uint64_t step = 500 + rng.Below(1000);
      exec.AddThread("t" + std::to_string(t), t, [&lock, step](sim::SimThread& thread) {
        const uint64_t start = lock.Acquire(thread.core().cycles());
        thread.core().SyncClockTo(start + step);
        lock.Release(thread.core().cycles());
        return thread.iterations() < 19;
      });
    }
    exec.RunToCompletion();
    return exec.max_time();
  };
  const uint64_t a = run_once();
  const uint64_t b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

}  // namespace
