// Cross-module property tests: decoder fuzzing, EPT remaps against a
// reference map, file-system operations against a reference model (with a
// remount in the middle), and executor determinism.

#include <map>
#include <thread>

#include <gtest/gtest.h>

#include "src/apps/corpus.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/fs/block_device.h"
#include "src/fs/xv6fs.h"
#include "src/hw/ept.h"
#include "src/hw/machine.h"
#include "src/sim/executor.h"
#include "src/x86/assembler.h"
#include "src/x86/decoder.h"
#include "src/x86/emulator.h"
#include "src/x86/rewriter.h"
#include "src/x86/scanner.h"

namespace {

using sb::kGiB;
using sb::kMiB;
using sb::kPageSize;

// ---- Decoder fuzz: arbitrary bytes never crash, lengths stay sane ----

class DecoderFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DecoderFuzzTest, RandomBytesDecodeSafely) {
  sb::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  std::vector<uint8_t> bytes(4096);
  for (auto& b : bytes) {
    b = static_cast<uint8_t>(rng.Next());
  }
  size_t pos = 0;
  while (pos < bytes.size()) {
    const x86::Insn insn = x86::Decode(bytes, pos);
    ASSERT_GE(insn.length, 1);
    ASSERT_LE(insn.length, 15);
    if (insn.valid) {
      // Field offsets stay inside the instruction.
      if (insn.has_modrm) {
        ASSERT_LT(insn.modrm_off, insn.length);
      }
      if (insn.disp_len > 0) {
        ASSERT_LE(insn.disp_off + insn.disp_len, insn.length);
      }
      if (insn.imm_len > 0) {
        ASSERT_LE(insn.imm_off + insn.imm_len, insn.length);
      }
    }
    pos += insn.length;
  }
  // The sweep exactly tiles the buffer.
  const std::vector<size_t> starts = x86::LinearSweep(bytes);
  ASSERT_FALSE(starts.empty());
  EXPECT_EQ(starts.front(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest, ::testing::Range(0, 16));

// ---- EPT: random remaps behave like a reference map ----

class EptPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EptPropertyTest, RandomRemapsMatchReference) {
  hw::HostPhysMem mem(2 * kGiB);
  hw::FrameAllocator frames(1 * kGiB, 256 * kMiB);
  auto base = hw::Ept::Create(mem, frames);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*base)->Map(0, 0, sb::kHugePage1G, hw::kEptRwx).ok());

  auto derived = (*base)->ShallowCopy();
  ASSERT_TRUE(derived.ok());

  sb::Rng rng(static_cast<uint64_t>(GetParam()) * 1337 + 3);
  std::map<hw::Gpa, hw::Hpa> reference;
  for (int i = 0; i < 64; ++i) {
    const hw::Gpa gpa = rng.Below(1ULL << 18) * kPageSize;  // Within the 1G region.
    const hw::Hpa target = (rng.Below(1ULL << 18)) * kPageSize;
    ASSERT_TRUE((*derived)->RemapGpaPage(gpa, target).ok());
    reference[gpa] = target;
  }
  // Remapped pages translate to their targets; everything else is identity.
  for (const auto& [gpa, target] : reference) {
    const hw::EptWalk walk = (*derived)->Walk(gpa + 0x123, hw::kEptRead);
    ASSERT_TRUE(walk.ok);
    EXPECT_EQ(walk.hpa, target + 0x123);
    // The base EPT is untouched.
    EXPECT_EQ((*base)->Walk(gpa + 0x123, hw::kEptRead).hpa, gpa + 0x123);
  }
  for (int i = 0; i < 64; ++i) {
    const hw::Gpa gpa = rng.Below(1ULL << 18) * kPageSize;
    if (!reference.contains(gpa)) {
      EXPECT_EQ((*derived)->Walk(gpa, hw::kEptRead).hpa, gpa);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EptPropertyTest, ::testing::Range(0, 8));

// ---- File system vs a reference model, with a remount mid-way ----

fsys::BlockTransport DiskTransport(fsys::RamDisk* disk) {
  return [disk](const mk::Message& msg) -> sb::StatusOr<mk::Message> {
    uint32_t block = 0;
    std::memcpy(&block, msg.data.data(), 4);
    if (msg.tag == fsys::kBlockRead) {
      mk::Message reply(1);
      reply.data.resize(fsys::kBlockSize);
      SB_RETURN_IF_ERROR(disk->Read(nullptr, block, reply.data));
      return reply;
    }
    SB_RETURN_IF_ERROR(disk->Write(
        nullptr, block, std::span<const uint8_t>(msg.data.data() + 4, fsys::kBlockSize)));
    return mk::Message(1);
  };
}

class FsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FsPropertyTest, RandomOpsMatchReferenceModel) {
  fsys::RamDisk disk(8192);
  auto fs = std::make_unique<fsys::Xv6Fs>(DiskTransport(&disk));
  ASSERT_TRUE(fs->Mkfs().ok());
  ASSERT_TRUE(fs->Mount().ok());

  sb::Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 11);
  std::map<std::string, std::string> reference;  // path -> contents
  auto random_path = [&] { return "/f" + std::to_string(rng.Below(12)); };

  for (int step = 0; step < 250; ++step) {
    if (step == 125) {
      // Remount mid-run: everything must persist.
      fs = std::make_unique<fsys::Xv6Fs>(DiskTransport(&disk));
      ASSERT_TRUE(fs->Mount().ok());
    }
    const std::string path = random_path();
    switch (rng.Below(4)) {
      case 0: {  // Create
        const bool existed = reference.contains(path);
        const bool created = fs->Create(path).ok();
        EXPECT_EQ(created, !existed) << path;
        if (created) {
          reference[path] = "";
        }
        break;
      }
      case 1: {  // Write (append-style at a random offset within size+1K)
        if (!reference.contains(path)) {
          break;
        }
        auto inum = fs->Lookup(path);
        ASSERT_TRUE(inum.ok());
        std::string& contents = reference[path];
        const uint32_t offset = static_cast<uint32_t>(rng.Below(contents.size() + 512));
        const size_t len = 1 + rng.Below(700);
        std::string data(len, static_cast<char>('a' + rng.Below(26)));
        ASSERT_TRUE(fs->WriteFile(*inum, offset,
                                  std::span<const uint8_t>(
                                      reinterpret_cast<const uint8_t*>(data.data()), len))
                        .ok());
        if (contents.size() < offset + len) {
          contents.resize(offset + len, '\0');
        }
        contents.replace(offset, len, data);
        break;
      }
      case 2: {  // Read-verify the whole file
        if (!reference.contains(path)) {
          EXPECT_FALSE(fs->Lookup(path).ok());
          break;
        }
        auto inum = fs->Lookup(path);
        ASSERT_TRUE(inum.ok());
        const std::string& contents = reference[path];
        EXPECT_EQ(*fs->FileSize(*inum), contents.size());
        std::vector<uint8_t> out(contents.size());
        if (!contents.empty()) {
          ASSERT_TRUE(fs->ReadFile(*inum, 0, out).ok());
          EXPECT_EQ(std::string(out.begin(), out.end()), contents) << path;
        }
        break;
      }
      case 3: {  // Unlink
        const bool existed = reference.contains(path);
        EXPECT_EQ(fs->Unlink(path).ok(), existed) << path;
        reference.erase(path);
        break;
      }
    }
  }
  // Final directory listing matches the reference exactly, and the on-disk
  // structures pass the consistency check.
  auto names = fs->ListDir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), reference.size());
  const sb::Status fsck = fs->Fsck();
  EXPECT_TRUE(fsck.ok()) << fsck.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsPropertyTest, ::testing::Range(0, 8));

// ---- Parallel VMFUNC scan == serial scan, byte for byte ----

TEST(ScanParityProperty, ParallelScanMatchesSerialOnTable6Corpus) {
  sb::ThreadPool pool(4);
  const std::vector<apps::CorpusProgram> corpus = apps::BuildTable6Corpus(0x5eed);
  ASSERT_FALSE(corpus.empty());
  for (const apps::CorpusProgram& program : corpus) {
    const std::vector<size_t> serial = x86::FindVmfuncBytes(program.code);
    // Exercise several chunk sizes, including ones that do not divide the
    // image evenly.
    for (const size_t chunk : {size_t{4096}, size_t{4095}, size_t{1 << 16}, size_t{257}}) {
      x86::ScanOptions options;
      options.pool = &pool;
      options.chunk_bytes = chunk;
      EXPECT_EQ(x86::FindVmfuncBytes(program.code, options), serial)
          << program.name << " chunk=" << chunk;
    }
  }
}

TEST(ScanParityProperty, PatternsStraddlingChunkBoundariesAreFound) {
  sb::ThreadPool pool(4);
  // Place the 3-byte pattern at every offset around each chunk boundary so
  // the straddle cases (pattern starting 1 or 2 bytes before a boundary) are
  // all exercised.
  const size_t chunk = 256;
  std::vector<uint8_t> code(chunk * 8, 0x90);
  std::vector<size_t> expected;
  for (size_t b = 1; b < 8; ++b) {
    const size_t off = b * chunk - (b % 3);  // Boundary, boundary-1, boundary-2.
    code[off] = 0x0f;
    code[off + 1] = 0x01;
    code[off + 2] = 0xd4;
    expected.push_back(off);
  }
  EXPECT_EQ(x86::FindVmfuncBytes(code), expected);
  x86::ScanOptions options;
  options.pool = &pool;
  options.chunk_bytes = chunk;
  x86::ScanStats stats;
  options.stats = &stats;
  EXPECT_EQ(x86::FindVmfuncBytes(code, options), expected);
  EXPECT_EQ(stats.pages, 8u);
}

// Regression test for the scan-accounting data race: one ScanStats shared as
// the sink of scans running concurrently on different host threads (the
// shape RewriteProcessImage produces when registrations overlap). The fields
// are atomics; under TSan this test is the witness, and the folded totals
// must be exact.
TEST(ScanParityProperty, SharedScanStatsAcrossConcurrentScansIsExact) {
  const size_t chunk = 256;
  const std::vector<uint8_t> code(chunk * 16, 0x90);
  x86::ScanStats stats;
  constexpr int kScanners = 4;
  constexpr int kScansEach = 8;
  std::vector<std::thread> scanners;
  for (int t = 0; t < kScanners; ++t) {
    scanners.emplace_back([&code, &stats, chunk] {
      sb::ThreadPool pool(2);
      x86::ScanOptions options;
      options.pool = &pool;
      options.chunk_bytes = chunk;
      options.stats = &stats;
      for (int i = 0; i < kScansEach; ++i) {
        EXPECT_TRUE(x86::FindVmfuncBytes(code, options).empty());
      }
    });
  }
  for (std::thread& t : scanners) {
    t.join();
  }
  EXPECT_EQ(stats.pages, static_cast<uint64_t>(kScanners) * kScansEach * 16);
  EXPECT_GE(stats.threads, 1u);
  EXPECT_LE(stats.threads, 3u);  // Pool of 2 + the calling thread.
}

TEST(ScanParityProperty, ParallelRewriteMatchesSerialOnTable6Corpus) {
  sb::ThreadPool pool(4);
  for (const apps::CorpusProgram& program : apps::BuildTable6Corpus(0x5eed)) {
    x86::RewriteConfig serial_config;
    auto serial = x86::RewriteVmfunc(program.code, serial_config);
    ASSERT_TRUE(serial.ok()) << program.name;

    x86::RewriteConfig pooled_config;
    pooled_config.scan_pool = &pool;
    auto pooled = x86::RewriteVmfunc(program.code, pooled_config);
    ASSERT_TRUE(pooled.ok()) << program.name;

    // The rewrite output is byte-identical regardless of scan fan-out.
    EXPECT_EQ(pooled->code, serial->code) << program.name;
    EXPECT_EQ(pooled->rewrite_page, serial->rewrite_page) << program.name;
    EXPECT_EQ(pooled->stats.nop_replaced, serial->stats.nop_replaced) << program.name;
    EXPECT_EQ(pooled->stats.windows_relocated, serial->stats.windows_relocated) << program.name;
    EXPECT_EQ(pooled->stats.scan_pages, serial->stats.scan_pages) << program.name;
  }
}

// ---- Scanner fuzz: random byte streams vs a naive reference search ----

std::vector<size_t> NaiveFindPattern(const std::vector<uint8_t>& bytes) {
  std::vector<size_t> hits;
  for (size_t i = 0; i + 3 <= bytes.size(); ++i) {
    if (bytes[i] == 0x0f && bytes[i + 1] == 0x01 && bytes[i + 2] == 0xd4) {
      hits.push_back(i);
    }
  }
  return hits;
}

class ScannerFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ScannerFuzzTest, RandomStreamsMatchTheNaiveSearch) {
  sb::Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  std::vector<uint8_t> bytes(48 * 1024);
  for (auto& b : bytes) {
    b = static_cast<uint8_t>(rng.Next());
  }
  // Sprinkle the pattern at arbitrary offsets: mid-"instruction" for any
  // later decode, back to back, wherever the dice land.
  for (int i = 0; i < 24; ++i) {
    const size_t off = rng.Below(bytes.size() - 3);
    bytes[off] = 0x0f;
    bytes[off + 1] = 0x01;
    bytes[off + 2] = 0xd4;
  }
  const std::vector<size_t> expected = NaiveFindPattern(bytes);
  ASSERT_GE(expected.size(), 1u);
  EXPECT_EQ(x86::FindVmfuncBytes(bytes), expected);
  // The chunked parallel scan agrees at awkward chunk sizes.
  sb::ThreadPool pool(4);
  for (const size_t chunk : {size_t{257}, size_t{4096}}) {
    x86::ScanOptions options;
    options.pool = &pool;
    options.chunk_bytes = chunk;
    EXPECT_EQ(x86::FindVmfuncBytes(bytes, options), expected) << "chunk=" << chunk;
  }
  // The classifying scan never crashes on arbitrary surrounding bytes and
  // misses nothing the byte search found.
  const std::vector<x86::VmfuncHit> hits = x86::ScanForVmfunc(bytes);
  ASSERT_EQ(hits.size(), expected.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].pattern_off, expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScannerFuzzTest, ::testing::Range(0, 8));

// ---- Rewriter: every embedding class is scrubbed, behavior preserved ----

constexpr uint64_t kRwCodeBase = 0x400000;
constexpr uint64_t kRwPageBase = 0x1000;
constexpr uint64_t kRwDataBase = 0x10000;
constexpr uint64_t kRwDataLen = 0x1000;

struct EmuRun {
  x86::StopInfo stop;
  x86::CpuState state;
  std::vector<uint8_t> data;
};

EmuRun RunProgram(const std::vector<uint8_t>& code, const std::vector<uint8_t>& page) {
  x86::Emulator emu;
  emu.LoadBytes(kRwCodeBase, code);
  if (!page.empty()) {
    emu.LoadBytes(kRwPageBase, page);
  }
  emu.state().reg(x86::Reg::kRax) = 0x1111;
  emu.state().reg(x86::Reg::kRbx) = 0x2222;
  emu.state().reg(x86::Reg::kRcx) = 0x3333;
  emu.state().reg(x86::Reg::kRdx) = 0x4444;
  emu.state().reg(x86::Reg::kRsi) = kRwDataBase + 0x100;
  emu.state().reg(x86::Reg::kRdi) = kRwDataBase;
  emu.state().rip = kRwCodeBase;
  emu.state().reg(x86::Reg::kRsp) = x86::Emulator::kInitialRsp;
  EmuRun r;
  r.stop = emu.Run(100000);
  r.state = emu.state();
  r.data.resize(kRwDataLen);
  for (uint64_t i = 0; i < kRwDataLen; ++i) {
    r.data[i] = emu.ReadByte(kRwDataBase + i);
  }
  return r;
}

// Random flag-agnostic filler that keeps rdi (the data pointer) and rsp
// intact so memory operands stay well-defined.
void EmitFiller(x86::Assembler& a, sb::Rng& rng, int n_ops) {
  static const x86::Reg kPool[] = {x86::Reg::kRax, x86::Reg::kRbx, x86::Reg::kRcx,
                                   x86::Reg::kRdx, x86::Reg::kR8};
  auto reg = [&] { return kPool[rng.Below(5)]; };
  for (int i = 0; i < n_ops; ++i) {
    switch (rng.Below(6)) {
      case 0:
        a.MovRI64(reg(), rng.Below(1u << 30));
        break;
      case 1:
        a.AddRR(reg(), reg());
        break;
      case 2:
        a.XorRR(reg(), reg());
        break;
      case 3:
        a.MovMR64(x86::Reg::kRdi, static_cast<int32_t>(rng.Below(0x80) * 8), reg());
        break;
      case 4:
        a.MovRM64(reg(), x86::Reg::kRdi, static_cast<int32_t>(rng.Below(0x80) * 8));
        break;
      case 5:
        a.ShlRI(reg(), static_cast<uint8_t>(rng.Below(8)));
        break;
    }
  }
}

class RewriteEmbeddingTest : public ::testing::TestWithParam<int> {};

// Plants `0F 01 D4` as a true VMFUNC at an instruction boundary and inside
// every field a Table 3 occurrence can hide in (ModRM, SIB, displacement,
// immediate, spanning two instructions), surrounded by random filler. After
// rewriting: zero occurrences anywhere, and the program's architectural
// effect is unchanged.
TEST_P(RewriteEmbeddingTest, EveryEmbeddingIsScrubbedAndEquivalent) {
  struct Embedding {
    const char* name;
    x86::VmfuncOverlap expected;
    void (*plant)(x86::Assembler&);
  };
  static const Embedding kEmbeddings[] = {
      {"boundary", x86::VmfuncOverlap::kIsVmfunc, [](x86::Assembler& a) { a.Vmfunc(); }},
      {"imm", x86::VmfuncOverlap::kInImm,
       [](x86::Assembler& a) { a.AddRI(x86::Reg::kRax, 0x00d4010f); }},
      // imul rcx, [rdi], 0xD401 — the 0x0F is the ModRM byte.
      {"modrm", x86::VmfuncOverlap::kInModrm,
       [](x86::Assembler& a) { a.Raw({0x48, 0x69, 0x0f, 0x01, 0xd4, 0x00, 0x00}); }},
      // lea rbx, [rdi + rcx*1 + 0xD401] — the 0x0F is the SIB byte.
      {"sib", x86::VmfuncOverlap::kInSib,
       [](x86::Assembler& a) { a.Raw({0x48, 0x8d, 0x9c, 0x0f, 0x01, 0xd4, 0x00, 0x00}); }},
      // add rbx, [rdi + 0xD4010F] — the pattern sits in the displacement.
      {"disp", x86::VmfuncOverlap::kInDisp,
       [](x86::Assembler& a) { a.Raw({0x48, 0x03, 0x9f, 0x0f, 0x01, 0xd4, 0x00}); }},
      // mov eax, 0x0F000000 ends with 0F; add esp, edx is 01 D4. The 32-bit
      // add zero-extends RSP, so it is saved around the gadget.
      {"spans", x86::VmfuncOverlap::kSpans,
       [](x86::Assembler& a) {
         a.MovRR64(x86::Reg::kR9, x86::Reg::kRsp);
         a.MovRI32(x86::Reg::kRdx, 0);
         a.MovRI32(x86::Reg::kRax, 0x0f000000);
         a.Raw({0x01, 0xd4});
         a.MovRR64(x86::Reg::kRsp, x86::Reg::kR9);
       }},
  };

  x86::RewriteConfig config;
  config.code_base = kRwCodeBase;
  config.rewrite_page_base = kRwPageBase;

  for (const Embedding& e : kEmbeddings) {
    sb::Rng rng(static_cast<uint64_t>(GetParam()) * 6364136223846793005ULL +
                static_cast<uint64_t>(e.expected));
    x86::Assembler a;
    EmitFiller(a, rng, 2 + static_cast<int>(rng.Below(6)));
    e.plant(a);
    EmitFiller(a, rng, 2 + static_cast<int>(rng.Below(6)));
    a.Ret();
    const std::vector<uint8_t> code = a.Take();

    // The pre-rewrite scan sees the planted embedding with its class.
    const std::vector<x86::VmfuncHit> hits = x86::ScanForVmfunc(code);
    ASSERT_FALSE(hits.empty()) << e.name;
    bool classified = false;
    for (const x86::VmfuncHit& hit : hits) {
      classified |= hit.overlap == e.expected;
    }
    EXPECT_TRUE(classified) << e.name;

    // Post-rewrite: zero occurrences in the code and on the rewrite page.
    auto rewritten = x86::RewriteVmfunc(code, config);
    ASSERT_TRUE(rewritten.ok()) << e.name << ": " << rewritten.status().ToString();
    EXPECT_TRUE(x86::FindVmfuncBytes(rewritten->code).empty()) << e.name;
    EXPECT_TRUE(x86::FindVmfuncBytes(rewritten->rewrite_page).empty()) << e.name;
    ASSERT_EQ(rewritten->code.size(), code.size()) << e.name;

    // Behavioral equivalence (flags excluded: split arithmetic may differ).
    const EmuRun orig = RunProgram(code, {});
    const EmuRun rewr = RunProgram(rewritten->code, rewritten->rewrite_page);
    EXPECT_EQ(rewr.stop.reason, x86::StopReason::kRet) << e.name;
    EXPECT_EQ(rewr.stop.vmfunc_count, 0u) << e.name << ": rewritten code executed VMFUNC";
    if (e.expected == x86::VmfuncOverlap::kIsVmfunc) {
      // A true VMFUNC halts the emulator, so the original has no comparable
      // end state — the rewrite (NOP fill) must simply run through it.
      EXPECT_EQ(orig.stop.reason, x86::StopReason::kVmfunc) << e.name;
      continue;
    }
    ASSERT_EQ(orig.stop.reason, x86::StopReason::kRet) << e.name;
    for (int r = 0; r < x86::kNumRegs; ++r) {
      EXPECT_EQ(orig.state.regs[r], rewr.state.regs[r])
          << e.name << " reg " << x86::RegName(static_cast<x86::Reg>(r));
    }
    EXPECT_EQ(orig.data, rewr.data) << e.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEmbeddingTest, ::testing::Range(0, 12));

// The Table 6 corpus (multi-MiB generated programs, including the call-imm
// pattern generator) rewrites to zero occurrences end to end.
TEST(RewriteScrubProperty, Table6CorpusRewritesToZeroOccurrences) {
  for (const apps::CorpusProgram& program : apps::BuildTable6Corpus(0xfeed)) {
    auto rewritten = x86::RewriteVmfunc(program.code, x86::RewriteConfig{});
    ASSERT_TRUE(rewritten.ok()) << program.name;
    EXPECT_TRUE(x86::FindVmfuncBytes(rewritten->code).empty()) << program.name;
    EXPECT_TRUE(x86::FindVmfuncBytes(rewritten->rewrite_page).empty()) << program.name;
  }
}

// ---- Executor determinism ----

TEST(ExecutorProperty, RunsAreDeterministic) {
  auto run_once = [] {
    hw::MachineConfig mc;
    mc.num_cores = 4;
    mc.ram_bytes = 1 * kGiB;
    hw::Machine machine(mc);
    sim::Executor exec(machine);
    sim::FifoResource lock;
    sb::Rng rng(42);
    for (int t = 0; t < 4; ++t) {
      const uint64_t step = 500 + rng.Below(1000);
      exec.AddThread("t" + std::to_string(t), t, [&lock, step](sim::SimThread& thread) {
        const uint64_t start = lock.Acquire(thread.core().cycles());
        thread.core().SyncClockTo(start + step);
        lock.Release(thread.core().cycles());
        return thread.iterations() < 19;
      });
    }
    exec.RunToCompletion();
    return exec.max_time();
  };
  const uint64_t a = run_once();
  const uint64_t b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

}  // namespace
