// Emulator unit tests for the rewriter's instruction subset.

#include "src/x86/emulator.h"

#include <gtest/gtest.h>

#include "src/x86/assembler.h"

namespace x86 {
namespace {

constexpr uint64_t kCodeBase = 0x400000;

StopInfo RunProgram(Emulator& emu, const std::vector<uint8_t>& code,
                    uint64_t max_steps = 10000) {
  emu.LoadBytes(kCodeBase, code);
  emu.state().rip = kCodeBase;
  return emu.Run(max_steps);
}

TEST(Emulator, MovImmAndAdd) {
  Assembler a;
  a.MovRI64(Reg::kRax, 40);
  a.AddRI(Reg::kRax, 2);
  a.Ret();
  Emulator emu;
  const StopInfo info = RunProgram(emu, a.Take());
  EXPECT_EQ(info.reason, StopReason::kRet);
  EXPECT_EQ(emu.state().reg(Reg::kRax), 42u);
}

TEST(Emulator, PushPopRoundTrip) {
  Assembler a;
  a.MovRI64(Reg::kRcx, 0xdeadbeef);
  a.PushR(Reg::kRcx);
  a.MovRI64(Reg::kRcx, 0);
  a.PopR(Reg::kRdx);
  a.Ret();
  Emulator emu;
  const StopInfo info = RunProgram(emu, a.Take());
  EXPECT_EQ(info.reason, StopReason::kRet);
  EXPECT_EQ(emu.state().reg(Reg::kRdx), 0xdeadbeefu);
  EXPECT_EQ(emu.state().reg(Reg::kRsp), Emulator::kInitialRsp);
}

TEST(Emulator, MemoryLoadStore) {
  Assembler a;
  a.MovRI64(Reg::kRdi, 0x10000);
  a.MovRI64(Reg::kRax, 0x1234567890abcdefULL);
  a.MovMR64(Reg::kRdi, 0x20, Reg::kRax);
  a.MovRM64(Reg::kRbx, Reg::kRdi, 0x20);
  a.Ret();
  Emulator emu;
  const StopInfo info = RunProgram(emu, a.Take());
  EXPECT_EQ(info.reason, StopReason::kRet);
  EXPECT_EQ(emu.state().reg(Reg::kRbx), 0x1234567890abcdefULL);
  EXPECT_EQ(emu.ReadMem(0x10020, 64), 0x1234567890abcdefULL);
}

TEST(Emulator, LeaComputesEffectiveAddress) {
  Assembler a;
  a.MovRI64(Reg::kRdi, 0x1000);
  a.MovRI64(Reg::kRcx, 0x20);
  a.Lea(Reg::kRax, Reg::kRdi, static_cast<int>(Reg::kRcx), 4, 0x10);
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_EQ(emu.state().reg(Reg::kRax), 0x1000u + 0x20u * 4 + 0x10u);
}

TEST(Emulator, ImulThreeOperandRegister) {
  Assembler a;
  a.MovRI64(Reg::kRdi, 7);
  a.ImulRRI(Reg::kRcx, Reg::kRdi, 6);
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_EQ(emu.state().reg(Reg::kRcx), 42u);
}

TEST(Emulator, ImulMemoryOperand) {
  Assembler a;
  a.MovRI64(Reg::kRdi, 0x10000);
  a.MovRI64(Reg::kRax, 9);
  a.MovMR64(Reg::kRdi, 0, Reg::kRax);
  a.ImulRMI(Reg::kRcx, Reg::kRdi, 0, 5);
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_EQ(emu.state().reg(Reg::kRcx), 45u);
}

TEST(Emulator, ImulNegative) {
  Assembler a;
  a.MovRI64(Reg::kRdi, static_cast<uint64_t>(-3));
  a.ImulRRI(Reg::kRcx, Reg::kRdi, 14);
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_EQ(static_cast<int64_t>(emu.state().reg(Reg::kRcx)), -42);
}

TEST(Emulator, SubAndFlagsZero) {
  Assembler a;
  a.MovRI64(Reg::kRax, 5);
  a.SubRI(Reg::kRax, 5);
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_EQ(emu.state().reg(Reg::kRax), 0u);
  EXPECT_TRUE(emu.state().flags.zf);
  EXPECT_FALSE(emu.state().flags.sf);
}

TEST(Emulator, CmpSetsCarryOnBorrow) {
  Assembler a;
  a.MovRI64(Reg::kRax, 3);
  a.CmpRI(Reg::kRax, 5);
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_EQ(emu.state().reg(Reg::kRax), 3u);  // cmp does not write back.
  EXPECT_TRUE(emu.state().flags.cf);
  EXPECT_FALSE(emu.state().flags.zf);
  EXPECT_TRUE(emu.state().flags.sf);
}

TEST(Emulator, ConditionalBranchTaken) {
  // if (rax == 5) rbx = 1 else rbx = 2
  Assembler a;
  a.MovRI64(Reg::kRax, 5);
  a.CmpRI(Reg::kRax, 5);
  a.JccRel8(0x4, 11);  // je over "mov rbx, 2; jmp end" (10+... compute below)
  // Not taken path: mov rbx, 2 (10 bytes); jmp +10 over taken path.
  const std::vector<uint8_t> code = [] {
    Assembler b;
    b.MovRI64(Reg::kRax, 5);
    b.CmpRI(Reg::kRax, 5);
    const size_t jcc_at = b.size();
    b.JccRel8(0x4, 0);  // patched below
    b.MovRI64(Reg::kRbx, 2);
    const size_t jmp_at = b.size();
    b.JmpRel8(0);  // patched below
    const size_t taken = b.size();
    b.MovRI64(Reg::kRbx, 1);
    const size_t end = b.size();
    b.Ret();
    std::vector<uint8_t> bytes = b.Take();
    bytes[jcc_at + 1] = static_cast<uint8_t>(taken - (jcc_at + 2));
    bytes[jmp_at + 1] = static_cast<uint8_t>(end - (jmp_at + 2));
    return bytes;
  }();
  (void)a;
  Emulator emu;
  const StopInfo info = [&] {
    emu.LoadBytes(kCodeBase, code);
    emu.state().rip = kCodeBase;
    return emu.Run(1000);
  }();
  EXPECT_EQ(info.reason, StopReason::kRet);
  EXPECT_EQ(emu.state().reg(Reg::kRbx), 1u);
}

TEST(Emulator, CallAndRet) {
  // call f; hlt; f: mov rax, 7; ret  — run stops at hlt with rax == 7.
  Assembler b;
  const size_t call_at = b.size();
  b.CallRel32(0);
  b.Hlt();
  const size_t f = b.size();
  b.MovRI64(Reg::kRax, 7);
  b.Ret();
  std::vector<uint8_t> code = b.Take();
  const int32_t rel = static_cast<int32_t>(f - (call_at + 5));
  for (int i = 0; i < 4; ++i) {
    code[call_at + 1 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(static_cast<uint32_t>(rel) >> (8 * i));
  }
  Emulator emu;
  const StopInfo info = RunProgram(emu, code);
  EXPECT_EQ(info.reason, StopReason::kHlt);
  EXPECT_EQ(emu.state().reg(Reg::kRax), 7u);
}

TEST(Emulator, VmfuncStopsWithCount) {
  Assembler a;
  a.MovRI64(Reg::kRax, 0);
  a.Vmfunc();
  a.Ret();
  Emulator emu;
  const StopInfo info = RunProgram(emu, a.Take());
  EXPECT_EQ(info.reason, StopReason::kVmfunc);
  EXPECT_EQ(info.vmfunc_count, 1u);
}

TEST(Emulator, Mov32ZeroExtends) {
  Assembler a;
  a.MovRI64(Reg::kRax, 0xffffffffffffffffULL);
  a.MovRI32(Reg::kRax, 0x1234);
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_EQ(emu.state().reg(Reg::kRax), 0x1234u);
}

TEST(Emulator, XorLogicFlags) {
  Assembler a;
  a.MovRI64(Reg::kRax, 0xff);
  a.XorRI(Reg::kRax, 0xff);
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_EQ(emu.state().reg(Reg::kRax), 0u);
  EXPECT_TRUE(emu.state().flags.zf);
  EXPECT_FALSE(emu.state().flags.cf);
  EXPECT_FALSE(emu.state().flags.of);
}

TEST(Emulator, RspRelativeAddressing) {
  Assembler a;
  a.MovRI64(Reg::kRax, 0x42);
  a.PushR(Reg::kRax);
  a.MovRM64(Reg::kRbx, Reg::kRsp, 0);  // rbx = [rsp]
  a.PopR(Reg::kRcx);
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_EQ(emu.state().reg(Reg::kRbx), 0x42u);
  EXPECT_EQ(emu.state().reg(Reg::kRcx), 0x42u);
}

TEST(Emulator, ShiftLeftAndRight) {
  Assembler a;
  a.MovRI64(Reg::kRax, 0x10);
  a.ShlRI(Reg::kRax, 4);
  a.MovRI64(Reg::kRbx, 0x100);
  a.ShrRI(Reg::kRbx, 4);
  a.MovRI64(Reg::kRcx, static_cast<uint64_t>(-64));
  a.SarRI(Reg::kRcx, 3);
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_EQ(emu.state().reg(Reg::kRax), 0x100u);
  EXPECT_EQ(emu.state().reg(Reg::kRbx), 0x10u);
  EXPECT_EQ(static_cast<int64_t>(emu.state().reg(Reg::kRcx)), -8);
}

TEST(Emulator, IncDecPreserveCarry) {
  Assembler a;
  a.MovRI64(Reg::kRax, 0);
  a.SubRI(Reg::kRax, 1);  // Sets CF (borrow).
  a.IncR(Reg::kRbx);      // Must not clobber CF.
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_TRUE(emu.state().flags.cf);
  EXPECT_EQ(emu.state().reg(Reg::kRbx), 1u);
}

TEST(Emulator, NegAndNot) {
  Assembler a;
  a.MovRI64(Reg::kRax, 5);
  a.NegR(Reg::kRax);
  a.MovRI64(Reg::kRbx, 0);
  a.NotR(Reg::kRbx);
  a.Ret();
  Emulator emu;
  RunProgram(emu, a.Take());
  EXPECT_EQ(static_cast<int64_t>(emu.state().reg(Reg::kRax)), -5);
  EXPECT_EQ(emu.state().reg(Reg::kRbx), ~0ULL);
}

TEST(Emulator, UnsupportedInstructionStops) {
  const std::vector<uint8_t> code = {0x0f, 0xc7, 0xc1};  // rdrand-ish: unsupported
  Emulator emu;
  const StopInfo info = RunProgram(emu, code);
  EXPECT_EQ(info.reason, StopReason::kUnsupported);
}

TEST(Emulator, MaxStepsStops) {
  // Infinite loop: jmp -2.
  const std::vector<uint8_t> code = {0xeb, 0xfe};
  Emulator emu;
  const StopInfo info = RunProgram(emu, code, 100);
  EXPECT_EQ(info.reason, StopReason::kMaxSteps);
  EXPECT_EQ(info.steps, 100u);
}

}  // namespace
}  // namespace x86
