// SkyBridge integration tests: registration, the 396-cycle direct call, the
// address-space switch, long IPC, and the Section 4.4 / Section 7 security
// properties.
//
// The whole suite is parameterized over the crossing backend (DESIGN.md
// section 16): every test runs against EPTP, MPK and the kernel-fastpath
// baseline, skipping only the cases tied to a capability the backend lacks
// (EPTP slot behaviour on kSyscall, which installs no view slots).

#include "src/skybridge/skybridge.h"

#include <gtest/gtest.h>

#include "src/x86/assembler.h"
#include "src/x86/scanner.h"

namespace skybridge {
namespace {

using mk::CallEnv;
using mk::Handler;
using mk::Message;
using sb::kGiB;

hw::MachineConfig TestMachine() {
  hw::MachineConfig config;
  config.num_cores = 4;
  config.ram_bytes = 4 * kGiB;
  return config;
}

class SkyBridgeTest : public ::testing::TestWithParam<CrossingBackendKind> {
 protected:
  void Boot(mk::KernelProfile profile = mk::Sel4Profile(), SkyBridgeConfig config = {}) {
    config.crossing_backend = GetParam();
    sky_.reset();      // Tear down in dependency order before re-booting.
    kernel_.reset();
    machine_.reset();
    machine_ = std::make_unique<hw::Machine>(TestMachine());
    kernel_ = std::make_unique<mk::Kernel>(*machine_, std::move(profile));
    ASSERT_TRUE(kernel_->Boot().ok());
    sky_ = std::make_unique<SkyBridge>(*kernel_, config);
  }

  bool IsEptp() const { return GetParam() == CrossingBackendKind::kEptp; }
  bool IsMpk() const { return GetParam() == CrossingBackendKind::kMpk; }
  bool IsSyscall() const { return GetParam() == CrossingBackendKind::kSyscall; }

  struct Pair {
    mk::Process* client;
    mk::Process* server;
    mk::Thread* thread;
    ServerId sid;
  };

  Pair MakePair(Handler handler, int connections = 8) {
    Pair p;
    p.client = kernel_->CreateProcess("client").value();
    p.server = kernel_->CreateProcess("server").value();
    p.sid = sky_->RegisterServer(p.server, connections, std::move(handler)).value();
    SB_CHECK(sky_->RegisterClient(p.client, p.sid).ok());
    p.thread = p.client->AddThread(0);
    SB_CHECK(kernel_->ContextSwitchTo(machine_->core(0), p.client).ok());
    return p;
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<SkyBridge> sky_;
};

INSTANTIATE_TEST_SUITE_P(Backends, SkyBridgeTest,
                         ::testing::Values(CrossingBackendKind::kEptp,
                                           CrossingBackendKind::kMpk,
                                           CrossingBackendKind::kSyscall),
                         [](const ::testing::TestParamInfo<CrossingBackendKind>& param_info) {
                           return std::string(CrossingBackendName(param_info.param));
                         });

Handler EchoHandler() {
  return [](CallEnv& env) { return env.request; };
}

TEST_P(SkyBridgeTest, DirectCallRoundTrip) {
  Boot();
  Pair p = MakePair(EchoHandler());
  auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(42));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, 42u);
  EXPECT_EQ(sky_->stats().direct_calls, 1u);
}

TEST_P(SkyBridgeTest, WarmRoundtripMatchesTheBackendCostModel) {
  Boot();
  Pair p = MakePair(EchoHandler());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  }
  hw::Core& core = machine_->core(0);
  const uint64_t start = core.cycles();
  mk::CostBreakdown bd;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0), &bd).ok());
  }
  const uint64_t rt = (core.cycles() - start) / 100;
  const hw::CostModel& costs = machine_->costs();
  if (IsEptp()) {
    EXPECT_GE(rt, 396u);
    EXPECT_LE(rt, 500u);  // 396 + warm key-table/trampoline traffic.
    EXPECT_EQ(bd.vmfunc / 100, 2 * costs.vmfunc);
    EXPECT_EQ(bd.syscall_sysret, 0u);   // No kernel involvement.
    EXPECT_EQ(bd.context_switch, 0u);   // No CR3 write.
  } else if (IsMpk()) {
    // WRPKRU (~20 cycles) replaces VMFUNC (~134): cheaper than the paper's
    // roundtrip, still fully user-mode.
    EXPECT_LT(rt, 396u);
    EXPECT_EQ(bd.vmfunc / 100, 2 * costs.wrpkru);
    EXPECT_EQ(bd.syscall_sysret, 0u);
    EXPECT_EQ(bd.context_switch, 0u);
  } else {
    // The kernel fastpath traps and switches CR3 on every leg: no gate
    // cycles, but strictly dearer than either user-mode switch.
    EXPECT_GT(rt, 500u);
    EXPECT_EQ(bd.vmfunc, 0u);
    EXPECT_GT(bd.syscall_sysret, 0u);
    EXPECT_GT(bd.context_switch, 0u);
  }
  EXPECT_EQ(bd.ipi, 0u);
}

TEST_P(SkyBridgeTest, NoVmExitsInSteadyState) {
  Boot();
  Pair p = MakePair(EchoHandler());
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  kernel_->rootkernel()->ResetExitCounters();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  }
  EXPECT_EQ(kernel_->rootkernel()->exits_total(), 0u);
  EXPECT_EQ(machine_->total_vm_exits(), 0u);
}

TEST_P(SkyBridgeTest, HandlerRunsInServerAddressSpace) {
  Boot();
  uint64_t observed_cr3 = 0;
  uint64_t observed_identity = 0;
  Handler handler = [&](CallEnv& env) {
    observed_cr3 = env.core.cr3();
    observed_identity = *env.kernel.CurrentIdentity(env.core);
    SB_CHECK(env.core.WriteVirtU64(mk::kHeapVa + 0x200, 0xabcdULL).ok());
    return Message(0);
  };
  Pair p = MakePair(handler);
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());

  if (IsSyscall()) {
    // The kernel fastpath really switched CR3 to the server's root.
    EXPECT_EQ(observed_cr3, p.server->cr3());
  } else {
    // The hardware CR3 still held the *client's* root during the handler;
    // the view switch remapped it to the server's page tables.
    EXPECT_EQ(observed_cr3, p.client->cr3());
  }
  // Either way the identity page (and thus the kernel's view) said "server".
  EXPECT_EQ(observed_identity, p.server->pid());

  // The handler's write landed in the server's heap, not the client's.
  hw::Core& core = machine_->core(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, p.server).ok());
  EXPECT_EQ(*core.ReadVirtU64(mk::kHeapVa + 0x200), 0xabcdULL);
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, p.client).ok());
  EXPECT_EQ(*core.ReadVirtU64(mk::kHeapVa + 0x200), 0u);
}

TEST_P(SkyBridgeTest, LongMessagesThroughSharedBuffer) {
  Boot();
  std::string seen;
  Handler handler = [&seen](CallEnv& env) {
    seen = env.request.ToString();
    return Message::FromString(1, std::string(3000, 'r'));
  };
  Pair p = MakePair(handler);
  std::string big(5000, 'q');
  big[0] = 'Q';
  auto reply = sky_->DirectServerCall(p.thread, p.sid, Message::FromString(7, big));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(seen.size(), 5000u);
  EXPECT_EQ(seen[0], 'Q');
  EXPECT_EQ(reply->size(), 3000u);
  EXPECT_EQ(sky_->stats().long_calls, 1u);
}

TEST_P(SkyBridgeTest, UnregisteredClientRejected) {
  Boot();
  Pair p = MakePair(EchoHandler());
  auto* stranger = kernel_->CreateProcess("stranger").value();
  mk::Thread* t = stranger->AddThread(1);
  auto result = sky_->DirectServerCall(t, p.sid, Message(0));
  EXPECT_EQ(result.status().code(), sb::ErrorCode::kPermissionDenied);
  EXPECT_EQ(sky_->stats().rejected_calls, 1u);
}

TEST_P(SkyBridgeTest, ForgedCallingKeyRejected) {
  Boot();
  Pair p = MakePair(EchoHandler());
  auto result = sky_->CallWithForgedKey(p.thread, p.sid, Message(0), 0x1234);
  EXPECT_EQ(result.status().code(), sb::ErrorCode::kPermissionDenied);
  EXPECT_GE(sky_->stats().rejected_calls, 1u);
  // The legitimate path still works afterwards.
  EXPECT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
}

TEST_P(SkyBridgeTest, CallingKeyCheckCanBeDisabled) {
  SkyBridgeConfig config;
  config.calling_keys = false;
  Boot(mk::Sel4Profile(), config);
  Pair p = MakePair(EchoHandler());
  // With checks off, even a forged key passes (the ablation's insecurity).
  EXPECT_TRUE(sky_->CallWithForgedKey(p.thread, p.sid, Message(0), 0x1234).ok());
}

TEST_P(SkyBridgeTest, RegistrationRewritesPlantedGatePattern) {
  Boot();
  // A client whose binary carries a self-prepared gate instruction (the
  // SeCage-style attack): registration must rewrite away the backend's own
  // primitive — VMFUNC for EPTP, WRPKRU for MPK. The kernel fastpath has no
  // user-mode gate, so kSyscall leaves the image untouched.
  x86::Assembler a;
  a.MovRI64(x86::Reg::kRax, 0);
  if (IsMpk()) {
    a.Wrpkru();  // Malicious key switch.
    a.AddRI(x86::Reg::kRax, 0x00ef010f);  // And an embedded pattern.
  } else {
    a.Vmfunc();  // Malicious gate.
    a.AddRI(x86::Reg::kRax, 0x00d4010f);  // And an embedded pattern.
  }
  a.Ret();
  auto* evil = kernel_->CreateProcessWithImage("evil", a.Take()).value();
  auto* server = kernel_->CreateProcess("server").value();
  const ServerId sid = sky_->RegisterServer(server, 4, EchoHandler()).value();
  ASSERT_TRUE(sky_->RegisterClient(evil, sid).ok());

  if (IsSyscall()) {
    EXPECT_FALSE(evil->code_rewritten());
    EXPECT_EQ(x86::FindVmfuncBytes(evil->code_image()).size(), 2u);
    EXPECT_FALSE(evil->address_space().WalkVa(mk::kRewritePageVa).ok);
    return;
  }
  x86::ScanOptions options;
  options.pattern = IsMpk() ? x86::kWrpkruBytes : x86::kVmfuncBytes;
  if (sky_->config().registration_mode == RegistrationMode::kLazy) {
    // Staged registration (DESIGN.md section 17): nothing is scanned yet —
    // the planted gate is still in the image, but the code page is
    // non-executable in the EPT, so it cannot run before the scrub.
    EXPECT_FALSE(evil->code_rewritten());
    EXPECT_FALSE(x86::FindVmfuncBytes(evil->code_image(), options).empty());
    const hw::GuestWalk code_walk = evil->address_space().WalkVa(mk::kCodeVa);
    ASSERT_TRUE(code_walk.ok);
    hw::Ept* ept = kernel_->rootkernel()->ept(evil->ept_id());
    ASSERT_NE(ept, nullptr);
    EXPECT_FALSE(ept->Walk(code_walk.gpa, hw::kEptExec).ok);
    // The first execution faults into the rewrite-on-first-execute slow
    // path, which scrubs the page and flips it executable.
    mk::Thread* thread = evil->AddThread(0);
    ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), evil).ok());
    ASSERT_TRUE(sky_->DirectServerCall(thread, sid, Message(1)).ok());
    EXPECT_GE(sky_->stats().exec_faults, 1u);
    EXPECT_GE(sky_->stats().lazy_rewrites, 1u);
    EXPECT_TRUE(ept->Walk(code_walk.gpa, hw::kEptExec).ok);
  }
  EXPECT_TRUE(evil->code_rewritten());
  EXPECT_TRUE(x86::FindVmfuncBytes(evil->code_image(), options).empty());
  // The VMFUNC scrub runs for every view-slot backend, MPK included.
  EXPECT_TRUE(x86::FindVmfuncBytes(evil->code_image()).empty());
  EXPECT_GE(sky_->stats().rewritten_vmfuncs, 2u);
  // The rewrite window got mapped at the pattern's fixed address: VMFUNC
  // snippets at window 0 (the paper's address), WRPKRU snippets at window 1.
  const hw::Gva window = mk::kRewritePageVa + (IsMpk() ? 16 * sb::kPageSize : 0);
  EXPECT_TRUE(evil->address_space().WalkVa(window).ok);
}

TEST_P(SkyBridgeTest, CleanBinariesAreLeftAlone) {
  Boot();
  Pair p = MakePair(EchoHandler());
  EXPECT_TRUE(x86::FindVmfuncBytes(p.client->code_image()).empty());
  EXPECT_FALSE(p.client->address_space().WalkVa(mk::kRewritePageVa).ok);
}

TEST_P(SkyBridgeTest, TimeoutForcesReturn) {
  SkyBridgeConfig config;
  config.timeout_cycles = 1000;
  Boot(mk::Sel4Profile(), config);
  Handler slow = [](CallEnv& env) {
    env.core.AdvanceCycles(1 << 20);  // A hanging server.
    return Message(0);
  };
  Pair p = MakePair(slow);
  auto result = sky_->DirectServerCall(p.thread, p.sid, Message(0));
  EXPECT_EQ(result.status().code(), sb::ErrorCode::kTimeout);
  EXPECT_EQ(sky_->stats().timeouts, 1u);
}

TEST_P(SkyBridgeTest, ConnectionLimitEnforced) {
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  const ServerId sid = sky_->RegisterServer(server, 2, EchoHandler()).value();
  auto* c1 = kernel_->CreateProcess("c1").value();
  auto* c2 = kernel_->CreateProcess("c2").value();
  auto* c3 = kernel_->CreateProcess("c3").value();
  EXPECT_TRUE(sky_->RegisterClient(c1, sid).ok());
  EXPECT_TRUE(sky_->RegisterClient(c2, sid).ok());
  EXPECT_EQ(sky_->RegisterClient(c3, sid).code(),
            sb::ErrorCode::kResourceExhausted);
}

TEST_P(SkyBridgeTest, MultiServerFanOut) {
  Boot();
  auto* client = kernel_->CreateProcess("client").value();
  mk::Thread* t = client->AddThread(0);
  std::vector<ServerId> sids;
  for (int i = 0; i < 5; ++i) {
    auto* server = kernel_->CreateProcess("server" + std::to_string(i)).value();
    const uint64_t marker = 100 + static_cast<uint64_t>(i);
    const ServerId sid =
        sky_->RegisterServer(server, 4, [marker](CallEnv&) { return Message(marker); }).value();
    ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
    sids.push_back(sid);
  }
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  for (int i = 0; i < 5; ++i) {
    auto reply = sky_->DirectServerCall(t, sids[static_cast<size_t>(i)], Message(0));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->tag, 100u + static_cast<uint64_t>(i));
  }
}

TEST_P(SkyBridgeTest, EptpLruEvictionBeyondCapacity) {
  if (IsSyscall()) {
    GTEST_SKIP() << "kSyscall bindings occupy no EPTP slots";
  }
  SkyBridgeConfig config;
  config.eptp_capacity = 3;  // Own EPT + 2 bindings.
  Boot(mk::Sel4Profile(), config);

  auto* client = kernel_->CreateProcess("client").value();
  mk::Thread* t = client->AddThread(0);
  std::vector<ServerId> sids;
  for (int i = 0; i < 4; ++i) {
    auto* server = kernel_->CreateProcess("server" + std::to_string(i)).value();
    const uint64_t marker = 200 + static_cast<uint64_t>(i);
    const ServerId sid =
        sky_->RegisterServer(server, 4, [marker](CallEnv&) { return Message(marker); }).value();
    ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
    sids.push_back(sid);
  }
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  EXPECT_EQ(*sky_->InstalledBindings(client), 2u);

  // Every server remains callable; evicted bindings are reinstalled on
  // demand (paper Section 10's future-work mechanism).
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      auto reply = sky_->DirectServerCall(t, sids[static_cast<size_t>(i)], Message(0));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_EQ(reply->tag, 200u + static_cast<uint64_t>(i));
    }
  }
  EXPECT_GT(sky_->stats().eptp_misses, 0u);
  EXPECT_EQ(*sky_->InstalledBindings(client), 2u);
}

TEST_P(SkyBridgeTest, RouteCacheServesRepeatCallsWithoutIndexLookups) {
  Boot();
  Pair p = MakePair(EchoHandler());
  const uint64_t misses0 = sky_->stats().binding_lookup_misses;
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  // First call: cold per-thread cache -> one index lookup.
  EXPECT_EQ(sky_->stats().binding_lookup_misses, misses0 + 1);
  const uint64_t hits0 = sky_->stats().binding_lookup_hits;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  }
  // Every repeat call hits the per-thread last-route cache; nothing falls
  // through to the index (and, a fortiori, nothing scans the binding table).
  EXPECT_EQ(sky_->stats().binding_lookup_hits, hits0 + 50);
  EXPECT_EQ(sky_->stats().binding_lookup_misses, misses0 + 1);

  // A second thread has its own (cold) cache.
  mk::Thread* t2 = p.client->AddThread(0);
  ASSERT_TRUE(sky_->DirectServerCall(t2, p.sid, Message(0)).ok());
  EXPECT_EQ(sky_->stats().binding_lookup_misses, misses0 + 2);
}

TEST_P(SkyBridgeTest, AlternatingServersFallBackToTheIndex) {
  Boot();
  auto* client = kernel_->CreateProcess("client").value();
  mk::Thread* t = client->AddThread(0);
  std::vector<ServerId> sids;
  for (int i = 0; i < 2; ++i) {
    auto* server = kernel_->CreateProcess("server" + std::to_string(i)).value();
    const uint64_t marker = 400 + static_cast<uint64_t>(i);
    const ServerId sid =
        sky_->RegisterServer(server, 4, [marker](CallEnv&) { return Message(marker); }).value();
    ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
    sids.push_back(sid);
  }
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  const uint64_t hits0 = sky_->stats().binding_lookup_hits;
  const uint64_t misses0 = sky_->stats().binding_lookup_misses;
  for (int i = 0; i < 20; ++i) {
    auto reply = sky_->DirectServerCall(t, sids[static_cast<size_t>(i % 2)], Message(0));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->tag, 400u + static_cast<uint64_t>(i % 2));
  }
  // The alternation defeats the single-entry thread cache: every call is an
  // index lookup, and every one still resolves correctly.
  EXPECT_EQ(sky_->stats().binding_lookup_hits, hits0);
  EXPECT_EQ(sky_->stats().binding_lookup_misses, misses0 + 20);
}

TEST_P(SkyBridgeTest, EvictionReshuffleInvalidatesCachedSlots) {
  if (IsSyscall()) {
    GTEST_SKIP() << "kSyscall bindings occupy no EPTP slots";
  }
  // Regression test: evicting a binding shifts later EPTP slots down. The
  // surviving bindings' cached slot indices must be refreshed, or the next
  // call through a stale cache would VMFUNC into the wrong address space.
  SkyBridgeConfig config;
  config.eptp_capacity = 3;  // Own EPT + 2 bindings.
  Boot(mk::Sel4Profile(), config);

  auto* client = kernel_->CreateProcess("client").value();
  mk::Thread* t = client->AddThread(0);
  std::vector<ServerId> sids;
  for (int i = 0; i < 3; ++i) {
    auto* server = kernel_->CreateProcess("server" + std::to_string(i)).value();
    const uint64_t marker = 500 + static_cast<uint64_t>(i);
    const ServerId sid =
        sky_->RegisterServer(server, 4, [marker](CallEnv&) { return Message(marker); }).value();
    ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
    sids.push_back(sid);
  }
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  auto expect_marker = [&](int i) {
    auto reply = sky_->DirectServerCall(t, sids[static_cast<size_t>(i)], Message(0));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->tag, 500u + static_cast<uint64_t>(i)) << "server " << i;
  };
  // After registration servers 1 and 2 are installed (server 0 was evicted
  // when 2 registered). Warm both up, then call 0: its reinstall evicts the
  // LRU binding (1, at slot 1), which shifts 2's slot from 2 to 1.
  expect_marker(1);
  expect_marker(2);
  expect_marker(0);
  // Server 2's cached slot must have been refreshed by that reshuffle: with
  // a stale slot this call would land in server 0's address space and fail
  // the key check (or return the wrong marker).
  expect_marker(2);
  // Churn through every rotation for good measure.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) {
      expect_marker(i);
    }
  }
  EXPECT_GT(sky_->stats().eptp_misses, 0u);
  EXPECT_EQ(sky_->stats().rejected_calls, 0u);
}

TEST_P(SkyBridgeTest, NestedCallEvictionSparesThePinnedEntryEpt) {
  if (IsSyscall()) {
    GTEST_SKIP() << "kSyscall bindings occupy no EPTP slots";
  }
  // During a nested call the enclosing binding's EPT is the one the inner
  // call must return through. When installing the inner chain binding forces
  // an eviction, the pinned entry EPT must be skipped even when it is the
  // least recently used candidate.
  SkyBridgeConfig config;
  config.eptp_capacity = 3;  // Own EPT + 2 bindings.
  Boot(mk::Sel4Profile(), config);

  auto* backend1 = kernel_->CreateProcess("backend1").value();
  const ServerId b1_sid =
      sky_->RegisterServer(backend1, 4, [](CallEnv&) { return Message(71); }).value();
  auto* backend2 = kernel_->CreateProcess("backend2").value();
  const ServerId b2_sid =
      sky_->RegisterServer(backend2, 4, [](CallEnv&) { return Message(72); }).value();

  auto* middle = kernel_->CreateProcess("middle").value();
  mk::Thread* middle_thread = middle->AddThread(0);
  SkyBridge* sky = sky_.get();
  // The middle server fans out to both backends. Its client's EPTP list is
  // [own, middle, chain1] when the second chain binding installs, so the
  // eviction scan sees the pinned middle binding at the LRU tail and must
  // pass over it to evict chain1.
  const ServerId middle_sid =
      sky_->RegisterServer(middle, 4, [sky, middle_thread, b1_sid, b2_sid](CallEnv&) {
        auto r1 = sky->DirectServerCall(middle_thread, b1_sid, Message(0));
        SB_CHECK(r1.ok());
        auto r2 = sky->DirectServerCall(middle_thread, b2_sid, Message(0));
        SB_CHECK(r2.ok());
        return Message(r1->tag * 100 + r2->tag);
      }).value();
  ASSERT_TRUE(sky_->RegisterClient(middle, b1_sid).ok());
  ASSERT_TRUE(sky_->RegisterClient(middle, b2_sid).ok());

  auto* client = kernel_->CreateProcess("client").value();
  mk::Thread* t = client->AddThread(0);
  ASSERT_TRUE(sky_->RegisterClient(client, middle_sid).ok());
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  auto reply = sky_->DirectServerCall(t, middle_sid, Message(0));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, 71u * 100 + 72);
  EXPECT_EQ(sky_->stats().rejected_calls, 0u);

  // The enclosing client->middle binding survived both inner installs: the
  // next top-level call needs no reinstall.
  const uint64_t misses = sky_->stats().eptp_misses;
  reply = sky_->DirectServerCall(t, middle_sid, Message(0));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, 71u * 100 + 72);
  EXPECT_GT(sky_->stats().eptp_misses, misses);  // Chain bindings churn...
  auto installed = sky_->InstalledBindings(client);
  ASSERT_TRUE(installed.ok());
  EXPECT_EQ(*installed, 2u);  // ...but the list never exceeds capacity.
}

TEST_P(SkyBridgeTest, RegistrationScanStatsAreRecorded) {
  Boot();
  Pair p = MakePair(EchoHandler());
  if (IsSyscall()) {
    // No gate primitive to scrub: registration never scanned anything.
    EXPECT_EQ(sky_->stats().scan_pages, 0u);
    EXPECT_EQ(sky_->stats().scan_threads, 0u);
    return;
  }
  if (sky_->config().registration_mode == RegistrationMode::kLazy) {
    // Staged registration defers every scan to first execution.
    EXPECT_EQ(sky_->stats().scan_pages, 0u);
    ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  }
  // Registration (or the first call, under lazy) scanned the code pages.
  EXPECT_GT(sky_->stats().scan_pages, 0u);
  EXPECT_GE(sky_->stats().scan_threads, 1u);
}

TEST_P(SkyBridgeTest, SkyBridgeBeatsKernelIpcOnEveryPersonality) {
  if (IsSyscall()) {
    GTEST_SKIP() << "the kSyscall backend IS the kernel IPC baseline";
  }
  for (const mk::KernelKind kind :
       {mk::KernelKind::kSel4, mk::KernelKind::kFiasco, mk::KernelKind::kZircon}) {
    Boot(mk::ProfileFor(kind));
    Pair p = MakePair(EchoHandler());

    // Kernel IPC between the same pair.
    auto* ep = kernel_->CreateEndpoint(p.server, EchoHandler(), {}).value();
    const mk::CapSlot slot =
        kernel_->GrantEndpointCap(p.client, ep->id(), mk::kRightCall).value();

    hw::Core& core = machine_->core(0);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
      ASSERT_TRUE(kernel_->IpcCall(p.thread, slot, Message(0)).ok());
    }
    uint64_t t0 = core.cycles();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
    }
    const uint64_t sky_rt = (core.cycles() - t0) / 100;
    t0 = core.cycles();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(kernel_->IpcCall(p.thread, slot, Message(0)).ok());
    }
    const uint64_t ipc_rt = (core.cycles() - t0) / 100;
    EXPECT_LT(sky_rt, ipc_rt) << mk::ProfileFor(kind).name;
  }
}

TEST_P(SkyBridgeTest, NestedDirectCallsAcrossThreeProcesses) {
  // client -> middle -> backend, both hops over SkyBridge (the SQLite-stack
  // shape: app -> fs -> disk). On kSyscall the kernel really switches
  // current_process per leg, so the nest degenerates to plain calls — the
  // reply arithmetic must come out identical regardless.
  Boot();
  auto* backend = kernel_->CreateProcess("backend").value();
  const ServerId backend_sid =
      sky_->RegisterServer(backend, 4, [](CallEnv& env) {
        return Message(env.request.tag * 2);
      }).value();

  auto* middle = kernel_->CreateProcess("middle").value();
  mk::Thread* middle_thread = middle->AddThread(0);
  SkyBridge* sky = sky_.get();
  const ServerId middle_sid =
      sky_->RegisterServer(middle, 4, [sky, middle_thread, backend_sid](CallEnv& env) {
        auto inner = sky->DirectServerCall(middle_thread, backend_sid, Message(env.request.tag + 1));
        SB_CHECK(inner.ok());
        return Message(inner->tag + 100);
      }).value();
  ASSERT_TRUE(sky_->RegisterClient(middle, backend_sid).ok());

  auto* client = kernel_->CreateProcess("client").value();
  mk::Thread* t = client->AddThread(0);
  ASSERT_TRUE(sky_->RegisterClient(client, middle_sid).ok());
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  auto reply = sky_->DirectServerCall(t, middle_sid, Message(5));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, (5u + 1) * 2 + 100);
}

}  // namespace
}  // namespace skybridge
