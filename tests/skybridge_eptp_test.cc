// EPTP slot virtualization and binding consolidation (DESIGN.md section 15):
// bounded per-core slot working sets with LRU eviction serve far more
// bindings than the hardware's 512-entry EPTP list, and all direct clients
// of one server share a single binding EPT. These tests pin down the
// semantics: slot faults are transparent, hot bindings stay resident,
// consolidation keeps per-connection keys/buffers distinct, sibling
// revocation is isolated, and eviction on one core never stales another.

#include "src/skybridge/skybridge.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/faultpoint.h"
#include "src/vmm/rootkernel.h"

namespace skybridge {
namespace {

using mk::CallEnv;
using mk::Handler;
using mk::Message;
using sb::ErrorCode;
using sb::kGiB;

class SkyBridgeEptpTest : public ::testing::Test {
 protected:
  void SetUp() override { sb::fault::DisarmAll(); }
  void TearDown() override { sb::fault::DisarmAll(); }

  void Boot(SkyBridgeConfig config = {}) {
    // This suite tests EPTP slot mechanics; it is meaningless on the other
    // crossing backends, so pin kEptp against the SB_CROSSING_BACKEND matrix.
    config.crossing_backend = CrossingBackendKind::kEptp;
    sky_.reset();
    kernel_.reset();
    machine_.reset();
    hw::MachineConfig mc;
    mc.num_cores = 4;
    mc.ram_bytes = 4 * kGiB;
    machine_ = std::make_unique<hw::Machine>(mc);
    kernel_ = std::make_unique<mk::Kernel>(*machine_, mk::Sel4Profile());
    ASSERT_TRUE(kernel_->Boot().ok());
    sky_ = std::make_unique<SkyBridge>(*kernel_, config);
  }

  mk::Process* NewProcess(const std::string& name) {
    return kernel_->CreateProcess(name).value();
  }

  ServerId NewEchoServer(int connections = 16) {
    auto* server = NewProcess("server" + std::to_string(server_seq_++));
    return sky_->RegisterServer(server, connections,
                                [](CallEnv& env) { return env.request; })
        .value();
  }

  mk::Thread* ClientThread(mk::Process* client, int core) {
    mk::Thread* t = client->AddThread(core);
    SB_CHECK(kernel_->ContextSwitchTo(machine_->core(core), client).ok());
    return t;
  }

  void ExpectInvariants() {
    const sb::Status invariants = sky_->CheckInvariants();
    ASSERT_TRUE(invariants.ok()) << invariants.ToString();
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<SkyBridge> sky_;
  int server_seq_ = 0;
};

// ---- Binding consolidation ----

TEST_F(SkyBridgeEptpTest, ConsolidationSharesOneEptAcrossClients) {
  Boot();
  const ServerId sid = NewEchoServer();
  const size_t epts_before = kernel_->rootkernel()->ept_count();

  constexpr int kClients = 6;
  std::vector<mk::Process*> clients;
  std::vector<mk::Thread*> threads;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(NewProcess("c" + std::to_string(i)));
    ASSERT_TRUE(sky_->RegisterClient(clients.back(), sid).ok());
    threads.push_back(ClientThread(clients.back(), 0));
  }
  // Each client process owns one EPT; the server binding adds exactly ONE
  // shared EPT for all six clients (the second..sixth only add a CR3 remap).
  EXPECT_EQ(kernel_->rootkernel()->ept_count(), epts_before + kClients + 1);

  for (int i = 0; i < kClients; ++i) {
    auto reply = sky_->DirectServerCall(threads[i], sid, Message(100 + i));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->tag, 100u + i);
  }
  // All six bindings resolve to the same resident slot: one EPT, one slot.
  const uint32_t slot = sky_->ResidentBindingSlot(clients[0], sid, 0);
  ASSERT_NE(slot, kNoEptpSlot);
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(sky_->ResidentBindingSlot(clients[i], sid, 0), slot);
  }
  ExpectInvariants();
}

TEST_F(SkyBridgeEptpTest, ConsolidationOffCreatesPerPairEpts) {
  SkyBridgeConfig config;
  config.consolidate_bindings = false;
  Boot(config);
  const ServerId sid = NewEchoServer();
  const size_t epts_before = kernel_->rootkernel()->ept_count();

  constexpr int kClients = 4;
  std::vector<mk::Process*> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(NewProcess("c" + std::to_string(i)));
    ASSERT_TRUE(sky_->RegisterClient(clients.back(), sid).ok());
  }
  // Ablation: every (client, server) pair gets its own binding EPT.
  EXPECT_EQ(kernel_->rootkernel()->ept_count(), epts_before + 2 * kClients);

  mk::Thread* t0 = ClientThread(clients[0], 0);
  mk::Thread* t1 = ClientThread(clients[1], 0);
  ASSERT_TRUE(sky_->DirectServerCall(t0, sid, Message(1)).ok());
  ASSERT_TRUE(sky_->DirectServerCall(t1, sid, Message(2)).ok());
  // Distinct EPTs occupy distinct slots on the same core.
  const uint32_t slot0 = sky_->ResidentBindingSlot(clients[0], sid, 0);
  const uint32_t slot1 = sky_->ResidentBindingSlot(clients[1], sid, 0);
  ASSERT_NE(slot0, kNoEptpSlot);
  ASSERT_NE(slot1, kNoEptpSlot);
  EXPECT_NE(slot0, slot1);
  ExpectInvariants();
}

TEST_F(SkyBridgeEptpTest, ConsolidatedClientsKeepDistinctSlicesAndKeys) {
  Boot();
  const ServerId sid = NewEchoServer();
  auto* a = NewProcess("a");
  auto* b = NewProcess("b");
  ASSERT_TRUE(sky_->RegisterClient(a, sid).ok());
  ASSERT_TRUE(sky_->RegisterClient(b, sid).ok());
  mk::Thread* ta = ClientThread(a, 0);
  mk::Thread* tb = ClientThread(b, 0);

  // Distinct shared-buffer slices: the host views never alias.
  auto buf_a = sky_->AcquireSendBuffer(ta, sid);
  auto buf_b = sky_->AcquireSendBuffer(tb, sid);
  ASSERT_TRUE(buf_a.ok());
  ASSERT_TRUE(buf_b.ok());
  EXPECT_NE(buf_a->data(), buf_b->data());

  // Distinct per-connection calling keys: a wrong key is rejected at the
  // server-side gate even though both clients enter through the SAME EPT.
  ASSERT_TRUE(sky_->DirectServerCall(ta, sid, Message(1)).ok());
  auto forged = sky_->CallWithForgedKey(ta, sid, Message(2), 0xdeadbeefULL);
  EXPECT_EQ(forged.status().code(), ErrorCode::kPermissionDenied);
  auto genuine = sky_->DirectServerCall(tb, sid, Message(3));
  ASSERT_TRUE(genuine.ok()) << genuine.status().ToString();
  EXPECT_EQ(genuine->tag, 3u);
  ExpectInvariants();
}

TEST_F(SkyBridgeEptpTest, SiblingRevokeLeavesOtherClientsServed) {
  Boot();
  const ServerId sid = NewEchoServer();
  auto* a = NewProcess("a");
  auto* b = NewProcess("b");
  ASSERT_TRUE(sky_->RegisterClient(a, sid).ok());
  ASSERT_TRUE(sky_->RegisterClient(b, sid).ok());
  mk::Thread* ta = ClientThread(a, 0);
  mk::Thread* tb = ClientThread(b, 0);
  ASSERT_TRUE(sky_->DirectServerCall(ta, sid, Message(1)).ok());
  ASSERT_TRUE(sky_->DirectServerCall(tb, sid, Message(2)).ok());

  // Revoke A. The shared EPT must stay serviceable for B.
  ASSERT_TRUE(sky_->RevokeBinding(a, sid).ok());
  EXPECT_EQ(sky_->DirectServerCall(ta, sid, Message(3)).status().code(),
            ErrorCode::kPermissionDenied);
  auto still = sky_->DirectServerCall(tb, sid, Message(4));
  ASSERT_TRUE(still.ok()) << still.status().ToString();
  EXPECT_EQ(still->tag, 4u);
  ExpectInvariants();

  // Revival re-keys A into the shared EPT; both siblings work.
  ASSERT_TRUE(sky_->RegisterClient(a, sid).ok());
  ASSERT_TRUE(sky_->DirectServerCall(ta, sid, Message(5)).ok());
  ASSERT_TRUE(sky_->DirectServerCall(tb, sid, Message(6)).ok());
  ExpectInvariants();
}

TEST_F(SkyBridgeEptpTest, RevokeServerDrainsEveryClient) {
  Boot();
  const ServerId sid = NewEchoServer();
  auto* a = NewProcess("a");
  auto* b = NewProcess("b");
  auto* c = NewProcess("c");
  for (mk::Process* p : {a, b, c}) {
    ASSERT_TRUE(sky_->RegisterClient(p, sid).ok());
  }
  mk::Thread* ta = ClientThread(a, 0);
  mk::Thread* tb = ClientThread(b, 1);
  mk::Thread* tc = ClientThread(c, 2);
  ASSERT_TRUE(sky_->DirectServerCall(ta, sid, Message(1)).ok());
  ASSERT_TRUE(sky_->DirectServerCall(tb, sid, Message(2)).ok());
  ASSERT_TRUE(sky_->DirectServerCall(tc, sid, Message(3)).ok());

  ASSERT_TRUE(sky_->RevokeServer(sid).ok());
  for (mk::Thread* t : {ta, tb, tc}) {
    EXPECT_EQ(sky_->DirectServerCall(t, sid, Message(9)).status().code(),
              ErrorCode::kPermissionDenied);
  }
  // Drained everywhere: the shared EPT holds no residency on any core.
  for (mk::Process* p : {a, b, c}) {
    for (uint32_t core = 0; core < 4; ++core) {
      EXPECT_EQ(sky_->ResidentBindingSlot(p, sid, core), kNoEptpSlot);
    }
  }
  ExpectInvariants();

  // Unknown server ids are refused; an empty server is a clean no-op.
  EXPECT_EQ(sky_->RevokeServer(9999).code(), ErrorCode::kNotFound);
  EXPECT_TRUE(sky_->RevokeServer(sid).ok());

  // All three revive independently.
  for (mk::Process* p : {a, b, c}) {
    ASSERT_TRUE(sky_->RegisterClient(p, sid).ok());
  }
  ASSERT_TRUE(sky_->DirectServerCall(ta, sid, Message(11)).ok());
  ASSERT_TRUE(sky_->DirectServerCall(tb, sid, Message(12)).ok());
  ASSERT_TRUE(sky_->DirectServerCall(tc, sid, Message(13)).ok());
  ExpectInvariants();
}

// ---- Slot working set + LRU ----

TEST_F(SkyBridgeEptpTest, SlotFaultsServeMoreBindingsThanSlots) {
  SkyBridgeConfig config;
  config.eptp_working_set = 4;  // Slot 0 = base EPT; 3 usable slots.
  Boot(config);
  constexpr int kServers = 8;
  std::vector<ServerId> sids;
  for (int i = 0; i < kServers; ++i) {
    sids.push_back(NewEchoServer());
  }
  auto* client = NewProcess("client");
  for (ServerId sid : sids) {
    ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  }
  mk::Thread* thread = ClientThread(client, 0);

  // Round-robin across all eight servers: every call beyond the working set
  // slot-faults, yet every call succeeds and the invariants hold throughout.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < kServers; ++i) {
      auto reply = sky_->DirectServerCall(thread, sids[i], Message(i));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_EQ(reply->tag, static_cast<uint64_t>(i));
      ExpectInvariants();
    }
  }
  EXPECT_GT(sky_->stats().slot_faults, 0u);
  EXPECT_EQ(sky_->stats().rejected_calls, 0u);
  EXPECT_EQ(sky_->stats().stale_slot_retries, 0u);
}

TEST_F(SkyBridgeEptpTest, HotBindingNeverFaultsUnderLru) {
  SkyBridgeConfig config;
  config.eptp_working_set = 6;
  Boot(config);
  const ServerId hot = NewEchoServer();
  std::vector<ServerId> cold;
  for (int i = 0; i < 6; ++i) {
    cold.push_back(NewEchoServer());
  }
  auto* client = NewProcess("client");
  ASSERT_TRUE(sky_->RegisterClient(client, hot).ok());
  for (ServerId sid : cold) {
    ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  }
  mk::Thread* thread = ClientThread(client, 0);

  // Interleave: the hot binding is touched every call; cold ones rotate and
  // thrash the remaining slots. LRU must keep the hot EPT resident.
  ASSERT_TRUE(sky_->DirectServerCall(thread, hot, Message(0)).ok());
  const uint64_t faults_after_warm = sky_->stats().slot_faults;
  uint64_t hot_faults = 0;
  for (int i = 0; i < 48; ++i) {
    const uint64_t before = sky_->stats().slot_faults;
    ASSERT_TRUE(sky_->DirectServerCall(thread, hot, Message(1)).ok());
    hot_faults += sky_->stats().slot_faults - before;
    ASSERT_TRUE(sky_->DirectServerCall(thread, cold[i % cold.size()], Message(2)).ok());
  }
  EXPECT_EQ(hot_faults, 0u) << "hot binding was evicted under LRU";
  EXPECT_GT(sky_->stats().slot_faults, faults_after_warm);  // Cold set thrashed.
  ExpectInvariants();
}

TEST_F(SkyBridgeEptpTest, NaiveRotationAblationStillCorrectButFaultsHotSet) {
  SkyBridgeConfig config;
  config.eptp_working_set = 6;
  config.lru_slot_eviction = false;  // Round-robin victim ablation.
  Boot(config);
  const ServerId hot = NewEchoServer();
  std::vector<ServerId> cold;
  for (int i = 0; i < 6; ++i) {
    cold.push_back(NewEchoServer());
  }
  auto* client = NewProcess("client");
  ASSERT_TRUE(sky_->RegisterClient(client, hot).ok());
  for (ServerId sid : cold) {
    ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  }
  mk::Thread* thread = ClientThread(client, 0);

  ASSERT_TRUE(sky_->DirectServerCall(thread, hot, Message(0)).ok());
  uint64_t hot_faults = 0;
  for (int i = 0; i < 48; ++i) {
    const uint64_t before = sky_->stats().slot_faults;
    ASSERT_TRUE(sky_->DirectServerCall(thread, hot, Message(1)).ok());
    hot_faults += sky_->stats().slot_faults - before;
    ASSERT_TRUE(sky_->DirectServerCall(thread, cold[i % cold.size()], Message(2)).ok());
    ExpectInvariants();
  }
  // Recency-blind victim selection eventually evicts the hot binding too —
  // the correctness contract holds, only the fault rate suffers.
  EXPECT_GT(hot_faults, 0u);
  EXPECT_EQ(sky_->stats().rejected_calls, 0u);
}

// Satellite regression: eviction on core A must not leave a stale cached
// slot index on core B — residency is per-core state, keyed per core.
TEST_F(SkyBridgeEptpTest, EvictionOnOneCoreDoesNotStaleAnother) {
  SkyBridgeConfig config;
  config.eptp_working_set = 4;
  Boot(config);
  const ServerId target = NewEchoServer();
  std::vector<ServerId> thrashers;
  for (int i = 0; i < 6; ++i) {
    thrashers.push_back(NewEchoServer());
  }
  auto* client = NewProcess("client");
  ASSERT_TRUE(sky_->RegisterClient(client, target).ok());
  for (ServerId sid : thrashers) {
    ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  }
  mk::Thread* t0 = ClientThread(client, 0);
  mk::Thread* t1 = ClientThread(client, 1);

  // Make the target binding resident on BOTH cores.
  ASSERT_TRUE(sky_->DirectServerCall(t0, target, Message(0)).ok());
  ASSERT_TRUE(sky_->DirectServerCall(t1, target, Message(1)).ok());
  const uint32_t slot_on_1 = sky_->ResidentBindingSlot(client, target, 1);
  ASSERT_NE(slot_on_1, kNoEptpSlot);

  // Thrash core 0's working set until the target is evicted there.
  for (ServerId sid : thrashers) {
    ASSERT_TRUE(sky_->DirectServerCall(t0, sid, Message(7)).ok());
  }
  ASSERT_EQ(sky_->ResidentBindingSlot(client, target, 0), kNoEptpSlot);
  // Core 1's residency is untouched by core 0's evictions.
  EXPECT_EQ(sky_->ResidentBindingSlot(client, target, 1), slot_on_1);

  // The next call on core 1 is a pure hit: no slot fault, no stale retry.
  const uint64_t faults_before = sky_->stats().slot_faults;
  const uint64_t retries_before = sky_->stats().stale_slot_retries;
  auto reply = sky_->DirectServerCall(t1, target, Message(2));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(sky_->stats().slot_faults, faults_before);
  EXPECT_EQ(sky_->stats().stale_slot_retries, retries_before);

  // And core 0 transparently faults the binding back in.
  auto refault = sky_->DirectServerCall(t0, target, Message(3));
  ASSERT_TRUE(refault.ok()) << refault.status().ToString();
  EXPECT_EQ(sky_->stats().slot_faults, faults_before + 1);
  ExpectInvariants();
}

// ---- Slot-install fault injection ----

TEST_F(SkyBridgeEptpTest, SlotInstallFaultSurfacesUnavailableThenRecovers) {
  Boot();
  const ServerId sid = NewEchoServer();
  auto* client = NewProcess("client");
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  mk::Thread* thread = ClientThread(client, 0);

  // First call on a fresh binding takes the slot-fault slow path; the armed
  // fault makes the rootkernel refuse the install.
  sb::fault::FaultSpec spec;
  spec.nth_hit = 1;
  sb::fault::Arm(kFaultSlotInstall, spec);
  const uint64_t rejected_before = sky_->stats().rejected_calls;
  auto refused = sky_->DirectServerCall(thread, sid, Message(1));
  EXPECT_EQ(refused.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(sky_->stats().rejected_calls, rejected_before + 1);
  EXPECT_EQ(sky_->InFlightCalls(), 0u);
  ExpectInvariants();

  // Disarmed, the next call faults the slot in and succeeds.
  sb::fault::DisarmAll();
  auto reply = sky_->DirectServerCall(thread, sid, Message(2));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, 2u);
  EXPECT_GE(sky_->stats().slot_faults, 2u);  // The refused attempt counted too.
  ExpectInvariants();
}

// ---- Nested calls under tight working sets ----

TEST_F(SkyBridgeEptpTest, NestedCallSlotFaultSparesPinnedGateSlots) {
  SkyBridgeConfig config;
  config.eptp_working_set = 4;  // Base + 3: entry, outer route, inner route.
  Boot(config);
  // inner chain: client -> front -> back. The inner call's slot fault may
  // need a victim while the outer call's entry and route slots are pinned.
  const ServerId back = NewEchoServer();
  auto* front_proc = NewProcess("front");
  ServerId front = 0;
  mk::Thread* front_thread = nullptr;
  front = sky_
              ->RegisterServer(front_proc, 8,
                               [this, &back, &front_thread](CallEnv& env) {
                                 auto inner = sky_->DirectServerCall(
                                     front_thread, back, Message(env.request.tag + 1));
                                 SB_CHECK(inner.ok()) << inner.status().ToString();
                                 return *inner;
                               })
              .value();
  auto* client = NewProcess("client");
  ASSERT_TRUE(sky_->RegisterClient(client, front).ok());
  ASSERT_TRUE(sky_->RegisterClient(front_proc, back).ok());
  front_thread = front_proc->AddThread(0);
  mk::Thread* thread = ClientThread(client, 0);

  for (int i = 0; i < 8; ++i) {
    auto reply = sky_->DirectServerCall(thread, front, Message(10 * i));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->tag, static_cast<uint64_t>(10 * i + 1));
    ExpectInvariants();
  }
  EXPECT_EQ(sky_->stats().rejected_calls, 0u);
}

}  // namespace
}  // namespace skybridge
