// Subkernel tests: processes, capabilities, same-core and cross-core IPC,
// personalities, KPTI, identity pages.

#include "src/mk/kernel.h"

#include <gtest/gtest.h>

#include "src/base/logging.h"
#include "src/mk/profile.h"

namespace mk {
namespace {

using sb::kGiB;

hw::MachineConfig TestMachine(int cores = 4) {
  hw::MachineConfig config;
  config.num_cores = cores;
  config.ram_bytes = 4 * kGiB;
  return config;
}

Handler EchoHandler() {
  return [](CallEnv& env) { return env.request; };
}

class KernelTest : public ::testing::Test {
 protected:
  void BootKernel(KernelProfile profile, bool rootkernel = false) {
    kernel_.reset();   // Tear down in dependency order before re-booting.
    machine_.reset();
    machine_ = std::make_unique<hw::Machine>(TestMachine());
    KernelOptions options;
    options.boot_rootkernel = rootkernel;
    kernel_ = std::make_unique<Kernel>(*machine_, std::move(profile), options);
    ASSERT_TRUE(kernel_->Boot().ok());
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
};

TEST_F(KernelTest, CreateProcessBuildsAddressSpace) {
  BootKernel(Sel4Profile());
  auto p = kernel_->CreateProcess("proc");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE((*p)->address_space().WalkVa(kCodeVa).ok);
  EXPECT_TRUE((*p)->address_space().WalkVa(kHeapVa).ok);
  EXPECT_TRUE((*p)->address_space().WalkVa(kStackTopVa - 0x1000).ok);
  EXPECT_TRUE((*p)->address_space().WalkVa(kIdentityVa).ok);
  // Kernel upper half is visible (shared).
  EXPECT_TRUE((*p)->address_space().WalkVa(kKernelCodeVa).ok);
}

TEST_F(KernelTest, HeapAllocator) {
  BootKernel(Sel4Profile());
  auto p = kernel_->CreateProcess("proc");
  ASSERT_TRUE(p.ok());
  auto a = (*p)->AllocHeap(100);
  auto b = (*p)->AllocHeap(100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(*b, *a + 100);
}

TEST_F(KernelTest, ProcessMemoryIsIsolated) {
  BootKernel(Sel4Profile());
  auto p1 = kernel_->CreateProcess("p1");
  auto p2 = kernel_->CreateProcess("p2");
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  hw::Core& core = machine_->core(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, *p1).ok());
  ASSERT_TRUE(core.WriteVirtU64(kHeapVa, 0x1111).ok());
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, *p2).ok());
  ASSERT_TRUE(core.WriteVirtU64(kHeapVa, 0x2222).ok());
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, *p1).ok());
  auto v = core.ReadVirtU64(kHeapVa);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0x1111u);
}

TEST_F(KernelTest, IpcRequiresCapability) {
  BootKernel(Sel4Profile());
  auto client = kernel_->CreateProcess("client");
  auto server = kernel_->CreateProcess("server");
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(server.ok());
  auto ep = kernel_->CreateEndpoint(*server, EchoHandler(), {});
  ASSERT_TRUE(ep.ok());
  Thread* t = (*client)->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), *client).ok());

  // No cap installed: slot 0 belongs to nothing in the client.
  EXPECT_FALSE(kernel_->IpcCall(t, 0, Message(1)).ok());

  // Grant without the call right: denied.
  auto slot_ro = kernel_->GrantEndpointCap(*client, (*ep)->id(), kRightGrant);
  ASSERT_TRUE(slot_ro.ok());
  EXPECT_EQ(kernel_->IpcCall(t, *slot_ro, Message(1)).status().code(),
            sb::ErrorCode::kPermissionDenied);

  // Grant with the call right: succeeds.
  auto slot = kernel_->GrantEndpointCap(*client, (*ep)->id(), kRightCall);
  ASSERT_TRUE(slot.ok());
  auto reply = kernel_->IpcCall(t, *slot, Message(42));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->tag, 42u);
}

struct IpcFixture {
  Process* client = nullptr;
  Process* server = nullptr;
  Thread* thread = nullptr;
  CapSlot slot = 0;
};

IpcFixture MakeIpcPair(Kernel& kernel, hw::Machine& machine, std::vector<int> server_cores,
                       Handler handler) {
  IpcFixture f;
  f.client = kernel.CreateProcess("client").value();
  f.server = kernel.CreateProcess("server").value();
  auto* ep = kernel.CreateEndpoint(f.server, std::move(handler), std::move(server_cores)).value();
  f.slot = kernel.GrantEndpointCap(f.client, ep->id(), kRightCall).value();
  f.thread = f.client->AddThread(0);
  SB_CHECK(kernel.ContextSwitchTo(machine.core(0), f.client).ok());
  return f;
}

// Measures the warm roundtrip cost of an empty-message IPC.
uint64_t WarmRoundtrip(Kernel& kernel, hw::Machine& machine, IpcFixture& f,
                       CostBreakdown* bd_out = nullptr) {
  for (int i = 0; i < 50; ++i) {
    SB_CHECK(kernel.IpcCall(f.thread, f.slot, Message(0)).ok());
  }
  hw::Core& core = machine.core(0);
  const uint64_t start = core.cycles();
  CostBreakdown bd;
  const int kIters = 100;
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(kernel.IpcCall(f.thread, f.slot, Message(0), &bd).ok());
  }
  if (bd_out != nullptr) {
    *bd_out = bd;
  }
  return (core.cycles() - start) / kIters;
}

TEST_F(KernelTest, Sel4FastpathRoundtripNear986) {
  BootKernel(Sel4Profile());
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {}, EchoHandler());
  const uint64_t rt = WarmRoundtrip(*kernel_, *machine_, f);
  EXPECT_GE(rt, 900u);
  EXPECT_LE(rt, 1100u);
}

TEST_F(KernelTest, FiascoRoundtripNear2717) {
  BootKernel(FiascoProfile());
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {}, EchoHandler());
  const uint64_t rt = WarmRoundtrip(*kernel_, *machine_, f);
  EXPECT_GE(rt, 2500u);
  EXPECT_LE(rt, 3000u);
}

TEST_F(KernelTest, ZirconRoundtripNear8157) {
  BootKernel(ZirconProfile());
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {}, EchoHandler());
  const uint64_t rt = WarmRoundtrip(*kernel_, *machine_, f);
  EXPECT_GE(rt, 7700u);
  EXPECT_LE(rt, 8700u);
}

TEST_F(KernelTest, KernelOrderingSel4FastestZirconSlowest) {
  uint64_t results[3];
  int i = 0;
  for (const KernelKind kind : {KernelKind::kSel4, KernelKind::kFiasco, KernelKind::kZircon}) {
    BootKernel(ProfileFor(kind));
    IpcFixture f = MakeIpcPair(*kernel_, *machine_, {}, EchoHandler());
    results[i++] = WarmRoundtrip(*kernel_, *machine_, f);
  }
  EXPECT_LT(results[0], results[1]);
  EXPECT_LT(results[1], results[2]);
}

TEST_F(KernelTest, LinuxMonolithicProfileIsSlowest) {
  // The Section 10 extension profile: pipe-style IPC with KPTI pays more
  // than any microkernel fastpath.
  BootKernel(LinuxProfile());
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {}, EchoHandler());
  const uint64_t linux_rt = WarmRoundtrip(*kernel_, *machine_, f);

  BootKernel(Sel4Profile());
  IpcFixture f2 = MakeIpcPair(*kernel_, *machine_, {}, EchoHandler());
  const uint64_t sel4_rt = WarmRoundtrip(*kernel_, *machine_, f2);
  EXPECT_GT(linux_rt, 9000u);
  EXPECT_GT(linux_rt, sel4_rt * 8);
}

TEST_F(KernelTest, CrossCoreSel4Near6764) {
  BootKernel(Sel4Profile());
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {1}, EchoHandler());
  const uint64_t rt = WarmRoundtrip(*kernel_, *machine_, f);
  EXPECT_GE(rt, 6300u);
  EXPECT_LE(rt, 7300u);
  EXPECT_GT(kernel_->cross_core_calls(), 0u);
  EXPECT_GT(machine_->total_ipis(), 0u);
}

TEST_F(KernelTest, CrossCoreZirconNear20099) {
  BootKernel(ZirconProfile());
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {1}, EchoHandler());
  const uint64_t rt = WarmRoundtrip(*kernel_, *machine_, f);
  EXPECT_GE(rt, 19000u);
  EXPECT_LE(rt, 21500u);
}

TEST_F(KernelTest, BreakdownBucketsAddUp) {
  BootKernel(Sel4Profile());
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {}, EchoHandler());
  CostBreakdown bd;
  const uint64_t rt = WarmRoundtrip(*kernel_, *machine_, f, &bd);
  // Per-roundtrip buckets: 2 mode switches (>= 418), 2 CR3 writes (372).
  EXPECT_GE(bd.syscall_sysret / 100, 418u);
  EXPECT_EQ(bd.context_switch / 100, 372u);
  EXPECT_EQ(bd.vmfunc, 0u);
  // The buckets approximately cover the measured total.
  const uint64_t bucket_total = bd.total() / 100;
  EXPECT_GE(bucket_total, rt * 9 / 10);
  EXPECT_LE(bucket_total, rt);
}

TEST_F(KernelTest, CapabilityTransferOverIpc) {
  // seL4-style grant: the client mints its endpoint capability into a
  // broker, which can then call the endpoint itself.
  BootKernel(Sel4Profile());
  auto* service = kernel_->CreateProcess("service").value();
  auto* broker = kernel_->CreateProcess("broker").value();
  auto* client = kernel_->CreateProcess("client").value();

  auto* service_ep =
      kernel_->CreateEndpoint(service, [](CallEnv&) { return Message(0x5e41ce); }, {}).value();
  auto* broker_ep =
      kernel_->CreateEndpoint(broker, [](CallEnv& env) { return env.request; }, {}).value();

  // The client holds the service cap with grant rights, and a call cap to
  // the broker.
  ASSERT_TRUE(kernel_
                  ->GrantEndpointCap(client, service_ep->id(),
                                     kRightCall | kRightGrant)
                  .ok());
  const CapSlot to_broker =
      kernel_->GrantEndpointCap(client, broker_ep->id(), kRightCall).value();
  Thread* t = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  // Send the service capability to the broker in a message.
  Message msg(1);
  msg.has_cap_grant = true;
  msg.grant_endpoint = service_ep->id();
  msg.grant_rights = kRightCall;
  ASSERT_TRUE(kernel_->IpcCall(t, to_broker, msg).ok());
  const CapSlot minted = kernel_->last_granted_slot();

  // The broker can now call the service with the minted capability.
  Thread* bt = broker->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), broker).ok());
  auto reply = kernel_->IpcCall(bt, minted, Message(0));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->tag, 0x5e41ceu);
}

TEST_F(KernelTest, CapabilityTransferRequiresGrantRight) {
  BootKernel(Sel4Profile());
  auto* service = kernel_->CreateProcess("service").value();
  auto* broker = kernel_->CreateProcess("broker").value();
  auto* client = kernel_->CreateProcess("client").value();
  auto* service_ep = kernel_->CreateEndpoint(service, EchoHandler(), {}).value();
  auto* broker_ep = kernel_->CreateEndpoint(broker, EchoHandler(), {}).value();
  // Only call rights on the service: granting it onwards must fail.
  ASSERT_TRUE(kernel_->GrantEndpointCap(client, service_ep->id(), kRightCall).ok());
  const CapSlot to_broker =
      kernel_->GrantEndpointCap(client, broker_ep->id(), kRightCall).value();
  Thread* t = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  Message msg(1);
  msg.has_cap_grant = true;
  msg.grant_endpoint = service_ep->id();
  msg.grant_rights = kRightCall;
  EXPECT_EQ(kernel_->IpcCall(t, to_broker, msg).status().code(),
            sb::ErrorCode::kPermissionDenied);
}

TEST_F(KernelTest, CapabilityTransferForcesSlowpath) {
  // "No capabilities are transferred" is a fastpath precondition: a message
  // with a grant costs more than a plain one.
  BootKernel(Sel4Profile());
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {}, EchoHandler());
  auto* extra_ep = kernel_->CreateEndpoint(f.server, EchoHandler(), {}).value();
  const CapSlot grantable =
      kernel_->GrantEndpointCap(f.client, extra_ep->id(), kRightCall | kRightGrant).value();
  (void)grantable;
  const uint64_t plain_rt = WarmRoundtrip(*kernel_, *machine_, f);

  hw::Core& core = machine_->core(0);
  Message msg(1);
  msg.has_cap_grant = true;
  msg.grant_endpoint = extra_ep->id();
  msg.grant_rights = kRightCall;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kernel_->IpcCall(f.thread, f.slot, msg).ok());
  }
  const uint64_t start = core.cycles();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(kernel_->IpcCall(f.thread, f.slot, msg).ok());
  }
  const uint64_t grant_rt = (core.cycles() - start) / 50;
  EXPECT_GT(grant_rt, plain_rt + 500);
}

TEST_F(KernelTest, LongMessageDeliveredToRecvBuffer) {
  BootKernel(Sel4Profile());
  std::string seen;
  Handler handler = [&seen](CallEnv& env) {
    seen = env.request.ToString();
    return Message(1);
  };
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {}, handler);
  std::string big(4096, 'x');
  big[0] = 'H';
  auto reply = kernel_->IpcCall(f.thread, f.slot, Message::FromString(9, big));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(seen.size(), 4096u);
  EXPECT_EQ(seen[0], 'H');

  // The bytes physically landed in the server's receive buffer.
  hw::Core& core = machine_->core(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, f.server).ok());
  auto v = core.ReadVirtU64(kernel_->endpoint(0)->recv_buffer());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(static_cast<char>(*v & 0xff), 'H');
}

TEST_F(KernelTest, LongMessagesCostMore) {
  BootKernel(Sel4Profile());
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {}, EchoHandler());
  const uint64_t small_rt = WarmRoundtrip(*kernel_, *machine_, f);
  hw::Core& core = machine_->core(0);
  const Message big(1, std::vector<uint8_t>(8192, 7));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kernel_->IpcCall(f.thread, f.slot, big).ok());
  }
  const uint64_t start = core.cycles();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kernel_->IpcCall(f.thread, f.slot, big).ok());
  }
  const uint64_t big_rt = (core.cycles() - start) / 20;
  EXPECT_GT(big_rt, small_rt + 500);
}

TEST_F(KernelTest, KptiMakesSyscallsSlower) {
  KernelProfile with_kpti = Sel4Profile();
  with_kpti.kpti = true;
  BootKernel(with_kpti);
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {}, EchoHandler());
  const uint64_t kpti_rt = WarmRoundtrip(*kernel_, *machine_, f);

  BootKernel(Sel4Profile());
  IpcFixture f2 = MakeIpcPair(*kernel_, *machine_, {}, EchoHandler());
  const uint64_t plain_rt = WarmRoundtrip(*kernel_, *machine_, f2);
  // Two extra CR3 writes per one-way: >= ~700 cycles per roundtrip.
  EXPECT_GT(kpti_rt, plain_rt + 600);
}

TEST_F(KernelTest, NoOpSyscallMatchesTable2) {
  BootKernel(Sel4Profile());
  hw::Core& core = machine_->core(0);
  for (int i = 0; i < 10; ++i) {
    kernel_->NoOpSyscall(core);  // Warm up.
  }
  const uint64_t start = core.cycles();
  for (int i = 0; i < 100; ++i) {
    kernel_->NoOpSyscall(core);
  }
  const uint64_t cost = (core.cycles() - start) / 100;
  EXPECT_GE(cost, 181u);
  EXPECT_LE(cost, 181u + 40u);  // Plus warm entry-stub touches.
}

TEST_F(KernelTest, IdentityPageMisidentificationWithoutEptRemap) {
  // Without the Rootkernel there is one shared identity page: the kernel
  // cannot tell who is running from it (both processes read the same word).
  BootKernel(Sel4Profile(), /*rootkernel=*/false);
  auto p1 = kernel_->CreateProcess("p1");
  auto p2 = kernel_->CreateProcess("p2");
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  hw::Core& core = machine_->core(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, *p1).ok());
  auto id1 = kernel_->CurrentIdentity(core);
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, *p2).ok());
  auto id2 = kernel_->CurrentIdentity(core);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id1, *id2);  // Misidentification: both read the shared page.
}

TEST_F(KernelTest, IdentityPagePerProcessWithRootkernel) {
  BootKernel(Sel4Profile(), /*rootkernel=*/true);
  auto p1 = kernel_->CreateProcess("p1");
  auto p2 = kernel_->CreateProcess("p2");
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  hw::Core& core = machine_->core(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, *p1).ok());
  auto id1 = kernel_->CurrentIdentity(core);
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id1, (*p1)->pid());
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, *p2).ok());
  auto id2 = kernel_->CurrentIdentity(core);
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, (*p2)->pid());
}

TEST_F(KernelTest, HandlerRunsInServerAddressSpace) {
  BootKernel(Sel4Profile());
  Handler handler = [](CallEnv& env) {
    // Write a marker into the *server's* heap through the charged path.
    SB_CHECK(env.core.WriteVirtU64(kHeapVa + 0x100, 0xfeedULL).ok());
    return Message(0);
  };
  IpcFixture f = MakeIpcPair(*kernel_, *machine_, {}, handler);
  ASSERT_TRUE(kernel_->IpcCall(f.thread, f.slot, Message(0)).ok());

  hw::Core& core = machine_->core(0);
  // Visible in the server's AS...
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, f.server).ok());
  EXPECT_EQ(*core.ReadVirtU64(kHeapVa + 0x100), 0xfeedULL);
  // ...but not in the client's.
  ASSERT_TRUE(kernel_->ContextSwitchTo(core, f.client).ok());
  EXPECT_EQ(*core.ReadVirtU64(kHeapVa + 0x100), 0u);
}

TEST_F(KernelTest, CrossCoreFifoSerializesConcurrentClients) {
  BootKernel(Sel4Profile());
  auto server = kernel_->CreateProcess("server");
  ASSERT_TRUE(server.ok());
  auto ep = kernel_->CreateEndpoint(
      *server, [](CallEnv& env) { env.core.AdvanceCycles(10000); return Message(0); }, {3});
  ASSERT_TRUE(ep.ok());

  auto c1 = kernel_->CreateProcess("c1");
  auto c2 = kernel_->CreateProcess("c2");
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  auto s1 = kernel_->GrantEndpointCap(*c1, (*ep)->id(), kRightCall);
  auto s2 = kernel_->GrantEndpointCap(*c2, (*ep)->id(), kRightCall);
  Thread* t1 = (*c1)->AddThread(0);
  Thread* t2 = (*c2)->AddThread(1);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), *c1).ok());
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(1), *c2).ok());

  ASSERT_TRUE(kernel_->IpcCall(t1, *s1, Message(0)).ok());
  ASSERT_TRUE(kernel_->IpcCall(t2, *s2, Message(0)).ok());
  // Both were served on core 3, in FIFO order.
  EXPECT_EQ((*ep)->service().acquisitions(), 2u);
}

}  // namespace
}  // namespace mk
