// Formatter tests: the disassembler-lite renders the supported subset.

#include "src/x86/format.h"

#include <gtest/gtest.h>

#include "src/x86/assembler.h"
#include "src/x86/decoder.h"

namespace x86 {
namespace {

std::string Fmt(const std::vector<uint8_t>& bytes) {
  return FormatInsn(bytes, Decode(bytes, 0));
}

TEST(Format, BasicInstructions) {
  Assembler a;
  a.Nop();
  EXPECT_EQ(Fmt(a.Take()), "nop");
  a.Vmfunc();
  EXPECT_EQ(Fmt(a.Take()), "vmfunc");
  a.Ret();
  EXPECT_EQ(Fmt(a.Take()), "ret");
  a.PushR(Reg::kRbp);
  EXPECT_EQ(Fmt(a.Take()), "push rbp");
  a.PopR(Reg::kR12);
  EXPECT_EQ(Fmt(a.Take()), "pop r12");
}

TEST(Format, MovForms) {
  Assembler a;
  a.MovRI64(Reg::kRax, 0x1234);
  EXPECT_EQ(Fmt(a.Take()), "mov rax, 0x1234");
  a.MovRR64(Reg::kRbx, Reg::kRcx);
  EXPECT_EQ(Fmt(a.Take()), "mov rbx, rcx");
  a.MovRM64(Reg::kRdx, Reg::kRdi, 0x20);
  EXPECT_EQ(Fmt(a.Take()), "mov rdx, [rdi+0x20]");
  a.MovMR64(Reg::kRsi, -8, Reg::kRax);
  EXPECT_EQ(Fmt(a.Take()), "mov [rsi-0x8], rax");
}

TEST(Format, ArithmeticForms) {
  Assembler a;
  a.AddRI(Reg::kRax, 0x10);
  EXPECT_EQ(Fmt(a.Take()), "add rax, 0x10");
  a.SubRR(Reg::kRbx, Reg::kRcx);
  EXPECT_EQ(Fmt(a.Take()), "sub rbx, rcx");
  a.CmpRI(Reg::kR8, -1);
  EXPECT_EQ(Fmt(a.Take()), "cmp r8, -0x1");
}

TEST(Format, LeaWithSib) {
  Assembler a;
  a.Lea(Reg::kRax, Reg::kRdi, static_cast<int>(Reg::kRcx), 4, 0x100);
  EXPECT_EQ(Fmt(a.Take()), "lea rax, [rdi+rcx*4+0x100]");
}

TEST(Format, Branches) {
  Assembler a;
  a.JmpRel32(0x40);
  EXPECT_EQ(Fmt(a.Take()), "jmp 0x40 (rel)");
  a.CallRel32(-0x10);
  EXPECT_EQ(Fmt(a.Take()), "call -0x10 (rel)");
  a.JccRel8(0x4, 2);
  EXPECT_EQ(Fmt(a.Take()), "jz 0x2 (rel)");
}

TEST(Format, ImulThreeOperand) {
  Assembler a;
  a.ImulRRI(Reg::kRcx, Reg::kRdi, 0x77);
  EXPECT_EQ(Fmt(a.Take()), "imul rcx, rdi, 0x77");
}

TEST(Format, UnsupportedShowsBytes) {
  const std::vector<uint8_t> bytes = {0x0f, 0xae, 0xf0};  // mfence
  EXPECT_NE(Fmt(bytes).find("unsupported"), std::string::npos);
}

TEST(Format, DisassembleWholeRegion) {
  Assembler a;
  a.PushR(Reg::kRbp);
  a.MovRR64(Reg::kRbp, Reg::kRsp);
  a.Vmfunc();
  a.PopR(Reg::kRbp);
  a.Ret();
  const std::string listing = Disassemble(a.Take());
  EXPECT_NE(listing.find("push rbp"), std::string::npos);
  EXPECT_NE(listing.find("vmfunc"), std::string::npos);
  EXPECT_NE(listing.find("ret"), std::string::npos);
  // Five lines, one per instruction.
  EXPECT_EQ(std::count(listing.begin(), listing.end(), '\n'), 5);
}

}  // namespace
}  // namespace x86
