// minisql tests: pager, B+tree (including property sweeps), database
// catalog, journal, and row-cache behaviour.

#include "src/db/minisql.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/db/btree.h"
#include "src/fs/block_device.h"

namespace minisql {
namespace {

// FS stack with a direct (kernel-free) transport for unit testing.
struct DirectFs {
  DirectFs() : disk(32768), fs(MakeTransport(), fsys::Xv6Fs::Config{32768, 512, fsys::kLogCapacity + 1, 64}), client(MakeFsTransport()) {
    SB_CHECK(fs.Mkfs().ok());
    SB_CHECK(fs.Mount().ok());
  }

  fsys::BlockTransport MakeTransport() {
    return [this](const mk::Message& msg) -> sb::StatusOr<mk::Message> {
      uint32_t block = 0;
      std::memcpy(&block, msg.data.data(), 4);
      if (msg.tag == fsys::kBlockRead) {
        mk::Message reply(1);
        reply.data.resize(fsys::kBlockSize);
        SB_RETURN_IF_ERROR(disk.Read(nullptr, block, reply.data));
        return reply;
      }
      SB_RETURN_IF_ERROR(disk.Write(
          nullptr, block, std::span<const uint8_t>(msg.data.data() + 4, fsys::kBlockSize)));
      return mk::Message(1);
    };
  }

  fsys::FsClient::Transport MakeFsTransport() {
    return [this](const mk::Message& msg) -> sb::StatusOr<mk::Message> {
      // Run the FS operation directly (no kernel context needed for tests).
      switch (static_cast<fsys::FsOp>(msg.tag)) {
        case fsys::FsOp::kOpen: {
          auto inum = fs.Lookup(std::string(msg.data.begin(), msg.data.end()));
          return inum.ok() ? mk::Message(*inum) : mk::Message(fsys::kFsError);
        }
        case fsys::FsOp::kCreate: {
          auto inum = fs.Create(std::string(msg.data.begin(), msg.data.end()));
          return inum.ok() ? mk::Message(*inum) : mk::Message(fsys::kFsError);
        }
        case fsys::FsOp::kRead: {
          uint32_t inum = 0;
          uint32_t off = 0;
          uint32_t len = 0;
          std::memcpy(&inum, msg.data.data(), 4);
          std::memcpy(&off, msg.data.data() + 4, 4);
          std::memcpy(&len, msg.data.data() + 8, 4);
          std::vector<uint8_t> out(len);
          auto n = fs.ReadFile(inum, off, out);
          if (!n.ok()) {
            return mk::Message(fsys::kFsError);
          }
          out.resize(*n);
          mk::Message reply(*n);
          reply.data = std::move(out);
          return reply;
        }
        case fsys::FsOp::kWrite: {
          uint32_t inum = 0;
          uint32_t off = 0;
          std::memcpy(&inum, msg.data.data(), 4);
          std::memcpy(&off, msg.data.data() + 4, 4);
          const std::span<const uint8_t> payload(msg.data.data() + 8, msg.data.size() - 8);
          return fs.WriteFile(inum, off, payload).ok() ? mk::Message(1)
                                                       : mk::Message(fsys::kFsError);
        }
        case fsys::FsOp::kSize: {
          uint32_t inum = 0;
          std::memcpy(&inum, msg.data.data(), 4);
          auto size = fs.FileSize(inum);
          return size.ok() ? mk::Message(*size) : mk::Message(fsys::kFsError);
        }
        case fsys::FsOp::kUnlink: {
          return fs.Unlink(std::string(msg.data.begin(), msg.data.end())).ok()
                     ? mk::Message(1)
                     : mk::Message(fsys::kFsError);
        }
      }
      return mk::Message(fsys::kFsError);
    };
  }

  fsys::RamDisk disk;
  fsys::Xv6Fs fs;
  fsys::FsClient client;
};

std::vector<uint8_t> Value(const std::string& s) { return {s.begin(), s.end()}; }

TEST(Pager, AllocateGrowsFile) {
  DirectFs env;
  auto inum = env.client.Create("/pg.db");
  ASSERT_TRUE(inum.ok());
  Pager pager(&env.client, *inum, 8);
  ASSERT_TRUE(pager.Open().ok());
  EXPECT_EQ(pager.num_pages(), 1u);
  auto p1 = pager.AllocatePage();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, 1u);
  ASSERT_TRUE(pager.Flush().ok());
  EXPECT_EQ(*env.client.Size(*inum), 2 * kDbPageSize);
}

TEST(Pager, PersistsAcrossReopen) {
  DirectFs env;
  auto inum = env.client.Create("/pg.db");
  ASSERT_TRUE(inum.ok());
  {
    Pager pager(&env.client, *inum, 8);
    ASSERT_TRUE(pager.Open().ok());
    auto page = pager.GetPage(0);
    ASSERT_TRUE(page.ok());
    (**page)[0] = 0xaa;
    pager.MarkDirty(0);
    ASSERT_TRUE(pager.Flush().ok());
  }
  Pager pager2(&env.client, *inum, 8);
  ASSERT_TRUE(pager2.Open().ok());
  auto page = pager2.GetPage(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((**page)[0], 0xaa);
}

TEST(Pager, CacheHitAvoidsRpc) {
  DirectFs env;
  auto inum = env.client.Create("/pg.db");
  ASSERT_TRUE(inum.ok());
  Pager pager(&env.client, *inum, 8);
  ASSERT_TRUE(pager.Open().ok());
  ASSERT_TRUE(pager.GetPage(0).ok());
  const uint64_t rpcs = env.client.rpcs();
  ASSERT_TRUE(pager.GetPage(0).ok());
  EXPECT_EQ(env.client.rpcs(), rpcs);
  EXPECT_GT(pager.cache_hits(), 0u);
}

TEST(Pager, EvictionWritesDirtyPages) {
  DirectFs env;
  auto inum = env.client.Create("/pg.db");
  ASSERT_TRUE(inum.ok());
  Pager pager(&env.client, *inum, 4);
  ASSERT_TRUE(pager.Open().ok());
  for (int i = 0; i < 8; ++i) {
    auto pgno = pager.AllocatePage();
    ASSERT_TRUE(pgno.ok());
    auto page = pager.GetPage(*pgno);
    ASSERT_TRUE(page.ok());
    (**page)[0] = static_cast<uint8_t>(*pgno);
    pager.MarkDirty(*pgno);
  }
  ASSERT_TRUE(pager.Flush().ok());
  // Re-read everything through a fresh pager.
  Pager pager2(&env.client, *inum, 16);
  ASSERT_TRUE(pager2.Open().ok());
  for (uint32_t i = 1; i <= 8; ++i) {
    auto page = pager2.GetPage(i);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((**page)[0], static_cast<uint8_t>(i));
  }
}

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() {
    inum_ = *env_.client.Create("/bt.db");
    pager_ = std::make_unique<Pager>(&env_.client, inum_, 32);
    SB_CHECK(pager_->Open().ok());
    root_ = *pager_->AllocatePage();
    SB_CHECK(BTree::InitLeaf(*pager_, root_).ok());
    tree_ = std::make_unique<BTree>(pager_.get(), root_);
  }

  DirectFs env_;
  uint32_t inum_ = 0;
  uint32_t root_ = 0;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, InsertAndGet) {
  ASSERT_TRUE(tree_->Insert(5, Value("five")).ok());
  ASSERT_TRUE(tree_->Insert(3, Value("three")).ok());
  ASSERT_TRUE(tree_->Insert(9, Value("nine")).ok());
  auto v = tree_->Get(3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::string(v->begin(), v->end()), "three");
  EXPECT_FALSE(tree_->Get(4).ok());
}

TEST_F(BTreeTest, DuplicateInsertRejected) {
  ASSERT_TRUE(tree_->Insert(1, Value("a")).ok());
  EXPECT_EQ(tree_->Insert(1, Value("b")).code(), sb::ErrorCode::kAlreadyExists);
}

TEST_F(BTreeTest, UpdateChangesValue) {
  ASSERT_TRUE(tree_->Insert(1, Value("old")).ok());
  ASSERT_TRUE(tree_->Update(1, Value("new")).ok());
  auto v = tree_->Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::string(v->begin(), v->end()), "new");
  EXPECT_FALSE(tree_->Update(2, Value("x")).ok());
}

TEST_F(BTreeTest, DeleteRemoves) {
  ASSERT_TRUE(tree_->Insert(1, Value("a")).ok());
  ASSERT_TRUE(tree_->Insert(2, Value("b")).ok());
  ASSERT_TRUE(tree_->Delete(1).ok());
  EXPECT_FALSE(tree_->Get(1).ok());
  EXPECT_TRUE(tree_->Get(2).ok());
  EXPECT_FALSE(tree_->Delete(1).ok());
}

TEST_F(BTreeTest, SplitsOnManySequentialInserts) {
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(tree_->Insert(k, Value("v" + std::to_string(k))).ok()) << k;
  }
  ASSERT_TRUE(tree_->Validate().ok());
  for (uint64_t k = 0; k < 500; ++k) {
    auto v = tree_->Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(std::string(v->begin(), v->end()), "v" + std::to_string(k));
  }
  auto keys = tree_->Keys();
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 500u);
  EXPECT_TRUE(std::is_sorted(keys->begin(), keys->end()));
}

class BTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreePropertyTest, RandomOpsMatchReferenceMap) {
  DirectFs env;
  const uint32_t inum = *env.client.Create("/prop.db");
  Pager pager(&env.client, inum, 32);
  ASSERT_TRUE(pager.Open().ok());
  const uint32_t root = *pager.AllocatePage();
  ASSERT_TRUE(BTree::InitLeaf(pager, root).ok());
  BTree tree(&pager, root);

  sb::Rng rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  std::map<uint64_t, std::string> reference;
  for (int i = 0; i < 400; ++i) {
    const uint64_t key = rng.Below(200);
    const std::string value = "v" + std::to_string(rng.Below(1000));
    switch (rng.Below(4)) {
      case 0:
      case 1: {  // Insert
        const bool existed = reference.contains(key);
        const sb::Status status = tree.Insert(key, Value(value));
        EXPECT_EQ(status.ok(), !existed);
        if (!existed) {
          reference[key] = value;
        }
        break;
      }
      case 2: {  // Update
        const bool existed = reference.contains(key);
        const sb::Status status = tree.Update(key, Value(value));
        EXPECT_EQ(status.ok(), existed);
        if (existed) {
          reference[key] = value;
        }
        break;
      }
      case 3: {  // Delete
        const bool existed = reference.contains(key);
        EXPECT_EQ(tree.Delete(key).ok(), existed);
        reference.erase(key);
        break;
      }
    }
  }
  ASSERT_TRUE(tree.Validate().ok());
  for (const auto& [key, value] : reference) {
    auto v = tree.Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(std::string(v->begin(), v->end()), value);
  }
  auto keys = tree.Keys();
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest, ::testing::Range(0, 12));

TEST_F(BTreeTest, RangeScan) {
  for (uint64_t k = 0; k < 200; k += 2) {  // Even keys only.
    ASSERT_TRUE(tree_->Insert(k, Value("v" + std::to_string(k))).ok());
  }
  auto rows = tree_->Scan(51, 99);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 24u);  // 52, 54, ..., 98.
  EXPECT_EQ((*rows)[0].key, 52u);
  EXPECT_EQ(rows->back().key, 98u);
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_LT((*rows)[i - 1].key, (*rows)[i].key);
  }
  EXPECT_EQ(std::string((*rows)[0].value.begin(), (*rows)[0].value.end()), "v52");

  // Degenerate ranges.
  EXPECT_TRUE(tree_->Scan(1000, 2000)->empty());
  EXPECT_TRUE(tree_->Scan(10, 5)->empty());
  EXPECT_EQ(tree_->Scan(0, UINT64_MAX)->size(), 100u);
}

TEST(Database, TableScan) {
  DirectFs env;
  auto db = Database::Open(&env.client, "/scan.db");
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("t");
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE((*table)->Insert(k, Value(std::to_string(k))).ok());
  }
  auto rows = (*table)->Scan(10, 19);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  EXPECT_EQ((*rows)[0].key, 10u);
}

TEST(Database, CreateInsertQuery) {
  DirectFs env;
  auto db = Database::Open(&env.client, "/app.db");
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("users");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert(1, Value("alice")).ok());
  ASSERT_TRUE((*table)->Insert(2, Value("bob")).ok());
  auto v = (*table)->Query(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::string(v->begin(), v->end()), "alice");
  EXPECT_EQ(*(*table)->RowCount(), 2u);
}

TEST(Database, PersistsAcrossReopen) {
  DirectFs env;
  {
    auto db = Database::Open(&env.client, "/p.db");
    ASSERT_TRUE(db.ok());
    auto table = (*db)->CreateTable("t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->Insert(7, Value("persisted")).ok());
  }
  auto db = Database::Open(&env.client, "/p.db");
  ASSERT_TRUE(db.ok());
  auto table = (*db)->OpenTable("t");
  ASSERT_TRUE(table.ok());
  auto v = (*table)->Query(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::string(v->begin(), v->end()), "persisted");
}

TEST(Database, QueryUsesRowCache) {
  DirectFs env;
  auto db = Database::Open(&env.client, "/c.db");
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert(1, Value("x")).ok());
  ASSERT_TRUE((*table)->Query(1).ok());
  const uint64_t rpcs = env.client.rpcs();
  // Repeat queries are served from the row cache: zero FS traffic.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*table)->Query(1).ok());
  }
  EXPECT_EQ(env.client.rpcs(), rpcs);
  EXPECT_GE((*db)->stats().row_cache_hits, 10u);
}

TEST(Database, WritesGoThroughJournal) {
  DirectFs env;
  auto db = Database::Open(&env.client, "/j.db");
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert(1, Value("x")).ok());
  // The journal file exists beside the database.
  EXPECT_TRUE(env.client.Open("/j.db-journal").ok());
}

TEST(Database, JournalCanBeDisabled) {
  DirectFs env;
  Database::Config config;
  config.use_journal = false;
  auto db = Database::Open(&env.client, "/nj.db", config);
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Insert(1, Value("x")).ok());
  EXPECT_FALSE(env.client.Open("/nj.db-journal").ok());
}

TEST(Database, TenThousandRecordLoad) {
  // The paper's YCSB table: 10,000 records with ~100-byte values.
  DirectFs env;
  auto db = Database::Open(&env.client, "/big.db");
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable("usertable");
  ASSERT_TRUE(table.ok());
  std::vector<uint8_t> value(100, 0xab);
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE((*table)->Insert(k, value).ok()) << k;
  }
  EXPECT_EQ(*(*table)->RowCount(), 10000u);
  ASSERT_TRUE((*table)->btree().Validate().ok());
  auto v = (*table)->Query(9999);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 100u);
}

}  // namespace
}  // namespace minisql
