// Crossing-backend conformance suite (DESIGN.md section 16): one seeded call
// script is replayed against each backend (EPTP / MPK / kernel fastpath) and
// the observable outcomes — status codes, reply tags and bytes, invariant
// results — must be identical. The backends may differ in *cost* and in
// their isolation envelope (pinned separately by the security tests), never
// in IPC semantics.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/faultpoint.h"
#include "src/skybridge/skybridge.h"
#include "src/vmm/rootkernel.h"

namespace skybridge {
namespace {

using mk::CallEnv;
using mk::Message;
using sb::ErrorCode;
using sb::kGiB;

// The script only arms deterministic nth-hit faults at backend-invariant
// fault points, so every backend draws the same fault schedule.
constexpr uint64_t kScriptSeed = 0xc0f0'12e5ULL;

std::string CodeName(const sb::Status& status) {
  return status.ok() ? "ok" : std::to_string(static_cast<int>(status.code()));
}

// Runs the whole call script on a fresh world wired to `backend` and returns
// a printable transcript of every observable outcome.
std::vector<std::string> RunScript(CrossingBackendKind backend) {
  sb::fault::DisarmAll();
  sb::fault::SetSeed(kScriptSeed);

  hw::MachineConfig mc;
  mc.num_cores = 2;
  mc.ram_bytes = 2 * kGiB;
  hw::Machine machine(mc);
  mk::Kernel kernel(machine, mk::Sel4Profile());
  SB_CHECK(kernel.Boot().ok());
  SkyBridgeConfig config;
  config.crossing_backend = backend;
  SkyBridge sky(kernel, config);

  auto* server = kernel.CreateProcess("conf-server").value();
  const ServerId sid =
      sky.RegisterServer(server, 8,
                         [](CallEnv& env) {
                           Message reply = env.request;
                           reply.tag = env.request.tag * 3 + 1;
                           return reply;
                         })
          .value();
  auto* client = kernel.CreateProcess("conf-client").value();
  SB_CHECK(sky.RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  SB_CHECK(kernel.ContextSwitchTo(machine.core(0), client).ok());

  std::vector<std::string> transcript;
  auto record = [&](const std::string& step, const sb::Status& status,
                    const Message* reply = nullptr) {
    std::ostringstream line;
    line << step << " status=" << CodeName(status);
    if (status.ok() && reply != nullptr) {
      line << " tag=" << reply->tag << " len=" << reply->size();
      uint64_t sum = 0;
      for (const uint8_t b : reply->payload()) {
        sum = sum * 131 + b;
      }
      line << " paysum=" << sum;
    }
    const sb::Status invariants = sky.CheckInvariants();
    line << " invariants=" << CodeName(invariants) << " inflight=" << sky.InFlightCalls();
    transcript.push_back(line.str());
  };

  // 1. Register-size echo.
  {
    auto reply = sky.DirectServerCall(thread, sid, Message(11));
    record("small", reply.status(), reply.ok() ? &*reply : nullptr);
  }
  // 2. Long message through the shared buffer.
  {
    Message big(5);
    big.data.assign(4096, 0x7e);
    big.data[17] = 0x41;
    auto reply = sky.DirectServerCall(thread, sid, big);
    record("long", reply.status(), reply.ok() ? &*reply : nullptr);
  }
  // 3. In-place (zero-copy) call.
  {
    auto buf = sky.AcquireSendBuffer(thread, sid);
    SB_CHECK(buf.ok());
    for (size_t i = 0; i < 256; ++i) {
      (*buf)[i] = static_cast<uint8_t>(i * 7);
    }
    auto reply = sky.DirectServerCallInPlace(thread, sid, 9, 256);
    record("inplace", reply.status(), reply.ok() ? &*reply : nullptr);
  }
  // 4. Forged calling key.
  {
    auto reply = sky.CallWithForgedKey(thread, sid, Message(1), 0xbad);
    record("forged_key", reply.status());
  }
  // 5. Handler crash (nth-hit fault, backend-invariant point) + recovery.
  {
    sb::fault::FaultSpec spec;
    spec.nth_hit = 1;
    sb::fault::Arm(kFaultHandlerCrash, spec);
    auto crashed = sky.DirectServerCall(thread, sid, Message(2));
    sb::fault::DisarmAll();
    record("crash", crashed.status());
    auto after = sky.DirectServerCall(thread, sid, Message(3));
    record("crash_recovery", after.status(), after.ok() ? &*after : nullptr);
  }
  // 6. Corrupt reply rejected at the return gate.
  {
    sb::fault::FaultSpec spec;
    spec.nth_hit = 1;
    sb::fault::Arm(kFaultReplyCorrupt, spec);
    auto corrupt = sky.DirectServerCall(thread, sid, Message(4));
    sb::fault::DisarmAll();
    record("reply_corrupt", corrupt.status());
  }
  // 7. Revocation racing an in-flight call, refusal, revival.
  {
    sb::fault::FaultSpec spec;
    spec.nth_hit = 1;
    sb::fault::Arm(kFaultRevokeInflight, spec);
    auto racing = sky.DirectServerCall(thread, sid, Message(6));
    sb::fault::DisarmAll();
    record("revoke_inflight", racing.status(), racing.ok() ? &*racing : nullptr);
    auto refused = sky.DirectServerCall(thread, sid, Message(7));
    record("revoked_refusal", refused.status());
    record("revival", sky.RegisterClient(client, sid));
    auto revived = sky.DirectServerCall(thread, sid, Message(8));
    record("revived_call", revived.status(), revived.ok() ? &*revived : nullptr);
  }
  // 8. Batched IPC: submit, flush, poll.
  {
    std::vector<uint64_t> tokens;
    for (uint64_t i = 0; i < 4; ++i) {
      Message msg(20 + i);
      msg.data.assign(32 + i, static_cast<uint8_t>(i));
      auto token = sky.SubmitCall(thread, sid, msg);
      SB_CHECK(token.ok()) << token.status().ToString();
      tokens.push_back(*token);
    }
    record("batch_flush", sky.FlushBatch(thread, sid));
    for (const uint64_t token : tokens) {
      auto reply = sky.PollCompletion(thread, sid, token);
      record("batch_poll_" + std::to_string(token), reply.status(),
             reply.ok() ? &*reply : nullptr);
    }
  }
  // 9. Unregistered stranger.
  {
    auto* stranger = kernel.CreateProcess("conf-stranger").value();
    mk::Thread* st = stranger->AddThread(1);
    auto reply = sky.DirectServerCall(st, sid, Message(0));
    record("stranger", reply.status());
  }
  // 10. Deterministic end-state counters every backend must agree on.
  {
    const SkyBridgeStats& s = sky.stats();
    std::ostringstream line;
    line << "counters direct=" << s.direct_calls << " long=" << s.long_calls
         << " inplace=" << s.inplace_calls << " rejected=" << s.rejected_calls
         << " aborted=" << s.aborted_calls << " gate_rej=" << s.gate_rejections
         << " revoked=" << s.bindings_revoked << " batched=" << s.batched_calls
         << " flushes=" << s.batch_flushes;
    transcript.push_back(line.str());
  }
  sb::fault::DisarmAll();
  return transcript;
}

TEST(CrossingConformance, AllBackendsReplayTheScriptIdentically) {
  const std::vector<std::string> eptp = RunScript(CrossingBackendKind::kEptp);
  const std::vector<std::string> mpk = RunScript(CrossingBackendKind::kMpk);
  const std::vector<std::string> syscall = RunScript(CrossingBackendKind::kSyscall);
  ASSERT_FALSE(eptp.empty());
  EXPECT_EQ(eptp, mpk);
  EXPECT_EQ(eptp, syscall);
}

TEST(CrossingConformance, ScriptIsDeterministicPerBackend) {
  for (const CrossingBackendKind backend :
       {CrossingBackendKind::kEptp, CrossingBackendKind::kMpk,
        CrossingBackendKind::kSyscall}) {
    EXPECT_EQ(RunScript(backend), RunScript(backend)) << CrossingBackendName(backend);
  }
}

TEST(CrossingConformance, PerBackendCrossingCountersTickOnlyForTheActiveBackend) {
  for (const CrossingBackendKind backend :
       {CrossingBackendKind::kEptp, CrossingBackendKind::kMpk,
        CrossingBackendKind::kSyscall}) {
    hw::MachineConfig mc;
    mc.num_cores = 1;
    mc.ram_bytes = 2 * kGiB;
    hw::Machine machine(mc);
    mk::Kernel kernel(machine, mk::Sel4Profile());
    ASSERT_TRUE(kernel.Boot().ok());
    SkyBridgeConfig config;
    config.crossing_backend = backend;
    SkyBridge sky(kernel, config);
    auto* server = kernel.CreateProcess("s").value();
    const ServerId sid =
        sky.RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
    auto* client = kernel.CreateProcess("c").value();
    ASSERT_TRUE(sky.RegisterClient(client, sid).ok());
    mk::Thread* thread = client->AddThread(0);
    ASSERT_TRUE(kernel.ContextSwitchTo(machine.core(0), client).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(sky.DirectServerCall(thread, sid, Message(0)).ok());
    }
    for (const CrossingBackendKind other :
         {CrossingBackendKind::kEptp, CrossingBackendKind::kMpk,
          CrossingBackendKind::kSyscall}) {
      const std::string prefix =
          std::string("skybridge.crossing.") + CrossingBackendName(other);
      const uint64_t enters = machine.telemetry().GetCounter(prefix + ".enters").Value();
      const uint64_t returns = machine.telemetry().GetCounter(prefix + ".returns").Value();
      if (other == backend) {
        EXPECT_EQ(enters, 10u) << prefix;
        EXPECT_EQ(returns, 10u) << prefix;
      } else {
        EXPECT_EQ(enters, 0u) << prefix;
        EXPECT_EQ(returns, 0u) << prefix;
      }
    }
  }
}

}  // namespace
}  // namespace skybridge
