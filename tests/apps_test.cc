// Workload-layer tests: the KV pipeline in all wirings, YCSB generation,
// the synthetic corpus, and the full SQLite stack end to end.

#include <gtest/gtest.h>

#include "src/apps/corpus.h"
#include "src/apps/kv.h"
#include "src/apps/sqlite_stack.h"
#include "src/apps/ycsb.h"
#include "src/sim/executor.h"
#include "src/x86/scanner.h"

namespace apps {
namespace {

using sb::kGiB;

TEST(Xtea, EncryptDecryptRoundTrip) {
  const uint32_t key[4] = {1, 2, 3, 4};
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  std::vector<uint8_t> cipher = data;
  XteaEncrypt(cipher, key);
  EXPECT_NE(cipher, data);
  XteaDecrypt(cipher, key);
  EXPECT_EQ(cipher, data);
}

struct KvEnv {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<mk::Kernel> kernel;
  std::unique_ptr<skybridge::SkyBridge> sky;
  std::unique_ptr<KvPipeline> pipeline;
};

KvEnv MakeKv(KvWiring wiring, mk::KernelProfile profile = mk::Sel4Profile()) {
  KvEnv env;
  hw::MachineConfig mc;
  mc.num_cores = 4;
  mc.ram_bytes = 4 * kGiB;
  env.machine = std::make_unique<hw::Machine>(mc);
  mk::KernelOptions options;
  options.boot_rootkernel = wiring == KvWiring::kSkyBridge;
  env.kernel = std::make_unique<mk::Kernel>(*env.machine, std::move(profile), options);
  SB_CHECK(env.kernel->Boot().ok());
  if (wiring == KvWiring::kSkyBridge) {
    // The Figure 2/8 ordering claims are about the paper's VMFUNC bridge;
    // pin kEptp against the SB_CROSSING_BACKEND matrix.
    skybridge::SkyBridgeConfig config;
    config.crossing_backend = skybridge::CrossingBackendKind::kEptp;
    env.sky = std::make_unique<skybridge::SkyBridge>(*env.kernel, config);
  }
  env.pipeline = std::make_unique<KvPipeline>(*env.kernel, env.sky.get(), wiring);
  SB_CHECK(env.pipeline->Setup().ok());
  return env;
}

class KvWiringTest : public ::testing::TestWithParam<KvWiring> {};

TEST_P(KvWiringTest, InsertThenQueryReturnsValue) {
  KvEnv env = MakeKv(GetParam());
  ASSERT_TRUE(env.pipeline->Insert("user42", "payload-42").ok());
  auto value = env.pipeline->Query("user42");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(*value, "payload-42");
  EXPECT_FALSE(env.pipeline->Query("missing").ok());
}

TEST_P(KvWiringTest, ManyKeysSurviveRoundTrips) {
  KvEnv env = MakeKv(GetParam());
  for (int i = 0; i < 32; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(env.pipeline->Insert(key, "value-" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 32; ++i) {
    auto v = env.pipeline->Query("k" + std::to_string(i));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "value-" + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Wirings, KvWiringTest,
                         ::testing::Values(KvWiring::kBaseline, KvWiring::kDelay,
                                           KvWiring::kIpc, KvWiring::kIpcCrossCore,
                                           KvWiring::kSkyBridge),
                         [](const auto& info) {
                           return std::string(KvWiringName(info.param)).substr(0, 3) +
                                  std::to_string(static_cast<int>(info.param));
                         });

uint64_t MeasureKvOp(KvPipeline& pipeline, const std::string& key, const std::string& value,
                     int iters = 50) {
  for (int i = 0; i < 10; ++i) {
    SB_CHECK(pipeline.Insert(key + "-warm", value).ok());
    SB_CHECK(pipeline.Query(key + "-warm").ok());
  }
  hw::Core& core = pipeline.client_core();
  const uint64_t start = core.cycles();
  for (int i = 0; i < iters; ++i) {
    SB_CHECK(pipeline.Insert(key + std::to_string(i), value).ok());
    SB_CHECK(pipeline.Query(key + std::to_string(i)).ok());
  }
  return (core.cycles() - start) / (2 * static_cast<uint64_t>(iters));
}

TEST(KvPipeline, Figure2OrderingHolds) {
  // Baseline < Delay < IPC < IPC-CrossCore, and SkyBridge between Delay and
  // IPC (Figure 8).
  const std::string value(64, 'v');
  uint64_t lat[5];
  int i = 0;
  for (const KvWiring wiring : {KvWiring::kBaseline, KvWiring::kDelay, KvWiring::kIpc,
                                KvWiring::kIpcCrossCore, KvWiring::kSkyBridge}) {
    KvEnv env = MakeKv(wiring);
    lat[i++] = MeasureKvOp(*env.pipeline, "key", value);
  }
  EXPECT_LT(lat[0], lat[1]);  // Baseline < Delay
  EXPECT_LT(lat[1], lat[2]);  // Delay < IPC
  EXPECT_LT(lat[2], lat[3]);  // IPC < CrossCore
  EXPECT_LT(lat[4], lat[2]);  // SkyBridge < IPC
  EXPECT_GT(lat[4], lat[0]);  // SkyBridge > Baseline
}

TEST(KvPipeline, LatencyGrowsWithValueSize) {
  KvEnv env = MakeKv(KvWiring::kIpc);
  const uint64_t small = MeasureKvOp(*env.pipeline, "s", std::string(16, 'x'));
  const uint64_t big = MeasureKvOp(*env.pipeline, "b", std::string(1024, 'x'));
  EXPECT_GT(big, small + 2000);
}

TEST(Ycsb, ZipfianSkewsTowardHotKeys) {
  sb::Rng rng(1);
  ZipfianGenerator zipf(1000, 0.99, &rng);
  uint64_t hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next() < 10) {
      ++hot;
    }
  }
  // With theta=0.99 the top-1% of keys get far more than 1% of requests.
  EXPECT_GT(hot, static_cast<uint64_t>(n) / 20);
}

TEST(Ycsb, ReadFractionRespected) {
  YcsbWorkload workload(YcsbA());
  int reads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (workload.NextOp().type == YcsbOpType::kRead) {
      ++reads;
    }
  }
  EXPECT_GT(reads, n * 45 / 100);
  EXPECT_LT(reads, n * 55 / 100);
}

TEST(Ycsb, WorkloadCIsReadOnly) {
  YcsbWorkload workload(YcsbC());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(workload.NextOp().type, YcsbOpType::kRead);
  }
}

TEST(Ycsb, KeysWithinRange) {
  YcsbWorkload workload(YcsbA());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(workload.NextOp().key, workload.config().record_count);
  }
}

TEST(Corpus, CleanProgramsHaveNoPattern) {
  sb::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const std::vector<uint8_t> program = GenerateProgram(rng, 32 * 1024);
    EXPECT_TRUE(x86::FindVmfuncBytes(program).empty()) << "program " << i;
  }
}

TEST(Corpus, PlantedProgramHasExactlyOneHitInCallImmediate) {
  sb::Rng rng(4);
  const std::vector<uint8_t> program = GenerateProgramWithCallImmPattern(rng, 32 * 1024);
  const auto hits = x86::ScanForVmfunc(program);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].overlap, x86::VmfuncOverlap::kInImm);
}

TEST(Corpus, Table6CorpusHasOneTotalHit) {
  const auto corpus = BuildTable6Corpus(7);
  int total_hits = 0;
  std::string hit_program;
  for (const CorpusProgram& program : corpus) {
    const auto hits = x86::FindVmfuncBytes(program.code);
    total_hits += static_cast<int>(hits.size());
    if (!hits.empty()) {
      hit_program = program.name;
    }
  }
  EXPECT_EQ(total_hits, 1);
  EXPECT_EQ(hit_program, "GIMP-2.8");
}

// ---- Full SQLite stack ----

TEST(SqliteStack, EndToEndInsertQueryUpdateDelete) {
  SqliteStackConfig config;
  config.transport = StackTransport::kIpcMtServer;
  config.preload_records = 50;
  auto stack = SqliteStack::Create(config);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();

  // Query a preloaded row.
  auto v = (*stack)->Query(0, 7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 100u);

  // Insert / update / delete new rows (all charged through the stack).
  std::vector<uint8_t> value(100, 0x11);
  ASSERT_TRUE((*stack)->Insert(0, 1000, value).ok());
  value[0] = 0x22;
  ASSERT_TRUE((*stack)->Update(0, 1000, value).ok());
  auto updated = (*stack)->Query(0, 1000);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ((*updated)[0], 0x22);
  ASSERT_TRUE((*stack)->Delete(0, 1000).ok());
  EXPECT_FALSE((*stack)->Query(0, 1000).ok());
}

class StackTransportTest : public ::testing::TestWithParam<StackTransport> {};

TEST_P(StackTransportTest, YcsbOpsRunOnAllTransports) {
  SqliteStackConfig config;
  config.transport = GetParam();
  config.preload_records = 100;
  config.num_client_threads = 2;
  auto stack = SqliteStack::Create(config);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();

  YcsbConfig wl = YcsbA();
  wl.record_count = 100;
  YcsbWorkload workload(wl);
  for (int i = 0; i < 40; ++i) {
    const YcsbOp op = workload.NextOp();
    ASSERT_TRUE((*stack)->RunYcsbOp(i % 2, op, workload).ok()) << i;
  }
  EXPECT_GT((*stack)->db_lock().acquisitions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Transports, StackTransportTest,
                         ::testing::Values(StackTransport::kIpcStServer,
                                           StackTransport::kIpcMtServer,
                                           StackTransport::kSkyBridge),
                         [](const auto& info) {
                           return std::string(StackTransportName(info.param)).substr(0, 2) +
                                  std::to_string(static_cast<int>(info.param));
                         });

TEST(SqliteStack, SkyBridgeFasterThanStServer) {
  auto measure = [](StackTransport transport) -> uint64_t {
    SqliteStackConfig config;
    config.transport = transport;
    config.preload_records = 100;
    auto stack = SqliteStack::Create(config);
    SB_CHECK(stack.ok());
    YcsbConfig wl = YcsbA();
    wl.record_count = 100;
    YcsbWorkload workload(wl);
    hw::Core& core = (*stack)->machine().core(0);
    for (int i = 0; i < 10; ++i) {
      SB_CHECK((*stack)->RunYcsbOp(0, workload.NextOp(), workload).ok());
    }
    const uint64_t start = core.cycles();
    for (int i = 0; i < 50; ++i) {
      SB_CHECK((*stack)->RunYcsbOp(0, workload.NextOp(), workload).ok());
    }
    return (core.cycles() - start) / 50;
  };
  const uint64_t st = measure(StackTransport::kIpcStServer);
  const uint64_t mt = measure(StackTransport::kIpcMtServer);
  const uint64_t sky = measure(StackTransport::kSkyBridge);
  EXPECT_LT(sky, mt);
  EXPECT_LT(mt, st);
}

TEST(SqliteStack, ConcurrentClientsSerializeAndScaleLikeThePaper) {
  // Multicore YCSB through the virtual-time executor: correctness under
  // concurrency plus the paper's anti-scaling (throughput per op falls as
  // threads contend on the DB and FS locks).
  auto run = [](int threads) -> double {
    apps::SqliteStackConfig config;
    config.transport = apps::StackTransport::kSkyBridge;
    config.preload_records = 200;
    config.num_client_threads = threads;
    auto stack = apps::SqliteStack::Create(config);
    SB_CHECK(stack.ok());
    apps::YcsbConfig wl = apps::YcsbA();
    wl.record_count = 200;

    sim::Executor exec((*stack)->machine());
    uint64_t base_time = 0;
    for (int c = 0; c < 8; ++c) {
      base_time = std::max(base_time, (*stack)->machine().core(c).cycles());
    }
    for (int c = 0; c < 8; ++c) {
      (*stack)->machine().core(c).SyncClockTo(base_time);
    }
    (*stack)->db_lock().Release(base_time);
    (*stack)->fs().big_lock().Release(base_time);

    std::vector<std::unique_ptr<apps::YcsbWorkload>> workloads;
    uint64_t ops = 0;
    for (int t = 0; t < threads; ++t) {
      apps::YcsbConfig thread_wl = wl;
      thread_wl.seed = 7 + static_cast<uint64_t>(t);
      workloads.push_back(std::make_unique<apps::YcsbWorkload>(thread_wl));
      apps::YcsbWorkload* workload = workloads.back().get();
      apps::SqliteStack* s = stack->get();
      sim::SimThread* thread =
          exec.AddThread("c" + std::to_string(t), t, [=, &ops](sim::SimThread& st) {
            SB_CHECK(s->RunYcsbOp(t, workload->NextOp(), *workload).ok());
            ++ops;
            return st.iterations() + 1 < 30;
          });
      thread->set_now(base_time);
    }
    exec.RunToCompletion();
    EXPECT_EQ(ops, static_cast<uint64_t>(threads) * 30);
    return static_cast<double>(ops) /
           (static_cast<double>(exec.max_time() - base_time) / 4.0e9);
  };
  const double t1 = run(1);
  const double t4 = run(4);
  EXPECT_GT(t1, 0.0);
  EXPECT_GT(t4, 0.0);
  EXPECT_LT(t4, t1);  // Anti-scaling under the big locks, like Figures 9-11.
}

TEST(SqliteStack, NativeAndRootkernelThroughputClose) {
  // Table 5: the virtualization layer costs (next to) nothing and the
  // steady-state VM-exit count is zero.
  auto measure = [](bool rootkernel, uint64_t* exits) -> uint64_t {
    SqliteStackConfig config;
    config.transport = StackTransport::kIpcMtServer;
    config.boot_rootkernel = rootkernel;
    config.preload_records = 100;
    auto stack = SqliteStack::Create(config);
    SB_CHECK(stack.ok());
    YcsbConfig wl = YcsbA();
    wl.record_count = 100;
    YcsbWorkload workload(wl);
    hw::Core& core = (*stack)->machine().core(0);
    for (int i = 0; i < 10; ++i) {
      SB_CHECK((*stack)->RunYcsbOp(0, workload.NextOp(), workload).ok());
    }
    if (rootkernel) {
      (*stack)->kernel().rootkernel()->ResetExitCounters();
    }
    const uint64_t start = core.cycles();
    for (int i = 0; i < 50; ++i) {
      SB_CHECK((*stack)->RunYcsbOp(0, workload.NextOp(), workload).ok());
    }
    if (exits != nullptr) {
      *exits = rootkernel ? (*stack)->kernel().rootkernel()->exits_total() : 0;
    }
    return (core.cycles() - start) / 50;
  };
  uint64_t exits = 0;
  const uint64_t native = measure(false, nullptr);
  const uint64_t virt = measure(true, &exits);
  EXPECT_EQ(exits, 0u);
  // Within 2% of each other.
  EXPECT_LT(virt, native + native / 50);
  EXPECT_GT(virt, native - native / 50);
}

}  // namespace
}  // namespace apps
