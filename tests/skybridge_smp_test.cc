// Cross-core control-plane tests (DESIGN.md section 11): thread migration
// racing in-flight calls, revocation racing migration, eager-vs-lazy EPTP
// re-install parity, and true host-thread concurrency over disjoint pairs
// (the ThreadSanitizer target) including the stats() consistency rule.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/skybridge/skybridge.h"

namespace skybridge {
namespace {

using mk::CallEnv;
using mk::Handler;
using mk::Message;
using sb::kGiB;

hw::MachineConfig SmpMachine() {
  hw::MachineConfig config;
  config.num_cores = 8;
  config.ram_bytes = 4 * kGiB;
  return config;
}

class SkyBridgeSmpTest : public ::testing::Test {
 protected:
  void Boot(SkyBridgeConfig config = {}) {
    // Per-core slot state and consolidation are EPTP mechanics; pin kEptp
    // against the SB_CROSSING_BACKEND matrix.
    config.crossing_backend = CrossingBackendKind::kEptp;
    sky_.reset();
    kernel_.reset();
    machine_.reset();
    machine_ = std::make_unique<hw::Machine>(SmpMachine());
    kernel_ = std::make_unique<mk::Kernel>(*machine_, mk::Sel4Profile());
    ASSERT_TRUE(kernel_->Boot().ok());
    sky_ = std::make_unique<SkyBridge>(*kernel_, config);
  }

  struct Pair {
    mk::Process* client;
    mk::Process* server;
    mk::Thread* thread;
    ServerId sid;
  };

  Pair MakePair(Handler handler, int core, const std::string& tag = "") {
    Pair p;
    p.client = kernel_->CreateProcess("client" + tag).value();
    p.server = kernel_->CreateProcess("server" + tag).value();
    p.sid = sky_->RegisterServer(p.server, /*max_connections=*/8, std::move(handler)).value();
    SB_CHECK(sky_->RegisterClient(p.client, p.sid).ok());
    p.thread = p.client->AddThread(core);
    SB_CHECK(kernel_->ContextSwitchTo(machine_->core(core), p.client).ok());
    return p;
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<SkyBridge> sky_;
  // Filled after MakePair so handlers (captured at registration) can reach
  // the calling thread / binding of the pair they serve.
  mk::Thread* roamer_ = nullptr;
  mk::Process* roamer_client_ = nullptr;
  ServerId roamer_sid_ = 0;
};

Handler EchoHandler() {
  return [](CallEnv& env) { return env.request; };
}

// A call is mid-handler when the scheduler migrates its thread to another
// core. The in-flight call must complete on the core it entered on, and the
// next call must run (with the binding installed) on the new core.
TEST_F(SkyBridgeSmpTest, MigrateWhileInFlight) {
  Boot();
  Pair p = MakePair(
      [this](CallEnv& env) {
        if (env.request.tag == 42) {
          // Mid-handler migration: the scheduler moves the calling thread.
          SB_CHECK(kernel_->MigrateThread(roamer_, /*dest_core=*/3, nullptr,
                                          /*eager_install=*/true)
                       .ok());
        }
        return env.request;
      },
      /*core=*/0);
  roamer_ = p.thread;

  // Warm call, then the migrating call.
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  const uint64_t installs_before = sky_->stats().migration_installs;
  auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(42));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, 42u);
  EXPECT_EQ(p.thread->core_id(), 3);
  EXPECT_EQ(sky_->stats().migration_installs, installs_before + 1);
  ASSERT_TRUE(sky_->CheckInvariants().ok()) << sky_->CheckInvariants().ToString();

  // The next call runs on the new core without re-dispatch or stale retries.
  const uint64_t retries_before = sky_->stats().stale_slot_retries;
  auto after = sky_->DirectServerCall(p.thread, p.sid, Message(7));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(kernel_->current_process(3), p.client);
  EXPECT_EQ(sky_->stats().stale_slot_retries, retries_before);
  ASSERT_TRUE(sky_->CheckInvariants().ok());
}

// Revocation lands while the binding's call is both in flight AND migrating:
// the in-flight reply still returns, the EPTP surgery defers to the drain,
// and afterwards new calls are refused until re-registration revives the
// binding — on the thread's new core.
TEST_F(SkyBridgeSmpTest, RevokeDuringMigration) {
  Boot();
  Pair p = MakePair(
      [this](CallEnv& env) {
        if (env.request.tag == 42) {
          SB_CHECK(kernel_->MigrateThread(roamer_, /*dest_core=*/2, nullptr,
                                          /*eager_install=*/true)
                       .ok());
          SB_CHECK(sky_->RevokeBinding(roamer_client_, roamer_sid_).ok());
        }
        return env.request;
      },
      /*core=*/0);
  roamer_ = p.thread;
  roamer_client_ = p.client;
  roamer_sid_ = p.sid;

  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  // The in-flight call drains normally despite the mid-flight revoke+migrate.
  auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(42));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(sky_->InFlightCalls(), 0u);
  ASSERT_TRUE(sky_->CheckInvariants().ok()) << sky_->CheckInvariants().ToString();
  // Drained: the revocation swept the binding out of the EPTP list.
  EXPECT_EQ(sky_->InstalledBindings(p.client).value(), 0u);

  // New calls are refused on the new core.
  auto refused = sky_->DirectServerCall(p.thread, p.sid, Message(1));
  EXPECT_EQ(refused.status().code(), sb::ErrorCode::kPermissionDenied);

  // Revival re-keys and reinstalls; the thread keeps calling from core 2.
  ASSERT_TRUE(sky_->RegisterClient(p.client, p.sid).ok());
  auto revived = sky_->DirectServerCall(p.thread, p.sid, Message(9));
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ(revived->tag, 9u);
  ASSERT_TRUE(sky_->CheckInvariants().ok());
}

// Eager-install and lazy-retry migration must produce identical call results
// and identical control-plane state; only the install accounting may differ
// (eager counts migration_installs, lazy recovers via dispatch on the next
// call).
TEST_F(SkyBridgeSmpTest, EagerAndLazyMigrationConverge) {
  struct WorldResult {
    std::vector<uint64_t> tags;
    SkyBridgeStats stats;
    size_t installed;
  };
  auto run = [&](bool eager) -> WorldResult {
    Boot();
    Pair p = MakePair(EchoHandler(), /*core=*/0);
    mk::Process* other = kernel_->CreateProcess("other").value();
    WorldResult r;
    for (uint64_t i = 0; i < 64; ++i) {
      if (i != 0 && i % 8 == 0) {
        const int dest = (p.thread->core_id() + 1) % machine_->num_cores();
        // Another process ran on the destination since the last visit.
        SB_CHECK(kernel_->ContextSwitchTo(machine_->core(dest), other).ok());
        SB_CHECK(kernel_->MigrateThread(p.thread, dest, nullptr, eager).ok());
      }
      auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(i));
      SB_CHECK(reply.ok()) << reply.status().ToString();
      r.tags.push_back(reply->tag);
    }
    SB_CHECK(sky_->CheckInvariants().ok()) << sky_->CheckInvariants().ToString();
    r.stats = sky_->stats();
    r.installed = sky_->InstalledBindings(p.client).value();
    return r;
  };

  const WorldResult eager = run(/*eager=*/true);
  const WorldResult lazy = run(/*eager=*/false);
  EXPECT_EQ(eager.tags, lazy.tags);
  EXPECT_EQ(eager.installed, lazy.installed);
  EXPECT_EQ(eager.stats.direct_calls, lazy.stats.direct_calls);
  EXPECT_EQ(eager.stats.rejected_calls, lazy.stats.rejected_calls);
  EXPECT_EQ(eager.stats.stale_slot_retries, lazy.stats.stale_slot_retries);
  EXPECT_EQ(eager.stats.eptp_misses, lazy.stats.eptp_misses);
  // The one sanctioned difference: where the post-migration install ran.
  EXPECT_GT(eager.stats.migration_installs, 0u);
  EXPECT_EQ(lazy.stats.migration_installs, 0u);
}

// The ThreadSanitizer target: disjoint (client, server) pairs hammered from
// real host threads, one per simulated core, with a concurrent stats()
// reader. Steady-state calls share no mutable control-plane word, so this
// must be race-free; the reader checks the documented stats() consistency
// rule (per-field monotonicity, thread-local snapshot identity).
TEST_F(SkyBridgeSmpTest, ConcurrentDisjointPairsAndStatsSnapshot) {
  Boot();
  constexpr int kPairs = 4;
  constexpr uint64_t kCallsPerPair = 2000;
  std::vector<Pair> pairs;
  for (int i = 0; i < kPairs; ++i) {
    pairs.push_back(MakePair(EchoHandler(), /*core=*/i, std::to_string(i)));
  }
  // Pre-warm on the owning core so every slow path (rewrite, dispatch, index
  // fill, EPTP install) runs before host threads exist.
  for (const Pair& p : pairs) {
    ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  }
  const uint64_t warm_calls = sky_->stats().direct_calls;

  // Every kBatchEvery direct calls, each caller also pushes one batch of
  // kBatchDepth through its submission ring, so the batch counters mutate
  // concurrently with the reader below.
  constexpr uint64_t kBatchEvery = 100;
  constexpr uint64_t kBatchDepth = 4;
  constexpr uint64_t kBatchesPerPair = kCallsPerPair / kBatchEvery;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    const SkyBridgeStats* last_addr = nullptr;
    uint64_t last_calls = 0;
    uint64_t last_batched = 0;
    uint64_t last_flushes = 0;
    uint64_t last_rounds = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const SkyBridgeStats& s = sky_->stats();
      // Thread-local snapshot: same address every time on this thread.
      if (last_addr != nullptr) {
        ASSERT_EQ(&s, last_addr);
      }
      last_addr = &s;
      // Per-field monotonicity under concurrent mutation.
      ASSERT_GE(s.direct_calls, last_calls);
      ASSERT_LE(s.direct_calls, warm_calls + kPairs * kCallsPerPair);
      ASSERT_EQ(s.rejected_calls, 0u);
      ASSERT_GE(s.batched_calls, last_batched);
      ASSERT_LE(s.batched_calls, kPairs * kBatchesPerPair * kBatchDepth);
      ASSERT_GE(s.batch_flushes, last_flushes);
      ASSERT_GE(s.batch_drain_rounds, last_rounds);
      // Each flush drains at least one round; rounds never outrun entries.
      ASSERT_GE(s.batch_drain_rounds, s.batch_flushes);
      ASSERT_LE(s.batch_flushes, s.batched_calls);
      last_calls = s.direct_calls;
      last_batched = s.batched_calls;
      last_flushes = s.batch_flushes;
      last_rounds = s.batch_drain_rounds;
    }
  });

  std::vector<std::thread> callers;
  for (int i = 0; i < kPairs; ++i) {
    callers.emplace_back([&, i] {
      const Pair& p = pairs[static_cast<size_t>(i)];
      for (uint64_t n = 0; n < kCallsPerPair; ++n) {
        auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(n));
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        ASSERT_EQ(reply->tag, n);
        if ((n + 1) % kBatchEvery == 0) {
          std::vector<Message> msgs(kBatchDepth, Message(n));
          auto batched = sky_->CallBatch(p.thread, p.sid, msgs);
          ASSERT_TRUE(batched.ok()) << batched.status().ToString();
          for (const auto& entry : *batched) {
            ASSERT_TRUE(entry.status.ok()) << entry.status.ToString();
            ASSERT_EQ(entry.reply.tag, n);
          }
        }
      }
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  // Quiesced: exact counts, and the caller-thread snapshot agrees.
  const SkyBridgeStats& s = sky_->stats();
  EXPECT_EQ(s.direct_calls, warm_calls + kPairs * kCallsPerPair);
  EXPECT_EQ(s.rejected_calls, 0u);
  EXPECT_EQ(s.batched_calls, kPairs * kBatchesPerPair * kBatchDepth);
  EXPECT_EQ(s.batch_flushes, kPairs * kBatchesPerPair);
  EXPECT_GE(s.batch_drain_rounds, s.batch_flushes);
  EXPECT_EQ(sky_->InFlightCalls(), 0u);
  ASSERT_TRUE(sky_->CheckInvariants().ok()) << sky_->CheckInvariants().ToString();
}

// Consolidation under true concurrency (DESIGN.md section 15): eight clients
// on eight cores all translate through ONE shared server EPT, but steady-state
// calls touch only their own core's slot cache, their own binding's in-flight
// counter and their own buffer slice — so the siblings may hammer the shared
// view from concurrent host threads (the ThreadSanitizer target). Afterwards,
// revoking one sibling leaves the others served, and revoking the server
// drains the shared EPT's residency on every core.
TEST_F(SkyBridgeSmpTest, ConsolidatedSiblingsCallConcurrentlyAcrossCores) {
  Boot();
  constexpr int kSiblings = 8;
  constexpr uint64_t kCallsEach = 2000;
  auto* server = kernel_->CreateProcess("shared-server").value();
  const ServerId sid =
      sky_->RegisterServer(server, /*max_connections=*/kSiblings, EchoHandler()).value();
  const size_t epts_before = kernel_->rootkernel()->ept_count();

  std::vector<mk::Process*> clients;
  std::vector<mk::Thread*> threads;
  for (int i = 0; i < kSiblings; ++i) {
    auto* c = kernel_->CreateProcess("sibling" + std::to_string(i)).value();
    ASSERT_TRUE(sky_->RegisterClient(c, sid).ok());
    clients.push_back(c);
    threads.push_back(c->AddThread(i));
    ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(i), c).ok());
    // Pre-warm on the owning core so every slow path (rewrite, slice carve,
    // per-core EPTP install) runs before host threads exist.
    ASSERT_TRUE(sky_->DirectServerCall(threads.back(), sid, Message(7)).ok());
  }
  // One process-view EPT per client plus exactly ONE shared binding EPT.
  EXPECT_EQ(kernel_->rootkernel()->ept_count(), epts_before + kSiblings + 1);

  std::vector<std::thread> callers;
  for (int i = 0; i < kSiblings; ++i) {
    callers.emplace_back([&, i] {
      for (uint64_t n = 0; n < kCallsEach; ++n) {
        const uint64_t tag = static_cast<uint64_t>(i) * kCallsEach + n;
        auto reply = sky_->DirectServerCall(threads[static_cast<size_t>(i)], sid, Message(tag));
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        ASSERT_EQ(reply->tag, tag);  // Distinct slices: no cross-sibling bleed.
      }
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }
  EXPECT_EQ(sky_->InFlightCalls(), 0u);
  EXPECT_EQ(sky_->stats().rejected_calls, 0u);
  ASSERT_TRUE(sky_->CheckInvariants().ok()) << sky_->CheckInvariants().ToString();

  // The shared slot survives the storm: every sibling resolves to the same
  // resident slot on its own core's list.
  for (int i = 0; i < kSiblings; ++i) {
    EXPECT_NE(sky_->ResidentBindingSlot(clients[static_cast<size_t>(i)], sid,
                                        static_cast<uint32_t>(i)),
              kNoEptpSlot);
  }

  // Sibling revoke isolation, then server revoke drains every core.
  ASSERT_TRUE(sky_->RevokeBinding(clients[0], sid).ok());
  EXPECT_EQ(sky_->DirectServerCall(threads[0], sid, Message(1)).status().code(),
            sb::ErrorCode::kPermissionDenied);
  auto still = sky_->DirectServerCall(threads[1], sid, Message(2));
  ASSERT_TRUE(still.ok()) << still.status().ToString();
  ASSERT_TRUE(sky_->RevokeServer(sid).ok());
  for (int i = 0; i < kSiblings; ++i) {
    EXPECT_EQ(sky_->ResidentBindingSlot(clients[static_cast<size_t>(i)], sid,
                                        static_cast<uint32_t>(i)),
              kNoEptpSlot);
  }
  ASSERT_TRUE(sky_->CheckInvariants().ok()) << sky_->CheckInvariants().ToString();
}

}  // namespace
}  // namespace skybridge
