// Asynchronous notification tests (the Section 8 "mixture" of IPC styles).

#include "src/mk/notification.h"

#include <gtest/gtest.h>

#include "src/base/logging.h"
#include "src/mk/kernel.h"

namespace mk {
namespace {

class NotificationTest : public ::testing::Test {
 protected:
  NotificationTest() {
    hw::MachineConfig mc;
    mc.num_cores = 2;
    mc.ram_bytes = 2ULL << 30;
    machine_ = std::make_unique<hw::Machine>(mc);
    KernelOptions options;
    options.boot_rootkernel = false;
    kernel_ = std::make_unique<Kernel>(*machine_, Sel4Profile(), options);
    SB_CHECK(kernel_->Boot().ok());
    notification_ = std::make_unique<Notification>(kernel_.get(), 1);
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<Notification> notification_;
};

TEST_F(NotificationTest, SignalThenWaitCollectsBadges) {
  hw::Core& signaler = machine_->core(0);
  hw::Core& waiter = machine_->core(1);
  ASSERT_TRUE(notification_->Signal(signaler, 0b001).ok());
  ASSERT_TRUE(notification_->Signal(signaler, 0b100).ok());
  auto badges = notification_->Wait(waiter);
  ASSERT_TRUE(badges.ok());
  EXPECT_EQ(*badges, 0b101u);  // Badges coalesce (binary-semaphore word).
}

TEST_F(NotificationTest, WaitClearsBadges) {
  hw::Core& core = machine_->core(0);
  ASSERT_TRUE(notification_->Signal(core, 1).ok());
  ASSERT_TRUE(notification_->Wait(core).ok());
  EXPECT_EQ(notification_->Wait(core).status().code(), sb::ErrorCode::kUnavailable);
}

TEST_F(NotificationTest, WaiterBlocksUntilSignalVirtualTime) {
  hw::Core& signaler = machine_->core(0);
  hw::Core& waiter = machine_->core(1);
  // The signaler is far ahead in virtual time.
  signaler.AdvanceCycles(1000000);
  ASSERT_TRUE(notification_->Signal(signaler, 1).ok());
  const uint64_t signal_time = signaler.cycles();
  ASSERT_TRUE(notification_->Wait(waiter).ok());
  // The waiter's clock jumped to (at least) the signal time plus wakeup.
  EXPECT_GE(waiter.cycles(), signal_time);
}

TEST_F(NotificationTest, PollIsNonBlocking) {
  hw::Core& core = machine_->core(0);
  auto empty = notification_->Poll(core);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0u);
  ASSERT_TRUE(notification_->Signal(core, 0b10).ok());
  EXPECT_EQ(*notification_->Poll(core), 0b10u);
}

TEST_F(NotificationTest, ZeroBadgeRejected) {
  EXPECT_EQ(notification_->Signal(machine_->core(0), 0).code(),
            sb::ErrorCode::kInvalidArgument);
}

TEST_F(NotificationTest, SignalIsCheaperThanSyncIpcButPollingAddsUp) {
  // One signal costs about a no-op syscall; a full notify+wait handoff is
  // in the same ballpark as one synchronous one-way — the reason the paper
  // focuses on synchronous request/response.
  hw::Core& core = machine_->core(0);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(notification_->Signal(core, 1).ok());
    ASSERT_TRUE(notification_->Wait(core).ok());
  }
  const uint64_t start = core.cycles();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(notification_->Signal(core, 1).ok());
    ASSERT_TRUE(notification_->Wait(core).ok());
  }
  const uint64_t handoff = (core.cycles() - start) / 100;
  EXPECT_GT(handoff, 396u);   // Slower than a SkyBridge roundtrip...
  EXPECT_LT(handoff, 2500u);  // ...but no address-space switch, so < seL4 RT x2.
}

}  // namespace
}  // namespace mk
