// Telemetry subsystem tests: the sharded metrics registry, the per-thread
// trace ring with its Chrome export, and the end-to-end trace of one
// SkyBridge DirectServerCall.

#include "src/base/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "src/base/telemetry/span.h"
#include "src/base/telemetry/trace.h"
#include "src/skybridge/skybridge.h"

namespace sb::telemetry {
namespace {

TEST(Counter, AddAndFold) {
  Counter c("test.counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Counter, ConcurrentAddsSumExactly) {
  Counter c("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        c.Add();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(Gauge, SetAndSetMax) {
  Gauge g("test.gauge");
  g.Set(7);
  EXPECT_EQ(g.Value(), 7u);
  g.SetMax(3);  // Lower: high-water mark keeps 7.
  EXPECT_EQ(g.Value(), 7u);
  g.SetMax(11);
  EXPECT_EQ(g.Value(), 11u);
}

TEST(Gauge, ProviderWinsOverStoredValue) {
  Gauge g("test.provider");
  g.Set(1);
  uint64_t source = 99;
  g.SetProvider([&source] { return source; });
  EXPECT_EQ(g.Value(), 99u);
  source = 100;
  EXPECT_EQ(g.Value(), 100u);
}

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h("test.hist");
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(LatencyHistogram, SingleSample) {
  LatencyHistogram h("test.hist");
  h.Record(396);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 396.0);
  EXPECT_EQ(h.Max(), 396u);
  // Every percentile of a single sample is that sample (bucket midpoint
  // clamped to the observed max).
  EXPECT_EQ(h.Percentile(0), h.Percentile(100));
  EXPECT_LE(h.Percentile(50), 396u);
  EXPECT_GE(h.Percentile(50), 256u);  // Within the 2x bucket bound.
}

TEST(LatencyHistogram, ZeroValuesLandInBucketZero) {
  LatencyHistogram h("test.hist");
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(LatencyHistogram, PercentilesOrderedAndClampedToMax) {
  LatencyHistogram h("test.hist");
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  const uint64_t p0 = h.Percentile(0);
  const uint64_t p50 = h.Percentile(50);
  const uint64_t p99 = h.Percentile(99);
  const uint64_t p100 = h.Percentile(100);
  EXPECT_LE(p0, p50);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p100);
  EXPECT_LE(p100, 1000u);  // Clamped to the observed max, not the bucket top.
  EXPECT_GE(p50, 250u);    // 2x-error bound around the true 500.
  EXPECT_LE(p50, 1000u);
}

TEST(LatencyHistogram, TailPercentilesResolveSixteenthOctaves) {
  LatencyHistogram h("test.hist");
  // 99.9% of samples at ~1000, a 0.1% tail at 100x: the tail percentiles
  // must separate the two populations, and the 16-sub-bucket octaves keep
  // the body representative within 1/16 relative error (not the 2x a pure
  // power-of-two histogram allows).
  for (int i = 0; i < 9992; ++i) {
    h.Record(1000);
  }
  for (int i = 0; i < 8; ++i) {
    h.Record(100000);
  }
  EXPECT_GE(h.Percentile(50), 992u);
  EXPECT_LE(h.Percentile(50), 1063u);  // 1000 * 17/16.
  EXPECT_LE(h.Percentile(99.9), 1063u);    // p99.9 still in the body...
  EXPECT_GE(h.Percentile(99.99), 90000u);  // ...p99.99 sees the 0.1% tail.
  EXPECT_EQ(h.OverflowCount(), 0u);
}

TEST(LatencyHistogram, OverflowBucketIsDistinctPlusInf) {
  LatencyHistogram h("test.hist");
  const uint64_t digest_before = h.Digest();
  for (int i = 0; i < 99; ++i) {
    h.Record(400);
  }
  h.Record(uint64_t{1} << 50);  // Past the 48-bit tracked range.
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_EQ(h.OverflowCount(), 1u);
  // The body is unperturbed, and a percentile landing in the overflow
  // bucket reports +Inf instead of a made-up clamped value.
  EXPECT_LT(h.Percentile(50), 1000u);
  EXPECT_EQ(h.Percentile(100), LatencyHistogram::kOverflowValue);
  EXPECT_EQ(h.Max(), uint64_t{1} << 50);
  EXPECT_NE(h.Digest(), digest_before);

  // The largest tracked value is NOT overflow.
  LatencyHistogram g("test.hist");
  g.Record((uint64_t{1} << 48) - 1);
  EXPECT_EQ(g.OverflowCount(), 0u);
  EXPECT_NE(g.Percentile(100), LatencyHistogram::kOverflowValue);
}

TEST(Registry, SameNameReturnsSameMetric) {
  Registry registry;
  Counter& a = registry.GetCounter("skybridge.ipc.direct_calls");
  Counter& b = registry.GetCounter("skybridge.ipc.direct_calls");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.Value(), 5u);
  // Different kinds live in different namespaces.
  Gauge& g = registry.GetGauge("skybridge.ipc.direct_calls");
  EXPECT_EQ(g.Value(), 0u);
}

TEST(Registry, SnapshotCarriesAllKinds) {
  Registry registry;
  registry.GetCounter("a.b.counter").Add(3);
  registry.GetGauge("a.b.gauge").Set(9);
  registry.GetHistogram("a.b.hist").Record(100);
  const std::vector<MetricValue> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  for (const MetricValue& m : snap) {
    if (m.name == "a.b.counter") {
      EXPECT_EQ(m.kind, MetricValue::Kind::kCounter);
      EXPECT_EQ(m.value, 3u);
    } else if (m.name == "a.b.gauge") {
      EXPECT_EQ(m.kind, MetricValue::Kind::kGauge);
      EXPECT_EQ(m.value, 9u);
    } else {
      EXPECT_EQ(m.kind, MetricValue::Kind::kHistogram);
      EXPECT_EQ(m.count, 1u);
      EXPECT_EQ(m.max, 100u);
    }
  }
}

TEST(Registry, SnapshotJsonIsWellFormed) {
  Registry registry;
  registry.GetCounter("x.y.calls").Add(2);
  registry.GetHistogram("x.y.lat").Record(50);
  const std::string json = registry.SnapshotJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"x.y.calls\":2"), std::string::npos);
  EXPECT_NE(json.find("\"x.y.lat\":{\"count\":1"), std::string::npos);
  // Balanced braces (no parser available; the CI job validates with python).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Registry, MachinesDoNotShareMetrics) {
  hw::MachineConfig mc;
  mc.num_cores = 1;
  mc.ram_bytes = 1ULL << 30;
  hw::Machine a(mc);
  hw::Machine b(mc);
  a.telemetry().GetCounter("test.shared.name").Add(7);
  EXPECT_EQ(b.telemetry().GetCounter("test.shared.name").Value(), 0u);
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTraceEnabled(false);
    TraceClear();
  }
  void TearDown() override {
    SetTraceEnabled(false);
    TraceClear();
  }
};

TEST_F(TraceTest, DisabledEmitsNothing) {
  TraceEmit(TraceEventType::kCallStart, 100);
  SB_TRACE_EVENT(TraceEventType::kCallStart, 200);
  EXPECT_TRUE(TraceSnapshot().empty());
}

TEST_F(TraceTest, MacroDoesNotEvaluateArgsWhenDisabled) {
  int evaluations = 0;
  auto count = [&evaluations] { return static_cast<uint64_t>(++evaluations); };
  SB_TRACE_EVENT(TraceEventType::kCallStart, count());
  EXPECT_EQ(evaluations, 0);
  SetTraceEnabled(true);
  SB_TRACE_EVENT(TraceEventType::kCallStart, count());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(TraceTest, SnapshotPreservesEmissionOrder) {
  SetTraceEnabled(true);
  TraceEmit(TraceEventType::kCallStart, 10, 0, 1, 2);
  TraceEmit(TraceEventType::kVmfuncSwitch, 20, 0, 3);
  TraceEmit(TraceEventType::kCallEnd, 30, 0, 1, 2);
  const std::vector<TraceRecord> records = TraceSnapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, TraceEventType::kCallStart);
  EXPECT_EQ(records[0].cycles, 10u);
  EXPECT_EQ(records[0].arg0, 1u);
  EXPECT_EQ(records[1].type, TraceEventType::kVmfuncSwitch);
  EXPECT_EQ(records[2].type, TraceEventType::kCallEnd);
  EXPECT_LT(records[0].seq, records[1].seq);
  EXPECT_LT(records[1].seq, records[2].seq);
}

TEST_F(TraceTest, RingWrapKeepsNewestRecords) {
  SetTraceEnabled(true);
  const size_t total = kTraceRingCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    TraceEmit(TraceEventType::kVmfuncSwitch, i);
  }
  const std::vector<TraceRecord> records = TraceSnapshot();
  ASSERT_EQ(records.size(), kTraceRingCapacity);
  EXPECT_EQ(records.front().cycles, 100u);  // Oldest surviving.
  EXPECT_EQ(records.back().cycles, total - 1);
}

TEST_F(TraceTest, ChromeJsonPairsSlices) {
  SetTraceEnabled(true);
  TraceEmit(TraceEventType::kCallStart, 100, 0, 1, 2);
  TraceEmit(TraceEventType::kHandlerEnter, 150, 0, 2);
  TraceEmit(TraceEventType::kHandlerExit, 250, 0, 2);
  TraceEmit(TraceEventType::kCallEnd, 300, 0, 1, 2);
  TraceEmit(TraceEventType::kEptpMiss, 310, 0, 2);
  const std::string json = TraceChromeJson(TraceSnapshot());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("DirectServerCall"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
}

TEST_F(TraceTest, DumpShowsEventNames) {
  SetTraceEnabled(true);
  TraceEmit(TraceEventType::kEptEvict, 42, 1, 7, 3);
  std::ostringstream out;
  TraceDump(out);
  EXPECT_NE(out.str().find("ept_evict"), std::string::npos);
  EXPECT_NE(out.str().find("42"), std::string::npos);
}

// The acceptance test: trace one warm DirectServerCall and assert the
// canonical fast-path event sequence with non-decreasing cycle timestamps.
class SkyBridgeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTraceEnabled(false);
    TraceClear();
    hw::MachineConfig mc;
    mc.num_cores = 2;
    mc.ram_bytes = 2ULL << 30;
    machine_ = std::make_unique<hw::Machine>(mc);
    kernel_ = std::make_unique<mk::Kernel>(*machine_, mk::Sel4Profile());
    ASSERT_TRUE(kernel_->Boot().ok());
    // The canonical trace sequence below is the VMFUNC fast path; pin kEptp
    // against the SB_CROSSING_BACKEND matrix.
    skybridge::SkyBridgeConfig config;
    config.crossing_backend = skybridge::CrossingBackendKind::kEptp;
    sky_ = std::make_unique<skybridge::SkyBridge>(*kernel_, config);
    client_ = kernel_->CreateProcess("client").value();
    server_ = kernel_->CreateProcess("server").value();
    sid_ = sky_->RegisterServer(server_, 4, [](mk::CallEnv& env) { return env.request; })
               .value();
    ASSERT_TRUE(sky_->RegisterClient(client_, sid_).ok());
    thread_ = client_->AddThread(0);
    ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client_).ok());
  }
  void TearDown() override {
    SetTraceEnabled(false);
    TraceClear();
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<skybridge::SkyBridge> sky_;
  mk::Process* client_ = nullptr;
  mk::Process* server_ = nullptr;
  skybridge::ServerId sid_ = 0;
  mk::Thread* thread_ = nullptr;
};

// Index of the first record of `type` at or after `from`; fails if absent.
size_t IndexOf(const std::vector<TraceRecord>& records, TraceEventType type, size_t from = 0) {
  for (size_t i = from; i < records.size(); ++i) {
    if (records[i].type == type) {
      return i;
    }
  }
  ADD_FAILURE() << "event " << TraceEventName(type) << " not found from index " << from;
  return records.size();
}

TEST_F(SkyBridgeTraceTest, DirectCallEmitsCanonicalSequence) {
  // Warm call installs the binding so the traced call is the pure fast path.
  ASSERT_TRUE(sky_->DirectServerCall(thread_, sid_, mk::Message(1)).ok());

  TraceClear();
  SetTraceEnabled(true);
  ASSERT_TRUE(sky_->DirectServerCall(thread_, sid_, mk::Message(2)).ok());
  SetTraceEnabled(false);

  const std::vector<TraceRecord> records = TraceSnapshot();
  ASSERT_FALSE(records.empty());

  // lookup -> vmfunc -> handler enter -> handler exit -> vmfunc-return,
  // bracketed by the call start/end markers.
  const size_t start = IndexOf(records, TraceEventType::kCallStart);
  const size_t lookup = IndexOf(records, TraceEventType::kLookupHit, start);
  const size_t vmfunc_in = IndexOf(records, TraceEventType::kVmfuncSwitch, lookup);
  const size_t enter = IndexOf(records, TraceEventType::kHandlerEnter, vmfunc_in);
  const size_t exit = IndexOf(records, TraceEventType::kHandlerExit, enter);
  const size_t vmfunc_out = IndexOf(records, TraceEventType::kVmfuncSwitch, exit);
  const size_t end = IndexOf(records, TraceEventType::kCallEnd, vmfunc_out);
  ASSERT_LT(end, records.size());
  EXPECT_LT(start, lookup);
  EXPECT_LT(vmfunc_in, enter);
  EXPECT_LT(exit, vmfunc_out);
  EXPECT_LT(vmfunc_out, end);

  // The warm path never misses: no lookup miss, EPTP miss, or rejection.
  for (const TraceRecord& r : records) {
    EXPECT_NE(r.type, TraceEventType::kLookupMiss);
    EXPECT_NE(r.type, TraceEventType::kEptpMiss);
    EXPECT_NE(r.type, TraceEventType::kRejected);
  }

  // Timestamps are monotonically non-decreasing in emission order (one
  // core, one clock) and the call markers span the rest.
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].cycles, records[i - 1].cycles)
        << "at " << TraceEventName(records[i].type);
  }
  EXPECT_EQ(records[start].arg0, static_cast<uint64_t>(client_->pid()));
  EXPECT_EQ(records[start].arg1, static_cast<uint64_t>(server_->pid()));
}

TEST_F(SkyBridgeTraceTest, TracingChargesNoSimulatedCycles) {
  // Warm up, then measure one call with tracing off and one with it on: the
  // simulated cost must be identical (instrumentation is host-side only).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sky_->DirectServerCall(thread_, sid_, mk::Message(0)).ok());
  }
  hw::Core& core = machine_->core(0);
  uint64_t start = core.cycles();
  ASSERT_TRUE(sky_->DirectServerCall(thread_, sid_, mk::Message(0)).ok());
  const uint64_t cycles_off = core.cycles() - start;

  SetTraceEnabled(true);
  start = core.cycles();
  ASSERT_TRUE(sky_->DirectServerCall(thread_, sid_, mk::Message(0)).ok());
  const uint64_t cycles_on = core.cycles() - start;
  SetTraceEnabled(false);
  EXPECT_EQ(cycles_on, cycles_off);
}

TEST_F(SkyBridgeTraceTest, RegistryCountsMatchStatsSnapshot) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sky_->DirectServerCall(thread_, sid_, mk::Message(0)).ok());
  }
  const skybridge::SkyBridgeStats stats = sky_->stats();
  Registry& reg = machine_->telemetry();
  EXPECT_EQ(stats.direct_calls, 5u);
  EXPECT_EQ(reg.GetCounter("skybridge.ipc.direct_calls").Value(), 5u);
  EXPECT_EQ(reg.GetCounter("skybridge.lookup.hits").Value() +
                reg.GetCounter("skybridge.lookup.misses").Value(),
            5u);
  // Phase histograms saw every call; the total per-call cost is near 396.
  LatencyHistogram& total = reg.GetHistogram("skybridge.phase.total");
  EXPECT_EQ(total.Count(), 5u);
  EXPECT_GT(total.Max(), 0u);
  EXPECT_LE(total.Percentile(99), 2 * total.Max());
  // The machine-level VMFUNC gauge saw the two switches per call.
  EXPECT_GE(reg.GetGauge("hw.core.vmfuncs").Value(), 10u);
}

// The staged-registration counters (DESIGN.md section 17): a lazy-mode world
// registers with every code page non-executable, so the first call exec-faults
// the client and server pages in, each fault recorded by the
// skybridge.registration.* counters and the exec-fault phase histogram.
TEST(RegistrationTelemetry, LazyFirstCallFeedsTheRegistrationCounters) {
  hw::MachineConfig mc;
  mc.num_cores = 2;
  mc.ram_bytes = 2ULL << 30;
  hw::Machine machine(mc);
  mk::Kernel kernel(machine, mk::Sel4Profile());
  ASSERT_TRUE(kernel.Boot().ok());
  skybridge::SkyBridgeConfig config;
  config.crossing_backend = skybridge::CrossingBackendKind::kEptp;
  config.registration_mode = skybridge::RegistrationMode::kLazy;
  skybridge::SkyBridge sky(kernel, config);
  mk::Process* client = kernel.CreateProcess("client").value();
  mk::Process* server = kernel.CreateProcess("server").value();
  const skybridge::ServerId sid =
      sky.RegisterServer(server, 4, [](mk::CallEnv& env) { return env.request; }).value();
  ASSERT_TRUE(sky.RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  ASSERT_TRUE(kernel.ContextSwitchTo(machine.core(0), client).ok());

  Registry& reg = machine.telemetry();
  // Registration armed the pages but scanned nothing yet.
  EXPECT_EQ(reg.GetCounter("skybridge.registration.exec_faults").Value(), 0u);
  EXPECT_EQ(reg.GetCounter("skybridge.registration.lazy_rewrites").Value(), 0u);
  EXPECT_EQ(reg.GetHistogram("skybridge.phase.exec_fault").Count(), 0u);

  ASSERT_TRUE(sky.DirectServerCall(thread, sid, mk::Message(0)).ok());

  // One fault each for the client's and the server's first code page.
  EXPECT_GE(reg.GetCounter("skybridge.registration.exec_faults").Value(), 2u);
  EXPECT_GE(reg.GetCounter("skybridge.registration.lazy_rewrites").Value(), 2u);
  // The first page scanned cold; the second (identical default image)
  // replayed from the content-hashed rewrite cache.
  EXPECT_GE(reg.GetCounter("skybridge.registration.cache_misses").Value(), 1u);
  EXPECT_GE(reg.GetCounter("skybridge.registration.cache_hits").Value(), 1u);
  EXPECT_GE(reg.GetCounter("skybridge.registration.pages_rescanned").Value(), 1u);
  EXPECT_EQ(reg.GetCounter("skybridge.registration.snapshot_restores").Value(), 0u);
  // Each fault's end-to-end resolution latency landed in the phase histogram.
  LatencyHistogram& fault_phase = reg.GetHistogram("skybridge.phase.exec_fault");
  EXPECT_GE(fault_phase.Count(), 2u);
  EXPECT_GT(fault_phase.Max(), 0u);
  // The rootkernel's VM-exit dispatcher saw the violations too.
  EXPECT_GE(reg.GetCounter("vmm.exits.exec_violation").Value(), 2u);

  // The stats() snapshot mirrors the registry names field for field.
  const skybridge::SkyBridgeStats stats = sky.stats();
  EXPECT_EQ(stats.exec_faults, reg.GetCounter("skybridge.registration.exec_faults").Value());
  EXPECT_EQ(stats.lazy_rewrites,
            reg.GetCounter("skybridge.registration.lazy_rewrites").Value());
  EXPECT_EQ(stats.cache_hits, reg.GetCounter("skybridge.registration.cache_hits").Value());
  EXPECT_EQ(stats.cache_misses,
            reg.GetCounter("skybridge.registration.cache_misses").Value());
  EXPECT_EQ(stats.snapshot_restores,
            reg.GetCounter("skybridge.registration.snapshot_restores").Value());
  EXPECT_EQ(stats.pages_rescanned,
            reg.GetCounter("skybridge.registration.pages_rescanned").Value());

  // Steady state: the fault path never fires again, the counters hold still.
  const uint64_t faults = stats.exec_faults;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sky.DirectServerCall(thread, sid, mk::Message(0)).ok());
  }
  EXPECT_EQ(reg.GetCounter("skybridge.registration.exec_faults").Value(), faults);
  EXPECT_EQ(fault_phase.Count(), faults);
}

// Index of the first record of `type` with arg0 == `id` at or after `from`;
// fails if absent.
size_t IndexOfCall(const std::vector<TraceRecord>& records, TraceEventType type, uint64_t id,
                   size_t from = 0) {
  for (size_t i = from; i < records.size(); ++i) {
    if (records[i].type == type && records[i].arg0 == id) {
      return i;
    }
  }
  ADD_FAILURE() << "event " << TraceEventName(type) << " for call " << id
                << " not found from index " << from;
  return records.size();
}

TEST_F(SkyBridgeTraceTest, BatchEventsCarryTokenThroughThePipeline) {
  ASSERT_TRUE(sky_->DirectServerCall(thread_, sid_, mk::Message(1)).ok());  // Warm binding.
  TraceClear();
  SetTraceEnabled(true);
  const auto t0 = sky_->SubmitCall(thread_, sid_, mk::Message(10));
  const auto t1 = sky_->SubmitCall(thread_, sid_, mk::Message(11));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(sky_->FlushBatch(thread_, sid_).ok());
  ASSERT_TRUE(sky_->PollCompletion(thread_, sid_, *t0).ok());
  ASSERT_TRUE(sky_->PollCompletion(thread_, sid_, *t1).ok());
  SetTraceEnabled(false);

  const std::vector<TraceRecord> records = TraceSnapshot();
  // The first enqueue names the op by (call id, ring token); the same pair
  // reappears at drain (inside the crossing) and at poll.
  const size_t enq = IndexOf(records, TraceEventType::kBatchEnqueue);
  ASSERT_LT(enq, records.size());
  const uint64_t call_id = records[enq].arg0;
  ASSERT_NE(call_id, 0u);
  EXPECT_EQ(records[enq].arg1, *t0);
  const size_t drain = IndexOfCall(records, TraceEventType::kBatchDrain, call_id, enq);
  const size_t poll = IndexOfCall(records, TraceEventType::kBatchPoll, call_id, drain);
  ASSERT_LT(poll, records.size());
  EXPECT_EQ(records[drain].arg1, *t0);
  EXPECT_EQ(records[poll].arg1, *t0);

  // Both submissions drained inside ONE flush window, which reports the
  // pending and completed counts.
  const size_t fstart = IndexOf(records, TraceEventType::kBatchFlushStart);
  const size_t fend = IndexOf(records, TraceEventType::kBatchFlushEnd, fstart);
  ASSERT_LT(fend, records.size());
  EXPECT_LT(fstart, drain);
  EXPECT_LT(drain, fend);
  EXPECT_EQ(records[fstart].arg1, 2u);  // Pending at flush.
  EXPECT_EQ(records[fend].arg1, 2u);    // Completed by the crossing.
  // The two calls got distinct ids.
  const size_t enq2 = IndexOf(records, TraceEventType::kBatchEnqueue, enq + 1);
  ASSERT_LT(enq2, records.size());
  EXPECT_NE(records[enq2].arg0, call_id);
  EXPECT_EQ(records[enq2].arg1, *t1);
}

// The section 14 acceptance test: a batched call's full span tree — arrival,
// enqueue, flush, vmfunc, drain, return, poll — reconstructs from the Chrome
// trace export alone, keyed by call id, with the crossing's legs inherited.
TEST_F(SkyBridgeTraceTest, BatchedSpanTreeReconstructsFromChromeExport) {
  ASSERT_TRUE(sky_->DirectServerCall(thread_, sid_, mk::Message(1)).ok());
  TraceClear();
  SetTraceEnabled(true);
  // The load generator's arrival hook, inlined: allocate the id at the
  // intended arrival and park it for the next submission to adopt.
  const uint64_t call_id = AllocCallId();
  TraceEmit(TraceEventType::kSpanArrival, machine_->core(0).cycles(), 0, call_id, 42);
  SetPendingCallId(call_id);
  const auto t0 = sky_->SubmitCall(thread_, sid_, mk::Message(42));
  const auto t1 = sky_->SubmitCall(thread_, sid_, mk::Message(43));  // Same crossing.
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(sky_->FlushBatch(thread_, sid_).ok());
  ASSERT_TRUE(sky_->PollCompletion(thread_, sid_, *t0).ok());
  ASSERT_TRUE(sky_->PollCompletion(thread_, sid_, *t1).ok());
  SetTraceEnabled(false);

  // Round-trip through the export: JSON out, records back, spans up.
  const std::string json = TraceChromeJson(TraceSnapshot());
  const std::vector<TraceRecord> parsed = ParseChromeTrace(json);
  ASSERT_FALSE(parsed.empty());
  const std::vector<CallSpan> spans = BuildSpans(parsed);
  const CallSpan* span = nullptr;
  for (const CallSpan& s : spans) {
    if (s.call_id == call_id) {
      span = &s;
    }
  }
  ASSERT_NE(span, nullptr);

  for (const SpanPhase phase :
       {SpanPhase::kArrival, SpanPhase::kEnqueue, SpanPhase::kFlush, SpanPhase::kVmfunc,
        SpanPhase::kDrain, SpanPhase::kReturn, SpanPhase::kPoll}) {
    EXPECT_NE(span->Find(phase), nullptr) << SpanPhaseName(phase);
  }
  // Client-side phases are the span's own; the crossing's legs are marked
  // inherited and point back to the crossing id.
  ASSERT_NE(span->Find(SpanPhase::kEnqueue), nullptr);
  ASSERT_NE(span->Find(SpanPhase::kVmfunc), nullptr);
  EXPECT_FALSE(span->Find(SpanPhase::kEnqueue)->inherited);
  EXPECT_TRUE(span->Find(SpanPhase::kVmfunc)->inherited);
  EXPECT_NE(span->crossing_id, 0u);
  EXPECT_NE(span->crossing_id, call_id);

  // Phases in pipeline order (global seq ordering survives the round-trip).
  const SpanPhase order[] = {SpanPhase::kArrival, SpanPhase::kEnqueue, SpanPhase::kFlush,
                             SpanPhase::kVmfunc,  SpanPhase::kDrain,   SpanPhase::kReturn,
                             SpanPhase::kPoll};
  for (size_t i = 1; i < std::size(order); ++i) {
    const SpanEvent* prev = span->Find(order[i - 1]);
    const SpanEvent* cur = span->Find(order[i]);
    ASSERT_NE(prev, nullptr);
    ASSERT_NE(cur, nullptr);
    EXPECT_LT(prev->seq, cur->seq) << SpanPhaseName(order[i]);
  }
  EXPECT_GT(span->TotalCycles(), 0u);

  // The batchmate correlates to the SAME crossing: N spans, one vmfunc.
  bool found_mate = false;
  for (const CallSpan& s : spans) {
    if (s.call_id != call_id && s.crossing_id != 0) {
      EXPECT_EQ(s.crossing_id, span->crossing_id);
      found_mate = true;
    }
  }
  EXPECT_TRUE(found_mate);
}

// ---- The fatal path: SB_CHECK failure dumps the flight recorder ----

// Capture-less marker hook (CheckFailureHook is a plain function pointer).
void MarkerHook() { std::fputs("HOOK-RAN\n", stderr); }

// A hook that itself dies: the fatal path must not re-enter it.
void SelfFailingHook() {
  std::fputs("HOOK-RAN\n", stderr);
  SB_CHECK(false) << "nested-fatal";
}

// Saves and restores the process-global hook so these tests compose with
// the SkyBridge fixtures (which install the trace dump hook on first boot).
class CheckFailureHookTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = SetCheckFailureHook(nullptr); }
  void TearDown() override {
    SetCheckFailureHook(saved_);
    SetTraceEnabled(false);
    TraceClear();
  }

  CheckFailureHook saved_ = nullptr;
};

TEST_F(CheckFailureHookTest, SetAndGetRoundTrip) {
  EXPECT_EQ(GetCheckFailureHook(), nullptr);
  EXPECT_EQ(SetCheckFailureHook(&MarkerHook), nullptr);
  EXPECT_EQ(GetCheckFailureHook(), &MarkerHook);
  // Set returns the previous hook; nullptr clears.
  EXPECT_EQ(SetCheckFailureHook(nullptr), &MarkerHook);
  EXPECT_EQ(GetCheckFailureHook(), nullptr);
}

TEST_F(CheckFailureHookTest, InstallTraceCrashDumpClaimsOnlyTheFreeSlot) {
  // A custom hook is never clobbered.
  SetCheckFailureHook(&MarkerHook);
  InstallTraceCrashDump();
  EXPECT_EQ(GetCheckFailureHook(), &MarkerHook);

  // With the slot free, the trace dump registers; a second install is a
  // no-op (idempotent re-registration after the fatal path self-clears).
  SetCheckFailureHook(nullptr);
  InstallTraceCrashDump();
  const CheckFailureHook installed = GetCheckFailureHook();
  ASSERT_NE(installed, nullptr);
  EXPECT_NE(installed, &MarkerHook);
  InstallTraceCrashDump();
  EXPECT_EQ(GetCheckFailureHook(), installed);
}

using CheckFailureHookDeathTest = CheckFailureHookTest;

TEST_F(CheckFailureHookDeathTest, FatalCheckDumpsTheFlightRecorder) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetTraceEnabled(true);
        TraceClear();
        SB_TRACE_EVENT(TraceEventType::kCallStart, 100, 0, 7, 8);
        SB_TRACE_EVENT(TraceEventType::kCallEnd, 200, 0, 7, 8);
        SetCheckFailureHook(nullptr);
        InstallTraceCrashDump();
        SB_CHECK(false) << "flight-recorder-test";
      },
      "flight-recorder-test[^\r]*\r?\n[^\r]*trace flight recorder \\(2 of 2 events\\)");
}

TEST_F(CheckFailureHookDeathTest, DumpNamesTheRecordedEvents) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetTraceEnabled(true);
        TraceClear();
        SB_TRACE_EVENT(TraceEventType::kCallAborted, 42, 1, 3, 4);
        SetCheckFailureHook(nullptr);
        InstallTraceCrashDump();
        SB_CHECK(false) << "boom";
      },
      "seq=0 cycles=42 core=1 call_aborted arg0=3 arg1=4");
}

TEST_F(CheckFailureHookDeathTest, HookRunsExactlyOnceEvenWhenItFailsACheck) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The fatal path exchanges the hook slot to nullptr before calling it, so
  // the nested SB_CHECK inside the hook aborts directly instead of
  // recursing. One marker, then the nested message, then death — a re-entry
  // would hang or overflow the stack and never match.
  EXPECT_DEATH(
      {
        SetCheckFailureHook(&SelfFailingHook);
        SB_CHECK(false) << "outer-fatal";
      },
      "outer-fatal[^\r]*\r?\nHOOK-RAN\r?\n[^\r]*nested-fatal");
}

}  // namespace
}  // namespace sb::telemetry
