// Crash-safe IPC recovery tests: every fault point in the SkyBridge catalog
// is armed, the injected failure observed as a non-OK Status (never an
// SB_CHECK death), and the bridge verified healthy afterwards — EPT view
// restored, invariants intact, subsequent calls succeed.
//
// Parameterized over the crossing backend (DESIGN.md section 16). Abort
// recovery is Rootkernel-mediated on the view-switch backends (EPTP, MPK)
// and a plain kernel reschedule on kSyscall; the stale-slot catalog points
// only exist where view slots do.

#include "src/skybridge/skybridge.h"

#include <gtest/gtest.h>

#include "src/base/faultpoint.h"
#include "src/base/telemetry/trace.h"
#include "src/mk/scheduler.h"
#include "src/vmm/rootkernel.h"

namespace skybridge {
namespace {

using mk::CallEnv;
using mk::Handler;
using mk::Message;
using sb::ErrorCode;
using sb::kGiB;

class FaultRecoveryTest : public ::testing::TestWithParam<CrossingBackendKind> {
 protected:
  void SetUp() override { sb::fault::DisarmAll(); }
  void TearDown() override {
    sb::fault::DisarmAll();
    sb::telemetry::SetTraceEnabled(false);
    sb::telemetry::TraceClear();
  }

  void Boot(SkyBridgeConfig config = {}) {
    config.crossing_backend = GetParam();
    sky_.reset();
    kernel_.reset();
    machine_.reset();
    hw::MachineConfig mc;
    mc.num_cores = 4;
    mc.ram_bytes = 4 * kGiB;
    machine_ = std::make_unique<hw::Machine>(mc);
    kernel_ = std::make_unique<mk::Kernel>(*machine_, mk::Sel4Profile());
    ASSERT_TRUE(kernel_->Boot().ok());
    sky_ = std::make_unique<SkyBridge>(*kernel_, config);
  }

  bool IsSyscall() const { return GetParam() == CrossingBackendKind::kSyscall; }
  // kSyscall bindings never occupy EPTP slots; everything slot-shaped is 0.
  uint64_t InstalledIfViewSlots(uint64_t n) const { return IsSyscall() ? 0u : n; }
  // Aborts route through the Rootkernel hypercall on view-switch backends
  // only; the kernel fastpath recovers with a plain reschedule.
  uint64_t RootkernelAborts(uint64_t n) const { return IsSyscall() ? 0u : n; }

  struct Pair {
    mk::Process* client;
    mk::Process* server;
    mk::Thread* thread;
    ServerId sid;
  };

  Pair MakePair(Handler handler, int connections = 8) {
    Pair p;
    p.client = kernel_->CreateProcess("client").value();
    p.server = kernel_->CreateProcess("server").value();
    p.sid = sky_->RegisterServer(p.server, connections, std::move(handler)).value();
    SB_CHECK(sky_->RegisterClient(p.client, p.sid).ok());
    p.thread = p.client->AddThread(0);
    SB_CHECK(kernel_->ContextSwitchTo(machine_->core(0), p.client).ok());
    return p;
  }

  // The bridge is healthy: invariants hold, nothing in flight, and the core
  // is back in the current process's own EPT view (whatever slot the working
  // set virtualizer parked it in — slot indices are no longer architectural).
  void ExpectHealthy() {
    const sb::Status invariants = sky_->CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.ToString();
    EXPECT_EQ(sky_->InFlightCalls(), 0u);
    mk::Process* current = kernel_->current_process(0);
    ASSERT_NE(current, nullptr);
    EXPECT_EQ(kernel_->rootkernel()->ActiveEptId(0), current->ept_id());
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<SkyBridge> sky_;
};

INSTANTIATE_TEST_SUITE_P(Backends, FaultRecoveryTest,
                         ::testing::Values(CrossingBackendKind::kEptp,
                                           CrossingBackendKind::kMpk,
                                           CrossingBackendKind::kSyscall),
                         [](const ::testing::TestParamInfo<CrossingBackendKind>& param_info) {
                           return std::string(CrossingBackendName(param_info.param));
                         });

Handler EchoHandler() {
  return [](CallEnv& env) { return env.request; };
}

// ---- skybridge.handler.crash: abort + recovery ----

TEST_P(FaultRecoveryTest, HandlerCrashAbortsAndRecovers) {
  Boot();
  Pair p = MakePair(EchoHandler());
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(1)).ok());

  sb::fault::Arm(kFaultHandlerCrash);
  auto crashed = sky_->DirectServerCall(p.thread, p.sid, Message(2));
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), ErrorCode::kAborted);
  ExpectHealthy();
  // On view-switch backends the abort went through the Rootkernel's
  // hypercall, not around it; the kernel fastpath never involves the VMM.
  EXPECT_EQ(kernel_->rootkernel()->aborts(), RootkernelAborts(1));
  EXPECT_EQ(machine_->telemetry().GetCounter("vmm.aborts").Value(), RootkernelAborts(1));
  EXPECT_EQ(sky_->stats().aborted_calls, 1u);

  // Disarmed, the very next call succeeds on the same binding.
  sb::fault::DisarmAll();
  auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(3));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, 3u);
  ExpectHealthy();
}

TEST_P(FaultRecoveryTest, HandlerCrashEmitsAbortTraceEvent) {
  Boot();
  Pair p = MakePair(EchoHandler());
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  sb::fault::Arm(kFaultHandlerCrash);
  sb::telemetry::TraceClear();
  sb::telemetry::SetTraceEnabled(true);
  ASSERT_FALSE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  sb::telemetry::SetTraceEnabled(false);
  bool saw_abort = false;
  for (const auto& r : sb::telemetry::TraceSnapshot()) {
    if (r.type == sb::telemetry::TraceEventType::kCallAborted) {
      saw_abort = true;
      EXPECT_EQ(r.arg0, static_cast<uint64_t>(p.client->pid()));
      EXPECT_EQ(r.arg1, static_cast<uint64_t>(p.server->pid()));
    }
  }
  EXPECT_TRUE(saw_abort);
}

TEST_P(FaultRecoveryTest, NestedHandlerCrashAbortsInnerCallOnly) {
  // client -> middle -> backend; the backend handler crashes. The inner call
  // aborts back into the middle's entry view; the outer call completes.
  Boot();
  auto* backend = kernel_->CreateProcess("backend").value();
  const ServerId backend_sid =
      sky_->RegisterServer(backend, 4, [](CallEnv& env) { return env.request; }).value();

  auto* middle = kernel_->CreateProcess("middle").value();
  mk::Thread* middle_thread = middle->AddThread(0);
  SkyBridge* sky = sky_.get();
  sb::Status inner_status = sb::OkStatus();
  const ServerId middle_sid =
      sky_->RegisterServer(middle, 4,
                           [sky, middle_thread, backend_sid, &inner_status](CallEnv& env) {
                             auto inner =
                                 sky->DirectServerCall(middle_thread, backend_sid, Message(7));
                             inner_status = inner.status();
                             return Message(inner.ok() ? 1 : 2);
                           })
          .value();
  ASSERT_TRUE(sky_->RegisterClient(middle, backend_sid).ok());

  auto* client = kernel_->CreateProcess("client").value();
  mk::Thread* t = client->AddThread(0);
  ASSERT_TRUE(sky_->RegisterClient(client, middle_sid).ok());
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  // Warm both hops, then crash only the second handler invocation of the
  // next roundtrip — that is the backend's (the middle enters first).
  auto warm = sky_->DirectServerCall(t, middle_sid, Message(0));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(inner_status.ok());

  sb::fault::FaultSpec spec;
  spec.nth_hit = 2;
  sb::fault::Arm(kFaultHandlerCrash, spec);
  auto reply = sky_->DirectServerCall(t, middle_sid, Message(0));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, 2u);  // The middle observed the inner abort.
  EXPECT_EQ(inner_status.code(), ErrorCode::kAborted);
  EXPECT_EQ(sky_->stats().aborted_calls, 1u);
  ExpectHealthy();
}

TEST_P(FaultRecoveryTest, AbortUnblocksTheCallerViaTheScheduler) {
  Boot();
  mk::Scheduler scheduler(kernel_.get(), 0);
  Pair p = MakePair(EchoHandler());
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());

  sb::fault::Arm(kFaultHandlerCrash);
  ASSERT_FALSE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  // The aborted caller was made runnable again, at the front of its queue.
  EXPECT_EQ(scheduler.abort_unblocks(), 1u);
  EXPECT_TRUE(scheduler.IsQueued(p.thread));
  EXPECT_EQ(machine_->telemetry().GetCounter("mk.sched.abort_unblocks").Value(), 1u);

  // The wakeup is idempotent: a second abort does not double-queue.
  ASSERT_FALSE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());
  EXPECT_EQ(scheduler.abort_unblocks(), 2u);
  EXPECT_EQ(scheduler.ready_count(), 1u);
}

// ---- skybridge.call.pre_vmfunc: stale EPTP slot between lookup and VMFUNC ----

TEST_P(FaultRecoveryTest, StaleSlotRearmsTransparently) {
  if (IsSyscall()) {
    GTEST_SKIP() << "kSyscall has no view slots to go stale";
  }
  Boot();
  Pair p = MakePair(EchoHandler());
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(1)).ok());

  sb::fault::FaultSpec spec;
  spec.nth_hit = 1;  // Evict exactly once, right before the VMFUNC.
  sb::fault::Arm(kFaultPreVmfunc, spec);
  auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(2));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();  // Recovered in-line.
  EXPECT_EQ(reply->tag, 2u);
  EXPECT_EQ(sky_->stats().stale_slot_retries, 1u);
  ExpectHealthy();
}

TEST_P(FaultRecoveryTest, StaleSlotRetriesAreBoundedThenUnavailable) {
  if (IsSyscall()) {
    GTEST_SKIP() << "kSyscall has no view slots to go stale";
  }
  SkyBridgeConfig config;
  config.max_stale_slot_retries = 3;
  Boot(config);
  Pair p = MakePair(EchoHandler());
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(1)).ok());

  sb::fault::Arm(kFaultPreVmfunc);  // Evict on every attempt: never recovers.
  auto starved = sky_->DirectServerCall(p.thread, p.sid, Message(2));
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(sky_->stats().stale_slot_retries, 3u);
  ExpectHealthy();

  // Disarmed, the evicted binding reinstalls through the ordinary miss path.
  sb::fault::DisarmAll();
  auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(3));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_GE(sky_->stats().eptp_misses, 1u);
  ExpectHealthy();
}

// ---- skybridge.gate.reply_corrupt: return-gate rejection ----

TEST_P(FaultRecoveryTest, InjectedCorruptReplyRejectedAtTheGate) {
  Boot();
  Pair p = MakePair(EchoHandler());
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(1)).ok());

  sb::fault::Arm(kFaultReplyCorrupt);
  auto corrupt = sky_->DirectServerCall(p.thread, p.sid, Message(2));
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(sky_->stats().gate_rejections, 1u);
  ExpectHealthy();

  sb::fault::DisarmAll();
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(3)).ok());
}

TEST_P(FaultRecoveryTest, BorrowedReplyEscapingTheSliceIsStructurallyRejected) {
  // No fault armed: the server "scribbles the descriptor" so its borrowed
  // reply straddles the slice boundary. The gate detects it structurally.
  Boot();
  Handler overflowing = [](CallEnv& env) {
    SB_CHECK(!env.reply_buffer.empty());
    Message reply = Message::Borrowed(
        9, std::span<const uint8_t>(env.reply_buffer.data() + env.reply_buffer.size() - 8, 16));
    return reply;
  };
  Pair p = MakePair(overflowing);
  auto escaped = sky_->DirectServerCall(p.thread, p.sid, Message(1));
  ASSERT_FALSE(escaped.ok());
  EXPECT_EQ(escaped.status().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(sky_->stats().gate_rejections, 1u);
  ExpectHealthy();
}

// ---- skybridge.call.revoke_inflight + RevokeBinding semantics ----

TEST_P(FaultRecoveryTest, RevokedBindingRefusesCallsUntilReRegistered) {
  Boot();
  Pair p = MakePair(EchoHandler());
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(1)).ok());
  ASSERT_EQ(sky_->InstalledBindings(p.client).value(), InstalledIfViewSlots(1));

  ASSERT_TRUE(sky_->RevokeBinding(p.client, p.sid).ok());
  EXPECT_EQ(sky_->stats().bindings_revoked, 1u);
  // No calls in flight: the EPTP entry (if any) is removed immediately.
  EXPECT_EQ(sky_->InstalledBindings(p.client).value(), 0u);
  ExpectHealthy();

  auto refused = sky_->DirectServerCall(p.thread, p.sid, Message(2));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), ErrorCode::kPermissionDenied);
  EXPECT_FALSE(sky_->AcquireSendBuffer(p.thread, p.sid).ok());
  EXPECT_GE(sky_->stats().revoked_rejections, 2u);

  // Re-registration revives the binding with a fresh key; calls flow again.
  ASSERT_TRUE(sky_->RegisterClient(p.client, p.sid).ok());
  auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(3));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, 3u);
  ExpectHealthy();
}

TEST_P(FaultRecoveryTest, RevocationDuringFlightDrainsThenSweeps) {
  Boot();
  Pair p = MakePair(EchoHandler());
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(1)).ok());

  sb::fault::FaultSpec spec;
  spec.nth_hit = 1;
  sb::fault::Arm(kFaultRevokeInflight, spec);
  // The call that races the revocation still completes (it is past the entry
  // gate); the EPTP surgery waits for the drain.
  auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(2));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, 2u);
  EXPECT_EQ(sky_->stats().bindings_revoked, 1u);
  // Drained: the sweep ran, the entry is gone, invariants hold.
  EXPECT_EQ(sky_->InstalledBindings(p.client).value(), 0u);
  ExpectHealthy();

  auto refused = sky_->DirectServerCall(p.thread, p.sid, Message(3));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), ErrorCode::kPermissionDenied);
}

TEST_P(FaultRecoveryTest, RevokeUnknownBindingIsNotFound) {
  Boot();
  Pair p = MakePair(EchoHandler());
  auto* stranger = kernel_->CreateProcess("stranger").value();
  EXPECT_EQ(sky_->RevokeBinding(stranger, p.sid).code(), ErrorCode::kNotFound);
  EXPECT_EQ(sky_->RevokeBinding(p.client, p.sid + 100).code(), ErrorCode::kNotFound);
  // Revoking twice is idempotent.
  ASSERT_TRUE(sky_->RevokeBinding(p.client, p.sid).ok());
  ASSERT_TRUE(sky_->RevokeBinding(p.client, p.sid).ok());
  EXPECT_EQ(sky_->stats().bindings_revoked, 1u);
}

// ---- vmm.rootkernel.binding_ept_refused: registration-time exhaustion ----

TEST_P(FaultRecoveryTest, RootkernelRefusingBindingEptFailsRegistrationCleanly) {
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  auto* client = kernel_->CreateProcess("client").value();
  const ServerId sid = sky_->RegisterServer(server, 4, EchoHandler()).value();

  sb::fault::Arm(vmm::kFaultBindingEptRefused);
  const sb::Status refused = sky_->RegisterClient(client, sid);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), ErrorCode::kInternal);
  const sb::Status invariants = sky_->CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();

  // Disarmed, the same registration succeeds and the pair is usable.
  sb::fault::DisarmAll();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  ASSERT_TRUE(sky_->DirectServerCall(thread, sid, Message(1)).ok());
}

// ---- The whole catalog is survivable ----

TEST_P(FaultRecoveryTest, EveryCatalogPointRecoversWithoutDeath) {
  Boot();
  Pair p = MakePair(EchoHandler());
  ASSERT_TRUE(sky_->DirectServerCall(p.thread, p.sid, Message(0)).ok());

  std::vector<const char*> points = {kFaultHandlerCrash, kFaultReplyCorrupt,
                                     kFaultRevokeInflight};
  if (!IsSyscall()) {
    points.push_back(kFaultPreVmfunc);  // Only view slots can go stale.
  }
  for (const char* point : points) {
    sb::fault::FaultSpec spec;
    spec.nth_hit = 1;
    sb::fault::Arm(point, spec);
    // Armed: the call either recovers transparently or fails with a status;
    // either way no SB_CHECK fires and the bridge stays healthy.
    (void)sky_->DirectServerCall(p.thread, p.sid, Message(1));
    EXPECT_GE(sb::fault::StatsFor(point).fires, 1u) << point;
    sb::fault::DisarmAll();
    const sb::Status invariants = sky_->CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << point << ": " << invariants.ToString();
    EXPECT_EQ(sky_->InFlightCalls(), 0u) << point;
    // After revoke_inflight the binding needs reviving; for the other points
    // this is a harmless AlreadyExists.
    (void)sky_->RegisterClient(p.client, p.sid);
    auto reply = sky_->DirectServerCall(p.thread, p.sid, Message(2));
    ASSERT_TRUE(reply.ok()) << point << ": " << reply.status().ToString();
  }
}

}  // namespace
}  // namespace skybridge
