// Virtual-time executor and FIFO-resource tests.

#include "src/sim/executor.h"

#include <gtest/gtest.h>

namespace sim {
namespace {

hw::MachineConfig TinyMachine() {
  hw::MachineConfig config;
  config.num_cores = 4;
  config.ram_bytes = 1ULL << 30;
  return config;
}

TEST(FifoResource, UncontendedStartsImmediately) {
  FifoResource r;
  EXPECT_EQ(r.Acquire(100), 100u);
  r.Release(150);
  EXPECT_EQ(r.Acquire(200), 200u);
}

TEST(FifoResource, ContendedWaitsForRelease) {
  FifoResource r;
  EXPECT_EQ(r.Acquire(100), 100u);
  r.Release(500);
  EXPECT_EQ(r.Acquire(200), 500u);
  EXPECT_EQ(r.contended_cycles(), 300u);
  EXPECT_EQ(r.acquisitions(), 2u);
}

TEST(Executor, RunsThreadsInVirtualTimeOrder) {
  hw::Machine machine(TinyMachine());
  Executor exec(machine);
  std::vector<int> order;
  // Thread A advances 100 cycles per step, 3 steps; thread B 30 per step.
  int a_steps = 0;
  exec.AddThread("A", 0, [&](SimThread& t) {
    order.push_back(0);
    t.core().AdvanceCycles(100);
    return ++a_steps < 3;
  });
  int b_steps = 0;
  exec.AddThread("B", 1, [&](SimThread& t) {
    order.push_back(1);
    t.core().AdvanceCycles(30);
    return ++b_steps < 6;
  });
  exec.RunToCompletion();
  // B (faster steps) should run several times before A's second step.
  ASSERT_EQ(order.size(), 9u);
  EXPECT_EQ(order[0], 0);  // Both start at 0; insertion order breaks the tie.
  int b_before_second_a = 0;
  for (size_t i = 1; i < order.size() && order[i] != 0; ++i) {
    ++b_before_second_a;
  }
  EXPECT_GE(b_before_second_a, 3);
}

TEST(Executor, RunUntilStopsAtDeadline) {
  hw::Machine machine(TinyMachine());
  Executor exec(machine);
  uint64_t iterations = 0;
  exec.AddThread("loop", 0, [&](SimThread& t) {
    t.core().AdvanceCycles(1000);
    ++iterations;
    return true;
  });
  exec.RunUntil(100000);
  EXPECT_GE(iterations, 99u);
  EXPECT_LE(iterations, 101u);
}

TEST(Executor, SharedResourceSerializesThroughput) {
  hw::Machine machine(TinyMachine());
  Executor exec(machine);
  FifoResource server;
  const uint64_t kService = 1000;
  for (int i = 0; i < 3; ++i) {
    exec.AddThread("client" + std::to_string(i), i, [&](SimThread& t) {
      const uint64_t start = server.Acquire(t.core().cycles());
      t.core().SyncClockTo(start + kService);
      server.Release(t.core().cycles());
      return t.iterations() < 9;
    });
  }
  exec.RunToCompletion();
  // 3 clients x 10 ops x 1000 cycles, fully serialized: finish at >= 30000.
  EXPECT_GE(exec.max_time(), 30000u);
  EXPECT_GT(server.contended_cycles(), 0u);
}

TEST(Executor, ThreadsTrackCoreClocks) {
  hw::Machine machine(TinyMachine());
  Executor exec(machine);
  SimThread* t = exec.AddThread("x", 2, [](SimThread& thread) {
    thread.core().AdvanceCycles(500);
    return false;
  });
  exec.RunToCompletion();
  EXPECT_EQ(t->now(), 500u);
  EXPECT_TRUE(t->done());
  EXPECT_EQ(t->iterations(), 1u);
}

}  // namespace
}  // namespace sim
