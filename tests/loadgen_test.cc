// Open-loop load generator tests (DESIGN.md section 14): schedule
// determinism (the PR 4 replay-fingerprint idiom applied to load), the
// coordinated-omission anchor, SLO/goodput accounting, and the batched and
// burst-coalesced client mixes against a real SkyBridge echo server.

#include "src/sim/loadgen.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/hw/machine.h"
#include "src/mk/kernel.h"
#include "src/skybridge/skybridge.h"

namespace sim {
namespace {

// A self-contained SkyBridge echo world: one client thread on core 0, one
// echo server, plus the LoadTarget hooks bound to it.
struct EchoWorld {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<mk::Kernel> kernel;
  std::unique_ptr<skybridge::SkyBridge> sky;
  mk::Thread* thread = nullptr;
  skybridge::ServerId sid = 0;
  LoadTarget target;
};

EchoWorld MakeEchoWorld() {
  EchoWorld w;
  hw::MachineConfig mc;
  mc.num_cores = 2;
  mc.ram_bytes = 2ULL << 30;
  w.machine = std::make_unique<hw::Machine>(mc);
  w.kernel = std::make_unique<mk::Kernel>(*w.machine, mk::Sel4Profile());
  SB_CHECK(w.kernel->Boot().ok());
  w.sky = std::make_unique<skybridge::SkyBridge>(*w.kernel);
  auto* client = w.kernel->CreateProcess("client").value();
  auto* server = w.kernel->CreateProcess("server").value();
  w.sid = w.sky->RegisterServer(server, 4, [](mk::CallEnv& env) { return env.request; }).value();
  SB_CHECK(w.sky->RegisterClient(client, w.sid).ok());
  w.thread = client->AddThread(0);
  SB_CHECK(w.kernel->ContextSwitchTo(w.machine->core(0), client).ok());
  skybridge::SkyBridge& sky = *w.sky;
  mk::Thread* thread = w.thread;
  const skybridge::ServerId sid = w.sid;
  w.target.sync_call = [&sky, thread, sid](uint32_t, uint64_t key) {
    return sky.DirectServerCall(thread, sid, mk::Message(key)).status();
  };
  w.target.submit = [&sky, thread, sid](uint32_t, uint64_t key) {
    return sky.SubmitCall(thread, sid, mk::Message(key));
  };
  w.target.flush = [&sky, thread, sid](uint32_t) { return sky.FlushBatch(thread, sid); };
  w.target.poll = [&sky, thread, sid](uint32_t, uint64_t token) {
    return sky.PollCompletion(thread, sid, token).status();
  };
  return w;
}

LoadGenConfig SmallConfig(uint64_t seed = 42) {
  LoadGenConfig config;
  config.seed = seed;
  config.events = 512;
  config.num_clients = 1;
  config.client_cores = {0};
  config.num_keys = 64;
  config.offered_per_kcycle = 0.5;  // Well below echo saturation (~1/400).
  return config;
}

TEST(LoadGenSchedule, SameSeedSameSchedule) {
  EchoWorld w = MakeEchoWorld();
  const LoadGenConfig config = SmallConfig();
  LoadGenerator a(*w.machine, config, w.target);
  LoadGenerator b(*w.machine, config, w.target);
  ASSERT_EQ(a.schedule().size(), config.events);
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  for (size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].cycles, b.schedule()[i].cycles);
    EXPECT_EQ(a.schedule()[i].key, b.schedule()[i].key);
    EXPECT_EQ(a.schedule()[i].client, b.schedule()[i].client);
  }
}

TEST(LoadGenSchedule, DifferentSeedDifferentSchedule) {
  EchoWorld w = MakeEchoWorld();
  LoadGenerator a(*w.machine, SmallConfig(42), w.target);
  LoadGenerator b(*w.machine, SmallConfig(43), w.target);
  bool differs = false;
  for (size_t i = 0; i < a.schedule().size() && !differs; ++i) {
    differs = a.schedule()[i].cycles != b.schedule()[i].cycles ||
              a.schedule()[i].key != b.schedule()[i].key;
  }
  EXPECT_TRUE(differs);
}

TEST(LoadGenSchedule, ArrivalsAreTimeOrdered) {
  EchoWorld w = MakeEchoWorld();
  LoadGenerator gen(*w.machine, SmallConfig(), w.target);
  for (size_t i = 1; i < gen.schedule().size(); ++i) {
    EXPECT_GE(gen.schedule()[i].cycles, gen.schedule()[i - 1].cycles);
  }
}

// The replay-fingerprint idiom: the same seed and load on two fresh worlds
// produce the identical report fingerprint — schedule hash, histogram
// digest, and completion counts all byte-identical.
TEST(LoadGenDeterminism, SameSeedSameFingerprint) {
  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    EchoWorld w = MakeEchoWorld();
    LoadGenerator gen(*w.machine, SmallConfig(), w.target);
    const auto report = gen.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->completed, 512u);
    EXPECT_EQ(report->errors, 0u);
    *out = report->Fingerprint();
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("sched="), std::string::npos);
  EXPECT_NE(first.find("hist="), std::string::npos);
}

TEST(LoadGenDeterminism, DifferentSeedDifferentFingerprint) {
  EchoWorld wa = MakeEchoWorld();
  LoadGenerator a(*wa.machine, SmallConfig(42), wa.target);
  const auto ra = a.Run();
  ASSERT_TRUE(ra.ok());
  EchoWorld wb = MakeEchoWorld();
  LoadGenerator b(*wb.machine, SmallConfig(43), wb.target);
  const auto rb = b.Run();
  ASSERT_TRUE(rb.ok());
  EXPECT_NE(ra->schedule_hash, rb->schedule_hash);
  EXPECT_NE(ra->Fingerprint(), rb->Fingerprint());
}

// The coordinated-omission anchor: on a world whose clocks already advanced
// (warmup), the schedule re-bases at the current cycle instead of charging
// the prior epoch to the first arrivals as latency.
TEST(LoadGenRun, WarmedWorldDoesNotChargeTheClockEpoch) {
  EchoWorld w = MakeEchoWorld();
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(w.target.sync_call(0, 1).ok());
  }
  const uint64_t epoch = w.machine->core(0).cycles();
  ASSERT_GT(epoch, 50000u);
  LoadGenerator gen(*w.machine, SmallConfig(), w.target);
  const auto report = gen.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->completed, 512u);
  // At 0.2x load the p50 is one quiet round trip — far below the epoch a
  // mis-anchored run would report.
  EXPECT_LT(report->p50, 5000u);
  EXPECT_LT(report->max, epoch);
}

TEST(LoadGenRun, SloBreachesAndGoodputAccounting) {
  // An impossible bound: every window breaches, every op misses.
  EchoWorld w = MakeEchoWorld();
  LoadGenConfig config = SmallConfig();
  sb::telemetry::SloSpec impossible;
  impossible.percentile = 50.0;
  impossible.bound_cycles = 1;
  impossible.window = 64;
  config.slos = {impossible};
  LoadGenerator gen(*w.machine, config, w.target);
  const auto report = gen.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->slo_breaches, 0u);
  EXPECT_EQ(report->in_slo, 0u);
  EXPECT_DOUBLE_EQ(report->goodput_fraction, 0.0);

  // A generous bound: zero breaches, goodput 1.0.
  EchoWorld w2 = MakeEchoWorld();
  LoadGenConfig relaxed = SmallConfig();
  sb::telemetry::SloSpec generous;
  generous.percentile = 99.0;
  generous.bound_cycles = 1000000;
  generous.window = 64;
  relaxed.slos = {generous};
  LoadGenerator gen2(*w2.machine, relaxed, w2.target);
  const auto report2 = gen2.Run();
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report2->slo_breaches, 0u);
  EXPECT_EQ(report2->in_slo, report2->completed);
  EXPECT_DOUBLE_EQ(report2->goodput_fraction, 1.0);
  EXPECT_GT(report2->goodput_per_kcycle, 0.0);
}

TEST(LoadGenRun, BatchedModeDrainsEverything) {
  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    EchoWorld w = MakeEchoWorld();
    LoadGenConfig config = SmallConfig();
    config.batched = true;
    config.batch_depth = 8;
    config.offered_per_kcycle = 4.0;  // Dense enough to fill real batches.
    LoadGenerator gen(*w.machine, config, w.target);
    const auto report = gen.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->completed + report->errors, 512u);
    EXPECT_EQ(report->errors, 0u);
    EXPECT_GT(report->batch_flushes, 0u);
    // Flush-on-idle keeps flushes well under one per op, but batching must
    // actually happen: fewer flushes than completions.
    EXPECT_LT(report->batch_flushes, report->completed);
    *out = report->Fingerprint();
  }
  EXPECT_EQ(first, second);  // Batched runs replay byte-identically too.
}

TEST(LoadGenRun, BurstFallbackWhenTargetHasNoRing) {
  EchoWorld w = MakeEchoWorld();
  LoadTarget sync_only;
  sync_only.sync_call = w.target.sync_call;
  LoadGenConfig config = SmallConfig();
  config.batched = true;
  config.batch_depth = 8;
  config.offered_per_kcycle = 4.0;
  LoadGenerator gen(*w.machine, config, sync_only);
  const auto report = gen.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->completed, 512u);
  EXPECT_EQ(report->batch_flushes, 0u);  // No ring to flush.
}

TEST(LoadGenRun, MissingSyncCallIsInvalid) {
  EchoWorld w = MakeEchoWorld();
  LoadTarget empty;
  LoadGenerator gen(*w.machine, SmallConfig(), empty);
  EXPECT_EQ(gen.Run().status().code(), sb::ErrorCode::kInvalidArgument);
}

TEST(LoadGenRun, PartialBatchHooksAreInvalid) {
  EchoWorld w = MakeEchoWorld();
  LoadTarget partial;
  partial.sync_call = w.target.sync_call;
  partial.submit = w.target.submit;  // flush/poll missing.
  LoadGenerator gen(*w.machine, SmallConfig(), partial);
  EXPECT_EQ(gen.Run().status().code(), sb::ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace sim
