// Batched + asynchronous IPC (DESIGN.md section 13): submission/completion
// rings, the batch-dispatch drain leg, per-entry fault semantics, the
// free-list slice allocator, and the async Submit/Poll/Wait API.

#include "src/skybridge/skybridge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/base/faultpoint.h"
#include "src/base/telemetry/trace.h"
#include "src/vmm/rootkernel.h"

namespace skybridge {
namespace {

using mk::CallEnv;
using mk::Handler;
using mk::Message;
using sb::ErrorCode;
using sb::kGiB;

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override { sb::fault::DisarmAll(); }
  void TearDown() override {
    sb::fault::DisarmAll();
    sb::telemetry::SetTraceEnabled(false);
    sb::telemetry::TraceClear();
  }

  void Boot(SkyBridgeConfig config = {}) {
    sky_.reset();
    kernel_.reset();
    machine_.reset();
    hw::MachineConfig mc;
    mc.num_cores = 4;
    mc.ram_bytes = 4 * kGiB;
    machine_ = std::make_unique<hw::Machine>(mc);
    kernel_ = std::make_unique<mk::Kernel>(*machine_, mk::Sel4Profile());
    ASSERT_TRUE(kernel_->Boot().ok());
    sky_ = std::make_unique<SkyBridge>(*kernel_, config);
  }

  struct Pair {
    mk::Process* client;
    mk::Process* server;
    mk::Thread* thread;
    ServerId sid;
  };

  Pair MakePair(Handler handler, int connections = 8) {
    Pair p;
    p.client = kernel_->CreateProcess("client").value();
    p.server = kernel_->CreateProcess("server").value();
    p.sid = sky_->RegisterServer(p.server, connections, std::move(handler)).value();
    SB_CHECK(sky_->RegisterClient(p.client, p.sid).ok());
    p.thread = p.client->AddThread(0);
    SB_CHECK(kernel_->ContextSwitchTo(machine_->core(0), p.client).ok());
    return p;
  }

  void ExpectHealthy() {
    const sb::Status invariants = sky_->CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.ToString();
    EXPECT_EQ(sky_->InFlightCalls(), 0u);
    mk::Process* current = kernel_->current_process(0);
    ASSERT_NE(current, nullptr);
    EXPECT_EQ(kernel_->rootkernel()->ActiveEptId(0), current->ept_id());
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<SkyBridge> sky_;
};

Handler EchoHandler() {
  return [](CallEnv& env) { return env.request; };
}

Message Payload(uint64_t tag, const std::string& s) {
  return Message(tag, std::vector<uint8_t>(s.begin(), s.end()));
}

// ---- The ring basics: submit, one flush, completions in the ring ----

TEST_F(BatchTest, SubmitFlushPollRoundtrip) {
  Boot();
  Pair p = MakePair(EchoHandler());

  std::vector<uint64_t> tokens;
  for (int i = 0; i < 4; ++i) {
    auto token = sky_->SubmitCall(p.thread, p.sid, Payload(10 + i, "req-" + std::to_string(i)));
    ASSERT_TRUE(token.ok()) << token.status().ToString();
    tokens.push_back(*token);
  }
  // Nothing crossed yet: completions are pending.
  auto early = sky_->PollCompletion(p.thread, p.sid, tokens[0]);
  EXPECT_EQ(early.status().code(), ErrorCode::kUnavailable);

  ASSERT_TRUE(sky_->FlushBatch(p.thread, p.sid).ok());
  for (int i = 0; i < 4; ++i) {
    auto reply = sky_->PollCompletion(p.thread, p.sid, tokens[i]);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->tag, 10u + i);
    EXPECT_EQ(reply->ToString(), "req-" + std::to_string(i));
  }

  const SkyBridgeStats& stats = sky_->stats();
  EXPECT_EQ(stats.batched_calls, 4u);
  EXPECT_EQ(stats.batch_flushes, 1u);
  EXPECT_GE(stats.batch_drain_rounds, 1u);
  ExpectHealthy();
}

TEST_F(BatchTest, CallBatchMatchesDirectCalls) {
  Boot();
  Handler handler = [](CallEnv& env) {
    Message reply(env.request.tag + 100);
    auto p = env.request.payload();
    reply.data.assign(p.begin(), p.end());
    std::reverse(reply.data.begin(), reply.data.end());
    return reply;
  };
  Pair p = MakePair(handler);

  std::vector<Message> msgs;
  for (int i = 0; i < 10; ++i) {
    msgs.push_back(Payload(i, "value-" + std::to_string(i)));
  }
  auto batched = sky_->CallBatch(p.thread, p.sid, msgs);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), msgs.size());
  for (size_t i = 0; i < msgs.size(); ++i) {
    auto direct = sky_->DirectServerCall(p.thread, p.sid, msgs[i]);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE((*batched)[i].status.ok()) << (*batched)[i].status.ToString();
    EXPECT_EQ((*batched)[i].reply.tag, direct->tag);
    EXPECT_EQ((*batched)[i].reply.ToString(), direct->ToString());
  }
  ExpectHealthy();
}

TEST_F(BatchTest, RingWrapsAcrossManyRounds) {
  SkyBridgeConfig config;
  config.batch_ring_entries = 8;
  Boot(config);
  Pair p = MakePair(EchoHandler());

  uint64_t expected_token = 0;
  for (int round = 0; round < 5; ++round) {
    std::vector<uint64_t> tokens;
    for (int i = 0; i < 8; ++i) {
      auto token = sky_->SubmitCall(p.thread, p.sid, Payload(round * 8 + i, "x"));
      ASSERT_TRUE(token.ok());
      EXPECT_EQ(*token, expected_token++);  // Tokens are monotone; slots wrap.
      tokens.push_back(*token);
    }
    ASSERT_TRUE(sky_->FlushBatch(p.thread, p.sid).ok());
    for (int i = 0; i < 8; ++i) {
      auto reply = sky_->PollCompletion(p.thread, p.sid, tokens[i]);
      ASSERT_TRUE(reply.ok());
      EXPECT_EQ(reply->tag, static_cast<uint64_t>(round * 8 + i));
    }
  }
  ExpectHealthy();
}

// ---- Backpressure and per-entry capacity ----

TEST_F(BatchTest, FullRingIsExplicitlyExhausted) {
  SkyBridgeConfig config;
  config.batch_ring_entries = 8;
  Boot(config);
  Pair p = MakePair(EchoHandler());

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(sky_->SubmitCall(p.thread, p.sid, Message(i)).ok());
  }
  auto overflow = sky_->SubmitCall(p.thread, p.sid, Message(9));
  EXPECT_EQ(overflow.status().code(), ErrorCode::kResourceExhausted);

  // Flush + reap one slot: submission works again.
  ASSERT_TRUE(sky_->FlushBatch(p.thread, p.sid).ok());
  ASSERT_TRUE(sky_->PollCompletion(p.thread, p.sid, 0).ok());
  EXPECT_TRUE(sky_->SubmitCall(p.thread, p.sid, Message(10)).ok());
}

TEST_F(BatchTest, OversizedPayloadRejectedAtSubmit) {
  Boot();
  Pair p = MakePair(EchoHandler());
  // Per-entry capacity is (slice - header - descriptors) / entries — far
  // below the whole slice; a slice-sized payload cannot fit one entry.
  Message big(1);
  big.data.assign(sky_->config().shared_buffer_bytes, 0xab);
  auto token = sky_->SubmitCall(p.thread, p.sid, big);
  EXPECT_EQ(token.status().code(), ErrorCode::kOutOfRange);
}

TEST_F(BatchTest, DoublePollIsAnExplicitError) {
  Boot();
  Pair p = MakePair(EchoHandler());
  auto token = sky_->SubmitCall(p.thread, p.sid, Message(1));
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(sky_->FlushBatch(p.thread, p.sid).ok());
  ASSERT_TRUE(sky_->PollCompletion(p.thread, p.sid, *token).ok());
  auto again = sky_->PollCompletion(p.thread, p.sid, *token);
  EXPECT_EQ(again.status().code(), ErrorCode::kInvalidArgument);
}

// ---- Async API: WaitCompletion ----

TEST_F(BatchTest, WaitCompletionFlushesImplicitly) {
  Boot();
  Pair p = MakePair(EchoHandler());
  auto t0 = sky_->SubmitCall(p.thread, p.sid, Payload(1, "a"));
  auto t1 = sky_->SubmitCall(p.thread, p.sid, Payload(2, "b"));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  // No explicit FlushBatch: the wait drives the crossing.
  auto reply = sky_->WaitCompletion(p.thread, p.sid, *t1);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->ToString(), "b");
  // The flush drained the whole ring; t0 is already complete.
  EXPECT_TRUE(sky_->PollCompletion(p.thread, p.sid, *t0).ok());
  EXPECT_EQ(sky_->stats().batch_flushes, 1u);
  ExpectHealthy();
}

// ---- Fault semantics during a batch (PR 4 catalog, batched) ----

TEST_F(BatchTest, HandlerCrashMidDrainPostsAbortedAndPreservesRest) {
  Boot();
  Pair p = MakePair(EchoHandler());

  std::vector<uint64_t> tokens;
  for (int i = 0; i < 6; ++i) {
    auto token = sky_->SubmitCall(p.thread, p.sid, Message(i));
    ASSERT_TRUE(token.ok());
    tokens.push_back(*token);
  }
  // The handler dies on the 3rd entry of the drain.
  sb::fault::Arm(kFaultHandlerCrash, {.nth_hit = 3});
  const sb::Status flushed = sky_->FlushBatch(p.thread, p.sid);
  EXPECT_EQ(flushed.code(), ErrorCode::kAborted) << flushed.ToString();
  ExpectHealthy();  // View restored, nothing in flight, invariants hold.

  // Entries before the crash completed; the crashed entry posted Aborted;
  // entries after it were never touched.
  EXPECT_TRUE(sky_->PollCompletion(p.thread, p.sid, tokens[0]).ok());
  EXPECT_TRUE(sky_->PollCompletion(p.thread, p.sid, tokens[1]).ok());
  auto crashed = sky_->PollCompletion(p.thread, p.sid, tokens[2]);
  EXPECT_EQ(crashed.status().code(), ErrorCode::kAborted);
  for (int i = 3; i < 6; ++i) {
    auto pending = sky_->PollCompletion(p.thread, p.sid, tokens[i]);
    EXPECT_EQ(pending.status().code(), ErrorCode::kUnavailable);
  }

  // The next flush drains the untouched tail normally.
  ASSERT_TRUE(sky_->FlushBatch(p.thread, p.sid).ok());
  for (int i = 3; i < 6; ++i) {
    EXPECT_TRUE(sky_->PollCompletion(p.thread, p.sid, tokens[i]).ok());
  }
  EXPECT_EQ(sky_->stats().aborted_calls, 1u);
  ExpectHealthy();
}

TEST_F(BatchTest, CorruptReplyRejectsOneEntryAndBatchContinues) {
  Boot();
  Pair p = MakePair(EchoHandler());

  std::vector<uint64_t> tokens;
  for (int i = 0; i < 4; ++i) {
    auto token = sky_->SubmitCall(p.thread, p.sid, Payload(i, "payload"));
    ASSERT_TRUE(token.ok());
    tokens.push_back(*token);
  }
  const uint64_t rejections_before = sky_->stats().gate_rejections;
  sb::fault::Arm(kFaultReplyCorrupt, {.nth_hit = 2});
  ASSERT_TRUE(sky_->FlushBatch(p.thread, p.sid).ok());  // The batch survives.

  auto bad = sky_->PollCompletion(p.thread, p.sid, tokens[1]);
  EXPECT_EQ(bad.status().code(), ErrorCode::kOutOfRange);
  for (const int i : {0, 2, 3}) {
    auto reply = sky_->PollCompletion(p.thread, p.sid, tokens[i]);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->ToString(), "payload");
  }
  EXPECT_EQ(sky_->stats().gate_rejections, rejections_before + 1);
  ExpectHealthy();
}

TEST_F(BatchTest, RevokedBindingFailsPendingEntriesClientSide) {
  Boot();
  Pair p = MakePair(EchoHandler());

  std::vector<uint64_t> tokens;
  for (int i = 0; i < 3; ++i) {
    auto token = sky_->SubmitCall(p.thread, p.sid, Message(i));
    ASSERT_TRUE(token.ok());
    tokens.push_back(*token);
  }
  ASSERT_TRUE(sky_->RevokeBinding(p.client, p.sid).ok());

  // The flush does not cross; pending entries complete with PermissionDenied.
  ASSERT_TRUE(sky_->FlushBatch(p.thread, p.sid).ok());
  EXPECT_EQ(sky_->stats().batch_flushes, 0u);  // No crossing happened.
  for (const uint64_t token : tokens) {
    auto reply = sky_->PollCompletion(p.thread, p.sid, token);
    EXPECT_EQ(reply.status().code(), ErrorCode::kPermissionDenied);
  }
  // New submissions are refused outright.
  auto refused = sky_->SubmitCall(p.thread, p.sid, Message(9));
  EXPECT_EQ(refused.status().code(), ErrorCode::kPermissionDenied);
  ExpectHealthy();
}

// ---- Adaptive drain: submissions arriving during the drain ----

TEST_F(BatchTest, AdaptiveDrainPicksUpRefillRounds) {
  SkyBridgeConfig config;
  config.max_drain_rounds = 4;
  Boot(config);
  Pair p = MakePair(EchoHandler());

  // The refill hook models the client core producing while the server
  // drains: two extra submissions per round, six total.
  int refills_left = 3;
  std::vector<uint64_t> refill_tokens;
  sky_->SetBatchRefill([&] {
    if (refills_left-- <= 0) {
      return;
    }
    for (int i = 0; i < 2; ++i) {
      auto token = sky_->SubmitCall(p.thread, p.sid, Message(100));
      if (token.ok()) {
        refill_tokens.push_back(*token);
      }
    }
  });

  auto t0 = sky_->SubmitCall(p.thread, p.sid, Message(1));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(sky_->FlushBatch(p.thread, p.sid).ok());
  sky_->SetBatchRefill(nullptr);

  // One crossing, multiple rounds: the refilled entries completed without
  // another VMFUNC.
  EXPECT_TRUE(sky_->PollCompletion(p.thread, p.sid, *t0).ok());
  EXPECT_EQ(refill_tokens.size(), 6u);
  for (const uint64_t token : refill_tokens) {
    EXPECT_TRUE(sky_->PollCompletion(p.thread, p.sid, token).ok());
  }
  const SkyBridgeStats& stats = sky_->stats();
  EXPECT_EQ(stats.batch_flushes, 1u);
  EXPECT_GE(stats.batch_drain_rounds, 3u);
  ExpectHealthy();
}

TEST_F(BatchTest, DrainRoundsBoundedByConfig) {
  SkyBridgeConfig config;
  config.max_drain_rounds = 2;
  Boot(config);
  Pair p = MakePair(EchoHandler());

  // An unbounded refill source: the drain must stop after max_drain_rounds
  // and leave the rest for the next flush.
  sky_->SetBatchRefill([&] {
    (void)sky_->SubmitCall(p.thread, p.sid, Message(7));
  });
  ASSERT_TRUE(sky_->SubmitCall(p.thread, p.sid, Message(1)).ok());
  ASSERT_TRUE(sky_->FlushBatch(p.thread, p.sid).ok());
  sky_->SetBatchRefill(nullptr);

  EXPECT_EQ(sky_->stats().batch_drain_rounds, 2u);
  // The last refilled entry is still pending; a second flush finishes it.
  ASSERT_TRUE(sky_->FlushBatch(p.thread, p.sid).ok());
  ExpectHealthy();
}

// ---- The free-list slice allocator (the old tid % slices collision) ----

TEST_F(BatchTest, SliceAllocatorHandsOutDistinctSlicesAndExhausts) {
  SkyBridgeConfig config;
  config.buffer_slices = 4;
  Boot(config);
  Pair p = MakePair(EchoHandler());

  // Five connections contend for four slices. Under the old
  // `tid % buffer_slices` mapping, tid 4 silently shared tid 0's slice.
  std::vector<mk::Thread*> threads = {p.thread};
  for (int i = 1; i < 5; ++i) {
    threads.push_back(p.client->AddThread(0));
  }
  std::vector<std::span<uint8_t>> spans;
  for (int i = 0; i < 4; ++i) {
    auto buf = sky_->AcquireSendBuffer(threads[i], p.sid);
    ASSERT_TRUE(buf.ok()) << buf.status().ToString();
    spans.push_back(*buf);
  }
  // All four slices are pairwise disjoint.
  for (size_t a = 0; a < spans.size(); ++a) {
    for (size_t b = a + 1; b < spans.size(); ++b) {
      const bool disjoint = spans[a].data() + spans[a].size() <= spans[b].data() ||
                            spans[b].data() + spans[b].size() <= spans[a].data();
      EXPECT_TRUE(disjoint) << "slices " << a << " and " << b << " overlap";
    }
  }
  // The fifth connection gets an explicit error, not a shared slice.
  auto exhausted = sky_->AcquireSendBuffer(threads[4], p.sid);
  EXPECT_EQ(exhausted.status().code(), ErrorCode::kResourceExhausted);
  // Re-acquiring an established connection still returns its own slice.
  auto again = sky_->AcquireSendBuffer(threads[0], p.sid);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data(), spans[0].data());
  ExpectHealthy();
}

TEST_F(BatchTest, QueuedSubmissionInvariantsHold) {
  Boot();
  Pair p = MakePair(EchoHandler());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sky_->SubmitCall(p.thread, p.sid, Message(i)).ok());
  }
  ExpectHealthy();  // queued_submissions <= ring entries, slices consistent.
  ASSERT_TRUE(sky_->FlushBatch(p.thread, p.sid).ok());
  ExpectHealthy();
}

}  // namespace
}  // namespace skybridge
