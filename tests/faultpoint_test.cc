// Unit tests for the named, seed-driven fault-injection points
// (src/base/faultpoint.h): trigger modes, determinism, and the --faults=
// spec parser.

#include "src/base/faultpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace sb::fault {
namespace {

constexpr char kPoint[] = "test.faultpoint.alpha";
constexpr char kOther[] = "test.faultpoint.beta";

class FaultPointTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

TEST_F(FaultPointTest, DisabledPointNeverFiresAndCountsNothing) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SB_FAULT_POINT(kPoint));
  }
  const PointStats stats = StatsFor(kPoint);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.fires, 0u);
  EXPECT_TRUE(ArmedPoints().empty());
}

TEST_F(FaultPointTest, ArmedPointOnlyAffectsItself) {
  Arm(kPoint);  // Default spec: probability 1 — fires on every hit.
  EXPECT_TRUE(SB_FAULT_POINT(kPoint));
  EXPECT_FALSE(SB_FAULT_POINT(kOther));
  EXPECT_EQ(StatsFor(kPoint).fires, 1u);
  EXPECT_EQ(StatsFor(kOther).hits, 0u);
}

TEST_F(FaultPointTest, NthHitFiresExactlyOnce) {
  FaultSpec spec;
  spec.nth_hit = 3;
  Arm(kPoint, spec);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(SB_FAULT_POINT(kPoint));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  const PointStats stats = StatsFor(kPoint);
  EXPECT_EQ(stats.hits, 6u);
  EXPECT_EQ(stats.fires, 1u);
}

TEST_F(FaultPointTest, MaxFiresCapsProbabilityMode) {
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 2;
  Arm(kPoint, spec);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    fires += SB_FAULT_POINT(kPoint) ? 1 : 0;
  }
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(StatsFor(kPoint).hits, 10u);
}

TEST_F(FaultPointTest, ProbabilityStreamIsSeedDeterministic) {
  FaultSpec spec;
  spec.probability = 0.3;
  auto draw_pattern = [&] {
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(SB_FAULT_POINT(kPoint));
    }
    return pattern;
  };
  SetSeed(1234);
  Arm(kPoint, spec);
  const std::vector<bool> first = draw_pattern();
  SetSeed(1234);
  Arm(kPoint, spec);  // Re-arm resets the Rng stream.
  EXPECT_EQ(draw_pattern(), first);
  // A different seed produces a different pattern (overwhelmingly likely
  // over 200 draws at p=0.3).
  SetSeed(99);
  Arm(kPoint, spec);
  EXPECT_NE(draw_pattern(), first);
  // The fire rate is in the right ballpark.
  const auto fires = static_cast<size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 20u);
  EXPECT_LT(fires, 120u);
}

TEST_F(FaultPointTest, StreamsAreIndependentPerPoint) {
  FaultSpec spec;
  spec.probability = 0.5;
  SetSeed(7);
  Arm(kPoint, spec);
  Arm(kOther, spec);
  std::vector<bool> a;
  std::vector<bool> b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(SB_FAULT_POINT(kPoint));
    b.push_back(SB_FAULT_POINT(kOther));
  }
  // Same seed, but the per-point name hash decorrelates the streams.
  EXPECT_NE(a, b);
}

TEST_F(FaultPointTest, DisarmStopsFiringAndClearsStats) {
  Arm(kPoint);
  EXPECT_TRUE(SB_FAULT_POINT(kPoint));
  Disarm(kPoint);
  EXPECT_FALSE(SB_FAULT_POINT(kPoint));
  EXPECT_EQ(StatsFor(kPoint).hits, 0u);
  EXPECT_TRUE(ArmedPoints().empty());
}

TEST_F(FaultPointTest, DisarmAllClearsEverything) {
  Arm(kPoint);
  Arm(kOther);
  EXPECT_EQ(ArmedPoints().size(), 2u);
  DisarmAll();
  EXPECT_TRUE(ArmedPoints().empty());
  EXPECT_FALSE(SB_FAULT_POINT(kPoint));
  EXPECT_FALSE(SB_FAULT_POINT(kOther));
}

TEST_F(FaultPointTest, ArmFromSpecParsesAllEntryForms) {
  ASSERT_TRUE(ArmFromSpec("seed=42,test.faultpoint.alpha:n=2,test.faultpoint.beta:p=0.25,"
                          "test.faultpoint.gamma:always")
                  .ok());
  const std::vector<std::string> armed = ArmedPoints();
  EXPECT_EQ(armed.size(), 3u);
  EXPECT_NE(std::find(armed.begin(), armed.end(), kPoint), armed.end());
  // nth_hit=2: second hit fires.
  EXPECT_FALSE(SB_FAULT_POINT(kPoint));
  EXPECT_TRUE(SB_FAULT_POINT(kPoint));
  // always: every hit fires.
  EXPECT_TRUE(SB_FAULT_POINT("test.faultpoint.gamma"));
  EXPECT_TRUE(SB_FAULT_POINT("test.faultpoint.gamma"));
}

TEST_F(FaultPointTest, ArmFromSpecRejectsMalformedEntries) {
  EXPECT_FALSE(ArmFromSpec("no-colon-no-seed").ok());
  EXPECT_FALSE(ArmFromSpec("p:p=1.5").ok());     // Probability out of range.
  EXPECT_FALSE(ArmFromSpec("p:p=nope").ok());    // Not a float.
  EXPECT_FALSE(ArmFromSpec("p:n=0").ok());       // nth must be nonzero.
  EXPECT_FALSE(ArmFromSpec("seed=abc").ok());    // Not an integer.
  EXPECT_FALSE(ArmFromSpec("p:q=1").ok());       // Unknown trigger.
  EXPECT_FALSE(ArmFromSpec(":p=1").ok());        // Empty point name.
}

TEST_F(FaultPointTest, ArmFromSpecSeedMatchesSetSeed) {
  FaultSpec spec;
  spec.probability = 0.4;
  auto draw = [&] {
    std::vector<bool> pattern;
    for (int i = 0; i < 100; ++i) {
      pattern.push_back(SB_FAULT_POINT(kPoint));
    }
    return pattern;
  };
  SetSeed(777);
  Arm(kPoint, spec);
  const std::vector<bool> via_api = draw();
  DisarmAll();
  ASSERT_TRUE(ArmFromSpec("seed=777,test.faultpoint.alpha:p=0.4").ok());
  EXPECT_EQ(draw(), via_api);
}

}  // namespace
}  // namespace sb::fault
