// Decoder unit tests: lengths, field boundaries and mnemonics for the
// encodings the assembler, rewriter and synthetic corpus rely on.

#include "src/x86/decoder.h"

#include <gtest/gtest.h>

#include "src/x86/assembler.h"

namespace x86 {
namespace {

Insn DecodeBytes(std::initializer_list<uint8_t> bytes) {
  std::vector<uint8_t> v(bytes);
  return Decode(v, 0);
}

TEST(Decoder, Nop) {
  const Insn insn = DecodeBytes({0x90});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 1);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kNop);
}

TEST(Decoder, Vmfunc) {
  const Insn insn = DecodeBytes({0x0f, 0x01, 0xd4});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 3);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kVmfunc);
  EXPECT_TRUE(insn.has_modrm);
}

TEST(Decoder, Syscall) {
  const Insn insn = DecodeBytes({0x0f, 0x05});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 2);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kSyscall);
}

TEST(Decoder, PushPopWithRex) {
  Insn insn = DecodeBytes({0x55});  // push rbp
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 1);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kPush);

  insn = DecodeBytes({0x41, 0x50});  // push r8
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 2);
  EXPECT_EQ(insn.rex, 0x41);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kPush);
}

TEST(Decoder, MovImm64) {
  // mov rax, 0x1122334455667788
  const Insn insn = DecodeBytes({0x48, 0xb8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 10);
  EXPECT_EQ(insn.imm_len, 8);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kMovImm64);
}

TEST(Decoder, MovImm32NoRexW) {
  // mov eax, 0x11223344
  const Insn insn = DecodeBytes({0xb8, 0x44, 0x33, 0x22, 0x11});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 5);
  EXPECT_EQ(insn.imm_len, 4);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kMov);
}

TEST(Decoder, AddRmImm32WithSibAndDisp) {
  // add qword [rsp + 0x10], 0x1234 -> 48 81 84 24 10 00 00 00 34 12 00 00
  const Insn insn =
      DecodeBytes({0x48, 0x81, 0x84, 0x24, 0x10, 0x00, 0x00, 0x00, 0x34, 0x12, 0x00, 0x00});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 12);
  EXPECT_TRUE(insn.has_modrm);
  EXPECT_TRUE(insn.has_sib);
  EXPECT_EQ(insn.disp_len, 4);
  EXPECT_EQ(insn.imm_len, 4);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kAdd);
}

TEST(Decoder, RipRelativeLea) {
  // lea rax, [rip + 0x100] -> 48 8d 05 00 01 00 00
  const Insn insn = DecodeBytes({0x48, 0x8d, 0x05, 0x00, 0x01, 0x00, 0x00});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 7);
  EXPECT_TRUE(insn.is_rip_relative());
  EXPECT_EQ(insn.disp_len, 4);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kLea);
}

TEST(Decoder, JccRel8AndRel32) {
  Insn insn = DecodeBytes({0x74, 0x10});  // je +0x10
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 2);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kJccRel);

  insn = DecodeBytes({0x0f, 0x84, 0x00, 0x01, 0x00, 0x00});  // je +0x100
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 6);
  EXPECT_EQ(insn.imm_len, 4);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kJccRel);
}

TEST(Decoder, GroupF7TestHasImm) {
  // test rax, 0x12345678 -> 48 f7 c0 78 56 34 12
  const Insn insn = DecodeBytes({0x48, 0xf7, 0xc0, 0x78, 0x56, 0x34, 0x12});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 7);
  EXPECT_EQ(insn.imm_len, 4);
}

TEST(Decoder, GroupF7NotHasImm) {
  // neg rax -> 48 f7 d8
  const Insn insn = DecodeBytes({0x48, 0xf7, 0xd8});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 3);
  EXPECT_EQ(insn.imm_len, 0);
}

TEST(Decoder, OperandSizePrefixShrinksImmZ) {
  // 66 81 c0 34 12 -> add ax, 0x1234
  const Insn insn = DecodeBytes({0x66, 0x81, 0xc0, 0x34, 0x12});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 5);
  EXPECT_EQ(insn.imm_len, 2);
  EXPECT_TRUE(insn.operand_size_16);
}

TEST(Decoder, ImulThreeOperand) {
  // imul rcx, rdi, 0xD401 -> 48 69 cf 01 d4 00 00
  const Insn insn = DecodeBytes({0x48, 0x69, 0xcf, 0x01, 0xd4, 0x00, 0x00});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 7);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kImul);
  EXPECT_EQ(insn.imm_len, 4);
}

TEST(Decoder, ShiftGroupClassification) {
  Assembler a;
  a.ShlRI(Reg::kRax, 4);
  const std::vector<uint8_t> shl = a.Take();
  Insn insn = Decode(shl, 0);
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kShl);
  EXPECT_EQ(insn.length, 4);  // REX.W C1 /4 ib
  EXPECT_EQ(insn.imm_len, 1);

  a.SarRI(Reg::kRbx, 63);
  insn = Decode(a.Take(), 0);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kSar);

  // D1 /4: shift by one, no immediate.
  insn = DecodeBytes({0x48, 0xd1, 0xe0});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kShl);
  EXPECT_EQ(insn.imm_len, 0);
}

TEST(Decoder, IncDecNegNotClassification) {
  Assembler a;
  a.IncR(Reg::kRcx);
  EXPECT_EQ(Decode(a.Take(), 0).mnemonic, Mnemonic::kInc);
  a.DecR(Reg::kRcx);
  EXPECT_EQ(Decode(a.Take(), 0).mnemonic, Mnemonic::kDec);
  a.NegR(Reg::kR9);
  EXPECT_EQ(Decode(a.Take(), 0).mnemonic, Mnemonic::kNeg);
  a.NotR(Reg::kR9);
  EXPECT_EQ(Decode(a.Take(), 0).mnemonic, Mnemonic::kNot);
  // FF /2 (indirect call) stays kOther — not part of the emulated subset.
  const Insn call = DecodeBytes({0xff, 0xd0});
  ASSERT_TRUE(call.valid);
  EXPECT_EQ(call.mnemonic, Mnemonic::kOther);
}

TEST(Decoder, CallRel32) {
  const Insn insn = DecodeBytes({0xe8, 0x10, 0x00, 0x00, 0x00});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 5);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kCallRel);
}

TEST(Decoder, RetAndHlt) {
  EXPECT_EQ(DecodeBytes({0xc3}).mnemonic, Mnemonic::kRet);
  EXPECT_EQ(DecodeBytes({0xf4}).mnemonic, Mnemonic::kHlt);
  EXPECT_EQ(DecodeBytes({0xcc}).mnemonic, Mnemonic::kInt3);
}

TEST(Decoder, InvalidOpcodeIn64BitMode) {
  const Insn insn = DecodeBytes({0x06});  // push es: invalid in 64-bit.
  EXPECT_FALSE(insn.valid);
  EXPECT_EQ(insn.length, 1);
}

TEST(Decoder, Enter) {
  // enter 0x20, 0 -> c8 20 00 00
  const Insn insn = DecodeBytes({0xc8, 0x20, 0x00, 0x00});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 4);
  EXPECT_EQ(insn.imm_len, 3);
}

TEST(Decoder, MovMoffs) {
  // mov al, [moffs64] -> a0 + 8 bytes
  const Insn insn = DecodeBytes({0xa0, 1, 2, 3, 4, 5, 6, 7, 8});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 9);
}

TEST(Decoder, Vex3ByteLength) {
  // vaddps ymm: c4 e1 74 58 c2 (VEX.256) — 5 bytes, map1, modrm.
  const Insn insn = DecodeBytes({0xc4, 0xe1, 0x74, 0x58, 0xc2});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 5);
}

TEST(Decoder, Vex2ByteLength) {
  // c5 f8 58 c1 -> vaddps xmm0, xmm0, xmm1
  const Insn insn = DecodeBytes({0xc5, 0xf8, 0x58, 0xc1});
  ASSERT_TRUE(insn.valid);
  EXPECT_EQ(insn.length, 4);
}

// Round-trip: everything the assembler emits must decode to one instruction
// of exactly the emitted length.
TEST(Decoder, AssemblerRoundTripLengths) {
  struct Case {
    std::vector<uint8_t> bytes;
    Mnemonic mnemonic;
  };
  std::vector<Case> cases;
  auto add = [&](Assembler& a, Mnemonic m) {
    cases.push_back({a.Take(), m});
  };
  {
    Assembler a;
    a.MovRI64(Reg::kR9, 0x123456789abcdef0ULL);
    add(a, Mnemonic::kMovImm64);
  }
  {
    Assembler a;
    a.MovRM64(Reg::kRbx, Reg::kRsp, 0x40);
    add(a, Mnemonic::kMov);
  }
  {
    Assembler a;
    a.Lea(Reg::kRcx, Reg::kRdi, static_cast<int>(Reg::kRcx), 2, 0x1000);
    add(a, Mnemonic::kLea);
  }
  {
    Assembler a;
    a.ImulRMI(Reg::kRcx, Reg::kRdi, 0x20, 0x77);
    add(a, Mnemonic::kImul);
  }
  {
    Assembler a;
    a.AddMR(Reg::kR12, -8, Reg::kRax);
    add(a, Mnemonic::kAdd);
  }
  {
    Assembler a;
    a.CmpRI(Reg::kR15, 0x7fffffff);
    add(a, Mnemonic::kCmp);
  }
  {
    Assembler a;
    a.JccRel32(0x5, -100);
    add(a, Mnemonic::kJccRel);
  }
  for (const Case& c : cases) {
    const Insn insn = Decode(c.bytes, 0);
    ASSERT_TRUE(insn.valid);
    EXPECT_EQ(insn.length, c.bytes.size());
    EXPECT_EQ(insn.mnemonic, c.mnemonic);
  }
}

TEST(Decoder, LinearSweepCoversEveryByte) {
  Assembler a;
  a.PushR(Reg::kRbp);
  a.MovRR64(Reg::kRbp, Reg::kRsp);
  a.MovRI64(Reg::kRax, 42);
  a.AddRI(Reg::kRax, 1);
  a.PopR(Reg::kRbp);
  a.Ret();
  const std::vector<uint8_t> code = a.Take();
  const std::vector<size_t> starts = LinearSweep(code);
  ASSERT_EQ(starts.size(), 6u);
  size_t pos = 0;
  for (const size_t s : starts) {
    EXPECT_EQ(s, pos);
    pos += Decode(code, s).length;
  }
  EXPECT_EQ(pos, code.size());
}

}  // namespace
}  // namespace x86
