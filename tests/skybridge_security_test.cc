// Security-focused SkyBridge tests (paper Sections 4.4, 5, 7 and 9):
// malicious EPT switching, the trampoline as the only gate, W^X dynamic code
// rescanning, and isolation under the KPTI (Meltdown-mitigated) profile.
//
// Parameterized over the crossing backend (DESIGN.md section 16). The suite
// pins the isolation matrix: the EPTP and kSyscall backends block
// cross-domain reads outright, while MPK's user-forgeable PKRU permits them
// — CrossDomainReadMatchesTheBackendIsolationMatrix demonstrates both the
// hole and the fact that the other backends do not share it.

#include <gtest/gtest.h>

#include "src/skybridge/guest_exec.h"
#include "src/skybridge/skybridge.h"
#include "src/skybridge/trampoline.h"
#include "src/x86/assembler.h"
#include "src/x86/decoder.h"
#include "src/x86/scanner.h"

namespace skybridge {
namespace {

using mk::CallEnv;
using mk::Message;
using sb::kGiB;

class SecurityTest : public ::testing::TestWithParam<CrossingBackendKind> {
 protected:
  void Boot(mk::KernelProfile profile = mk::Sel4Profile()) {
    sky_.reset();
    kernel_.reset();
    machine_.reset();
    hw::MachineConfig mc;
    mc.num_cores = 4;
    mc.ram_bytes = 4 * kGiB;
    machine_ = std::make_unique<hw::Machine>(mc);
    kernel_ = std::make_unique<mk::Kernel>(*machine_, std::move(profile));
    ASSERT_TRUE(kernel_->Boot().ok());
    SkyBridgeConfig config;
    config.crossing_backend = GetParam();
    sky_ = std::make_unique<SkyBridge>(*kernel_, config);
  }

  bool IsEptp() const { return GetParam() == CrossingBackendKind::kEptp; }
  bool IsMpk() const { return GetParam() == CrossingBackendKind::kMpk; }
  bool IsSyscall() const { return GetParam() == CrossingBackendKind::kSyscall; }

  // The backend's scrubbed gate triple (VMFUNC or WRPKRU).
  const uint8_t* GatePattern() const {
    return IsMpk() ? x86::kWrpkruBytes : x86::kVmfuncBytes;
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<SkyBridge> sky_;
};

INSTANTIATE_TEST_SUITE_P(Backends, SecurityTest,
                         ::testing::Values(CrossingBackendKind::kEptp,
                                           CrossingBackendKind::kMpk,
                                           CrossingBackendKind::kSyscall),
                         [](const ::testing::TestParamInfo<CrossingBackendKind>& param_info) {
                           return std::string(CrossingBackendName(param_info.param));
                         });

TEST_P(SecurityTest, TrampolineIsTheOnlyGate) {
  if (IsSyscall()) {
    GTEST_SKIP() << "the kernel fastpath has no user-mode gate instruction";
  }
  Boot();
  // The backend's trampoline page intentionally carries exactly two gate
  // instructions (VMFUNC for EPTP, WRPKRU for MPK)...
  const TrampolineLayout trampoline = BuildTrampoline(GetParam());
  x86::ScanOptions scan;
  scan.pattern = GatePattern();
  const auto hits = x86::ScanForVmfunc(trampoline.code, scan);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].overlap, x86::VmfuncOverlap::kIsVmfunc);
  EXPECT_EQ(hits[1].overlap, x86::VmfuncOverlap::kIsVmfunc);
  EXPECT_EQ(hits[0].pattern_off, trampoline.call_gate_offset);
  EXPECT_EQ(hits[1].pattern_off, trampoline.return_gate_offset);

  // ...and every registered process's own code is pattern-free, so after
  // rewriting the trampoline really is the only entry point.
  auto* server = kernel_->CreateProcess("server").value();
  x86::Assembler evil;
  evil.MovRI32(x86::Reg::kRcx, 1);
  evil.MovRI32(x86::Reg::kRax, 0);
  if (IsMpk()) {
    evil.Wrpkru();  // Self-prepared key switch.
  } else {
    evil.Vmfunc();  // Self-prepared gate.
  }
  evil.Ret();
  auto* client = kernel_->CreateProcessWithImage("evil", evil.Take()).value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  if (sky_->config().registration_mode == RegistrationMode::kLazy) {
    // Staged registration: the pattern survives until first execution, but
    // the page is non-executable in the EPT — the self-prepared gate still
    // cannot run. The first call scrubs it before anything executes.
    EXPECT_FALSE(x86::ScanForVmfunc(client->code_image(), scan).empty());
    const hw::GuestWalk code_walk = client->address_space().WalkVa(mk::kCodeVa);
    ASSERT_TRUE(code_walk.ok);
    hw::Ept* ept = kernel_->rootkernel()->ept(client->ept_id());
    ASSERT_NE(ept, nullptr);
    EXPECT_FALSE(ept->Walk(code_walk.gpa, hw::kEptExec).ok);
    mk::Thread* thread = client->AddThread(0);
    ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
    ASSERT_TRUE(sky_->DirectServerCall(thread, sid, Message(1)).ok());
    EXPECT_TRUE(ept->Walk(code_walk.gpa, hw::kEptExec).ok);
  }
  EXPECT_TRUE(x86::ScanForVmfunc(client->code_image(), scan).empty());
}

TEST_P(SecurityTest, MaliciousEptpIndexCausesVmExitAndNoSwitch) {
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  auto* client = kernel_->CreateProcess("client").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  // A malicious process that somehow executes VMFUNC with an out-of-range
  // index: the hardware exits to the Rootkernel and no switch happens. This
  // holds whatever backend the library runs — VMFUNC's microcode check is
  // not the library's to disable.
  hw::Core& core = machine_->core(0);
  const size_t before_index = core.vmcs().active_index;
  kernel_->rootkernel()->ResetExitCounters();
  EXPECT_FALSE(core.Vmfunc(0, 100).ok());
  EXPECT_EQ(core.vmcs().active_index, before_index);
  EXPECT_EQ(machine_->total_vm_exits(), 1u);
}

TEST_P(SecurityTest, CallToUnregisteredServerStillRejected) {
  // A client registered to server A cannot reach server B: its EPTP list
  // simply has no binding EPT for B (no binding at all on kSyscall), and the
  // library rejects the call.
  Boot();
  auto* server_a = kernel_->CreateProcess("a").value();
  auto* server_b = kernel_->CreateProcess("b").value();
  const ServerId sid_a =
      sky_->RegisterServer(server_a, 4, [](CallEnv&) { return Message(0xa); }).value();
  const ServerId sid_b =
      sky_->RegisterServer(server_b, 4, [](CallEnv&) { return Message(0xb); }).value();
  auto* client = kernel_->CreateProcess("client").value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid_a).ok());
  mk::Thread* t = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  EXPECT_TRUE(sky_->DirectServerCall(t, sid_a, Message(0)).ok());
  EXPECT_EQ(sky_->DirectServerCall(t, sid_b, Message(0)).status().code(),
            sb::ErrorCode::kPermissionDenied);
}

TEST_P(SecurityTest, WxDynamicCodeRescanOnUpdate) {
  // Paper Section 9: JIT / live update. New code pages must be rescanned
  // when remapped executable; a freshly planted gate instruction is
  // rewritten away and the process keeps working. A kSyscall-only process
  // still gets the VMFUNC pass (the historical W^X contract).
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  auto* client = kernel_->CreateProcess("client").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  mk::Thread* t = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  ASSERT_TRUE(sky_->DirectServerCall(t, sid, Message(1)).ok());
  const uint64_t rewrites_before = sky_->stats().rewritten_vmfuncs;

  // The "JIT" emits new code containing a gate and an embedded pattern.
  x86::Assembler jit;
  jit.MovRI64(x86::Reg::kRax, 7);
  if (IsMpk()) {
    jit.Wrpkru();
    jit.OrRI(x86::Reg::kRbx, 0x00ef010f);
  } else {
    jit.Vmfunc();
    jit.OrRI(x86::Reg::kRbx, 0x00d4010f);
  }
  jit.Ret();
  ASSERT_TRUE(sky_->UpdateProcessCode(client, jit.Take()).ok());

  x86::ScanOptions scan;
  scan.pattern = GatePattern();
  EXPECT_TRUE(x86::FindVmfuncBytes(client->code_image(), scan).empty());
  EXPECT_GE(sky_->stats().rewritten_vmfuncs, rewrites_before + 2);
  // The pattern's rewrite window was (re)generated and the bindings still
  // work (VMFUNC snippets live at window 0, WRPKRU snippets at window 1).
  const hw::Gva window = mk::kRewritePageVa + (IsMpk() ? 16 * sb::kPageSize : 0);
  EXPECT_TRUE(client->address_space().WalkVa(window).ok);
  EXPECT_TRUE(sky_->DirectServerCall(t, sid, Message(2)).ok());
}

TEST_P(SecurityTest, RepeatedCodeUpdatesConverge) {
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  auto* client = kernel_->CreateProcess("client").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  x86::ScanOptions scan;
  scan.pattern = GatePattern();
  for (int round = 0; round < 5; ++round) {
    x86::Assembler jit;
    jit.MovRI64(x86::Reg::kRax, static_cast<uint64_t>(round));
    if (round % 2 == 0) {
      if (IsMpk()) {
        jit.Wrpkru();
      } else {
        jit.Vmfunc();
      }
    }
    jit.AddRI(x86::Reg::kRbx, IsMpk() ? 0x00ef010f : 0x00d4010f);
    jit.Ret();
    ASSERT_TRUE(sky_->UpdateProcessCode(client, jit.Take()).ok()) << round;
    EXPECT_TRUE(x86::FindVmfuncBytes(client->code_image(), scan).empty()) << round;
  }
}

TEST_P(SecurityTest, IsolationHoldsUnderKpti) {
  // Meltdown-mitigated profile: SkyBridge still works and processes stay in
  // separate page tables (the paper's Meltdown defence argument). This holds
  // on every backend — MPK's weakness is the forgeable PKRU, not the page
  // tables, so a plain read through the client's tables still misses.
  mk::KernelProfile profile = mk::Sel4Profile();
  profile.kpti = true;
  Boot(profile);
  auto* server = kernel_->CreateProcess("server").value();
  auto* client = kernel_->CreateProcess("client").value();
  const ServerId sid = sky_->RegisterServer(server, 4, [](CallEnv& env) {
                             SB_CHECK(env.core.WriteVirtU64(mk::kHeapVa + 8, 0x5ec3e7).ok());
                             return env.request;
                           }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  mk::Thread* t = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  ASSERT_TRUE(sky_->DirectServerCall(t, sid, Message(0)).ok());

  // The secret the server wrote is not visible through the client's tables.
  hw::Core& core = machine_->core(0);
  auto leaked = core.ReadVirtU64(mk::kHeapVa + 8);
  ASSERT_TRUE(leaked.ok());
  EXPECT_NE(*leaked, 0x5ec3e7u);
  EXPECT_NE(client->cr3(), server->cr3());
}

TEST_P(SecurityTest, CallingKeysDifferPerBinding) {
  // Two clients of the same server get distinct random keys: leaking one
  // key only exposes the leaker's slot (Section 4.4).
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  auto* c1 = kernel_->CreateProcess("c1").value();
  auto* c2 = kernel_->CreateProcess("c2").value();
  ASSERT_TRUE(sky_->RegisterClient(c1, sid).ok());
  ASSERT_TRUE(sky_->RegisterClient(c2, sid).ok());

  // Read both key slots from the server's table.
  const hw::GuestWalk table = server->address_space().WalkVa(mk::kCallingKeyTableVa);
  ASSERT_TRUE(table.ok);
  const uint64_t key1 = machine_->mem().ReadU64(table.gpa);
  const uint64_t key2 = machine_->mem().ReadU64(table.gpa + 16);
  EXPECT_NE(key1, 0u);
  EXPECT_NE(key2, 0u);
  EXPECT_NE(key1, key2);
}

TEST_P(SecurityTest, RefusingToUseSkyBridgeOnlyHurtsYourself) {
  // Section 7: a process that never registers simply cannot reach servers;
  // other processes are unaffected.
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  auto* good = kernel_->CreateProcess("good").value();
  auto* refusenik = kernel_->CreateProcess("refusenik").value();
  ASSERT_TRUE(sky_->RegisterClient(good, sid).ok());
  mk::Thread* tg = good->AddThread(0);
  mk::Thread* tr = refusenik->AddThread(1);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), good).ok());

  EXPECT_FALSE(sky_->DirectServerCall(tr, sid, Message(0)).ok());
  EXPECT_TRUE(sky_->DirectServerCall(tg, sid, Message(0)).ok());
}

TEST_P(SecurityTest, CrossDomainReadMatchesTheBackendIsolationMatrix) {
  // DESIGN.md section 16 isolation matrix, pinned in CI: a client forging
  // the backend's unprivileged switch primitive can read server memory on
  // MPK (WRPKRU is user-mode writable — PKRU is not a capability), while
  // EPTP and the kernel fastpath refuse the same probe outright.
  Boot();
  constexpr uint64_t kSecret = 0xfeed'5eed'c0de'd00dULL;
  auto* server = kernel_->CreateProcess("server").value();
  const ServerId sid = sky_->RegisterServer(server, 4, [](CallEnv& env) {
                             SB_CHECK(env.core.WriteVirtU64(mk::kHeapVa + 0x40, kSecret).ok());
                             return env.request;
                           }).value();
  auto* client = kernel_->CreateProcess("client").value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  mk::Thread* t = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  // One legitimate call plants the secret in the server's heap.
  ASSERT_TRUE(sky_->DirectServerCall(t, sid, Message(0)).ok());

  auto stolen = sky_->ProbeCrossDomainRead(t, sid, mk::kHeapVa + 0x40);
  if (IsMpk()) {
    ASSERT_TRUE(stolen.ok()) << stolen.status().ToString();
    EXPECT_EQ(*stolen, kSecret);
  } else {
    EXPECT_EQ(stolen.status().code(), sb::ErrorCode::kPermissionDenied);
    EXPECT_GE(sky_->stats().rejected_calls, 1u);
  }
}

TEST_P(SecurityTest, MpkForgeryExposesEvenTheCallingKeyTable) {
  if (!IsMpk()) {
    GTEST_SKIP() << "only the MPK backend has the forgeable-PKRU hole";
  }
  // The sharpest consequence of the weaker envelope: the server-side calling
  // key table — the very credential gating the IPC path — is readable by a
  // PKRU-forging client. (On EPTP the table lives behind the server's EPT;
  // ProbeCrossDomainRead above shows that backend refusing.)
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  auto* client = kernel_->CreateProcess("client").value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  mk::Thread* t = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  const hw::GuestWalk table = server->address_space().WalkVa(mk::kCallingKeyTableVa);
  ASSERT_TRUE(table.ok);
  const uint64_t real_key = machine_->mem().ReadU64(table.gpa);
  ASSERT_NE(real_key, 0u);

  auto stolen = sky_->ProbeCrossDomainRead(t, sid, mk::kCallingKeyTableVa);
  ASSERT_TRUE(stolen.ok()) << stolen.status().ToString();
  EXPECT_EQ(*stolen, real_key);
  // With the stolen key the client's own slot is all it can forge — but the
  // point stands: MPK's confidentiality story is strictly weaker.
  EXPECT_GT(machine_->telemetry()
                .GetCounter("skybridge.crossing.mpk.cross_domain_probes")
                .Value(),
            0u);
}

TEST_P(SecurityTest, LiteralTrampolineBytesExecuteTheSwitch) {
  if (IsSyscall()) {
    GTEST_SKIP() << "the kernel fastpath has no trampoline page";
  }
  // The deepest fidelity check in the repo: execute the *actual trampoline
  // code page* instruction by instruction through the simulated MMU, and
  // watch the gate instruction inside it (VMFUNC or WRPKRU) switch the
  // translation context to the server and back.
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  auto* client = kernel_->CreateProcess("client").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  hw::Core& core = machine_->core(0);
  // Warm-up call: faults the binding's EPT into this core's slot working set
  // so the stub below can target its (virtualized) slot index.
  mk::Thread* warmup = client->AddThread(0);
  ASSERT_TRUE(sky_->DirectServerCall(warmup, sid, Message(0)).ok());
  const uint32_t binding_slot = sky_->ResidentBindingSlot(client, sid, 0);
  ASSERT_NE(binding_slot, kNoEptpSlot);
  core.SetMode(hw::CpuMode::kUser);

  // Set up guest registers like the user-level stub would: stack in the
  // client, view-slot index of the binding in rcx, sentinel return address
  // on the stack.
  const hw::Gva trampoline_va = IsMpk() ? mk::kMpkTrampolineVa : mk::kTrampolineVa;
  GuestRegs regs;
  regs.rip = trampoline_va;
  regs.reg(x86::Reg::kRsp) = mk::kStackTopVa - 64;
  regs.reg(x86::Reg::kRcx) = binding_slot;
  // The return slot (the caller's own view) rides in r8; the kernel hands it
  // to the stub at dispatch since slot indices are virtualized.
  regs.reg(x86::Reg::kR8) = core.vmcs().active_index;
  regs.reg(x86::Reg::kRsp) -= 8;
  ASSERT_TRUE(core.WriteVirtU64(regs.reg(x86::Reg::kRsp), kGuestReturnSentinel).ok());

  GuestExecutor exec(&core);
  kernel_->rootkernel()->ResetExitCounters();  // Count steady-state exits only.
  const uint64_t vmfuncs_before = core.pmu().vmfuncs;
  const uint64_t wrpkrus_before = core.pmu().wrpkrus;
  bool saw_server_view = false;
  bool done = false;
  int steps = 0;
  while (!done && steps < 200) {
    auto status = exec.Step(regs, &done);
    ASSERT_TRUE(status.ok()) << status.ToString() << " at step " << steps;
    ++steps;
    if (!done) {
      auto identity = kernel_->CurrentIdentity(core);
      ASSERT_TRUE(identity.ok());
      if (*identity == server->pid()) {
        saw_server_view = true;  // The call gate fired: we are "in" the server.
      }
    }
  }
  ASSERT_TRUE(done) << "trampoline did not return";
  EXPECT_TRUE(saw_server_view);
  // Two gate instructions executed (call gate + return gate), of the
  // backend's own kind only...
  if (IsMpk()) {
    EXPECT_EQ(core.pmu().wrpkrus - wrpkrus_before, 2u);
    EXPECT_EQ(core.pmu().vmfuncs - vmfuncs_before, 0u);
  } else {
    EXPECT_EQ(core.pmu().vmfuncs - vmfuncs_before, 2u);
    EXPECT_EQ(core.pmu().wrpkrus - wrpkrus_before, 0u);
  }
  // ...and we ended back in the client's view with the stack balanced.
  EXPECT_EQ(*kernel_->CurrentIdentity(core), client->pid());
  EXPECT_EQ(regs.reg(x86::Reg::kRsp), mk::kStackTopVa - 64);
  EXPECT_EQ(machine_->total_vm_exits(), 0u);
}

TEST_P(SecurityTest, GuestExecutorRefusesUnknownInstructions) {
  Boot();
  auto* proc = kernel_->CreateProcess("p").value();
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), proc).ok());
  hw::Core& core = machine_->core(0);
  GuestRegs regs;
  regs.rip = mk::kCodeVa;  // The default image starts with push rbp / mov...
  regs.reg(x86::Reg::kRsp) = mk::kStackTopVa - 64;
  GuestExecutor exec(&core);
  bool done = false;
  // push rbp — fine.
  EXPECT_TRUE(exec.Step(regs, &done).ok());
  // mov rbp, rsp — fine.
  EXPECT_TRUE(exec.Step(regs, &done).ok());
}

}  // namespace
}  // namespace skybridge
