// Security-focused SkyBridge tests (paper Sections 4.4, 5, 7 and 9):
// malicious EPT switching, the trampoline as the only gate, W^X dynamic code
// rescanning, and isolation under the KPTI (Meltdown-mitigated) profile.

#include <gtest/gtest.h>

#include "src/skybridge/guest_exec.h"
#include "src/skybridge/skybridge.h"
#include "src/skybridge/trampoline.h"
#include "src/x86/assembler.h"
#include "src/x86/decoder.h"
#include "src/x86/scanner.h"

namespace skybridge {
namespace {

using mk::CallEnv;
using mk::Message;
using sb::kGiB;

class SecurityTest : public ::testing::Test {
 protected:
  void Boot(mk::KernelProfile profile = mk::Sel4Profile()) {
    sky_.reset();
    kernel_.reset();
    machine_.reset();
    hw::MachineConfig mc;
    mc.num_cores = 4;
    mc.ram_bytes = 4 * kGiB;
    machine_ = std::make_unique<hw::Machine>(mc);
    kernel_ = std::make_unique<mk::Kernel>(*machine_, std::move(profile));
    ASSERT_TRUE(kernel_->Boot().ok());
    sky_ = std::make_unique<SkyBridge>(*kernel_);
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<SkyBridge> sky_;
};

TEST_F(SecurityTest, TrampolineIsTheOnlyVmfuncGate) {
  Boot();
  // The trampoline page intentionally carries exactly two VMFUNC gates...
  const TrampolineLayout trampoline = BuildTrampoline();
  const auto hits = x86::ScanForVmfunc(trampoline.code);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].overlap, x86::VmfuncOverlap::kIsVmfunc);
  EXPECT_EQ(hits[1].overlap, x86::VmfuncOverlap::kIsVmfunc);
  EXPECT_EQ(hits[0].pattern_off, trampoline.call_gate_offset);
  EXPECT_EQ(hits[1].pattern_off, trampoline.return_gate_offset);

  // ...and every registered process's own code is pattern-free, so after
  // rewriting the trampoline really is the only entry point.
  auto* server = kernel_->CreateProcess("server").value();
  x86::Assembler evil;
  evil.MovRI32(x86::Reg::kRcx, 1);
  evil.MovRI32(x86::Reg::kRax, 0);
  evil.Vmfunc();  // Self-prepared gate.
  evil.Ret();
  auto* client = kernel_->CreateProcessWithImage("evil", evil.Take()).value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  EXPECT_TRUE(x86::ScanForVmfunc(client->code_image()).empty());
}

TEST_F(SecurityTest, MaliciousEptpIndexCausesVmExitAndNoSwitch) {
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  auto* client = kernel_->CreateProcess("client").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  // A malicious process that somehow executes VMFUNC with an out-of-range
  // index: the hardware exits to the Rootkernel and no switch happens.
  hw::Core& core = machine_->core(0);
  const size_t before_index = core.vmcs().active_index;
  kernel_->rootkernel()->ResetExitCounters();
  EXPECT_FALSE(core.Vmfunc(0, 100).ok());
  EXPECT_EQ(core.vmcs().active_index, before_index);
  EXPECT_EQ(machine_->total_vm_exits(), 1u);
}

TEST_F(SecurityTest, VmfuncWithinListButUnregisteredServerStillRejected) {
  // A client registered to server A cannot reach server B: its EPTP list
  // simply has no binding EPT for B, and the library rejects the call.
  Boot();
  auto* server_a = kernel_->CreateProcess("a").value();
  auto* server_b = kernel_->CreateProcess("b").value();
  const ServerId sid_a =
      sky_->RegisterServer(server_a, 4, [](CallEnv&) { return Message(0xa); }).value();
  const ServerId sid_b =
      sky_->RegisterServer(server_b, 4, [](CallEnv&) { return Message(0xb); }).value();
  auto* client = kernel_->CreateProcess("client").value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid_a).ok());
  mk::Thread* t = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  EXPECT_TRUE(sky_->DirectServerCall(t, sid_a, Message(0)).ok());
  EXPECT_EQ(sky_->DirectServerCall(t, sid_b, Message(0)).status().code(),
            sb::ErrorCode::kPermissionDenied);
}

TEST_F(SecurityTest, WxDynamicCodeRescanOnUpdate) {
  // Paper Section 9: JIT / live update. New code pages must be rescanned
  // when remapped executable; a freshly planted VMFUNC is rewritten away
  // and the process keeps working.
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  auto* client = kernel_->CreateProcess("client").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  mk::Thread* t = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  ASSERT_TRUE(sky_->DirectServerCall(t, sid, Message(1)).ok());
  const uint64_t rewrites_before = sky_->stats().rewritten_vmfuncs;

  // The "JIT" emits new code containing a gate and an embedded pattern.
  x86::Assembler jit;
  jit.MovRI64(x86::Reg::kRax, 7);
  jit.Vmfunc();
  jit.OrRI(x86::Reg::kRbx, 0x00d4010f);
  jit.Ret();
  ASSERT_TRUE(sky_->UpdateProcessCode(client, jit.Take()).ok());

  EXPECT_TRUE(x86::FindVmfuncBytes(client->code_image()).empty());
  EXPECT_GE(sky_->stats().rewritten_vmfuncs, rewrites_before + 2);
  // The rewrite page was (re)generated and the bindings still work.
  EXPECT_TRUE(client->address_space().WalkVa(mk::kRewritePageVa).ok);
  EXPECT_TRUE(sky_->DirectServerCall(t, sid, Message(2)).ok());
}

TEST_F(SecurityTest, RepeatedCodeUpdatesConverge) {
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  auto* client = kernel_->CreateProcess("client").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  for (int round = 0; round < 5; ++round) {
    x86::Assembler jit;
    jit.MovRI64(x86::Reg::kRax, static_cast<uint64_t>(round));
    if (round % 2 == 0) {
      jit.Vmfunc();
    }
    jit.AddRI(x86::Reg::kRbx, 0x00d4010f);
    jit.Ret();
    ASSERT_TRUE(sky_->UpdateProcessCode(client, jit.Take()).ok()) << round;
    EXPECT_TRUE(x86::FindVmfuncBytes(client->code_image()).empty()) << round;
  }
}

TEST_F(SecurityTest, IsolationHoldsUnderKpti) {
  // Meltdown-mitigated profile: SkyBridge still works and processes stay in
  // separate page tables (the paper's Meltdown defence argument).
  mk::KernelProfile profile = mk::Sel4Profile();
  profile.kpti = true;
  Boot(profile);
  auto* server = kernel_->CreateProcess("server").value();
  auto* client = kernel_->CreateProcess("client").value();
  const ServerId sid = sky_->RegisterServer(server, 4, [](CallEnv& env) {
                             SB_CHECK(env.core.WriteVirtU64(mk::kHeapVa + 8, 0x5ec3e7).ok());
                             return env.request;
                           }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  mk::Thread* t = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  ASSERT_TRUE(sky_->DirectServerCall(t, sid, Message(0)).ok());

  // The secret the server wrote is not visible through the client's tables.
  hw::Core& core = machine_->core(0);
  auto leaked = core.ReadVirtU64(mk::kHeapVa + 8);
  ASSERT_TRUE(leaked.ok());
  EXPECT_NE(*leaked, 0x5ec3e7u);
  EXPECT_NE(client->cr3(), server->cr3());
}

TEST_F(SecurityTest, CallingKeysDifferPerBinding) {
  // Two clients of the same server get distinct random keys: leaking one
  // key only exposes the leaker's slot (Section 4.4).
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  auto* c1 = kernel_->CreateProcess("c1").value();
  auto* c2 = kernel_->CreateProcess("c2").value();
  ASSERT_TRUE(sky_->RegisterClient(c1, sid).ok());
  ASSERT_TRUE(sky_->RegisterClient(c2, sid).ok());

  // Read both key slots from the server's table.
  const hw::GuestWalk table = server->address_space().WalkVa(mk::kCallingKeyTableVa);
  ASSERT_TRUE(table.ok);
  const uint64_t key1 = machine_->mem().ReadU64(table.gpa);
  const uint64_t key2 = machine_->mem().ReadU64(table.gpa + 16);
  EXPECT_NE(key1, 0u);
  EXPECT_NE(key2, 0u);
  EXPECT_NE(key1, key2);
}

TEST_F(SecurityTest, RefusingToUseSkyBridgeOnlyHurtsYourself) {
  // Section 7: a process that never registers simply cannot reach servers;
  // other processes are unaffected.
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  auto* good = kernel_->CreateProcess("good").value();
  auto* refusenik = kernel_->CreateProcess("refusenik").value();
  ASSERT_TRUE(sky_->RegisterClient(good, sid).ok());
  mk::Thread* tg = good->AddThread(0);
  mk::Thread* tr = refusenik->AddThread(1);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), good).ok());

  EXPECT_FALSE(sky_->DirectServerCall(tr, sid, Message(0)).ok());
  EXPECT_TRUE(sky_->DirectServerCall(tg, sid, Message(0)).ok());
}

TEST_F(SecurityTest, LiteralTrampolineBytesExecuteTheSwitch) {
  // The deepest fidelity check in the repo: execute the *actual trampoline
  // code page* instruction by instruction through the simulated MMU, and
  // watch the VMFUNC inside it switch the translation context to the server
  // and back.
  Boot();
  auto* server = kernel_->CreateProcess("server").value();
  auto* client = kernel_->CreateProcess("client").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, [](CallEnv& env) { return env.request; }).value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  hw::Core& core = machine_->core(0);
  // Warm-up call: faults the binding's EPT into this core's slot working set
  // so the stub below can target its (virtualized) slot index.
  mk::Thread* warmup = client->AddThread(0);
  ASSERT_TRUE(sky_->DirectServerCall(warmup, sid, Message(0)).ok());
  const uint32_t binding_slot = sky_->ResidentBindingSlot(client, sid, 0);
  ASSERT_NE(binding_slot, kNoEptpSlot);
  core.SetMode(hw::CpuMode::kUser);

  // Set up guest registers like the user-level stub would: stack in the
  // client, EPTP index of the binding in rcx, sentinel return address on
  // the stack.
  GuestRegs regs;
  regs.rip = mk::kTrampolineVa;
  regs.reg(x86::Reg::kRsp) = mk::kStackTopVa - 64;
  regs.reg(x86::Reg::kRcx) = binding_slot;
  // The return slot (the caller's own view) rides in r8; the kernel hands it
  // to the stub at dispatch since slot indices are virtualized.
  regs.reg(x86::Reg::kR8) = core.vmcs().active_index;
  regs.reg(x86::Reg::kRsp) -= 8;
  ASSERT_TRUE(core.WriteVirtU64(regs.reg(x86::Reg::kRsp), kGuestReturnSentinel).ok());

  GuestExecutor exec(&core);
  kernel_->rootkernel()->ResetExitCounters();  // Count steady-state exits only.
  const uint64_t vmfuncs_before = core.pmu().vmfuncs;
  bool saw_server_view = false;
  bool done = false;
  int steps = 0;
  while (!done && steps < 200) {
    auto status = exec.Step(regs, &done);
    ASSERT_TRUE(status.ok()) << status.ToString() << " at step " << steps;
    ++steps;
    if (!done) {
      auto identity = kernel_->CurrentIdentity(core);
      ASSERT_TRUE(identity.ok());
      if (*identity == server->pid()) {
        saw_server_view = true;  // The call gate fired: we are "in" the server.
      }
    }
  }
  ASSERT_TRUE(done) << "trampoline did not return";
  EXPECT_TRUE(saw_server_view);
  // Two VMFUNCs executed (call gate + return gate)...
  EXPECT_EQ(core.pmu().vmfuncs - vmfuncs_before, 2u);
  // ...and we ended back in the client's view with the stack balanced.
  EXPECT_EQ(*kernel_->CurrentIdentity(core), client->pid());
  EXPECT_EQ(regs.reg(x86::Reg::kRsp), mk::kStackTopVa - 64);
  EXPECT_EQ(machine_->total_vm_exits(), 0u);
}

TEST_F(SecurityTest, GuestExecutorRefusesUnknownInstructions) {
  Boot();
  auto* proc = kernel_->CreateProcess("p").value();
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), proc).ok());
  hw::Core& core = machine_->core(0);
  GuestRegs regs;
  regs.rip = mk::kCodeVa;  // The default image starts with push rbp / mov...
  regs.reg(x86::Reg::kRsp) = mk::kStackTopVa - 64;
  GuestExecutor exec(&core);
  bool done = false;
  // push rbp — fine.
  EXPECT_TRUE(exec.Step(regs, &done).ok());
  // mov rbp, rsp — fine.
  EXPECT_TRUE(exec.Step(regs, &done).ok());
}

}  // namespace
}  // namespace skybridge
