// Staged registration pipeline tests (DESIGN.md section 17): the
// content-hashed rewrite cache (fork determinism, cross-backend isolation,
// bounded eviction), dirty-page-only invalidation on UpdateProcessCode,
// rewrite-on-first-execute in lazy mode, snapshot/restore semantics, and the
// kFaultExecScan recovery contract.

#include <gtest/gtest.h>

#include <vector>

#include "src/base/faultpoint.h"
#include "src/skybridge/skybridge.h"
#include "src/vmm/rootkernel.h"
#include "src/x86/rewrite_cache.h"
#include "src/x86/scanner.h"

namespace skybridge {
namespace {

using mk::CallEnv;
using mk::Handler;
using mk::Message;
using sb::kGiB;
using sb::kPageSize;

Handler EchoHandler() {
  return [](CallEnv& env) { return env.request; };
}

// A `pages`-page NOP sled ending in RET. Every byte is a valid one-byte
// instruction, so the linear scan decodes cleanly at any offset.
std::vector<uint8_t> NopImage(size_t pages) {
  std::vector<uint8_t> image(pages * kPageSize, 0x90);
  image.back() = 0xc3;
  return image;
}

// Plants `mov eax, imm32` whose immediate embeds the 3-byte gate pattern —
// the SeCage-style overlapping pattern that forces a window relocation (and
// therefore snippets in the rewrite sub-window) rather than a NOP-out.
void PlantEmbedded(std::vector<uint8_t>& image, size_t offset, const uint8_t pattern[3]) {
  image[offset] = 0xb8;
  image[offset + 1] = pattern[0];
  image[offset + 2] = pattern[1];
  image[offset + 3] = pattern[2];
  image[offset + 4] = 0x00;
}

// Each test drives one registration mode explicitly; start from eager so the
// SB_REGISTRATION_MODE matrix cannot change what a test asserts.
SkyBridgeConfig EagerConfig() {
  SkyBridgeConfig config;
  config.registration_mode = RegistrationMode::kEager;
  return config;
}

class RegistrationPipelineTest : public ::testing::Test {
 protected:
  void Boot(SkyBridgeConfig config = EagerConfig()) {
    // The cache/lazy/snapshot machinery under test lives on the view-slot
    // path; pin EPTP as the default backend against the SB_CROSSING_BACKEND
    // matrix (individual servers still pin their own backend).
    config.crossing_backend = CrossingBackendKind::kEptp;
    sky_.reset();
    kernel_.reset();
    machine_.reset();
    hw::MachineConfig mc;
    mc.num_cores = 4;
    mc.ram_bytes = 4 * kGiB;
    machine_ = std::make_unique<hw::Machine>(mc);
    kernel_ = std::make_unique<mk::Kernel>(*machine_, mk::Sel4Profile());
    ASSERT_TRUE(kernel_->Boot().ok());
    sky_ = std::make_unique<SkyBridge>(*kernel_, config);
  }

  // True iff the EPT allows execution of `process` code page `page`.
  bool PageExecutable(mk::Process* process, size_t page) {
    const hw::GuestWalk walk = process->address_space().WalkVa(mk::kCodeVa);
    SB_CHECK(walk.ok);
    hw::Ept* ept = kernel_->rootkernel()->ept(process->ept_id());
    SB_CHECK(ept != nullptr);
    return ept->Walk(walk.gpa + page * kPageSize, hw::kEptExec).ok;
  }

  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<SkyBridge> sky_;
};

// Satellite: UpdateProcessCode must invalidate (and rescan) only the pages
// whose content hash actually changed. This pins the rescan count — a
// regression to whole-image invalidation fails the exact-delta checks.
TEST_F(RegistrationPipelineTest, UpdateProcessCodeRescansOnlyDirtyPages) {
  Boot();
  std::vector<uint8_t> image = NopImage(4);
  PlantEmbedded(image, kPageSize + 2048, x86::kVmfuncBytes);
  PlantEmbedded(image, 3 * kPageSize + 2048, x86::kVmfuncBytes);
  auto* server = kernel_->CreateProcessWithImage("server", image).value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, EchoHandler(), CrossingBackendKind::kEptp).value();
  EXPECT_EQ(sky_->stats().pages_rescanned, 4u);
  EXPECT_EQ(sky_->stats().cache_misses, 4u);
  EXPECT_EQ(sky_->stats().cache_hits, 0u);
  EXPECT_TRUE(x86::FindVmfuncBytes(server->code_image()).empty());

  // Dirty exactly one byte, mid-page so no neighbour's +-64 B hash context
  // sees it. Pages 0, 1 and 3 replay from the cache; only page 2 rescans.
  std::vector<uint8_t> updated = image;
  updated[2 * kPageSize + 2048] = 0xf8;  // NOP -> CLC, still one decodable byte.
  ASSERT_TRUE(sky_->UpdateProcessCode(server, updated).ok());
  EXPECT_EQ(sky_->stats().pages_rescanned, 5u);
  EXPECT_EQ(sky_->stats().cache_misses, 5u);
  EXPECT_EQ(sky_->stats().cache_hits, 3u);
  EXPECT_TRUE(x86::FindVmfuncBytes(server->code_image()).empty());
  EXPECT_TRUE(server->code_rewritten());

  // The updated image still serves calls.
  auto* client = kernel_->CreateProcess("client").value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  EXPECT_TRUE(sky_->DirectServerCall(thread, sid, Message(7)).ok());
}

// Forked workers carry byte-identical images: the second registration must
// replay every page from the cache and produce a byte-identical rewrite.
TEST_F(RegistrationPipelineTest, IdenticalForkReplaysFromTheCacheDeterministically) {
  Boot();
  std::vector<uint8_t> image = NopImage(4);
  PlantEmbedded(image, kPageSize + 2048, x86::kVmfuncBytes);
  PlantEmbedded(image, 3 * kPageSize + 2048, x86::kVmfuncBytes);
  auto* a = kernel_->CreateProcessWithImage("fork-a", image).value();
  const ServerId sid_a =
      sky_->RegisterServer(a, 4, EchoHandler(), CrossingBackendKind::kEptp).value();
  EXPECT_EQ(sky_->stats().cache_misses, 4u);
  EXPECT_EQ(sky_->stats().pages_rescanned, 4u);

  auto* b = kernel_->CreateProcessWithImage("fork-b", image).value();
  const ServerId sid_b =
      sky_->RegisterServer(b, 4, EchoHandler(), CrossingBackendKind::kEptp).value();
  // 100% hit rate: no page of the fork rescanned.
  EXPECT_EQ(sky_->stats().cache_misses, 4u);
  EXPECT_EQ(sky_->stats().cache_hits, 4u);
  EXPECT_EQ(sky_->stats().pages_rescanned, 4u);
  // Replay is deterministic: both rewrites are byte-identical.
  EXPECT_EQ(a->code_image(), b->code_image());
  EXPECT_TRUE(x86::FindVmfuncBytes(b->code_image()).empty());

  // Both forks actually serve.
  auto* client = kernel_->CreateProcess("client").value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid_a).ok());
  ASSERT_TRUE(sky_->RegisterClient(client, sid_b).ok());
  mk::Thread* thread = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  EXPECT_TRUE(sky_->DirectServerCall(thread, sid_a, Message(1)).ok());
  EXPECT_TRUE(sky_->DirectServerCall(thread, sid_b, Message(2)).ok());
}

// The pattern id is part of the cache key: an EPTP (VMFUNC) rewrite of a page
// must never satisfy the MPK (WRPKRU) pass over the same bytes — a cross-hit
// would leave a live WRPKRU in an MPK-bound image.
TEST_F(RegistrationPipelineTest, BackendPatternsNeverShareCacheEntries) {
  Boot();
  std::vector<uint8_t> image = NopImage(4);
  PlantEmbedded(image, kPageSize + 2048, x86::kVmfuncBytes);
  PlantEmbedded(image, 2 * kPageSize + 2048, x86::kWrpkruBytes);
  x86::ScanOptions wrpkru;
  wrpkru.pattern = x86::kWrpkruBytes;

  // EPTP-bound server: only the VMFUNC pass runs, the WRPKRU stays.
  auto* a = kernel_->CreateProcessWithImage("eptp-server", image).value();
  ASSERT_TRUE(
      sky_->RegisterServer(a, 4, EchoHandler(), CrossingBackendKind::kEptp).ok());
  EXPECT_EQ(sky_->stats().cache_misses, 4u);
  EXPECT_TRUE(x86::FindVmfuncBytes(a->code_image()).empty());
  EXPECT_FALSE(x86::FindVmfuncBytes(a->code_image(), wrpkru).empty());

  // MPK-bound fork of the same image: the VMFUNC pass replays from the
  // cache, but the WRPKRU pass must miss — same bytes, different pattern id.
  auto* b = kernel_->CreateProcessWithImage("mpk-server", image).value();
  ASSERT_TRUE(sky_->RegisterServer(b, 4, EchoHandler(), CrossingBackendKind::kMpk).ok());
  EXPECT_EQ(sky_->stats().cache_hits, 4u);    // The replayed VMFUNC pass.
  EXPECT_EQ(sky_->stats().cache_misses, 8u);  // The cold WRPKRU pass.
  EXPECT_TRUE(x86::FindVmfuncBytes(b->code_image()).empty());
  EXPECT_TRUE(x86::FindVmfuncBytes(b->code_image(), wrpkru).empty());
}

// Unit-level key semantics and the bounded LRU budget.
TEST(RewriteCacheUnit, KeyIsolationAndBoundedLruEviction) {
  x86::RewriteCache cache(2);
  x86::PageRewrite value;
  const x86::RewriteCacheKey base{0x1234, 0, 0};
  cache.Insert(base, value);

  // Same bytes, different pattern or page index: a miss by construction.
  EXPECT_FALSE(cache.Lookup({0x1234, 0, 1}).has_value());
  EXPECT_FALSE(cache.Lookup({0x1234, 1, 0}).has_value());
  EXPECT_TRUE(cache.Lookup(base).has_value());

  // Over-budget insert evicts the least recently used entry: refresh `base`
  // after the second insert so the second key is the victim.
  cache.Insert({0x5678, 0, 0}, value);
  EXPECT_TRUE(cache.Lookup(base).has_value());
  cache.Insert({0x9abc, 0, 0}, value);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(base).has_value());
  EXPECT_FALSE(cache.Lookup({0x5678, 0, 0}).has_value());
  EXPECT_TRUE(cache.Lookup({0x9abc, 0, 0}).has_value());

  // Invalidation drops the entry and is counted.
  cache.Invalidate(base);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_FALSE(cache.Lookup(base).has_value());
}

// config.rewrite_cache_entries == 0 disables caching entirely — the
// cold-start ablation baseline: every fork pays the full scan.
TEST_F(RegistrationPipelineTest, ZeroBudgetDisablesTheCache) {
  SkyBridgeConfig config = EagerConfig();
  config.rewrite_cache_entries = 0;
  Boot(config);
  std::vector<uint8_t> image = NopImage(2);
  PlantEmbedded(image, kPageSize + 2048, x86::kVmfuncBytes);
  auto* a = kernel_->CreateProcessWithImage("a", image).value();
  ASSERT_TRUE(
      sky_->RegisterServer(a, 4, EchoHandler(), CrossingBackendKind::kEptp).ok());
  auto* b = kernel_->CreateProcessWithImage("b", image).value();
  ASSERT_TRUE(
      sky_->RegisterServer(b, 4, EchoHandler(), CrossingBackendKind::kEptp).ok());
  EXPECT_EQ(sky_->stats().cache_hits, 0u);
  EXPECT_EQ(sky_->stats().pages_rescanned, 4u);
  EXPECT_EQ(a->code_image(), b->code_image());
}

// Snapshot/restore: a captured registration re-applies to an identical clone
// with zero scanning, and every precondition violation is rejected.
TEST_F(RegistrationPipelineTest, SnapshotRestoreSkipsTheScanAndChecksPreconditions) {
  Boot();
  std::vector<uint8_t> image = NopImage(4);
  PlantEmbedded(image, kPageSize + 2048, x86::kVmfuncBytes);
  auto* tmpl = kernel_->CreateProcessWithImage("template", image).value();
  const ServerId sid =
      sky_->RegisterServer(tmpl, 4, EchoHandler(), CrossingBackendKind::kEptp).value();
  const uint64_t scanned = sky_->stats().pages_rescanned;
  ASSERT_EQ(scanned, 4u);

  auto snapshot = sky_->SnapshotRegistration(tmpl);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->prepared_mask & 1u, 1u);
  EXPECT_EQ(snapshot->code, tmpl->code_image());
  EXPECT_FALSE(snapshot->window_pages.empty());

  // Restore onto an identical clone: no scan, bulk copy only.
  auto* clone = kernel_->CreateProcessWithImage("clone", image).value();
  ASSERT_TRUE(sky_->RestoreRegistration(clone, *snapshot).ok());
  EXPECT_TRUE(clone->code_rewritten());
  EXPECT_EQ(clone->code_image(), tmpl->code_image());
  EXPECT_EQ(sky_->stats().snapshot_restores, 1u);
  EXPECT_EQ(sky_->stats().pages_rescanned, scanned);
  // Registering the restored clone skips the rewrite pass entirely.
  const ServerId clone_sid =
      sky_->RegisterServer(clone, 4, EchoHandler(), CrossingBackendKind::kEptp).value();
  EXPECT_EQ(sky_->stats().pages_rescanned, scanned);
  EXPECT_EQ(sky_->stats().cache_hits, 0u);

  // The restored worker serves like the template.
  auto* client = kernel_->CreateProcess("client").value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  ASSERT_TRUE(sky_->RegisterClient(client, clone_sid).ok());
  mk::Thread* thread = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());
  EXPECT_TRUE(sky_->DirectServerCall(thread, clone_sid, Message(3)).ok());

  // Preconditions: no snapshot of an unprepared process, no restore onto a
  // prepared process, no restore over a mismatched image.
  auto* fresh = kernel_->CreateProcessWithImage("fresh", image).value();
  EXPECT_EQ(sky_->SnapshotRegistration(fresh).status().code(),
            sb::ErrorCode::kFailedPrecondition);
  EXPECT_EQ(sky_->RestoreRegistration(tmpl, *snapshot).code(),
            sb::ErrorCode::kFailedPrecondition);
  auto* other = kernel_->CreateProcessWithImage("other", NopImage(4)).value();
  EXPECT_EQ(sky_->RestoreRegistration(other, *snapshot).code(),
            sb::ErrorCode::kFailedPrecondition);
}

// registration_mode = snapshot: the first registration of an image eagerly
// scans and auto-captures; every later identical process restores instead.
TEST_F(RegistrationPipelineTest, SnapshotModeAutoCapturesAndRestoresClones) {
  SkyBridgeConfig config;
  config.registration_mode = RegistrationMode::kSnapshot;
  Boot(config);
  std::vector<uint8_t> image = NopImage(4);
  PlantEmbedded(image, kPageSize + 2048, x86::kVmfuncBytes);
  auto* tmpl = kernel_->CreateProcessWithImage("template", image).value();
  const ServerId sid =
      sky_->RegisterServer(tmpl, 8, EchoHandler(), CrossingBackendKind::kEptp).value();
  const uint64_t scanned = sky_->stats().pages_rescanned;
  EXPECT_EQ(sky_->stats().snapshot_restores, 0u);

  // Three cloned workers: each client registration restores from the
  // library keyed by the pristine image hash — zero additional scanning.
  for (int i = 0; i < 3; ++i) {
    auto* worker =
        kernel_->CreateProcessWithImage("worker-" + std::to_string(i), image).value();
    ASSERT_TRUE(sky_->RegisterClient(worker, sid).ok());
    EXPECT_TRUE(worker->code_rewritten());
    mk::Thread* thread = worker->AddThread(i);
    ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(i), worker).ok());
    EXPECT_TRUE(sky_->DirectServerCall(thread, sid, Message(i)).ok());
  }
  EXPECT_EQ(sky_->stats().snapshot_restores, 3u);
  EXPECT_EQ(sky_->stats().pages_rescanned, scanned);
}

// Lazy mode: pages fault in one at a time as execution reaches them; pages
// never executed are never scanned, and the planted pattern on a cold page
// stays (harmlessly, non-executable) until its first execution.
TEST_F(RegistrationPipelineTest, LazyModeFaultsPagesInOneAtATime) {
  SkyBridgeConfig config;
  config.registration_mode = RegistrationMode::kLazy;
  Boot(config);
  std::vector<uint8_t> image = NopImage(4);
  PlantEmbedded(image, kPageSize + 2048, x86::kVmfuncBytes);
  PlantEmbedded(image, 3 * kPageSize + 2048, x86::kVmfuncBytes);
  auto* server = kernel_->CreateProcessWithImage("server", image).value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, EchoHandler(), CrossingBackendKind::kEptp).value();
  auto* client = kernel_->CreateProcess("client").value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  // Registration armed, nothing scanned: all four server pages non-exec.
  EXPECT_EQ(sky_->stats().exec_faults, 0u);
  EXPECT_EQ(sky_->stats().pages_rescanned, 0u);
  for (size_t page = 0; page < 4; ++page) {
    EXPECT_FALSE(PageExecutable(server, page)) << page;
  }
  EXPECT_EQ(x86::FindVmfuncBytes(server->code_image()).size(), 2u);

  // tag 0 executes the client page, the handler page and server page 0.
  ASSERT_TRUE(sky_->DirectServerCall(thread, sid, Message(0)).ok());
  const uint64_t after_first = sky_->stats().exec_faults;
  EXPECT_GE(after_first, 2u);
  EXPECT_TRUE(PageExecutable(server, 0));
  EXPECT_FALSE(PageExecutable(server, 1));
  EXPECT_FALSE(server->code_rewritten());

  // tag 2 reaches server page 2; pages 1 and 3 (with their patterns) are
  // still cold, still non-executable.
  ASSERT_TRUE(sky_->DirectServerCall(thread, sid, Message(2)).ok());
  EXPECT_EQ(sky_->stats().exec_faults, after_first + 1);
  EXPECT_TRUE(PageExecutable(server, 2));
  EXPECT_EQ(x86::FindVmfuncBytes(server->code_image()).size(), 2u);

  // Touch the pattern pages: each first execution scrubs its page.
  ASSERT_TRUE(sky_->DirectServerCall(thread, sid, Message(1)).ok());
  EXPECT_EQ(x86::FindVmfuncBytes(server->code_image()).size(), 1u);
  EXPECT_FALSE(server->code_rewritten());
  ASSERT_TRUE(sky_->DirectServerCall(thread, sid, Message(3)).ok());
  EXPECT_TRUE(x86::FindVmfuncBytes(server->code_image()).empty());
  EXPECT_TRUE(server->code_rewritten());
  for (size_t page = 0; page < 4; ++page) {
    EXPECT_TRUE(PageExecutable(server, page)) << page;
  }

  // Steady state: the fault path is drained, counters hold still.
  const uint64_t faults = sky_->stats().exec_faults;
  EXPECT_TRUE(sky_->DirectServerCall(thread, sid, Message(1)).ok());
  EXPECT_EQ(sky_->stats().exec_faults, faults);
}

// The kFaultExecScan recovery contract: a persistently failing page scan
// exhausts the bounded retry and surfaces clean Unavailable; once the fault
// clears, the next execution scrubs the page and the call succeeds.
TEST_F(RegistrationPipelineTest, ExecScanFaultSurfacesUnavailableThenRecovers) {
  SkyBridgeConfig config;
  config.registration_mode = RegistrationMode::kLazy;
  Boot(config);
  auto* server = kernel_->CreateProcess("server").value();
  const ServerId sid =
      sky_->RegisterServer(server, 4, EchoHandler(), CrossingBackendKind::kEptp).value();
  auto* client = kernel_->CreateProcess("client").value();
  ASSERT_TRUE(sky_->RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(0), client).ok());

  // Every scan attempt fails: the bounded retry drains, the call reports
  // Unavailable, and no page is left half-scrubbed or executable.
  sb::fault::DisarmAll();
  sb::fault::Arm(kFaultExecScan);
  EXPECT_EQ(sky_->DirectServerCall(thread, sid, Message(0)).status().code(),
            sb::ErrorCode::kUnavailable);
  EXPECT_GE(sb::fault::StatsFor(kFaultExecScan).fires, 1u);
  EXPECT_FALSE(PageExecutable(client, 0));
  EXPECT_EQ(sky_->stats().lazy_rewrites, 0u);
  const sb::Status invariants = sky_->CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();

  // Fault cleared: the retry path completes and the call goes through.
  sb::fault::DisarmAll();
  EXPECT_TRUE(sky_->DirectServerCall(thread, sid, Message(0)).ok());
  EXPECT_GE(sky_->stats().lazy_rewrites, 2u);
  EXPECT_TRUE(PageExecutable(client, 0));

  // A transient failure (first attempt only) is absorbed by the in-fault
  // retry: the caller never sees it.
  auto* late = kernel_->CreateProcess("late-client").value();
  ASSERT_TRUE(sky_->RegisterClient(late, sid).ok());
  mk::Thread* late_thread = late->AddThread(1);
  ASSERT_TRUE(kernel_->ContextSwitchTo(machine_->core(1), late).ok());
  sb::fault::FaultSpec once;
  once.nth_hit = 1;
  sb::fault::Arm(kFaultExecScan, once);
  EXPECT_TRUE(sky_->DirectServerCall(late_thread, sid, Message(1)).ok());
  EXPECT_EQ(sb::fault::StatsFor(kFaultExecScan).fires, 1u);
  sb::fault::DisarmAll();
}

}  // namespace
}  // namespace skybridge
