// Rewriter tests: every Table 3 case, plus randomized equivalence checking —
// original and rewritten programs must reach identical architectural state,
// and the rewritten bytes must never contain (or execute) VMFUNC.

#include "src/x86/rewriter.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/x86/assembler.h"
#include "src/x86/decoder.h"
#include "src/x86/emulator.h"
#include "src/x86/scanner.h"

namespace x86 {
namespace {

constexpr uint64_t kCodeBase = 0x400000;
constexpr uint64_t kPageBase = 0x1000;
constexpr uint64_t kDataBase = 0x10000;
constexpr uint64_t kDataLen = 0x10000;

RewriteConfig Config() {
  RewriteConfig config;
  config.code_base = kCodeBase;
  config.rewrite_page_base = kPageBase;
  return config;
}

struct RunResult {
  StopInfo stop;
  CpuState state;
  std::vector<uint8_t> data;
};

RunResult RunWith(const std::vector<uint8_t>& code, const std::vector<uint8_t>& page,
                  const CpuState& init) {
  Emulator emu;
  emu.LoadBytes(kCodeBase, code);
  if (!page.empty()) {
    emu.LoadBytes(kPageBase, page);
  }
  emu.state() = init;
  emu.state().rip = kCodeBase;
  emu.state().reg(Reg::kRsp) = Emulator::kInitialRsp;
  RunResult r;
  r.stop = emu.Run(100000);
  r.state = emu.state();
  r.data.resize(kDataLen);
  for (uint64_t i = 0; i < kDataLen; ++i) {
    r.data[i] = emu.ReadByte(kDataBase + i);
  }
  return r;
}

CpuState DefaultInit() {
  CpuState s;
  s.reg(Reg::kRax) = 0x1111;
  s.reg(Reg::kRbx) = 0x2222;
  s.reg(Reg::kRcx) = 0x3333;
  s.reg(Reg::kRdx) = 0x4444;
  s.reg(Reg::kRsi) = kDataBase + 0x100;
  s.reg(Reg::kRdi) = kDataBase;
  s.reg(Reg::kR8) = 0x8888;
  s.reg(Reg::kR9) = 0x9999;
  return s;
}

// Rewrites `code` and checks: pattern-free output, identical final state.
void CheckEquivalence(const std::vector<uint8_t>& code, bool compare_flags = true) {
  auto rewritten = RewriteVmfunc(code, Config());
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_TRUE(FindVmfuncBytes(rewritten->code).empty());
  EXPECT_TRUE(FindVmfuncBytes(rewritten->rewrite_page).empty());
  ASSERT_EQ(rewritten->code.size(), code.size());

  const CpuState init = DefaultInit();
  const RunResult orig = RunWith(code, {}, init);
  const RunResult rewr = RunWith(rewritten->code, rewritten->rewrite_page, init);

  EXPECT_EQ(rewr.stop.vmfunc_count, 0u) << "rewritten code executed VMFUNC";
  ASSERT_EQ(orig.stop.reason, StopReason::kRet) << "original program did not finish";
  EXPECT_EQ(rewr.stop.reason, StopReason::kRet);
  for (int r = 0; r < kNumRegs; ++r) {
    EXPECT_EQ(orig.state.regs[r], rewr.state.regs[r]) << "reg " << RegName(static_cast<Reg>(r));
  }
  if (compare_flags) {
    EXPECT_EQ(orig.state.flags, rewr.state.flags);
  }
  EXPECT_EQ(orig.data, rewr.data);
}

TEST(Rewriter, CleanCodeUntouched) {
  Assembler a;
  a.MovRI64(Reg::kRax, 7);
  a.Ret();
  const std::vector<uint8_t> code = a.Take();
  auto result = RewriteVmfunc(code, Config());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->code, code);
  EXPECT_TRUE(result->rewrite_page.empty());
  EXPECT_EQ(result->stats.nop_replaced, 0);
}

TEST(Rewriter, C1TrueVmfuncBecomesNops) {
  Assembler a;
  a.MovRI64(Reg::kRax, 7);
  a.Vmfunc();
  a.Ret();
  auto result = RewriteVmfunc(a.Take(), Config());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.nop_replaced, 1);
  EXPECT_TRUE(FindVmfuncBytes(result->code).empty());

  // The rewritten program runs to completion without executing VMFUNC.
  const RunResult r = RunWith(result->code, result->rewrite_page, DefaultInit());
  EXPECT_EQ(r.stop.reason, StopReason::kRet);
  EXPECT_EQ(r.stop.vmfunc_count, 0u);
  EXPECT_EQ(r.state.reg(Reg::kRax), 7u);
}

TEST(Rewriter, Table3Row2ModrmCase) {
  // imul rcx, [rdi], 0xD401 — ModRM byte is 0x0F, immediate starts 01 D4.
  std::vector<uint8_t> code = {0x48, 0x69, 0x0f, 0x01, 0xd4, 0x00, 0x00};
  Assembler tail;
  tail.Ret();
  code.insert(code.end(), tail.bytes().begin(), tail.bytes().end());

  const auto hits = ScanForVmfunc(code);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].overlap, VmfuncOverlap::kInModrm);
  CheckEquivalence(code, /*compare_flags=*/false);  // imul flags approximate.
}

TEST(Rewriter, Table3Row3SibCase) {
  // lea rbx, [rdi + rcx*1 + 0xD401] — SIB byte is 0x0F.
  std::vector<uint8_t> code = {0x48, 0x8d, 0x9c, 0x0f, 0x01, 0xd4, 0x00, 0x00};
  Assembler tail;
  tail.Ret();
  code.insert(code.end(), tail.bytes().begin(), tail.bytes().end());

  const auto hits = ScanForVmfunc(code);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].overlap, VmfuncOverlap::kInSib);
  CheckEquivalence(code);
}

TEST(Rewriter, Table3Row4DisplacementCase) {
  // add rbx, [rdi + 0xD4010F] — displacement contains the pattern. Seed the
  // data so the load is well-defined: rdi = kDataBase, so plant a value at
  // kDataBase + 0xD4010F... too far; use a negative-ish trick instead: write
  // through a prologue that stores at [rdi + 0xD4010F] first. Keep it simple:
  // the load reads zeroes, which is still a defined value in the emulator.
  std::vector<uint8_t> code = {0x48, 0x03, 0x9f, 0x0f, 0x01, 0xd4, 0x00};
  Assembler tail;
  tail.Ret();
  code.insert(code.end(), tail.bytes().begin(), tail.bytes().end());

  const auto hits = ScanForVmfunc(code);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].overlap, VmfuncOverlap::kInDisp);
  CheckEquivalence(code, /*compare_flags=*/false);  // add-split may alter CF/OF.
}

TEST(Rewriter, Table3Row5ImmediateAdd) {
  // add rax, 0x00D4010F (paper row 5).
  Assembler a;
  a.AddRI(Reg::kRax, 0x00d4010f);
  a.MovRR64(Reg::kRbx, Reg::kRax);
  a.Ret();
  const std::vector<uint8_t> code = a.Take();
  const auto hits = ScanForVmfunc(code);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].overlap, VmfuncOverlap::kInImm);
  CheckEquivalence(code, /*compare_flags=*/false);
}

TEST(Rewriter, ImmediateOrAndXorSub) {
  for (const int which : {0, 1, 2, 3}) {
    Assembler a;
    switch (which) {
      case 0:
        a.OrRI(Reg::kRbx, 0x00d4010f);
        break;
      case 1:
        a.AndRI(Reg::kRbx, 0x00d4010f);
        break;
      case 2:
        a.XorRI(Reg::kRbx, 0x00d4010f);
        break;
      case 3:
        a.SubRI(Reg::kRbx, 0x00d4010f);
        break;
    }
    a.Ret();
    CheckEquivalence(a.Take(), /*compare_flags=*/false);
  }
}

TEST(Rewriter, ImmediateMovRegister) {
  // mov eax, 0x00D4010F.
  Assembler a;
  a.MovRI32(Reg::kRax, 0x00d4010f);
  a.Ret();
  CheckEquivalence(a.Take());  // mov sets no flags; must be exactly preserved.
}

TEST(Rewriter, ImmediateMovImm64) {
  // mov rax, imm64 whose bytes contain the pattern.
  Assembler a;
  a.MovRI64(Reg::kRax, 0x0000d4010f000000ULL);
  a.Ret();
  CheckEquivalence(a.Take());
}

TEST(Rewriter, ImmediateMovToMemory) {
  // mov qword [rdi + 8], 0x00D4010F.
  std::vector<uint8_t> code = {0x48, 0xc7, 0x87, 0x08, 0x00, 0x00, 0x00,
                               0x0f, 0x01, 0xd4, 0x00};
  Assembler tail;
  tail.Ret();
  code.insert(code.end(), tail.bytes().begin(), tail.bytes().end());
  const auto hits = ScanForVmfunc(code);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].overlap, VmfuncOverlap::kInImm);
  CheckEquivalence(code);
}

TEST(Rewriter, ImmediateCmpPreservesFlagsExactly) {
  // cmp rax, 0x00D4010F followed by storing the comparison via jcc.
  Assembler a;
  a.CmpRI(Reg::kRax, 0x00d4010f);
  a.Ret();
  CheckEquivalence(a.Take(), /*compare_flags=*/true);
}

TEST(Rewriter, ImmediateTestPreservesFlagsExactly) {
  // test rbx, 0x00D4010F -> 48 f7 c3 0f 01 d4 00
  std::vector<uint8_t> code = {0x48, 0xf7, 0xc3, 0x0f, 0x01, 0xd4, 0x00};
  Assembler tail;
  tail.Ret();
  code.insert(code.end(), tail.bytes().begin(), tail.bytes().end());
  CheckEquivalence(code, /*compare_flags=*/true);
}

TEST(Rewriter, ImmediateImul) {
  // imul rbx, rcx, 0x00D4010F.
  Assembler a;
  a.ImulRRI(Reg::kRbx, Reg::kRcx, 0x00d4010f);
  a.Ret();
  CheckEquivalence(a.Take(), /*compare_flags=*/false);
}

TEST(Rewriter, ImmediatePushPreservesStackAndFlags) {
  // push 0x00D4010F — Table 3 row 5 for a stack-writing instruction.
  std::vector<uint8_t> code = {0x68, 0x0f, 0x01, 0xd4, 0x00};
  Assembler tail;
  tail.PopR(Reg::kRbx);  // The pushed value must round-trip.
  tail.Ret();
  code.insert(code.end(), tail.bytes().begin(), tail.bytes().end());
  const auto hits = ScanForVmfunc(code);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].overlap, VmfuncOverlap::kInImm);
  CheckEquivalence(code, /*compare_flags=*/true);
}

TEST(Rewriter, DisplacementSplitWithRspBase) {
  // add rbx, [rsp + 0xD4010F] — the scratch copy of RSP must compensate for
  // the transform's own push.
  std::vector<uint8_t> code = {0x48, 0x03, 0x9c, 0x24, 0x0f, 0x01, 0xd4, 0x00};
  Assembler tail;
  tail.Ret();
  code.insert(code.end(), tail.bytes().begin(), tail.bytes().end());
  const auto hits = ScanForVmfunc(code);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].overlap, VmfuncOverlap::kInDisp);
  CheckEquivalence(code, /*compare_flags=*/false);
}

TEST(Rewriter, SibCaseWithIndexScaling) {
  // mov rbx, [rdi + rcx*8 + 0xD401] with SIB = 0xCF? We need SIB byte 0x0F:
  // scale=0, index=rcx, base=rdi. Use an 8B-scaled variant via the
  // displacement path instead: lea rbx, [rdi + rcx*1 + 0xD401] is covered
  // elsewhere; here exercise index substitution when there is no base:
  // lea rbx, [rcx*2 + 0xD4010F] -> SIB no-base form, pattern in disp.
  std::vector<uint8_t> code = {0x48, 0x8d, 0x1c, 0x4d, 0x0f, 0x01, 0xd4, 0x00};
  Assembler tail;
  tail.Ret();
  code.insert(code.end(), tail.bytes().begin(), tail.bytes().end());
  const Insn insn = Decode(code, 0);
  ASSERT_TRUE(insn.valid);
  ASSERT_TRUE(insn.has_sib);
  CheckEquivalence(code, /*compare_flags=*/false);
}

TEST(Rewriter, C2SpanningInstructions) {
  // mov eax, 0x0F000000 ends with 0F; add esp, edx is 01 D4. The 32-bit add
  // zero-extends RSP (real x86 semantics), so RSP is saved and restored
  // around the gadget.
  Assembler a;
  a.MovRR64(Reg::kR9, Reg::kRsp);
  a.MovRI32(Reg::kRdx, 0);
  a.MovRI32(Reg::kRax, 0x0f000000);
  a.Raw({0x01, 0xd4});  // add esp, edx
  a.MovRR64(Reg::kRsp, Reg::kR9);
  a.MovRR64(Reg::kRbx, Reg::kRax);
  a.Ret();
  const std::vector<uint8_t> code = a.Take();
  const auto hits = ScanForVmfunc(code);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].overlap, VmfuncOverlap::kSpans);
  CheckEquivalence(code, /*compare_flags=*/false);
}

TEST(Rewriter, JumpLikeImmediateRetargeted) {
  // call rel32 where the displacement bytes contain the pattern. The call
  // target is far outside the program, so only verify statically that the
  // relocated call preserves the absolute target.
  Assembler a;
  const size_t call_at = a.size();
  a.CallRel32(0x00d4010f);
  a.Ret();
  const std::vector<uint8_t> code = a.Take();
  const uint64_t abs_target = kCodeBase + call_at + 5 + 0x00d4010f;

  auto result = RewriteVmfunc(code, Config());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(FindVmfuncBytes(result->code).empty());
  EXPECT_TRUE(FindVmfuncBytes(result->rewrite_page).empty());

  // Find the relocated E8 on the rewrite page and check its target.
  bool found = false;
  const std::vector<uint8_t>& page = result->rewrite_page;
  for (size_t off : LinearSweep(page)) {
    const Insn insn = Decode(page, off);
    if (insn.valid && insn.mnemonic == Mnemonic::kCallRel) {
      int32_t rel = 0;
      for (int i = 0; i < 4; ++i) {
        rel |= static_cast<int32_t>(page[off + 1 + static_cast<size_t>(i)]) << (8 * i);
      }
      EXPECT_EQ(kPageBase + off + 5 + static_cast<uint64_t>(static_cast<int64_t>(rel)),
                abs_target);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "relocated call not found on rewrite page";
}

TEST(Rewriter, BranchOverOffendingInstruction) {
  // cmp rax, 1; je skip; add rax, 0xD4010F; skip: mov rbx, rax; ret.
  Assembler b;
  b.CmpRI(Reg::kRax, 0x1111);  // equal for DefaultInit (rax == 0x1111)
  const size_t jcc_at = b.size();
  b.JccRel8(0x4, 0);
  b.AddRI(Reg::kRax, 0x00d4010f);
  const size_t skip = b.size();
  b.MovRR64(Reg::kRbx, Reg::kRax);
  b.Ret();
  std::vector<uint8_t> code = b.Take();
  code[jcc_at + 1] = static_cast<uint8_t>(skip - (jcc_at + 2));
  CheckEquivalence(code, /*compare_flags=*/false);
}

TEST(Rewriter, MultipleOccurrences) {
  Assembler a;
  a.AddRI(Reg::kRax, 0x00d4010f);
  a.Vmfunc();
  a.OrRI(Reg::kRbx, 0x00d4010f);
  a.MovRI32(Reg::kRcx, 0x00d4010f);
  a.Ret();
  auto result = RewriteVmfunc(a.Take(), Config());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(FindVmfuncBytes(result->code).empty());
  EXPECT_TRUE(FindVmfuncBytes(result->rewrite_page).empty());
  EXPECT_EQ(result->stats.nop_replaced, 1);
  EXPECT_GE(result->stats.windows_relocated, 3);
}

// ---- Randomized equivalence sweep ----

class RewriterPropertyTest : public ::testing::TestWithParam<int> {};

// Generates a random program, planting a patterned gadget with high
// probability, and checks rewrite equivalence.
TEST_P(RewriterPropertyTest, RandomProgramEquivalence) {
  sb::Rng rng(static_cast<uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 1);
  static const Reg kPool[] = {Reg::kRax, Reg::kRbx, Reg::kRcx,
                              Reg::kRdx, Reg::kRsi, Reg::kR8};
  auto rand_reg = [&] { return kPool[rng.Below(6)]; };
  auto rand_imm = [&] { return static_cast<int32_t>(rng.Below(0xffff)); };

  Assembler a;
  const int n_ops = 4 + static_cast<int>(rng.Below(12));
  const int plant_at = static_cast<int>(rng.Below(static_cast<uint64_t>(n_ops)));
  for (int i = 0; i < n_ops; ++i) {
    if (i == plant_at) {
      switch (rng.Below(8)) {
        case 0:
          a.AddRI(rand_reg(), 0x00d4010f);
          break;
        case 1:
          a.OrRI(rand_reg(), 0x00d4010f);
          break;
        case 2:
          a.XorRI(rand_reg(), 0x00d4010f);
          break;
        case 3:
          a.MovRI32(rand_reg(), 0x00d4010f);
          break;
        case 4:
          a.MovRI64(rand_reg(), 0x00d4010f00ULL);
          break;
        case 5:  // imul rcx, [rdi], 0xD401 (ModRM case)
          a.Raw({0x48, 0x69, 0x0f, 0x01, 0xd4, 0x00, 0x00});
          break;
        case 6:  // lea rbx, [rdi + rcx*1 + 0xD401] (SIB case)
          a.Raw({0x48, 0x8d, 0x9c, 0x0f, 0x01, 0xd4, 0x00, 0x00});
          break;
        case 7:  // spans case (32-bit add esp, edx zero-extends RSP: save it)
          a.MovRR64(Reg::kR9, Reg::kRsp);
          a.MovRI32(Reg::kRdx, 0);
          a.MovRI32(Reg::kRax, 0x0f000000);
          a.Raw({0x01, 0xd4});
          a.MovRR64(Reg::kRsp, Reg::kR9);
          break;
      }
      continue;
    }
    switch (rng.Below(12)) {
      case 0:
        a.MovRI64(rand_reg(), rng.Below(1u << 30));
        break;
      case 1:
        a.AddRR(rand_reg(), rand_reg());
        break;
      case 2:
        a.SubRI(rand_reg(), rand_imm());
        break;
      case 3:
        a.XorRR(rand_reg(), rand_reg());
        break;
      case 4:
        a.MovMR64(Reg::kRdi, static_cast<int32_t>(rng.Below(0x100) * 8), rand_reg());
        break;
      case 5:
        a.MovRM64(rand_reg(), Reg::kRdi, static_cast<int32_t>(rng.Below(0x100) * 8));
        break;
      case 6:
        a.Lea(rand_reg(), Reg::kRdi, static_cast<int>(Reg::kRcx), 2, rand_imm());
        break;
      case 7:
        a.ImulRRI(rand_reg(), rand_reg(), rand_imm());
        break;
      case 8:
        a.ShlRI(rand_reg(), static_cast<uint8_t>(rng.Below(16)));
        break;
      case 9:
        a.ShrRI(rand_reg(), static_cast<uint8_t>(rng.Below(16)));
        break;
      case 10:
        a.IncR(rand_reg());
        break;
      case 11:
        a.NegR(rand_reg());
        break;
    }
  }
  a.Ret();
  CheckEquivalence(a.Take(), /*compare_flags=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriterPropertyTest, ::testing::Range(0, 60));

}  // namespace
}  // namespace x86
