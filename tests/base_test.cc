// Tests for the base utilities.

#include <atomic>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/table.h"
#include "src/base/thread_pool.h"
#include "src/base/units.h"

namespace sb {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = NotFound("no such inode");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such inode");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = InvalidArgument("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kInvalidArgument);
}

Status FailsThrough() {
  SB_RETURN_IF_ERROR(Internal("inner"));
  return OkStatus();
}

TEST(StatusMacros, ReturnIfError) {
  EXPECT_EQ(FailsThrough().code(), ErrorCode::kInternal);
}

StatusOr<int> Doubles(StatusOr<int> in) {
  SB_ASSIGN_OR_RETURN(const int v, in);
  return v * 2;
}

TEST(StatusMacros, AssignOrReturn) {
  EXPECT_EQ(*Doubles(21), 42);
  EXPECT_FALSE(Doubles(Unavailable()).ok());
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Samples, MeanMinMax) {
  Samples s;
  s.Add(1);
  s.Add(2);
  s.Add(3);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Samples, Percentile) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
}

TEST(Samples, EmptySafe) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(Histogram, MeanAndCount) {
  Histogram h;
  h.Add(100);
  h.Add(300);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(Samples, SingleSamplePercentiles) {
  Samples s;
  s.Add(42.0);
  // Every percentile of a one-sample distribution is that sample.
  EXPECT_DOUBLE_EQ(s.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Samples, PercentileEndpoints) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  // p=0 is the minimum, p=100 the maximum; out-of-range p is clamped.
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(200), 100.0);
}

TEST(Histogram, EmptySafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
}

TEST(Histogram, SingleSamplePercentiles) {
  Histogram h;
  h.Add(100);
  // One sample: every percentile selects its (power-of-two) bucket, whose
  // midpoint representative is within 2x of the true value.
  const uint64_t p0 = h.Percentile(0);
  EXPECT_EQ(p0, h.Percentile(50));
  EXPECT_EQ(p0, h.Percentile(100));
  EXPECT_GE(p0, 64u);
  EXPECT_LE(p0, 200u);
}

TEST(Histogram, PercentileEndpointsOrdered) {
  Histogram h;
  for (uint64_t v = 1; v <= 1024; ++v) {
    h.Add(v);
  }
  // p=0 must read the smallest populated bucket, not an empty prefix.
  EXPECT_GE(h.Percentile(0), 1u);
  EXPECT_LE(h.Percentile(0), h.Percentile(50));
  EXPECT_LE(h.Percentile(50), h.Percentile(100));
}

TEST(Histogram, ValuesAboveMaxSaturateLastBucket) {
  Histogram h(/*max_value=*/256);
  h.Add(1ULL << 20);  // Far beyond max_value: clamps into the last bucket.
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(100), 256u);
  // The mean still uses the true value (only bucketing saturates).
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(1ULL << 20));
}

TEST(Logging, KvFormatsKeyEqualsValue) {
  std::ostringstream os;
  os << kv("server", 7) << " " << kv("timed_out", true);
  EXPECT_EQ(os.str(), "server=7 timed_out=1");
}

TEST(Logging, KvQuotesStringValues) {
  std::ostringstream os;
  os << kv("name", "kv-server");
  EXPECT_EQ(os.str(), "name=\"kv-server\"");
  std::ostringstream os2;
  const std::string s = "client";
  os2 << kv("proc", s);
  EXPECT_EQ(os2.str(), "proc=\"client\"");
}

TEST(Table, RendersAligned) {
  Table t({"op", "cycles"});
  t.AddRow({"VMFUNC", "134"});
  t.AddRow({"write to CR3", "186"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("VMFUNC"), std::string::npos);
  EXPECT_NE(s.find("186"), std::string::npos);
  EXPECT_EQ(s.find("VMFUNC") != std::string::npos, true);
}

TEST(Units, PageMath) {
  EXPECT_EQ(PageDown(0x1fff), 0x1000u);
  EXPECT_EQ(PageUp(0x1001), 0x2000u);
  EXPECT_TRUE(IsPageAligned(0x3000));
  EXPECT_FALSE(IsPageAligned(0x3001));
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  const size_t participants = pool.ParallelFor(kN, [&](size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_GE(participants, 1u);
  EXPECT_LE(participants, 5u);  // Workers + the calling thread.
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroWorkersFallsBackToSerial) {
  // A worker count of 0 is explicit "no threads": the calling thread runs
  // every index in order.
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  std::vector<int> order;
  const size_t participants =
      pool.ParallelFor(8, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(participants, 1u);
  const std::vector<int> expected{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, EmptyAndSingleItemJobs) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; }), 0u);
  int runs = 0;
  EXPECT_EQ(pool.ParallelFor(1, [&](size_t) { ++runs; }), 1u);
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, BackToBackJobsDoNotInterfere) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    const size_t n = 1 + static_cast<size_t>(round) * 7 % 97;
    pool.ParallelFor(n, [&](size_t i) { sum.fetch_add(i + 1, std::memory_order_relaxed); });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

}  // namespace
}  // namespace sb
