// The Section 6.5 storage stack as a runnable example: minisql (SQLite
// stand-in) -> xv6fs -> RAM disk in three processes, connected by SkyBridge.
// Runs a small CRUD session and prints what moved through the stack.
//
// Build & run:  ./build/examples/sqlite_stack_demo

#include <cstdio>
#include <string>

#include "src/apps/sqlite_stack.h"

int main() {
  apps::SqliteStackConfig config;
  config.transport = apps::StackTransport::kSkyBridge;
  config.preload_records = 100;
  auto stack = apps::SqliteStack::Create(config);
  if (!stack.ok()) {
    std::fprintf(stderr, "stack setup failed: %s\n", stack.status().ToString().c_str());
    return 1;
  }
  std::printf("stack up: minisql --SkyBridge--> xv6fs --SkyBridge--> ramdisk\n");
  std::printf("preloaded %llu rows into 'usertable'\n\n",
              static_cast<unsigned long long>(config.preload_records));

  // A little CRUD session (thread 0, charged on core 0).
  std::vector<uint8_t> row(100, 0x42);
  SB_CHECK((*stack)->Insert(0, 1000, row).ok());
  std::printf("INSERT key=1000        ok\n");
  auto fetched = (*stack)->Query(0, 1000);
  std::printf("SELECT key=1000        -> %zu bytes\n", fetched->size());
  row[0] = 0x43;
  SB_CHECK((*stack)->Update(0, 1000, row).ok());
  std::printf("UPDATE key=1000        ok\n");
  SB_CHECK((*stack)->Delete(0, 1000).ok());
  std::printf("DELETE key=1000        ok\n");
  std::printf("SELECT key=1000        -> %s\n\n",
              (*stack)->Query(0, 1000).ok() ? "found (?!)" : "not found (deleted)");

  // What the stack did underneath.
  const auto& db_stats = (*stack)->db().stats();
  const auto& fs_stats = (*stack)->fs().stats();
  std::printf("minisql:  %llu inserts, %llu updates, %llu queries (%llu row-cache hits)\n",
              static_cast<unsigned long long>(db_stats.inserts),
              static_cast<unsigned long long>(db_stats.updates),
              static_cast<unsigned long long>(db_stats.queries),
              static_cast<unsigned long long>(db_stats.row_cache_hits));
  std::printf("xv6fs:    %llu transactions, %llu block reads, %llu block writes\n",
              static_cast<unsigned long long>(fs_stats.transactions),
              static_cast<unsigned long long>(fs_stats.block_reads),
              static_cast<unsigned long long>(fs_stats.block_writes));
  std::printf("ramdisk:  %llu reads, %llu writes\n",
              static_cast<unsigned long long>((*stack)->ramdisk().reads()),
              static_cast<unsigned long long>((*stack)->ramdisk().writes()));
  std::printf("SkyBridge: %llu direct calls, %llu long (shared-buffer) calls\n",
              static_cast<unsigned long long>((*stack)->sky()->stats().direct_calls),
              static_cast<unsigned long long>((*stack)->sky()->stats().long_calls));
  std::printf("VM exits while serving: %llu\n",
              static_cast<unsigned long long>((*stack)->kernel().rootkernel()->exits_total()));
  return 0;
}
