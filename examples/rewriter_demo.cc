// The Section 5 defence as a runnable example: scan a binary for the VMFUNC
// pattern (0F 01 D4), classify every occurrence (C1/C2/C3), rewrite them
// away, and prove functional equivalence by executing both versions in the
// bundled x86-64 emulator.
//
// Build & run:  ./build/examples/rewriter_demo

#include <cstdio>

#include "src/x86/assembler.h"
#include "src/x86/emulator.h"
#include "src/x86/format.h"
#include "src/x86/rewriter.h"
#include "src/x86/scanner.h"

namespace {

void HexDump(const char* label, std::span<const uint8_t> bytes, size_t limit = 48) {
  std::printf("%s:", label);
  for (size_t i = 0; i < bytes.size() && i < limit; ++i) {
    std::printf("%s%02x", i % 16 == 0 ? "\n  " : " ", bytes[i]);
  }
  if (bytes.size() > limit) {
    std::printf(" ...");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A "malicious" program: a self-prepared VMFUNC (the SeCage-style attack),
  // plus inadvertent patterns in an immediate and a ModRM byte.
  x86::Assembler a;
  a.MovRI64(x86::Reg::kRax, 0);
  a.Vmfunc();                                              // C1: real VMFUNC.
  a.AddRI(x86::Reg::kRbx, 0x00d4010f);                     // C3: in immediate.
  a.Raw({0x48, 0x69, 0x0f, 0x01, 0xd4, 0x00, 0x00});       // C3: ModRM = 0x0F.
  a.MovRR64(x86::Reg::kRdx, x86::Reg::kRbx);
  a.Ret();
  const std::vector<uint8_t> code = a.Take();

  HexDump("original code", code);
  std::printf("\ndisassembly:\n%s", x86::Disassemble(code).c_str());
  const auto hits = x86::ScanForVmfunc(code);
  std::printf("\nscan: %zu occurrences of 0F 01 D4\n", hits.size());
  for (const auto& hit : hits) {
    std::printf("  offset %-4zu in instruction at %-4zu  (%s)\n", hit.pattern_off,
                hit.insn_off, std::string(x86::VmfuncOverlapName(hit.overlap)).c_str());
  }

  x86::RewriteConfig config;
  auto result = x86::RewriteVmfunc(code, config);
  if (!result.ok()) {
    std::fprintf(stderr, "rewrite failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nrewritten: %d NOPed, %d windows moved to the rewrite page (%zu bytes)\n",
              result->stats.nop_replaced, result->stats.windows_relocated,
              result->rewrite_page.size());
  HexDump("rewritten code", result->code);
  std::printf("\nrewritten disassembly:\n%s", x86::Disassemble(result->code).c_str());
  std::printf("\nrewrite page:\n%s", x86::Disassemble(result->rewrite_page).c_str());
  std::printf("\npattern occurrences after rewrite: code=%zu rewrite-page=%zu\n",
              x86::FindVmfuncBytes(result->code).size(),
              x86::FindVmfuncBytes(result->rewrite_page).size());

  // Execute both in the emulator and compare the architectural state. The
  // original stops at its VMFUNC; for the equivalence run we compare the
  // registers the surviving instructions produce.
  x86::Emulator original;
  original.LoadBytes(config.code_base, code);
  original.state().rip = config.code_base;
  const x86::StopInfo orig_stop = original.Run(10000);

  x86::Emulator rewritten;
  rewritten.LoadBytes(config.code_base, result->code);
  rewritten.LoadBytes(config.rewrite_page_base, result->rewrite_page);
  rewritten.state().rip = config.code_base;
  const x86::StopInfo new_stop = rewritten.Run(10000);

  std::printf("\noriginal run:  stopped with %s (VMFUNCs executed: %llu)\n",
              orig_stop.reason == x86::StopReason::kVmfunc ? "VMFUNC" : "RET",
              static_cast<unsigned long long>(orig_stop.vmfunc_count));
  std::printf("rewritten run: stopped with %s (VMFUNCs executed: %llu)\n",
              new_stop.reason == x86::StopReason::kRet ? "RET" : "?",
              static_cast<unsigned long long>(new_stop.vmfunc_count));
  std::printf("rewritten rbx = 0x%llx, rdx = 0x%llx (the computation survived)\n",
              static_cast<unsigned long long>(rewritten.state().reg(x86::Reg::kRbx)),
              static_cast<unsigned long long>(rewritten.state().reg(x86::Reg::kRdx)));
  return 0;
}
