// The Section 2 motivating workload as a runnable example: a client, an
// encryption server (real XTEA) and a KV store in three processes, wired
// over every transport the paper compares. Prints the per-operation latency
// so the Figure 2 -> Figure 8 story is visible in one run.
//
// Build & run:  ./build/examples/kvstore_pipeline

#include <cstdio>
#include <memory>

#include "src/apps/kv.h"
#include "src/base/units.h"
#include "src/mk/kernel.h"
#include "src/skybridge/skybridge.h"

namespace {

uint64_t Measure(apps::KvWiring wiring) {
  hw::MachineConfig mc;
  mc.num_cores = 4;
  mc.ram_bytes = 2 * sb::kGiB;
  auto machine = std::make_unique<hw::Machine>(mc);
  mk::KernelOptions options;
  options.boot_rootkernel = wiring == apps::KvWiring::kSkyBridge;
  auto kernel = std::make_unique<mk::Kernel>(*machine, mk::Sel4Profile(), options);
  SB_CHECK(kernel->Boot().ok());
  std::unique_ptr<skybridge::SkyBridge> sky;
  if (wiring == apps::KvWiring::kSkyBridge) {
    sky = std::make_unique<skybridge::SkyBridge>(*kernel);
  }
  apps::KvPipeline pipeline(*kernel, sky.get(), wiring);
  SB_CHECK(pipeline.Setup().ok());

  // Insert then query a handful of keys, warm, and time the steady state.
  const std::string value(64, 'v');
  for (int i = 0; i < 64; ++i) {
    SB_CHECK(pipeline.Insert("user" + std::to_string(i), value).ok());
  }
  hw::Core& core = pipeline.client_core();
  const uint64_t start = core.cycles();
  const int kOps = 256;
  for (int i = 0; i < kOps; ++i) {
    if (i % 2 == 0) {
      SB_CHECK(pipeline.Insert("user" + std::to_string(i % 64), value + "x").ok() ||
               true);  // Overwrites are fine.
    } else {
      auto v = pipeline.Query("user" + std::to_string(i % 64));
      SB_CHECK(v.ok());
    }
  }
  return (core.cycles() - start) / kOps;
}

}  // namespace

int main() {
  std::printf("KV pipeline: client -> encrypt (XTEA) -> kv-store, 64B values\n");
  std::printf("%-16s %14s\n", "wiring", "cycles/op");
  for (const apps::KvWiring wiring :
       {apps::KvWiring::kBaseline, apps::KvWiring::kDelay, apps::KvWiring::kIpc,
        apps::KvWiring::kIpcCrossCore, apps::KvWiring::kSkyBridge}) {
    std::printf("%-16s %14llu\n", std::string(apps::KvWiringName(wiring)).c_str(),
                static_cast<unsigned long long>(Measure(wiring)));
  }
  std::printf("\nSkyBridge sits between Baseline and kernel IPC: the kernel is gone\n");
  std::printf("from the path, only the VMFUNC gates and trampoline remain.\n");
  return 0;
}
