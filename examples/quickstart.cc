// Quickstart: the SkyBridge programming model end to end.
//
//   1. Boot the machine and the Subkernel; the Subkernel boots the
//      Rootkernel (self-virtualization) and every core drops to non-root.
//   2. A server process registers a handler (register_server).
//   3. A client process registers to the server (register_client).
//   4. The client calls the server with direct_server_call: two VMFUNCs, no
//      kernel — and we print the cycle count next to classic kernel IPC.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/mk/kernel.h"
#include "src/skybridge/skybridge.h"

int main() {
  // ---- 1. Hardware + Subkernel + Rootkernel ----
  hw::MachineConfig mc;
  mc.num_cores = 4;
  mc.ram_bytes = 2ULL << 30;
  hw::Machine machine(mc);

  mk::Kernel kernel(machine, mk::Sel4Profile());  // seL4-flavoured Subkernel.
  if (!kernel.Boot().ok()) {
    std::fprintf(stderr, "kernel boot failed\n");
    return 1;
  }
  std::printf("machine up: %d cores, Rootkernel resident, all cores in non-root mode\n",
              machine.num_cores());

  skybridge::SkyBridge sky(kernel);

  // ---- 2. The server ----
  mk::Process* server = kernel.CreateProcess("calc-server").value();
  const skybridge::ServerId sid =
      sky.RegisterServer(server, /*max_connections=*/8,
                         [](mk::CallEnv& env) {
                           // Runs in the *server's* address space on the
                           // caller's core: double the request tag.
                           return mk::Message(env.request.tag * 2);
                         })
          .value();
  std::printf("server registered: id=%llu\n", static_cast<unsigned long long>(sid));

  // ---- 3. The client ----
  mk::Process* client = kernel.CreateProcess("client").value();
  if (!sky.RegisterClient(client, sid).ok()) {
    std::fprintf(stderr, "client registration failed\n");
    return 1;
  }
  mk::Thread* thread = client->AddThread(0);
  (void)kernel.ContextSwitchTo(machine.core(0), client);

  // ---- 4. The call ----
  auto reply = sky.DirectServerCall(thread, sid, mk::Message(21));
  std::printf("direct_server_call(21) -> %llu\n",
              static_cast<unsigned long long>(reply->tag));

  // Measure it warm, next to kernel IPC between the same two processes.
  auto* ep = kernel
                 .CreateEndpoint(
                     server, [](mk::CallEnv& env) { return mk::Message(env.request.tag * 2); },
                     {})
                 .value();
  const mk::CapSlot slot = kernel.GrantEndpointCap(client, ep->id(), mk::kRightCall).value();
  hw::Core& core = machine.core(0);
  kernel.rootkernel()->ResetExitCounters();  // Count only steady-state exits.
  for (int i = 0; i < 100; ++i) {
    (void)sky.DirectServerCall(thread, sid, mk::Message(1));
    (void)kernel.IpcCall(thread, slot, mk::Message(1));
  }
  uint64_t t0 = core.cycles();
  for (int i = 0; i < 1000; ++i) {
    (void)sky.DirectServerCall(thread, sid, mk::Message(1));
  }
  const uint64_t sky_rt = (core.cycles() - t0) / 1000;
  t0 = core.cycles();
  for (int i = 0; i < 1000; ++i) {
    (void)kernel.IpcCall(thread, slot, mk::Message(1));
  }
  const uint64_t ipc_rt = (core.cycles() - t0) / 1000;

  std::printf("\nwarm roundtrip: SkyBridge %llu cycles vs kernel IPC %llu cycles (%.2fx)\n",
              static_cast<unsigned long long>(sky_rt),
              static_cast<unsigned long long>(ipc_rt),
              static_cast<double>(ipc_rt) / static_cast<double>(sky_rt));
  std::printf("VM exits during the calls: %llu (the Rootkernel never woke up)\n",
              static_cast<unsigned long long>(kernel.rootkernel()->exits_total()));
  return 0;
}
