// Table 1: the pollution of processor structures — PMU event deltas over 512
// KV operations for the Baseline, Delay and IPC wirings.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_table1_pollution", argc, argv);
  std::printf("== Table 1: processor-structure pollution over 512 KV ops (64B) ==\n");
  std::printf("Paper: IPC shows ~46x more i-cache misses and ~460x more d-TLB\n");
  std::printf("misses than Baseline/Delay.\n\n");

  // seL4 v10.0.0 (the paper's version) does not use PCID: every address
  // space switch flushes the non-global TLB entries, which is where the
  // indirect dTLB cost comes from.
  mk::KernelProfile profile = mk::Sel4Profile();
  profile.pcid_enabled = false;

  sb::Table table({"Name", "i-cache", "d-cache", "L2", "L3", "i-TLB", "d-TLB"});
  for (const apps::KvWiring wiring :
       {apps::KvWiring::kBaseline, apps::KvWiring::kDelay, apps::KvWiring::kIpc}) {
    bench::KvWorld kv = bench::MakeKvWorld(wiring, profile);
    // Warm up, then snapshot PMU around the measured 512 operations.
    (void)bench::RunKvOps(*kv.pipeline, 128, 64, /*seed=*/7);
    const hw::PmuCounters before = kv.pipeline->client_core().pmu();
    (void)bench::RunKvOps(*kv.pipeline, 512, 64, /*seed=*/8, /*warmup=*/false);
    const hw::PmuCounters delta = kv.pipeline->client_core().pmu() - before;
    table.AddRow({std::string(apps::KvWiringName(wiring)), sb::Table::Int(delta.icache_miss),
                  sb::Table::Int(delta.dcache_miss), sb::Table::Int(delta.l2_miss),
                  sb::Table::Int(delta.l3_miss), sb::Table::Int(delta.itlb_miss),
                  sb::Table::Int(delta.dtlb_miss)});
    const std::string prefix = std::string(apps::KvWiringName(wiring)) + ".";
    reporter.Add(prefix + "icache_misses", delta.icache_miss);
    reporter.Add(prefix + "dtlb_misses", delta.dtlb_miss);
    reporter.Add(prefix + "itlb_misses", delta.itlb_miss);
  }
  table.Print();
  return 0;
}
