// Table 4: throughput of the four basic SQLite3 operations (insert, update,
// query, delete) under ST-Server, MT-Server and SkyBridge configurations on
// the three microkernels.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/sqlite_stack.h"
#include "src/base/rng.h"
#include "src/base/table.h"

namespace {

constexpr uint64_t kPreload = 600;
constexpr int kOps = 150;

struct OpRates {
  double insert = 0;
  double update = 0;
  double query = 0;
  double del = 0;
};

OpRates Measure(mk::KernelKind kernel, apps::StackTransport transport) {
  apps::SqliteStackConfig config;
  config.kernel = kernel;
  config.transport = transport;
  config.preload_records = kPreload;
  config.num_client_threads = 1;
  // SQLite-like cache sizing: big enough to help, small enough that the
  // Zipfian tail still reaches the file system.
  config.db.row_cache_entries = 96;
  config.db.pager_cache_pages = 48;
  auto stack = apps::SqliteStack::Create(config);
  SB_CHECK(stack.ok()) << stack.status().ToString();

  apps::YcsbConfig wl;
  wl.record_count = kPreload;
  apps::YcsbWorkload workload(wl);
  sb::Rng zipf_rng(99);
  apps::ZipfianGenerator zipf(kPreload, 0.99, &zipf_rng);
  hw::Core& core = (*stack)->machine().core(0);
  OpRates rates;

  auto measure = [&](auto op) {
    const uint64_t start = core.cycles();
    for (int i = 0; i < kOps; ++i) {
      op(i);
    }
    return bench::OpsPerSecond(static_cast<double>(core.cycles() - start) / kOps);
  };

  // Warm the stack.
  for (int i = 0; i < 32; ++i) {
    SB_CHECK((*stack)->Query(0, zipf.Next()).ok());
    SB_CHECK((*stack)->Update(0, static_cast<uint64_t>(i), workload.ValueFor(0)).ok());
  }
  rates.insert = measure([&](int i) {
    SB_CHECK((*stack)->Insert(0, kPreload + 10 + static_cast<uint64_t>(i),
                              workload.ValueFor(static_cast<uint64_t>(i)))
                 .ok());
  });
  rates.update = measure([&](int i) {
    SB_CHECK((*stack)->Update(0, static_cast<uint64_t>(i) % kPreload,
                              workload.ValueFor(static_cast<uint64_t>(i)))
                 .ok());
  });
  rates.query = measure([&](int i) {
    SB_CHECK((*stack)->Query(0, zipf.Next()).ok());
  });
  rates.del = measure([&](int i) {
    SB_CHECK((*stack)->Delete(0, kPreload + 10 + static_cast<uint64_t>(i)).ok());
  });
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_table4_sqlite_ops", argc, argv);
  std::printf("== Table 4: SQLite operation throughput (ops/s, simulated 4 GHz) ==\n");
  std::printf("Paper (seL4): insert 4839/6001/11251, query 13246/14025/18610;\n");
  std::printf("SkyBridge speedups 32%%-405%% across kernels and operations.\n\n");

  for (const mk::KernelKind kernel :
       {mk::KernelKind::kSel4, mk::KernelKind::kFiasco, mk::KernelKind::kZircon}) {
    const OpRates st = Measure(kernel, apps::StackTransport::kIpcStServer);
    const OpRates mt = Measure(kernel, apps::StackTransport::kIpcMtServer);
    const OpRates sky = Measure(kernel, apps::StackTransport::kSkyBridge);

    std::printf("-- %s --\n", mk::ProfileFor(kernel).name.c_str());
    sb::Table table({"Operation", "ST-Server", "MT-Server", "SkyBridge", "Speedup vs MT"});
    auto row = [&](const char* name, double s, double m, double k) {
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.1f%%", 100.0 * (k / m - 1.0));
      table.AddRow({name, sb::Table::Fixed(s, 0), sb::Table::Fixed(m, 0),
                    sb::Table::Fixed(k, 0), speedup});
    };
    row("Insert", st.insert, mt.insert, sky.insert);
    row("Update", st.update, mt.update, sky.update);
    row("Query", st.query, mt.query, sky.query);
    row("Delete", st.del, mt.del, sky.del);
    const std::string prefix = mk::ProfileFor(kernel).name + ".";
    reporter.Add(prefix + "insert.skybridge_ops_per_s", sky.insert);
    reporter.Add(prefix + "query.skybridge_ops_per_s", sky.query);
    reporter.Add(prefix + "insert.mt_server_ops_per_s", mt.insert);
    reporter.Add(prefix + "query.mt_server_ops_per_s", mt.query);
    table.Print();
    std::printf("\n");
  }
  std::printf("(Query benefits least: minisql's row cache absorbs most reads, like\n");
  std::printf("SQLite's internal cache in the paper.)\n");
  return 0;
}
