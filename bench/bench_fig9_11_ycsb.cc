// Figures 9, 10, 11: YCSB-A throughput against client thread count for
// seL4, Fiasco.OC and Zircon under st / mt / SkyBridge configurations.
//
// The virtual-time executor runs the client threads concurrently on the
// 8-core machine; the DB lock and the xv6fs big lock serialize them, which
// is what makes throughput *fall* with more threads, as in the paper.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/sqlite_stack.h"
#include "src/base/table.h"
#include "src/sim/executor.h"

namespace {

constexpr uint64_t kRecords = 600;   // Paper: 10,000 (scaled for bench time).
constexpr int kOpsPerThread = 80;

double MeasureThroughput(mk::KernelKind kernel, apps::StackTransport transport, int threads,
                         apps::YcsbConfig base_wl = apps::YcsbA()) {
  apps::SqliteStackConfig config;
  config.kernel = kernel;
  config.transport = transport;
  config.preload_records = kRecords;
  config.num_client_threads = threads;
  // SQLite-like cache sizing (matches bench_table4): the Zipfian tail still
  // reaches the file system.
  config.db.row_cache_entries = 96;
  config.db.pager_cache_pages = 48;
  auto stack = apps::SqliteStack::Create(config);
  SB_CHECK(stack.ok()) << stack.status().ToString();

  apps::YcsbConfig wl = base_wl;
  wl.record_count = kRecords;

  sim::Executor exec((*stack)->machine());
  // Cores carry setup-time cycles; measure elapsed time from here.
  uint64_t base_time = 0;
  for (int c = 0; c < (*stack)->machine().num_cores(); ++c) {
    base_time = std::max(base_time, (*stack)->machine().core(c).cycles());
  }
  for (int c = 0; c < (*stack)->machine().num_cores(); ++c) {
    (*stack)->machine().core(c).SyncClockTo(base_time);
  }
  (*stack)->db_lock().Release(base_time);
  (*stack)->fs().big_lock().Release(base_time);
  std::vector<std::unique_ptr<apps::YcsbWorkload>> workloads;
  uint64_t total_ops = 0;
  for (int t = 0; t < threads; ++t) {
    apps::YcsbConfig thread_wl = wl;
    thread_wl.seed = wl.seed + static_cast<uint64_t>(t);
    workloads.push_back(std::make_unique<apps::YcsbWorkload>(thread_wl));
    apps::YcsbWorkload* workload = workloads.back().get();
    apps::SqliteStack* s = stack->get();
    sim::SimThread* thread = exec.AddThread(
        "client" + std::to_string(t), t % 8, [=, &total_ops](sim::SimThread& st) {
          SB_CHECK(s->RunYcsbOp(t, workload->NextOp(), *workload).ok());
          ++total_ops;
          return st.iterations() + 1 < kOpsPerThread;
        });
    thread->set_now(base_time);
  }
  exec.RunToCompletion();
  const double seconds = static_cast<double>(exec.max_time() - base_time) /
                         hw::DefaultCosts().cycles_per_second;
  return static_cast<double>(total_ops) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_fig9_11_ycsb", argc, argv);
  std::printf("== Figures 9-11: YCSB-A throughput (ops/s) vs client threads ==\n");
  std::printf("Paper (seL4, 1 thread): st 9627, mt 9660, SkyBridge 17575; throughput\n");
  std::printf("FALLS with threads (DB + FS big-lock serialization).\n\n");

  const int kThreads[] = {1, 2, 4, 8};
  for (const mk::KernelKind kernel :
       {mk::KernelKind::kSel4, mk::KernelKind::kFiasco, mk::KernelKind::kZircon}) {
    std::printf("-- %s (Figure %d) --\n", mk::ProfileFor(kernel).name.c_str(),
                kernel == mk::KernelKind::kSel4     ? 9
                : kernel == mk::KernelKind::kFiasco ? 10
                                                    : 11);
    sb::Table table({"Config", "1-thread", "2-thread", "4-thread", "8-thread"});
    const apps::StackTransport kTransports[] = {apps::StackTransport::kIpcStServer,
                                                apps::StackTransport::kIpcMtServer,
                                                apps::StackTransport::kSkyBridge};
    const char* kNames[] = {"st", "mt", "SkyBridge"};
    for (int i = 0; i < 3; ++i) {
      std::vector<std::string> row{std::string(mk::ProfileFor(kernel).name) + "-" + kNames[i]};
      for (const int threads : kThreads) {
        const double tput = MeasureThroughput(kernel, kTransports[i], threads);
        reporter.Add(mk::ProfileFor(kernel).name + "." + kNames[i] + "." +
                         std::to_string(threads) + "t.ops_per_s",
                     tput);
        row.push_back(sb::Table::Fixed(tput, 0));
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("\n");
  }

  // The paper: "All workloads have similar results and we only report
  // YCSB-A" — spot-check B (95% reads) and C (read-only) on seL4.
  std::printf("-- YCSB-B / YCSB-C spot check (seL4, 1 thread, ops/s) --\n");
  sb::Table bc({"Workload", "mt", "SkyBridge", "speedup"});
  for (const auto& [name, wl] :
       {std::pair<const char*, apps::YcsbConfig>{"YCSB-B", apps::YcsbB()},
        std::pair<const char*, apps::YcsbConfig>{"YCSB-C", apps::YcsbC()}}) {
    const double mt =
        MeasureThroughput(mk::KernelKind::kSel4, apps::StackTransport::kIpcMtServer, 1, wl);
    const double sky =
        MeasureThroughput(mk::KernelKind::kSel4, apps::StackTransport::kSkyBridge, 1, wl);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", sky / mt);
    bc.AddRow({name, sb::Table::Fixed(mt, 0), sb::Table::Fixed(sky, 0), speedup});
  }
  bc.Print();
  return 0;
}
