// Table 5: virtualization overhead — SQLite/YCSB-A throughput in the native
// and Rootkernel environments (without SkyBridge) and the number of VM exits
// observed while the workload runs.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/sqlite_stack.h"
#include "src/base/table.h"
#include "src/sim/executor.h"

namespace {

constexpr uint64_t kRecords = 600;
constexpr int kOpsPerThread = 100;

struct Row {
  double throughput = 0;
  uint64_t vm_exits = 0;
};

Row Measure(bool rootkernel, int threads) {
  apps::SqliteStackConfig config;
  config.transport = apps::StackTransport::kIpcMtServer;
  config.boot_rootkernel = rootkernel;
  config.preload_records = kRecords;
  config.num_client_threads = threads;
  auto stack = apps::SqliteStack::Create(config);
  SB_CHECK(stack.ok()) << stack.status().ToString();

  if (rootkernel) {
    (*stack)->kernel().rootkernel()->ResetExitCounters();
  }

  apps::YcsbConfig wl = apps::YcsbA();
  wl.record_count = kRecords;
  sim::Executor exec((*stack)->machine());
  // Cores carry setup-time cycles; measure elapsed time from here.
  uint64_t base_time = 0;
  for (int c = 0; c < (*stack)->machine().num_cores(); ++c) {
    base_time = std::max(base_time, (*stack)->machine().core(c).cycles());
  }
  for (int c = 0; c < (*stack)->machine().num_cores(); ++c) {
    (*stack)->machine().core(c).SyncClockTo(base_time);
  }
  (*stack)->db_lock().Release(base_time);
  (*stack)->fs().big_lock().Release(base_time);
  std::vector<std::unique_ptr<apps::YcsbWorkload>> workloads;
  uint64_t total_ops = 0;
  for (int t = 0; t < threads; ++t) {
    apps::YcsbConfig thread_wl = wl;
    thread_wl.seed = wl.seed + static_cast<uint64_t>(t);
    workloads.push_back(std::make_unique<apps::YcsbWorkload>(thread_wl));
    apps::YcsbWorkload* workload = workloads.back().get();
    apps::SqliteStack* s = stack->get();
    sim::SimThread* thread = exec.AddThread(
        "client" + std::to_string(t), t % 8, [=, &total_ops](sim::SimThread& st) {
          SB_CHECK(s->RunYcsbOp(t, workload->NextOp(), *workload).ok());
          ++total_ops;
          return st.iterations() + 1 < kOpsPerThread;
        });
    thread->set_now(base_time);
  }
  exec.RunToCompletion();

  Row row;
  row.throughput =
      static_cast<double>(total_ops) /
      (static_cast<double>(exec.max_time() - base_time) / hw::DefaultCosts().cycles_per_second);
  row.vm_exits = rootkernel ? (*stack)->kernel().rootkernel()->exits_total() : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_table5_virt_overhead", argc, argv);
  std::printf("== Table 5: SQLite/YCSB-A throughput, native vs Rootkernel (no SkyBridge) ==\n");
  std::printf("Paper: 9745 vs 9694 ops/s (1 thread), 1466 vs 1412 (8 threads), 0 VM exits.\n\n");

  sb::Table table({"Workload", "Native (ops/s)", "Rootkernel (ops/s)", "Overhead", "#VM exits"});
  for (const int threads : {1, 8}) {
    const Row native = Measure(false, threads);
    const Row virt = Measure(true, threads);
    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "%.2f%%",
                  100.0 * (1.0 - virt.throughput / native.throughput));
    table.AddRow({"YCSB-A " + std::to_string(threads) + " thread",
                  sb::Table::Fixed(native.throughput, 0), sb::Table::Fixed(virt.throughput, 0),
                  overhead, sb::Table::Int(virt.vm_exits)});
    const std::string prefix = "ycsb_a_" + std::to_string(threads) + "t.";
    reporter.Add(prefix + "native_ops_per_s", native.throughput);
    reporter.Add(prefix + "rootkernel_ops_per_s", virt.throughput);
    reporter.Add(prefix + "vm_exits", virt.vm_exits);
  }
  table.Print();
  std::printf("\nNo VM exits in the steady state: CR3 writes and interrupts stay in\n");
  std::printf("non-root mode and the 1 GiB base EPT never faults (Section 4.1).\n");
  return 0;
}
