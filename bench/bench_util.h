// Shared helpers for the benchmark binaries.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/kv.h"
#include "src/base/telemetry/metrics.h"
#include "src/mk/kernel.h"
#include "src/skybridge/skybridge.h"

namespace bench {

// A booted machine + kernel (+ optional Rootkernel/SkyBridge).
struct World {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<mk::Kernel> kernel;
  std::unique_ptr<skybridge::SkyBridge> sky;
};

World MakeWorld(mk::KernelProfile profile, bool rootkernel, bool skybridge,
                int cores = 8);

// A KV pipeline world for the Figure 2/8 and Table 1 benchmarks.
struct KvWorld {
  World world;
  std::unique_ptr<apps::KvPipeline> pipeline;
};

KvWorld MakeKvWorld(apps::KvWiring wiring, mk::KernelProfile profile = mk::Sel4Profile());

// Runs `ops` 50/50 insert/query KV operations with the given key/value size;
// returns average cycles per operation (measured on the client core).
uint64_t RunKvOps(apps::KvPipeline& pipeline, int ops, size_t kv_len, uint64_t seed = 1,
                  bool warmup = true);

// ops/s at the simulated 4 GHz from cycles/op.
double OpsPerSecond(double cycles_per_op);

std::string Humanize(double v);

// Machine-readable bench output. Every bench main constructs one:
//
//   int main(int argc, char** argv) {
//     bench::JsonReporter reporter("bench_fig7_ipc_breakdown", argc, argv);
//     ...
//     reporter.Add("skybridge.cycles_per_op", total);
//     reporter.AddRegistry(world.machine->telemetry());
//   }
//
// If `--json <path>` was passed, the destructor writes one JSON object
//   {"bench": <name>, "metrics": {...}, "registry": {...}}
// to <path>; without the flag the reporter is inert. scripts/run_all.sh
// forwards --json per bench and merges the files into BENCH_results.json.
class JsonReporter {
 public:
  JsonReporter(std::string bench_name, int argc, char** argv);
  ~JsonReporter();

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& name, double value);
  void Add(const std::string& name, uint64_t value);
  // Adds a top-level field next to "bench"/"metrics" — provenance that makes
  // the merged BENCH_results.json record self-describing (generator seed,
  // offered loads...). `json_literal` is written verbatim, so quote strings.
  void Stamp(const std::string& key, const std::string& json_literal);
  // Attaches a snapshot of the registry (replaces any previous snapshot).
  void AddRegistry(const sb::telemetry::Registry& registry);
  // Same, from a pre-rendered Registry::SnapshotJson() string — for benches
  // whose world is torn down before the reporter writes.
  void AddRegistryJson(std::string registry_json);

  // Writes the file now (also called by the destructor; idempotent).
  void Write();

 private:
  std::string bench_name_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> metrics_;  // name -> JSON literal.
  std::vector<std::pair<std::string, std::string>> stamps_;   // Top-level fields.
  std::string registry_json_;
  bool written_ = false;
};

}  // namespace bench

#endif  // BENCH_BENCH_UTIL_H_
