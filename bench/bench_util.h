// Shared helpers for the benchmark binaries.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>

#include "src/apps/kv.h"
#include "src/mk/kernel.h"
#include "src/skybridge/skybridge.h"

namespace bench {

// A booted machine + kernel (+ optional Rootkernel/SkyBridge).
struct World {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<mk::Kernel> kernel;
  std::unique_ptr<skybridge::SkyBridge> sky;
};

World MakeWorld(mk::KernelProfile profile, bool rootkernel, bool skybridge,
                int cores = 8);

// A KV pipeline world for the Figure 2/8 and Table 1 benchmarks.
struct KvWorld {
  World world;
  std::unique_ptr<apps::KvPipeline> pipeline;
};

KvWorld MakeKvWorld(apps::KvWiring wiring, mk::KernelProfile profile = mk::Sel4Profile());

// Runs `ops` 50/50 insert/query KV operations with the given key/value size;
// returns average cycles per operation (measured on the client core).
uint64_t RunKvOps(apps::KvPipeline& pipeline, int ops, size_t kv_len, uint64_t seed = 1,
                  bool warmup = true);

// ops/s at the simulated 4 GHz from cycles/op.
double OpsPerSecond(double cycles_per_op);

std::string Humanize(double v);

}  // namespace bench

#endif  // BENCH_BENCH_UTIL_H_
