// Ablation: long IPC (Sections 4.4 and 6.3). Messages beyond the register
// capacity travel through per-connection shared-buffer slices. The main sweep
// compares the three copy disciplines at each message size:
//
//   two-copy   legacy: client copies into the buffer, server consumes an
//              owned copy, the reply is copied in and read back out.
//   one-copy   default: the request is copied in once; the server consumes a
//              borrowed view and the client receives a borrowed reply view.
//   zero-copy  in-place API: the client constructs the request directly in
//              its slice (AcquireSendBuffer) and the server replies in place.
//
// A second table keeps the classic SkyBridge-vs-seL4 comparison.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"

namespace {

constexpr int kIters = 2000;

struct ModeResult {
  uint64_t cycles_per_op = 0;
  uint64_t copy_cycles_per_op = 0;
};

enum class CopyMode { kTwoCopy, kOneCopy, kZeroCopy };

const char* ModeKey(CopyMode mode) {
  switch (mode) {
    case CopyMode::kTwoCopy:
      return "two_copy";
    case CopyMode::kOneCopy:
      return "one_copy";
    case CopyMode::kZeroCopy:
      return "zero_copy";
  }
  return "?";
}

bench::World MakeModeWorld(CopyMode mode) {
  bench::World world = bench::MakeWorld(mk::Sel4Profile(), true, false);
  skybridge::SkyBridgeConfig config;
  config.legacy_two_copy = mode == CopyMode::kTwoCopy;
  world.sky = std::make_unique<skybridge::SkyBridge>(*world.kernel, config);
  return world;
}

ModeResult MeasureMode(bench::World& world, CopyMode mode, size_t bytes) {
  static int next_pair = 0;
  auto* client = world.kernel->CreateProcess("mc" + std::to_string(next_pair)).value();
  auto* server = world.kernel->CreateProcess("ms" + std::to_string(next_pair)).value();
  ++next_pair;
  // Zero-copy echoes the borrowed slice view (reply already in place); the
  // copied modes return an owned reply so the reply write is actually paid.
  mk::Handler handler = mode == CopyMode::kZeroCopy
                            ? mk::Handler([](mk::CallEnv& env) { return env.request; })
                            : mk::Handler([](mk::CallEnv& env) { return env.request.ToOwned(); });
  const skybridge::ServerId sid = world.sky->RegisterServer(server, 8, std::move(handler)).value();
  SB_CHECK(world.sky->RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  SB_CHECK(world.kernel->ContextSwitchTo(world.machine->core(0), client).ok());

  const mk::Message msg(1, std::vector<uint8_t>(bytes, 0x5a));
  if (mode == CopyMode::kZeroCopy) {
    auto buf = world.sky->AcquireSendBuffer(thread, sid);
    SB_CHECK(buf.ok() && buf->size() >= bytes);
    std::fill_n(buf->data(), bytes, 0x5a);
  }
  auto call_once = [&](mk::CostBreakdown* bd) {
    if (mode == CopyMode::kZeroCopy) {
      SB_CHECK(world.sky->DirectServerCallInPlace(thread, sid, 1, bytes, bd).ok());
    } else {
      SB_CHECK(world.sky->DirectServerCall(thread, sid, msg, bd).ok());
    }
  };
  for (int i = 0; i < 100; ++i) {
    call_once(nullptr);
  }
  hw::Core& core = world.machine->core(0);
  mk::CostBreakdown bd;
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    call_once(&bd);
  }
  ModeResult result;
  result.cycles_per_op = (core.cycles() - start) / kIters;
  result.copy_cycles_per_op = bd.copy / kIters;
  return result;
}

uint64_t MeasureSky(bench::World& world, size_t bytes) {
  static int next_pair = 0;
  auto* client = world.kernel->CreateProcess("c" + std::to_string(next_pair)).value();
  auto* server = world.kernel->CreateProcess("s" + std::to_string(next_pair)).value();
  ++next_pair;
  const skybridge::ServerId sid =
      world.sky->RegisterServer(server, 8, [](mk::CallEnv& env) { return env.request; })
          .value();
  SB_CHECK(world.sky->RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  SB_CHECK(world.kernel->ContextSwitchTo(world.machine->core(0), client).ok());
  const mk::Message msg(1, std::vector<uint8_t>(bytes, 0x5a));
  for (int i = 0; i < 100; ++i) {
    SB_CHECK(world.sky->DirectServerCall(thread, sid, msg).ok());
  }
  hw::Core& core = world.machine->core(0);
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(world.sky->DirectServerCall(thread, sid, msg).ok());
  }
  return (core.cycles() - start) / kIters;
}

uint64_t MeasureIpc(bench::World& world, size_t bytes) {
  static int next_pair = 0;
  auto* client = world.kernel->CreateProcess("ic" + std::to_string(next_pair)).value();
  auto* server = world.kernel->CreateProcess("is" + std::to_string(next_pair)).value();
  ++next_pair;
  auto* ep =
      world.kernel->CreateEndpoint(server, [](mk::CallEnv& env) { return env.request; }, {})
          .value();
  const mk::CapSlot slot =
      world.kernel->GrantEndpointCap(client, ep->id(), mk::kRightCall).value();
  mk::Thread* thread = client->AddThread(0);
  SB_CHECK(world.kernel->ContextSwitchTo(world.machine->core(0), client).ok());
  const mk::Message msg(1, std::vector<uint8_t>(bytes, 0x5a));
  for (int i = 0; i < 100; ++i) {
    SB_CHECK(world.kernel->IpcCall(thread, slot, msg).ok());
  }
  hw::Core& core = world.machine->core(0);
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(world.kernel->IpcCall(thread, slot, msg).ok());
  }
  return (core.cycles() - start) / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_ablation_long_ipc", argc, argv);
  std::printf("== Ablation: long IPC — copy disciplines x message size ==\n");
  std::printf("Register capacity is 64 B; larger transfers move data.\n\n");

  constexpr CopyMode kModes[] = {CopyMode::kTwoCopy, CopyMode::kOneCopy, CopyMode::kZeroCopy};
  constexpr size_t kSizes[] = {64, 256, 1024, 4096, 16384, 65536};

  bench::World worlds[] = {MakeModeWorld(CopyMode::kTwoCopy), MakeModeWorld(CopyMode::kOneCopy),
                           MakeModeWorld(CopyMode::kZeroCopy)};

  uint64_t copy_cycles[3][6] = {};
  sb::Table table({"Message size", "two-copy (cyc)", "copy", "one-copy (cyc)", "copy",
                   "zero-copy (cyc)", "copy"});
  for (size_t s = 0; s < std::size(kSizes); ++s) {
    const size_t bytes = kSizes[s];
    std::vector<std::string> row = {std::to_string(bytes) + " B"};
    for (size_t m = 0; m < std::size(kModes); ++m) {
      const ModeResult r = MeasureMode(worlds[m], kModes[m], bytes);
      copy_cycles[m][s] = r.copy_cycles_per_op;
      const std::string prefix =
          std::string(ModeKey(kModes[m])) + "." + std::to_string(bytes) + "B.";
      reporter.Add(prefix + "cycles_per_op", r.cycles_per_op);
      reporter.Add(prefix + "copy_cycles", r.copy_cycles_per_op);
      row.push_back(sb::Table::Int(r.cycles_per_op));
      row.push_back(sb::Table::Int(r.copy_cycles_per_op));
    }
    table.AddRow(row);
  }
  table.Print();

  // Acceptance: the copy phase must shrink monotonically with the discipline
  // at every size that actually uses the shared buffer, and the in-place path
  // must eliminate >= 90% of the legacy copy-phase cycles at 64 KiB.
  for (size_t s = 0; s < std::size(kSizes); ++s) {
    if (kSizes[s] < 4096) {
      continue;
    }
    SB_CHECK(copy_cycles[2][s] <= copy_cycles[1][s]);
    SB_CHECK(copy_cycles[1][s] <= copy_cycles[0][s]);
  }
  SB_CHECK(copy_cycles[2][5] * 10 <= copy_cycles[0][5]);

  // Per-mode skybridge.phase.copy histograms tell the same story: the
  // in-place world never records a copied cycle, and the one-copy world's
  // worst call copies less than the legacy world's.
  for (size_t m = 0; m < std::size(kModes); ++m) {
    auto& hist = worlds[m].machine->telemetry().GetHistogram("skybridge.phase.copy");
    const std::string prefix = std::string(ModeKey(kModes[m])) + ".phase_copy.";
    reporter.Add(prefix + "mean", hist.Mean());
    reporter.Add(prefix + "max", hist.Max());
  }
  auto& two_hist = worlds[0].machine->telemetry().GetHistogram("skybridge.phase.copy");
  auto& one_hist = worlds[1].machine->telemetry().GetHistogram("skybridge.phase.copy");
  auto& zero_hist = worlds[2].machine->telemetry().GetHistogram("skybridge.phase.copy");
  SB_CHECK(zero_hist.Max() == 0);
  SB_CHECK(one_hist.Max() <= two_hist.Max());

  std::printf("\n== SkyBridge vs seL4 kernel IPC ==\n\n");
  bench::World sky_world = bench::MakeWorld(mk::Sel4Profile(), true, true);
  bench::World ipc_world = bench::MakeWorld(mk::Sel4Profile(), false, false);
  sb::Table cmp({"Message size", "SkyBridge (cycles)", "seL4 IPC (cycles)", "ratio"});
  for (const size_t bytes : {size_t{0}, size_t{64}, size_t{256}, size_t{1024}, size_t{4096},
                             size_t{16384}}) {
    const uint64_t sky = MeasureSky(sky_world, bytes);
    const uint64_t ipc = MeasureIpc(ipc_world, bytes);
    reporter.Add("skybridge." + std::to_string(bytes) + "B.cycles_per_op", sky);
    reporter.Add("sel4_ipc." + std::to_string(bytes) + "B.cycles_per_op", ipc);
    cmp.AddRow({std::to_string(bytes) + " B", sb::Table::Int(sky), sb::Table::Int(ipc),
                sb::Table::Fixed(static_cast<double>(ipc) / static_cast<double>(sky), 2)});
  }
  cmp.Print();
  reporter.AddRegistry(sky_world.machine->telemetry());
  std::printf("\nControl transfer dominates small messages; the in-place path removes\n");
  std::printf("the remaining data movement for large ones (paper Section 6.3).\n");
  return 0;
}
