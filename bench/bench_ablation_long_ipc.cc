// Ablation: long IPC (Section 4.4). Messages beyond the register capacity
// travel through per-connection shared buffers (SkyBridge) or kernel copies
// (classic IPC). Sweeps the message size to show where data movement takes
// over from control transfer.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"

namespace {

constexpr int kIters = 5000;

uint64_t MeasureSky(bench::World& world, size_t bytes) {
  static int next_pair = 0;
  auto* client = world.kernel->CreateProcess("c" + std::to_string(next_pair)).value();
  auto* server = world.kernel->CreateProcess("s" + std::to_string(next_pair)).value();
  ++next_pair;
  const skybridge::ServerId sid =
      world.sky->RegisterServer(server, 8, [](mk::CallEnv& env) { return env.request; })
          .value();
  SB_CHECK(world.sky->RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  SB_CHECK(world.kernel->ContextSwitchTo(world.machine->core(0), client).ok());
  const mk::Message msg(1, std::vector<uint8_t>(bytes, 0x5a));
  for (int i = 0; i < 100; ++i) {
    SB_CHECK(world.sky->DirectServerCall(thread, sid, msg).ok());
  }
  hw::Core& core = world.machine->core(0);
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(world.sky->DirectServerCall(thread, sid, msg).ok());
  }
  return (core.cycles() - start) / kIters;
}

uint64_t MeasureIpc(bench::World& world, size_t bytes) {
  static int next_pair = 0;
  auto* client = world.kernel->CreateProcess("ic" + std::to_string(next_pair)).value();
  auto* server = world.kernel->CreateProcess("is" + std::to_string(next_pair)).value();
  ++next_pair;
  auto* ep =
      world.kernel->CreateEndpoint(server, [](mk::CallEnv& env) { return env.request; }, {})
          .value();
  const mk::CapSlot slot =
      world.kernel->GrantEndpointCap(client, ep->id(), mk::kRightCall).value();
  mk::Thread* thread = client->AddThread(0);
  SB_CHECK(world.kernel->ContextSwitchTo(world.machine->core(0), client).ok());
  const mk::Message msg(1, std::vector<uint8_t>(bytes, 0x5a));
  for (int i = 0; i < 100; ++i) {
    SB_CHECK(world.kernel->IpcCall(thread, slot, msg).ok());
  }
  hw::Core& core = world.machine->core(0);
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(world.kernel->IpcCall(thread, slot, msg).ok());
  }
  return (core.cycles() - start) / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_ablation_long_ipc", argc, argv);
  std::printf("== Ablation: long IPC — shared buffers vs kernel copies (seL4) ==\n");
  std::printf("Register capacity is 64 B; larger transfers move data.\n\n");

  bench::World sky_world = bench::MakeWorld(mk::Sel4Profile(), true, true);
  bench::World ipc_world = bench::MakeWorld(mk::Sel4Profile(), false, false);

  sb::Table table({"Message size", "SkyBridge (cycles)", "seL4 IPC (cycles)", "ratio"});
  for (const size_t bytes : {size_t{0}, size_t{64}, size_t{256}, size_t{1024}, size_t{4096},
                             size_t{16384}}) {
    const uint64_t sky = MeasureSky(sky_world, bytes);
    const uint64_t ipc = MeasureIpc(ipc_world, bytes);
    reporter.Add("skybridge." + std::to_string(bytes) + "B.cycles_per_op", sky);
    reporter.Add("sel4_ipc." + std::to_string(bytes) + "B.cycles_per_op", ipc);
    table.AddRow({std::to_string(bytes) + " B", sb::Table::Int(sky), sb::Table::Int(ipc),
                  sb::Table::Fixed(static_cast<double>(ipc) / static_cast<double>(sky), 2)});
  }
  table.Print();
  reporter.AddRegistry(sky_world.machine->telemetry());
  std::printf("\nControl transfer dominates small messages (max ratio); data movement\n");
  std::printf("dominates large ones, where both sides converge (paper Figure 8 trend).\n");
  return 0;
}
