// Ablation: what the 1 GiB huge-page base EPT buys (Section 4.1).
//
// Compares the Rootkernel's eager 1 GiB base EPT against a lazy 4 KiB base
// EPT on (a) EPT violations taken while a process touches fresh memory and
// (b) the memory accesses a 2-D page walk costs after the TLB misses.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/logging.h"
#include "src/base/table.h"
#include "src/base/units.h"
#include "src/hw/machine.h"
#include "src/hw/paging.h"
#include "src/vmm/rootkernel.h"

namespace {

struct Result {
  uint64_t vm_exits = 0;
  uint64_t walk_accesses = 0;  // Memory accesses per cold translation.
  uint64_t cycles = 0;
};

Result Measure(bool huge_pages) {
  hw::MachineConfig mc;
  mc.num_cores = 1;
  mc.ram_bytes = 4 * sb::kGiB;
  hw::Machine machine(mc);
  vmm::RootkernelConfig config;
  if (!huge_pages) {
    config.base_ept_page_size = sb::kPageSize;
    config.lazy_base_ept = true;
  }
  auto rk = vmm::Rootkernel::Boot(machine, config);
  SB_CHECK(rk.ok());

  hw::FrameAllocator frames(64 * sb::kMiB, 512 * sb::kMiB);
  auto as = hw::AddressSpace::Create(machine.mem(), frames, 1);
  SB_CHECK(as.ok());
  const int kPages = 512;
  for (int i = 0; i < kPages; ++i) {
    auto frame = frames.Alloc(machine.mem());
    SB_CHECK(frame.ok());
    SB_CHECK((*as)->Map(0x400000 + static_cast<uint64_t>(i) * sb::kPageSize, *frame,
                        sb::kPageSize, hw::PageFlags{})
                 .ok());
  }
  hw::Core& core = machine.core(0);
  core.WriteCr3((*as)->root_gpa(), 1, false);
  (*rk)->ResetExitCounters();

  const uint64_t accesses_before = core.pmu().mem_accesses;
  const uint64_t cycles_before = core.cycles();
  for (int i = 0; i < kPages; ++i) {
    SB_CHECK(core.ReadVirtU64(0x400000 + static_cast<uint64_t>(i) * sb::kPageSize).ok());
  }
  Result result;
  result.vm_exits = (*rk)->exits_total();
  result.walk_accesses = (core.pmu().mem_accesses - accesses_before) / kPages;
  result.cycles = (core.cycles() - cycles_before) / kPages;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_ablation_ept_pages", argc, argv);
  std::printf("== Ablation: 1 GiB base-EPT pages vs lazy 4 KiB pages ==\n");
  std::printf("(cold access to 512 fresh pages through the 2-D walk)\n\n");

  const Result huge = Measure(true);
  const Result small = Measure(false);
  reporter.Add("huge_1gib.vm_exits", huge.vm_exits);
  reporter.Add("huge_1gib.cycles_per_access", huge.cycles);
  reporter.Add("lazy_4kib.vm_exits", small.vm_exits);
  reporter.Add("lazy_4kib.cycles_per_access", small.cycles);

  sb::Table table({"Base EPT", "VM exits", "mem accesses / cold access", "cycles / access"});
  table.AddRow({"1 GiB eager (SkyBridge)", sb::Table::Int(huge.vm_exits),
                sb::Table::Int(huge.walk_accesses), sb::Table::Int(huge.cycles)});
  table.AddRow({"4 KiB lazy", sb::Table::Int(small.vm_exits),
                sb::Table::Int(small.walk_accesses), sb::Table::Int(small.cycles)});
  table.Print();
  std::printf("\nThe huge-page design removes every EPT violation and shortens the EPT\n");
  std::printf("leg of the 2-D walk (2 reads/level vs 4) — Section 4.1's two claims.\n");
  return 0;
}
