// Extension (paper Section 10, future work #1): SkyBridge on a monolithic
// kernel. Processes on a Linux-style kernel normally talk through pipe/UDS
// IPC — two copies through the kernel, a scheduler wakeup and (post-Meltdown)
// KPTI page-table switches on every crossing. SkyBridge replaces all of that
// with two VMFUNCs.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"

namespace {

constexpr int kIters = 50000;

uint64_t MeasurePipeIpc(bench::World& world) {
  mk::Kernel& kernel = *world.kernel;
  auto* client = kernel.CreateProcess("writer").value();
  auto* server = kernel.CreateProcess("reader").value();
  auto* ep =
      kernel.CreateEndpoint(server, [](mk::CallEnv& env) { return env.request; }, {}).value();
  const mk::CapSlot slot = kernel.GrantEndpointCap(client, ep->id(), mk::kRightCall).value();
  mk::Thread* thread = client->AddThread(0);
  SB_CHECK(kernel.ContextSwitchTo(world.machine->core(0), client).ok());

  const mk::Message msg(1, std::vector<uint8_t>(128, 7));  // Typical small RPC.
  for (int i = 0; i < 200; ++i) {
    SB_CHECK(kernel.IpcCall(thread, slot, msg).ok());
  }
  hw::Core& core = world.machine->core(0);
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(kernel.IpcCall(thread, slot, msg).ok());
  }
  return (core.cycles() - start) / kIters;
}

uint64_t MeasureSkyBridge(bench::World& world) {
  auto* client = world.kernel->CreateProcess("client").value();
  auto* server = world.kernel->CreateProcess("server").value();
  const skybridge::ServerId sid =
      world.sky->RegisterServer(server, 8, [](mk::CallEnv& env) { return env.request; })
          .value();
  SB_CHECK(world.sky->RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  SB_CHECK(world.kernel->ContextSwitchTo(world.machine->core(0), client).ok());

  const mk::Message msg(1, std::vector<uint8_t>(128, 7));
  for (int i = 0; i < 200; ++i) {
    SB_CHECK(world.sky->DirectServerCall(thread, sid, msg).ok());
  }
  hw::Core& core = world.machine->core(0);
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(world.sky->DirectServerCall(thread, sid, msg).ok());
  }
  return (core.cycles() - start) / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_ext_monolithic", argc, argv);
  std::printf("== Extension (Section 10): SkyBridge on a monolithic (Linux-style) kernel ==\n");
  std::printf("Pipe-style IPC: 2 copies + scheduler wakeup + KPTI on every crossing.\n\n");

  bench::World pipe_world = bench::MakeWorld(mk::LinuxProfile(), false, false);
  const uint64_t pipe_rt = MeasurePipeIpc(pipe_world);

  bench::World sky_world = bench::MakeWorld(mk::LinuxProfile(), true, true);
  const uint64_t sky_rt = MeasureSkyBridge(sky_world);
  reporter.Add("pipe_ipc.cycles_per_op", pipe_rt);
  reporter.Add("skybridge.cycles_per_op", sky_rt);
  reporter.AddRegistry(sky_world.machine->telemetry());

  sb::Table table({"Transport", "Roundtrip (cycles)", "Roundtrip (us @4GHz)"});
  table.AddRow({"pipe-style kernel IPC", sb::Table::Int(pipe_rt),
                sb::Table::Fixed(static_cast<double>(pipe_rt) / 4000.0, 2)});
  table.AddRow({"SkyBridge direct call", sb::Table::Int(sky_rt),
                sb::Table::Fixed(static_cast<double>(sky_rt) / 4000.0, 2)});
  table.Print();
  std::printf("\nimprovement: %.2fx (ratio %.2fx) — larger than on microkernels because\n",
              static_cast<double>(pipe_rt) / static_cast<double>(sky_rt) - 1.0,
              static_cast<double>(pipe_rt) / static_cast<double>(sky_rt));
  std::printf("monolithic IPC pays copies, scheduling and KPTI on every crossing.\n");
  return 0;
}
