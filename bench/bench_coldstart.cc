// Cold-start sweep (DESIGN.md section 17): spawn-to-first-call latency for a
// fleet of workers cloned from one multi-page template image, under the four
// registration strategies:
//
//   eager-nocache  full per-page scan on every registration (the ablation
//                  baseline: rewrite_cache_entries = 0)
//   eager          scan once, every identical fork replays from the
//                  content-hashed rewrite cache
//   lazy           rewrite-on-first-execute: registration arms non-exec
//                  pages, the first call faults its pages in
//   snapshot       first worker scans and auto-captures; every clone
//                  restores the finished registration (bulk copy, no scan)
//
// Swept over 1 / 10 / 100 / 1000 workers. Self-checks (CI gates these via
// scripts/run_all.sh):
//   snapshot spawn-to-first-call >= 10x cheaper than eager-nocache @ 100
//   100% rewrite-cache hit rate for the 99 identical forks @ 100 (eager)
//   lazy steady-state cycles/call within 10% of eager after warm-up
//
// JSON keys: coldstart.<mode>.workers<N>.cycles_per_spawn plus the gate
// metrics coldstart.snapshot_speedup_100, coldstart.fork_hit_rate_100 and
// coldstart.lazy_steady_overhead.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/base/units.h"
#include "src/skybridge/skybridge.h"
#include "src/x86/scanner.h"

namespace {

constexpr size_t kTemplatePages = 16;  // The full code window: a realistic service binary.
constexpr int kWorkerCounts[] = {1, 10, 100, 1000};
constexpr int kSteadyWarmup = 64;
constexpr int kSteadyOps = 4096;

struct Mode {
  const char* name;
  skybridge::RegistrationMode mode;
  size_t cache_entries;
};

const Mode kModes[] = {
    {"eager-nocache", skybridge::RegistrationMode::kEager, 0},
    {"eager", skybridge::RegistrationMode::kEager, 4096},
    {"lazy", skybridge::RegistrationMode::kLazy, 4096},
    {"snapshot", skybridge::RegistrationMode::kSnapshot, 4096},
};

// The worker template: a 16-page NOP sled with two embedded gate patterns —
// enough image for the scan cost to dominate the eager cold start, with
// real rewrite work (snippets) for the cache and snapshots to carry.
std::vector<uint8_t> TemplateImage() {
  std::vector<uint8_t> image(kTemplatePages * sb::kPageSize, 0x90);
  auto plant = [&image](size_t offset) {
    image[offset] = 0xb8;  // mov eax, imm32 embedding 0f 01 d4.
    image[offset + 1] = 0x0f;
    image[offset + 2] = 0x01;
    image[offset + 3] = 0xd4;
    image[offset + 4] = 0x00;
  };
  plant(2 * sb::kPageSize + 2048);
  plant(5 * sb::kPageSize + 2048);
  image.back() = 0xc3;
  return image;
}

struct World {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<mk::Kernel> kernel;
  std::unique_ptr<skybridge::SkyBridge> sky;
  // Workers shard round-robin across servers (max_connections caps at 256).
  std::vector<skybridge::ServerId> sids;
};

World MakeWorld(const Mode& mode, int workers) {
  World w;
  hw::MachineConfig mc;
  mc.num_cores = 2;
  mc.ram_bytes = 32 * sb::kGiB;  // Sparse host backing; 1000 workers need headroom.
  w.machine = std::make_unique<hw::Machine>(mc);
  w.kernel = std::make_unique<mk::Kernel>(*w.machine, mk::Sel4Profile());
  SB_CHECK(w.kernel->Boot().ok());
  skybridge::SkyBridgeConfig config;
  config.crossing_backend = skybridge::CrossingBackendKind::kEptp;
  config.registration_mode = mode.mode;
  config.rewrite_cache_entries = mode.cache_entries;
  w.sky = std::make_unique<skybridge::SkyBridge>(*w.kernel, config);
  const int shards = (workers + 249) / 250;
  for (int i = 0; i < shards; ++i) {
    auto* server =
        w.kernel->CreateProcess("coldstart-server-" + std::to_string(i)).value();
    w.sids.push_back(w.sky
                         ->RegisterServer(server, 256,
                                          [](mk::CallEnv& env) { return env.request; })
                         .value());
  }
  return w;
}

struct SpawnResult {
  double cycles_per_spawn = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // The last worker's thread and binding, left resident on core 0 for the
  // steady phase.
  mk::Thread* last_thread = nullptr;
  skybridge::ServerId last_sid = 0;
};

// Spawns `workers` clones of the template and drives each through its first
// call; returns the average core-0 cycle cost of one spawn-to-first-call.
SpawnResult SpawnFleet(World& w, int workers, const std::vector<uint8_t>& image) {
  hw::Core& core = w.machine->core(0);
  const skybridge::SkyBridgeStats before = w.sky->stats();
  const uint64_t start = core.cycles();
  SpawnResult result;
  for (int i = 0; i < workers; ++i) {
    const skybridge::ServerId sid = w.sids[static_cast<size_t>(i) % w.sids.size()];
    auto* worker =
        w.kernel->CreateProcessWithImage("worker-" + std::to_string(i), image).value();
    SB_CHECK(w.sky->RegisterClient(worker, sid).ok());
    result.last_thread = worker->AddThread(0);
    result.last_sid = sid;
    SB_CHECK(w.kernel->ContextSwitchTo(core, worker).ok());
    SB_CHECK(w.sky->DirectServerCall(result.last_thread, sid, mk::Message(0)).ok());
  }
  result.cycles_per_spawn = static_cast<double>(core.cycles() - start) / workers;
  const skybridge::SkyBridgeStats after = w.sky->stats();
  result.cache_hits = after.cache_hits - before.cache_hits;
  result.cache_misses = after.cache_misses - before.cache_misses;
  return result;
}

// Warm steady-state cycles/call on the fleet's last worker.
double SteadyCyclesPerCall(World& w, const SpawnResult& spawn) {
  hw::Core& core = w.machine->core(0);
  for (int i = 0; i < kSteadyWarmup; ++i) {
    SB_CHECK(w.sky->DirectServerCall(spawn.last_thread, spawn.last_sid, mk::Message(0)).ok());
  }
  const uint64_t start = core.cycles();
  for (int i = 0; i < kSteadyOps; ++i) {
    SB_CHECK(w.sky->DirectServerCall(spawn.last_thread, spawn.last_sid, mk::Message(0)).ok());
  }
  return static_cast<double>(core.cycles() - start) / kSteadyOps;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_coldstart", argc, argv);
  const std::vector<uint8_t> image = TemplateImage();
  SB_CHECK(x86::FindVmfuncBytes(image).size() == 2);

  sb::Table table({"workers", "eager-nocache", "eager", "lazy", "snapshot", "snap speedup"});
  double eager_nocache_100 = 0;
  double snapshot_100 = 0;
  double fork_hit_rate_100 = 0;
  double eager_steady = 0;
  double lazy_steady = 0;
  std::string registry_json;

  for (const int workers : kWorkerCounts) {
    std::vector<double> row;
    for (const Mode& mode : kModes) {
      World w = MakeWorld(mode, workers);
      const SpawnResult spawn = SpawnFleet(w, workers, image);
      row.push_back(spawn.cycles_per_spawn);
      reporter.Add("coldstart." + std::string(mode.name) + ".workers" +
                       std::to_string(workers) + ".cycles_per_spawn",
                   spawn.cycles_per_spawn);
      if (workers == 100) {
        if (std::string(mode.name) == "eager-nocache") {
          eager_nocache_100 = spawn.cycles_per_spawn;
        } else if (std::string(mode.name) == "eager") {
          // Worker 1 scans the template's pages cold; workers 2..100 must
          // replay every page from the cache: hit rate over the forks.
          const uint64_t expected = static_cast<uint64_t>(workers - 1) * kTemplatePages;
          fork_hit_rate_100 =
              expected == 0 ? 0.0 : static_cast<double>(spawn.cache_hits) / expected;
          eager_steady = SteadyCyclesPerCall(w, spawn);
          registry_json = w.machine->telemetry().SnapshotJson();
        } else if (std::string(mode.name) == "lazy") {
          lazy_steady = SteadyCyclesPerCall(w, spawn);
        } else {
          snapshot_100 = spawn.cycles_per_spawn;
        }
      }
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", row[0] / row[3]);
    table.AddRow({std::to_string(workers), std::to_string(static_cast<uint64_t>(row[0])),
                  std::to_string(static_cast<uint64_t>(row[1])),
                  std::to_string(static_cast<uint64_t>(row[2])),
                  std::to_string(static_cast<uint64_t>(row[3])), speedup});
  }

  const double snapshot_speedup = eager_nocache_100 / snapshot_100;
  const double lazy_overhead = lazy_steady / eager_steady;
  reporter.Add("coldstart.snapshot_speedup_100", snapshot_speedup);
  reporter.Add("coldstart.fork_hit_rate_100", fork_hit_rate_100);
  reporter.Add("coldstart.eager.steady_cycles_per_call", eager_steady);
  reporter.Add("coldstart.lazy.steady_cycles_per_call", lazy_steady);
  reporter.Add("coldstart.lazy_steady_overhead", lazy_overhead);
  reporter.AddRegistryJson(registry_json);

  std::printf("Cold start: spawn-to-first-call cycles per worker (template: %zu pages)\n",
              kTemplatePages);
  table.Print();
  std::printf("\nsnapshot speedup @100: %.1fx (bound: >= 10x)   fork hit rate @100: "
              "%.1f%% (bound: 100%%)   lazy steady-state: %.0f vs eager %.0f "
              "cycles/call (bound: within 10%%)\n",
              snapshot_speedup, fork_hit_rate_100 * 100.0, lazy_steady, eager_steady);

  // ---- Self-checks ----
  if (snapshot_speedup < 10.0) {
    std::printf("FAIL: snapshot restore must beat the eager full scan >= 10x at 100 "
                "workers\n");
    return 1;
  }
  if (fork_hit_rate_100 < 1.0) {
    std::printf("FAIL: identical forks must replay 100%% from the rewrite cache\n");
    return 1;
  }
  if (lazy_overhead > 1.10 || lazy_overhead < 0.90) {
    std::printf("FAIL: lazy steady-state must stay within 10%% of eager cycles/call\n");
    return 1;
  }
  return 0;
}
