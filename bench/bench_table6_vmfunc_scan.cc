// Table 6: inadvertent VMFUNC instructions found by the SkyBridge scanner
// across a program corpus (synthetic stand-ins sized after the paper's rows)
// plus a raw scan of this very benchmark binary.

#include <cstdio>
#include <fstream>
#include <map>

#include "bench/bench_util.h"
#include "src/apps/corpus.h"
#include "src/base/table.h"
#include "src/x86/rewriter.h"
#include "src/x86/scanner.h"

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_table6_vmfunc_scan", argc, argv);
  std::printf("== Table 6: inadvertent VMFUNC occurrences (0F 01 D4) ==\n");
  std::printf("Paper: zero across SPEC/PARSEC/servers/kernel; exactly one in\n");
  std::printf("GIMP-2.8, inside the immediate of a longer call instruction.\n\n");

  const auto corpus = apps::BuildTable6Corpus(0x5eed);

  // Group by corpus family for the table.
  std::map<std::string, std::pair<int, size_t>> groups;  // name -> {count, bytes}
  std::map<std::string, int> hits;
  std::string hit_detail;
  for (const auto& program : corpus) {
    std::string family = program.name.substr(0, program.name.find('-'));
    if (program.name.rfind("GIMP", 0) == 0 || program.name.rfind("Nginx", 0) == 0 ||
        program.name.rfind("Apache", 0) == 0 || program.name.rfind("Memcached", 0) == 0 ||
        program.name.rfind("Redis", 0) == 0 || program.name.rfind("vmlinux", 0) == 0) {
      family = program.name;
    }
    groups[family].first += 1;
    groups[family].second += program.code.size();
    const auto found = x86::ScanForVmfunc(program.code);
    hits[family] += static_cast<int>(found.size());
    for (const auto& hit : found) {
      hit_detail = program.name + ": pattern at offset " + std::to_string(hit.pattern_off) +
                   " (" + std::string(x86::VmfuncOverlapName(hit.overlap)) + ")";
    }
  }

  sb::Table table({"Program", "Count", "Avg code size (KB)", "VMFUNC count"});
  int total = 0;
  for (const auto& [family, info] : groups) {
    table.AddRow({family, sb::Table::Int(static_cast<uint64_t>(info.first)),
                  sb::Table::Int(info.second / static_cast<size_t>(info.first) / 1024),
                  sb::Table::Int(static_cast<uint64_t>(hits[family]))});
    total += hits[family];
  }
  table.Print();
  reporter.Add("corpus_programs", static_cast<uint64_t>(corpus.size()));
  reporter.Add("inadvertent_vmfuncs", static_cast<uint64_t>(total));
  std::printf("\ntotal inadvertent occurrences: %d (paper: 1)\n", total);
  if (!hit_detail.empty()) {
    std::printf("the hit: %s\n", hit_detail.c_str());
  }

  // Rewrite the offending program and confirm the pattern is gone.
  for (const auto& program : corpus) {
    if (x86::FindVmfuncBytes(program.code).empty()) {
      continue;
    }
    x86::RewriteConfig config;
    auto rewritten = x86::RewriteVmfunc(program.code, config);
    if (rewritten.ok()) {
      std::printf("after rewriting %s: %zu occurrences remain (windows relocated: %d)\n",
                  program.name.c_str(), x86::FindVmfuncBytes(rewritten->code).size(),
                  rewritten->stats.windows_relocated);
    } else {
      std::printf("rewrite of %s failed: %s\n", program.name.c_str(),
                  rewritten.status().ToString().c_str());
    }
  }

  // Bonus row: raw byte scan of this very binary.
  std::ifstream self("/proc/self/exe", std::ios::binary);
  if (self) {
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(self)),
                               std::istreambuf_iterator<char>());
    const auto raw = x86::FindVmfuncBytes(bytes);
    std::printf("\nraw scan of this benchmark binary (%zu KB): %zu byte-level matches\n",
                bytes.size() / 1024, raw.size());
    std::printf("(byte-level matches include data sections; the paper scans code pages)\n");
  }
  return 0;
}
