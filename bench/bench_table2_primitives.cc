// Table 2 + Section 2.1.1: latency of the primitive instructions and
// operations, measured on the simulated core exactly as the paper measures
// them on Skylake (averaged over many executions).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/hw/ept.h"

namespace {

uint64_t MeasureCr3Write(hw::Machine& machine, mk::Kernel& kernel) {
  auto p1 = kernel.CreateProcess("a").value();
  auto p2 = kernel.CreateProcess("b").value();
  hw::Core& core = machine.core(1);
  const int kIters = 1000;
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    core.WriteCr3(i % 2 == 0 ? p1->cr3() : p2->cr3(), i % 2 == 0 ? p1->pcid() : p2->pcid(),
                  true);
  }
  return (core.cycles() - start) / kIters;
}

uint64_t MeasureVmfunc(hw::Machine& machine, mk::Kernel& kernel) {
  hw::Core& core = machine.core(2);
  // Two EPTs on the list; alternate between them.
  const uint64_t ept_id =
      core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kCreateProcessEpt));
  SB_CHECK(ept_id != vmm::kHypercallError);
  core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kEptpListClear));
  core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kEptpListAppend), 0);
  core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kEptpListAppend), ept_id);
  const int kIters = 1000;
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(core.Vmfunc(0, static_cast<uint32_t>(i % 2)).ok());
  }
  return (core.cycles() - start) / kIters;
}

uint64_t MeasureNoOpSyscall(mk::Kernel& kernel, hw::Core& core) {
  const int kIters = 1000;
  for (int i = 0; i < 32; ++i) {
    kernel.NoOpSyscall(core);
  }
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    kernel.NoOpSyscall(core);
  }
  return (core.cycles() - start) / kIters;
}

uint64_t MeasureWrpkru(hw::Core& core) {
  const int kIters = 1000;
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    core.Wrpkru(i % 2 == 0 ? 0xfffffffcu : 0xfffffff0u);
  }
  return (core.cycles() - start) / kIters;
}

// Warm crossing cost of one echo roundtrip on the given backend (DESIGN.md
// section 16) — the number the conformance suite holds semantics constant
// across while this table shows the cost diverge.
uint64_t MeasureCrossing(skybridge::CrossingBackendKind backend) {
  bench::World world = bench::MakeWorld(mk::Sel4Profile(), true, true, 2);
  auto* server = world.kernel->CreateProcess("bench-server").value();
  const skybridge::ServerId sid =
      world.sky
          ->RegisterServer(server, 4, [](mk::CallEnv& env) { return env.request; }, backend)
          .value();
  auto* client = world.kernel->CreateProcess("bench-client").value();
  SB_CHECK(world.sky->RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  hw::Core& core = world.machine->core(0);
  SB_CHECK(world.kernel->ContextSwitchTo(core, client).ok());
  const int kIters = 1000;
  for (int i = 0; i < 32; ++i) {
    SB_CHECK(world.sky->DirectServerCall(thread, sid, mk::Message(1)).ok());
  }
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(world.sky->DirectServerCall(thread, sid, mk::Message(1)).ok());
  }
  return (core.cycles() - start) / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_table2_primitives", argc, argv);
  std::printf("== Table 2: latency of different instructions and operations (cycles) ==\n");
  std::printf("Paper (Skylake i7-6700K): CR3 write 186, no-op syscall w/ KPTI 431,\n");
  std::printf("no-op syscall w/o KPTI 181, VMFUNC 134.\n\n");

  bench::World world = bench::MakeWorld(mk::Sel4Profile(), true, false);
  const uint64_t cr3 = MeasureCr3Write(*world.machine, *world.kernel);
  const uint64_t vmfunc = MeasureVmfunc(*world.machine, *world.kernel);
  const uint64_t wrpkru = MeasureWrpkru(world.machine->core(4));
  const uint64_t noop_plain = MeasureNoOpSyscall(*world.kernel, world.machine->core(3));

  mk::KernelProfile kpti_profile = mk::Sel4Profile();
  kpti_profile.kpti = true;
  bench::World kpti = bench::MakeWorld(kpti_profile, false, false);
  const uint64_t noop_kpti = MeasureNoOpSyscall(*kpti.kernel, kpti.machine->core(3));

  reporter.Add("cr3_write.cycles", cr3);
  reporter.Add("noop_syscall_kpti.cycles", noop_kpti);
  reporter.Add("noop_syscall.cycles", noop_plain);
  reporter.Add("vmfunc.cycles", vmfunc);
  reporter.Add("wrpkru.cycles", wrpkru);
  reporter.AddRegistry(world.machine->telemetry());

  sb::Table table({"Instruction or Operation", "Cycles (measured)", "Cycles (paper)"});
  table.AddRow({"write to CR3", sb::Table::Int(cr3), "186"});
  table.AddRow({"no-op system call w/ KPTI", sb::Table::Int(noop_kpti), "431"});
  table.AddRow({"no-op system call w/o KPTI", sb::Table::Int(noop_plain), "181"});
  table.AddRow({"VMFUNC", sb::Table::Int(vmfunc), "134"});
  table.AddRow({"WRPKRU", sb::Table::Int(wrpkru), "~20 (EPK literature)"});
  table.Print();

  std::printf("\n== Section 2.1.1: mode-switch instruction costs (cycles) ==\n");
  const hw::CostModel& cm = world.machine->costs();
  sb::Table modes({"Instruction", "Cycles (measured)", "Cycles (paper)"});
  modes.AddRow({"SYSCALL", sb::Table::Int(cm.syscall_insn), "82"});
  modes.AddRow({"SWAPGS", sb::Table::Int(cm.swapgs_insn), "26"});
  modes.AddRow({"SYSRET", sb::Table::Int(cm.sysret_insn), "75"});
  modes.AddRow({"IPI (send-to-delivery)", sb::Table::Int(cm.ipi), "1913"});
  modes.Print();

  std::printf("\nfastest one-way IPC composition: 82 + 2x26 + 75 + 186 + 98 = %d (paper: 493)\n",
              82 + 2 * 26 + 75 + 186 + 98);

  // ---- Crossing backends (DESIGN.md section 16): one warm echo roundtrip ----
  const uint64_t cross_eptp = MeasureCrossing(skybridge::CrossingBackendKind::kEptp);
  const uint64_t cross_mpk = MeasureCrossing(skybridge::CrossingBackendKind::kMpk);
  const uint64_t cross_syscall = MeasureCrossing(skybridge::CrossingBackendKind::kSyscall);
  reporter.Add("crossing_eptp.cycles_per_call", cross_eptp);
  reporter.Add("crossing_mpk.cycles_per_call", cross_mpk);
  reporter.Add("crossing_syscall.cycles_per_call", cross_syscall);

  std::printf("\n== Crossing backends: warm echo roundtrip (cycles/call) ==\n");
  sb::Table crossings({"Backend", "Cycles/call", "Switch primitive"});
  crossings.AddRow({"mpk", sb::Table::Int(cross_mpk), "2x WRPKRU"});
  crossings.AddRow({"eptp", sb::Table::Int(cross_eptp), "2x VMFUNC"});
  crossings.AddRow({"syscall", sb::Table::Int(cross_syscall), "SYSCALL/SYSRET + CR3"});
  crossings.Print();

  // Self-check: the whole point of the backend axis is this cost ordering.
  if (!(cross_mpk < cross_eptp && cross_eptp < cross_syscall)) {
    std::printf("FAIL: expected crossing order mpk < eptp < syscall, got %llu / %llu / %llu\n",
                static_cast<unsigned long long>(cross_mpk),
                static_cast<unsigned long long>(cross_eptp),
                static_cast<unsigned long long>(cross_syscall));
    return 1;
  }
  std::printf("crossing order ok: mpk (%llu) < eptp (%llu) < syscall (%llu)\n",
              static_cast<unsigned long long>(cross_mpk),
              static_cast<unsigned long long>(cross_eptp),
              static_cast<unsigned long long>(cross_syscall));
  return 0;
}
