// Table 3: the rewrite strategy for every VMFUNC overlap case, regenerated
// as living documentation — each row shows the offending encoding, its
// classification, and the functionally-equivalent replacement the rewriter
// emitted (verified by the test suite's emulator-equivalence checks).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/x86/format.h"
#include "src/x86/rewriter.h"
#include "src/x86/scanner.h"

namespace {

struct Case {
  const char* id;
  const char* overlap;
  std::vector<uint8_t> code;  // Ends with RET.
};

std::string FirstLine(const std::string& s) {
  const size_t nl = s.find('\n');
  return s.substr(0, nl == std::string::npos ? s.size() : nl);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_table3_rewrites", argc, argv);
  std::printf("== Table 3: rewrite strategies for illegal VMFUNC encodings ==\n\n");
  uint64_t cases_clean = 0;

  const std::vector<Case> cases = {
      {"1", "Opcode = VMFUNC", {0x0f, 0x01, 0xd4, 0xc3}},
      {"2", "ModRM = 0x0F", {0x48, 0x69, 0x0f, 0x01, 0xd4, 0x00, 0x00, 0xc3}},
      {"3", "SIB = 0x0F", {0x48, 0x8d, 0x9c, 0x0f, 0x01, 0xd4, 0x00, 0x00, 0xc3}},
      {"4", "Displacement = 0x0F...", {0x48, 0x03, 0x9f, 0x0f, 0x01, 0xd4, 0x00, 0xc3}},
      {"5a", "Immediate (add)", {0x48, 0x81, 0xc0, 0x0f, 0x01, 0xd4, 0x00, 0xc3}},
      {"5b", "Immediate (jump-like)", {0xe8, 0x0f, 0x01, 0xd4, 0x00, 0xc3}},
      {"C2", "Spans instructions", {0xb8, 0x00, 0x00, 0x00, 0x0f, 0x01, 0xd4, 0xc3}},
  };

  for (const Case& c : cases) {
    const auto hits = x86::ScanForVmfunc(c.code);
    std::printf("---- case %s: %s ----\n", c.id, c.overlap);
    std::printf("original:\n%s", x86::Disassemble(c.code).c_str());
    if (hits.empty()) {
      std::printf("  (no hit?)\n\n");
      continue;
    }
    std::printf("classified as: %s\n",
                std::string(x86::VmfuncOverlapName(hits[0].overlap)).c_str());
    x86::RewriteConfig config;
    auto result = x86::RewriteVmfunc(c.code, config);
    if (!result.ok()) {
      std::printf("rewrite: %s\n\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("rewritten code:\n%s", x86::Disassemble(result->code).c_str());
    if (!result->rewrite_page.empty()) {
      std::printf("rewrite page snippet:\n%s", x86::Disassemble(result->rewrite_page).c_str());
    }
    const size_t left = x86::FindVmfuncBytes(result->code).size() +
                        x86::FindVmfuncBytes(result->rewrite_page).size();
    std::printf("patterns left: %zu\n\n", left);
    if (left == 0) {
      ++cases_clean;
    }
    reporter.Add(std::string("case_") + c.id + ".patterns_left", static_cast<uint64_t>(left));
  }
  reporter.Add("cases_fully_rewritten", cases_clean);
  std::printf("(equivalence of every strategy is proven by the emulator-based\n");
  std::printf(" property suite in tests/x86_rewriter_test.cc)\n");
  return 0;
}
