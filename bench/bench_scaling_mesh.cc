// EPTP slot virtualization at mesh scale (DESIGN.md section 15).
//
// 64 servers x 1024 clients, each client bound to 16 servers: 16,384
// live bindings against a per-core EPTP-list working set swept from 16 to
// the full 512-entry hardware list. Routing is zipfian over the binding
// space (sim::LoadGenerator key streams, theta 0.99), so a small hot set of
// (client, server) pairs carries most of the traffic while the long tail
// slot-faults in and out of residency.
//
// Part 1 — consolidation ON (the default): every client of one server
// shares that server's binding EPT, so the 16,384 bindings translate
// through only 64 + 1024 distinct EPTs (server views + client process
// views). The sweep shows ops/s converging to the all-resident baseline as
// the working set grows past the hot set, plus the LRU-vs-round-robin
// victim ablation (config.lru_slot_eviction).
//
// Part 2 — consolidation OFF (the pre-section-15 shape): every binding is
// its own EPT, 16,384 + 1024 of them, an order of magnitude past the
// 512-entry hardware list. The bench's existence proof: every call is
// still served from a 512-slot budget, with the slot-fault rate as the
// price curve.
//
// Self-checks printed at the end (CI gates them from the --json output):
//   no rejected calls or load-generator errors anywhere in the sweep
//   consolidation-off serves >= 10k bindings from <= 512 slots
//   hot-set cycles/op under LRU >= 1.5x better than the naive-rotation
//     ablation at the tightest working set (ws=16)
//   hot-set cycles/op at ws=16 under LRU within 1.5x of the all-resident
//     run — the zipfian hot set never pays the slot-fault slow path
//
// Flags: --seed N, --events N, plus the standard --json.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/base/table.h"
#include "src/sim/loadgen.h"
#include "src/skybridge/config.h"
#include "src/vmm/rootkernel.h"

namespace {

uint64_t g_seed = 42;
uint32_t g_events = 16384;

// Mesh geometry. Groups of kDrivers clients are roster-aligned so a zipfian
// key can be steered to the issuing driver's core without leaving the
// binding set (see KeyToCall).
constexpr int kServers = 64;
constexpr int kClients = 1024;
constexpr int kServersPerClient = 16;
constexpr int kConnectionsPerServer = kClients * kServersPerClient / kServers;  // 256
constexpr int kDrivers = 4;  // One load-generator client per simulated core.
constexpr uint64_t kBindings = static_cast<uint64_t>(kClients) * kServersPerClient;
static_assert(kConnectionsPerServer <= 256, "server connection table is 256 slots");

// Client group g = c / kDrivers. Group g is in server s's roster iff
// g % kDrivers == s % kDrivers... inverted: server s draws the 64 groups
// with g % kDrivers == (kDrivers - s % kDrivers) % kDrivers, giving every
// client exactly kServersPerClient servers and every server exactly
// kConnectionsPerServer clients. Low roster indices map to low groups, so
// zipfian-hot keys concentrate on few servers AND few client processes.
uint32_t RosterClient(uint64_t server, uint64_t index) {
  const uint64_t residue = (kDrivers - server % kDrivers) % kDrivers;
  const uint64_t group = (index / kDrivers) * kDrivers + residue;
  return static_cast<uint32_t>(group * kDrivers + index % kDrivers);
}

struct Mesh {
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<mk::Kernel> kernel;
  std::unique_ptr<skybridge::SkyBridge> sky;
  std::vector<mk::Process*> clients;
  std::vector<mk::Thread*> threads;  // threads[c] pinned to core c % kDrivers.
  std::vector<skybridge::ServerId> sids;
};

struct MeshParams {
  size_t working_set = hw::kEptpListCapacity;
  bool consolidate = true;
  bool lru = true;
};

Mesh BuildMesh(const MeshParams& params) {
  Mesh mesh;
  hw::MachineConfig mc;
  mc.num_cores = kDrivers;
  mc.ram_bytes = 8 * sb::kGiB;
  mesh.machine = std::make_unique<hw::Machine>(mc);
  mk::KernelOptions options;
  // 1088 processes: a small heap keeps guest-frame consumption bounded, and
  // the Rootkernel EPT pool must hold ~17k shallow copies + remap splits
  // under the consolidation-off ablation.
  options.process_heap_bytes = 256 * 1024;
  options.rootkernel_config.reserved_bytes = 768ULL * 1024 * 1024;
  mesh.kernel = std::make_unique<mk::Kernel>(*mesh.machine, mk::Sel4Profile(), options);
  SB_CHECK(mesh.kernel->Boot().ok());

  skybridge::SkyBridgeConfig config;
  config.eptp_working_set = params.working_set;
  config.consolidate_bindings = params.consolidate;
  config.lru_slot_eviction = params.lru;
  // Short-message mesh: one 4 KiB slice per binding keeps the 16k shared
  // buffer regions at ~64 MiB instead of 4 GiB.
  config.shared_buffer_bytes = 4 * 1024;
  config.buffer_slices = 1;
  mesh.sky = std::make_unique<skybridge::SkyBridge>(*mesh.kernel, config);

  for (int s = 0; s < kServers; ++s) {
    auto* server = mesh.kernel->CreateProcess("srv" + std::to_string(s)).value();
    mesh.sids.push_back(mesh.sky
                            ->RegisterServer(server, kConnectionsPerServer,
                                             [](mk::CallEnv& env) { return env.request; })
                            .value());
  }
  mesh.clients.reserve(kClients);
  mesh.threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    auto* client = mesh.kernel->CreateProcess("cli" + std::to_string(c)).value();
    mesh.clients.push_back(client);
    mesh.threads.push_back(client->AddThread(c % kDrivers));
  }
  for (int s = 0; s < kServers; ++s) {
    for (int i = 0; i < kConnectionsPerServer; ++i) {
      SB_CHECK(mesh.sky->RegisterClient(mesh.clients[RosterClient(s, i)], mesh.sids[s]).ok());
    }
  }
  return mesh;
}

struct MeshResult {
  double ops_per_sec = 0;
  uint64_t calls = 0;
  uint64_t errors = 0;
  uint64_t slot_faults = 0;
  uint64_t stale_retries = 0;
  uint64_t rejected = 0;
  uint64_t ept_count = 0;
  double fault_rate = 0;  // slot faults per completed call.
  double hot_cpo = 0;     // Hot-set probe: cycles/op on the hottest binding.
};

// Closed-loop hot-set probe on core 0: the hottest binding (client 0 ->
// server 0) interleaved with bursts of cold calls that churn far more EPTs
// through the working set than a tight budget holds. Clients 0, 4, 8 and 12
// all placed their threads on core 0 (c % kDrivers == 0) and their rosters
// cover all 64 servers between them, so the cold stream cycles ~63 distinct
// server EPTs (plus the four client views) against <= 15 usable slots —
// every cold touch misses under *any* eviction policy. Measures cycles/op
// of the *hot* calls only: the hot binding is re-touched every few calls,
// so a recency-aware policy keeps it resident ("hot bindings never fault")
// while the naive rotation ablation's cursor sweeps over the hot slot
// regardless of recency and keeps re-paying the slot-fault slow path.
double ProbeHotSet(Mesh& mesh) {
  constexpr int kWarmRounds = 8;
  constexpr int kRounds = 96;
  hw::Core& core = mesh.machine->core(0);
  const auto switch_to = [&](mk::Process* p) {
    if (mesh.kernel->current_process(core.id()) != p) {
      SB_CHECK(mesh.kernel->ContextSwitchTo(core, p).ok());
    }
  };
  // Client c = 4g reaches servers with s % kDrivers == (kDrivers - g) %
  // kDrivers; the four of them partition the server set. Server 0 stays the
  // hot target; everything else is churn.
  struct ColdCall {
    int client;
    skybridge::ServerId sid;
  };
  std::vector<ColdCall> cold;
  for (int g = 0; g < kDrivers; ++g) {
    const int c = g * kDrivers;
    const int residue = (kDrivers - g) % kDrivers;
    for (int s = residue; s < kServers; s += kDrivers) {
      if (s == 0 && c == 0) continue;
      cold.push_back({c, mesh.sids[s]});
    }
  }
  // Each hot call is followed by a burst of 2-4 cold calls (order reshuffled
  // every wrap so the rotation cursor cannot phase-lock with the pattern).
  // Between consecutive hot touches at most ~9 distinct EPTs are referenced
  // (burst servers + client views), well under the residency budget, so LRU
  // never picks the hot slot as victim. Context switches happen outside the
  // timed window; only the hot DirectServerCall itself is measured.
  uint64_t hot_cycles = 0;
  uint64_t hot_calls = 0;
  sb::Rng probe_rng(g_seed ^ 0x407b1a5eULL);
  size_t next_cold = 0;
  constexpr int kHotPerRound = 5;
  for (int round = 0; round < kWarmRounds + kRounds; ++round) {
    for (int h = 0; h < kHotPerRound; ++h) {
      switch_to(mesh.clients[0]);
      const uint64_t start = core.cycles();
      SB_CHECK(mesh.sky->DirectServerCall(mesh.threads[0], mesh.sids[0], mk::Message(0)).ok());
      if (round >= kWarmRounds) {
        hot_cycles += core.cycles() - start;
        ++hot_calls;
      }
      const size_t burst = 2 + probe_rng.Below(3);
      for (size_t k = 0; k < burst; ++k) {
        if (next_cold % cold.size() == 0) {
          for (size_t m = cold.size(); m > 1; --m) {
            std::swap(cold[m - 1], cold[probe_rng.Below(m)]);
          }
        }
        const ColdCall& cc = cold[next_cold % cold.size()];
        switch_to(mesh.clients[cc.client]);
        SB_CHECK(mesh.sky->DirectServerCall(mesh.threads[cc.client], cc.sid, mk::Message(1)).ok());
        ++next_cold;
      }
    }
  }
  return static_cast<double>(hot_cycles) / static_cast<double>(hot_calls);
}

MeshResult RunMesh(const MeshParams& params) {
  Mesh mesh = BuildMesh(params);
  skybridge::SkyBridge* sky = mesh.sky.get();
  mk::Kernel* kernel = mesh.kernel.get();
  hw::Machine* machine = mesh.machine.get();

  sim::LoadGenConfig config;
  config.seed = g_seed;
  config.events = g_events;
  config.num_clients = kDrivers;
  for (int d = 0; d < kDrivers; ++d) {
    config.client_cores.push_back(d);
  }
  config.num_keys = kBindings;
  config.zipf_theta = 0.99;
  // Saturating offered load: the generator stays backlogged, so completed /
  // elapsed measures the service rate, not the arrival rate.
  config.offered_per_kcycle = 50.0;

  sim::LoadTarget target;
  const Mesh* m = &mesh;
  target.sync_call = [sky, kernel, machine, m](uint32_t driver, uint64_t key) -> sb::Status {
    const uint64_t server = key / kConnectionsPerServer;
    const uint64_t index = key % kConnectionsPerServer;
    // Steer the key's client to this driver's core: same roster group,
    // member = driver. Groups are kDrivers-aligned, so the pair stays bound.
    const uint32_t c = (RosterClient(server, index) & ~(kDrivers - 1u)) | driver;
    mk::Process* client = m->clients[c];
    hw::Core& core = machine->core(static_cast<int>(driver));
    if (kernel->current_process(core.id()) != client) {
      SB_RETURN_IF_ERROR(kernel->ContextSwitchTo(core, client));
    }
    return sky->DirectServerCall(m->threads[c], m->sids[server], mk::Message(key)).status();
  };

  const skybridge::SkyBridgeStats before = sky->stats();
  sim::LoadGenerator gen(*machine, config, target);
  const sim::LoadGenReport report = gen.Run().value();
  const skybridge::SkyBridgeStats after = sky->stats();

  MeshResult r;
  r.hot_cpo = ProbeHotSet(mesh);
  SB_CHECK(sky->CheckInvariants().ok());
  r.calls = report.completed;
  r.errors = report.errors;
  r.ops_per_sec = static_cast<double>(report.completed) /
                  (static_cast<double>(report.elapsed_cycles) /
                   hw::DefaultCosts().cycles_per_second);
  r.slot_faults = after.slot_faults - before.slot_faults;
  r.stale_retries = after.stale_slot_retries - before.stale_slot_retries;
  r.rejected = after.rejected_calls - before.rejected_calls;
  r.ept_count = kernel->rootkernel()->ept_count();
  r.fault_rate = report.completed > 0
                     ? static_cast<double>(r.slot_faults) / static_cast<double>(report.completed)
                     : 0.0;
  return r;
}

std::string Pct(double v) { return sb::Table::Fixed(100.0 * v, 1) + "%"; }

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_scaling_mesh", argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (i + 1 < argc && std::strcmp(argv[i], "--seed") == 0) {
      g_seed = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (i + 1 < argc && std::strcmp(argv[i], "--events") == 0) {
      g_events = static_cast<uint32_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  reporter.Stamp("seed", std::to_string(g_seed));
  reporter.Stamp("events", std::to_string(g_events));
  reporter.Stamp("mesh", "{\"servers\": 64, \"clients\": 1024, \"bindings\": 16384}");

  std::printf("== Binding mesh: %d servers x %d clients, %llu bindings, zipfian ==\n",
              kServers, kClients, static_cast<unsigned long long>(kBindings));
  std::printf("%u zipfian calls (theta 0.99, seed %llu) per configuration.\n\n", g_events,
              static_cast<unsigned long long>(g_seed));

  // Part 1: consolidation on, working-set sweep + victim-policy ablation.
  std::printf("-- consolidation ON: %d server EPTs shared by all clients --\n", kServers);
  sb::Table sweep({"WorkingSet", "Policy", "ops/s", "SlotFaults", "FaultRate", "HotCyc/op"});
  double baseline_hot_cpo = 0;
  double ws16_lru_hot_cpo = 0;
  double ws16_naive_hot_cpo = 0;
  for (const size_t ws : {size_t{512}, size_t{128}, size_t{64}, size_t{32}, size_t{16}}) {
    MeshParams params;
    params.working_set = ws;
    const MeshResult r = RunMesh(params);
    SB_CHECK(r.errors == 0 && r.rejected == 0)
        << "mesh errors=" << r.errors << " rejected=" << r.rejected;
    if (ws == 512) {
      baseline_hot_cpo = r.hot_cpo;
    }
    if (ws == 16) {
      ws16_lru_hot_cpo = r.hot_cpo;
    }
    const std::string key = "mesh.consolidated.lru.ws" + std::to_string(ws) + ".";
    reporter.Add(key + "ops_per_sec", r.ops_per_sec);
    reporter.Add(key + "slot_faults", r.slot_faults);
    reporter.Add(key + "slot_fault_rate", r.fault_rate);
    reporter.Add(key + "hot.cycles_per_op", r.hot_cpo);
    sweep.AddRow({sb::Table::Int(ws), "lru", bench::Humanize(r.ops_per_sec),
                  sb::Table::Int(r.slot_faults), Pct(r.fault_rate),
                  sb::Table::Fixed(r.hot_cpo, 0)});
  }
  {
    MeshParams params;
    params.working_set = 16;
    params.lru = false;
    const MeshResult r = RunMesh(params);
    SB_CHECK(r.errors == 0 && r.rejected == 0);
    ws16_naive_hot_cpo = r.hot_cpo;
    reporter.Add("mesh.consolidated.naive.ws16.ops_per_sec", r.ops_per_sec);
    reporter.Add("mesh.consolidated.naive.ws16.slot_faults", r.slot_faults);
    reporter.Add("mesh.consolidated.naive.ws16.slot_fault_rate", r.fault_rate);
    reporter.Add("mesh.consolidated.naive.ws16.hot.cycles_per_op", r.hot_cpo);
    sweep.AddRow({sb::Table::Int(16), "naive", bench::Humanize(r.ops_per_sec),
                  sb::Table::Int(r.slot_faults), Pct(r.fault_rate),
                  sb::Table::Fixed(r.hot_cpo, 0)});
  }
  sweep.Print();

  // Part 2: consolidation off — one EPT per binding, 32x past the hardware
  // list; the slot-fault price curve of serving it anyway.
  std::printf("\n-- consolidation OFF: one EPT per binding (the >10k ablation) --\n");
  sb::Table flat({"WorkingSet", "ops/s", "SlotFaults", "FaultRate", "EPTs"});
  uint64_t flat_epts = 0;
  for (const size_t ws : {size_t{512}, size_t{256}, size_t{128}, size_t{64}}) {
    MeshParams params;
    params.working_set = ws;
    params.consolidate = false;
    const MeshResult r = RunMesh(params);
    SB_CHECK(r.errors == 0 && r.rejected == 0)
        << "flat mesh errors=" << r.errors << " rejected=" << r.rejected;
    flat_epts = r.ept_count;
    const std::string key = "mesh.flat.ws" + std::to_string(ws) + ".";
    reporter.Add(key + "ops_per_sec", r.ops_per_sec);
    reporter.Add(key + "slot_faults", r.slot_faults);
    reporter.Add(key + "slot_fault_rate", r.fault_rate);
    flat.AddRow({sb::Table::Int(ws), bench::Humanize(r.ops_per_sec),
                 sb::Table::Int(r.slot_faults), Pct(r.fault_rate), sb::Table::Int(r.ept_count)});
  }
  flat.Print();

  // Self-checks (CI gates these from the JSON). The hot-set claim is about the
  // calls that dominate the zipf mass: under LRU they stay resident and pay the
  // all-resident price, while naive round-robin replacement keeps re-evicting
  // them. Aggregate ops/s cannot separate the policies (the zipf tail faults
  // under both), so the gates are on the hot-binding probe's cycles/op.
  const double lru_vs_naive = ws16_naive_hot_cpo / ws16_lru_hot_cpo;
  const double ws16_over_resident = ws16_lru_hot_cpo / baseline_hot_cpo;
  reporter.Add("mesh.selfcheck.bindings", kBindings);
  reporter.Add("mesh.selfcheck.flat_epts", flat_epts);
  reporter.Add("mesh.selfcheck.lru_vs_naive_speedup", lru_vs_naive);
  reporter.Add("mesh.selfcheck.ws16_over_resident", ws16_over_resident);
  std::printf("\nflat-ablation EPTs: %llu (bindings %llu) from a 512-slot budget\n",
              static_cast<unsigned long long>(flat_epts),
              static_cast<unsigned long long>(kBindings));
  std::printf("hot-set cycles/op, naive vs LRU at ws=16: %.2fx (target >= 1.5x)\n",
              lru_vs_naive);
  std::printf("hot-set cycles/op, ws=16 LRU over all-resident: %.2fx (target <= 1.5x)\n",
              ws16_over_resident);
  return 0;
}
