// Figure 8: the KV store benchmark with SkyBridge connecting the processes,
// next to the Figure 2 wirings.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_fig8_kv_skybridge", argc, argv);
  std::printf("== Figure 8: KV store latency with SkyBridge (cycles/op) ==\n");
  std::printf("Paper @16B: Baseline 2707, Delay 3485, IPC 7929, CrossCore 18895,\n");
  std::printf("            SkyBridge 3512\n\n");

  const size_t kSizes[] = {16, 64, 256, 1024};
  const apps::KvWiring kWirings[] = {apps::KvWiring::kBaseline, apps::KvWiring::kDelay,
                                     apps::KvWiring::kIpc, apps::KvWiring::kIpcCrossCore,
                                     apps::KvWiring::kSkyBridge};

  sb::Table table({"Wiring", "16-Bytes", "64-Bytes", "256-Bytes", "1024-Bytes"});
  uint64_t ipc16 = 0;
  uint64_t sky16 = 0;
  for (const apps::KvWiring wiring : kWirings) {
    std::vector<std::string> row{std::string(apps::KvWiringName(wiring))};
    for (const size_t size : kSizes) {
      bench::KvWorld kv = bench::MakeKvWorld(wiring);
      const uint64_t cycles = bench::RunKvOps(*kv.pipeline, 512, size);
      reporter.Add(std::string(apps::KvWiringName(wiring)) + "." + std::to_string(size) +
                       "B.cycles_per_op",
                   cycles);
      if (size == 16 && wiring == apps::KvWiring::kSkyBridge) {
        reporter.AddRegistryJson(kv.world.machine->telemetry().SnapshotJson());
      }
      if (size == 16 && wiring == apps::KvWiring::kIpc) {
        ipc16 = cycles;
      }
      if (size == 16 && wiring == apps::KvWiring::kSkyBridge) {
        sky16 = cycles;
      }
      row.push_back(sb::Table::Int(cycles));
    }
    table.AddRow(row);
  }
  table.Print();
  if (sky16 > 0) {
    std::printf("\n@16B SkyBridge reduces latency to %.0f%% of IPC (paper: 3512/7929 = 44%%)\n",
                100.0 * static_cast<double>(sky16) / static_cast<double>(ipc16));
  }
  return 0;
}
