// Ablation: what SkyBridge's security machinery costs on the hot path
// (calling-key check) and at registration (binary rewriting).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/x86/assembler.h"

namespace {

uint64_t MeasureRoundtrip(bool calling_keys) {
  skybridge::SkyBridgeConfig config;
  config.calling_keys = calling_keys;
  bench::World world = bench::MakeWorld(mk::Sel4Profile(), true, false);
  skybridge::SkyBridge sky(*world.kernel, config);
  auto* client = world.kernel->CreateProcess("client").value();
  auto* server = world.kernel->CreateProcess("server").value();
  const skybridge::ServerId sid =
      sky.RegisterServer(server, 8, [](mk::CallEnv& env) { return env.request; }).value();
  SB_CHECK(sky.RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  SB_CHECK(world.kernel->ContextSwitchTo(world.machine->core(0), client).ok());

  for (int i = 0; i < 200; ++i) {
    SB_CHECK(sky.DirectServerCall(thread, sid, mk::Message(0)).ok());
  }
  hw::Core& core = world.machine->core(0);
  const uint64_t start = core.cycles();
  const int kIters = 10000;
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(sky.DirectServerCall(thread, sid, mk::Message(0)).ok());
  }
  return (core.cycles() - start) / kIters;
}

struct RegistrationCost {
  uint64_t cycles = 0;      // Simulated registration syscall cost.
  uint64_t scan_pages = 0;  // Rewrite work: code-page chunks scanned.
};

RegistrationCost MeasureRegistration(bool rewrite, size_t image_bytes) {
  skybridge::SkyBridgeConfig config;
  config.rewrite_binaries = rewrite;
  bench::World world = bench::MakeWorld(mk::Sel4Profile(), true, false);
  skybridge::SkyBridge sky(*world.kernel, config);

  // A process with a sizeable image carrying one embedded pattern.
  x86::Assembler a;
  while (a.size() + 32 < image_bytes) {
    a.MovRI64(x86::Reg::kRax, 0x1234);
    a.AddRR(x86::Reg::kRbx, x86::Reg::kRax);
  }
  a.AddRI(x86::Reg::kRcx, 0x00d4010f);
  a.Ret();
  auto* server = world.kernel->CreateProcess("server").value();
  auto* client = world.kernel->CreateProcessWithImage("client", a.Take()).value();
  const skybridge::ServerId sid =
      sky.RegisterServer(server, 8, [](mk::CallEnv& env) { return env.request; }).value();

  // Deterministic costs only — host wall-clock would vary run to run. The
  // simulated cycle delta captures the kernel-mediated registration path;
  // scan_pages is the rewrite work (zero with rewriting disabled).
  hw::Core& core = world.machine->core(0);
  const uint64_t start = core.cycles();
  SB_CHECK(sky.RegisterClient(client, sid).ok());
  RegistrationCost cost;
  cost.cycles = core.cycles() - start;
  cost.scan_pages =
      world.machine->telemetry().GetCounter("skybridge.rewrite.scan_pages").Value();
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_ablation_security_tax", argc, argv);
  std::printf("== Ablation: the cost of SkyBridge's security machinery ==\n\n");

  const uint64_t with_keys = MeasureRoundtrip(true);
  const uint64_t without_keys = MeasureRoundtrip(false);
  sb::Table hot({"Hot path", "Roundtrip (cycles)"});
  hot.AddRow({"calling-key check on (default)", sb::Table::Int(with_keys)});
  hot.AddRow({"calling-key check off", sb::Table::Int(without_keys)});
  hot.AddRow({"security tax", sb::Table::Int(with_keys - without_keys)});
  hot.Print();

  std::printf("\n");
  const RegistrationCost with_rewrite = MeasureRegistration(true, 48 * 1024);
  const RegistrationCost without_rewrite = MeasureRegistration(false, 48 * 1024);
  reporter.Add("roundtrip_with_keys.cycles", with_keys);
  reporter.Add("roundtrip_without_keys.cycles", without_keys);
  reporter.Add("registration_with_rewrite.cycles", with_rewrite.cycles);
  reporter.Add("registration_with_rewrite.scan_pages", with_rewrite.scan_pages);
  reporter.Add("registration_without_rewrite.cycles", without_rewrite.cycles);
  reporter.Add("registration_without_rewrite.scan_pages", without_rewrite.scan_pages);
  sb::Table reg({"Registration (48 KB image)", "Cycles", "Scan pages"});
  reg.AddRow({"with binary rewriting (default)", sb::Table::Int(with_rewrite.cycles),
              sb::Table::Int(with_rewrite.scan_pages)});
  reg.AddRow({"without rewriting (insecure)", sb::Table::Int(without_rewrite.cycles),
              sb::Table::Int(without_rewrite.scan_pages)});
  reg.Print();
  std::printf("\nThe key check costs a few dozen cycles per roundtrip; rewriting is a\n");
  std::printf("one-time registration cost (load-time scan, Section 5).\n");
  return 0;
}
