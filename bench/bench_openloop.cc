// Open-loop offered-load sweep (DESIGN.md section 14): latency vs offered
// load for the echo, KV-pipeline and SQLite stacks, sync and batched client
// mixes, measured by the coordinated-omission-safe load generator.
//
// Per stack: a closed-loop run measures the saturation cycles/op, then the
// generator sweeps 0.1x..1.2x of that rate. Latency runs from each op's
// *intended* Poisson arrival, so queueing above saturation shows up as the
// latency explosion it really is. Every point carries an SLO (p99 < 20x the
// saturation service time) and the report's goodput = ops meeting it.
//
// The echo stack is then re-run at 0.5x with the PR 4 fault catalog armed
// (pre-VMFUNC kill, handler crash, reply corruption) to show recovery keeps
// goodput within 10% of the fault-free run.
//
// Self-checks printed at the end (CI gates them from the --json output):
//   zero SLO breaches at 0.5x load on every stack/mode
//   fault-enabled goodput >= 90% of fault-free
//
// Flags: --seed N, --events N (per sweep point; KV and SQLite scale it
// down), plus the standard --json / --faults. When --faults is passed on
// the command line the whole run is faulted, so the self-checks are
// reported but not meaningful as gates.

#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/sqlite_stack.h"
#include "src/base/faultpoint.h"
#include "src/base/rng.h"
#include "src/base/table.h"
#include "src/sim/loadgen.h"
#include "src/skybridge/config.h"

namespace {

uint64_t g_seed = 42;
uint32_t g_events = 4096;

constexpr double kLoadFactors[] = {0.1, 0.25, 0.5, 0.8, 1.0, 1.2};
constexpr double kHalfLoad = 0.5;
constexpr double kSloMultiple = 20.0;  // p99 bound = 20x saturation cpo.
constexpr double kFaultRate = 0.002;   // Per-point probability, fault rerun.

struct EchoWorld {
  bench::World world;
  skybridge::ServerId sid = 0;
  mk::Thread* thread = nullptr;
};

EchoWorld MakeEchoWorld(
    skybridge::CrossingBackendKind backend = skybridge::CrossingBackendKind::kEptp) {
  EchoWorld ew;
  ew.world = bench::MakeWorld(mk::Sel4Profile(), true, true);
  auto* client = ew.world.kernel->CreateProcess("client").value();
  auto* server = ew.world.kernel->CreateProcess("server").value();
  ew.sid = ew.world.sky
               ->RegisterServer(server, 8, [](mk::CallEnv& env) { return env.request; },
                                backend)
               .value();
  SB_CHECK(ew.world.sky->RegisterClient(client, ew.sid).ok());
  ew.thread = client->AddThread(0);
  SB_CHECK(ew.world.kernel->ContextSwitchTo(ew.world.machine->core(0), client).ok());
  return ew;
}

sim::LoadTarget MakeEchoTarget(EchoWorld& ew) {
  skybridge::SkyBridge& sky = *ew.world.sky;
  sim::LoadTarget target;
  target.sync_call = [&ew, &sky](uint32_t, uint64_t key) {
    return sky.DirectServerCall(ew.thread, ew.sid, mk::Message(key)).status();
  };
  target.submit = [&ew, &sky](uint32_t, uint64_t key) {
    return sky.SubmitCall(ew.thread, ew.sid, mk::Message(key));
  };
  target.flush = [&ew, &sky](uint32_t) { return sky.FlushBatch(ew.thread, ew.sid); };
  target.poll = [&ew, &sky](uint32_t, uint64_t token) {
    return sky.PollCompletion(ew.thread, ew.sid, token).status();
  };
  return target;
}

// Closed-loop cycles/op of the sync path: back-to-back calls, no think time.
double MeasureSaturation(const std::function<sb::Status(uint64_t)>& op, hw::Core& core,
                         int ops, uint64_t num_keys) {
  sb::Rng rng(7);
  for (int i = 0; i < ops / 8 + 1; ++i) {
    (void)op(rng.Below(num_keys));  // Warm.
  }
  const uint64_t start = core.cycles();
  for (int i = 0; i < ops; ++i) {
    SB_CHECK(op(rng.Below(num_keys)).ok());
  }
  return static_cast<double>(core.cycles() - start) / ops;
}

std::string LoadTag(double factor) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2f", factor);
  return buf;
}

struct SweepResult {
  // (mode name, load factor) -> report.
  std::map<std::pair<std::string, double>, sim::LoadGenReport> points;
  double saturation_cpo = 0;
};

// Sweeps one stack over the load factors for each mode. `target` must carry
// sync_call; batched hooks are optional (SQLite coalesces bursts instead).
SweepResult SweepStack(bench::JsonReporter& reporter, const std::string& stack,
                       hw::Machine& machine, int client_core, uint64_t num_keys,
                       uint32_t events, double saturation_cpo, const sim::LoadTarget& target) {
  SweepResult result;
  result.saturation_cpo = saturation_cpo;
  reporter.Add("openloop." + stack + ".saturation_cycles_per_op", saturation_cpo);

  sb::telemetry::SloSpec slo;
  slo.percentile = 99.0;
  slo.bound_cycles = static_cast<uint64_t>(kSloMultiple * saturation_cpo) + 1;
  slo.window = 256;

  for (const char* mode : {"sync", "batched"}) {
    for (const double factor : kLoadFactors) {
      sim::LoadGenConfig config;
      config.seed = g_seed;
      config.events = events;
      config.num_clients = 1;
      config.client_cores = {client_core};
      config.num_keys = num_keys;
      config.offered_per_kcycle = factor * 1000.0 / saturation_cpo;
      config.batched = std::strcmp(mode, "batched") == 0;
      config.batch_depth = 16;
      config.slos = {slo};
      sim::LoadGenerator gen(machine, config, target);
      auto report = gen.Run();
      SB_CHECK(report.ok()) << report.status().ToString();
      const std::string prefix = "openloop." + stack + "." + mode + ".load" + LoadTag(factor);
      reporter.Add(prefix + ".p50", report->p50);
      reporter.Add(prefix + ".p99", report->p99);
      reporter.Add(prefix + ".p999", report->p999);
      reporter.Add(prefix + ".goodput", report->goodput_fraction);
      reporter.Add(prefix + ".goodput_per_kcycle", report->goodput_per_kcycle);
      reporter.Add(prefix + ".breaches", report->slo_breaches);
      reporter.Add(prefix + ".completed", report->completed);
      reporter.Add(prefix + ".errors", report->errors);
      result.points[{mode, factor}] = *report;
    }
  }

  sb::Table table({"load", "sync p50", "sync p99", "sync goodput", "batch p50", "batch p99",
                   "batch goodput"});
  for (const double factor : kLoadFactors) {
    const sim::LoadGenReport& s = result.points[{"sync", factor}];
    const sim::LoadGenReport& b = result.points[{"batched", factor}];
    char sg[16];
    char bg[16];
    std::snprintf(sg, sizeof(sg), "%.3f", s.goodput_fraction);
    std::snprintf(bg, sizeof(bg), "%.3f", b.goodput_fraction);
    table.AddRow({LoadTag(factor) + "x", std::to_string(s.p50), std::to_string(s.p99), sg,
                  std::to_string(b.p50), std::to_string(b.p99), bg});
  }
  std::printf("\n%s, open-loop sweep (saturation: %.0f cycles/op, SLO p99 < %llu)\n",
              stack.c_str(), saturation_cpo,
              static_cast<unsigned long long>(slo.bound_cycles));
  table.Print();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_openloop", argc, argv);
  bool cli_faults = false;
  for (int i = 1; i < argc; ++i) {
    if (i + 1 < argc && std::strcmp(argv[i], "--seed") == 0) {
      g_seed = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (i + 1 < argc && std::strcmp(argv[i], "--events") == 0) {
      g_events = static_cast<uint32_t>(std::strtoul(argv[i + 1], nullptr, 10));
    } else if (std::strncmp(argv[i], "--faults", 8) == 0) {
      cli_faults = true;
    }
  }
  reporter.Stamp("seed", std::to_string(g_seed));
  reporter.Stamp("events", std::to_string(g_events));
  reporter.Stamp("offered_loads", "[0.1,0.25,0.5,0.8,1.0,1.2]");

  // ---- Echo: one VMFUNC round trip per op ----
  EchoWorld ew = MakeEchoWorld();
  sim::LoadTarget echo_target = MakeEchoTarget(ew);
  const double echo_cpo = MeasureSaturation(
      [&](uint64_t key) { return echo_target.sync_call(0, key); },
      ew.world.machine->core(0), 2048, 1024);
  const SweepResult echo = SweepStack(reporter, "echo", *ew.world.machine, 0, 1024, g_events,
                                      echo_cpo, echo_target);

  // ---- Echo on the other crossing backends (DESIGN.md section 16): the
  // open-loop shape must hold whether the crossing is WRPKRU or a syscall,
  // just with a different saturation point. The legacy "echo" stack stays
  // EPTP so trend lines are continuous. ----
  EchoWorld ew_mpk = MakeEchoWorld(skybridge::CrossingBackendKind::kMpk);
  sim::LoadTarget mpk_target = MakeEchoTarget(ew_mpk);
  const double mpk_cpo = MeasureSaturation(
      [&](uint64_t key) { return mpk_target.sync_call(0, key); },
      ew_mpk.world.machine->core(0), 2048, 1024);
  const SweepResult echo_mpk = SweepStack(reporter, "echo_mpk", *ew_mpk.world.machine, 0, 1024,
                                          g_events, mpk_cpo, mpk_target);

  EchoWorld ew_sys = MakeEchoWorld(skybridge::CrossingBackendKind::kSyscall);
  sim::LoadTarget sys_target = MakeEchoTarget(ew_sys);
  const double sys_cpo = MeasureSaturation(
      [&](uint64_t key) { return sys_target.sync_call(0, key); },
      ew_sys.world.machine->core(0), 2048, 1024);
  const SweepResult echo_syscall = SweepStack(reporter, "echo_syscall", *ew_sys.world.machine,
                                              0, 1024, g_events, sys_cpo, sys_target);

  // ---- Fault rerun: echo at 0.5x with the recovery catalog armed ----
  // kFaultRevokeInflight stays out: revocation is permanent, so arming it
  // turns the rest of the run into a dead route rather than a recoverable
  // blip. CLI --faults runs skip this (the "clean" sweep was already
  // faulted, so the ratio would compare faulted to faulted).
  double fault_ratio_min = 1.0;
  if (!cli_faults) {
    char spec[256];
    std::snprintf(spec, sizeof(spec), "seed=%llu,%s:p=%g,%s:p=%g,%s:p=%g",
                  static_cast<unsigned long long>(g_seed), skybridge::kFaultPreVmfunc,
                  kFaultRate, skybridge::kFaultHandlerCrash, kFaultRate,
                  skybridge::kFaultReplyCorrupt, kFaultRate);
    SB_CHECK(sb::fault::ArmFromSpec(spec).ok());
    for (const char* mode : {"sync", "batched"}) {
      sim::LoadGenConfig config;
      config.seed = g_seed;
      config.events = g_events;
      config.num_clients = 1;
      config.client_cores = {0};
      config.num_keys = 1024;
      config.offered_per_kcycle = kHalfLoad * 1000.0 / echo_cpo;
      config.batched = std::strcmp(mode, "batched") == 0;
      sb::telemetry::SloSpec slo;
      slo.bound_cycles = static_cast<uint64_t>(kSloMultiple * echo_cpo) + 1;
      slo.window = 256;
      config.slos = {slo};
      sim::LoadGenerator gen(*ew.world.machine, config, echo_target);
      auto faulted = gen.Run();
      SB_CHECK(faulted.ok()) << faulted.status().ToString();
      const double clean = echo.points.at({mode, kHalfLoad}).goodput_fraction;
      const double ratio = clean > 0 ? faulted->goodput_fraction / clean : 1.0;
      fault_ratio_min = std::min(fault_ratio_min, ratio);
      const std::string prefix = std::string("openloop.fault.echo.") + mode;
      reporter.Add(prefix + ".goodput", faulted->goodput_fraction);
      reporter.Add(prefix + ".goodput_ratio", ratio);
      reporter.Add(prefix + ".errors", faulted->errors);
      std::printf("fault rerun (echo %s @0.5x): goodput %.3f vs clean %.3f (ratio %.3f)\n",
                  mode, faulted->goodput_fraction, clean, ratio);
    }
    sb::fault::DisarmAll();
  }

  // ---- KV: Figure-1 pipeline, query-only load over 128 preloaded keys ----
  bench::KvWorld kvw = bench::MakeKvWorld(apps::KvWiring::kSkyBridge);
  apps::KvPipeline& pipeline = *kvw.pipeline;
  constexpr uint64_t kKvKeys = 128;
  const auto key_for = [](uint64_t key) { return "key-" + std::to_string(key % kKvKeys); };
  for (uint64_t i = 0; i < kKvKeys; ++i) {
    SB_CHECK(pipeline.Insert(key_for(i), std::string(64, 'v')).ok());
  }
  sim::LoadTarget kv_target;
  kv_target.sync_call = [&](uint32_t, uint64_t key) {
    return pipeline.Query(key_for(key)).status();
  };
  kv_target.submit = [&](uint32_t, uint64_t key) { return pipeline.SubmitQuery(key_for(key)); };
  kv_target.flush = [&](uint32_t) { return pipeline.FlushQueries(); };
  kv_target.poll = [&](uint32_t, uint64_t token) { return pipeline.PollQuery(token).status(); };
  const int kv_core = static_cast<int>(pipeline.client_core().id());
  const double kv_cpo = MeasureSaturation(
      [&](uint64_t key) { return kv_target.sync_call(0, key); }, pipeline.client_core(), 512,
      kKvKeys);
  const uint32_t kv_events = std::max<uint32_t>(512, g_events / 4);
  const SweepResult kv = SweepStack(reporter, "kv", *kvw.world.machine, kv_core, kKvKeys,
                                    kv_events, kv_cpo, kv_target);

  // ---- SQLite: full stack, query-only zipfian load; no submission ring, so
  // the batched mode exercises the generator's burst-coalescing fallback ----
  apps::SqliteStackConfig sconfig;
  sconfig.kernel = mk::KernelKind::kSel4;
  sconfig.transport = apps::StackTransport::kSkyBridge;
  sconfig.preload_records = 600;
  sconfig.db.row_cache_entries = 96;
  sconfig.db.pager_cache_pages = 48;
  auto stack = apps::SqliteStack::Create(sconfig);
  SB_CHECK(stack.ok()) << stack.status().ToString();
  sim::LoadTarget sql_target;
  sql_target.sync_call = [&](uint32_t, uint64_t key) {
    return (*stack)->Query(0, key % sconfig.preload_records).status();
  };
  const double sql_cpo = MeasureSaturation(
      [&](uint64_t key) { return sql_target.sync_call(0, key); }, (*stack)->machine().core(0),
      96, sconfig.preload_records);
  const uint32_t sql_events = std::max<uint32_t>(256, g_events / 16);
  const SweepResult sql = SweepStack(reporter, "sqlite", (*stack)->machine(), 0,
                                     sconfig.preload_records, sql_events, sql_cpo, sql_target);

  // ---- Self-checks ----
  uint64_t breaches_at_half = 0;
  for (const auto* sweep : {&echo, &echo_mpk, &echo_syscall, &kv, &sql}) {
    for (const char* mode : {"sync", "batched"}) {
      breaches_at_half += sweep->points.at({mode, kHalfLoad}).slo_breaches;
    }
  }
  reporter.Add("openloop.selfcheck.breaches_at_half_load", breaches_at_half);
  reporter.Add("openloop.selfcheck.fault_goodput_ratio_min", fault_ratio_min);
  std::printf("\nbreaches @0.5x across stacks: %llu (bound: 0)   fault goodput ratio: %.3f "
              "(bound: >= 0.9)\n",
              static_cast<unsigned long long>(breaches_at_half), fault_ratio_min);
  return 0;
}
