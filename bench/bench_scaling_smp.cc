// SMP scaling of the SkyBridge control plane (DESIGN.md section 11).
//
// Part 1 — aggregate throughput: N disjoint (client, server) pairs, pair i
// pinned to simulated core i, each client hammering DirectServerCall over
// the sim::Executor. Steady-state calls on different cores share no mutable
// control-plane word, so aggregate ops/s should scale ~linearly 1 -> 8.
//
// Part 2 — migration sweep: one pair whose client thread migrates to the
// next core every K calls, comparing the scheduler's eager EPTP-list
// re-install (skybridge.eptp.migration_installs) against the lazy
// dispatch-on-next-call fallback.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/table.h"
#include "src/sim/executor.h"

namespace {

struct Pair {
  mk::Process* client = nullptr;
  mk::Process* server = nullptr;
  mk::Thread* thread = nullptr;
  skybridge::ServerId sid = 0;
};

Pair MakePair(bench::World& world, int core, int index) {
  Pair p;
  p.client = world.kernel->CreateProcess("client" + std::to_string(index)).value();
  p.server = world.kernel->CreateProcess("server" + std::to_string(index)).value();
  p.sid = world.sky
              ->RegisterServer(p.server, /*max_connections=*/8,
                               [](mk::CallEnv& env) { return env.request; })
              .value();
  SB_CHECK(world.sky->RegisterClient(p.client, p.sid).ok());
  p.thread = p.client->AddThread(core);
  SB_CHECK(world.kernel->ContextSwitchTo(world.machine->core(core), p.client).ok());
  // Pre-warm: first call pays rewrite/dispatch/cache-miss costs once, so the
  // measured loop is the steady state.
  SB_CHECK(world.sky->DirectServerCall(p.thread, p.sid, mk::Message(0)).ok());
  return p;
}

// Aligns every core clock to the latest setup-time cycle count and returns it.
uint64_t AlignClocks(bench::World& world) {
  uint64_t base = 0;
  for (int c = 0; c < world.machine->num_cores(); ++c) {
    base = std::max(base, world.machine->core(c).cycles());
  }
  for (int c = 0; c < world.machine->num_cores(); ++c) {
    world.machine->core(c).SyncClockTo(base);
  }
  return base;
}

constexpr uint64_t kOpsPerClient = 4096;

// N pairs on N cores; returns aggregate ops/s.
double RunScaling(int pairs) {
  bench::World world = bench::MakeWorld(mk::Sel4Profile(), /*rootkernel=*/true,
                                        /*skybridge=*/true, /*cores=*/8);
  std::vector<Pair> ps;
  for (int i = 0; i < pairs; ++i) {
    ps.push_back(MakePair(world, /*core=*/i, i));
  }
  const uint64_t base = AlignClocks(world);
  sim::Executor exec(*world.machine);
  for (int i = 0; i < pairs; ++i) {
    const Pair& p = ps[static_cast<size_t>(i)];
    skybridge::SkyBridge* sky = world.sky.get();
    sim::SimThread* t =
        exec.AddThread("client" + std::to_string(i), i, [=](sim::SimThread& st) {
          SB_CHECK(sky->DirectServerCall(p.thread, p.sid, mk::Message(1)).ok());
          return st.iterations() + 1 < kOpsPerClient;
        });
    t->set_now(base);
  }
  exec.RunToCompletion();
  const double seconds = static_cast<double>(exec.max_time() - base) /
                         hw::DefaultCosts().cycles_per_second;
  return static_cast<double>(kOpsPerClient) * pairs / seconds;
}

struct MigrationResult {
  double ops_per_sec = 0;
  uint64_t migration_installs = 0;
  uint64_t stale_slot_retries = 0;
  uint64_t eptp_misses = 0;
};

// One pair; the client hops to the next core every `period` calls (0 = never).
MigrationResult RunMigration(uint64_t period, bool eager) {
  bench::World world = bench::MakeWorld(mk::Sel4Profile(), /*rootkernel=*/true,
                                        /*skybridge=*/true, /*cores=*/8);
  Pair p = MakePair(world, /*core=*/0, 0);
  // Unrelated work runs on the other cores between visits, so the roamer
  // never finds its address space still live on the destination.
  mk::Process* polluter = world.kernel->CreateProcess("polluter").value();
  const skybridge::SkyBridgeStats before = world.sky->stats();
  const uint64_t installs0 = before.migration_installs;
  const uint64_t retries0 = before.stale_slot_retries;
  const uint64_t misses0 = before.eptp_misses;
  const uint64_t base = AlignClocks(world);
  sim::Executor exec(*world.machine);
  skybridge::SkyBridge* sky = world.sky.get();
  mk::Kernel* kernel = world.kernel.get();
  hw::Machine* machine = world.machine.get();
  sim::SimThread* t = exec.AddThread("roamer", 0, [=](sim::SimThread& st) {
    if (period != 0 && st.iterations() != 0 && st.iterations() % period == 0) {
      const int src = p.thread->core_id();
      const int dest = (src + 1) % machine->num_cores();
      // Wall-clock continuity: the thread resumes on the destination no
      // earlier than when it left the source core.
      machine->core(dest).SyncClockTo(machine->core(src).cycles());
      SB_CHECK(kernel->ContextSwitchTo(machine->core(dest), polluter).ok());
      SB_CHECK(kernel->MigrateThread(p.thread, dest, nullptr, eager).ok());
      st.set_core(&machine->core(dest));
    }
    SB_CHECK(sky->DirectServerCall(p.thread, p.sid, mk::Message(1)).ok());
    return st.iterations() + 1 < kOpsPerClient;
  });
  t->set_now(base);
  exec.RunToCompletion();
  const double seconds = static_cast<double>(exec.max_time() - base) /
                         hw::DefaultCosts().cycles_per_second;
  const skybridge::SkyBridgeStats& stats = world.sky->stats();
  MigrationResult r;
  r.ops_per_sec = static_cast<double>(kOpsPerClient) / seconds;
  r.migration_installs = stats.migration_installs - installs0;
  r.stale_slot_retries = stats.stale_slot_retries - retries0;
  r.eptp_misses = stats.eptp_misses - misses0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_scaling_smp", argc, argv);
  std::printf("== SMP scaling: disjoint SkyBridge pairs across cores ==\n");
  std::printf("Steady-state calls share no control-plane state; aggregate ops/s\n");
  std::printf("should scale ~linearly with cores.\n\n");

  sb::Table scaling({"Cores", "Aggregate ops/s", "Speedup"});
  double ops1 = 0;
  for (const int cores : {1, 2, 4, 8}) {
    const double ops = RunScaling(cores);
    if (cores == 1) {
      ops1 = ops;
    }
    reporter.Add("scaling.cores" + std::to_string(cores) + ".ops_per_sec", ops);
    scaling.AddRow({sb::Table::Int(static_cast<uint64_t>(cores)), bench::Humanize(ops),
                    sb::Table::Fixed(ops / ops1, 2) + "x"});
  }
  scaling.Print();
  const double speedup8 = RunScaling(8) / ops1;
  reporter.Add("scaling.speedup_8c", speedup8);
  std::printf("\n8-core speedup: %.2fx (target: >= 6x)\n\n", speedup8);

  std::printf("== Migration sweep: one pair, client hops cores every K calls ==\n");
  std::printf("Eager: the scheduler re-installs the EPTP list at migration time.\n");
  std::printf("Lazy: the next call dispatches (and installs) on the new core.\n\n");
  sb::Table mig({"Period", "Mode", "ops/s", "MigrationInstalls", "StaleRetries", "EptpMisses"});
  for (const uint64_t period : {uint64_t{0}, uint64_t{64}, uint64_t{16}, uint64_t{4}}) {
    for (const bool eager : {true, false}) {
      if (period == 0 && !eager) {
        continue;  // No migrations: the modes are identical.
      }
      const MigrationResult r = RunMigration(period, eager);
      const std::string mode = eager ? "eager" : "lazy";
      const std::string key =
          "migration.period" + std::to_string(period) + "." + mode + ".";
      reporter.Add(key + "ops_per_sec", r.ops_per_sec);
      reporter.Add(key + "migration_installs", r.migration_installs);
      reporter.Add(key + "stale_slot_retries", r.stale_slot_retries);
      reporter.Add(key + "eptp_misses", r.eptp_misses);
      mig.AddRow({period == 0 ? "never" : sb::Table::Int(period), mode,
                  bench::Humanize(r.ops_per_sec), sb::Table::Int(r.migration_installs),
                  sb::Table::Int(r.stale_slot_retries), sb::Table::Int(r.eptp_misses)});
    }
  }
  mig.Print();
  return 0;
}
