// Batch-depth sweep (DESIGN.md section 13): how much of the crossing does
// the submission/completion ring amortize?
//
// Echo: null-message ping-pong through SubmitCall x depth + one FlushBatch
// + PollCompletion x depth, swept over depths 1..64, against the
// DirectServerCall baseline — once per crossing backend (DESIGN.md section
// 16: EPTP, MPK, kernel fastpath), since what batching buys is exactly one
// saved crossing per submitted call and the crossing cost differs per
// backend. KV: batched gets through the Figure-1 pipeline (client ->
// encrypt crosses once per batch; encrypt -> kv stays one nested call per
// get, so the kv sweep bounds what batching one hop of a compute-heavy
// pipeline buys).
//
// Self-checks printed at the end (CI gates them from the --json output):
//   echo speedup at depth 16 >= 3x over depth 1, on EPTP and on MPK
//   depth-1 batch within 5% of DirectServerCall (EPTP)
//
// JSON keys: the EPTP axis keeps the legacy unprefixed names
// (batch.echo.depthN...) so scripts/diff_bench.py trends stay continuous;
// mpk/syscall get batch.echo.<backend>.* keys.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/table.h"

namespace {

constexpr int kWarmup = 64;
constexpr int kEchoOps = 16384;  // Per depth; divisible by every depth below.
constexpr int kKvQueries = 1024;
constexpr int kDepths[] = {1, 2, 4, 8, 16, 32, 64};

struct EchoWorld {
  bench::World world;
  skybridge::ServerId sid = 0;
  mk::Thread* thread = nullptr;
};

EchoWorld MakeEchoWorld(skybridge::CrossingBackendKind backend) {
  EchoWorld ew;
  ew.world = bench::MakeWorld(mk::Sel4Profile(), true, true);
  auto* client = ew.world.kernel->CreateProcess("client").value();
  auto* server = ew.world.kernel->CreateProcess("server").value();
  ew.sid = ew.world.sky
               ->RegisterServer(server, 8, [](mk::CallEnv& env) { return env.request; },
                                backend)
               .value();
  SB_CHECK(ew.world.sky->RegisterClient(client, ew.sid).ok());
  ew.thread = client->AddThread(0);
  SB_CHECK(ew.world.kernel->ContextSwitchTo(ew.world.machine->core(0), client).ok());
  return ew;
}

// One batched echo round: depth submissions, one flush, depth polls.
void EchoRound(skybridge::SkyBridge& sky, mk::Thread* thread, skybridge::ServerId sid,
               int depth) {
  uint64_t first_token = 0;
  for (int i = 0; i < depth; ++i) {
    auto token = sky.SubmitCall(thread, sid, mk::Message(0));
    SB_CHECK(token.ok()) << token.status().ToString();
    if (i == 0) {
      first_token = *token;
    }
  }
  SB_CHECK(sky.FlushBatch(thread, sid).ok());
  for (int i = 0; i < depth; ++i) {
    SB_CHECK(sky.PollCompletion(thread, sid, first_token + i).ok());
  }
}

struct EchoSweep {
  double direct_cpo = 0;
  double depth1_cpo = 0;
  double depth16_cpo = 0;
  double speedup_16 = 0;
  double depth1_overhead = 0;
  std::string registry_json;
};

// The full direct-baseline + depth sweep on one backend. `key_prefix` is
// "batch.echo." for the legacy EPTP axis, "batch.echo.<backend>." otherwise.
EchoSweep RunEchoSweep(bench::JsonReporter& reporter, skybridge::CrossingBackendKind backend,
                       const std::string& key_prefix) {
  EchoWorld ew = MakeEchoWorld(backend);
  skybridge::SkyBridge& sky = *ew.world.sky;
  hw::Core& core = ew.world.machine->core(0);
  EchoSweep sweep;

  for (int i = 0; i < kWarmup; ++i) {
    SB_CHECK(sky.DirectServerCall(ew.thread, ew.sid, mk::Message(0)).ok());
  }
  uint64_t start = core.cycles();
  for (int i = 0; i < kEchoOps; ++i) {
    SB_CHECK(sky.DirectServerCall(ew.thread, ew.sid, mk::Message(0)).ok());
  }
  sweep.direct_cpo = static_cast<double>(core.cycles() - start) / kEchoOps;
  reporter.Add(key_prefix + "direct_cycles_per_op", sweep.direct_cpo);

  sb::Table echo_table({"depth", "cycles/op", "Mops/s", "vs direct", "vs depth 1"});
  EchoRound(sky, ew.thread, ew.sid, 1);  // Carve the ring + warm the path.
  for (int i = 0; i < kWarmup; ++i) {
    EchoRound(sky, ew.thread, ew.sid, 1);
  }
  for (const int depth : kDepths) {
    for (int i = 0; i < kWarmup / depth + 1; ++i) {
      EchoRound(sky, ew.thread, ew.sid, depth);
    }
    start = core.cycles();
    for (int round = 0; round < kEchoOps / depth; ++round) {
      EchoRound(sky, ew.thread, ew.sid, depth);
    }
    const double cpo = static_cast<double>(core.cycles() - start) / kEchoOps;
    if (depth == 1) {
      sweep.depth1_cpo = cpo;
    }
    if (depth == 16) {
      sweep.depth16_cpo = cpo;
    }
    reporter.Add(key_prefix + "depth" + std::to_string(depth) + ".cycles_per_op", cpo);
    char mops[32];
    std::snprintf(mops, sizeof(mops), "%.1f", bench::OpsPerSecond(cpo) / 1e6);
    char vs_direct[32];
    std::snprintf(vs_direct, sizeof(vs_direct), "%.2fx", sweep.direct_cpo / cpo);
    char vs_d1[32];
    std::snprintf(vs_d1, sizeof(vs_d1), "%.2fx", sweep.depth1_cpo / cpo);
    echo_table.AddRow({std::to_string(depth), std::to_string(static_cast<uint64_t>(cpo)),
                       mops, vs_direct, vs_d1});
  }
  sweep.speedup_16 = sweep.depth1_cpo / sweep.depth16_cpo;
  sweep.depth1_overhead = sweep.depth1_cpo / sweep.direct_cpo;
  reporter.Add(key_prefix + "speedup_16", sweep.speedup_16);
  reporter.Add(key_prefix + "depth1_overhead", sweep.depth1_overhead);

  std::printf("Batched echo on %s, depth sweep (direct call: %.0f cycles/op)\n",
              skybridge::CrossingBackendName(backend), sweep.direct_cpo);
  echo_table.Print();
  std::printf("\n");
  sweep.registry_json = ew.world.machine->telemetry().SnapshotJson();
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_batch_depth", argc, argv);

  // ---- Echo: direct baseline + depth sweep, per crossing backend ----
  const EchoSweep eptp =
      RunEchoSweep(reporter, skybridge::CrossingBackendKind::kEptp, "batch.echo.");
  const EchoSweep mpk =
      RunEchoSweep(reporter, skybridge::CrossingBackendKind::kMpk, "batch.echo.mpk.");
  const EchoSweep syscall =
      RunEchoSweep(reporter, skybridge::CrossingBackendKind::kSyscall, "batch.echo.syscall.");

  // ---- KV: batched gets through the Figure-1 pipeline ----
  bench::KvWorld kvw = bench::MakeKvWorld(apps::KvWiring::kSkyBridge);
  apps::KvPipeline& pipeline = *kvw.pipeline;
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("key-" + std::to_string(i));
    SB_CHECK(pipeline.Insert(keys.back(), std::string(64, 'v')).ok());
  }
  sb::Table kv_table({"depth", "cycles/get", "vs depth 1"});
  double kv_depth1_cpo = 0;
  double kv_depth16_cpo = 0;
  hw::Core& kv_core = pipeline.client_core();
  for (const int depth : kDepths) {
    std::vector<std::string> group;
    for (int i = 0; i < depth; ++i) {
      group.push_back(keys[static_cast<size_t>(i) % keys.size()]);
    }
    for (int i = 0; i < 4; ++i) {
      (void)pipeline.QueryBatch(group);  // Warm.
    }
    const uint64_t start = kv_core.cycles();
    for (int round = 0; round < kKvQueries / depth; ++round) {
      const auto results = pipeline.QueryBatch(group);
      for (const auto& r : results) {
        SB_CHECK(r.ok()) << r.status().ToString();
      }
    }
    const double cpo =
        static_cast<double>(kv_core.cycles() - start) / (kKvQueries / depth * depth);
    if (depth == 1) {
      kv_depth1_cpo = cpo;
    }
    if (depth == 16) {
      kv_depth16_cpo = cpo;
    }
    reporter.Add("batch.kv.depth" + std::to_string(depth) + ".cycles_per_op", cpo);
    char vs_d1[32];
    std::snprintf(vs_d1, sizeof(vs_d1), "%.2fx", kv_depth1_cpo / cpo);
    kv_table.AddRow({std::to_string(depth), std::to_string(static_cast<uint64_t>(cpo)), vs_d1});
  }
  reporter.Add("batch.kv.speedup_16", kv_depth1_cpo / kv_depth16_cpo);

  std::printf("Batched KV gets (client->encrypt crossing amortized; encrypt->kv nested)\n");
  kv_table.Print();

  // ---- Self-checks ----
  std::printf("\necho speedup @16: eptp %.2fx, mpk %.2fx, syscall %.2fx (bound: >= 3x on "
              "eptp and mpk)   depth-1 overhead: %.1f%% (bound: <= 5%%)\n",
              eptp.speedup_16, mpk.speedup_16, syscall.speedup_16,
              (eptp.depth1_overhead - 1.0) * 100.0);
  reporter.AddRegistryJson(eptp.registry_json);
  if (eptp.speedup_16 < 3.0 || mpk.speedup_16 < 3.0) {
    std::printf("FAIL: batching must amortize the crossing >= 3x at depth 16\n");
    return 1;
  }
  return 0;
}
