// Batch-depth sweep (DESIGN.md section 13): how much of the VMFUNC
// crossing does the submission/completion ring amortize?
//
// Echo: null-message ping-pong through SubmitCall x depth + one FlushBatch
// + PollCompletion x depth, swept over depths 1..64, against the
// DirectServerCall baseline. KV: batched gets through the Figure-1 pipeline
// (client -> encrypt crosses once per batch; encrypt -> kv stays one nested
// call per get, so the kv sweep bounds what batching one hop of a
// compute-heavy pipeline buys).
//
// Self-checks printed at the end (CI gates them from the --json output):
//   echo speedup at depth 16 >= 3x over depth 1
//   depth-1 batch within 5% of DirectServerCall

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/table.h"

namespace {

constexpr int kWarmup = 64;
constexpr int kEchoOps = 16384;  // Per depth; divisible by every depth below.
constexpr int kKvQueries = 1024;
constexpr int kDepths[] = {1, 2, 4, 8, 16, 32, 64};

struct EchoWorld {
  bench::World world;
  skybridge::ServerId sid = 0;
  mk::Thread* thread = nullptr;
};

EchoWorld MakeEchoWorld() {
  EchoWorld ew;
  ew.world = bench::MakeWorld(mk::Sel4Profile(), true, true);
  auto* client = ew.world.kernel->CreateProcess("client").value();
  auto* server = ew.world.kernel->CreateProcess("server").value();
  ew.sid = ew.world.sky->RegisterServer(server, 8, [](mk::CallEnv& env) { return env.request; })
               .value();
  SB_CHECK(ew.world.sky->RegisterClient(client, ew.sid).ok());
  ew.thread = client->AddThread(0);
  SB_CHECK(ew.world.kernel->ContextSwitchTo(ew.world.machine->core(0), client).ok());
  return ew;
}

// One batched echo round: depth submissions, one flush, depth polls.
void EchoRound(skybridge::SkyBridge& sky, mk::Thread* thread, skybridge::ServerId sid,
               int depth) {
  uint64_t first_token = 0;
  for (int i = 0; i < depth; ++i) {
    auto token = sky.SubmitCall(thread, sid, mk::Message(0));
    SB_CHECK(token.ok()) << token.status().ToString();
    if (i == 0) {
      first_token = *token;
    }
  }
  SB_CHECK(sky.FlushBatch(thread, sid).ok());
  for (int i = 0; i < depth; ++i) {
    SB_CHECK(sky.PollCompletion(thread, sid, first_token + i).ok());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_batch_depth", argc, argv);

  // ---- Echo: DirectServerCall baseline ----
  EchoWorld ew = MakeEchoWorld();
  skybridge::SkyBridge& sky = *ew.world.sky;
  hw::Core& core = ew.world.machine->core(0);
  for (int i = 0; i < kWarmup; ++i) {
    SB_CHECK(sky.DirectServerCall(ew.thread, ew.sid, mk::Message(0)).ok());
  }
  uint64_t start = core.cycles();
  for (int i = 0; i < kEchoOps; ++i) {
    SB_CHECK(sky.DirectServerCall(ew.thread, ew.sid, mk::Message(0)).ok());
  }
  const double direct_cpo = static_cast<double>(core.cycles() - start) / kEchoOps;
  reporter.Add("batch.echo.direct_cycles_per_op", direct_cpo);

  // ---- Echo: depth sweep (same world; the ring wraps across rounds) ----
  sb::Table echo_table({"depth", "cycles/op", "Mops/s", "vs direct", "vs depth 1"});
  EchoRound(sky, ew.thread, ew.sid, 1);  // Carve the ring + warm the path.
  for (int i = 0; i < kWarmup; ++i) {
    EchoRound(sky, ew.thread, ew.sid, 1);
  }
  double depth1_cpo = 0;
  double depth16_cpo = 0;
  for (const int depth : kDepths) {
    for (int i = 0; i < kWarmup / depth + 1; ++i) {
      EchoRound(sky, ew.thread, ew.sid, depth);
    }
    start = core.cycles();
    for (int round = 0; round < kEchoOps / depth; ++round) {
      EchoRound(sky, ew.thread, ew.sid, depth);
    }
    const double cpo = static_cast<double>(core.cycles() - start) / kEchoOps;
    if (depth == 1) {
      depth1_cpo = cpo;
    }
    if (depth == 16) {
      depth16_cpo = cpo;
    }
    reporter.Add("batch.echo.depth" + std::to_string(depth) + ".cycles_per_op", cpo);
    char mops[32];
    std::snprintf(mops, sizeof(mops), "%.1f", bench::OpsPerSecond(cpo) / 1e6);
    char vs_direct[32];
    std::snprintf(vs_direct, sizeof(vs_direct), "%.2fx", direct_cpo / cpo);
    char vs_d1[32];
    std::snprintf(vs_d1, sizeof(vs_d1), "%.2fx", depth1_cpo / cpo);
    echo_table.AddRow({std::to_string(depth), std::to_string(static_cast<uint64_t>(cpo)),
                       mops, vs_direct, vs_d1});
  }
  const double echo_speedup_16 = depth1_cpo / depth16_cpo;
  const double depth1_overhead = depth1_cpo / direct_cpo;
  reporter.Add("batch.echo.speedup_16", echo_speedup_16);
  reporter.Add("batch.echo.depth1_overhead", depth1_overhead);

  std::printf("Batched echo, depth sweep (direct call: %.0f cycles/op)\n", direct_cpo);
  echo_table.Print();

  // ---- KV: batched gets through the Figure-1 pipeline ----
  bench::KvWorld kvw = bench::MakeKvWorld(apps::KvWiring::kSkyBridge);
  apps::KvPipeline& pipeline = *kvw.pipeline;
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("key-" + std::to_string(i));
    SB_CHECK(pipeline.Insert(keys.back(), std::string(64, 'v')).ok());
  }
  sb::Table kv_table({"depth", "cycles/get", "vs depth 1"});
  double kv_depth1_cpo = 0;
  double kv_depth16_cpo = 0;
  hw::Core& kv_core = pipeline.client_core();
  for (const int depth : kDepths) {
    std::vector<std::string> group;
    for (int i = 0; i < depth; ++i) {
      group.push_back(keys[static_cast<size_t>(i) % keys.size()]);
    }
    for (int i = 0; i < 4; ++i) {
      (void)pipeline.QueryBatch(group);  // Warm.
    }
    start = kv_core.cycles();
    for (int round = 0; round < kKvQueries / depth; ++round) {
      const auto results = pipeline.QueryBatch(group);
      for (const auto& r : results) {
        SB_CHECK(r.ok()) << r.status().ToString();
      }
    }
    const double cpo =
        static_cast<double>(kv_core.cycles() - start) / (kKvQueries / depth * depth);
    if (depth == 1) {
      kv_depth1_cpo = cpo;
    }
    if (depth == 16) {
      kv_depth16_cpo = cpo;
    }
    reporter.Add("batch.kv.depth" + std::to_string(depth) + ".cycles_per_op", cpo);
    char vs_d1[32];
    std::snprintf(vs_d1, sizeof(vs_d1), "%.2fx", kv_depth1_cpo / cpo);
    kv_table.AddRow({std::to_string(depth), std::to_string(static_cast<uint64_t>(cpo)), vs_d1});
  }
  reporter.Add("batch.kv.speedup_16", kv_depth1_cpo / kv_depth16_cpo);

  std::printf("\nBatched KV gets (client->encrypt crossing amortized; encrypt->kv nested)\n");
  kv_table.Print();

  // ---- Self-checks ----
  std::printf("\necho speedup @16: %.2fx (bound: >= 3x)   depth-1 overhead: %.1f%% "
              "(bound: <= 5%%)\n",
              echo_speedup_16, (depth1_overhead - 1.0) * 100.0);
  reporter.AddRegistry(ew.world.machine->telemetry());
  return 0;
}
