// Google-benchmark microbenchmarks over the simulator's hot paths: the
// VMFUNC gate, the charged 2-D translation, and the SkyBridge roundtrip.
// These measure *host* time per simulated operation (throughput of the
// simulator itself), complementing the cycle-accurate benches.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "src/apps/corpus.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/base/units.h"
#include "src/hw/machine.h"
#include "src/hw/paging.h"
#include "src/mk/kernel.h"
#include "src/skybridge/skybridge.h"
#include "src/vmm/rootkernel.h"
#include "src/x86/scanner.h"

namespace {

struct SkyFixture {
  SkyFixture() {
    hw::MachineConfig mc;
    mc.num_cores = 2;
    mc.ram_bytes = 2 * sb::kGiB;
    machine = std::make_unique<hw::Machine>(mc);
    kernel = std::make_unique<mk::Kernel>(*machine, mk::Sel4Profile());
    SB_CHECK(kernel->Boot().ok());
    sky = std::make_unique<skybridge::SkyBridge>(*kernel);
    client = kernel->CreateProcess("client").value();
    server = kernel->CreateProcess("server").value();
    sid = sky->RegisterServer(server, 4, [](mk::CallEnv& env) { return env.request; }).value();
    SB_CHECK(sky->RegisterClient(client, sid).ok());
    thread = client->AddThread(0);
    SB_CHECK(kernel->ContextSwitchTo(machine->core(0), client).ok());
  }

  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<mk::Kernel> kernel;
  std::unique_ptr<skybridge::SkyBridge> sky;
  mk::Process* client;
  mk::Process* server;
  skybridge::ServerId sid;
  mk::Thread* thread;
};

void BM_Vmfunc(benchmark::State& state) {
  SkyFixture fixture;
  hw::Core& core = fixture.machine->core(0);
  uint32_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.Vmfunc(0, index));
    index ^= 1;
  }
}
BENCHMARK(BM_Vmfunc);

void BM_ChargedTranslation(benchmark::State& state) {
  SkyFixture fixture;
  hw::Core& core = fixture.machine->core(0);
  uint64_t va = mk::kHeapVa;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.ReadVirtU64(va));
    va = mk::kHeapVa + ((va + 4096) & 0xfffff);
  }
}
BENCHMARK(BM_ChargedTranslation);

void BM_SkyBridgeRoundtrip(benchmark::State& state) {
  SkyFixture fixture;
  const mk::Message msg(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.sky->DirectServerCall(fixture.thread, fixture.sid, msg));
  }
}
BENCHMARK(BM_SkyBridgeRoundtrip);

void BM_KernelIpcRoundtrip(benchmark::State& state) {
  SkyFixture fixture;
  auto* ep = fixture.kernel
                 ->CreateEndpoint(
                     fixture.server, [](mk::CallEnv& env) { return env.request; }, {})
                 .value();
  const mk::CapSlot slot =
      fixture.kernel->GrantEndpointCap(fixture.client, ep->id(), mk::kRightCall).value();
  const mk::Message msg(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.kernel->IpcCall(fixture.thread, slot, msg));
  }
}
BENCHMARK(BM_KernelIpcRoundtrip);

// One client registered against N servers. Exercises the binding lookup
// path as the binding count grows: per-call cost must stay flat 1 -> 512
// (the lookup is a per-thread cache probe or one hash-index probe, never a
// scan over the binding table).
struct FanoutFixture {
  explicit FanoutFixture(int num_servers) {
    hw::MachineConfig mc;
    mc.num_cores = 2;
    // Each process eagerly reserves its heap/stack frame addresses; host
    // memory is only committed for touched pages, so a large configured RAM
    // is cheap and lets 512 server processes coexist.
    mc.ram_bytes = 12 * sb::kGiB;
    machine = std::make_unique<hw::Machine>(mc);
    kernel = std::make_unique<mk::Kernel>(*machine, mk::Sel4Profile());
    SB_CHECK(kernel->Boot().ok());
    sky = std::make_unique<skybridge::SkyBridge>(*kernel);
    client = kernel->CreateProcess("client").value();
    for (int i = 0; i < num_servers; ++i) {
      mk::Process* server = kernel->CreateProcess("server" + std::to_string(i)).value();
      skybridge::ServerId sid =
          sky->RegisterServer(server, 4, [](mk::CallEnv& env) { return env.request; }).value();
      SB_CHECK(sky->RegisterClient(client, sid).ok());
      sids.push_back(sid);
    }
    thread = client->AddThread(0);
    SB_CHECK(kernel->ContextSwitchTo(machine->core(0), client).ok());
  }

  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<mk::Kernel> kernel;
  std::unique_ptr<skybridge::SkyBridge> sky;
  mk::Process* client;
  std::vector<skybridge::ServerId> sids;
  mk::Thread* thread;
};

// Round-robins calls over a small working set of servers while N total
// bindings are registered. The rotation defeats the per-thread last-route
// cache, so every call takes the hash-index path; the working set stays
// under the EPTP capacity so no evictions mix in. Flat across Args ==
// O(1) lookup.
void BM_BindingLookup(benchmark::State& state) {
  const int num_servers = static_cast<int>(state.range(0));
  FanoutFixture fixture(num_servers);
  const size_t working_set = std::min<size_t>(fixture.sids.size(), 8);
  const mk::Message msg(7);
  // Warm up: install the working set's bindings outside the timed loop.
  for (size_t i = 0; i < working_set; ++i) {
    SB_CHECK(fixture.sky->DirectServerCall(fixture.thread, fixture.sids[i], msg).ok());
  }
  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.sky->DirectServerCall(fixture.thread, fixture.sids[next], msg));
    next = (next + 1) % working_set;
  }
  state.counters["bindings"] = static_cast<double>(num_servers);
}
BENCHMARK(BM_BindingLookup)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

// Same fixture, but hammering one server: every call after the first is a
// per-thread route-cache hit.
void BM_BindingLookupHot(benchmark::State& state) {
  const int num_servers = static_cast<int>(state.range(0));
  FanoutFixture fixture(num_servers);
  const mk::Message msg(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.sky->DirectServerCall(fixture.thread, fixture.sids[0], msg));
  }
  state.counters["bindings"] = static_cast<double>(num_servers);
}
BENCHMARK(BM_BindingLookupHot)->Arg(1)->Arg(512);

// Registration-time code scanning: serial vs. thread-pool fan-out over a
// multi-MiB image (the paper's Table 6 workload shape).
std::vector<uint8_t> ScanImage() {
  sb::Rng rng(0x5eedULL);
  return apps::GenerateProgram(rng, 4 * sb::kMiB);
}

void BM_VmfuncScanSerial(benchmark::State& state) {
  const std::vector<uint8_t> image = ScanImage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(x86::FindVmfuncBytes(image));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * image.size()));
}
BENCHMARK(BM_VmfuncScanSerial);

void BM_VmfuncScanParallel(benchmark::State& state) {
  const std::vector<uint8_t> image = ScanImage();
  sb::ThreadPool pool;
  x86::ScanOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x86::FindVmfuncBytes(image, options));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * image.size()));
  state.counters["threads"] = static_cast<double>(pool.num_threads() + 1);
}
BENCHMARK(BM_VmfuncScanParallel);

}  // namespace

BENCHMARK_MAIN();
