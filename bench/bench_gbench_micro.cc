// Google-benchmark microbenchmarks over the simulator's hot paths: the
// VMFUNC gate, the charged 2-D translation, and the SkyBridge roundtrip.
// These measure *host* time per simulated operation (throughput of the
// simulator itself), complementing the cycle-accurate benches.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/corpus.h"
#include "src/base/rng.h"
#include "src/base/telemetry/trace.h"
#include "src/base/thread_pool.h"
#include "src/base/units.h"
#include "src/hw/machine.h"
#include "src/hw/paging.h"
#include "src/mk/kernel.h"
#include "src/skybridge/skybridge.h"
#include "src/vmm/rootkernel.h"
#include "src/x86/scanner.h"

namespace {

struct SkyFixture {
  SkyFixture() {
    hw::MachineConfig mc;
    mc.num_cores = 2;
    mc.ram_bytes = 2 * sb::kGiB;
    machine = std::make_unique<hw::Machine>(mc);
    kernel = std::make_unique<mk::Kernel>(*machine, mk::Sel4Profile());
    SB_CHECK(kernel->Boot().ok());
    sky = std::make_unique<skybridge::SkyBridge>(*kernel);
    client = kernel->CreateProcess("client").value();
    server = kernel->CreateProcess("server").value();
    sid = sky->RegisterServer(server, 4, [](mk::CallEnv& env) { return env.request; }).value();
    SB_CHECK(sky->RegisterClient(client, sid).ok());
    thread = client->AddThread(0);
    SB_CHECK(kernel->ContextSwitchTo(machine->core(0), client).ok());
  }

  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<mk::Kernel> kernel;
  std::unique_ptr<skybridge::SkyBridge> sky;
  mk::Process* client;
  mk::Process* server;
  skybridge::ServerId sid;
  mk::Thread* thread;
};

void BM_Vmfunc(benchmark::State& state) {
  SkyFixture fixture;
  hw::Core& core = fixture.machine->core(0);
  uint32_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.Vmfunc(0, index));
    index ^= 1;
  }
}
BENCHMARK(BM_Vmfunc);

void BM_ChargedTranslation(benchmark::State& state) {
  SkyFixture fixture;
  hw::Core& core = fixture.machine->core(0);
  uint64_t va = mk::kHeapVa;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.ReadVirtU64(va));
    va = mk::kHeapVa + ((va + 4096) & 0xfffff);
  }
}
BENCHMARK(BM_ChargedTranslation);

void BM_SkyBridgeRoundtrip(benchmark::State& state) {
  SkyFixture fixture;
  const mk::Message msg(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.sky->DirectServerCall(fixture.thread, fixture.sid, msg));
  }
}
BENCHMARK(BM_SkyBridgeRoundtrip);

// The tracing-overhead pair for the <2% claim: BM_SkyBridgeRoundtrip above
// runs with tracing compiled in but disabled (the shipped default — every
// SB_TRACE_EVENT site is one relaxed load and an untaken branch), this one
// runs with the per-thread rings live. Compare the two to see what enabling
// costs; compare BM_SkyBridgeRoundtrip across builds to see that the
// disabled guard is in the noise.
void BM_SkyBridgeRoundtripTracingOn(benchmark::State& state) {
  SkyFixture fixture;
  const mk::Message msg(7);
  sb::telemetry::SetTraceEnabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.sky->DirectServerCall(fixture.thread, fixture.sid, msg));
  }
  sb::telemetry::SetTraceEnabled(false);
  sb::telemetry::TraceClear();
}
BENCHMARK(BM_SkyBridgeRoundtripTracingOn);

// The disabled guard in isolation: exactly the code every instrumented
// hot-path site executes when tracing is off. Arguments are not evaluated.
void BM_TraceEmitDisabledGuard(benchmark::State& state) {
  uint64_t x = 0;
  for (auto _ : state) {
    SB_TRACE_EVENT(sb::telemetry::TraceEventType::kCallStart, ++x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_TraceEmitDisabledGuard);

void BM_KernelIpcRoundtrip(benchmark::State& state) {
  SkyFixture fixture;
  auto* ep = fixture.kernel
                 ->CreateEndpoint(
                     fixture.server, [](mk::CallEnv& env) { return env.request; }, {})
                 .value();
  const mk::CapSlot slot =
      fixture.kernel->GrantEndpointCap(fixture.client, ep->id(), mk::kRightCall).value();
  const mk::Message msg(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.kernel->IpcCall(fixture.thread, slot, msg));
  }
}
BENCHMARK(BM_KernelIpcRoundtrip);

// One client registered against N servers. Exercises the binding lookup
// path as the binding count grows: per-call cost must stay flat 1 -> 512
// (the lookup is a per-thread cache probe or one hash-index probe, never a
// scan over the binding table).
struct FanoutFixture {
  explicit FanoutFixture(int num_servers) {
    hw::MachineConfig mc;
    mc.num_cores = 2;
    // Each process eagerly reserves its heap/stack frame addresses; host
    // memory is only committed for touched pages, so a large configured RAM
    // is cheap and lets 512 server processes coexist.
    mc.ram_bytes = 12 * sb::kGiB;
    machine = std::make_unique<hw::Machine>(mc);
    kernel = std::make_unique<mk::Kernel>(*machine, mk::Sel4Profile());
    SB_CHECK(kernel->Boot().ok());
    sky = std::make_unique<skybridge::SkyBridge>(*kernel);
    client = kernel->CreateProcess("client").value();
    for (int i = 0; i < num_servers; ++i) {
      mk::Process* server = kernel->CreateProcess("server" + std::to_string(i)).value();
      skybridge::ServerId sid =
          sky->RegisterServer(server, 4, [](mk::CallEnv& env) { return env.request; }).value();
      SB_CHECK(sky->RegisterClient(client, sid).ok());
      sids.push_back(sid);
    }
    thread = client->AddThread(0);
    SB_CHECK(kernel->ContextSwitchTo(machine->core(0), client).ok());
  }

  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<mk::Kernel> kernel;
  std::unique_ptr<skybridge::SkyBridge> sky;
  mk::Process* client;
  std::vector<skybridge::ServerId> sids;
  mk::Thread* thread;
};

// Round-robins calls over a small working set of servers while N total
// bindings are registered. The rotation defeats the per-thread last-route
// cache, so every call takes the hash-index path; the working set stays
// under the EPTP capacity so no evictions mix in. Flat across Args ==
// O(1) lookup.
void BM_BindingLookup(benchmark::State& state) {
  const int num_servers = static_cast<int>(state.range(0));
  FanoutFixture fixture(num_servers);
  const size_t working_set = std::min<size_t>(fixture.sids.size(), 8);
  const mk::Message msg(7);
  // Warm up: install the working set's bindings outside the timed loop.
  for (size_t i = 0; i < working_set; ++i) {
    SB_CHECK(fixture.sky->DirectServerCall(fixture.thread, fixture.sids[i], msg).ok());
  }
  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.sky->DirectServerCall(fixture.thread, fixture.sids[next], msg));
    next = (next + 1) % working_set;
  }
  state.counters["bindings"] = static_cast<double>(num_servers);
}
BENCHMARK(BM_BindingLookup)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

// Same fixture, but hammering one server: every call after the first is a
// per-thread route-cache hit.
void BM_BindingLookupHot(benchmark::State& state) {
  const int num_servers = static_cast<int>(state.range(0));
  FanoutFixture fixture(num_servers);
  const mk::Message msg(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.sky->DirectServerCall(fixture.thread, fixture.sids[0], msg));
  }
  state.counters["bindings"] = static_cast<double>(num_servers);
}
BENCHMARK(BM_BindingLookupHot)->Arg(1)->Arg(512);

// Registration-time code scanning: serial vs. thread-pool fan-out over a
// multi-MiB image (the paper's Table 6 workload shape).
std::vector<uint8_t> ScanImage() {
  sb::Rng rng(0x5eedULL);
  return apps::GenerateProgram(rng, 4 * sb::kMiB);
}

void BM_VmfuncScanSerial(benchmark::State& state) {
  const std::vector<uint8_t> image = ScanImage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(x86::FindVmfuncBytes(image));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * image.size()));
}
BENCHMARK(BM_VmfuncScanSerial);

void BM_VmfuncScanParallel(benchmark::State& state) {
  const std::vector<uint8_t> image = ScanImage();
  // Fixed pool size: never hardware_concurrency, so the reported fan-out is
  // identical on a 2-vCPU CI runner and a workstation.
  sb::ThreadPool pool(4);
  x86::ScanOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x86::FindVmfuncBytes(image, options));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * image.size()));
  state.counters["threads"] = static_cast<double>(pool.num_threads() + 1);
}
BENCHMARK(BM_VmfuncScanParallel);

// Records every finished run so the custom main below can emit the shared
// --json format next to google-benchmark's own console output.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      results_.emplace_back(run.benchmark_name(), run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(report);
  }

  const std::vector<std::pair<std::string, double>>& results() const { return results_; }

 private:
  std::vector<std::pair<std::string, double>> results_;
};

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): strips our `--json <path>` flag
// (which google-benchmark would reject) before Initialize, then writes the
// run results in the same one-object format as the other benches.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> gbench_args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
      ++i;
      continue;
    }
    gbench_args.push_back(argv[i]);
  }
  int gbench_argc = static_cast<int>(gbench_args.size());
  benchmark::Initialize(&gbench_argc, gbench_args.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc, gbench_args.data())) {
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      return 1;
    }
    out << "{\"bench\":\"bench_gbench_micro\",\"metrics\":{";
    const auto& results = reporter.results();
    for (size_t i = 0; i < results.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      out << "\"" << results[i].first << ".ns_per_op\":" << results[i].second;
    }
    out << "}}\n";
  }
  return 0;
}
