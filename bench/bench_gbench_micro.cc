// Google-benchmark microbenchmarks over the simulator's hot paths: the
// VMFUNC gate, the charged 2-D translation, and the SkyBridge roundtrip.
// These measure *host* time per simulated operation (throughput of the
// simulator itself), complementing the cycle-accurate benches.

#include <benchmark/benchmark.h>

#include "src/base/units.h"
#include "src/hw/machine.h"
#include "src/hw/paging.h"
#include "src/mk/kernel.h"
#include "src/skybridge/skybridge.h"
#include "src/vmm/rootkernel.h"

namespace {

struct SkyFixture {
  SkyFixture() {
    hw::MachineConfig mc;
    mc.num_cores = 2;
    mc.ram_bytes = 2 * sb::kGiB;
    machine = std::make_unique<hw::Machine>(mc);
    kernel = std::make_unique<mk::Kernel>(*machine, mk::Sel4Profile());
    SB_CHECK(kernel->Boot().ok());
    sky = std::make_unique<skybridge::SkyBridge>(*kernel);
    client = kernel->CreateProcess("client").value();
    server = kernel->CreateProcess("server").value();
    sid = sky->RegisterServer(server, 4, [](mk::CallEnv& env) { return env.request; }).value();
    SB_CHECK(sky->RegisterClient(client, sid).ok());
    thread = client->AddThread(0);
    SB_CHECK(kernel->ContextSwitchTo(machine->core(0), client).ok());
  }

  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<mk::Kernel> kernel;
  std::unique_ptr<skybridge::SkyBridge> sky;
  mk::Process* client;
  mk::Process* server;
  skybridge::ServerId sid;
  mk::Thread* thread;
};

void BM_Vmfunc(benchmark::State& state) {
  SkyFixture fixture;
  hw::Core& core = fixture.machine->core(0);
  uint32_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.Vmfunc(0, index));
    index ^= 1;
  }
}
BENCHMARK(BM_Vmfunc);

void BM_ChargedTranslation(benchmark::State& state) {
  SkyFixture fixture;
  hw::Core& core = fixture.machine->core(0);
  uint64_t va = mk::kHeapVa;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.ReadVirtU64(va));
    va = mk::kHeapVa + ((va + 4096) & 0xfffff);
  }
}
BENCHMARK(BM_ChargedTranslation);

void BM_SkyBridgeRoundtrip(benchmark::State& state) {
  SkyFixture fixture;
  const mk::Message msg(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.sky->DirectServerCall(fixture.thread, fixture.sid, msg));
  }
}
BENCHMARK(BM_SkyBridgeRoundtrip);

void BM_KernelIpcRoundtrip(benchmark::State& state) {
  SkyFixture fixture;
  auto* ep = fixture.kernel
                 ->CreateEndpoint(
                     fixture.server, [](mk::CallEnv& env) { return env.request; }, {})
                 .value();
  const mk::CapSlot slot =
      fixture.kernel->GrantEndpointCap(fixture.client, ep->id(), mk::kRightCall).value();
  const mk::Message msg(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.kernel->IpcCall(fixture.thread, slot, msg));
  }
}
BENCHMARK(BM_KernelIpcRoundtrip);

}  // namespace

BENCHMARK_MAIN();
