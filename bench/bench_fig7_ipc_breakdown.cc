// Figure 7: the performance breakdown of synchronous IPC implementations.
//
// Null-message ping-pong, 100k roundtrips each:
//   SkyBridge (on all three kernels) | seL4 fast/cross | Fiasco fast/cross |
//   Zircon single/cross
// with the per-bucket decomposition the figure's stacked bars show.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"

namespace {

constexpr int kWarmup = 200;
constexpr int kIters = 100000;

struct Result {
  std::string name;
  uint64_t total = 0;
  mk::CostBreakdown bd;
  std::string registry_json;  // Telemetry snapshot of the run's machine.
};

Result MeasureKernelIpc(mk::KernelKind kind, bool cross_core) {
  bench::World world = bench::MakeWorld(mk::ProfileFor(kind), false, false);
  mk::Kernel& kernel = *world.kernel;
  auto* client = kernel.CreateProcess("client").value();
  auto* server = kernel.CreateProcess("server").value();
  auto* ep = kernel
                 .CreateEndpoint(
                     server, [](mk::CallEnv& env) { return env.request; },
                     cross_core ? std::vector<int>{1} : std::vector<int>{})
                 .value();
  const mk::CapSlot slot = kernel.GrantEndpointCap(client, ep->id(), mk::kRightCall).value();
  mk::Thread* thread = client->AddThread(0);
  SB_CHECK(kernel.ContextSwitchTo(world.machine->core(0), client).ok());

  for (int i = 0; i < kWarmup; ++i) {
    SB_CHECK(kernel.IpcCall(thread, slot, mk::Message(0)).ok());
  }
  Result result;
  result.name = mk::ProfileFor(kind).name + (cross_core ? " Cross Core" : " Single Core");
  hw::Core& core = world.machine->core(0);
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(kernel.IpcCall(thread, slot, mk::Message(0), &result.bd).ok());
  }
  result.total = (core.cycles() - start) / kIters;
  return result;
}

Result MeasureSkyBridge(mk::KernelKind kind) {
  bench::World world = bench::MakeWorld(mk::ProfileFor(kind), true, true);
  auto* client = world.kernel->CreateProcess("client").value();
  auto* server = world.kernel->CreateProcess("server").value();
  const skybridge::ServerId sid =
      world.sky->RegisterServer(server, 8, [](mk::CallEnv& env) { return env.request; })
          .value();
  SB_CHECK(world.sky->RegisterClient(client, sid).ok());
  mk::Thread* thread = client->AddThread(0);
  SB_CHECK(world.kernel->ContextSwitchTo(world.machine->core(0), client).ok());

  for (int i = 0; i < kWarmup; ++i) {
    SB_CHECK(world.sky->DirectServerCall(thread, sid, mk::Message(0)).ok());
  }
  Result result;
  result.name = mk::ProfileFor(kind).name + "-SkyBridge";
  hw::Core& core = world.machine->core(0);
  const uint64_t start = core.cycles();
  for (int i = 0; i < kIters; ++i) {
    SB_CHECK(world.sky->DirectServerCall(thread, sid, mk::Message(0), &result.bd).ok());
  }
  result.total = (core.cycles() - start) / kIters;
  result.registry_json = world.machine->telemetry().SnapshotJson();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_fig7_ipc_breakdown", argc, argv);
  std::printf("== Figure 7: synchronous IPC roundtrip breakdown (cycles, %d runs) ==\n",
              kIters);
  std::printf("Paper: SkyBridge 396 | seL4 986 / 6764 | Fiasco 2717 / 8440 |\n");
  std::printf("       Zircon 8157 / 20099\n\n");

  std::vector<Result> results;
  for (const mk::KernelKind kind :
       {mk::KernelKind::kSel4, mk::KernelKind::kFiasco, mk::KernelKind::kZircon}) {
    results.push_back(MeasureSkyBridge(kind));
  }
  for (const mk::KernelKind kind :
       {mk::KernelKind::kSel4, mk::KernelKind::kFiasco, mk::KernelKind::kZircon}) {
    results.push_back(MeasureKernelIpc(kind, false));
    results.push_back(MeasureKernelIpc(kind, true));
  }

  sb::Table table({"Configuration", "Total", "VMFUNC", "SYSCALL/SYSRET", "ctx switch", "IPI",
                   "copy", "schedule", "others"});
  for (const Result& r : results) {
    const auto per = [&](uint64_t v) { return sb::Table::Int(v / kIters); };
    table.AddRow({r.name, sb::Table::Int(r.total), per(r.bd.vmfunc), per(r.bd.syscall_sysret),
                  per(r.bd.context_switch), per(r.bd.ipi), per(r.bd.copy), per(r.bd.schedule),
                  per(r.bd.others)});
    reporter.Add(r.name + ".cycles_per_op", r.total);
    reporter.Add(r.name + ".vmfunc_cycles_per_op", r.bd.vmfunc / kIters);
    reporter.Add(r.name + ".syscall_cycles_per_op", r.bd.syscall_sysret / kIters);
  }
  table.Print();
  // The registry snapshot of the seL4 SkyBridge run (direct_calls, lookup
  // hits/misses, eptp_misses, per-phase percentiles).
  reporter.AddRegistryJson(results[0].registry_json);

  std::printf("\nIPC speed improvement of SkyBridge (ratio - 1, the paper's convention): ");
  for (int i = 0; i < 3; ++i) {
    std::printf("%s %.2fx  ", results[static_cast<size_t>(i)].name.c_str(),
                static_cast<double>(results[static_cast<size_t>(3 + 2 * i)].total) /
                        static_cast<double>(results[static_cast<size_t>(i)].total) -
                    1.0);
  }
  std::printf("(paper: 1.49x / 5.86x / 19.6x)\n");
  return 0;
}
