// Figure 2: the average latency of the KV store operation under Baseline,
// Delay, IPC and IPC-CrossCore wirings, across key/value lengths — the
// experiment that isolates the *indirect* (cache/TLB pollution) cost of IPC.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/table.h"

int main(int argc, char** argv) {
  bench::JsonReporter reporter("bench_fig2_kv_ipc_cost", argc, argv);
  std::printf("== Figure 2: KV store latency (cycles/op, 50%%/50%% insert+query) ==\n");
  std::printf("Paper @16B: Baseline 2707, Delay 3485, IPC 7929, CrossCore 18895\n\n");

  const size_t kSizes[] = {16, 64, 256, 1024};
  const apps::KvWiring kWirings[] = {apps::KvWiring::kBaseline, apps::KvWiring::kDelay,
                                     apps::KvWiring::kIpc, apps::KvWiring::kIpcCrossCore};

  sb::Table table({"Wiring", "16-Bytes", "64-Bytes", "256-Bytes", "1024-Bytes"});
  for (const apps::KvWiring wiring : kWirings) {
    std::vector<std::string> row{std::string(apps::KvWiringName(wiring))};
    for (const size_t size : kSizes) {
      bench::KvWorld kv = bench::MakeKvWorld(wiring);
      const uint64_t cycles = bench::RunKvOps(*kv.pipeline, 512, size);
      reporter.Add(std::string(apps::KvWiringName(wiring)) + "." + std::to_string(size) +
                       "B.cycles_per_op",
                   cycles);
      row.push_back(sb::Table::Int(cycles));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nThe Delay rows add exactly the direct IPC cost; the gap between Delay\n");
  std::printf("and IPC is the indirect pollution cost (Section 2.1.2).\n");
  return 0;
}
