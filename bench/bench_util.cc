#include "bench/bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/base/faultpoint.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/units.h"

namespace bench {

World MakeWorld(mk::KernelProfile profile, bool rootkernel, bool skybridge, int cores) {
  World world;
  hw::MachineConfig mc;
  mc.num_cores = cores;
  mc.ram_bytes = 4 * sb::kGiB;
  world.machine = std::make_unique<hw::Machine>(mc);
  mk::KernelOptions options;
  options.boot_rootkernel = rootkernel;
  world.kernel = std::make_unique<mk::Kernel>(*world.machine, std::move(profile), options);
  SB_CHECK(world.kernel->Boot().ok());
  if (skybridge) {
    SB_CHECK(rootkernel);
    world.sky = std::make_unique<skybridge::SkyBridge>(*world.kernel);
  }
  return world;
}

KvWorld MakeKvWorld(apps::KvWiring wiring, mk::KernelProfile profile) {
  KvWorld kv;
  const bool needs_sky = wiring == apps::KvWiring::kSkyBridge;
  kv.world = MakeWorld(std::move(profile), needs_sky, needs_sky);
  kv.pipeline =
      std::make_unique<apps::KvPipeline>(*kv.world.kernel, kv.world.sky.get(), wiring);
  SB_CHECK(kv.pipeline->Setup().ok());
  return kv;
}

uint64_t RunKvOps(apps::KvPipeline& pipeline, int ops, size_t kv_len, uint64_t seed,
                  bool warmup) {
  sb::Rng rng(seed);
  const std::string value(kv_len, 'v');
  auto key_for = [&](int i) {
    std::string key = "key-" + std::to_string(i % 128);
    key.resize(kv_len, 'k');
    return key;
  };
  if (warmup) {
    for (int i = 0; i < 64; ++i) {
      SB_CHECK(pipeline.Insert(key_for(i), value).ok());
    }
  }
  hw::Core& core = pipeline.client_core();
  const uint64_t start = core.cycles();
  for (int i = 0; i < ops; ++i) {
    if (rng.OneIn(2)) {
      SB_CHECK(pipeline.Insert(key_for(static_cast<int>(rng.Below(128))), value).ok());
    } else {
      (void)pipeline.Query(key_for(static_cast<int>(rng.Below(128))));
    }
  }
  return (core.cycles() - start) / static_cast<uint64_t>(ops);
}

double OpsPerSecond(double cycles_per_op) {
  return hw::DefaultCosts().cycles_per_second / cycles_per_op;
}

std::string Humanize(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

JsonReporter::JsonReporter(std::string bench_name, int argc, char** argv)
    : bench_name_(std::move(bench_name)) {
  for (int i = 1; i < argc; ++i) {
    if (i + 1 < argc && std::strcmp(argv[i], "--json") == 0) {
      path_ = argv[i + 1];
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      // Arm fault points for this bench run, e.g.
      //   --faults=seed=42,skybridge.handler.crash:p=0.01
      const sb::Status armed = sb::fault::ArmFromSpec(argv[i] + 9);
      SB_CHECK(armed.ok()) << "bad --faults spec: " << armed.ToString();
    } else if (i + 1 < argc && std::strcmp(argv[i], "--faults") == 0) {
      const sb::Status armed = sb::fault::ArmFromSpec(argv[i + 1]);
      SB_CHECK(armed.ok()) << "bad --faults spec: " << armed.ToString();
    }
  }
}

JsonReporter::~JsonReporter() { Write(); }

void JsonReporter::Add(const std::string& name, double value) {
  std::ostringstream v;
  if (std::isfinite(value)) {
    v << value;
  } else {
    v << 0;
  }
  metrics_.emplace_back(name, v.str());
}

void JsonReporter::Add(const std::string& name, uint64_t value) {
  metrics_.emplace_back(name, std::to_string(value));
}

void JsonReporter::Stamp(const std::string& key, const std::string& json_literal) {
  stamps_.emplace_back(key, json_literal);
}

void JsonReporter::AddRegistry(const sb::telemetry::Registry& registry) {
  registry_json_ = registry.SnapshotJson();
}

void JsonReporter::AddRegistryJson(std::string registry_json) {
  registry_json_ = std::move(registry_json);
}

void JsonReporter::Write() {
  if (path_.empty() || written_) {
    return;
  }
  written_ = true;
  std::ofstream out(path_);
  if (!out) {
    SB_LOG(kError) << "cannot write bench JSON to " << path_;
    return;
  }
  out << "{\"bench\":\"" << bench_name_ << "\",";
  for (const auto& [key, literal] : stamps_) {
    out << "\"" << key << "\":" << literal << ",";
  }
  out << "\"metrics\":{";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << "\"" << metrics_[i].first << "\":" << metrics_[i].second;
  }
  out << "}";
  if (!registry_json_.empty()) {
    out << ",\"registry\":" << registry_json_;
  }
  out << "}\n";
}

}  // namespace bench
