#include "src/x86/assembler.h"

#include "src/base/logging.h"

namespace x86 {
namespace {

uint8_t Low3(Reg r) { return static_cast<uint8_t>(r) & 7; }
bool IsExt(Reg r) { return static_cast<uint8_t>(r) >= 8; }

}  // namespace

void Assembler::Raw(std::initializer_list<uint8_t> raw) { bytes_.insert(bytes_.end(), raw); }

void Assembler::Append(const std::vector<uint8_t>& raw) {
  bytes_.insert(bytes_.end(), raw.begin(), raw.end());
}

void Assembler::EmitU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Assembler::EmitU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Assembler::EmitRexW(Reg reg, Reg rm) {
  uint8_t rex = 0x48;
  if (IsExt(reg)) {
    rex |= 4;
  }
  if (IsExt(rm)) {
    rex |= 1;
  }
  bytes_.push_back(rex);
}

void Assembler::EmitModRmReg(Reg reg, Reg rm) {
  bytes_.push_back(static_cast<uint8_t>(0xc0 | (Low3(reg) << 3) | Low3(rm)));
}

void Assembler::EmitModRmMemDisp32(Reg reg, Reg base, int32_t disp) {
  // mod=10 (disp32). rsp/r12 as base require a SIB byte.
  if (Low3(base) == 4) {
    bytes_.push_back(static_cast<uint8_t>(0x80 | (Low3(reg) << 3) | 4));
    bytes_.push_back(static_cast<uint8_t>(0x24));  // scale=0, index=none(100), base=rsp
  } else {
    bytes_.push_back(static_cast<uint8_t>(0x80 | (Low3(reg) << 3) | Low3(base)));
  }
  EmitU32(static_cast<uint32_t>(disp));
}

void Assembler::Nop() { bytes_.push_back(0x90); }

void Assembler::Nops(int n) {
  for (int i = 0; i < n; ++i) {
    Nop();
  }
}

void Assembler::Int3() { bytes_.push_back(0xcc); }
void Assembler::Hlt() { bytes_.push_back(0xf4); }
void Assembler::Ret() { bytes_.push_back(0xc3); }
void Assembler::Vmfunc() { Raw({0x0f, 0x01, 0xd4}); }
void Assembler::Wrpkru() { Raw({0x0f, 0x01, 0xef}); }
void Assembler::Syscall() { Raw({0x0f, 0x05}); }

void Assembler::PushR(Reg r) {
  if (IsExt(r)) {
    bytes_.push_back(0x41);
  }
  bytes_.push_back(static_cast<uint8_t>(0x50 | Low3(r)));
}

void Assembler::PopR(Reg r) {
  if (IsExt(r)) {
    bytes_.push_back(0x41);
  }
  bytes_.push_back(static_cast<uint8_t>(0x58 | Low3(r)));
}

void Assembler::MovRI64(Reg dst, uint64_t imm) {
  bytes_.push_back(static_cast<uint8_t>(0x48 | (IsExt(dst) ? 1 : 0)));
  bytes_.push_back(static_cast<uint8_t>(0xb8 | Low3(dst)));
  EmitU64(imm);
}

void Assembler::MovRI32(Reg dst, uint32_t imm) {
  if (IsExt(dst)) {
    bytes_.push_back(0x41);
  }
  bytes_.push_back(static_cast<uint8_t>(0xb8 | Low3(dst)));
  EmitU32(imm);
}

void Assembler::MovRR64(Reg dst, Reg src) {
  EmitRexW(src, dst);
  bytes_.push_back(0x89);
  EmitModRmReg(src, dst);
}

void Assembler::MovRM64(Reg dst, Reg base, int32_t disp) {
  EmitRexW(dst, base);
  bytes_.push_back(0x8b);
  EmitModRmMemDisp32(dst, base, disp);
}

void Assembler::MovMR64(Reg base, int32_t disp, Reg src) {
  EmitRexW(src, base);
  bytes_.push_back(0x89);
  EmitModRmMemDisp32(src, base, disp);
}

void Assembler::Lea(Reg dst, Reg base, int index, int scale, int32_t disp) {
  uint8_t rex = 0x48;
  if (IsExt(dst)) {
    rex |= 4;
  }
  if (IsExt(base)) {
    rex |= 1;
  }
  if (index != kNoIndex && index >= 8) {
    rex |= 2;
  }
  bytes_.push_back(rex);
  bytes_.push_back(0x8d);
  if (index == kNoIndex && Low3(base) != 4) {
    bytes_.push_back(static_cast<uint8_t>(0x80 | (Low3(dst) << 3) | Low3(base)));
  } else {
    // SIB form.
    bytes_.push_back(static_cast<uint8_t>(0x80 | (Low3(dst) << 3) | 4));
    uint8_t scale_bits = 0;
    switch (scale) {
      case 1:
        scale_bits = 0;
        break;
      case 2:
        scale_bits = 1;
        break;
      case 4:
        scale_bits = 2;
        break;
      case 8:
        scale_bits = 3;
        break;
      default:
        SB_CHECK(index == kNoIndex) << "invalid scale " << scale;
        break;
    }
    const uint8_t index_bits = index == kNoIndex ? 4 : (static_cast<uint8_t>(index) & 7);
    SB_CHECK(index != 4) << "rsp cannot be an index register";
    bytes_.push_back(static_cast<uint8_t>((scale_bits << 6) | (index_bits << 3) | Low3(base)));
  }
  EmitU32(static_cast<uint32_t>(disp));
}

namespace {
// /n values for the 0x81 immediate-group ops.
constexpr uint8_t kOpAdd = 0, kOpOr = 1, kOpAnd = 4, kOpSub = 5, kOpXor = 6, kOpCmp = 7;
}  // namespace

#define SB_DEFINE_ARITH_RI(NAME, SLASH_N)                                  \
  void Assembler::NAME(Reg dst, int32_t imm) {                            \
    bytes_.push_back(static_cast<uint8_t>(0x48 | (IsExt(dst) ? 1 : 0)));  \
    bytes_.push_back(0x81);                                                \
    bytes_.push_back(static_cast<uint8_t>(0xc0 | (SLASH_N << 3) | Low3(dst))); \
    EmitU32(static_cast<uint32_t>(imm));                                   \
  }

SB_DEFINE_ARITH_RI(AddRI, kOpAdd)
SB_DEFINE_ARITH_RI(OrRI, kOpOr)
SB_DEFINE_ARITH_RI(AndRI, kOpAnd)
SB_DEFINE_ARITH_RI(SubRI, kOpSub)
SB_DEFINE_ARITH_RI(XorRI, kOpXor)
SB_DEFINE_ARITH_RI(CmpRI, kOpCmp)
#undef SB_DEFINE_ARITH_RI

#define SB_DEFINE_ARITH_RR(NAME, OPCODE)   \
  void Assembler::NAME(Reg dst, Reg src) { \
    EmitRexW(src, dst);                    \
    bytes_.push_back(OPCODE);              \
    EmitModRmReg(src, dst);                \
  }

SB_DEFINE_ARITH_RR(AddRR, 0x01)
SB_DEFINE_ARITH_RR(SubRR, 0x29)
SB_DEFINE_ARITH_RR(AndRR, 0x21)
SB_DEFINE_ARITH_RR(OrRR, 0x09)
SB_DEFINE_ARITH_RR(XorRR, 0x31)
SB_DEFINE_ARITH_RR(CmpRR, 0x39)
#undef SB_DEFINE_ARITH_RR

void Assembler::AddRM(Reg dst, Reg base, int32_t disp) {
  EmitRexW(dst, base);
  bytes_.push_back(0x03);
  EmitModRmMemDisp32(dst, base, disp);
}

void Assembler::AddMR(Reg base, int32_t disp, Reg src) {
  EmitRexW(src, base);
  bytes_.push_back(0x01);
  EmitModRmMemDisp32(src, base, disp);
}

void Assembler::ImulRRI(Reg dst, Reg src, int32_t imm) {
  EmitRexW(dst, src);
  bytes_.push_back(0x69);
  EmitModRmReg(dst, src);
  EmitU32(static_cast<uint32_t>(imm));
}

void Assembler::ImulRMI(Reg dst, Reg base, int32_t disp, int32_t imm) {
  EmitRexW(dst, base);
  bytes_.push_back(0x69);
  EmitModRmMemDisp32(dst, base, disp);
  EmitU32(static_cast<uint32_t>(imm));
}

void Assembler::ImulRR(Reg dst, Reg src) {
  EmitRexW(dst, src);
  Raw({0x0f, 0xaf});
  EmitModRmReg(dst, src);
}

namespace {
constexpr uint8_t kShlN = 4, kShrN = 5, kSarN = 7, kIncN = 0, kDecN = 1, kNotN = 2, kNegN = 3;
}  // namespace

void Assembler::ShlRI(Reg dst, uint8_t count) {
  bytes_.push_back(static_cast<uint8_t>(0x48 | (IsExt(dst) ? 1 : 0)));
  bytes_.push_back(0xc1);
  bytes_.push_back(static_cast<uint8_t>(0xc0 | (kShlN << 3) | Low3(dst)));
  bytes_.push_back(count);
}

void Assembler::ShrRI(Reg dst, uint8_t count) {
  bytes_.push_back(static_cast<uint8_t>(0x48 | (IsExt(dst) ? 1 : 0)));
  bytes_.push_back(0xc1);
  bytes_.push_back(static_cast<uint8_t>(0xc0 | (kShrN << 3) | Low3(dst)));
  bytes_.push_back(count);
}

void Assembler::SarRI(Reg dst, uint8_t count) {
  bytes_.push_back(static_cast<uint8_t>(0x48 | (IsExt(dst) ? 1 : 0)));
  bytes_.push_back(0xc1);
  bytes_.push_back(static_cast<uint8_t>(0xc0 | (kSarN << 3) | Low3(dst)));
  bytes_.push_back(count);
}

void Assembler::IncR(Reg dst) {
  bytes_.push_back(static_cast<uint8_t>(0x48 | (IsExt(dst) ? 1 : 0)));
  bytes_.push_back(0xff);
  bytes_.push_back(static_cast<uint8_t>(0xc0 | (kIncN << 3) | Low3(dst)));
}

void Assembler::DecR(Reg dst) {
  bytes_.push_back(static_cast<uint8_t>(0x48 | (IsExt(dst) ? 1 : 0)));
  bytes_.push_back(0xff);
  bytes_.push_back(static_cast<uint8_t>(0xc0 | (kDecN << 3) | Low3(dst)));
}

void Assembler::NegR(Reg dst) {
  bytes_.push_back(static_cast<uint8_t>(0x48 | (IsExt(dst) ? 1 : 0)));
  bytes_.push_back(0xf7);
  bytes_.push_back(static_cast<uint8_t>(0xc0 | (kNegN << 3) | Low3(dst)));
}

void Assembler::NotR(Reg dst) {
  bytes_.push_back(static_cast<uint8_t>(0x48 | (IsExt(dst) ? 1 : 0)));
  bytes_.push_back(0xf7);
  bytes_.push_back(static_cast<uint8_t>(0xc0 | (kNotN << 3) | Low3(dst)));
}

void Assembler::JmpRel32(int32_t rel) {
  bytes_.push_back(0xe9);
  EmitU32(static_cast<uint32_t>(rel));
}

void Assembler::JmpRel8(int8_t rel) {
  bytes_.push_back(0xeb);
  bytes_.push_back(static_cast<uint8_t>(rel));
}

void Assembler::CallRel32(int32_t rel) {
  bytes_.push_back(0xe8);
  EmitU32(static_cast<uint32_t>(rel));
}

void Assembler::JccRel32(uint8_t cond, int32_t rel) {
  SB_CHECK(cond <= 0xf);
  bytes_.push_back(0x0f);
  bytes_.push_back(static_cast<uint8_t>(0x80 | cond));
  EmitU32(static_cast<uint32_t>(rel));
}

void Assembler::JccRel8(uint8_t cond, int8_t rel) {
  SB_CHECK(cond <= 0xf);
  bytes_.push_back(static_cast<uint8_t>(0x70 | cond));
  bytes_.push_back(static_cast<uint8_t>(rel));
}

void Assembler::PatchRel32(size_t insn_end_off, size_t patch_off, size_t target_off) {
  SB_CHECK(patch_off + 4 <= bytes_.size());
  const int64_t rel = static_cast<int64_t>(target_off) - static_cast<int64_t>(insn_end_off);
  const auto rel32 = static_cast<uint32_t>(static_cast<int32_t>(rel));
  for (int i = 0; i < 4; ++i) {
    bytes_[patch_off + static_cast<size_t>(i)] = static_cast<uint8_t>(rel32 >> (8 * i));
  }
}

}  // namespace x86
