// A small x86-64 emulator for the rewriter's instruction subset.
//
// The rewriter's correctness claim — "functionally-equivalent instructions" —
// is *tested*, not assumed: property tests execute the original and rewritten
// code in this emulator with identical initial state and compare the final
// architectural state, while asserting the rewritten bytes never execute a
// VMFUNC.

#ifndef SRC_X86_EMULATOR_H_
#define SRC_X86_EMULATOR_H_

#include <cstdint>
#include <span>
#include <unordered_map>

#include "src/base/status.h"
#include "src/x86/insn.h"

namespace x86 {

struct Flags {
  bool zf = false;
  bool sf = false;
  bool cf = false;
  bool of = false;
  bool pf = false;

  bool operator==(const Flags&) const = default;
};

struct CpuState {
  uint64_t regs[kNumRegs] = {};
  uint64_t rip = 0;
  Flags flags;

  uint64_t& reg(Reg r) { return regs[static_cast<size_t>(r)]; }
  uint64_t reg(Reg r) const { return regs[static_cast<size_t>(r)]; }
};

enum class StopReason : uint8_t {
  kRet,         // Top-level RET (returned to the sentinel address).
  kHlt,
  kInt3,
  kVmfunc,      // A VMFUNC instruction was executed.
  kSyscall,
  kMaxSteps,
  kUnsupported, // Instruction outside the emulated subset.
  kBadFetch,    // RIP left mapped code.
};

struct StopInfo {
  StopReason reason = StopReason::kMaxSteps;
  uint64_t steps = 0;
  uint64_t rip = 0;
  uint64_t vmfunc_count = 0;  // How many VMFUNCs executed during the run.
};

class Emulator {
 public:
  Emulator();

  // Loads bytes into the flat memory at `base` (code and data share memory).
  void LoadBytes(uint64_t base, std::span<const uint8_t> bytes);

  CpuState& state() { return state_; }
  const CpuState& state() const { return state_; }

  uint8_t ReadByte(uint64_t addr) const;
  void WriteByte(uint64_t addr, uint8_t value);
  uint64_t ReadMem(uint64_t addr, unsigned size) const;
  void WriteMem(uint64_t addr, uint64_t value, unsigned size);

  // Runs from state().rip until a stop condition; the stack is initialized
  // with a sentinel return address so a top-level RET stops cleanly.
  StopInfo Run(uint64_t max_steps);

  // Executes exactly one instruction; fills `reason` on stop conditions and
  // returns false when the run should end.
  bool Step(StopInfo& info);

  // Snapshot of the data memory for equivalence comparison (excludes the
  // given code ranges so moved code bytes don't count as divergence).
  std::unordered_map<uint64_t, uint8_t> MemorySnapshot() const { return memory_; }

  static constexpr uint64_t kSentinelReturn = 0xdead00000000beefULL;
  static constexpr uint64_t kInitialRsp = 0x7fff'0000'0000ULL;

 private:
  // Effective address of a ModRM memory operand (insn at `insn_addr`).
  uint64_t EffectiveAddress(const Insn& insn, uint64_t insn_addr,
                            std::span<const uint8_t> bytes) const;
  uint64_t ReadOperandRm(const Insn& insn, uint64_t insn_addr, std::span<const uint8_t> bytes,
                         unsigned size) const;
  void WriteOperandRm(const Insn& insn, uint64_t insn_addr, std::span<const uint8_t> bytes,
                      uint64_t value, unsigned size);
  void WriteReg(uint8_t reg, uint64_t value, unsigned size);
  uint64_t ReadRegSized(uint8_t reg, unsigned size) const;

  void SetFlagsLogic(uint64_t result, unsigned size);
  void SetFlagsAddSub(uint64_t a, uint64_t b, uint64_t result, bool is_sub, unsigned size);
  bool EvalCondition(uint8_t cond) const;

  CpuState state_;
  std::unordered_map<uint64_t, uint8_t> memory_;
};

}  // namespace x86

#endif  // SRC_X86_EMULATOR_H_
