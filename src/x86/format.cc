#include "src/x86/format.h"

#include <cstdio>

#include "src/x86/decoder.h"

namespace x86 {
namespace {

uint64_t ReadLittle(std::span<const uint8_t> bytes, size_t off, unsigned len) {
  uint64_t v = 0;
  for (unsigned i = 0; i < len; ++i) {
    v |= static_cast<uint64_t>(bytes[off + i]) << (8 * i);
  }
  return v;
}

int64_t SignExtend(uint64_t v, unsigned bits) {
  if (bits >= 64) {
    return static_cast<int64_t>(v);
  }
  const uint64_t sign = 1ULL << (bits - 1);
  return static_cast<int64_t>((v ^ sign) - sign);
}

std::string Hex(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string SignedHex(int64_t v) {
  if (v < 0) {
    return "-" + Hex(static_cast<uint64_t>(-v));
  }
  return Hex(static_cast<uint64_t>(v));
}

std::string MemOperand(std::span<const uint8_t> bytes, const Insn& insn) {
  int64_t disp = 0;
  if (insn.disp_len > 0) {
    disp = SignExtend(ReadLittle(bytes, insn.disp_off, insn.disp_len), insn.disp_len * 8u);
  }
  if (insn.is_rip_relative()) {
    return "[rip" + (disp != 0 ? (disp > 0 ? "+" : "") + SignedHex(disp) : "") + "]";
  }
  std::string out = "[";
  bool first = true;
  if (insn.has_sib) {
    if (!((insn.sib & 7) == 5 && insn.modrm_mod() == 0)) {
      out += RegName(static_cast<Reg>(insn.sib_base()));
      first = false;
    }
    if ((insn.sib & 0x38) != 0x20) {
      if (!first) {
        out += "+";
      }
      out += RegName(static_cast<Reg>(insn.sib_index()));
      const int scale = 1 << insn.sib_scale();
      if (scale > 1) {
        out += "*" + std::to_string(scale);
      }
      first = false;
    }
  } else {
    out += RegName(static_cast<Reg>(insn.modrm_rm()));
    first = false;
  }
  if (disp != 0 || first) {
    if (!first && disp >= 0) {
      out += "+";
    }
    out += SignedHex(disp);
  }
  return out + "]";
}

std::string RmOperand(std::span<const uint8_t> bytes, const Insn& insn) {
  if (insn.modrm_is_reg()) {
    return RegName(static_cast<Reg>(insn.modrm_rm()));
  }
  return MemOperand(bytes, insn);
}

const char* ArithName(Mnemonic m) {
  switch (m) {
    case Mnemonic::kAdd:
      return "add";
    case Mnemonic::kOr:
      return "or";
    case Mnemonic::kAnd:
      return "and";
    case Mnemonic::kSub:
      return "sub";
    case Mnemonic::kXor:
      return "xor";
    case Mnemonic::kCmp:
      return "cmp";
    case Mnemonic::kTest:
      return "test";
    default:
      return "?";
  }
}

}  // namespace

std::string FormatInsn(std::span<const uint8_t> bytes, const Insn& insn) {
  if (!insn.valid) {
    return "(bad)";
  }
  const uint8_t op = bytes[insn.opcode_off];
  const uint64_t imm = insn.imm_len > 0 ? ReadLittle(bytes, insn.imm_off, insn.imm_len) : 0;
  const int64_t simm = insn.imm_len > 0 ? SignExtend(imm, insn.imm_len * 8u) : 0;

  switch (insn.mnemonic) {
    case Mnemonic::kNop:
      return "nop";
    case Mnemonic::kVmfunc:
      return "vmfunc";
    case Mnemonic::kWrpkru:
      return "wrpkru";
    case Mnemonic::kSyscall:
      return "syscall";
    case Mnemonic::kRet:
      return "ret";
    case Mnemonic::kInt3:
      return "int3";
    case Mnemonic::kHlt:
      return "hlt";
    case Mnemonic::kPush:
      if (op >= 0x50 && op <= 0x57) {
        return "push " +
               RegName(static_cast<Reg>((op & 7) | ((insn.rex & 1) << 3)));
      }
      return "push " + SignedHex(simm);
    case Mnemonic::kPop:
      return "pop " + RegName(static_cast<Reg>((op & 7) | ((insn.rex & 1) << 3)));
    case Mnemonic::kMovImm64:
      return "mov " + RegName(static_cast<Reg>((op & 7) | ((insn.rex & 1) << 3))) + ", " +
             Hex(imm);
    case Mnemonic::kMov: {
      if (op >= 0xb0 && op <= 0xbf) {
        return "mov " + RegName(static_cast<Reg>((op & 7) | ((insn.rex & 1) << 3))) + ", " +
               Hex(imm);
      }
      if (op == 0x89 || op == 0x88) {
        return "mov " + RmOperand(bytes, insn) + ", " +
               RegName(static_cast<Reg>(insn.modrm_reg()));
      }
      if (op == 0x8b || op == 0x8a) {
        return "mov " + RegName(static_cast<Reg>(insn.modrm_reg())) + ", " +
               RmOperand(bytes, insn);
      }
      return "mov " + RmOperand(bytes, insn) + ", " + SignedHex(simm);
    }
    case Mnemonic::kLea:
      return "lea " + RegName(static_cast<Reg>(insn.modrm_reg())) + ", " +
             MemOperand(bytes, insn);
    case Mnemonic::kImul:
      if (op == 0x69 || op == 0x6b) {
        return "imul " + RegName(static_cast<Reg>(insn.modrm_reg())) + ", " +
               RmOperand(bytes, insn) + ", " + SignedHex(simm);
      }
      return "imul " + RegName(static_cast<Reg>(insn.modrm_reg())) + ", " +
             RmOperand(bytes, insn);
    case Mnemonic::kAdd:
    case Mnemonic::kOr:
    case Mnemonic::kAnd:
    case Mnemonic::kSub:
    case Mnemonic::kXor:
    case Mnemonic::kCmp:
    case Mnemonic::kTest: {
      const std::string name = ArithName(insn.mnemonic);
      if (!insn.has_modrm) {  // rax-immediate forms.
        return name + " rax, " + SignedHex(simm);
      }
      if (insn.imm_len > 0) {
        return name + " " + RmOperand(bytes, insn) + ", " + SignedHex(simm);
      }
      const int form = op & 7;
      if (form == 2 || form == 3) {
        return name + " " + RegName(static_cast<Reg>(insn.modrm_reg())) + ", " +
               RmOperand(bytes, insn);
      }
      return name + " " + RmOperand(bytes, insn) + ", " +
             RegName(static_cast<Reg>(insn.modrm_reg()));
    }
    case Mnemonic::kShl:
      return "shl " + RmOperand(bytes, insn) + ", " + std::to_string(insn.imm_len > 0 ? imm : 1);
    case Mnemonic::kShr:
      return "shr " + RmOperand(bytes, insn) + ", " + std::to_string(insn.imm_len > 0 ? imm : 1);
    case Mnemonic::kSar:
      return "sar " + RmOperand(bytes, insn) + ", " + std::to_string(insn.imm_len > 0 ? imm : 1);
    case Mnemonic::kInc:
      return "inc " + RmOperand(bytes, insn);
    case Mnemonic::kDec:
      return "dec " + RmOperand(bytes, insn);
    case Mnemonic::kNeg:
      return "neg " + RmOperand(bytes, insn);
    case Mnemonic::kNot:
      return "not " + RmOperand(bytes, insn);
    case Mnemonic::kJmpRel:
      return "jmp " + SignedHex(simm) + " (rel)";
    case Mnemonic::kCallRel:
      return "call " + SignedHex(simm) + " (rel)";
    case Mnemonic::kJccRel: {
      static const char* kCond[] = {"o", "no", "b",  "nb", "z", "nz", "be", "nbe",
                                    "s", "ns", "p",  "np", "l", "nl", "le", "nle"};
      const uint8_t cond = static_cast<uint8_t>(
          insn.opcode_len == 1 ? (op & 0xf) : (bytes[insn.opcode_off + 1] & 0xf));
      return std::string("j") + kCond[cond] + " " + SignedHex(simm) + " (rel)";
    }
    case Mnemonic::kOther:
    default: {
      std::string out = "(unsupported:";
      for (size_t i = 0; i < insn.length && i < 6; ++i) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), " %02x", bytes[i]);
        out += buf;
      }
      return out + ")";
    }
  }
}

std::string Disassemble(std::span<const uint8_t> code) {
  std::string out;
  size_t pos = 0;
  while (pos < code.size()) {
    const Insn insn = Decode(code, pos);
    char prefix[16];
    std::snprintf(prefix, sizeof(prefix), "%6zx:  ", pos);
    out += prefix;
    for (size_t i = 0; i < insn.length; ++i) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%02x ", code[pos + i]);
      out += buf;
    }
    for (size_t i = insn.length; i < 12; ++i) {
      out += "   ";
    }
    out += FormatInsn(code.subspan(pos), insn);
    out += "\n";
    pos += insn.length;
  }
  return out;
}

}  // namespace x86
