#include "src/x86/decoder.h"

#include <array>

#include "src/base/logging.h"

namespace x86 {
namespace {

constexpr size_t kMaxInsnLen = 15;

enum class ImmKind : uint8_t {
  kNone,
  kImm8,
  kImm16,
  kImmZ,        // 4 bytes, or 2 with the 0x66 prefix.
  kImmVorZ,     // B8+r: 4 bytes (2 with 0x66), 8 with REX.W.
  kMoffs,       // 8 bytes (4 with the 0x67 prefix).
  kImm16Imm8,   // ENTER.
  kRel8,
  kRel32,
  kGroupF6,     // imm8 iff modrm.reg is 0 or 1.
  kGroupF7,     // immz iff modrm.reg is 0 or 1.
};

struct OpInfo {
  bool valid = false;
  bool modrm = false;
  ImmKind imm = ImmKind::kNone;
};

struct Tables {
  std::array<OpInfo, 256> one;   // single-byte opcodes
  std::array<OpInfo, 256> two;   // 0F xx
};

Tables BuildTables() {
  Tables t{};
  auto set = [](std::array<OpInfo, 256>& map, int op, bool modrm, ImmKind imm) {
    map[static_cast<size_t>(op)] = OpInfo{true, modrm, imm};
  };
  auto set_range = [&](std::array<OpInfo, 256>& map, int lo, int hi, bool modrm, ImmKind imm) {
    for (int op = lo; op <= hi; ++op) {
      set(map, op, modrm, imm);
    }
  };

  // ---- One-byte map ----
  // Arithmetic blocks: add/or/adc/sbb/and/sub/xor/cmp at 0x00,0x08,...,0x38.
  for (int base = 0x00; base <= 0x38; base += 8) {
    set_range(t.one, base + 0, base + 3, true, ImmKind::kNone);
    set(t.one, base + 4, false, ImmKind::kImm8);
    set(t.one, base + 5, false, ImmKind::kImmZ);
    // +6/+7 are invalid in 64-bit mode.
  }
  set_range(t.one, 0x50, 0x5f, false, ImmKind::kNone);  // push/pop r64
  set(t.one, 0x63, true, ImmKind::kNone);               // movsxd
  set(t.one, 0x68, false, ImmKind::kImmZ);              // push immz
  set(t.one, 0x69, true, ImmKind::kImmZ);               // imul r, rm, immz
  set(t.one, 0x6a, false, ImmKind::kImm8);              // push imm8
  set(t.one, 0x6b, true, ImmKind::kImm8);               // imul r, rm, imm8
  set_range(t.one, 0x6c, 0x6f, false, ImmKind::kNone);  // ins/outs
  set_range(t.one, 0x70, 0x7f, false, ImmKind::kRel8);  // jcc rel8
  set(t.one, 0x80, true, ImmKind::kImm8);
  set(t.one, 0x81, true, ImmKind::kImmZ);
  set(t.one, 0x83, true, ImmKind::kImm8);
  set_range(t.one, 0x84, 0x8b, true, ImmKind::kNone);  // test/xchg/mov
  set(t.one, 0x8c, true, ImmKind::kNone);
  set(t.one, 0x8d, true, ImmKind::kNone);  // lea
  set(t.one, 0x8e, true, ImmKind::kNone);
  set(t.one, 0x8f, true, ImmKind::kNone);              // pop rm
  set_range(t.one, 0x90, 0x99, false, ImmKind::kNone); // xchg/nop/cwde/cdq
  set(t.one, 0x9b, false, ImmKind::kNone);
  set_range(t.one, 0x9c, 0x9f, false, ImmKind::kNone);  // pushf/popf/sahf/lahf
  set_range(t.one, 0xa0, 0xa3, false, ImmKind::kMoffs); // mov moffs
  set_range(t.one, 0xa4, 0xa7, false, ImmKind::kNone);  // movs/cmps
  set(t.one, 0xa8, false, ImmKind::kImm8);              // test al, imm8
  set(t.one, 0xa9, false, ImmKind::kImmZ);              // test eax, immz
  set_range(t.one, 0xaa, 0xaf, false, ImmKind::kNone);  // stos/lods/scas
  set_range(t.one, 0xb0, 0xb7, false, ImmKind::kImm8);  // mov r8, imm8
  set_range(t.one, 0xb8, 0xbf, false, ImmKind::kImmVorZ);
  set(t.one, 0xc0, true, ImmKind::kImm8);  // shift group
  set(t.one, 0xc1, true, ImmKind::kImm8);
  set(t.one, 0xc2, false, ImmKind::kImm16);  // ret imm16
  set(t.one, 0xc3, false, ImmKind::kNone);   // ret
  set(t.one, 0xc6, true, ImmKind::kImm8);    // mov rm8, imm8
  set(t.one, 0xc7, true, ImmKind::kImmZ);    // mov rm, immz
  set(t.one, 0xc8, false, ImmKind::kImm16Imm8);  // enter
  set(t.one, 0xc9, false, ImmKind::kNone);       // leave
  set(t.one, 0xca, false, ImmKind::kImm16);      // retf imm16
  set(t.one, 0xcb, false, ImmKind::kNone);
  set(t.one, 0xcc, false, ImmKind::kNone);  // int3
  set(t.one, 0xcd, false, ImmKind::kImm8);  // int imm8
  set(t.one, 0xcf, false, ImmKind::kNone);  // iret
  set_range(t.one, 0xd0, 0xd3, true, ImmKind::kNone);  // shift group
  set(t.one, 0xd7, false, ImmKind::kNone);             // xlat
  set_range(t.one, 0xd8, 0xdf, true, ImmKind::kNone);  // x87
  set_range(t.one, 0xe0, 0xe3, false, ImmKind::kRel8); // loop/jcxz
  set(t.one, 0xe4, false, ImmKind::kImm8);             // in
  set(t.one, 0xe5, false, ImmKind::kImm8);
  set(t.one, 0xe6, false, ImmKind::kImm8);  // out
  set(t.one, 0xe7, false, ImmKind::kImm8);
  set(t.one, 0xe8, false, ImmKind::kRel32);  // call rel32
  set(t.one, 0xe9, false, ImmKind::kRel32);  // jmp rel32
  set(t.one, 0xeb, false, ImmKind::kRel8);   // jmp rel8
  set_range(t.one, 0xec, 0xef, false, ImmKind::kNone);  // in/out dx
  set(t.one, 0xf1, false, ImmKind::kNone);              // int1
  set(t.one, 0xf4, false, ImmKind::kNone);              // hlt
  set(t.one, 0xf5, false, ImmKind::kNone);              // cmc
  set(t.one, 0xf6, true, ImmKind::kGroupF6);
  set(t.one, 0xf7, true, ImmKind::kGroupF7);
  set_range(t.one, 0xf8, 0xfd, false, ImmKind::kNone);  // clc..std
  set(t.one, 0xfe, true, ImmKind::kNone);               // inc/dec group
  set(t.one, 0xff, true, ImmKind::kNone);               // inc/dec/call/jmp/push group

  // ---- Two-byte map (0F xx): default ModRM, explicit exceptions ----
  for (int op = 0; op <= 0xff; ++op) {
    set(t.two, op, true, ImmKind::kNone);
  }
  auto no_modrm = [&](int op) { set(t.two, op, false, ImmKind::kNone); };
  no_modrm(0x05);  // syscall
  no_modrm(0x06);  // clts
  no_modrm(0x07);  // sysret
  no_modrm(0x08);  // invd
  no_modrm(0x09);  // wbinvd
  no_modrm(0x0b);  // ud2
  no_modrm(0x30);  // wrmsr
  no_modrm(0x31);  // rdtsc
  no_modrm(0x32);  // rdmsr
  no_modrm(0x33);  // rdpmc
  no_modrm(0x34);  // sysenter
  no_modrm(0x35);  // sysexit
  no_modrm(0x77);  // emms
  no_modrm(0xa0);  // push fs
  no_modrm(0xa1);  // pop fs
  no_modrm(0xa2);  // cpuid
  no_modrm(0xa8);  // push gs
  no_modrm(0xa9);  // pop gs
  no_modrm(0xaa);  // rsm
  for (int op = 0xc8; op <= 0xcf; ++op) {
    no_modrm(op);  // bswap
  }
  for (int op = 0x80; op <= 0x8f; ++op) {
    set(t.two, op, false, ImmKind::kRel32);  // jcc rel32
  }
  set(t.two, 0x70, true, ImmKind::kImm8);  // pshuf*
  set(t.two, 0x71, true, ImmKind::kImm8);
  set(t.two, 0x72, true, ImmKind::kImm8);
  set(t.two, 0x73, true, ImmKind::kImm8);
  set(t.two, 0xa4, true, ImmKind::kImm8);  // shld imm8
  set(t.two, 0xac, true, ImmKind::kImm8);  // shrd imm8
  set(t.two, 0xba, true, ImmKind::kImm8);  // bt group imm8
  set(t.two, 0xc2, true, ImmKind::kImm8);  // cmpps
  set(t.two, 0xc4, true, ImmKind::kImm8);  // pinsrw
  set(t.two, 0xc5, true, ImmKind::kImm8);  // pextrw
  set(t.two, 0xc6, true, ImmKind::kImm8);  // shufps
  // 0F 38 / 0F 3A escapes handled structurally in Decode().

  return t;
}

const Tables& GetTables() {
  static const Tables kTables = BuildTables();
  return kTables;
}

bool IsLegacyPrefix(uint8_t b) {
  switch (b) {
    case 0x66:
    case 0x67:
    case 0xf0:
    case 0xf2:
    case 0xf3:
    case 0x2e:
    case 0x36:
    case 0x3e:
    case 0x26:
    case 0x64:
    case 0x65:
      return true;
    default:
      return false;
  }
}

Mnemonic ArithMnemonicForBlock(int block) {
  switch (block) {
    case 0:
      return Mnemonic::kAdd;
    case 1:
      return Mnemonic::kOr;
    case 4:
      return Mnemonic::kAnd;
    case 5:
      return Mnemonic::kSub;
    case 6:
      return Mnemonic::kXor;
    case 7:
      return Mnemonic::kCmp;
    default:
      return Mnemonic::kOther;  // adc/sbb
  }
}

// Classifies the instruction for the emulator.
Mnemonic Classify(const Insn& insn, std::span<const uint8_t> code, size_t opcode_pos) {
  const uint8_t op = code[opcode_pos];
  if (insn.opcode_len == 1) {
    if (op == 0x90 && insn.rex == 0) {
      return Mnemonic::kNop;
    }
    if (op >= 0x50 && op <= 0x57) {
      return Mnemonic::kPush;
    }
    if (op >= 0x58 && op <= 0x5f) {
      return Mnemonic::kPop;
    }
    if (op <= 0x3d) {
      const int block = op >> 3;
      const int form = op & 7;
      if (form <= 5) {
        return ArithMnemonicForBlock(block);
      }
    }
    switch (op) {
      case 0x68:
      case 0x6a:
        return Mnemonic::kPush;
      case 0x69:
      case 0x6b:
        return Mnemonic::kImul;
      case 0x84:
      case 0x85:
      case 0xa8:
      case 0xa9:
        return Mnemonic::kTest;
      case 0x88:
      case 0x89:
      case 0x8a:
      case 0x8b:
      case 0xc6:
      case 0xc7:
        return Mnemonic::kMov;
      case 0x8d:
        return Mnemonic::kLea;
      case 0xc3:
        return Mnemonic::kRet;
      case 0xcc:
        return Mnemonic::kInt3;
      case 0xe8:
        return Mnemonic::kCallRel;
      case 0xe9:
      case 0xeb:
        return Mnemonic::kJmpRel;
      case 0xf4:
        return Mnemonic::kHlt;
      default:
        break;
    }
    if (op >= 0x70 && op <= 0x7f) {
      return Mnemonic::kJccRel;
    }
    if (op >= 0xb0 && op <= 0xb7) {
      return Mnemonic::kMov;
    }
    if (op >= 0xb8 && op <= 0xbf) {
      return insn.rex_w() ? Mnemonic::kMovImm64 : Mnemonic::kMov;
    }
    if (op == 0x80 || op == 0x81 || op == 0x83) {
      return ArithMnemonicForBlock(insn.modrm_reg() & 7);
    }
    if (op == 0xf6 || op == 0xf7) {
      switch (insn.modrm_reg() & 7) {
        case 0:
        case 1:
          return Mnemonic::kTest;
        case 2:
          return Mnemonic::kNot;
        case 3:
          return Mnemonic::kNeg;
        default:
          return Mnemonic::kOther;  // mul/imul/div/idiv
      }
    }
    if (op == 0xc1 || op == 0xd1 || op == 0xc0 || op == 0xd0) {
      switch (insn.modrm_reg() & 7) {
        case 4:
          return Mnemonic::kShl;
        case 5:
          return Mnemonic::kShr;
        case 7:
          return Mnemonic::kSar;
        default:
          return Mnemonic::kOther;  // rol/ror/rcl/rcr
      }
    }
    if (op == 0xff) {
      switch (insn.modrm_reg() & 7) {
        case 0:
          return Mnemonic::kInc;
        case 1:
          return Mnemonic::kDec;
        default:
          return Mnemonic::kOther;  // call/jmp/push indirect
      }
    }
    return Mnemonic::kOther;
  }
  if (insn.opcode_len == 2) {
    const uint8_t op2 = code[opcode_pos + 1];
    if (op2 == 0x01 && insn.modrm == 0xd4) {
      return Mnemonic::kVmfunc;
    }
    if (op2 == 0x01 && insn.modrm == 0xef) {
      return Mnemonic::kWrpkru;
    }
    if (op2 == 0x05) {
      return Mnemonic::kSyscall;
    }
    if (op2 >= 0x80 && op2 <= 0x8f) {
      return Mnemonic::kJccRel;
    }
    if (op2 == 0xaf) {
      return Mnemonic::kImul;
    }
    if (op2 == 0x1f) {
      return Mnemonic::kNop;  // multi-byte NOP
    }
    return Mnemonic::kOther;
  }
  return Mnemonic::kOther;
}

}  // namespace

Insn Decode(std::span<const uint8_t> code, size_t offset) {
  Insn insn;
  insn.length = 1;  // Conservative skip on failure.
  if (offset >= code.size()) {
    return insn;
  }
  const size_t limit = std::min(code.size(), offset + kMaxInsnLen);
  size_t pos = offset;
  bool opsize16 = false;
  bool addr32 = false;

  // Legacy prefixes and REX. A REX byte not immediately preceding the opcode
  // is architecturally ignored; tracking the last one seen matches that.
  uint8_t rex = 0;
  while (pos < limit) {
    const uint8_t b = code[pos];
    if (IsLegacyPrefix(b)) {
      if (b == 0x66) {
        opsize16 = true;
      }
      if (b == 0x67) {
        addr32 = true;
      }
      rex = 0;  // REX must be the last prefix; earlier REX is ignored.
      ++insn.num_prefixes;
      ++pos;
      continue;
    }
    if (b >= 0x40 && b <= 0x4f) {
      rex = b;
      ++pos;
      continue;
    }
    break;
  }
  if (pos >= limit) {
    return insn;
  }
  insn.rex = rex;
  insn.operand_size_16 = opsize16;
  insn.opcode_off = static_cast<uint8_t>(pos - offset);

  const Tables& tables = GetTables();
  OpInfo info;
  uint8_t op = code[pos];

  // VEX prefixes (C4/C5 are always VEX in 64-bit mode).
  bool is_vex = false;
  uint8_t vex_map = 1;
  if (op == 0xc4 || op == 0xc5) {
    is_vex = true;
    const size_t vex_len = op == 0xc4 ? 3 : 2;
    if (pos + vex_len >= limit) {
      return insn;
    }
    if (op == 0xc4) {
      vex_map = code[pos + 1] & 0x1f;
    }
    pos += vex_len;
    op = code[pos];
    if (vex_map > 3 || vex_map == 0) {
      return insn;  // Reserved map.
    }
    info = OpInfo{true, true, vex_map == 3 ? ImmKind::kImm8 : ImmKind::kNone};
    insn.opcode_off = static_cast<uint8_t>(pos - offset);
    insn.opcode_len = 1;
    ++pos;
  } else if (op == 0x0f) {
    if (pos + 1 >= limit) {
      return insn;
    }
    const uint8_t op2 = code[pos + 1];
    if (op2 == 0x38 || op2 == 0x3a) {
      if (pos + 2 >= limit) {
        return insn;
      }
      info = OpInfo{true, true, op2 == 0x3a ? ImmKind::kImm8 : ImmKind::kNone};
      insn.opcode_len = 3;
      pos += 3;
    } else {
      info = tables.two[op2];
      insn.opcode_len = 2;
      pos += 2;
    }
  } else {
    info = tables.one[op];
    insn.opcode_len = 1;
    ++pos;
  }

  if (!info.valid) {
    return insn;
  }

  // ModRM / SIB / displacement.
  uint8_t disp_len = 0;
  if (info.modrm) {
    if (pos >= limit) {
      return insn;
    }
    insn.has_modrm = true;
    insn.modrm_off = static_cast<uint8_t>(pos - offset);
    insn.modrm = code[pos];
    ++pos;
    const uint8_t mod = insn.modrm >> 6;
    const uint8_t rm = insn.modrm & 7;
    if (mod != 3) {
      if (rm == 4) {
        if (pos >= limit) {
          return insn;
        }
        insn.has_sib = true;
        insn.sib_off = static_cast<uint8_t>(pos - offset);
        insn.sib = code[pos];
        ++pos;
      }
      if (mod == 1) {
        disp_len = 1;
      } else if (mod == 2) {
        disp_len = 4;
      } else {  // mod == 0
        if (rm == 5) {
          disp_len = 4;  // RIP-relative.
        } else if (insn.has_sib && (insn.sib & 7) == 5) {
          disp_len = 4;  // SIB with no base.
        }
      }
    }
  }
  if (disp_len > 0) {
    if (pos + disp_len > limit) {
      return insn;
    }
    insn.disp_off = static_cast<uint8_t>(pos - offset);
    insn.disp_len = disp_len;
    pos += disp_len;
  }

  // Immediate.
  uint8_t imm_len = 0;
  switch (info.imm) {
    case ImmKind::kNone:
      break;
    case ImmKind::kImm8:
    case ImmKind::kRel8:
      imm_len = 1;
      break;
    case ImmKind::kImm16:
      imm_len = 2;
      break;
    case ImmKind::kImmZ:
      imm_len = opsize16 ? 2 : 4;
      break;
    case ImmKind::kImmVorZ:
      imm_len = (rex & 8) != 0 ? 8 : (opsize16 ? 2 : 4);
      break;
    case ImmKind::kMoffs:
      imm_len = addr32 ? 4 : 8;
      break;
    case ImmKind::kImm16Imm8:
      imm_len = 3;
      break;
    case ImmKind::kRel32:
      imm_len = 4;
      break;
    case ImmKind::kGroupF6:
      imm_len = (insn.modrm_reg() & 7) <= 1 ? 1 : 0;
      break;
    case ImmKind::kGroupF7:
      imm_len = (insn.modrm_reg() & 7) <= 1 ? (opsize16 ? 2 : 4) : 0;
      break;
  }
  if (imm_len > 0) {
    if (pos + imm_len > limit) {
      return insn;
    }
    insn.imm_off = static_cast<uint8_t>(pos - offset);
    insn.imm_len = imm_len;
    pos += imm_len;
  }

  insn.length = static_cast<uint8_t>(pos - offset);
  insn.valid = true;
  insn.mnemonic =
      is_vex ? Mnemonic::kOther : Classify(insn, code, offset + insn.opcode_off);
  return insn;
}

std::vector<size_t> LinearSweep(std::span<const uint8_t> code) {
  std::vector<size_t> starts;
  size_t pos = 0;
  while (pos < code.size()) {
    starts.push_back(pos);
    const Insn insn = Decode(code, pos);
    pos += insn.length;
  }
  return starts;
}

}  // namespace x86
