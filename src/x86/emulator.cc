#include "src/x86/emulator.h"

#include <algorithm>
#include <bit>

#include "src/base/logging.h"
#include "src/x86/decoder.h"

namespace x86 {
namespace {

uint64_t SizeMask(unsigned size) {
  return size >= 64 ? ~0ULL : ((1ULL << size) - 1);
}

int64_t SignExtend(uint64_t v, unsigned bits) {
  if (bits >= 64) {
    return static_cast<int64_t>(v);
  }
  const uint64_t sign = 1ULL << (bits - 1);
  return static_cast<int64_t>((v ^ sign) - sign);
}

uint64_t ReadLittle(std::span<const uint8_t> bytes, size_t off, unsigned len) {
  uint64_t v = 0;
  for (unsigned i = 0; i < len; ++i) {
    v |= static_cast<uint64_t>(bytes[off + i]) << (8 * i);
  }
  return v;
}

}  // namespace

Emulator::Emulator() {
  state_.reg(Reg::kRsp) = kInitialRsp;
}

void Emulator::LoadBytes(uint64_t base, std::span<const uint8_t> bytes) {
  for (size_t i = 0; i < bytes.size(); ++i) {
    memory_[base + i] = bytes[i];
  }
}

uint8_t Emulator::ReadByte(uint64_t addr) const {
  auto it = memory_.find(addr);
  return it == memory_.end() ? 0 : it->second;
}

void Emulator::WriteByte(uint64_t addr, uint8_t value) { memory_[addr] = value; }

uint64_t Emulator::ReadMem(uint64_t addr, unsigned size) const {
  uint64_t v = 0;
  for (unsigned i = 0; i < size / 8; ++i) {
    v |= static_cast<uint64_t>(ReadByte(addr + i)) << (8 * i);
  }
  return v;
}

void Emulator::WriteMem(uint64_t addr, uint64_t value, unsigned size) {
  for (unsigned i = 0; i < size / 8; ++i) {
    WriteByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
  }
}

uint64_t Emulator::ReadRegSized(uint8_t reg, unsigned size) const {
  return state_.regs[reg] & SizeMask(size);
}

void Emulator::WriteReg(uint8_t reg, uint64_t value, unsigned size) {
  if (size == 64) {
    state_.regs[reg] = value;
  } else if (size == 32) {
    state_.regs[reg] = value & 0xffffffffULL;  // 32-bit writes zero-extend.
  } else {
    // 8/16-bit writes merge into the low bits (no high-byte regs emulated).
    const uint64_t mask = SizeMask(size);
    state_.regs[reg] = (state_.regs[reg] & ~mask) | (value & mask);
  }
}

uint64_t Emulator::EffectiveAddress(const Insn& insn, uint64_t insn_addr,
                                    std::span<const uint8_t> bytes) const {
  SB_CHECK(insn.has_modrm && insn.modrm_mod() != 3);
  const uint8_t mod = insn.modrm_mod();
  int64_t disp = 0;
  if (insn.disp_len > 0) {
    disp = SignExtend(ReadLittle(bytes, insn.disp_off, insn.disp_len), insn.disp_len * 8u);
  }
  if (insn.is_rip_relative()) {
    return state_.rip + insn.length + static_cast<uint64_t>(disp) -
           (state_.rip - insn_addr);  // rip here == insn_addr during Step.
  }
  uint64_t base = 0;
  if (insn.has_sib) {
    const uint8_t base_reg = insn.sib_base();
    const uint8_t index_reg = insn.sib_index();
    // base==101 with mod==0 means "no base, disp32".
    if (!((insn.sib & 7) == 5 && mod == 0)) {
      base = state_.regs[base_reg];
    }
    if ((insn.sib & 0x38) != 0x20) {  // index==100 means "no index".
      base += state_.regs[index_reg] << insn.sib_scale();
    }
  } else {
    base = state_.regs[insn.modrm_rm()];
  }
  return base + static_cast<uint64_t>(disp);
}

uint64_t Emulator::ReadOperandRm(const Insn& insn, uint64_t insn_addr,
                                 std::span<const uint8_t> bytes, unsigned size) const {
  if (insn.modrm_is_reg()) {
    return ReadRegSized(insn.modrm_rm(), size);
  }
  return ReadMem(EffectiveAddress(insn, insn_addr, bytes), size);
}

void Emulator::WriteOperandRm(const Insn& insn, uint64_t insn_addr,
                              std::span<const uint8_t> bytes, uint64_t value, unsigned size) {
  if (insn.modrm_is_reg()) {
    WriteReg(insn.modrm_rm(), value, size);
  } else {
    WriteMem(EffectiveAddress(insn, insn_addr, bytes), value, size);
  }
}

void Emulator::SetFlagsLogic(uint64_t result, unsigned size) {
  const uint64_t masked = result & SizeMask(size);
  state_.flags.zf = masked == 0;
  state_.flags.sf = (masked >> (size - 1)) & 1;
  state_.flags.cf = false;
  state_.flags.of = false;
  state_.flags.pf = (std::popcount(static_cast<uint8_t>(masked)) % 2) == 0;
}

void Emulator::SetFlagsAddSub(uint64_t a, uint64_t b, uint64_t result, bool is_sub,
                              unsigned size) {
  const uint64_t mask = SizeMask(size);
  const uint64_t ma = a & mask;
  const uint64_t mb = b & mask;
  const uint64_t mr = result & mask;
  state_.flags.zf = mr == 0;
  state_.flags.sf = (mr >> (size - 1)) & 1;
  state_.flags.pf = (std::popcount(static_cast<uint8_t>(mr)) % 2) == 0;
  const uint64_t sign = 1ULL << (size - 1);
  if (is_sub) {
    state_.flags.cf = ma < mb;
    state_.flags.of = ((ma ^ mb) & (ma ^ mr) & sign) != 0;
  } else {
    state_.flags.cf = mr < ma;
    state_.flags.of = (~(ma ^ mb) & (ma ^ mr) & sign) != 0;
  }
}

bool Emulator::EvalCondition(uint8_t cond) const {
  const Flags& f = state_.flags;
  switch (cond >> 1) {
    case 0:  // O / NO
      return ((cond & 1) == 0) == f.of;
    case 1:  // B / NB
      return ((cond & 1) == 0) == f.cf;
    case 2:  // Z / NZ
      return ((cond & 1) == 0) == f.zf;
    case 3:  // BE / NBE
      return ((cond & 1) == 0) == (f.cf || f.zf);
    case 4:  // S / NS
      return ((cond & 1) == 0) == f.sf;
    case 5:  // P / NP
      return ((cond & 1) == 0) == f.pf;
    case 6:  // L / NL
      return ((cond & 1) == 0) == (f.sf != f.of);
    case 7:  // LE / NLE
      return ((cond & 1) == 0) == (f.zf || (f.sf != f.of));
  }
  return false;
}

bool Emulator::Step(StopInfo& info) {
  // Fetch an instruction window.
  uint8_t window[15];
  for (int i = 0; i < 15; ++i) {
    window[i] = ReadByte(state_.rip + static_cast<uint64_t>(i));
  }
  const std::span<const uint8_t> bytes(window, sizeof(window));
  const Insn insn = Decode(bytes, 0);
  if (!insn.valid) {
    info.reason = StopReason::kUnsupported;
    info.rip = state_.rip;
    return false;
  }
  const uint64_t insn_addr = state_.rip;
  const uint64_t next_rip = state_.rip + insn.length;
  const uint8_t op = window[insn.opcode_off];
  const unsigned size = insn.rex_w() ? 64 : (insn.operand_size_16 ? 16 : 32);
  const uint64_t imm = insn.imm_len > 0 ? ReadLittle(bytes, insn.imm_off, insn.imm_len) : 0;

  auto push64 = [&](uint64_t v) {
    state_.reg(Reg::kRsp) -= 8;
    WriteMem(state_.reg(Reg::kRsp), v, 64);
  };
  auto pop64 = [&]() {
    const uint64_t v = ReadMem(state_.reg(Reg::kRsp), 64);
    state_.reg(Reg::kRsp) += 8;
    return v;
  };

  switch (insn.mnemonic) {
    case Mnemonic::kNop:
      break;
    case Mnemonic::kPush: {
      if (op >= 0x50 && op <= 0x57) {
        const uint8_t r = static_cast<uint8_t>((op & 7) | ((insn.rex & 1) << 3));
        push64(state_.regs[r]);
      } else {  // 68 immz / 6A imm8
        push64(static_cast<uint64_t>(SignExtend(imm, insn.imm_len * 8u)));
      }
      break;
    }
    case Mnemonic::kPop: {
      const uint8_t r = static_cast<uint8_t>((op & 7) | ((insn.rex & 1) << 3));
      state_.regs[r] = pop64();
      break;
    }
    case Mnemonic::kMovImm64: {
      const uint8_t r = static_cast<uint8_t>((op & 7) | ((insn.rex & 1) << 3));
      state_.regs[r] = imm;
      break;
    }
    case Mnemonic::kMov: {
      if (op >= 0xb8 && op <= 0xbf) {
        const uint8_t r = static_cast<uint8_t>((op & 7) | ((insn.rex & 1) << 3));
        WriteReg(r, imm, size);
      } else if (op >= 0xb0 && op <= 0xb7) {
        const uint8_t r = static_cast<uint8_t>((op & 7) | ((insn.rex & 1) << 3));
        WriteReg(r, imm, 8);
      } else if (op == 0x89) {
        WriteOperandRm(insn, insn_addr, bytes, ReadRegSized(insn.modrm_reg(), size), size);
      } else if (op == 0x8b) {
        WriteReg(insn.modrm_reg(), ReadOperandRm(insn, insn_addr, bytes, size), size);
      } else if (op == 0x88) {
        WriteOperandRm(insn, insn_addr, bytes, ReadRegSized(insn.modrm_reg(), 8), 8);
      } else if (op == 0x8a) {
        WriteReg(insn.modrm_reg(), ReadOperandRm(insn, insn_addr, bytes, 8), 8);
      } else if (op == 0xc7) {
        WriteOperandRm(insn, insn_addr, bytes,
                       static_cast<uint64_t>(SignExtend(imm, insn.imm_len * 8u)), size);
      } else if (op == 0xc6) {
        WriteOperandRm(insn, insn_addr, bytes, imm, 8);
      } else {
        info.reason = StopReason::kUnsupported;
        info.rip = state_.rip;
        return false;
      }
      break;
    }
    case Mnemonic::kLea: {
      if (insn.modrm_is_reg()) {
        info.reason = StopReason::kUnsupported;
        info.rip = state_.rip;
        return false;
      }
      WriteReg(insn.modrm_reg(), EffectiveAddress(insn, insn_addr, bytes), size);
      break;
    }
    case Mnemonic::kAdd:
    case Mnemonic::kOr:
    case Mnemonic::kAnd:
    case Mnemonic::kSub:
    case Mnemonic::kXor:
    case Mnemonic::kCmp: {
      uint64_t a = 0;
      uint64_t b = 0;
      enum class Dst { kRm, kReg, kRax } dst = Dst::kRm;
      unsigned opsize = size;
      if (op == 0x80 || op == 0x81 || op == 0x83) {
        opsize = op == 0x80 ? 8 : size;
        a = ReadOperandRm(insn, insn_addr, bytes, opsize);
        b = static_cast<uint64_t>(SignExtend(imm, insn.imm_len * 8u));
        dst = Dst::kRm;
      } else {
        const int form = op & 7;
        switch (form) {
          case 0:  // rm8, r8
            opsize = 8;
            [[fallthrough]];
          case 1:  // rm, r
            a = ReadOperandRm(insn, insn_addr, bytes, opsize);
            b = ReadRegSized(insn.modrm_reg(), opsize);
            dst = Dst::kRm;
            break;
          case 2:  // r8, rm8
            opsize = 8;
            [[fallthrough]];
          case 3:  // r, rm
            a = ReadRegSized(insn.modrm_reg(), opsize);
            b = ReadOperandRm(insn, insn_addr, bytes, opsize);
            dst = Dst::kReg;
            break;
          case 4:  // al, imm8
            opsize = 8;
            a = ReadRegSized(0, opsize);
            b = imm;
            dst = Dst::kRax;
            break;
          case 5:  // eax/rax, immz
            a = ReadRegSized(0, opsize);
            b = static_cast<uint64_t>(SignExtend(imm, insn.imm_len * 8u));
            dst = Dst::kRax;
            break;
          default:
            info.reason = StopReason::kUnsupported;
            info.rip = state_.rip;
            return false;
        }
      }
      uint64_t result = 0;
      bool write_back = true;
      switch (insn.mnemonic) {
        case Mnemonic::kAdd:
          result = a + b;
          SetFlagsAddSub(a, b, result, /*is_sub=*/false, opsize);
          break;
        case Mnemonic::kSub:
          result = a - b;
          SetFlagsAddSub(a, b, result, /*is_sub=*/true, opsize);
          break;
        case Mnemonic::kCmp:
          result = a - b;
          SetFlagsAddSub(a, b, result, /*is_sub=*/true, opsize);
          write_back = false;
          break;
        case Mnemonic::kAnd:
          result = a & b;
          SetFlagsLogic(result, opsize);
          break;
        case Mnemonic::kOr:
          result = a | b;
          SetFlagsLogic(result, opsize);
          break;
        case Mnemonic::kXor:
          result = a ^ b;
          SetFlagsLogic(result, opsize);
          break;
        default:
          break;
      }
      if (write_back) {
        switch (dst) {
          case Dst::kRm:
            WriteOperandRm(insn, insn_addr, bytes, result, opsize);
            break;
          case Dst::kReg:
            WriteReg(insn.modrm_reg(), result, opsize);
            break;
          case Dst::kRax:
            WriteReg(0, result, opsize);
            break;
        }
      }
      break;
    }
    case Mnemonic::kTest: {
      uint64_t a = 0;
      uint64_t b = 0;
      unsigned opsize = size;
      if (op == 0x84 || op == 0x85) {
        opsize = op == 0x84 ? 8 : size;
        a = ReadOperandRm(insn, insn_addr, bytes, opsize);
        b = ReadRegSized(insn.modrm_reg(), opsize);
      } else if (op == 0xf6 || op == 0xf7) {  // test rm, imm
        opsize = op == 0xf6 ? 8 : size;
        a = ReadOperandRm(insn, insn_addr, bytes, opsize);
        b = static_cast<uint64_t>(SignExtend(imm, insn.imm_len * 8u));
      } else {  // A8 / A9
        opsize = op == 0xa8 ? 8 : size;
        a = ReadRegSized(0, opsize);
        b = static_cast<uint64_t>(SignExtend(imm, insn.imm_len * 8u));
      }
      SetFlagsLogic(a & b, opsize);
      break;
    }
    case Mnemonic::kImul: {
      if (op == 0x69 || op == 0x6b) {
        const uint64_t src = ReadOperandRm(insn, insn_addr, bytes, size);
        const int64_t rhs = SignExtend(imm, insn.imm_len * 8u);
        const uint64_t result =
            static_cast<uint64_t>(SignExtend(src, size) * rhs);
        WriteReg(insn.modrm_reg(), result, size);
        state_.flags.cf = state_.flags.of = false;  // Approximate.
      } else {  // 0F AF
        const uint64_t src = ReadOperandRm(insn, insn_addr, bytes, size);
        const uint64_t dst_val = ReadRegSized(insn.modrm_reg(), size);
        const uint64_t result = static_cast<uint64_t>(SignExtend(dst_val, size) *
                                                      SignExtend(src, size));
        WriteReg(insn.modrm_reg(), result, size);
        state_.flags.cf = state_.flags.of = false;
      }
      break;
    }
    case Mnemonic::kShl:
    case Mnemonic::kShr:
    case Mnemonic::kSar: {
      const unsigned count =
          static_cast<unsigned>((insn.imm_len > 0 ? imm : 1) & (size == 64 ? 0x3f : 0x1f));
      uint64_t v = ReadOperandRm(insn, insn_addr, bytes, size);
      if (count > 0) {
        if (insn.mnemonic == Mnemonic::kShl) {
          state_.flags.cf = size >= count && ((v >> (size - count)) & 1) != 0;
          v <<= count;
        } else if (insn.mnemonic == Mnemonic::kShr) {
          state_.flags.cf = ((v >> (count - 1)) & 1) != 0;
          v = (v & SizeMask(size)) >> count;
        } else {  // sar
          state_.flags.cf = ((v >> (count - 1)) & 1) != 0;
          v = static_cast<uint64_t>(SignExtend(v & SizeMask(size), size) >>
                                    std::min<unsigned>(count, 63));
        }
        const uint64_t masked = v & SizeMask(size);
        state_.flags.zf = masked == 0;
        state_.flags.sf = (masked >> (size - 1)) & 1;
        state_.flags.pf = (std::popcount(static_cast<uint8_t>(masked)) % 2) == 0;
        state_.flags.of = false;  // Approximate (undefined for count > 1).
        WriteOperandRm(insn, insn_addr, bytes, v, size);
      }
      break;
    }
    case Mnemonic::kInc:
    case Mnemonic::kDec: {
      const uint64_t v = ReadOperandRm(insn, insn_addr, bytes, size);
      const uint64_t result = insn.mnemonic == Mnemonic::kInc ? v + 1 : v - 1;
      const bool saved_cf = state_.flags.cf;  // INC/DEC preserve CF.
      SetFlagsAddSub(v, 1, result, insn.mnemonic == Mnemonic::kDec, size);
      state_.flags.cf = saved_cf;
      WriteOperandRm(insn, insn_addr, bytes, result, size);
      break;
    }
    case Mnemonic::kNeg: {
      const uint64_t v = ReadOperandRm(insn, insn_addr, bytes, size);
      const uint64_t result = 0 - v;
      SetFlagsAddSub(0, v, result, /*is_sub=*/true, size);
      WriteOperandRm(insn, insn_addr, bytes, result, size);
      break;
    }
    case Mnemonic::kNot: {
      const uint64_t v = ReadOperandRm(insn, insn_addr, bytes, size);
      WriteOperandRm(insn, insn_addr, bytes, ~v, size);  // NOT sets no flags.
      break;
    }
    case Mnemonic::kJmpRel: {
      state_.rip = next_rip + static_cast<uint64_t>(SignExtend(imm, insn.imm_len * 8u));
      ++info.steps;
      return true;
    }
    case Mnemonic::kJccRel: {
      const uint8_t cond = static_cast<uint8_t>(
          insn.opcode_len == 1 ? (op & 0xf) : (window[insn.opcode_off + 1] & 0xf));
      if (EvalCondition(cond)) {
        state_.rip = next_rip + static_cast<uint64_t>(SignExtend(imm, insn.imm_len * 8u));
      } else {
        state_.rip = next_rip;
      }
      ++info.steps;
      return true;
    }
    case Mnemonic::kCallRel: {
      push64(next_rip);
      state_.rip = next_rip + static_cast<uint64_t>(SignExtend(imm, insn.imm_len * 8u));
      ++info.steps;
      return true;
    }
    case Mnemonic::kRet: {
      const uint64_t target = pop64();
      ++info.steps;
      if (target == kSentinelReturn) {
        info.reason = StopReason::kRet;
        info.rip = insn_addr;
        return false;
      }
      state_.rip = target;
      return true;
    }
    case Mnemonic::kVmfunc: {
      ++info.vmfunc_count;
      info.reason = StopReason::kVmfunc;
      info.rip = insn_addr;
      ++info.steps;
      return false;
    }
    case Mnemonic::kSyscall: {
      info.reason = StopReason::kSyscall;
      info.rip = insn_addr;
      ++info.steps;
      return false;
    }
    case Mnemonic::kWrpkru:
      // PKRU is not part of the emulator's architectural state; the rights
      // write has no effect on the register file, so a stray WRPKRU behaves
      // like a NOP here — which is exactly what the rewriter replaces it with.
      break;
    case Mnemonic::kHlt: {
      info.reason = StopReason::kHlt;
      info.rip = insn_addr;
      ++info.steps;
      return false;
    }
    case Mnemonic::kInt3: {
      info.reason = StopReason::kInt3;
      info.rip = insn_addr;
      ++info.steps;
      return false;
    }
    case Mnemonic::kOther:
    default:
      info.reason = StopReason::kUnsupported;
      info.rip = state_.rip;
      return false;
  }

  state_.rip = next_rip;
  ++info.steps;
  return true;
}

StopInfo Emulator::Run(uint64_t max_steps) {
  StopInfo info;
  // Arrange a sentinel so a top-level RET ends the run.
  state_.reg(Reg::kRsp) -= 8;
  WriteMem(state_.reg(Reg::kRsp), kSentinelReturn, 64);
  while (info.steps < max_steps) {
    if (!Step(info)) {
      return info;
    }
  }
  info.reason = StopReason::kMaxSteps;
  info.rip = state_.rip;
  return info;
}

}  // namespace x86
