// VMFUNC occurrence scanner (paper Section 5.2).
//
// Finds every occurrence of the VMFUNC byte pattern (0F 01 D4) in a code
// region and classifies it against decoded instruction boundaries into the
// paper's three conditions:
//   C1 — the instruction is VMFUNC itself,
//   C2 — the pattern spans two or more instructions,
//   C3 — the pattern is embedded in a longer instruction's ModRM, SIB,
//        displacement or immediate field.
//
// The raw byte scan is memchr-accelerated and can fan out across a
// sb::ThreadPool, one chunk per code page. Each chunk owns the pattern
// starts inside its own byte range (reading up to two bytes past it for
// straddling patterns), so the merged result is byte-identical to the
// serial scan regardless of thread scheduling.

#ifndef SRC_X86_SCANNER_H_
#define SRC_X86_SCANNER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/x86/insn.h"

namespace sb {
class ThreadPool;
}  // namespace sb

namespace x86 {

inline constexpr uint8_t kVmfuncBytes[3] = {0x0f, 0x01, 0xd4};
// The other scrubbed gate primitive: WRPKRU, used by the MPK crossing
// backend. Same three-byte 0F 01 /r shape, so scan and rewrite machinery is
// shared — ScanOptions::pattern selects which triple a pass looks for.
inline constexpr uint8_t kWrpkruBytes[3] = {0x0f, 0x01, 0xef};

struct VmfuncHit {
  size_t pattern_off = 0;  // Offset of the 0x0F byte.
  size_t insn_off = 0;     // Start of the instruction containing the 0x0F byte.
  VmfuncOverlap overlap = VmfuncOverlap::kUndecodable;
};

// Accounting for one or more scans (accumulated across calls). The fields
// are atomics so one ScanStats can be shared as the sink of scans running
// concurrently on different threads (relaxed ordering: the totals are read
// after the scans join).
struct ScanStats {
  std::atomic<uint64_t> pages{0};    // Chunks (code pages) scanned.
  std::atomic<uint64_t> threads{0};  // Widest fan-out: max threads any scan used.

  void AddPages(uint64_t n) { pages.fetch_add(n, std::memory_order_relaxed); }
  void MaxThreads(uint64_t n) {
    uint64_t cur = threads.load(std::memory_order_relaxed);
    while (n > cur && !threads.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
    }
  }
};

struct ScanOptions {
  sb::ThreadPool* pool = nullptr;  // nullptr => serial scan.
  size_t chunk_bytes = 4096;       // Fan-out granularity (one code page).
  ScanStats* stats = nullptr;      // Optional accounting sink.
  // The three-byte gate pattern this pass hunts: kVmfuncBytes (default) or
  // kWrpkruBytes. Must point at three bytes starting with 0x0F.
  const uint8_t* pattern = kVmfuncBytes;
};

// Returns the raw offsets of every pattern triple (no decoding), in
// ascending offset order.
std::vector<size_t> FindVmfuncBytes(std::span<const uint8_t> code);
std::vector<size_t> FindVmfuncBytes(std::span<const uint8_t> code, const ScanOptions& options);

// Full scan: find and classify every occurrence.
std::vector<VmfuncHit> ScanForVmfunc(std::span<const uint8_t> code);
std::vector<VmfuncHit> ScanForVmfunc(std::span<const uint8_t> code, const ScanOptions& options);

}  // namespace x86

#endif  // SRC_X86_SCANNER_H_
