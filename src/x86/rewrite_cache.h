// Content-hashed rewrite cache (staged registration, DESIGN.md section 17).
//
// Forked / templated processes share byte-identical code pages, so the
// expensive per-page scan + rewrite (RewriteVmfuncPage) only needs to run
// once per distinct page content. The cache key is
//
//   (content hash of the page plus 64 B of boundary context on each side,
//    page index, backend pattern id)
//
// The boundary context is part of the key because a rewrite window that
// straddles a page edge patches a few bytes of the neighbouring page; the
// context bytes pin the instruction stream the recorded patches assumed.
// The page index is part of the key because emitted snippets encode absolute
// jump displacements derived from the page's position in the image. The
// pattern id keeps backends apart: an MPK (WRPKRU) rewrite must never
// satisfy an EPTP (VMFUNC) lookup for the same bytes.
//
// Entries are LRU-evicted under a bounded budget. All methods are
// thread-safe; Lookup returns the entry by value so callers never hold
// references across an eviction.

#ifndef SRC_X86_REWRITE_CACHE_H_
#define SRC_X86_REWRITE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>

#include "src/x86/rewriter.h"

namespace x86 {

// FNV-1a, 64-bit.
uint64_t HashBytes(std::span<const uint8_t> bytes);

// Hash of code page `page_index` of `image` plus up to 64 bytes of context
// on each side (clamped to the image). This is the `content_hash` half of
// the cache key; identical pages in identical neighbourhoods collide by
// construction.
uint64_t HashCodePage(std::span<const uint8_t> image, size_t page_index);

struct RewriteCacheKey {
  uint64_t content_hash = 0;
  uint32_t page_index = 0;
  uint32_t pattern_id = 0;  // 0 = VMFUNC (EPTP backend), 1 = WRPKRU (MPK).

  bool operator==(const RewriteCacheKey& rhs) const = default;
};

struct RewriteCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

class RewriteCache {
 public:
  explicit RewriteCache(size_t max_entries = 4096) : max_entries_(max_entries) {}

  RewriteCache(const RewriteCache&) = delete;
  RewriteCache& operator=(const RewriteCache&) = delete;

  // Counts a hit (and refreshes LRU position) or a miss.
  std::optional<PageRewrite> Lookup(const RewriteCacheKey& key);

  // Inserts or replaces; evicts the least-recently-used entry over budget.
  void Insert(const RewriteCacheKey& key, PageRewrite value);

  // Drops the entry if present (UpdateProcessCode dirty-page invalidation).
  void Invalidate(const RewriteCacheKey& key);

  size_t size() const;
  size_t max_entries() const { return max_entries_; }
  RewriteCacheStats stats() const;

 private:
  struct KeyHash {
    size_t operator()(const RewriteCacheKey& key) const {
      uint64_t h = key.content_hash;
      h ^= (static_cast<uint64_t>(key.page_index) << 32) | key.pattern_id;
      h *= 0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  using Entry = std::pair<RewriteCacheKey, PageRewrite>;

  const size_t max_entries_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<RewriteCacheKey, std::list<Entry>::iterator, KeyHash> index_;
  RewriteCacheStats stats_;
};

}  // namespace x86

#endif  // SRC_X86_REWRITE_CACHE_H_
