#include "src/x86/scanner.h"

#include <algorithm>
#include <cstring>

#include "src/base/thread_pool.h"
#include "src/x86/decoder.h"

namespace x86 {
namespace {

// Appends every pattern start in [begin, limit) to `out`, memchr-hopping
// between 0x0F candidates. The caller guarantees limit + 2 <= code.size(),
// so reading the two trailing bytes of a straddling candidate is safe.
void ScanRange(std::span<const uint8_t> code, size_t begin, size_t limit,
               const uint8_t* pattern, std::vector<size_t>& out) {
  const uint8_t* base = code.data();
  size_t i = begin;
  while (i < limit) {
    const void* p = std::memchr(base + i, pattern[0], limit - i);
    if (p == nullptr) {
      return;
    }
    const size_t off = static_cast<size_t>(static_cast<const uint8_t*>(p) - base);
    if (base[off + 1] == pattern[1] && base[off + 2] == pattern[2]) {
      out.push_back(off);
    }
    i = off + 1;
  }
}

}  // namespace

std::vector<size_t> FindVmfuncBytes(std::span<const uint8_t> code) {
  return FindVmfuncBytes(code, ScanOptions{});
}

std::vector<size_t> FindVmfuncBytes(std::span<const uint8_t> code, const ScanOptions& options) {
  std::vector<size_t> offsets;
  if (code.size() < 3) {
    return offsets;
  }
  const size_t search_end = code.size() - 2;  // Valid pattern starts: [0, search_end).
  const size_t chunk = options.chunk_bytes == 0 ? 4096 : options.chunk_bytes;
  const size_t num_chunks = (code.size() + chunk - 1) / chunk;
  if (options.stats != nullptr) {
    options.stats->AddPages(num_chunks);
  }
  const uint8_t* pattern = options.pattern == nullptr ? kVmfuncBytes : options.pattern;
  if (options.pool == nullptr || num_chunks < 2) {
    ScanRange(code, 0, search_end, pattern, offsets);
    if (options.stats != nullptr) {
      options.stats->MaxThreads(1);
    }
    return offsets;
  }
  // One bucket per code page; chunk c owns the starts in [c*chunk,
  // (c+1)*chunk). Buckets are disjoint and internally ascending, so the
  // in-order merge reproduces the serial scan byte for byte.
  std::vector<std::vector<size_t>> buckets(num_chunks);
  const size_t used = options.pool->ParallelFor(num_chunks, [&](size_t c) {
    const size_t begin = c * chunk;
    const size_t limit = std::min((c + 1) * chunk, search_end);
    if (begin < limit) {
      ScanRange(code, begin, limit, pattern, buckets[c]);
    }
  });
  if (options.stats != nullptr) {
    options.stats->MaxThreads(used);
  }
  for (const std::vector<size_t>& bucket : buckets) {
    offsets.insert(offsets.end(), bucket.begin(), bucket.end());
  }
  return offsets;
}

std::vector<VmfuncHit> ScanForVmfunc(std::span<const uint8_t> code) {
  return ScanForVmfunc(code, ScanOptions{});
}

std::vector<VmfuncHit> ScanForVmfunc(std::span<const uint8_t> code, const ScanOptions& options) {
  std::vector<VmfuncHit> hits;
  const std::vector<size_t> raw = FindVmfuncBytes(code, options);
  if (raw.empty()) {
    return hits;
  }
  const std::vector<size_t> starts = LinearSweep(code);

  for (const size_t off : raw) {
    VmfuncHit hit;
    hit.pattern_off = off;
    // The instruction whose bytes contain `off`: the last start <= off.
    auto it = std::upper_bound(starts.begin(), starts.end(), off);
    const size_t insn_start = *std::prev(it);
    hit.insn_off = insn_start;

    const Insn insn = Decode(code, insn_start);
    if (!insn.valid) {
      hit.overlap = VmfuncOverlap::kUndecodable;
      hits.push_back(hit);
      continue;
    }
    if (off + 3 > insn_start + insn.length) {
      hit.overlap = VmfuncOverlap::kSpans;
      hits.push_back(hit);
      continue;
    }
    const size_t rel = off - insn_start;  // Field offsets are insn-relative.
    // Which gate mnemonic counts as "the pattern is the instruction itself"
    // depends on the triple being scanned (0F 01 D4 vs 0F 01 EF).
    const Mnemonic gate = (options.pattern != nullptr && options.pattern[2] == kWrpkruBytes[2])
                              ? Mnemonic::kWrpkru
                              : Mnemonic::kVmfunc;
    if (insn.mnemonic == gate && rel == insn.opcode_off) {
      hit.overlap = VmfuncOverlap::kIsVmfunc;
    } else if (insn.has_modrm && rel == insn.modrm_off) {
      hit.overlap = VmfuncOverlap::kInModrm;
    } else if (insn.has_sib && rel == insn.sib_off) {
      hit.overlap = VmfuncOverlap::kInSib;
    } else if (insn.disp_len > 0 && rel >= insn.disp_off && rel < insn.disp_off + insn.disp_len) {
      hit.overlap = VmfuncOverlap::kInDisp;
    } else if (insn.imm_len > 0 && rel >= insn.imm_off && rel < insn.imm_off + insn.imm_len) {
      hit.overlap = VmfuncOverlap::kInImm;
    } else {
      hit.overlap = VmfuncOverlap::kInOpcode;
    }
    hits.push_back(hit);
  }
  return hits;
}

}  // namespace x86
