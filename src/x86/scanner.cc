#include "src/x86/scanner.h"

#include <algorithm>

#include "src/x86/decoder.h"

namespace x86 {

std::vector<size_t> FindVmfuncBytes(std::span<const uint8_t> code) {
  std::vector<size_t> offsets;
  if (code.size() < 3) {
    return offsets;
  }
  for (size_t i = 0; i + 2 < code.size(); ++i) {
    if (code[i] == kVmfuncBytes[0] && code[i + 1] == kVmfuncBytes[1] &&
        code[i + 2] == kVmfuncBytes[2]) {
      offsets.push_back(i);
    }
  }
  return offsets;
}

std::vector<VmfuncHit> ScanForVmfunc(std::span<const uint8_t> code) {
  std::vector<VmfuncHit> hits;
  const std::vector<size_t> raw = FindVmfuncBytes(code);
  if (raw.empty()) {
    return hits;
  }
  const std::vector<size_t> starts = LinearSweep(code);

  for (const size_t off : raw) {
    VmfuncHit hit;
    hit.pattern_off = off;
    // The instruction whose bytes contain `off`: the last start <= off.
    auto it = std::upper_bound(starts.begin(), starts.end(), off);
    const size_t insn_start = *std::prev(it);
    hit.insn_off = insn_start;

    const Insn insn = Decode(code, insn_start);
    if (!insn.valid) {
      hit.overlap = VmfuncOverlap::kUndecodable;
      hits.push_back(hit);
      continue;
    }
    if (off + 3 > insn_start + insn.length) {
      hit.overlap = VmfuncOverlap::kSpans;
      hits.push_back(hit);
      continue;
    }
    const size_t rel = off - insn_start;  // Field offsets are insn-relative.
    if (insn.mnemonic == Mnemonic::kVmfunc && rel == insn.opcode_off) {
      hit.overlap = VmfuncOverlap::kIsVmfunc;
    } else if (insn.has_modrm && rel == insn.modrm_off) {
      hit.overlap = VmfuncOverlap::kInModrm;
    } else if (insn.has_sib && rel == insn.sib_off) {
      hit.overlap = VmfuncOverlap::kInSib;
    } else if (insn.disp_len > 0 && rel >= insn.disp_off && rel < insn.disp_off + insn.disp_len) {
      hit.overlap = VmfuncOverlap::kInDisp;
    } else if (insn.imm_len > 0 && rel >= insn.imm_off && rel < insn.imm_off + insn.imm_len) {
      hit.overlap = VmfuncOverlap::kInImm;
    } else {
      hit.overlap = VmfuncOverlap::kInOpcode;
    }
    hits.push_back(hit);
  }
  return hits;
}

}  // namespace x86
