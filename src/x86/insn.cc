#include "src/x86/insn.h"

namespace x86 {

std::string RegName(Reg r) {
  static const char* kNames[kNumRegs] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                                         "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                                         "r12", "r13", "r14", "r15"};
  return kNames[static_cast<size_t>(r)];
}

std::string_view VmfuncOverlapName(VmfuncOverlap o) {
  switch (o) {
    case VmfuncOverlap::kIsVmfunc:
      return "is-vmfunc";
    case VmfuncOverlap::kSpans:
      return "spans-instructions";
    case VmfuncOverlap::kInModrm:
      return "in-modrm";
    case VmfuncOverlap::kInSib:
      return "in-sib";
    case VmfuncOverlap::kInDisp:
      return "in-displacement";
    case VmfuncOverlap::kInImm:
      return "in-immediate";
    case VmfuncOverlap::kInOpcode:
      return "in-opcode";
    case VmfuncOverlap::kUndecodable:
      return "undecodable";
  }
  return "unknown";
}

}  // namespace x86
