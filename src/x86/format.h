// Instruction formatting (a disassembler for the supported subset), used by
// the demos and for debugging rewriter output.

#ifndef SRC_X86_FORMAT_H_
#define SRC_X86_FORMAT_H_

#include <span>
#include <string>

#include "src/x86/insn.h"

namespace x86 {

// Renders one decoded instruction ("add rax, 0xd4010f", "vmfunc", ...).
// `bytes` must start at the instruction. Unknown instructions render their
// opcode bytes ("(unsupported: 0f ae f0)").
std::string FormatInsn(std::span<const uint8_t> bytes, const Insn& insn);

// Linear-sweep disassembly of a whole region with offsets and hex bytes.
std::string Disassemble(std::span<const uint8_t> code);

}  // namespace x86

#endif  // SRC_X86_FORMAT_H_
