// A small x86-64 assembler.
//
// Emits real machine code for the instruction subset the emulator executes.
// Used by tests and by the synthetic program generator that stands in for the
// paper's Table 6 binary corpus, and by the rewriter when it re-encodes
// instructions.

#ifndef SRC_X86_ASSEMBLER_H_
#define SRC_X86_ASSEMBLER_H_

#include <cstdint>
#include <vector>

#include "src/x86/insn.h"

namespace x86 {

class Assembler {
 public:
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

  void Raw(std::initializer_list<uint8_t> raw);
  void Append(const std::vector<uint8_t>& raw);

  void Nop();
  void Nops(int n);
  void Int3();
  void Hlt();
  void Ret();
  void Vmfunc();  // 0F 01 D4
  void Wrpkru();  // 0F 01 EF
  void Syscall();

  void PushR(Reg r);
  void PopR(Reg r);

  // mov r64, imm64 (REX.W B8+r io)
  void MovRI64(Reg dst, uint64_t imm);
  // mov r32, imm32 (B8+r id) — zero-extends on real hardware.
  void MovRI32(Reg dst, uint32_t imm);
  // mov r64, r64 (REX.W 89 /r)
  void MovRR64(Reg dst, Reg src);
  // mov r64, [base + disp32] (REX.W 8B /r)
  void MovRM64(Reg dst, Reg base, int32_t disp);
  // mov [base + disp32], r64 (REX.W 89 /r)
  void MovMR64(Reg base, int32_t disp, Reg src);

  // lea dst, [base + index*scale + disp32] (REX.W 8D /r); pass index ==
  // kNoIndex for no index. scale is 1, 2, 4 or 8.
  static constexpr int kNoIndex = -1;
  void Lea(Reg dst, Reg base, int index, int scale, int32_t disp);

  // Arithmetic: op r64, imm32 (REX.W 81 /n id)
  void AddRI(Reg dst, int32_t imm);
  void SubRI(Reg dst, int32_t imm);
  void AndRI(Reg dst, int32_t imm);
  void OrRI(Reg dst, int32_t imm);
  void XorRI(Reg dst, int32_t imm);
  void CmpRI(Reg dst, int32_t imm);
  // Arithmetic: op r64, r64 (REX.W 01/09/21/29/31/39 /r)
  void AddRR(Reg dst, Reg src);
  void SubRR(Reg dst, Reg src);
  void AndRR(Reg dst, Reg src);
  void OrRR(Reg dst, Reg src);
  void XorRR(Reg dst, Reg src);
  void CmpRR(Reg dst, Reg src);
  // add r64, [base + disp32] (REX.W 03 /r)
  void AddRM(Reg dst, Reg base, int32_t disp);
  // add [base + disp32], r64 (REX.W 01 /r)
  void AddMR(Reg base, int32_t disp, Reg src);

  // imul dst, rm, imm32 (REX.W 69 /r id); register form.
  void ImulRRI(Reg dst, Reg src, int32_t imm);
  // imul dst, [base + disp32], imm32.
  void ImulRMI(Reg dst, Reg base, int32_t disp, int32_t imm);
  // imul dst, src (REX.W 0F AF /r)
  void ImulRR(Reg dst, Reg src);

  // Shifts: r64 by an immediate count (REX.W C1 /n ib).
  void ShlRI(Reg dst, uint8_t count);
  void ShrRI(Reg dst, uint8_t count);
  void SarRI(Reg dst, uint8_t count);
  // inc/dec r64 (REX.W FF /0, /1) and neg/not r64 (REX.W F7 /3, /2).
  void IncR(Reg dst);
  void DecR(Reg dst);
  void NegR(Reg dst);
  void NotR(Reg dst);

  // Control flow; displacement is relative to the next instruction.
  void JmpRel32(int32_t rel);
  void JmpRel8(int8_t rel);
  void CallRel32(int32_t rel);
  // cond: 0x0 .. 0xF (Intel condition code, e.g. 0x4 = E/Z).
  void JccRel32(uint8_t cond, int32_t rel);
  void JccRel8(uint8_t cond, int8_t rel);

  // Label support for small snippets: returns patch location for a rel32
  // emitted as 0; call PatchRel32 once the target offset is known.
  size_t here() const { return bytes_.size(); }
  void PatchRel32(size_t insn_end_off, size_t patch_off, size_t target_off);

 private:
  void EmitRexW(Reg reg, Reg rm);
  void EmitModRmReg(Reg reg, Reg rm);
  // mod=2 [rm + disp32] form, emitting SIB when rm needs it.
  void EmitModRmMemDisp32(Reg reg, Reg base, int32_t disp);
  void EmitU32(uint32_t v);
  void EmitU64(uint64_t v);

  std::vector<uint8_t> bytes_;
};

}  // namespace x86

#endif  // SRC_X86_ASSEMBLER_H_
