#include "src/x86/rewrite_cache.h"

#include <algorithm>

namespace x86 {

uint64_t HashBytes(std::span<const uint8_t> bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashCodePage(std::span<const uint8_t> image, size_t page_index) {
  constexpr size_t kPage = 4096;
  constexpr size_t kContext = 64;
  const size_t page_begin = page_index * kPage;
  if (page_begin >= image.size()) {
    return HashBytes({});
  }
  const size_t begin = page_begin >= kContext ? page_begin - kContext : 0;
  const size_t end = std::min(image.size(), page_begin + kPage + kContext);
  return HashBytes(image.subspan(begin, end - begin));
}

std::optional<PageRewrite> RewriteCache::Lookup(const RewriteCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void RewriteCache::Insert(const RewriteCacheKey& key, PageRewrite value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (max_entries_ > 0 && lru_.size() > max_entries_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void RewriteCache::Invalidate(const RewriteCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return;
  }
  lru_.erase(it->second);
  index_.erase(it);
  ++stats_.invalidations;
}

size_t RewriteCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

RewriteCacheStats RewriteCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace x86
