// Decoded x86-64 instruction representation.
//
// The decoder is a *length* decoder in the style the rewriting literature
// uses (ERIM, SkyBridge Section 5): it recovers instruction boundaries and
// the five encoding regions — prefixes, opcode, ModRM, SIB, displacement,
// immediate — which is exactly the information needed to classify where a
// VMFUNC byte pattern (0F 01 D4) falls and to rewrite it away.

#ifndef SRC_X86_INSN_H_
#define SRC_X86_INSN_H_

#include <cstdint>
#include <string>

namespace x86 {

// General-purpose registers, in encoding order.
enum class Reg : uint8_t {
  kRax = 0,
  kRcx,
  kRdx,
  kRbx,
  kRsp,
  kRbp,
  kRsi,
  kRdi,
  kR8,
  kR9,
  kR10,
  kR11,
  kR12,
  kR13,
  kR14,
  kR15,
};

inline constexpr int kNumRegs = 16;

std::string RegName(Reg r);

// Coarse classification; kOther still has exact field boundaries.
enum class Mnemonic : uint8_t {
  kOther = 0,
  kNop,
  kPush,     // push r64
  kPop,      // pop r64
  kMov,      // 88/89/8A/8B/B8+r/C6/C7
  kMovImm64, // REX.W B8+r io
  kLea,      // 8D
  kAdd,
  kOr,
  kAnd,
  kSub,
  kXor,
  kCmp,
  kTest,
  kImul,     // 69 / 6B / 0F AF
  kShl,      // C1 /4, D1 /4
  kShr,      // C1 /5, D1 /5
  kSar,      // C1 /7, D1 /7
  kInc,      // FF /0
  kDec,      // FF /1
  kNeg,      // F7 /3
  kNot,      // F7 /2
  kJmpRel,   // EB / E9
  kJccRel,   // 70-7F / 0F 80-8F
  kCallRel,  // E8
  kRet,      // C3
  kVmfunc,   // 0F 01 D4
  kWrpkru,   // 0F 01 EF
  kSyscall,  // 0F 05
  kInt3,     // CC
  kHlt,      // F4
};

struct Insn {
  bool valid = false;
  uint8_t length = 0;

  // Field layout (offsets are from the start of the instruction).
  uint8_t num_prefixes = 0;  // Legacy prefixes only; REX tracked separately.
  uint8_t rex = 0;           // 0 if absent.
  uint8_t opcode_off = 0;
  uint8_t opcode_len = 0;  // 1..3
  bool has_modrm = false;
  uint8_t modrm_off = 0;
  uint8_t modrm = 0;
  bool has_sib = false;
  uint8_t sib_off = 0;
  uint8_t sib = 0;
  uint8_t disp_off = 0;
  uint8_t disp_len = 0;  // 0, 1, 2, 4 or 8
  uint8_t imm_off = 0;
  uint8_t imm_len = 0;  // 0, 1, 2, 4 or 8

  Mnemonic mnemonic = Mnemonic::kOther;
  bool operand_size_16 = false;  // 0x66 prefix active.

  // --- ModRM accessors (REX extensions applied) ---
  uint8_t modrm_mod() const { return modrm >> 6; }
  uint8_t modrm_reg() const { return static_cast<uint8_t>(((modrm >> 3) & 7) | ((rex & 4) << 1)); }
  uint8_t modrm_rm() const { return static_cast<uint8_t>((modrm & 7) | ((rex & 1) << 3)); }
  bool rex_w() const { return (rex & 8) != 0; }

  uint8_t sib_scale() const { return sib >> 6; }
  uint8_t sib_index() const { return static_cast<uint8_t>(((sib >> 3) & 7) | ((rex & 2) << 2)); }
  uint8_t sib_base() const { return static_cast<uint8_t>((sib & 7) | ((rex & 1) << 3)); }

  // True when ModRM selects a register operand (mod == 3).
  bool modrm_is_reg() const { return has_modrm && modrm_mod() == 3; }
  // RIP-relative memory operand (mod == 00, rm == 101).
  bool is_rip_relative() const { return has_modrm && modrm_mod() == 0 && (modrm & 7) == 5; }
};

// Where a gate byte triple (0F 01 D4 for VMFUNC, 0F 01 EF for WRPKRU) falls
// relative to decoded instructions.
enum class VmfuncOverlap : uint8_t {
  kIsVmfunc,      // C1: the instruction *is* the gate instruction itself.
  kSpans,         // C2: the triple spans two or more instructions.
  kInModrm,       // C3: 0x0F is this instruction's ModRM byte.
  kInSib,         // C3: 0x0F is this instruction's SIB byte.
  kInDisp,        // C3: 0x0F starts inside the displacement.
  kInImm,         // C3: 0x0F starts inside the immediate.
  kInOpcode,      // C3: inside a multi-byte opcode (VMFUNC/WRPKRU qualify).
  kUndecodable,   // Byte stream did not decode; treated conservatively.
};

std::string_view VmfuncOverlapName(VmfuncOverlap o);

}  // namespace x86

#endif  // SRC_X86_INSN_H_
