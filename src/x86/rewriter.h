// Binary rewriting of illegal VMFUNC occurrences (paper Section 5, Table 3).
//
// When a process registers with SkyBridge, the Subkernel scans its code pages
// and replaces every occurrence of the VMFUNC pattern (0F 01 D4) outside the
// trampoline with functionally equivalent instructions:
//
//   1. Opcode is VMFUNC           -> three NOPs.
//   2. Pattern spans instructions -> relocate the window to the rewrite page
//                                    and break the pattern with a NOP between
//                                    the spanning instructions.
//   3. 0x0F in ModRM or SIB       -> push/pop a scratch register, copy the
//                                    encoded base (or index) register into it
//                                    and re-encode the instruction with the
//                                    scratch register.
//   4. 0x0F in the displacement   -> compute part of the displacement into a
//                                    scratch register before the instruction.
//   5. 0x0F in the immediate      -> apply the instruction twice with split
//                                    immediates (or build the immediate in a
//                                    scratch register); jump-like immediates
//                                    are displacements that get new values
//                                    when the instruction moves to the
//                                    rewrite page.
//
// Instructions that grow do not fit in place, so the affected window is
// replaced by a JMP to a snippet on the *rewrite page* (mapped at 0x1000, the
// deliberately-unmapped second page), which ends with a JMP back — exactly
// the paper's Section 5.1 mechanism.
//
// Equivalence caveat (shared with the paper's Table 3): split-immediate
// arithmetic can leave different CF/OF values than the original single
// instruction. SkyBridge inherits ERIM's position that compilers do not emit
// code relying on flags across such boundaries.

#ifndef SRC_X86_REWRITER_H_
#define SRC_X86_REWRITER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/x86/scanner.h"

namespace sb {
class ThreadPool;
}  // namespace sb

namespace x86 {

struct RewriteConfig {
  uint64_t code_base = 0x400000;        // VA where the code is mapped.
  uint64_t rewrite_page_base = 0x1000;  // VA of the rewrite page (paper 5.1).
  size_t rewrite_page_capacity = 16 * 4096;
  int max_iterations = 64;
  // Optional pool for the per-code-page chunked pattern scans. The rewrite
  // output is byte-identical with or without it (deterministic merge order).
  sb::ThreadPool* scan_pool = nullptr;
  // The gate-instruction triple this pass scrubs: kVmfuncBytes for the EPTP
  // backend, kWrpkruBytes for the MPK backend (same 0F 01 /r shape, so every
  // Table 3 rewrite case applies unchanged).
  const uint8_t* pattern = kVmfuncBytes;
};

struct RewriteStats {
  int nop_replaced = 0;       // C1: true VMFUNC instructions NOPed out.
  int windows_relocated = 0;  // Windows moved to the rewrite page.
  int snippets_emitted = 0;
  uint64_t scan_pages = 0;    // Code-page chunks scanned across all passes.
  uint64_t scan_threads = 0;  // Widest fan-out any scan pass used.
};

struct RewriteResult {
  std::vector<uint8_t> code;          // Rewritten code (same size as input).
  std::vector<uint8_t> rewrite_page;  // Snippet bytes for the rewrite page.
  RewriteStats stats;
};

// Rewrites until neither the code nor the rewrite page contains the pattern.
sb::StatusOr<RewriteResult> RewriteVmfunc(std::span<const uint8_t> code,
                                          const RewriteConfig& config);

// ---- Per-page rewriting (staged registration, DESIGN.md section 17) ----

// One committed edit to the code image: the bytes at [code_off,
// code_off + bytes.size()) are replaced. Offsets are image-relative, so a
// recorded rewrite replays verbatim onto any identical image.
struct PagePatch {
  size_t code_off = 0;
  std::vector<uint8_t> bytes;
};

// Deterministic result of scrubbing the pattern occurrences owned by one
// 4 KiB code page: in-image patches plus the snippet bytes for that page's
// private rewrite-page sub-window (starting at config.rewrite_page_base).
struct PageRewrite {
  std::vector<PagePatch> patches;
  std::vector<uint8_t> snippets;
  RewriteStats stats;
};

// Rewrites only the hits whose pattern starts inside page `page_index` of
// `code`. The whole image is scanned each pass — instruction classification
// needs boundaries from the image start — but only hits owned by the page
// are handled. `config.rewrite_page_base` / `rewrite_page_capacity` describe
// the page's private snippet sub-window. Patches may spill a few bytes past
// the page edge when a rewrite window straddles it, which is why the cache
// key hashes the page plus boundary context.
sb::StatusOr<PageRewrite> RewriteVmfuncPage(std::span<const uint8_t> code, size_t page_index,
                                            const RewriteConfig& config);

}  // namespace x86

#endif  // SRC_X86_REWRITER_H_
