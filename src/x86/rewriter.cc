#include "src/x86/rewriter.h"

#include <algorithm>
#include <optional>

#include "src/base/logging.h"
#include "src/x86/assembler.h"
#include "src/x86/decoder.h"

namespace x86 {
namespace {

constexpr uint8_t kNopByte = 0x90;

int64_t SignExtend(uint64_t v, unsigned bits) {
  if (bits >= 64) {
    return static_cast<int64_t>(v);
  }
  const uint64_t sign = 1ULL << (bits - 1);
  return static_cast<int64_t>((v ^ sign) - sign);
}

uint64_t ReadLittle(std::span<const uint8_t> bytes, size_t off, unsigned len) {
  uint64_t v = 0;
  for (unsigned i = 0; i < len; ++i) {
    v |= static_cast<uint64_t>(bytes[off + i]) << (8 * i);
  }
  return v;
}

bool ContainsPattern(std::span<const uint8_t> bytes, const uint8_t* pattern) {
  ScanOptions options;
  options.pattern = pattern;
  return !FindVmfuncBytes(bytes, options).empty();
}

// ---- Memory-operand parsing and generic re-encoding ----

struct MemOp {
  bool rip_relative = false;
  bool has_base = false;
  uint8_t base = 0;
  bool has_index = false;
  uint8_t index = 0;
  uint8_t scale_log2 = 0;
  int32_t disp = 0;
};

sb::StatusOr<MemOp> ParseMem(const Insn& insn, std::span<const uint8_t> bytes) {
  if (!insn.has_modrm || insn.modrm_mod() == 3) {
    return sb::InvalidArgument("not a memory operand");
  }
  MemOp op;
  if (insn.disp_len > 0) {
    op.disp = static_cast<int32_t>(
        SignExtend(ReadLittle(bytes, insn.disp_off, insn.disp_len), insn.disp_len * 8u));
  }
  if (insn.is_rip_relative()) {
    op.rip_relative = true;
    return op;
  }
  if (insn.has_sib) {
    const uint8_t mod = insn.modrm_mod();
    if (!((insn.sib & 7) == 5 && mod == 0)) {
      op.has_base = true;
      op.base = insn.sib_base();
    }
    if ((insn.sib & 0x38) != 0x20) {
      op.has_index = true;
      op.index = insn.sib_index();
      op.scale_log2 = insn.sib_scale();
    }
  } else {
    op.has_base = true;
    op.base = insn.modrm_rm();
  }
  return op;
}

// True if the instruction's non-memory operand encoding (prefixes/opcode) is
// something we can re-emit verbatim (i.e. no VEX).
bool ReencodableEncoding(const Insn& insn) {
  const size_t expected_opcode_off =
      static_cast<size_t>(insn.num_prefixes) + (insn.rex != 0 ? 1 : 0);
  return insn.opcode_off == expected_opcode_off;
}

// Emits a copy of `insn` with its memory operand replaced by `op` (always
// encoded as mod=10 disp32 or the no-base SIB form). Immediate bytes are
// copied unless `override_imm` is provided (length preserved).
void EmitWithMem(std::vector<uint8_t>& out, const Insn& insn, std::span<const uint8_t> bytes,
                 const MemOp& op, const std::optional<uint64_t>& override_imm = std::nullopt) {
  SB_CHECK(!op.rip_relative) << "EmitWithMem cannot encode RIP-relative operands";
  // Legacy prefixes.
  for (size_t i = 0; i < insn.num_prefixes; ++i) {
    out.push_back(bytes[i]);
  }
  // REX: keep W and R, recompute B and X for the new operand.
  uint8_t rex = insn.rex & 0x4c;  // 0x40 | W | R if present.
  if (op.has_base && op.base >= 8) {
    rex |= 1;
  }
  if (op.has_index && op.index >= 8) {
    rex |= 2;
  }
  if (rex != 0 || insn.rex != 0) {
    out.push_back(static_cast<uint8_t>(0x40 | (rex & 0xf)));
  }
  // Opcode bytes.
  for (size_t i = 0; i < insn.opcode_len; ++i) {
    out.push_back(bytes[insn.opcode_off + i]);
  }
  // ModRM / SIB / disp32.
  const uint8_t reg_low = (insn.modrm >> 3) & 7;
  const bool need_sib = op.has_index || !op.has_base || (op.base & 7) == 4;
  if (!need_sib) {
    out.push_back(static_cast<uint8_t>(0x80 | (reg_low << 3) | (op.base & 7)));
  } else {
    const uint8_t mod = op.has_base ? 0x80 : 0x00;
    out.push_back(static_cast<uint8_t>(mod | (reg_low << 3) | 4));
    const uint8_t sib_base = op.has_base ? (op.base & 7) : 5;
    const uint8_t sib_index = op.has_index ? (op.index & 7) : 4;
    out.push_back(static_cast<uint8_t>((op.scale_log2 << 6) | (sib_index << 3) | sib_base));
  }
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(static_cast<uint32_t>(op.disp) >> (8 * i)));
  }
  // Immediate.
  if (insn.imm_len > 0) {
    const uint64_t imm =
        override_imm.has_value() ? *override_imm : ReadLittle(bytes, insn.imm_off, insn.imm_len);
    for (unsigned i = 0; i < insn.imm_len; ++i) {
      out.push_back(static_cast<uint8_t>(imm >> (8 * i)));
    }
  }
}

// Emits a copy of `insn` with only the immediate replaced.
void EmitWithImm(std::vector<uint8_t>& out, const Insn& insn, std::span<const uint8_t> bytes,
                 uint64_t new_imm) {
  for (size_t i = 0; i < insn.imm_off; ++i) {
    out.push_back(bytes[i]);
  }
  for (unsigned i = 0; i < insn.imm_len; ++i) {
    out.push_back(static_cast<uint8_t>(new_imm >> (8 * i)));
  }
}

// Registers the instruction references (for scratch selection).
void CollectUsedRegs(const Insn& insn, bool used[kNumRegs]) {
  if (insn.has_modrm) {
    used[insn.modrm_reg()] = true;
    if (insn.modrm_mod() == 3) {
      used[insn.modrm_rm()] = true;
    } else if (insn.has_sib) {
      used[insn.sib_base()] = true;
      used[insn.sib_index()] = true;
    } else if (!insn.is_rip_relative()) {
      used[insn.modrm_rm()] = true;
    }
  }
  used[static_cast<size_t>(Reg::kRsp)] = true;  // Never a scratch.
  used[0] = used[0] || insn.mnemonic == Mnemonic::kTest;  // A8/A9 use rax.
}

sb::StatusOr<Reg> PickScratch(const Insn& insn, int variant) {
  bool used[kNumRegs] = {};
  CollectUsedRegs(insn, used);
  static const Reg kCandidates[] = {Reg::kRax, Reg::kRcx, Reg::kRdx, Reg::kRbx,
                                    Reg::kRsi, Reg::kRdi, Reg::kR8,  Reg::kR9};
  int found = 0;
  for (const Reg r : kCandidates) {
    if (!used[static_cast<size_t>(r)]) {
      if (found == variant % 4) {
        return r;
      }
      ++found;
    }
  }
  for (const Reg r : kCandidates) {
    if (!used[static_cast<size_t>(r)]) {
      return r;
    }
  }
  return sb::ResourceExhausted("no scratch register available");
}

// Builds `scratch = value` (exact 64-bit value) without touching flags:
// REX.W C7 (sign-extended imm32) or B8+r imm64, then LEA to adjust. The
// split avoids the VMFUNC pattern in the emitted immediates.
void EmitBuildScratch(Assembler& a, Reg scratch, uint64_t value, int variant) {
  const int64_t deltas[] = {0x1100, -0x1100, 0x730017, -0x730017, 0x2, -0x2, 0x55001, -0x55001};
  const int64_t delta = deltas[variant % 8];
  const uint64_t part = value - static_cast<uint64_t>(delta);
  a.MovRI64(scratch, part);
  a.Lea(scratch, scratch, Assembler::kNoIndex, 1, static_cast<int32_t>(delta));
}

// ---- Per-case transforms. Each emits into `out`; `variant` perturbs the
// choices so the caller can retry until the emission is pattern-free. ----

sb::Status TransformRegSubstitution(std::vector<uint8_t>& out, const Insn& insn,
                                    std::span<const uint8_t> bytes, int variant) {
  if (!ReencodableEncoding(insn)) {
    return sb::Unimplemented("cannot re-encode instruction with VEX/odd prefixes");
  }
  SB_ASSIGN_OR_RETURN(MemOp op, ParseMem(insn, bytes));
  if (op.rip_relative) {
    return sb::Unimplemented("register substitution on RIP-relative operand");
  }
  SB_ASSIGN_OR_RETURN(const Reg scratch, PickScratch(insn, variant));
  Assembler a;
  a.PushR(scratch);
  const bool replace_base = op.has_base;
  const Reg victim = static_cast<Reg>(replace_base ? op.base : op.index);
  a.MovRR64(scratch, victim);
  // The push moved RSP; compensate if RSP is the register being copied.
  if (victim == Reg::kRsp) {
    a.AddRI(scratch, 8);
  }
  MemOp new_op = op;
  if (replace_base) {
    new_op.base = static_cast<uint8_t>(scratch);
  } else {
    new_op.index = static_cast<uint8_t>(scratch);
  }
  std::vector<uint8_t> body;
  EmitWithMem(body, insn, bytes, new_op);
  a.Append(body);
  a.PopR(scratch);
  out.insert(out.end(), a.bytes().begin(), a.bytes().end());
  return sb::OkStatus();
}

sb::Status TransformDispSplit(std::vector<uint8_t>& out, const Insn& insn,
                              std::span<const uint8_t> bytes, int variant) {
  if (!ReencodableEncoding(insn)) {
    return sb::Unimplemented("cannot re-encode instruction with VEX/odd prefixes");
  }
  SB_ASSIGN_OR_RETURN(MemOp op, ParseMem(insn, bytes));
  if (op.rip_relative) {
    // Handled by relocation (the displacement is recomputed when moved).
    return sb::Unimplemented("disp split on RIP-relative operand");
  }
  if (!op.has_base && !op.has_index) {
    return sb::Unimplemented("disp split of absolute addressing");
  }
  SB_ASSIGN_OR_RETURN(const Reg scratch, PickScratch(insn, variant));
  const int64_t deltas[] = {0x11000, -0x11000, 0x777, -0x777, 0x1100000, -0x1100000, 0x3, -0x3};
  const int64_t delta = deltas[variant % 8];
  const int64_t new_disp = static_cast<int64_t>(op.disp) - delta;
  if (new_disp < INT32_MIN || new_disp > INT32_MAX) {
    return sb::OutOfRange("displacement split overflows int32");
  }
  Assembler a;
  a.PushR(scratch);
  MemOp new_op = op;
  if (op.has_base) {
    a.MovRR64(scratch, static_cast<Reg>(op.base));
    const int64_t compensation = op.base == static_cast<uint8_t>(Reg::kRsp) ? 8 : 0;
    a.AddRI(scratch, static_cast<int32_t>(delta + compensation));
    new_op.base = static_cast<uint8_t>(scratch);
  } else {
    // No base, only a scaled index: fold index*scale into the scratch with
    // flag-free LEA doublings, then absorb the delta.
    a.MovRR64(scratch, static_cast<Reg>(op.index));
    for (uint8_t s = 0; s < op.scale_log2; ++s) {
      a.Lea(scratch, scratch, static_cast<int>(scratch), 1, 0);
    }
    a.Lea(scratch, scratch, Assembler::kNoIndex, 1, static_cast<int32_t>(delta));
    new_op.base = static_cast<uint8_t>(scratch);
    new_op.has_base = true;
    new_op.has_index = false;
    new_op.scale_log2 = 0;
  }
  new_op.disp = static_cast<int32_t>(new_disp);
  std::vector<uint8_t> body;
  EmitWithMem(body, insn, bytes, new_op);
  a.Append(body);
  a.PopR(scratch);
  out.insert(out.end(), a.bytes().begin(), a.bytes().end());
  return sb::OkStatus();
}

// Split immediates for ADD/SUB/OR/AND/XOR applied twice (Table 3 row 5).
sb::Status TransformImmTwice(std::vector<uint8_t>& out, const Insn& insn,
                             std::span<const uint8_t> bytes, int variant) {
  const uint32_t imm = static_cast<uint32_t>(ReadLittle(bytes, insn.imm_off, insn.imm_len));
  if (insn.imm_len != 4) {
    return sb::Unimplemented("imm split requires a 4-byte immediate");
  }
  uint32_t a_val = 0;
  uint32_t b_val = 0;
  const int k = variant % 4;  // Which byte to carve out.
  switch (insn.mnemonic) {
    case Mnemonic::kAdd:
    case Mnemonic::kSub: {
      const int64_t deltas[] = {0x1100, 0x730017, 0x2, 0x55001};
      const int64_t delta = deltas[variant % 4];
      const int64_t rest = static_cast<int64_t>(static_cast<int32_t>(imm)) - delta;
      if (rest < INT32_MIN || rest > INT32_MAX) {
        return sb::OutOfRange("imm split overflows");
      }
      a_val = static_cast<uint32_t>(static_cast<int32_t>(rest));
      b_val = static_cast<uint32_t>(delta);
      break;
    }
    case Mnemonic::kOr: {
      const uint32_t mask = 0xffU << (8 * k);
      a_val = imm & ~mask;
      b_val = imm & mask;
      break;
    }
    case Mnemonic::kAnd: {
      const uint32_t mask = 0xffU << (8 * k);
      a_val = imm | mask;
      b_val = imm | ~mask;
      break;
    }
    case Mnemonic::kXor: {
      const uint32_t bit = 1U << (8 * k + (variant % 3));
      if (8 * k + (variant % 3) >= 31) {
        return sb::OutOfRange("xor bit choice flips the sign");
      }
      a_val = imm ^ bit;
      b_val = bit;
      break;
    }
    default:
      return sb::Unimplemented("imm-twice only for add/sub/or/and/xor");
  }
  EmitWithImm(out, insn, bytes, a_val);
  EmitWithImm(out, insn, bytes, b_val);
  return sb::OkStatus();
}

// MOV with a patterned immediate: build the value with MOV+LEA (flag-free).
sb::Status TransformMovImm(std::vector<uint8_t>& out, const Insn& insn,
                           std::span<const uint8_t> bytes, int variant) {
  const uint8_t op = bytes[insn.opcode_off];
  Assembler a;
  if (op >= 0xb8 && op <= 0xbf) {
    const uint8_t reg = static_cast<uint8_t>((op & 7) | ((insn.rex & 1) << 3));
    const uint64_t raw = ReadLittle(bytes, insn.imm_off, insn.imm_len);
    const uint64_t value = insn.rex_w() ? raw : (raw & 0xffffffffULL);
    EmitBuildScratch(a, static_cast<Reg>(reg), value, variant);
    out.insert(out.end(), a.bytes().begin(), a.bytes().end());
    return sb::OkStatus();
  }
  if (op == 0xc7) {
    const uint64_t value = insn.rex_w()
                               ? static_cast<uint64_t>(SignExtend(
                                     ReadLittle(bytes, insn.imm_off, insn.imm_len), 32))
                               : ReadLittle(bytes, insn.imm_off, insn.imm_len);
    if (insn.modrm_is_reg()) {
      const Reg dst = static_cast<Reg>(insn.modrm_rm());
      EmitBuildScratch(a, dst, value, variant);
      if (!insn.rex_w()) {
        // The original zero-extended a 32-bit write; emulate with a 32-bit
        // self-move (89 /r without REX.W).
        a.Raw({0x89, static_cast<uint8_t>(0xc0 | ((static_cast<uint8_t>(dst) & 7) << 3) |
                                          (static_cast<uint8_t>(dst) & 7))});
      }
      out.insert(out.end(), a.bytes().begin(), a.bytes().end());
      return sb::OkStatus();
    }
    // Memory destination: build in scratch, store, restore scratch.
    if (!ReencodableEncoding(insn)) {
      return sb::Unimplemented("cannot re-encode instruction");
    }
    SB_ASSIGN_OR_RETURN(MemOp mem, ParseMem(insn, bytes));
    if (mem.rip_relative) {
      return sb::Unimplemented("mov imm to RIP-relative destination");
    }
    SB_ASSIGN_OR_RETURN(const Reg scratch, PickScratch(insn, variant));
    a.PushR(scratch);
    EmitBuildScratch(a, scratch, value, variant);
    MemOp adjusted = mem;
    if (mem.has_base && mem.base == static_cast<uint8_t>(Reg::kRsp)) {
      adjusted.disp += 8;  // Compensate for the push.
    }
    // Store: 89 /r with the original operand size.
    Assembler store;
    std::vector<uint8_t> store_bytes;
    {
      // Synthesize a template `mov [mem], scratch` matching the original
      // operand size (REX.W copied from the original instruction).
      std::vector<uint8_t> tmpl;
      if (insn.operand_size_16) {
        tmpl.push_back(0x66);
      }
      uint8_t rex = insn.rex & 0x48;
      if (static_cast<uint8_t>(scratch) >= 8) {
        rex |= 4;
      }
      if (rex != 0) {
        tmpl.push_back(static_cast<uint8_t>(0x40 | (rex & 0xf)));
      }
      tmpl.push_back(0x89);
      tmpl.push_back(static_cast<uint8_t>(0x80 | ((static_cast<uint8_t>(scratch) & 7) << 3)));
      for (int i = 0; i < 4; ++i) {
        tmpl.push_back(0);
      }
      const Insn tmpl_insn = Decode(tmpl, 0);
      SB_CHECK(tmpl_insn.valid);
      EmitWithMem(store_bytes, tmpl_insn, tmpl, adjusted);
    }
    (void)store;
    a.Append(store_bytes);
    a.PopR(scratch);
    out.insert(out.end(), a.bytes().begin(), a.bytes().end());
    return sb::OkStatus();
  }
  return sb::Unimplemented("mov-imm form not supported");
}

// CMP/TEST with patterned immediate: exact flag semantics via a scratch.
sb::Status TransformCmpTestImm(std::vector<uint8_t>& out, const Insn& insn,
                               std::span<const uint8_t> bytes, int variant) {
  if (!ReencodableEncoding(insn)) {
    return sb::Unimplemented("cannot re-encode instruction");
  }
  if (insn.imm_len != 4) {
    return sb::Unimplemented("cmp/test imm split requires imm32");
  }
  SB_ASSIGN_OR_RETURN(const Reg scratch, PickScratch(insn, variant));
  const uint64_t raw = ReadLittle(bytes, insn.imm_off, insn.imm_len);
  const uint64_t value =
      insn.rex_w() ? static_cast<uint64_t>(SignExtend(raw, 32)) : (raw & 0xffffffffULL);
  Assembler a;
  a.PushR(scratch);
  EmitBuildScratch(a, scratch, value, variant);
  // Re-encode as the register form: CMP rm, r (39 /r) or TEST rm, r (85 /r).
  const uint8_t opcode = insn.mnemonic == Mnemonic::kCmp ? 0x39 : 0x85;
  std::vector<uint8_t> body;
  if (insn.has_modrm && insn.modrm_is_reg()) {
    const uint8_t rm = insn.modrm_rm();
    uint8_t rex = insn.rex & 0x48;
    if (static_cast<uint8_t>(scratch) >= 8) {
      rex |= 4;
    }
    if (rm >= 8) {
      rex |= 1;
    }
    if (insn.operand_size_16) {
      body.push_back(0x66);
    }
    if (rex != 0) {
      body.push_back(static_cast<uint8_t>(0x40 | (rex & 0xf)));
    }
    body.push_back(opcode);
    body.push_back(
        static_cast<uint8_t>(0xc0 | ((static_cast<uint8_t>(scratch) & 7) << 3) | (rm & 7)));
  } else if (insn.has_modrm) {
    SB_ASSIGN_OR_RETURN(MemOp mem, ParseMem(insn, bytes));
    if (mem.rip_relative) {
      return sb::Unimplemented("cmp/test imm on RIP-relative operand");
    }
    if (mem.has_base && mem.base == static_cast<uint8_t>(Reg::kRsp)) {
      mem.disp += 8;
    }
    std::vector<uint8_t> tmpl;
    if (insn.operand_size_16) {
      tmpl.push_back(0x66);
    }
    uint8_t rex = insn.rex & 0x48;
    if (static_cast<uint8_t>(scratch) >= 8) {
      rex |= 4;
    }
    if (rex != 0) {
      tmpl.push_back(static_cast<uint8_t>(0x40 | (rex & 0xf)));
    }
    tmpl.push_back(opcode);
    tmpl.push_back(static_cast<uint8_t>(0x80 | ((static_cast<uint8_t>(scratch) & 7) << 3)));
    for (int i = 0; i < 4; ++i) {
      tmpl.push_back(0);
    }
    const Insn tmpl_insn = Decode(tmpl, 0);
    SB_CHECK(tmpl_insn.valid);
    EmitWithMem(body, tmpl_insn, tmpl, mem);
  } else {
    // 3D / A9 forms (rax destination).
    const uint8_t rm = 0;  // rax
    uint8_t rex = insn.rex & 0x48;
    if (static_cast<uint8_t>(scratch) >= 8) {
      rex |= 4;
    }
    if (insn.operand_size_16) {
      body.push_back(0x66);
    }
    if (rex != 0) {
      body.push_back(static_cast<uint8_t>(0x40 | (rex & 0xf)));
    }
    body.push_back(opcode);
    body.push_back(
        static_cast<uint8_t>(0xc0 | ((static_cast<uint8_t>(scratch) & 7) << 3) | rm));
  }
  a.Append(body);
  a.PopR(scratch);
  out.insert(out.end(), a.bytes().begin(), a.bytes().end());
  return sb::OkStatus();
}

// IMUL r, rm, imm with a patterned immediate.
sb::Status TransformImulImm(std::vector<uint8_t>& out, const Insn& insn,
                            std::span<const uint8_t> bytes, int variant) {
  if (!ReencodableEncoding(insn)) {
    return sb::Unimplemented("cannot re-encode instruction");
  }
  if (!insn.rex_w()) {
    return sb::Unimplemented("imul imm split implemented for 64-bit form only");
  }
  SB_ASSIGN_OR_RETURN(const Reg scratch, PickScratch(insn, variant));
  const Reg dst = static_cast<Reg>(insn.modrm_reg());
  const uint64_t value = static_cast<uint64_t>(
      SignExtend(ReadLittle(bytes, insn.imm_off, insn.imm_len), insn.imm_len * 8u));
  Assembler a;
  a.PushR(scratch);
  EmitBuildScratch(a, scratch, value, variant);
  if (insn.modrm_is_reg()) {
    a.ImulRR(scratch, static_cast<Reg>(insn.modrm_rm()));
  } else {
    SB_ASSIGN_OR_RETURN(MemOp mem, ParseMem(insn, bytes));
    if (mem.rip_relative) {
      return sb::Unimplemented("imul imm on RIP-relative operand");
    }
    if (mem.has_base && mem.base == static_cast<uint8_t>(Reg::kRsp)) {
      mem.disp += 8;
    }
    // imul scratch, [mem]: REX.W 0F AF /r.
    std::vector<uint8_t> tmpl;
    uint8_t rex = 0x48;
    if (static_cast<uint8_t>(scratch) >= 8) {
      rex |= 4;
    }
    tmpl.push_back(rex);
    tmpl.push_back(0x0f);
    tmpl.push_back(0xaf);
    tmpl.push_back(static_cast<uint8_t>(0x80 | ((static_cast<uint8_t>(scratch) & 7) << 3)));
    for (int i = 0; i < 4; ++i) {
      tmpl.push_back(0);
    }
    const Insn tmpl_insn = Decode(tmpl, 0);
    SB_CHECK(tmpl_insn.valid);
    std::vector<uint8_t> body;
    EmitWithMem(body, tmpl_insn, tmpl, mem);
    a.Append(body);
  }
  a.MovRR64(dst, scratch);
  a.PopR(scratch);
  out.insert(out.end(), a.bytes().begin(), a.bytes().end());
  return sb::OkStatus();
}

// PUSH imm32 with a patterned immediate: build the value flag-free in a
// scratch register parked below the red zone.
sb::Status TransformPushImm(std::vector<uint8_t>& out, const Insn& insn,
                            std::span<const uint8_t> bytes, int variant) {
  if (insn.imm_len != 4) {
    return sb::Unimplemented("push imm split requires imm32");
  }
  const uint64_t value = static_cast<uint64_t>(
      SignExtend(ReadLittle(bytes, insn.imm_off, insn.imm_len), 32));
  SB_ASSIGN_OR_RETURN(const Reg scratch, PickScratch(insn, variant));
  Assembler a;
  // lea rsp, [rsp-8]     (the push's slot, no flags touched)
  a.Lea(Reg::kRsp, Reg::kRsp, Assembler::kNoIndex, 1, -8);
  a.PushR(scratch);  // Save the scratch below the slot.
  EmitBuildScratch(a, scratch, value, variant);
  // mov [rsp+8], scratch — fill the slot.
  a.MovMR64(Reg::kRsp, 8, scratch);
  a.PopR(scratch);
  out.insert(out.end(), a.bytes().begin(), a.bytes().end());
  return sb::OkStatus();
}

// ---- Snippet construction ----

struct WindowInsn {
  size_t off;  // Offset in code.
  Insn insn;
  bool offending;  // The instruction containing the pattern (C3 cases).
};

class SnippetBuilder {
 public:
  SnippetBuilder(std::span<const uint8_t> code, const RewriteConfig& config,
                 const VmfuncHit& hit, std::vector<WindowInsn> window, size_t window_end)
      : code_(code), config_(config), hit_(hit), window_(std::move(window)),
        window_end_(window_end) {}

  // Emits the snippet at `snippet_va`; returns the bytes or an error.
  sb::StatusOr<std::vector<uint8_t>> Emit(uint64_t snippet_va, int variant) {
    std::vector<uint8_t> out;
    for (const WindowInsn& wi : window_) {
      const uint64_t orig_va = config_.code_base + wi.off;
      const std::span<const uint8_t> insn_bytes = code_.subspan(wi.off, wi.insn.length);
      if (wi.offending) {
        SB_RETURN_IF_ERROR(EmitTransformed(out, wi.insn, insn_bytes, orig_va,
                                           snippet_va + out.size(), variant));
      } else {
        SB_RETURN_IF_ERROR(EmitRelocated(out, wi.insn, insn_bytes, orig_va,
                                         snippet_va + out.size()));
      }
      // Break C2 spans: a NOP after any instruction boundary that falls
      // strictly inside the pattern triple.
      const size_t insn_end = wi.off + wi.insn.length;
      if (insn_end > hit_.pattern_off && insn_end <= hit_.pattern_off + 2) {
        out.push_back(kNopByte);
      }
    }
    // Jump back to the instruction after the window.
    const uint64_t back_target = config_.code_base + window_end_;
    const uint64_t jmp_va = snippet_va + out.size();
    const int64_t rel = static_cast<int64_t>(back_target) - static_cast<int64_t>(jmp_va + 5);
    if (rel < INT32_MIN || rel > INT32_MAX) {
      return sb::OutOfRange("rewrite page too far from code");
    }
    out.push_back(0xe9);
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<uint8_t>(static_cast<uint32_t>(rel) >> (8 * i)));
    }
    return out;
  }

 private:
  sb::Status EmitRelocated(std::vector<uint8_t>& out, const Insn& insn,
                           std::span<const uint8_t> bytes, uint64_t orig_va, uint64_t new_va) {
    const Mnemonic m = insn.mnemonic;
    if (m == Mnemonic::kJmpRel || m == Mnemonic::kJccRel || m == Mnemonic::kCallRel) {
      const int64_t disp = SignExtend(ReadLittle(bytes, insn.imm_off, insn.imm_len),
                                      insn.imm_len * 8u);
      const uint64_t target = orig_va + insn.length + static_cast<uint64_t>(disp);
      // Targets inside the moved window would need label tracking.
      const uint64_t win_lo = config_.code_base + window_.front().off;
      const uint64_t win_hi = config_.code_base + window_end_;
      if (target >= win_lo && target < win_hi) {
        return sb::Unimplemented("branch target inside relocated window");
      }
      // Re-encode as the rel32 form.
      uint8_t enc[6];
      size_t enc_len = 0;
      if (m == Mnemonic::kJmpRel) {
        enc[0] = 0xe9;
        enc_len = 5;
      } else if (m == Mnemonic::kCallRel) {
        enc[0] = 0xe8;
        enc_len = 5;
      } else {
        const uint8_t op = bytes[insn.opcode_off];
        const uint8_t cond =
            insn.opcode_len == 1 ? (op & 0xf) : (bytes[insn.opcode_off + 1] & 0xf);
        enc[0] = 0x0f;
        enc[1] = static_cast<uint8_t>(0x80 | cond);
        enc_len = 6;
      }
      const int64_t new_rel =
          static_cast<int64_t>(target) - static_cast<int64_t>(new_va + enc_len);
      if (new_rel < INT32_MIN || new_rel > INT32_MAX) {
        return sb::OutOfRange("relocated branch out of rel32 range");
      }
      const size_t rel_off = enc_len - 4;
      for (int i = 0; i < 4; ++i) {
        enc[rel_off + static_cast<size_t>(i)] =
            static_cast<uint8_t>(static_cast<uint32_t>(new_rel) >> (8 * i));
      }
      out.insert(out.end(), enc, enc + enc_len);
      return sb::OkStatus();
    }
    if (insn.is_rip_relative()) {
      const int64_t disp =
          SignExtend(ReadLittle(bytes, insn.disp_off, insn.disp_len), insn.disp_len * 8u);
      const uint64_t target = orig_va + insn.length + static_cast<uint64_t>(disp);
      const int64_t new_disp =
          static_cast<int64_t>(target) - static_cast<int64_t>(new_va + insn.length);
      if (new_disp < INT32_MIN || new_disp > INT32_MAX) {
        return sb::OutOfRange("relocated RIP-relative operand out of range");
      }
      std::vector<uint8_t> copy(bytes.begin(), bytes.end());
      for (int i = 0; i < 4; ++i) {
        copy[insn.disp_off + static_cast<size_t>(i)] =
            static_cast<uint8_t>(static_cast<uint32_t>(new_disp) >> (8 * i));
      }
      out.insert(out.end(), copy.begin(), copy.end());
      return sb::OkStatus();
    }
    out.insert(out.end(), bytes.begin(), bytes.end());
    return sb::OkStatus();
  }

  sb::Status EmitTransformed(std::vector<uint8_t>& out, const Insn& insn,
                             std::span<const uint8_t> bytes, uint64_t orig_va, uint64_t new_va,
                             int variant) {
    switch (hit_.overlap) {
      case VmfuncOverlap::kInModrm:
      case VmfuncOverlap::kInSib:
        return TransformRegSubstitution(out, insn, bytes, variant);
      case VmfuncOverlap::kInDisp:
        if (insn.is_rip_relative()) {
          return EmitRelocated(out, insn, bytes, orig_va, new_va);
        }
        return TransformDispSplit(out, insn, bytes, variant);
      case VmfuncOverlap::kInImm:
        switch (insn.mnemonic) {
          case Mnemonic::kJmpRel:
          case Mnemonic::kJccRel:
          case Mnemonic::kCallRel:
            // Jump-like: the displacement changes when relocated (Table 3).
            return EmitRelocated(out, insn, bytes, orig_va, new_va);
          case Mnemonic::kAdd:
          case Mnemonic::kSub:
          case Mnemonic::kOr:
          case Mnemonic::kAnd:
          case Mnemonic::kXor:
            return TransformImmTwice(out, insn, bytes, variant);
          case Mnemonic::kMov:
          case Mnemonic::kMovImm64:
            return TransformMovImm(out, insn, bytes, variant);
          case Mnemonic::kCmp:
          case Mnemonic::kTest:
            return TransformCmpTestImm(out, insn, bytes, variant);
          case Mnemonic::kImul:
            return TransformImulImm(out, insn, bytes, variant);
          case Mnemonic::kPush:
            return TransformPushImm(out, insn, bytes, variant);
          default:
            return sb::Unimplemented("imm rewrite for this mnemonic");
        }
      case VmfuncOverlap::kSpans:
        // No transform needed; the NOP separator in Emit() breaks the span.
        return EmitRelocated(out, insn, bytes, orig_va, new_va);
      default:
        return sb::Unimplemented("unhandled overlap case");
    }
  }

  std::span<const uint8_t> code_;
  const RewriteConfig& config_;
  const VmfuncHit hit_;
  std::vector<WindowInsn> window_;
  size_t window_end_;
};

// ---- Main driver ----

sb::Status HandleHit(std::vector<uint8_t>& code, std::vector<uint8_t>& page,
                     const RewriteConfig& config, const VmfuncHit& hit, RewriteStats& stats) {
  if (hit.overlap == VmfuncOverlap::kIsVmfunc || hit.overlap == VmfuncOverlap::kInOpcode ||
      hit.overlap == VmfuncOverlap::kUndecodable) {
    // C1 (and conservative fallback): replace the three bytes with NOPs.
    code[hit.pattern_off] = kNopByte;
    code[hit.pattern_off + 1] = kNopByte;
    code[hit.pattern_off + 2] = kNopByte;
    ++stats.nop_replaced;
    return sb::OkStatus();
  }

  // Build the relocation window: whole instructions covering the pattern,
  // extended until it can hold a 5-byte JMP.
  const std::span<const uint8_t> code_span(code);
  std::vector<WindowInsn> window;
  size_t pos = hit.insn_off;
  size_t end = hit.insn_off;
  while (end < hit.pattern_off + 3 || end - hit.insn_off < 5) {
    if (pos >= code.size()) {
      return sb::OutOfRange("pattern too close to end of code region");
    }
    const Insn insn = Decode(code_span, pos);
    if (!insn.valid) {
      return sb::Unimplemented("undecodable instruction in rewrite window");
    }
    WindowInsn wi;
    wi.off = pos;
    wi.insn = insn;
    wi.offending = hit.overlap != VmfuncOverlap::kSpans && pos == hit.insn_off;
    window.push_back(wi);
    pos += insn.length;
    end = pos;
  }

  SnippetBuilder builder(code_span, config, hit, window, end);

  // Try (pad, variant) combinations until the snippet, the page junctions and
  // the patched code window are all pattern-free.
  for (int attempt = 0; attempt < 48; ++attempt) {
    const int pad = attempt % 6;
    const int variant = attempt / 6;
    const size_t snippet_off = page.size() + static_cast<size_t>(pad);
    const uint64_t snippet_va = config.rewrite_page_base + snippet_off;
    auto emitted = builder.Emit(snippet_va, variant);
    if (!emitted.ok()) {
      if (emitted.status().code() == sb::ErrorCode::kUnimplemented ||
          emitted.status().code() == sb::ErrorCode::kOutOfRange) {
        return emitted.status();
      }
      continue;
    }
    const std::vector<uint8_t>& snippet = *emitted;
    if (snippet_off + snippet.size() > config.rewrite_page_capacity) {
      return sb::ResourceExhausted("rewrite page full");
    }
    // Check the snippet plus a little context from the current page tail.
    std::vector<uint8_t> probe;
    const size_t ctx = std::min<size_t>(page.size(), 2);
    probe.insert(probe.end(), page.end() - static_cast<long>(ctx), page.end());
    probe.insert(probe.end(), static_cast<size_t>(pad), kNopByte);
    probe.insert(probe.end(), snippet.begin(), snippet.end());
    if (ContainsPattern(probe, config.pattern)) {
      continue;
    }
    // Build the patched code window: JMP snippet + NOP fill.
    const size_t wstart = window.front().off;
    const uint64_t jmp_va = config.code_base + wstart;
    const int64_t jmp_rel =
        static_cast<int64_t>(snippet_va) - static_cast<int64_t>(jmp_va + 5);
    if (jmp_rel < INT32_MIN || jmp_rel > INT32_MAX) {
      return sb::OutOfRange("rewrite page too far from code");
    }
    std::vector<uint8_t> patch(end - wstart, kNopByte);
    patch[0] = 0xe9;
    for (int i = 0; i < 4; ++i) {
      patch[1 + static_cast<size_t>(i)] =
          static_cast<uint8_t>(static_cast<uint32_t>(jmp_rel) >> (8 * i));
    }
    std::vector<uint8_t> code_probe;
    const size_t lo = wstart >= 2 ? wstart - 2 : 0;
    const size_t hi = std::min(code.size(), end + 2);
    code_probe.insert(code_probe.end(), code.begin() + static_cast<long>(lo),
                      code.begin() + static_cast<long>(wstart));
    code_probe.insert(code_probe.end(), patch.begin(), patch.end());
    code_probe.insert(code_probe.end(), code.begin() + static_cast<long>(end),
                      code.begin() + static_cast<long>(hi));
    if (ContainsPattern(code_probe, config.pattern)) {
      continue;
    }
    // Commit.
    page.insert(page.end(), static_cast<size_t>(pad), kNopByte);
    page.insert(page.end(), snippet.begin(), snippet.end());
    std::copy(patch.begin(), patch.end(), code.begin() + static_cast<long>(wstart));
    ++stats.windows_relocated;
    ++stats.snippets_emitted;
    return sb::OkStatus();
  }
  return sb::Internal("could not find a pattern-free rewriting");
}

}  // namespace

sb::StatusOr<RewriteResult> RewriteVmfunc(std::span<const uint8_t> code,
                                          const RewriteConfig& config) {
  RewriteResult result;
  result.code.assign(code.begin(), code.end());

  ScanStats scan_stats;
  ScanOptions scan_options;
  scan_options.pool = config.scan_pool;
  scan_options.stats = &scan_stats;
  scan_options.pattern = config.pattern;

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    const std::vector<VmfuncHit> hits = ScanForVmfunc(result.code, scan_options);
    result.stats.scan_pages = scan_stats.pages;
    result.stats.scan_threads = scan_stats.threads;
    if (hits.empty()) {
      if (ContainsPattern(result.rewrite_page, config.pattern)) {
        return sb::Internal("rewrite page contains the pattern after rewriting");
      }
      return result;
    }
    SB_RETURN_IF_ERROR(
        HandleHit(result.code, result.rewrite_page, config, hits.front(), result.stats));
  }
  return sb::Internal("rewriting did not converge");
}

sb::StatusOr<PageRewrite> RewriteVmfuncPage(std::span<const uint8_t> code, size_t page_index,
                                            const RewriteConfig& config) {
  constexpr size_t kCodePageBytes = 4096;
  PageRewrite result;
  std::vector<uint8_t> working(code.begin(), code.end());

  ScanStats scan_stats;
  ScanOptions scan_options;
  scan_options.pool = config.scan_pool;
  scan_options.stats = &scan_stats;
  scan_options.pattern = config.pattern;

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    const std::vector<VmfuncHit> hits = ScanForVmfunc(working, scan_options);
    result.stats.scan_pages = scan_stats.pages;
    result.stats.scan_threads = scan_stats.threads;
    const VmfuncHit* owned = nullptr;
    for (const VmfuncHit& hit : hits) {
      if (hit.pattern_off / kCodePageBytes == page_index) {
        owned = &hit;
        break;
      }
    }
    if (owned == nullptr) {
      if (ContainsPattern(result.snippets, config.pattern)) {
        return sb::Internal("rewrite sub-window contains the pattern after rewriting");
      }
      // Record the working-vs-input byte diff as replayable patches.
      size_t i = 0;
      while (i < working.size()) {
        if (working[i] == code[i]) {
          ++i;
          continue;
        }
        size_t j = i;
        while (j < working.size() && working[j] != code[j]) {
          ++j;
        }
        PagePatch patch;
        patch.code_off = i;
        patch.bytes.assign(working.begin() + static_cast<long>(i),
                           working.begin() + static_cast<long>(j));
        result.patches.push_back(std::move(patch));
        i = j;
      }
      return result;
    }
    SB_RETURN_IF_ERROR(HandleHit(working, result.snippets, config, *owned, result.stats));
  }
  return sb::Internal("rewriting did not converge");
}

}  // namespace x86
