// x86-64 instruction-length decoder.

#ifndef SRC_X86_DECODER_H_
#define SRC_X86_DECODER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/x86/insn.h"

namespace x86 {

// Decodes the instruction starting at code[offset]. On undecodable bytes the
// returned Insn has valid == false and length == 1 (callers skip one byte,
// the conservative linear-sweep convention).
Insn Decode(std::span<const uint8_t> code, size_t offset);

// Linear-sweep decode of a whole code region: returns the start offset of
// every decoded instruction, in order. Undecodable bytes consume one offset
// each.
std::vector<size_t> LinearSweep(std::span<const uint8_t> code);

}  // namespace x86

#endif  // SRC_X86_DECODER_H_
