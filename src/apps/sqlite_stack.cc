#include "src/apps/sqlite_stack.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"

#include "src/base/units.h"

namespace apps {

std::string_view StackTransportName(StackTransport transport) {
  switch (transport) {
    case StackTransport::kIpcStServer:
      return "ST-Server";
    case StackTransport::kIpcMtServer:
      return "MT-Server";
    case StackTransport::kSkyBridge:
      return "SkyBridge";
  }
  return "?";
}

sb::StatusOr<std::unique_ptr<SqliteStack>> SqliteStack::Create(const SqliteStackConfig& config) {
  std::unique_ptr<SqliteStack> stack(new SqliteStack());
  SB_RETURN_IF_ERROR(stack->Setup(config));
  return stack;
}

sb::StatusOr<mk::Message> SqliteStack::CallSky(mk::Thread* thread, skybridge::ServerId sid,
                                               const mk::Message& msg) {
  // Large requests: construct the wire message directly in the connection's
  // shared-buffer slice so the bridge skips the charged request copy.
  const std::span<const uint8_t> p = msg.payload();
  if (p.size() > kernel_->profile().register_msg_capacity) {
    auto buf = sky_->AcquireSendBuffer(thread, sid);
    if (buf.ok() && p.size() <= buf->size()) {
      std::memcpy(buf->data(), p.data(), p.size());
      return sky_->DirectServerCallInPlace(thread, sid, msg.tag, p.size());
    }
  }
  return sky_->DirectServerCall(thread, sid, msg);
}

sb::StatusOr<mk::Message> SqliteStack::CallBdevFromFs(const mk::Message& msg) {
  if (setup_mode_) {
    // Direct, uncharged device access while formatting/preloading.
    const std::span<const uint8_t> p = msg.payload();
    uint32_t block = 0;
    if (p.size() >= 4) {
      std::memcpy(&block, p.data(), 4);
    }
    if (msg.tag == fsys::kBlockRead) {
      mk::Message reply(1);
      reply.data.resize(fsys::kBlockSize);
      SB_RETURN_IF_ERROR(ramdisk_->Read(nullptr, block, reply.data));
      return reply;
    }
    if (msg.tag == fsys::kBlockWrite && p.size() >= 4 + fsys::kBlockSize) {
      SB_RETURN_IF_ERROR(ramdisk_->Write(nullptr, block, p.subspan(4, fsys::kBlockSize)));
      return mk::Message(1);
    }
    return sb::InvalidArgument("bad setup block op");
  }
  mk::Thread* fs_thread = fs_threads_[static_cast<size_t>(current_fs_core_)];
  if (config_.transport == StackTransport::kSkyBridge) {
    return CallSky(fs_thread, bdev_sid_, msg);
  }
  return kernel_->IpcCall(fs_thread, bdev_cap_, msg);
}

sb::StatusOr<mk::Message> SqliteStack::CallFs(const mk::Message& msg) {
  if (setup_mode_) {
    const int prev = current_fs_core_;
    current_fs_core_ = 0;
    mk::CallEnv env{*kernel_, machine_->core(0), *fs_proc_, msg};
    mk::Message reply = fsys::MakeFsHandler(fs_.get(), fs_cache_heap_)(env);
    current_fs_core_ = prev;
    return reply;
  }
  mk::Thread* thread = client_threads_[static_cast<size_t>(current_client_thread_)];
  if (config_.transport == StackTransport::kSkyBridge) {
    return CallSky(thread, fs_sid_, msg);
  }
  return kernel_->IpcCall(thread, fs_cap_, msg);
}

sb::Status SqliteStack::Setup(const SqliteStackConfig& config) {
  config_ = config;
  hw::MachineConfig mc;
  mc.num_cores = config.num_cores;
  mc.ram_bytes = 4 * sb::kGiB;
  machine_ = std::make_unique<hw::Machine>(mc);

  mk::KernelOptions options;
  options.boot_rootkernel = config.boot_rootkernel;
  options.process_heap_bytes = 32 * sb::kMiB;
  kernel_ = std::make_unique<mk::Kernel>(*machine_, mk::ProfileFor(config.kernel), options);
  SB_RETURN_IF_ERROR(kernel_->Boot());
  if (config.boot_rootkernel && config.transport == StackTransport::kSkyBridge) {
    // Every client thread is its own connection and the slice allocator
    // refuses to alias slices, so provision one per thread.
    skybridge::SkyBridgeConfig sky_config;
    sky_config.buffer_slices =
        std::max<uint64_t>(sky_config.buffer_slices,
                           static_cast<uint64_t>(config.num_client_threads));
    sky_ = std::make_unique<skybridge::SkyBridge>(*kernel_, sky_config);
  } else if (config.transport == StackTransport::kSkyBridge) {
    return sb::InvalidArgument("SkyBridge transport requires the Rootkernel");
  }

  SB_ASSIGN_OR_RETURN(client_, kernel_->CreateProcess("sqlite-client"));
  SB_ASSIGN_OR_RETURN(fs_proc_, kernel_->CreateProcess("xv6fs-server"));
  SB_ASSIGN_OR_RETURN(bdev_proc_, kernel_->CreateProcess("ramdisk-server"));

  SB_ASSIGN_OR_RETURN(client_db_heap_, client_->AllocHeap(4 * sb::kMiB, 4096));
  SB_ASSIGN_OR_RETURN(fs_cache_heap_, fs_proc_->AllocHeap(1 * sb::kMiB, 4096));
  SB_ASSIGN_OR_RETURN(bdev_heap_,
                      bdev_proc_->AllocHeap(
                          static_cast<uint64_t>(config.disk_blocks) * fsys::kBlockSize, 4096));

  for (int t = 0; t < config.num_client_threads; ++t) {
    client_threads_.push_back(client_->AddThread(t % config.num_cores));
  }
  for (int c = 0; c < config.num_cores; ++c) {
    fs_threads_.push_back(fs_proc_->AddThread(c));
  }

  ramdisk_ = std::make_unique<fsys::RamDisk>(config.disk_blocks, bdev_proc_, bdev_heap_);
  fs_ = std::make_unique<fsys::Xv6Fs>(
      [this](const mk::Message& msg) { return CallBdevFromFs(msg); },
      fsys::Xv6Fs::Config{config.disk_blocks, 512, fsys::kLogCapacity + 1, 64});

  // Wire the servers.
  if (config.transport == StackTransport::kSkyBridge) {
    auto fs_handler = [this](mk::CallEnv& env) -> mk::Message {
      const int prev = current_fs_core_;
      current_fs_core_ = env.core.id();
      mk::Message reply = fsys::MakeFsHandler(fs_.get(), fs_cache_heap_)(env);
      current_fs_core_ = prev;
      return reply;
    };
    SB_ASSIGN_OR_RETURN(bdev_sid_, sky_->RegisterServer(bdev_proc_, 16, ramdisk_->MakeHandler()));
    SB_ASSIGN_OR_RETURN(fs_sid_, sky_->RegisterServer(fs_proc_, 16, fs_handler));
    SB_RETURN_IF_ERROR(sky_->RegisterClient(client_, fs_sid_));
    SB_RETURN_IF_ERROR(sky_->RegisterClient(fs_proc_, bdev_sid_));
  } else {
    std::vector<int> fs_cores;
    std::vector<int> bdev_cores;
    if (config.transport == StackTransport::kIpcStServer) {
      // One worker thread each, pinned away from the clients.
      fs_cores = {config.num_cores - 2};
      bdev_cores = {config.num_cores - 1};
    } else {
      for (int c = 0; c < config.num_cores; ++c) {
        fs_cores.push_back(c);
        bdev_cores.push_back(c);
      }
    }
    auto fs_handler = [this](mk::CallEnv& env) -> mk::Message {
      const int prev = current_fs_core_;
      current_fs_core_ = env.core.id();
      mk::Message reply = fsys::MakeFsHandler(fs_.get(), fs_cache_heap_)(env);
      current_fs_core_ = prev;
      return reply;
    };
    SB_ASSIGN_OR_RETURN(mk::Endpoint * bdev_ep,
                        kernel_->CreateEndpoint(bdev_proc_, ramdisk_->MakeHandler(), bdev_cores));
    SB_ASSIGN_OR_RETURN(mk::Endpoint * fs_ep,
                        kernel_->CreateEndpoint(fs_proc_, fs_handler, fs_cores));
    SB_ASSIGN_OR_RETURN(fs_cap_, kernel_->GrantEndpointCap(client_, fs_ep->id(), mk::kRightCall));
    SB_ASSIGN_OR_RETURN(bdev_cap_,
                        kernel_->GrantEndpointCap(fs_proc_, bdev_ep->id(), mk::kRightCall));
  }

  // Format, mount, create the database + table (all in setup mode: direct
  // uncharged transports, like the paper's untimed preparation phase).
  setup_mode_ = true;
  SB_RETURN_IF_ERROR(fs_->Mkfs());
  SB_RETURN_IF_ERROR(fs_->Mount());
  fs_client_ = std::make_unique<fsys::FsClient>(
      [this](const mk::Message& msg) { return CallFs(msg); });
  SB_ASSIGN_OR_RETURN(db_, minisql::Database::Open(fs_client_.get(), "/ycsb.db", config.db));
  SB_ASSIGN_OR_RETURN(table_, db_->CreateTable("usertable"));

  if (config.preload_records > 0) {
    YcsbConfig wl;
    wl.record_count = config.preload_records;
    YcsbWorkload workload(wl);
    for (uint64_t key = 0; key < config.preload_records; ++key) {
      SB_RETURN_IF_ERROR(table_->Insert(key, workload.ValueFor(key)));
    }
  }
  setup_mode_ = false;

  // Dispatch the client on its cores.
  for (int c = 0; c < std::min(config.num_client_threads, config.num_cores); ++c) {
    SB_RETURN_IF_ERROR(kernel_->ContextSwitchTo(machine_->core(c), client_));
  }
  return sb::OkStatus();
}

uint64_t SqliteStack::AcquireDbLock(int t) {
  mk::Thread* thread = client_threads_[static_cast<size_t>(t)];
  hw::Core& core = machine_->core(thread->core_id());
  const uint64_t arrival = core.cycles();
  const uint64_t start = db_lock_.Acquire(arrival);
  core.SyncClockTo(start);
  if (start > arrival) {
    // Contended: the thread blocked and was woken through the kernel
    // scheduler (sleep syscall, wakeup IPI, dispatch); convoying and
    // cache-line bouncing scale with the number of waiters.
    core.AdvanceCycles(config_.blocked_wakeup_cycles_per_waiter *
                       static_cast<uint64_t>(config_.num_client_threads - 1));
  }
  if (db_lock_last_core_ != -1 && db_lock_last_core_ != thread->core_id()) {
    // Lock and working-set migration between cores.
    core.AdvanceCycles(config_.lock_migration_cycles);
  }
  db_lock_last_core_ = thread->core_id();
  return core.cycles();
}

sb::Status SqliteStack::Insert(int t, uint64_t key, std::span<const uint8_t> value) {
  mk::Thread* thread = client_threads_[static_cast<size_t>(t)];
  hw::Core& core = machine_->core(thread->core_id());
  AcquireDbLock(t);
  current_client_thread_ = t;
  db_->SetChargedContext(&core, client_db_heap_);
  const sb::Status status = table_->Insert(key, value);
  db_->SetChargedContext(nullptr, 0);
  db_lock_.Release(core.cycles());
  return status;
}

sb::Status SqliteStack::Update(int t, uint64_t key, std::span<const uint8_t> value) {
  mk::Thread* thread = client_threads_[static_cast<size_t>(t)];
  hw::Core& core = machine_->core(thread->core_id());
  AcquireDbLock(t);
  current_client_thread_ = t;
  db_->SetChargedContext(&core, client_db_heap_);
  const sb::Status status = table_->Update(key, value);
  db_->SetChargedContext(nullptr, 0);
  db_lock_.Release(core.cycles());
  return status;
}

sb::StatusOr<std::vector<uint8_t>> SqliteStack::Query(int t, uint64_t key) {
  mk::Thread* thread = client_threads_[static_cast<size_t>(t)];
  hw::Core& core = machine_->core(thread->core_id());
  AcquireDbLock(t);
  current_client_thread_ = t;
  db_->SetChargedContext(&core, client_db_heap_);
  auto result = table_->Query(key);
  db_->SetChargedContext(nullptr, 0);
  db_lock_.Release(core.cycles());
  return result;
}

sb::Status SqliteStack::Delete(int t, uint64_t key) {
  mk::Thread* thread = client_threads_[static_cast<size_t>(t)];
  hw::Core& core = machine_->core(thread->core_id());
  AcquireDbLock(t);
  current_client_thread_ = t;
  db_->SetChargedContext(&core, client_db_heap_);
  const sb::Status status = table_->Delete(key);
  db_->SetChargedContext(nullptr, 0);
  db_lock_.Release(core.cycles());
  return status;
}

sb::Status SqliteStack::RunYcsbOp(int t, const YcsbOp& op, const YcsbWorkload& workload) {
  switch (op.type) {
    case YcsbOpType::kRead: {
      auto result = Query(t, op.key);
      if (!result.ok() && result.status().code() != sb::ErrorCode::kNotFound) {
        return result.status();
      }
      return sb::OkStatus();
    }
    case YcsbOpType::kUpdate:
      return Update(t, op.key, workload.ValueFor(op.key));
    case YcsbOpType::kInsert:
      return Insert(t, op.key, workload.ValueFor(op.key));
  }
  return sb::InvalidArgument("bad op");
}

}  // namespace apps
