#include "src/apps/kv.h"

#include <cstring>

#include "src/base/logging.h"

namespace apps {
namespace {

// Per-operation fixed compute (request marshalling, server dispatch, hash).
constexpr uint64_t kClientLogicCycles = 700;
constexpr uint64_t kEncryptLogicCycles = 600;
constexpr uint64_t kKvLogicCycles = 700;
// XTEA cost per byte on the simulated core.
constexpr uint64_t kCipherCyclesPerByte = 8;
// The Delay wiring's busy loop: the direct cost of one IPC (Section 2.1.1).
constexpr uint64_t kDelayCycles = 493;

constexpr uint64_t kOpInsert = 1;
constexpr uint64_t kOpQuery = 2;

// Serialized request size: u32 key length + key + value.
size_t EncodedSize(const std::string& key, const std::string& value) {
  return 4 + key.size() + value.size();
}

// Serializes straight into `out` (a shared-buffer slice for the in-place
// path); returns the number of bytes written.
size_t EncodeRequestInto(std::span<uint8_t> out, const std::string& key,
                         const std::string& value) {
  const uint32_t klen = static_cast<uint32_t>(key.size());
  std::memcpy(out.data(), &klen, 4);
  std::memcpy(out.data() + 4, key.data(), key.size());
  std::memcpy(out.data() + 4 + key.size(), value.data(), value.size());
  return EncodedSize(key, value);
}

mk::Message EncodeRequest(uint64_t op, const std::string& key, const std::string& value) {
  mk::Message msg(op);
  msg.data.resize(EncodedSize(key, value));
  EncodeRequestInto(msg.data, key, value);
  return msg;
}

void DecodeRequest(const mk::Message& msg, std::string* key, std::string* value) {
  const std::span<const uint8_t> p = msg.payload();
  uint32_t klen = 0;
  if (p.size() >= 4) {
    std::memcpy(&klen, p.data(), 4);
  }
  if (4 + klen <= p.size()) {
    key->assign(p.begin() + 4, p.begin() + 4 + klen);
    value->assign(p.begin() + 4 + klen, p.end());
  }
}

}  // namespace

void XteaEncrypt(std::span<uint8_t> data, const uint32_t key[4]) {
  for (size_t off = 0; off + 8 <= data.size(); off += 8) {
    uint32_t v0 = 0;
    uint32_t v1 = 0;
    std::memcpy(&v0, data.data() + off, 4);
    std::memcpy(&v1, data.data() + off + 4, 4);
    uint32_t sum = 0;
    for (int i = 0; i < 32; ++i) {
      v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
      sum += 0x9e3779b9;
      v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
    }
    std::memcpy(data.data() + off, &v0, 4);
    std::memcpy(data.data() + off + 4, &v1, 4);
  }
}

void XteaDecrypt(std::span<uint8_t> data, const uint32_t key[4]) {
  for (size_t off = 0; off + 8 <= data.size(); off += 8) {
    uint32_t v0 = 0;
    uint32_t v1 = 0;
    std::memcpy(&v0, data.data() + off, 4);
    std::memcpy(&v1, data.data() + off + 4, 4);
    uint32_t sum = 0x9e3779b9u * 32;
    for (int i = 0; i < 32; ++i) {
      v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
      sum -= 0x9e3779b9;
      v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    }
    std::memcpy(data.data() + off, &v0, 4);
    std::memcpy(data.data() + off + 4, &v1, 4);
  }
}

std::string_view KvWiringName(KvWiring wiring) {
  switch (wiring) {
    case KvWiring::kBaseline:
      return "Baseline";
    case KvWiring::kDelay:
      return "Delay";
    case KvWiring::kIpc:
      return "IPC";
    case KvWiring::kIpcCrossCore:
      return "IPC-CrossCore";
    case KvWiring::kSkyBridge:
      return "SkyBridge";
  }
  return "?";
}

KvPipeline::KvPipeline(mk::Kernel& kernel, skybridge::SkyBridge* sky, KvWiring wiring)
    : kernel_(&kernel), sky_(sky), wiring_(wiring) {}

hw::Core& KvPipeline::client_core() { return kernel_->machine().core(0); }

mk::Message KvPipeline::HandleKv(mk::CallEnv& env, hw::Core* core) {
  hw::Core& c = core != nullptr ? *core : env.core;
  c.AdvanceCycles(kKvLogicCycles);
  std::string key;
  std::string value;
  DecodeRequest(env.request, &key, &value);
  const uint64_t slot = std::hash<std::string>{}(key) % 4096;
  if (env.request.tag == kOpInsert) {
    // Hash bucket + stored bytes traffic in the KV server's heap.
    (void)c.TouchData(kv_heap_ + slot * 64, 64, true);
    (void)c.TouchData(kv_heap_ + 4096 * 64 + (slot % 512) * 2048,
                      std::max<uint64_t>(key.size() + value.size(), 64), true);
    store_[key] = value;
    ++stats_.inserts;
    return mk::Message(1);
  }
  // Query.
  (void)c.TouchData(kv_heap_ + slot * 64, 64, false);
  ++stats_.queries;
  auto it = store_.find(key);
  if (it == store_.end()) {
    return mk::Message(0);
  }
  (void)c.TouchData(kv_heap_ + 4096 * 64 + (slot % 512) * 2048,
                    std::max<uint64_t>(it->second.size(), 64), false);
  ++stats_.hits;
  // Large values: build the reply in place in the connection's slice when
  // the transport offers one — the bridge then skips the reply copy. Small
  // values still travel in registers.
  if (!env.reply_buffer.empty() &&
      it->second.size() > env.kernel.profile().register_msg_capacity &&
      it->second.size() <= env.reply_buffer.size()) {
    std::memcpy(env.reply_buffer.data(), it->second.data(), it->second.size());
    return mk::Message::Borrowed(
        1, std::span<const uint8_t>(env.reply_buffer.data(), it->second.size()));
  }
  mk::Message reply(1);
  reply.data.assign(it->second.begin(), it->second.end());
  return reply;
}

sb::StatusOr<mk::Message> KvPipeline::ForwardToKvOp(hw::Core& core, uint64_t op,
                                                    const std::string& key,
                                                    const std::string& value) {
  // SkyBridge large transfers: serialize straight into the encrypt->kv
  // connection slice and call in place — no request copy anywhere.
  if (wiring_ == KvWiring::kSkyBridge &&
      EncodedSize(key, value) > kernel_->profile().register_msg_capacity) {
    auto buf = sky_->AcquireSendBuffer(encrypt_thread_, kv_sid_);
    if (buf.ok() && EncodedSize(key, value) <= buf->size()) {
      const size_t len = EncodeRequestInto(*buf, key, value);
      return sky_->DirectServerCallInPlace(encrypt_thread_, kv_sid_, op, len);
    }
  }
  return ForwardToKv(core, EncodeRequest(op, key, value));
}

sb::StatusOr<mk::Message> KvPipeline::ForwardToKv(hw::Core& core, const mk::Message& msg) {
  switch (wiring_) {
    case KvWiring::kBaseline:
    case KvWiring::kDelay: {
      if (wiring_ == KvWiring::kDelay) {
        core.AdvanceCycles(kDelayCycles);
      }
      mk::CallEnv env{*kernel_, core, *client_, msg};
      return HandleKv(env, &core);
    }
    case KvWiring::kIpc:
    case KvWiring::kIpcCrossCore:
      return kernel_->IpcCall(encrypt_thread_, kv_cap_, msg);
    case KvWiring::kSkyBridge:
      return sky_->DirectServerCall(encrypt_thread_, kv_sid_, msg);
  }
  return sb::Internal("bad wiring");
}

mk::Message KvPipeline::HandleEncrypt(mk::CallEnv& env) {
  hw::Core& core = env.core;
  core.AdvanceCycles(kEncryptLogicCycles);
  std::string key;
  std::string value;
  DecodeRequest(env.request, &key, &value);

  if (env.request.tag == kOpInsert) {
    std::vector<uint8_t> cipher(value.begin(), value.end());
    XteaEncrypt(cipher, cipher_key_);
    core.AdvanceCycles(kCipherCyclesPerByte * cipher.size());
    (void)core.TouchData(encrypt_heap_, std::max<uint64_t>(cipher.size(), 64), true);
    auto fwd = ForwardToKvOp(core, kOpInsert, key,
                             std::string(cipher.begin(), cipher.end()));
    return fwd.ok() ? fwd->ToOwned() : mk::Message(0);
  }
  // Query: fetch from KV, decrypt, return plaintext.
  auto fwd = ForwardToKvOp(core, kOpQuery, key, "");
  if (!fwd.ok() || fwd->tag == 0) {
    return mk::Message(0);
  }
  const std::span<const uint8_t> cipher = fwd->payload();
  std::vector<uint8_t> plain(cipher.begin(), cipher.end());
  XteaDecrypt(plain, cipher_key_);
  core.AdvanceCycles(kCipherCyclesPerByte * plain.size());
  (void)core.TouchData(encrypt_heap_, std::max<uint64_t>(plain.size(), 64), false);
  // Large plaintext: drop it straight into the client-facing slice so the
  // client reads the reply without another copy.
  if (!env.reply_buffer.empty() &&
      plain.size() > env.kernel.profile().register_msg_capacity &&
      plain.size() <= env.reply_buffer.size()) {
    std::memcpy(env.reply_buffer.data(), plain.data(), plain.size());
    return mk::Message::Borrowed(
        1, std::span<const uint8_t>(env.reply_buffer.data(), plain.size()));
  }
  mk::Message reply(1);
  reply.data = std::move(plain);
  return reply;
}

sb::Status KvPipeline::Setup() {
  SB_ASSIGN_OR_RETURN(client_, kernel_->CreateProcess("kv-client"));
  client_thread_ = client_->AddThread(0);

  if (wiring_ == KvWiring::kBaseline || wiring_ == KvWiring::kDelay) {
    // Single address space: the "servers" are plain functions; their state
    // lives in the client's heap.
    SB_ASSIGN_OR_RETURN(kv_heap_, client_->AllocHeap(2 * 1024 * 1024, 4096));
    SB_ASSIGN_OR_RETURN(encrypt_heap_, client_->AllocHeap(64 * 1024, 4096));
    encrypt_ = client_;
    kv_ = client_;
    encrypt_thread_ = client_thread_;
    return kernel_->ContextSwitchTo(client_core(), client_);
  }

  SB_ASSIGN_OR_RETURN(encrypt_, kernel_->CreateProcess("kv-encrypt"));
  SB_ASSIGN_OR_RETURN(kv_, kernel_->CreateProcess("kv-store"));
  SB_ASSIGN_OR_RETURN(kv_heap_, kv_->AllocHeap(2 * 1024 * 1024, 4096));
  SB_ASSIGN_OR_RETURN(encrypt_heap_, encrypt_->AllocHeap(64 * 1024, 4096));

  const bool cross = wiring_ == KvWiring::kIpcCrossCore;
  encrypt_thread_ = encrypt_->AddThread(cross ? 1 : 0);

  if (wiring_ == KvWiring::kSkyBridge) {
    SB_CHECK(sky_ != nullptr);
    SB_ASSIGN_OR_RETURN(
        kv_sid_, sky_->RegisterServer(
                     kv_, 8, [this](mk::CallEnv& env) { return HandleKv(env, nullptr); }));
    SB_ASSIGN_OR_RETURN(encrypt_sid_,
                        sky_->RegisterServer(encrypt_, 8, [this](mk::CallEnv& env) {
                          return HandleEncrypt(env);
                        }));
    SB_RETURN_IF_ERROR(sky_->RegisterClient(client_, encrypt_sid_));
    SB_RETURN_IF_ERROR(sky_->RegisterClient(encrypt_, kv_sid_));
  } else {
    std::vector<int> encrypt_cores;
    std::vector<int> kv_cores;
    if (cross) {
      encrypt_cores = {1};
      kv_cores = {2};
    }
    SB_ASSIGN_OR_RETURN(
        mk::Endpoint * kv_ep,
        kernel_->CreateEndpoint(
            kv_, [this](mk::CallEnv& env) { return HandleKv(env, nullptr); }, kv_cores));
    SB_ASSIGN_OR_RETURN(
        mk::Endpoint * enc_ep,
        kernel_->CreateEndpoint(
            encrypt_, [this](mk::CallEnv& env) { return HandleEncrypt(env); }, encrypt_cores));
    SB_ASSIGN_OR_RETURN(encrypt_cap_,
                        kernel_->GrantEndpointCap(client_, enc_ep->id(), mk::kRightCall));
    SB_ASSIGN_OR_RETURN(kv_cap_, kernel_->GrantEndpointCap(encrypt_, kv_ep->id(), mk::kRightCall));
  }
  return kernel_->ContextSwitchTo(client_core(), client_);
}

sb::StatusOr<mk::Message> KvPipeline::CallEncryptOp(uint64_t op, const std::string& key,
                                                    const std::string& value) {
  // SkyBridge large transfers: build the request in place in the caller's
  // slice of the client->encrypt buffer (zero request copies).
  if (wiring_ == KvWiring::kSkyBridge &&
      EncodedSize(key, value) > kernel_->profile().register_msg_capacity) {
    auto buf = sky_->AcquireSendBuffer(client_thread_, encrypt_sid_);
    if (buf.ok() && EncodedSize(key, value) <= buf->size()) {
      hw::Core& core = client_core();
      core.AdvanceCycles(kClientLogicCycles);
      (void)core.TouchData(mk::kHeapVa + 0x1000,
                           std::max<uint64_t>(EncodedSize(key, value), 64), true);
      const size_t len = EncodeRequestInto(*buf, key, value);
      return sky_->DirectServerCallInPlace(client_thread_, encrypt_sid_, op, len);
    }
  }
  return CallEncrypt(EncodeRequest(op, key, value));
}

sb::StatusOr<mk::Message> KvPipeline::CallEncrypt(const mk::Message& msg) {
  hw::Core& core = client_core();
  core.AdvanceCycles(kClientLogicCycles);
  (void)core.TouchData(mk::kHeapVa + 0x1000, std::max<uint64_t>(msg.size(), 64), true);
  switch (wiring_) {
    case KvWiring::kBaseline:
    case KvWiring::kDelay: {
      if (wiring_ == KvWiring::kDelay) {
        core.AdvanceCycles(kDelayCycles);
      }
      mk::CallEnv env{*kernel_, core, *client_, msg};
      return HandleEncrypt(env);
    }
    case KvWiring::kIpc:
    case KvWiring::kIpcCrossCore:
      return kernel_->IpcCall(client_thread_, encrypt_cap_, msg);
    case KvWiring::kSkyBridge:
      return sky_->DirectServerCall(client_thread_, encrypt_sid_, msg);
  }
  return sb::Internal("bad wiring");
}

sb::Status KvPipeline::Insert(const std::string& key, const std::string& value) {
  SB_ASSIGN_OR_RETURN(const mk::Message reply, CallEncryptOp(kOpInsert, key, value));
  if (reply.tag != 1) {
    return sb::Internal("insert failed");
  }
  return sb::OkStatus();
}

sb::StatusOr<std::string> KvPipeline::Query(const std::string& key) {
  SB_ASSIGN_OR_RETURN(const mk::Message reply, CallEncryptOp(kOpQuery, key, ""));
  if (reply.tag != 1) {
    return sb::NotFound("no such key");
  }
  return reply.ToString();
}

std::vector<sb::StatusOr<std::string>> KvPipeline::QueryBatch(std::span<const std::string> keys) {
  std::vector<sb::StatusOr<std::string>> out;
  out.reserve(keys.size());
  if (wiring_ != KvWiring::kSkyBridge) {
    for (const std::string& key : keys) {
      out.push_back(Query(key));
    }
    return out;
  }
  // One submission per key into the client->encrypt ring, one flush for the
  // lot. The encrypt handler runs per entry inside the drain and forwards
  // each get to the kv store as the usual nested call.
  hw::Core& core = client_core();
  std::vector<mk::Message> msgs;
  msgs.reserve(keys.size());
  for (const std::string& key : keys) {
    core.AdvanceCycles(kClientLogicCycles);
    (void)core.TouchData(mk::kHeapVa + 0x1000, std::max<uint64_t>(EncodedSize(key, ""), 64),
                         true);
    msgs.push_back(EncodeRequest(kOpQuery, key, ""));
  }
  auto results = sky_->CallBatch(client_thread_, encrypt_sid_, msgs);
  if (!results.ok()) {
    for (size_t i = 0; i < keys.size(); ++i) {
      out.push_back(results.status());
    }
    return out;
  }
  for (skybridge::SkyBridge::BatchEntryResult& r : *results) {
    if (!r.status.ok()) {
      out.push_back(r.status);
    } else if (r.reply.tag != 1) {
      out.push_back(sb::NotFound("no such key"));
    } else {
      out.push_back(r.reply.ToString());
    }
  }
  return out;
}

sb::StatusOr<uint64_t> KvPipeline::SubmitQuery(const std::string& key) {
  if (wiring_ != KvWiring::kSkyBridge) {
    return sb::Unimplemented("batched queries need the SkyBridge wiring");
  }
  hw::Core& core = client_core();
  core.AdvanceCycles(kClientLogicCycles);
  (void)core.TouchData(mk::kHeapVa + 0x1000, std::max<uint64_t>(EncodedSize(key, ""), 64), true);
  return sky_->SubmitCall(client_thread_, encrypt_sid_, EncodeRequest(kOpQuery, key, ""));
}

sb::Status KvPipeline::FlushQueries() {
  if (wiring_ != KvWiring::kSkyBridge) {
    return sb::Unimplemented("batched queries need the SkyBridge wiring");
  }
  return sky_->FlushBatch(client_thread_, encrypt_sid_);
}

sb::StatusOr<std::string> KvPipeline::PollQuery(uint64_t token) {
  if (wiring_ != KvWiring::kSkyBridge) {
    return sb::Unimplemented("batched queries need the SkyBridge wiring");
  }
  SB_ASSIGN_OR_RETURN(const mk::Message reply,
                      sky_->PollCompletion(client_thread_, encrypt_sid_, token));
  if (reply.tag != 1) {
    return sb::NotFound("no such key");
  }
  return reply.ToString();
}

}  // namespace apps
