#include "src/apps/ycsb.h"

#include <cmath>

#include "src/base/logging.h"

namespace apps {

YcsbConfig YcsbA() {
  YcsbConfig c;
  c.read_fraction = 0.5;
  return c;
}

YcsbConfig YcsbB() {
  YcsbConfig c;
  c.read_fraction = 0.95;
  return c;
}

YcsbConfig YcsbC() {
  YcsbConfig c;
  c.read_fraction = 1.0;
  return c;
}

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, sb::Rng* rng)
    : n_(n), theta_(theta), rng_(rng) {
  SB_CHECK(n > 0);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianGenerator::Next() {
  const double u = rng_->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double v =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  const uint64_t k = static_cast<uint64_t>(v);
  return k >= n_ ? n_ - 1 : k;
}

YcsbWorkload::YcsbWorkload(const YcsbConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.record_count, config.zipfian_theta, &rng_) {}

YcsbOp YcsbWorkload::NextOp() {
  YcsbOp op;
  op.key = zipf_.Next();
  op.type = rng_.NextDouble() < config_.read_fraction ? YcsbOpType::kRead : YcsbOpType::kUpdate;
  return op;
}

std::vector<uint8_t> YcsbWorkload::ValueFor(uint64_t key) const {
  std::vector<uint8_t> value(config_.value_len);
  sb::Rng value_rng(key * 0x9e3779b97f4a7c15ULL + config_.seed);
  for (auto& byte : value) {
    byte = static_cast<uint8_t>(value_rng.Next());
  }
  return value;
}

}  // namespace apps
