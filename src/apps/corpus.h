// Synthetic binary corpus for the Table 6 experiment.
//
// Generates realistic x86-64 instruction streams (the decoder/assembler
// subset plus common encodings) of program-scale sizes, optionally planting
// an inadvertent VMFUNC pattern — e.g. GIMP 2.8's single occurrence inside a
// call instruction's immediate.

#ifndef SRC_APPS_CORPUS_H_
#define SRC_APPS_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"

namespace apps {

struct CorpusProgram {
  std::string name;
  std::vector<uint8_t> code;
};

// A realistic instruction stream of ~`size_bytes`.
std::vector<uint8_t> GenerateProgram(sb::Rng& rng, size_t size_bytes);

// Same, with a 0F 01 D4 pattern planted inside a CALL rel32 immediate at a
// random position (the GIMP case from Table 6).
std::vector<uint8_t> GenerateProgramWithCallImmPattern(sb::Rng& rng, size_t size_bytes);

// The full Table 6 corpus: entries modeled on the paper's table rows
// (SPECCPU-scale, PARSEC-scale, servers, a kernel-scale image, many small
// apps) with exactly one planted occurrence in "GIMP-2.8".
std::vector<CorpusProgram> BuildTable6Corpus(uint64_t seed);

}  // namespace apps

#endif  // SRC_APPS_CORPUS_H_
