#include "src/apps/corpus.h"

#include "src/x86/assembler.h"

namespace apps {

using x86::Assembler;
using x86::Reg;

namespace {

Reg RandReg(sb::Rng& rng) {
  static const Reg kRegs[] = {Reg::kRax, Reg::kRbx, Reg::kRcx, Reg::kRdx,
                              Reg::kRsi, Reg::kRdi, Reg::kR8,  Reg::kR9,
                              Reg::kR10, Reg::kR11};
  return kRegs[rng.Below(10)];
}

// Immediates avoid the 0x0f/0x01/0xd4 bytes so accidental patterns can only
// come from our deliberate plants (mirroring how rare the pattern is in real
// code: one hit across gigabytes in the paper's scan).
int32_t CleanImm(sb::Rng& rng) {
  uint32_t v = static_cast<uint32_t>(rng.Below(1u << 30));
  for (int shift = 0; shift < 32; shift += 8) {
    const uint32_t byte = (v >> shift) & 0xff;
    if (byte == 0x0f || byte == 0x01 || byte == 0xd4) {
      v ^= 0x20u << shift;
    }
  }
  return static_cast<int32_t>(v);
}

void EmitRandomInsn(Assembler& a, sb::Rng& rng) {
  switch (rng.Below(17)) {
    case 0:
      a.MovRI64(RandReg(rng), static_cast<uint64_t>(CleanImm(rng)));
      break;
    case 1:
      a.MovRR64(RandReg(rng), RandReg(rng));
      break;
    case 2:
      a.MovRM64(RandReg(rng), RandReg(rng), CleanImm(rng) & 0xfff);
      break;
    case 3:
      a.MovMR64(RandReg(rng), CleanImm(rng) & 0xfff, RandReg(rng));
      break;
    case 4:
      a.AddRI(RandReg(rng), CleanImm(rng));
      break;
    case 5:
      a.SubRI(RandReg(rng), CleanImm(rng));
      break;
    case 6:
      a.AndRI(RandReg(rng), CleanImm(rng));
      break;
    case 7:
      a.XorRR(RandReg(rng), RandReg(rng));
      break;
    case 8:
      a.CmpRI(RandReg(rng), CleanImm(rng));
      break;
    case 9:
      a.Lea(RandReg(rng), RandReg(rng), Assembler::kNoIndex, 1, CleanImm(rng) & 0xffff);
      break;
    case 10:
      a.ImulRRI(RandReg(rng), RandReg(rng), CleanImm(rng) & 0xffff);
      break;
    case 11:
      a.PushR(RandReg(rng));
      a.PopR(RandReg(rng));
      break;
    case 12:
      a.Nop();
      break;
    case 14:
      a.ShlRI(RandReg(rng), static_cast<uint8_t>(1 + rng.Below(31)));
      break;
    case 15:
      a.IncR(RandReg(rng));
      a.DecR(RandReg(rng));
      break;
    case 16:
      a.NotR(RandReg(rng));
      break;
    case 13:
      // Short forward branch over a small body (common compiler output).
      a.JccRel8(static_cast<uint8_t>(rng.Below(16)), 2);
      a.Nop();
      a.Nop();
      break;
  }
}

}  // namespace

std::vector<uint8_t> GenerateProgram(sb::Rng& rng, size_t size_bytes) {
  Assembler a;
  while (a.size() + 16 < size_bytes) {
    EmitRandomInsn(a, rng);
  }
  a.Ret();
  return a.Take();
}

std::vector<uint8_t> GenerateProgramWithCallImmPattern(sb::Rng& rng, size_t size_bytes) {
  Assembler a;
  const size_t plant_at = size_bytes / 2;
  bool planted = false;
  while (a.size() + 16 < size_bytes) {
    if (!planted && a.size() >= plant_at) {
      // call rel32 whose displacement bytes are 0F 01 D4 00: the GIMP case.
      a.CallRel32(0x00d4010f);
      planted = true;
      continue;
    }
    EmitRandomInsn(a, rng);
  }
  a.Ret();
  return a.Take();
}

std::vector<CorpusProgram> BuildTable6Corpus(uint64_t seed) {
  sb::Rng rng(seed);
  std::vector<CorpusProgram> corpus;

  // Sized after the paper's Table 6 rows (average code sizes in KB),
  // scaled down ~4x to keep the scan fast.
  auto add_many = [&](const std::string& base, int count, size_t bytes) {
    for (int i = 0; i < count; ++i) {
      corpus.push_back({base + "-" + std::to_string(i), GenerateProgram(rng, bytes)});
    }
  };
  add_many("SPECCPU2006", 31, 106 * 1024);
  add_many("PARSEC3.0", 45, 210 * 1024);
  corpus.push_back({"Nginx-1.6.2", GenerateProgram(rng, 245 * 1024)});
  corpus.push_back({"Apache-2.4.10", GenerateProgram(rng, 166 * 1024)});
  corpus.push_back({"Memcached-1.4.21", GenerateProgram(rng, 30 * 1024)});
  corpus.push_back({"Redis-2.8.17", GenerateProgram(rng, 182 * 1024)});
  corpus.push_back({"vmlinux-4.14.29", GenerateProgram(rng, 2624 * 1024)});
  add_many("kmod", 64, 4 * 1024);  // Stand-in for the 2934 kernel modules.
  add_many("app", 128, 54 * 1024);  // Stand-in for the 2605 "other apps".
  corpus.push_back({"GIMP-2.8", GenerateProgramWithCallImmPattern(rng, 54 * 1024)});
  return corpus;
}

}  // namespace apps
