// YCSB workload generator (Zipfian request distribution, workloads A/B/C).

#ifndef SRC_APPS_YCSB_H_
#define SRC_APPS_YCSB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"

namespace apps {

enum class YcsbOpType : uint8_t { kRead, kUpdate, kInsert };

struct YcsbOp {
  YcsbOpType type;
  uint64_t key;
};

struct YcsbConfig {
  uint64_t record_count = 10000;  // Paper: "a table with 10,000 records".
  double read_fraction = 0.5;     // A: 0.5, B: 0.95, C: 1.0.
  double zipfian_theta = 0.99;
  uint32_t value_len = 100;
  uint64_t seed = 42;
};

YcsbConfig YcsbA();
YcsbConfig YcsbB();
YcsbConfig YcsbC();

// Gray et al.'s Zipfian generator over [0, n).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, sb::Rng* rng);
  uint64_t Next();

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  sb::Rng* rng_;
};

class YcsbWorkload {
 public:
  explicit YcsbWorkload(const YcsbConfig& config);

  const YcsbConfig& config() const { return config_; }
  YcsbOp NextOp();
  // Deterministic value payload for a key.
  std::vector<uint8_t> ValueFor(uint64_t key) const;

 private:
  YcsbConfig config_;
  sb::Rng rng_;
  ZipfianGenerator zipf_;
};

}  // namespace apps

#endif  // SRC_APPS_YCSB_H_
