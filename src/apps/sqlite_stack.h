// The Section 6.5 application stack:
//
//   client threads + minisql  --IPC/SkyBridge-->  xv6fs  --IPC/SkyBridge-->  RAM disk
//
// in three processes on the simulated 8-core machine, with the paper's three
// server configurations:
//
//   kIpcStServer  one worker thread per server on its own core: every client
//                 request is a costly cross-core IPC (IPIs).
//   kIpcMtServer  worker threads pinned to every core: clients always reach
//                 a local server thread.
//   kSkyBridge    direct server calls on the caller's core, kernel-less.
//
// One Database instance is shared by all client threads (SQLite-style
// serialization), and the file system runs behind its big lock — both locks
// are FIFO resources in virtual time, which is what produces the paper's
// poor YCSB scalability (Figures 9-11).

#ifndef SRC_APPS_SQLITE_STACK_H_
#define SRC_APPS_SQLITE_STACK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/ycsb.h"
#include "src/db/minisql.h"
#include "src/fs/block_device.h"
#include "src/fs/fs_rpc.h"
#include "src/fs/xv6fs.h"
#include "src/mk/kernel.h"
#include "src/skybridge/skybridge.h"

namespace apps {

enum class StackTransport : uint8_t { kIpcStServer, kIpcMtServer, kSkyBridge };

std::string_view StackTransportName(StackTransport transport);

struct SqliteStackConfig {
  mk::KernelKind kernel = mk::KernelKind::kSel4;
  StackTransport transport = StackTransport::kIpcMtServer;
  bool boot_rootkernel = true;  // false => the "Native" row of Table 5.
  int num_client_threads = 1;
  int num_cores = 8;
  uint32_t disk_blocks = 16384;
  uint64_t preload_records = 0;  // Rows inserted (uncharged) before runs.
  minisql::Database::Config db;
  // Cost of migrating the DB lock + hot working set to another core.
  uint64_t lock_migration_cycles = 2500;
  // A contended acquisition blocks: the waiter sleeps and is woken through
  // the kernel scheduler (syscall + IPI + dispatch), and the convoy and
  // cache-line bouncing grow with the number of waiters. Charged per
  // contending thread; this is what makes YCSB throughput *fall* roughly 2x
  // per thread doubling (Figures 9-11).
  uint64_t blocked_wakeup_cycles_per_waiter = 20000;
};

class SqliteStack {
 public:
  static sb::StatusOr<std::unique_ptr<SqliteStack>> Create(const SqliteStackConfig& config);

  // ---- Charged per-thread operations (run on client thread t's core) ----
  sb::Status Insert(int t, uint64_t key, std::span<const uint8_t> value);
  sb::Status Update(int t, uint64_t key, std::span<const uint8_t> value);
  sb::StatusOr<std::vector<uint8_t>> Query(int t, uint64_t key);
  sb::Status Delete(int t, uint64_t key);
  sb::Status RunYcsbOp(int t, const YcsbOp& op, const YcsbWorkload& workload);

  // ---- Accessors ----
  hw::Machine& machine() { return *machine_; }
  mk::Kernel& kernel() { return *kernel_; }
  skybridge::SkyBridge* sky() { return sky_.get(); }
  minisql::Database& db() { return *db_; }
  minisql::Table& table() { return *table_; }
  fsys::Xv6Fs& fs() { return *fs_; }
  fsys::RamDisk& ramdisk() { return *ramdisk_; }
  mk::Thread* client_thread(int t) { return client_threads_[static_cast<size_t>(t)]; }
  sim::FifoResource& db_lock() { return db_lock_; }
  const SqliteStackConfig& config() const { return config_; }

 private:
  SqliteStack() = default;

  sb::Status Setup(const SqliteStackConfig& config);
  sb::StatusOr<mk::Message> CallFs(const mk::Message& msg);
  sb::StatusOr<mk::Message> CallBdevFromFs(const mk::Message& msg);
  // SkyBridge call that stages large requests directly in the connection's
  // shared-buffer slice (in-place API) so the bridge skips the request copy.
  sb::StatusOr<mk::Message> CallSky(mk::Thread* thread, skybridge::ServerId sid,
                                    const mk::Message& msg);

  // Serializes a client thread on the DB lock and charges lock migration.
  uint64_t AcquireDbLock(int t);

  SqliteStackConfig config_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<mk::Kernel> kernel_;
  std::unique_ptr<skybridge::SkyBridge> sky_;

  mk::Process* client_ = nullptr;
  mk::Process* fs_proc_ = nullptr;
  mk::Process* bdev_proc_ = nullptr;
  std::vector<mk::Thread*> client_threads_;
  std::vector<mk::Thread*> fs_threads_;  // One per core (server-side calls).

  std::unique_ptr<fsys::RamDisk> ramdisk_;
  std::unique_ptr<fsys::Xv6Fs> fs_;
  std::unique_ptr<fsys::FsClient> fs_client_;
  std::unique_ptr<minisql::Database> db_;
  minisql::Table* table_ = nullptr;

  // IPC plumbing.
  mk::CapSlot fs_cap_ = 0;
  mk::CapSlot bdev_cap_ = 0;
  skybridge::ServerId fs_sid_ = 0;
  skybridge::ServerId bdev_sid_ = 0;

  // Dynamic call context (the simulator is single-threaded).
  int current_client_thread_ = 0;
  int current_fs_core_ = 0;
  bool setup_mode_ = true;  // Direct, uncharged transports during setup.

  sim::FifoResource db_lock_;
  int db_lock_last_core_ = -1;
  hw::Gva client_db_heap_ = 0;
  hw::Gva fs_cache_heap_ = 0;
  hw::Gva bdev_heap_ = 0;
};

}  // namespace apps

#endif  // SRC_APPS_SQLITE_STACK_H_
