// The key-value store pipeline from Section 2 (Figure 1):
//
//   Client -> Encryption server -> KV store server
//
// Inserts flow client -> encrypt -> kv-store (the encryption server forwards
// the encrypted value); queries flow the same chain with decryption on the
// way back. Five wirings reproduce Figures 2 and 8:
//
//   kBaseline      all three in one address space, plain function calls
//   kDelay         baseline + a busy-loop equal to the direct cost of each
//                  IPC leg (isolates the *indirect* cache/TLB cost)
//   kIpc           three processes, kernel IPC, one core
//   kIpcCrossCore  three processes pinned to three different cores
//   kSkyBridge     three processes, nested SkyBridge direct calls
//
// Encryption is a real XTEA cipher run over the value bytes.

#ifndef SRC_APPS_KV_H_
#define SRC_APPS_KV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/mk/kernel.h"
#include "src/skybridge/skybridge.h"

namespace apps {

// XTEA, 64 rounds, operating on 8-byte blocks (zero-padded tail).
void XteaEncrypt(std::span<uint8_t> data, const uint32_t key[4]);
void XteaDecrypt(std::span<uint8_t> data, const uint32_t key[4]);

enum class KvWiring : uint8_t {
  kBaseline,
  kDelay,
  kIpc,
  kIpcCrossCore,
  kSkyBridge,
};

std::string_view KvWiringName(KvWiring wiring);

struct KvStats {
  uint64_t inserts = 0;
  uint64_t queries = 0;
  uint64_t hits = 0;
};

class KvPipeline {
 public:
  // `sky` may be null unless wiring == kSkyBridge. The kernel must be booted.
  KvPipeline(mk::Kernel& kernel, skybridge::SkyBridge* sky, KvWiring wiring);

  sb::Status Setup();

  // Runs one operation on the client core and returns its reply value (for
  // queries) — all costs land on the client thread's core clock.
  sb::Status Insert(const std::string& key, const std::string& value);
  sb::StatusOr<std::string> Query(const std::string& key);

  // Batched gets (DESIGN.md section 13): on the SkyBridge wiring the whole
  // batch of queries crosses client -> encrypt in ONE flushed ring (the
  // encrypt server still forwards each get nested to the kv store); other
  // wirings fall back to per-key Query. Per-key outcomes, in order.
  std::vector<sb::StatusOr<std::string>> QueryBatch(std::span<const std::string> keys);

  // Open-loop async gets (the load generator's batched mode, DESIGN.md
  // section 14): SubmitQuery enqueues one get into the client->encrypt ring
  // and returns its token; FlushQueries drains the pending submissions in
  // one crossing; PollQuery reaps one completion (Unavailable while the
  // entry is still pending). kSkyBridge wiring only — other wirings return
  // Unimplemented from SubmitQuery so callers fall back to sync Query.
  sb::StatusOr<uint64_t> SubmitQuery(const std::string& key);
  sb::Status FlushQueries();
  sb::StatusOr<std::string> PollQuery(uint64_t token);

  // Client core (where latency is measured).
  hw::Core& client_core();

  const KvStats& stats() const { return stats_; }

 private:
  sb::StatusOr<mk::Message> CallEncrypt(const mk::Message& msg);
  // Op-level entry: routes large SkyBridge transfers through the in-place
  // shared-buffer API (AcquireSendBuffer + DirectServerCallInPlace), falls
  // back to the owned-message path everywhere else.
  sb::StatusOr<mk::Message> CallEncryptOp(uint64_t op, const std::string& key,
                                          const std::string& value);

  // Handlers (run in the encryption / kv server context).
  mk::Message HandleEncrypt(mk::CallEnv& env);
  mk::Message HandleKv(mk::CallEnv& env, hw::Core* core);

  sb::StatusOr<mk::Message> ForwardToKv(hw::Core& core, const mk::Message& msg);
  sb::StatusOr<mk::Message> ForwardToKvOp(hw::Core& core, uint64_t op, const std::string& key,
                                          const std::string& value);

  mk::Kernel* kernel_;
  skybridge::SkyBridge* sky_;
  KvWiring wiring_;

  mk::Process* client_ = nullptr;
  mk::Process* encrypt_ = nullptr;
  mk::Process* kv_ = nullptr;
  mk::Thread* client_thread_ = nullptr;
  mk::Thread* encrypt_thread_ = nullptr;

  // Kernel-IPC plumbing.
  mk::CapSlot encrypt_cap_ = 0;
  mk::CapSlot kv_cap_ = 0;
  // SkyBridge plumbing.
  skybridge::ServerId encrypt_sid_ = 0;
  skybridge::ServerId kv_sid_ = 0;

  // KV store state (functionally in C++, charged against the kv process).
  std::unordered_map<std::string, std::string> store_;
  hw::Gva kv_heap_ = 0;
  hw::Gva encrypt_heap_ = 0;
  uint32_t cipher_key_[4] = {0x13572468, 0xdeadbeef, 0x0badcafe, 0x87654321};
  KvStats stats_;
};

}  // namespace apps

#endif  // SRC_APPS_KV_H_
