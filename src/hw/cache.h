// Set-associative cache model with LRU replacement.
//
// The hierarchy mirrors the paper's Skylake testbed: per-core L1i/L1d and L2,
// one shared L3. Accesses are tracked per 64-byte line; the model answers
// hit/miss and the cycle cost, and feeds the PMU counters used by Table 1.

#ifndef SRC_HW_CACHE_H_
#define SRC_HW_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/addr.h"

namespace hw {

struct CacheConfig {
  std::string name;
  uint64_t size_bytes = 0;
  uint32_t ways = 8;
  uint32_t line_size = 64;
};

// Skylake-class defaults.
CacheConfig L1iConfig();
CacheConfig L1dConfig();
CacheConfig L2Config();
CacheConfig L3Config();

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  // Returns true on hit. On miss the line is filled (evicting LRU).
  bool Access(Hpa paddr, bool is_write);

  // True if the line is currently resident (no state change).
  bool Probe(Hpa paddr) const;

  void Flush();

  // Invalidate every line in [base, base+len) (e.g. on frame reuse).
  void InvalidateRange(Hpa base, uint64_t len);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  const CacheConfig& config() const { return config_; }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    uint64_t tag = 0;
    uint64_t lru = 0;  // Higher = more recently used.
  };

  uint64_t SetIndex(Hpa paddr) const { return (paddr / config_.line_size) & (num_sets_ - 1); }
  uint64_t Tag(Hpa paddr) const { return paddr / config_.line_size / num_sets_; }

  CacheConfig config_;
  uint64_t num_sets_;
  std::vector<Line> lines_;  // num_sets_ * ways, row-major by set.
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace hw

#endif  // SRC_HW_CACHE_H_
