#include "src/hw/ept.h"

#include "src/base/logging.h"
#include "src/base/units.h"

namespace hw {
namespace {

constexpr uint64_t kPfnMask = 0x000ffffffffff000ULL;
constexpr uint64_t kLargeBit = 1ULL << 7;

int IndexAt(Gpa gpa, int level) {
  return static_cast<int>((gpa >> (12 + 9 * (level - 1))) & 0x1ff);
}

uint64_t PageSizeForLevel(int level) {
  switch (level) {
    case 1:
      return sb::kPageSize;
    case 2:
      return sb::kHugePage2M;
    case 3:
      return sb::kHugePage1G;
    default:
      SB_CHECK(false) << "no page size for level " << level;
      return 0;
  }
}

}  // namespace

sb::StatusOr<std::unique_ptr<Ept>> Ept::Create(HostPhysMem& mem, FrameAllocator& frames) {
  SB_ASSIGN_OR_RETURN(Hpa root, frames.Alloc(mem));
  return std::unique_ptr<Ept>(new Ept(mem, frames, root));
}

sb::StatusOr<std::unique_ptr<Ept>> Ept::ShallowCopy() const {
  SB_ASSIGN_OR_RETURN(Hpa new_root, frames_->Alloc(*mem_));
  uint8_t buf[sb::kPageSize];
  mem_->Read(root_, buf);
  mem_->Write(new_root, buf);
  return std::unique_ptr<Ept>(new Ept(*mem_, *frames_, new_root));
}

uint64_t Ept::MakeEntry(Hpa target, uint8_t perms, bool large) {
  return (target & kPfnMask) | (perms & kEptRwx) | (large ? kLargeBit : 0);
}

sb::Status Ept::Map(Gpa gpa, Hpa hpa, uint64_t page_size, uint8_t perms) {
  int leaf_level;
  switch (page_size) {
    case sb::kPageSize:
      leaf_level = 1;
      break;
    case sb::kHugePage2M:
      leaf_level = 2;
      break;
    case sb::kHugePage1G:
      leaf_level = 3;
      break;
    default:
      return sb::InvalidArgument("unsupported EPT page size");
  }
  if ((gpa & (page_size - 1)) != 0 || (hpa & (page_size - 1)) != 0) {
    return sb::InvalidArgument("EPT mapping not aligned to page size");
  }

  Hpa table = root_;
  for (int level = 4; level > leaf_level; --level) {
    const Hpa entry_addr = table + static_cast<uint64_t>(IndexAt(gpa, level)) * 8;
    uint64_t entry = mem_->ReadU64(entry_addr);
    if ((entry & kEptRwx) == 0) {
      SB_ASSIGN_OR_RETURN(Hpa child, frames_->Alloc(*mem_));
      private_tables_.insert(child);
      entry = MakeEntry(child, kEptRwx, /*large=*/false);
      mem_->WriteU64(entry_addr, entry);
    } else if ((entry & kLargeBit) != 0) {
      return sb::AlreadyExists("EPT large-page leaf in the way; unmap first");
    }
    table = entry & kPfnMask;
  }

  const Hpa leaf_addr = table + static_cast<uint64_t>(IndexAt(gpa, leaf_level)) * 8;
  if ((mem_->ReadU64(leaf_addr) & kEptRwx) != 0) {
    return sb::AlreadyExists("EPT GPA already mapped");
  }
  mem_->WriteU64(leaf_addr, MakeEntry(hpa, perms, leaf_level > 1));
  return sb::OkStatus();
}

sb::StatusOr<Hpa> Ept::PrivatizeChild(Hpa table, int index, int level) {
  const Hpa entry_addr = table + static_cast<uint64_t>(index) * 8;
  const uint64_t entry = mem_->ReadU64(entry_addr);
  if ((entry & kEptRwx) == 0) {
    return sb::NotFound("EPT entry not present during path clone");
  }

  if ((entry & kLargeBit) != 0) {
    // Split the large leaf into a private next-level table covering the same
    // range at the next-smaller page size.
    SB_CHECK(level == 3 || level == 2) << "large bit at invalid level";
    SB_ASSIGN_OR_RETURN(Hpa child, frames_->Alloc(*mem_));
    private_tables_.insert(child);
    const Hpa base_target = entry & kPfnMask;
    const uint8_t perms = entry & kEptRwx;
    const uint64_t child_page = PageSizeForLevel(level - 1);
    for (uint64_t i = 0; i < 512; ++i) {
      mem_->WriteU64(child + i * 8,
                     MakeEntry(base_target + i * child_page, perms, level - 1 > 1));
    }
    mem_->WriteU64(entry_addr, MakeEntry(child, kEptRwx, /*large=*/false));
    return child;
  }

  const Hpa child = entry & kPfnMask;
  if (private_tables_.contains(child)) {
    return child;
  }
  // Clone the shared table.
  SB_ASSIGN_OR_RETURN(Hpa clone, frames_->Alloc(*mem_));
  private_tables_.insert(clone);
  uint8_t buf[sb::kPageSize];
  mem_->Read(child, buf);
  mem_->Write(clone, buf);
  mem_->WriteU64(entry_addr, MakeEntry(clone, entry & kEptRwx, /*large=*/false));
  return clone;
}

sb::Status Ept::RemapGpaPage(Gpa page_gpa, Hpa new_target) {
  if (!sb::IsPageAligned(page_gpa) || !sb::IsPageAligned(new_target)) {
    return sb::InvalidArgument("RemapGpaPage requires 4K alignment");
  }
  Hpa table = root_;
  for (int level = 4; level > 1; --level) {
    SB_ASSIGN_OR_RETURN(table, PrivatizeChild(table, IndexAt(page_gpa, level), level));
  }
  const Hpa leaf_addr = table + static_cast<uint64_t>(IndexAt(page_gpa, 1)) * 8;
  mem_->WriteU64(leaf_addr, MakeEntry(new_target, kEptRwx, /*large=*/false));
  return sb::OkStatus();
}

sb::Status Ept::SetGpaPageExec(Gpa page_gpa, bool exec) {
  if (!sb::IsPageAligned(page_gpa)) {
    return sb::InvalidArgument("SetGpaPageExec requires 4K alignment");
  }
  Hpa table = root_;
  for (int level = 4; level > 1; --level) {
    SB_ASSIGN_OR_RETURN(table, PrivatizeChild(table, IndexAt(page_gpa, level), level));
  }
  const Hpa leaf_addr = table + static_cast<uint64_t>(IndexAt(page_gpa, 1)) * 8;
  const uint64_t entry = mem_->ReadU64(leaf_addr);
  if ((entry & kEptRwx) == 0) {
    return sb::NotFound("SetGpaPageExec on an unmapped GPA");
  }
  uint8_t perms = entry & kEptRwx;
  perms = exec ? (perms | kEptExec) : (perms & ~kEptExec);
  mem_->WriteU64(leaf_addr, MakeEntry(entry & kPfnMask, perms, /*large=*/false));
  return sb::OkStatus();
}

sb::Status Ept::UnmapGpaPage(Gpa page_gpa) {
  if (!sb::IsPageAligned(page_gpa)) {
    return sb::InvalidArgument("UnmapGpaPage requires 4K alignment");
  }
  Hpa table = root_;
  for (int level = 4; level > 1; --level) {
    SB_ASSIGN_OR_RETURN(table, PrivatizeChild(table, IndexAt(page_gpa, level), level));
  }
  mem_->WriteU64(table + static_cast<uint64_t>(IndexAt(page_gpa, 1)) * 8, 0);
  return sb::OkStatus();
}

EptWalk Ept::Walk(Gpa gpa, uint8_t need) const {
  EptWalk result;
  Hpa table = root_;
  for (int level = 4; level >= 1; --level) {
    const Hpa entry_addr = table + static_cast<uint64_t>(IndexAt(gpa, level)) * 8;
    result.table_reads[result.num_table_reads++] = entry_addr;
    const uint64_t entry = mem_->ReadU64(entry_addr);
    const uint8_t perms = entry & kEptRwx;
    if (perms == 0 || (perms & need) != need) {
      result.fault_gpa = gpa;
      return result;  // EPT violation.
    }
    const bool leaf = level == 1 || (entry & kLargeBit) != 0;
    if (leaf) {
      const uint64_t page_size = PageSizeForLevel(level);
      result.ok = true;
      result.perms = perms;
      result.page_shift = static_cast<uint8_t>(12 + 9 * (level - 1));
      result.hpa = (entry & kPfnMask & ~(page_size - 1)) | (gpa & (page_size - 1));
      return result;
    }
    table = entry & kPfnMask;
  }
  result.fault_gpa = gpa;
  return result;
}

}  // namespace hw
