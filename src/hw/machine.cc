#include "src/hw/machine.h"

#include "src/base/logging.h"
#include "src/base/telemetry/trace.h"

namespace hw {

Machine::Machine(const MachineConfig& config)
    : config_(config), mem_(config.ram_bytes), l3_(L3Config()) {
  SB_CHECK(config.num_cores > 0);
  cores_.reserve(static_cast<size_t>(config.num_cores));
  for (int i = 0; i < config.num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(i, this));
  }

  // Surface the per-core PMU tallies as snapshot-time provider gauges. The
  // lambdas capture `this`; cores_ are machine members, so the lifetimes
  // match the registry's by construction.
  auto sum_pmu = [this](uint64_t hw::PmuCounters::* field) {
    uint64_t sum = 0;
    for (const auto& c : cores_) {
      sum += c->pmu().*field;
    }
    return sum;
  };
  telemetry_.GetGauge("hw.tlb.itlb_misses")
      .SetProvider([sum_pmu] { return sum_pmu(&PmuCounters::itlb_miss); });
  telemetry_.GetGauge("hw.tlb.dtlb_misses")
      .SetProvider([sum_pmu] { return sum_pmu(&PmuCounters::dtlb_miss); });
  telemetry_.GetGauge("hw.cache.l1i_misses")
      .SetProvider([sum_pmu] { return sum_pmu(&PmuCounters::icache_miss); });
  telemetry_.GetGauge("hw.cache.l1d_misses")
      .SetProvider([sum_pmu] { return sum_pmu(&PmuCounters::dcache_miss); });
  telemetry_.GetGauge("hw.cache.l2_misses")
      .SetProvider([sum_pmu] { return sum_pmu(&PmuCounters::l2_miss); });
  telemetry_.GetGauge("hw.cache.l3_misses")
      .SetProvider([sum_pmu] { return sum_pmu(&PmuCounters::l3_miss); });
  telemetry_.GetGauge("hw.core.vmfuncs")
      .SetProvider([sum_pmu] { return sum_pmu(&PmuCounters::vmfuncs); });
  telemetry_.GetGauge("hw.core.syscalls")
      .SetProvider([sum_pmu] { return sum_pmu(&PmuCounters::syscalls); });
  telemetry_.GetGauge("hw.ipi.sent").SetProvider([this] { return total_ipis_; });
  telemetry_.GetGauge("hw.vmexit.total").SetProvider([this] { return total_vm_exits_; });
}

uint64_t Machine::DeliverVmExit(Core& core, const VmExitInfo& info) {
  ++total_vm_exits_;
  ++core.pmu().vm_exits;
  if (info.reason == VmExitReason::kEptExecViolation) {
    ++core.pmu().exec_violations;
  }
  core.AdvanceCycles(config_.costs.vm_exit_roundtrip);
  SB_CHECK(has_vm_exit_handler()) << "VM exit with no hypervisor installed (triple fault), reason="
                                  << static_cast<int>(info.reason);
  return vm_exit_handler_(core, info);
}

void Machine::SendIpi(int from_core, int to_core) {
  SB_CHECK(from_core >= 0 && from_core < num_cores());
  SB_CHECK(to_core >= 0 && to_core < num_cores());
  ++total_ipis_;
  ++core(from_core).pmu().ipis_sent;
  SB_TRACE_EVENT(sb::telemetry::TraceEventType::kIpi, core(from_core).cycles(),
                 static_cast<uint32_t>(from_core), static_cast<uint64_t>(to_core));
}

}  // namespace hw
