#include "src/hw/machine.h"

#include "src/base/logging.h"

namespace hw {

Machine::Machine(const MachineConfig& config)
    : config_(config), mem_(config.ram_bytes), l3_(L3Config()) {
  SB_CHECK(config.num_cores > 0);
  cores_.reserve(static_cast<size_t>(config.num_cores));
  for (int i = 0; i < config.num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(i, this));
  }
}

uint64_t Machine::DeliverVmExit(Core& core, const VmExitInfo& info) {
  ++total_vm_exits_;
  ++core.pmu().vm_exits;
  core.AdvanceCycles(config_.costs.vm_exit_roundtrip);
  SB_CHECK(has_vm_exit_handler()) << "VM exit with no hypervisor installed (triple fault), reason="
                                  << static_cast<int>(info.reason);
  return vm_exit_handler_(core, info);
}

void Machine::SendIpi(int from_core, int to_core) {
  SB_CHECK(from_core >= 0 && from_core < num_cores());
  SB_CHECK(to_core >= 0 && to_core < num_cores());
  ++total_ipis_;
  ++core(from_core).pmu().ipis_sent;
}

}  // namespace hw
