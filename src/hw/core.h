// A simulated CPU core.
//
// The core owns its private caches and TLBs, a cycle counter (its virtual
// clock), the CR3 register and a VMCS. All guest memory accesses go through
// the full two-dimensional translation: guest page-table fetches are
// themselves translated by the active EPT — so remapping the GPA of a CR3
// page in a derived EPT redirects the entire virtual address space, exactly
// as on VT-x hardware. Every table fetch and data access is charged through
// the cache hierarchy, which is what produces the direct and indirect IPC
// costs of Section 2.

#ifndef SRC_HW_CORE_H_
#define SRC_HW_CORE_H_

#include <cstdint>
#include <memory>
#include <span>

#include "src/base/status.h"
#include "src/hw/addr.h"
#include "src/hw/cache.h"
#include "src/hw/cost_model.h"
#include "src/hw/pmu.h"
#include "src/hw/tlb.h"
#include "src/hw/vmcs.h"

namespace hw {

class Machine;
class Ept;

enum class CpuMode : uint8_t { kUser, kKernel };

class Core {
 public:
  Core(int id, Machine* machine);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  int id() const { return id_; }

  // ---- Virtual clock ----
  uint64_t cycles() const { return cycles_; }
  void AdvanceCycles(uint64_t n) { cycles_ += n; }
  // Fast-forwards the clock to `t` (used by the virtual-time executor when a
  // thread blocks on another core's event). No-op if already past.
  void SyncClockTo(uint64_t t) {
    if (t > cycles_) {
      cycles_ = t;
    }
  }

  // ---- Privilege / virtualization mode ----
  CpuMode mode() const { return mode_; }
  void SetMode(CpuMode mode) { mode_ = mode; }
  bool in_nonroot() const { return nonroot_; }

  // Downgrades the core to non-root mode with `base_ept` active in EPTP slot
  // 0 (the Rootkernel's dynamic self-virtualization).
  void EnterNonRoot(Ept* base_ept, uint16_t vpid);
  // For tests: back to bare metal.
  void LeaveNonRoot();

  Vmcs& vmcs() { return vmcs_; }
  const Vmcs& vmcs() const { return vmcs_; }
  // EP4TA tag of the active translation context (0 when native).
  Hpa ep4ta() const;

  // ---- Control registers ----
  // MOV CR3: charges the architectural cost, flushes non-global TLB entries
  // for the new PCID unless `noflush` (CR3 bit 63) is set.
  void WriteCr3(Gpa root, uint16_t pcid, bool noflush);
  Gpa cr3() const { return cr3_; }
  uint16_t pcid() const { return pcid_; }

  // ---- VMFUNC (leaf 0: EPTP switching) ----
  // Invalid leaves/indices cause a VM exit to the Rootkernel.
  sb::Status Vmfunc(uint32_t leaf, uint32_t index);

  // ---- WRPKRU (protection-key rights register write) ----
  // Unprivileged: any user-mode code can rewrite PKRU, which is exactly the
  // weaker isolation envelope the MPK crossing backend models. Charges the
  // architectural cost and records the new rights register.
  void Wrpkru(uint32_t pkru);
  uint32_t pkru() const { return pkru_; }

  // ---- VMCALL (hypercall to the Rootkernel) ----
  uint64_t Vmcall(uint64_t code, uint64_t arg0 = 0, uint64_t arg1 = 0, uint64_t arg2 = 0);

  // CPUID always exits in VMX non-root mode; the Rootkernel handles it.
  void Cpuid();

  // ---- Virtual memory access (charged) ----
  sb::Status ReadVirt(Gva va, std::span<uint8_t> out);
  sb::Status WriteVirt(Gva va, std::span<const uint8_t> in);
  sb::StatusOr<uint64_t> ReadVirtU64(Gva va);
  sb::Status WriteVirtU64(Gva va, uint64_t value);

  // Bulk copy between two virtual ranges (rep movsb-style). Translates once
  // per page chunk on each side, then charges the streaming bulk cost for
  // every source and destination cache line. Transfers shorter than
  // CostModel::bulk_min_bytes degenerate to the plain per-line charging, so
  // small copies cost the same as a ReadVirt+WriteVirt pair minus the bounce
  // buffer.
  sb::Status CopyVirt(Gva dst_va, Gva src_va, uint64_t len);

  // One scatter-gather segment for CopyVirtSg.
  struct CopySeg {
    Gva dst;
    Gva src;
    uint64_t len;
  };

  // Scatter-gather bulk copy: all segments share a single bulk_startup (one
  // rep movsb setup amortized over the descriptor list), and streaming
  // charging applies when the *total* length crosses the threshold.
  sb::Status CopyVirtSg(std::span<const CopySeg> segs);

  // Touches [va, va+len) through the data path without moving bytes (models a
  // workload's footprint). FetchCode does the same through the i-side.
  sb::Status TouchData(Gva va, uint64_t len, bool write);
  sb::Status FetchCode(Gva va, uint64_t len);

  // Full charged translation of one address.
  sb::StatusOr<Hpa> Translate(Gva va, bool ifetch, bool write);

  // ---- Component access ----
  PmuCounters& pmu() { return pmu_; }
  const PmuCounters& pmu() const { return pmu_; }
  Tlb& itlb() { return itlb_; }
  Tlb& dtlb() { return dtlb_; }
  Cache& l1i() { return l1i_; }
  Cache& l1d() { return l1d_; }
  Cache& l2() { return l2_; }
  Machine& machine() { return *machine_; }
  const CostModel& costs() const;

  // Charges one data-side (or instruction-side) access to host-physical
  // address `hpa` through L1/L2/L3/DRAM and returns the latency.
  uint64_t ChargeAccess(Hpa hpa, bool ifetch, bool write);

 private:
  sb::StatusOr<Hpa> EptTranslateCharged(Gpa gpa, uint8_t need);

  // Updates cache state and PMU counters for one line access and returns the
  // hierarchy latency WITHOUT advancing the clock — the caller decides how
  // much of that latency is exposed (all of it for demand accesses, an
  // overlapped fraction for streaming bulk transfers).
  uint64_t ProbeAccess(Hpa hpa, bool ifetch, bool write);

  // Charges every cache line of [hpa, hpa + len): demand per-line cost when
  // `streaming` is false (the seed ReadVirt/WriteVirt behaviour), amortized
  // bulk_line cost with overlapped misses when true.
  void ChargeLines(Hpa hpa, uint64_t len, bool write, bool streaming);

  int id_;
  Machine* machine_;
  uint64_t cycles_ = 0;
  CpuMode mode_ = CpuMode::kKernel;
  bool nonroot_ = false;
  Gpa cr3_ = 0;
  uint16_t pcid_ = 0;
  uint32_t pkru_ = 0;
  Vmcs vmcs_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  Tlb itlb_;
  Tlb dtlb_;
  PmuCounters pmu_;
};

}  // namespace hw

#endif  // SRC_HW_CORE_H_
