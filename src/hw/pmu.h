// Performance monitoring counters, mirroring the events the paper samples in
// Table 1 (i-cache, d-cache, L2, L3, i-TLB, d-TLB) plus VM-exit/IPI counters.

#ifndef SRC_HW_PMU_H_
#define SRC_HW_PMU_H_

#include <cstdint>

namespace hw {

struct PmuCounters {
  uint64_t icache_miss = 0;
  uint64_t dcache_miss = 0;
  uint64_t l2_miss = 0;
  uint64_t l3_miss = 0;
  uint64_t itlb_miss = 0;
  uint64_t dtlb_miss = 0;
  uint64_t mem_accesses = 0;
  uint64_t vm_exits = 0;
  uint64_t exec_violations = 0;
  uint64_t ipis_sent = 0;
  uint64_t vmfuncs = 0;
  uint64_t wrpkrus = 0;
  uint64_t cr3_writes = 0;
  uint64_t syscalls = 0;

  PmuCounters operator-(const PmuCounters& rhs) const {
    PmuCounters d;
    d.icache_miss = icache_miss - rhs.icache_miss;
    d.dcache_miss = dcache_miss - rhs.dcache_miss;
    d.l2_miss = l2_miss - rhs.l2_miss;
    d.l3_miss = l3_miss - rhs.l3_miss;
    d.itlb_miss = itlb_miss - rhs.itlb_miss;
    d.dtlb_miss = dtlb_miss - rhs.dtlb_miss;
    d.mem_accesses = mem_accesses - rhs.mem_accesses;
    d.vm_exits = vm_exits - rhs.vm_exits;
    d.exec_violations = exec_violations - rhs.exec_violations;
    d.ipis_sent = ipis_sent - rhs.ipis_sent;
    d.vmfuncs = vmfuncs - rhs.vmfuncs;
    d.wrpkrus = wrpkrus - rhs.wrpkrus;
    d.cr3_writes = cr3_writes - rhs.cr3_writes;
    d.syscalls = syscalls - rhs.syscalls;
    return d;
  }
};

}  // namespace hw

#endif  // SRC_HW_PMU_H_
