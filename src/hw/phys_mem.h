// Host physical memory and frame allocation.
//
// HostPhysMem is the machine's RAM: a sparse array of 4 KiB frames allocated
// lazily on first touch. FrameAllocator hands out frames from a host-physical
// range; the Rootkernel and the Subkernel each own one (disjoint) range, which
// is exactly the paper's split of "a small portion of physical memory (100 MB)
// reserved for the Rootkernel" with the rest owned by the microkernel.

#ifndef SRC_HW_PHYS_MEM_H_
#define SRC_HW_PHYS_MEM_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/hw/addr.h"

namespace hw {

class HostPhysMem {
 public:
  explicit HostPhysMem(uint64_t size_bytes);

  uint64_t size() const { return size_; }
  bool Contains(Hpa addr, uint64_t len = 1) const { return addr + len <= size_ && addr + len >= addr; }

  // Raw byte access. Crossing frame boundaries is handled. Out-of-bounds
  // access is a CHECK failure: the simulator never lets a guest form an HPA
  // outside RAM (the EPT walker rejects it first).
  void Read(Hpa addr, std::span<uint8_t> out) const;
  void Write(Hpa addr, std::span<const uint8_t> in);

  uint64_t ReadU64(Hpa addr) const;
  void WriteU64(Hpa addr, uint64_t value);
  uint32_t ReadU32(Hpa addr) const;
  void WriteU32(Hpa addr, uint32_t value);
  uint8_t ReadU8(Hpa addr) const;
  void WriteU8(Hpa addr, uint8_t value);

  void ZeroFrame(Hpa frame_base);

  // Backs the page-aligned range [base, base + len) with one host-contiguous
  // allocation so the guest range can be exposed to host code as a single
  // std::span (zero-copy message views). Contents of already-materialized
  // frames are preserved; the range reads back unchanged. Idempotent when
  // the range is already inside one backing region.
  void BackContiguous(Hpa base, uint64_t len);

  // Host pointer for [addr, addr + len) when the whole range lies inside one
  // BackContiguous region; nullptr otherwise (sparse frames are never
  // host-contiguous across page boundaries).
  uint8_t* ContiguousSpan(Hpa addr, uint64_t len);

  // Number of frames materialized so far (for tests / memory accounting).
  size_t resident_frames() const { return frames_.size() + contig_frames_.size(); }

 private:
  struct ContigRegion {
    uint64_t first_frame;
    uint64_t num_frames;
    std::unique_ptr<uint8_t[]> storage;
  };

  uint8_t* FrameFor(Hpa addr);
  const uint8_t* FrameForRead(Hpa addr) const;

  uint64_t size_;
  mutable std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> frames_;
  // frame index -> host pointer into its region's storage (always resident).
  std::unordered_map<uint64_t, uint8_t*> contig_frames_;
  std::vector<std::unique_ptr<ContigRegion>> regions_;
};

// Bump-plus-freelist frame allocator over [base, base + size).
class FrameAllocator {
 public:
  FrameAllocator(Hpa base, uint64_t size_bytes);

  // Allocates one zero-filled 4 KiB frame.
  sb::StatusOr<Hpa> Alloc(HostPhysMem& mem);

  // Allocates `count` physically contiguous frames; returns the first HPA.
  sb::StatusOr<Hpa> AllocContiguous(HostPhysMem& mem, uint64_t count);

  void Free(Hpa frame);

  Hpa base() const { return base_; }
  uint64_t size() const { return size_; }
  uint64_t allocated_frames() const { return allocated_; }
  uint64_t capacity_frames() const { return size_ / sb::kPageSize; }

 private:
  Hpa base_;
  uint64_t size_;
  Hpa next_;
  uint64_t allocated_ = 0;
  std::vector<Hpa> free_list_;
};

}  // namespace hw

#endif  // SRC_HW_PHYS_MEM_H_
