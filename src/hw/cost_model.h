// Cycle cost constants for the simulated Skylake-class machine.
//
// The primitive costs are calibrated to the measurements the paper reports in
// Section 2.1 and Table 2 (Intel Core i7-6700K, Skylake). Composite paths are
// built from these primitives by the microkernel and SkyBridge layers.

#ifndef SRC_HW_COST_MODEL_H_
#define SRC_HW_COST_MODEL_H_

#include <cstdint>

namespace hw {

struct CostModel {
  // Mode switch instructions (Section 2.1.1).
  uint64_t syscall_insn = 82;  // SYSCALL trap into the kernel.
  uint64_t sysret_insn = 75;   // SYSRET back to user mode.
  uint64_t swapgs_insn = 26;   // SWAPGS on each kernel entry/exit.

  // Address-space switch: write to CR3 with PCID enabled (Table 2).
  uint64_t cr3_write = 186;

  // EPTP switching via VMFUNC with VPID enabled (Table 2): no TLB flush.
  uint64_t vmfunc = 134;

  // Protection-key register write (WRPKRU). Unprivileged, no TLB or pipeline
  // flush; the ERIM / intra-container MPK literature measures it at ~11-26
  // cycles on Skylake.
  uint64_t wrpkru = 20;

  // Inter-processor interrupt, send-to-delivery (Section 2.1.3).
  uint64_t ipi = 1913;

  // Composite no-op syscall round trips as measured (Table 2). The composite
  // is less than the sum of its parts because the real pipeline overlaps the
  // entry/exit instructions; the simulator charges the measured composite on
  // syscall paths and the per-instruction numbers when instructions are
  // executed in isolation.
  uint64_t noop_syscall = 181;
  uint64_t noop_syscall_kpti = 431;

  // Cache hit latencies (cycles), typical for Skylake.
  uint64_t l1_hit = 4;
  uint64_t l2_hit = 12;
  uint64_t l3_hit = 44;
  uint64_t dram = 200;

  // TLB hit adds no extra cost; a miss costs whatever the 1-D or 2-D page
  // walk's memory accesses cost through the cache hierarchy.

  // Bulk-copy engine (rep movsb / ERMSB-style streaming). Transfers of at
  // least `bulk_min_bytes` pay a one-time `bulk_startup` and then an
  // amortized `bulk_line` per 64 B cache line (~32 B/cycle, Skylake ERMSB
  // throughput). Misses are not fully hidden: the portion of the access
  // latency beyond an L1 hit is divided by `bulk_miss_overlap`, modeling the
  // hardware prefetcher overlapping several outstanding line fills. Accesses
  // below the threshold keep the plain per-line load/store charging.
  uint64_t bulk_startup = 30;
  uint64_t bulk_line = 2;
  uint64_t bulk_miss_overlap = 4;
  uint64_t bulk_min_bytes = 256;

  // A VM exit / entry pair (hypervisor handled), for the exits that remain.
  uint64_t vm_exit_roundtrip = 1500;

  // Registration rewrite pipeline. Scanning one 4 KiB code page for gate
  // patterns (linear sweep + decode, bench_table6-calibrated per-page share
  // of the full-image scan), versus replaying an already-computed rewrite
  // from the content-hashed cache (hash + patch writes only).
  uint64_t rewrite_scan_page = 12000;
  uint64_t rewrite_cache_replay = 900;

  // Nominal core frequency used to convert cycles to seconds for throughput
  // numbers (ops/s), matching the i7-6700K's 4.0 GHz.
  double cycles_per_second = 4.0e9;
};

// The default machine-wide cost model instance.
inline const CostModel& DefaultCosts() {
  static const CostModel kCosts;
  return kCosts;
}

}  // namespace hw

#endif  // SRC_HW_COST_MODEL_H_
