// Address-kind aliases. The simulator deals in three address spaces:
//   Gva — guest virtual address, translated by the guest page tables.
//   Gpa — guest physical address, translated by the active EPT.
//   Hpa — host physical address, indexes HostPhysMem directly.
// In native (non-virtualized) mode Gpa == Hpa.

#ifndef SRC_HW_ADDR_H_
#define SRC_HW_ADDR_H_

#include <cstdint>

namespace hw {

using Gva = uint64_t;
using Gpa = uint64_t;
using Hpa = uint64_t;

}  // namespace hw

#endif  // SRC_HW_ADDR_H_
