#include "src/hw/paging.h"

#include "src/base/logging.h"
#include "src/base/units.h"

namespace hw {
namespace {

int IndexAt(Gva va, int level) {
  return static_cast<int>((va >> (12 + 9 * (level - 1))) & 0x1ff);
}

uint64_t FlagsToPte(const PageFlags& flags) {
  uint64_t pte = kPtePresent;
  if (flags.writable) {
    pte |= kPteWrite;
  }
  if (flags.user) {
    pte |= kPteUser;
  }
  if (flags.global) {
    pte |= kPteGlobal;
  }
  if (!flags.executable) {
    pte |= kPteNoExec;
  }
  return pte;
}

}  // namespace

sb::StatusOr<std::unique_ptr<AddressSpace>> AddressSpace::Create(HostPhysMem& mem,
                                                                 FrameAllocator& frames,
                                                                 uint16_t pcid) {
  SB_ASSIGN_OR_RETURN(Hpa root, frames.Alloc(mem));
  return std::unique_ptr<AddressSpace>(new AddressSpace(mem, frames, root, pcid));
}

sb::StatusOr<Gpa> AddressSpace::EnsureTable(Gpa table, int index, bool user) {
  const Gpa entry_addr = table + static_cast<uint64_t>(index) * 8;
  uint64_t entry = mem_->ReadU64(entry_addr);
  if ((entry & kPtePresent) == 0) {
    SB_ASSIGN_OR_RETURN(Gpa child, frames_->Alloc(*mem_));
    entry = (child & kPteFrameMask) | kPtePresent | kPteWrite | (user ? kPteUser : 0);
    mem_->WriteU64(entry_addr, entry);
  } else if ((entry & kPteLarge) != 0) {
    return sb::AlreadyExists("large page in the way");
  }
  return entry & kPteFrameMask;
}

sb::Status AddressSpace::Map(Gva va, Gpa pa, uint64_t page_size, const PageFlags& flags) {
  int leaf_level;
  switch (page_size) {
    case sb::kPageSize:
      leaf_level = 1;
      break;
    case sb::kHugePage2M:
      leaf_level = 2;
      break;
    default:
      return sb::InvalidArgument("unsupported guest page size");
  }
  if ((va & (page_size - 1)) != 0 || (pa & (page_size - 1)) != 0) {
    return sb::InvalidArgument("guest mapping not aligned");
  }

  Gpa table = root_;
  for (int level = 4; level > leaf_level; --level) {
    SB_ASSIGN_OR_RETURN(table, EnsureTable(table, IndexAt(va, level), flags.user));
  }
  const Gpa leaf_addr = table + static_cast<uint64_t>(IndexAt(va, leaf_level)) * 8;
  if ((mem_->ReadU64(leaf_addr) & kPtePresent) != 0) {
    return sb::AlreadyExists("guest VA already mapped");
  }
  uint64_t pte = (pa & kPteFrameMask) | FlagsToPte(flags);
  if (leaf_level > 1) {
    pte |= kPteLarge;
  }
  mem_->WriteU64(leaf_addr, pte);
  return sb::OkStatus();
}

sb::StatusOr<Gpa> AddressSpace::MapAnonymous(Gva va, uint64_t len, const PageFlags& flags) {
  if (!sb::IsPageAligned(va) || len == 0) {
    return sb::InvalidArgument("MapAnonymous requires aligned va and nonzero len");
  }
  const uint64_t pages = sb::PageUp(len) / sb::kPageSize;
  SB_ASSIGN_OR_RETURN(Gpa first, frames_->AllocContiguous(*mem_, pages));
  SB_RETURN_IF_ERROR(MapRange(va, first, pages * sb::kPageSize, flags));
  return first;
}

sb::Status AddressSpace::MapRange(Gva va, Gpa pa, uint64_t len, const PageFlags& flags) {
  if (!sb::IsPageAligned(va) || !sb::IsPageAligned(pa)) {
    return sb::InvalidArgument("MapRange requires aligned addresses");
  }
  for (uint64_t off = 0; off < len; off += sb::kPageSize) {
    SB_RETURN_IF_ERROR(Map(va + off, pa + off, sb::kPageSize, flags));
  }
  return sb::OkStatus();
}

sb::Status AddressSpace::Unmap(Gva va) {
  Gpa table = root_;
  for (int level = 4; level > 1; --level) {
    const Gpa entry_addr = table + static_cast<uint64_t>(IndexAt(va, level)) * 8;
    const uint64_t entry = mem_->ReadU64(entry_addr);
    if ((entry & kPtePresent) == 0) {
      return sb::NotFound("VA not mapped");
    }
    if ((entry & kPteLarge) != 0) {
      mem_->WriteU64(entry_addr, 0);
      return sb::OkStatus();
    }
    table = entry & kPteFrameMask;
  }
  const Gpa leaf_addr = table + static_cast<uint64_t>(IndexAt(va, 1)) * 8;
  if ((mem_->ReadU64(leaf_addr) & kPtePresent) == 0) {
    return sb::NotFound("VA not mapped");
  }
  mem_->WriteU64(leaf_addr, 0);
  return sb::OkStatus();
}

sb::Status AddressSpace::ShareUpperHalf(const AddressSpace& other) {
  for (int index = 256; index < 512; ++index) {
    const uint64_t entry = mem_->ReadU64(other.root_ + static_cast<uint64_t>(index) * 8);
    if ((entry & kPtePresent) != 0) {
      mem_->WriteU64(root_ + static_cast<uint64_t>(index) * 8, entry);
    }
  }
  return sb::OkStatus();
}

GuestWalk AddressSpace::WalkVa(Gva va) const {
  GuestWalk result;
  Gpa table = root_;
  for (int level = 4; level >= 1; --level) {
    const uint64_t entry = mem_->ReadU64(table + static_cast<uint64_t>(IndexAt(va, level)) * 8);
    if ((entry & kPtePresent) == 0) {
      return result;
    }
    const bool leaf = level == 1 || (entry & kPteLarge) != 0;
    if (leaf) {
      const uint64_t page_size = level == 1 ? sb::kPageSize : (level == 2 ? sb::kHugePage2M : sb::kHugePage1G);
      result.ok = true;
      result.pte = entry;
      result.page_shift = static_cast<uint8_t>(12 + 9 * (level - 1));
      result.gpa = (entry & kPteFrameMask & ~(page_size - 1)) | (va & (page_size - 1));
      return result;
    }
    table = entry & kPteFrameMask;
  }
  return result;
}

}  // namespace hw
