#include "src/hw/cache.h"

#include "src/base/logging.h"
#include "src/base/units.h"

namespace hw {

CacheConfig L1iConfig() { return CacheConfig{"L1i", 32 * sb::kKiB, 8, 64}; }
CacheConfig L1dConfig() { return CacheConfig{"L1d", 32 * sb::kKiB, 8, 64}; }
CacheConfig L2Config() { return CacheConfig{"L2", 256 * sb::kKiB, 4, 64}; }
CacheConfig L3Config() { return CacheConfig{"L3", 8 * sb::kMiB, 16, 64}; }

Cache::Cache(const CacheConfig& config) : config_(config) {
  const uint64_t num_lines = config_.size_bytes / config_.line_size;
  SB_CHECK(num_lines % config_.ways == 0);
  num_sets_ = num_lines / config_.ways;
  SB_CHECK((num_sets_ & (num_sets_ - 1)) == 0) << "set count must be a power of two";
  lines_.assign(num_lines, Line{});
}

bool Cache::Access(Hpa paddr, bool is_write) {
  const uint64_t set = SetIndex(paddr);
  const uint64_t tag = Tag(paddr);
  Line* base = &lines_[set * config_.ways];
  ++tick_;

  Line* victim = base;
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      line.dirty = line.dirty || is_write;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }

  ++misses_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  victim->dirty = is_write;
  return false;
}

bool Cache::Probe(Hpa paddr) const {
  const uint64_t set = SetIndex(paddr);
  const uint64_t tag = Tag(paddr);
  const Line* base = &lines_[set * config_.ways];
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      return true;
    }
  }
  return false;
}

void Cache::Flush() {
  for (Line& line : lines_) {
    line = Line{};
  }
}

void Cache::InvalidateRange(Hpa base_addr, uint64_t len) {
  for (Hpa addr = base_addr & ~uint64_t{config_.line_size - 1}; addr < base_addr + len;
       addr += config_.line_size) {
    const uint64_t set = SetIndex(addr);
    const uint64_t tag = Tag(addr);
    Line* base = &lines_[set * config_.ways];
    for (uint32_t w = 0; w < config_.ways; ++w) {
      if (base[w].valid && base[w].tag == tag) {
        base[w] = Line{};
      }
    }
  }
}

}  // namespace hw
