#include "src/hw/core.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/units.h"
#include "src/hw/ept.h"
#include "src/hw/machine.h"
#include "src/hw/paging.h"

namespace hw {

Core::Core(int id, Machine* machine)
    : id_(id),
      machine_(machine),
      l1i_(L1iConfig()),
      l1d_(L1dConfig()),
      l2_(L2Config()),
      itlb_(machine->config().itlb_entries),
      dtlb_(machine->config().dtlb_entries) {}

const CostModel& Core::costs() const { return machine_->costs(); }

void Core::EnterNonRoot(Ept* base_ept, uint16_t vpid) {
  SB_CHECK(!nonroot_) << "already in non-root mode";
  nonroot_ = true;
  vmcs_ = Vmcs{};
  vmcs_.vpid = vpid;
  vmcs_.eptp_list.assign(1, base_ept);
  vmcs_.active_index = 0;
  // The translation context changes (EP4TA tag appears); cached native
  // translations no longer match, which is the architecturally visible
  // behaviour of VM entry with a fresh EP4TA.
}

void Core::LeaveNonRoot() {
  nonroot_ = false;
  vmcs_ = Vmcs{};
}

Hpa Core::ep4ta() const {
  if (!nonroot_) {
    return 0;
  }
  const Ept* active = vmcs_.active_ept();
  return active == nullptr ? 0 : active->root();
}

void Core::WriteCr3(Gpa root, uint16_t new_pcid, bool noflush) {
  AdvanceCycles(costs().cr3_write);
  ++pmu_.cr3_writes;
  cr3_ = root;
  pcid_ = new_pcid;
  if (!noflush) {
    itlb_.FlushPcid(vmcs_.vpid, new_pcid);
    dtlb_.FlushPcid(vmcs_.vpid, new_pcid);
  }
}

sb::Status Core::Vmfunc(uint32_t leaf, uint32_t index) {
  if (!nonroot_) {
    // #UD on bare metal; surfaced as an error the caller must not ignore.
    return sb::FailedPrecondition("VMFUNC executed outside non-root mode");
  }
  AdvanceCycles(costs().vmfunc);
  ++pmu_.vmfuncs;
  if (leaf != 0 || index >= vmcs_.eptp_list.size() || vmcs_.eptp_list[index] == nullptr) {
    VmExitInfo info{VmExitReason::kVmfuncInvalid, leaf, index, 0, 0};
    machine_->DeliverVmExit(*this, info);
    return sb::InvalidArgument("invalid VMFUNC leaf/index");
  }
  vmcs_.active_index = index;
  // With VPID enabled VMFUNC does not flush the TLB (Table 2); entries are
  // naturally separated by their EP4TA tag.
  return sb::OkStatus();
}

void Core::Wrpkru(uint32_t pkru) {
  // WRPKRU is unprivileged and works identically in root and non-root mode:
  // no VM exit, no TLB flush, no pipeline drain beyond the charged cost.
  AdvanceCycles(costs().wrpkru);
  ++pmu_.wrpkrus;
  pkru_ = pkru;
}

uint64_t Core::Vmcall(uint64_t code, uint64_t arg0, uint64_t arg1, uint64_t arg2) {
  VmExitInfo info{VmExitReason::kVmcall, code, arg0, arg1, arg2};
  return machine_->DeliverVmExit(*this, info);
}

void Core::Cpuid() {
  if (nonroot_) {
    VmExitInfo info{VmExitReason::kCpuid, 0, 0, 0, 0};
    machine_->DeliverVmExit(*this, info);
  } else {
    AdvanceCycles(100);  // Bare-metal CPUID serialization cost.
  }
}

uint64_t Core::ProbeAccess(Hpa hpa, bool ifetch, bool write) {
  const CostModel& cm = costs();
  ++pmu_.mem_accesses;
  Cache& l1 = ifetch ? l1i_ : l1d_;
  if (l1.Access(hpa, write)) {
    return cm.l1_hit;
  }
  if (ifetch) {
    ++pmu_.icache_miss;
  } else {
    ++pmu_.dcache_miss;
  }
  if (l2_.Access(hpa, write)) {
    return cm.l2_hit;
  }
  ++pmu_.l2_miss;
  if (machine_->l3().Access(hpa, write)) {
    return cm.l3_hit;
  }
  ++pmu_.l3_miss;
  return cm.dram;
}

uint64_t Core::ChargeAccess(Hpa hpa, bool ifetch, bool write) {
  const uint64_t latency = ProbeAccess(hpa, ifetch, write);
  AdvanceCycles(latency);
  return latency;
}

void Core::ChargeLines(Hpa hpa, uint64_t len, bool write, bool streaming) {
  if (!streaming) {
    for (uint64_t line = hpa & ~63ULL; line < hpa + len; line += 64) {
      ChargeAccess(line, /*ifetch=*/false, write);
    }
    return;
  }
  const CostModel& cm = costs();
  for (uint64_t line = hpa & ~63ULL; line < hpa + len; line += 64) {
    const uint64_t latency = ProbeAccess(line, /*ifetch=*/false, write);
    uint64_t charge = cm.bulk_line;
    if (latency > cm.l1_hit) {
      // The prefetcher overlaps outstanding fills: only a fraction of the
      // miss latency is exposed to the streaming copy.
      charge += (latency - cm.l1_hit) / cm.bulk_miss_overlap;
    }
    AdvanceCycles(charge);
  }
}

sb::StatusOr<Hpa> Core::EptTranslateCharged(Gpa gpa, uint8_t need) {
  if (!nonroot_) {
    if (!machine_->mem().Contains(gpa)) {
      return sb::OutOfRange("physical address outside RAM");
    }
    return gpa;
  }
  Ept* ept = vmcs_.active_ept();
  SB_CHECK(ept != nullptr) << "non-root mode with no active EPT";
  for (int attempt = 0; attempt < 2; ++attempt) {
    const EptWalk walk = ept->Walk(gpa, need);
    for (int i = 0; i < walk.num_table_reads; ++i) {
      ChargeAccess(walk.table_reads[i], /*ifetch=*/false, /*write=*/false);
    }
    if (walk.ok) {
      return walk.hpa;
    }
    if (attempt == 0) {
      // EPT violation: exit to the Rootkernel, which may establish the
      // mapping and resume.
      VmExitInfo info{VmExitReason::kEptViolation, walk.fault_gpa, need, 0, 0};
      machine_->DeliverVmExit(*this, info);
    }
  }
  return sb::Internal("unresolvable EPT violation");
}

sb::StatusOr<Hpa> Core::Translate(Gva va, bool ifetch, bool write) {
  Tlb& tlb = ifetch ? itlb_ : dtlb_;
  const Hpa tag = ep4ta();
  uint8_t page_shift = 12;
  const TlbEntry* hit = tlb.Lookup(va, vmcs_.vpid, pcid_, tag, &page_shift);
  if (hit != nullptr) {
    if (write && !hit->writable) {
      return sb::PermissionDenied("write to read-only page");
    }
    const uint64_t page_size = 1ULL << page_shift;
    return (hit->frame & ~(page_size - 1)) | (va & (page_size - 1));
  }
  if (ifetch) {
    ++pmu_.itlb_miss;
  } else {
    ++pmu_.dtlb_miss;
  }

  // Hardware page walk. Guest table fetches are translated through the EPT
  // (each EPT table fetch itself is a charged memory access): the 2-D walk.
  Gpa table_gpa = cr3_;
  uint64_t entry = 0;
  int level = 4;
  for (; level >= 1; --level) {
    const int index = static_cast<int>((va >> (12 + 9 * (level - 1))) & 0x1ff);
    const Gpa entry_gpa = table_gpa + static_cast<uint64_t>(index) * 8;
    SB_ASSIGN_OR_RETURN(const Hpa entry_hpa, EptTranslateCharged(entry_gpa, kEptRead));
    ChargeAccess(entry_hpa, /*ifetch=*/false, /*write=*/false);
    entry = machine_->mem().ReadU64(entry_hpa);
    if ((entry & kPtePresent) == 0) {
      return sb::NotFound("guest page fault");
    }
    if (level == 1 || (entry & kPteLarge) != 0) {
      break;
    }
    table_gpa = entry & kPteFrameMask;
  }
  if (write && (entry & kPteWrite) == 0) {
    return sb::PermissionDenied("write to read-only page");
  }
  if (mode_ == CpuMode::kUser && (entry & kPteUser) == 0) {
    return sb::PermissionDenied("user access to supervisor page");
  }

  const uint8_t page_shift_out = static_cast<uint8_t>(12 + 9 * (level - 1));
  const uint64_t page_size = 1ULL << page_shift_out;
  const Gpa gpa = (entry & kPteFrameMask & ~(page_size - 1)) | (va & (page_size - 1));
  SB_ASSIGN_OR_RETURN(const Hpa hpa, EptTranslateCharged(gpa, ifetch ? kEptExec : kEptRead));

  TlbEntry new_entry;
  new_entry.frame = hpa & ~(page_size - 1);
  new_entry.global = (entry & kPteGlobal) != 0;
  new_entry.writable = (entry & kPteWrite) != 0;
  tlb.Insert(va, page_shift_out, vmcs_.vpid, pcid_, tag, new_entry);
  return hpa;
}

sb::Status Core::ReadVirt(Gva va, std::span<uint8_t> out) {
  const bool streaming = out.size() >= costs().bulk_min_bytes;
  if (streaming) {
    AdvanceCycles(costs().bulk_startup);
  }
  size_t done = 0;
  while (done < out.size()) {
    const Gva cur = va + done;
    const uint64_t page_off = cur & (sb::kPageSize - 1);
    const size_t chunk = std::min<size_t>(out.size() - done, sb::kPageSize - page_off);
    SB_ASSIGN_OR_RETURN(const Hpa hpa, Translate(cur, /*ifetch=*/false, /*write=*/false));
    ChargeLines(hpa, chunk, /*write=*/false, streaming);
    machine_->mem().Read(hpa, out.subspan(done, chunk));
    done += chunk;
  }
  return sb::OkStatus();
}

sb::Status Core::WriteVirt(Gva va, std::span<const uint8_t> in) {
  const bool streaming = in.size() >= costs().bulk_min_bytes;
  if (streaming) {
    AdvanceCycles(costs().bulk_startup);
  }
  size_t done = 0;
  while (done < in.size()) {
    const Gva cur = va + done;
    const uint64_t page_off = cur & (sb::kPageSize - 1);
    const size_t chunk = std::min<size_t>(in.size() - done, sb::kPageSize - page_off);
    SB_ASSIGN_OR_RETURN(const Hpa hpa, Translate(cur, /*ifetch=*/false, /*write=*/true));
    ChargeLines(hpa, chunk, /*write=*/true, streaming);
    machine_->mem().Write(hpa, in.subspan(done, chunk));
    done += chunk;
  }
  return sb::OkStatus();
}

sb::Status Core::CopyVirt(Gva dst_va, Gva src_va, uint64_t len) {
  if (len == 0) {
    return sb::OkStatus();
  }
  const bool streaming = len >= costs().bulk_min_bytes;
  if (streaming) {
    AdvanceCycles(costs().bulk_startup);
  }
  uint8_t bounce[sb::kPageSize];
  uint64_t done = 0;
  while (done < len) {
    const Gva src = src_va + done;
    const Gva dst = dst_va + done;
    const uint64_t src_room = sb::kPageSize - (src & (sb::kPageSize - 1));
    const uint64_t dst_room = sb::kPageSize - (dst & (sb::kPageSize - 1));
    const size_t chunk =
        static_cast<size_t>(std::min({len - done, src_room, dst_room}));
    SB_ASSIGN_OR_RETURN(const Hpa src_hpa, Translate(src, /*ifetch=*/false, /*write=*/false));
    SB_ASSIGN_OR_RETURN(const Hpa dst_hpa, Translate(dst, /*ifetch=*/false, /*write=*/true));
    ChargeLines(src_hpa, chunk, /*write=*/false, streaming);
    ChargeLines(dst_hpa, chunk, /*write=*/true, streaming);
    machine_->mem().Read(src_hpa, std::span<uint8_t>(bounce, chunk));
    machine_->mem().Write(dst_hpa, std::span<const uint8_t>(bounce, chunk));
    done += chunk;
  }
  return sb::OkStatus();
}

sb::Status Core::CopyVirtSg(std::span<const CopySeg> segs) {
  uint64_t total = 0;
  for (const CopySeg& seg : segs) {
    total += seg.len;
  }
  if (total == 0) {
    return sb::OkStatus();
  }
  const bool streaming = total >= costs().bulk_min_bytes;
  if (streaming) {
    AdvanceCycles(costs().bulk_startup);
  }
  uint8_t bounce[sb::kPageSize];
  for (const CopySeg& seg : segs) {
    uint64_t done = 0;
    while (done < seg.len) {
      const Gva src = seg.src + done;
      const Gva dst = seg.dst + done;
      const uint64_t src_room = sb::kPageSize - (src & (sb::kPageSize - 1));
      const uint64_t dst_room = sb::kPageSize - (dst & (sb::kPageSize - 1));
      const size_t chunk =
          static_cast<size_t>(std::min({seg.len - done, src_room, dst_room}));
      SB_ASSIGN_OR_RETURN(const Hpa src_hpa, Translate(src, /*ifetch=*/false, /*write=*/false));
      SB_ASSIGN_OR_RETURN(const Hpa dst_hpa, Translate(dst, /*ifetch=*/false, /*write=*/true));
      ChargeLines(src_hpa, chunk, /*write=*/false, streaming);
      ChargeLines(dst_hpa, chunk, /*write=*/true, streaming);
      machine_->mem().Read(src_hpa, std::span<uint8_t>(bounce, chunk));
      machine_->mem().Write(dst_hpa, std::span<const uint8_t>(bounce, chunk));
      done += chunk;
    }
  }
  return sb::OkStatus();
}

sb::StatusOr<uint64_t> Core::ReadVirtU64(Gva va) {
  uint64_t v = 0;
  SB_RETURN_IF_ERROR(ReadVirt(va, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&v), sizeof(v))));
  return v;
}

sb::Status Core::WriteVirtU64(Gva va, uint64_t value) {
  return WriteVirt(
      va, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&value), sizeof(value)));
}

sb::Status Core::TouchData(Gva va, uint64_t len, bool write) {
  for (Gva page = sb::PageDown(va); page < va + len; page += sb::kPageSize) {
    SB_ASSIGN_OR_RETURN(const Hpa hpa_base, Translate(page, /*ifetch=*/false, write));
    const Gva lo = std::max(va, page);
    const Gva hi = std::min(va + len, page + sb::kPageSize);
    for (Gva line = lo & ~63ULL; line < hi; line += 64) {
      ChargeAccess(hpa_base + (line - page), /*ifetch=*/false, write);
    }
  }
  return sb::OkStatus();
}

sb::Status Core::FetchCode(Gva va, uint64_t len) {
  for (Gva page = sb::PageDown(va); page < va + len; page += sb::kPageSize) {
    SB_ASSIGN_OR_RETURN(const Hpa hpa_base, Translate(page, /*ifetch=*/true, /*write=*/false));
    const Gva lo = std::max(va, page);
    const Gva hi = std::min(va + len, page + sb::kPageSize);
    for (Gva line = lo & ~63ULL; line < hi; line += 64) {
      ChargeAccess(hpa_base + (line - page), /*ifetch=*/true, /*write=*/false);
    }
  }
  return sb::OkStatus();
}

}  // namespace hw
