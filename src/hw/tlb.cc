#include "src/hw/tlb.h"

#include "src/base/logging.h"

namespace hw {

Tlb::Tlb(size_t capacity) : capacity_(capacity) { SB_CHECK(capacity > 0); }

void Tlb::Touch(LruList::iterator it) { lru_.splice(lru_.begin(), lru_, it); }

const TlbEntry* Tlb::Lookup(Gva gva, uint16_t vpid, uint16_t pcid, Hpa ep4ta,
                            uint8_t* page_shift) {
  for (uint8_t shift : {uint8_t{12}, uint8_t{21}, uint8_t{30}}) {
    TlbKey key{gva >> shift, shift, vpid, pcid, ep4ta};
    auto it = map_.find(key);
    if (it == map_.end() && shift != 12) {
      // Global kernel mappings match regardless of PCID; they are inserted
      // under PCID 0 with global=true. Retry the global tag.
      key.pcid = 0;
      it = map_.find(key);
      if (it != map_.end() && !it->second->entry.global) {
        it = map_.end();
      }
    }
    if (it != map_.end()) {
      Touch(it->second);
      ++hits_;
      if (page_shift != nullptr) {
        *page_shift = shift;
      }
      return &it->second->entry;
    }
  }
  // Also probe 4K global entries under PCID 0.
  if (pcid != 0) {
    TlbKey key{gva >> 12, 12, vpid, 0, ep4ta};
    auto it = map_.find(key);
    if (it != map_.end() && it->second->entry.global) {
      Touch(it->second);
      ++hits_;
      if (page_shift != nullptr) {
        *page_shift = 12;
      }
      return &it->second->entry;
    }
  }
  ++misses_;
  return nullptr;
}

void Tlb::Insert(Gva gva, uint8_t page_shift, uint16_t vpid, uint16_t pcid, Hpa ep4ta,
                 const TlbEntry& entry) {
  // Global entries are stored under PCID 0 so every PCID finds them.
  const uint16_t effective_pcid = entry.global ? 0 : pcid;
  const TlbKey key{gva >> page_shift, page_shift, vpid, effective_pcid, ep4ta};
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->entry = entry;
    Touch(it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    const Node& victim = lru_.back();
    map_.erase(victim.key);
    lru_.pop_back();
  }
  lru_.push_front(Node{key, entry});
  map_.emplace(key, lru_.begin());
}

void Tlb::FlushAll() {
  map_.clear();
  lru_.clear();
}

void Tlb::FlushPcid(uint16_t vpid, uint16_t pcid) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    const bool match =
        it->key.vpid == vpid && it->key.pcid == pcid && !it->entry.global;
    if (match) {
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void Tlb::FlushVpid(uint16_t vpid) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.vpid == vpid) {
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace hw
