// TLB model with VPID / PCID / EP4TA tagging.
//
// Entries are tagged the way post-Westmere hardware tags them: by virtual
// page, page size, VPID, PCID and — for combined (guest VA -> HPA) mappings —
// the EPT root in use (EP4TA). This is what makes VMFUNC EPTP switching with
// VPID enabled *not* flush the TLB (Table 2): translations cached under the
// old EPTP simply stop matching, while the new EPTP's entries may still be
// warm from an earlier visit.

#ifndef SRC_HW_TLB_H_
#define SRC_HW_TLB_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/hw/addr.h"

namespace hw {

struct TlbKey {
  uint64_t vpn = 0;         // gva >> page_shift
  uint8_t page_shift = 12;  // 12, 21 or 30
  uint16_t vpid = 0;
  uint16_t pcid = 0;
  Hpa ep4ta = 0;  // 0 in native (non-virtualized) mode.

  bool operator==(const TlbKey& other) const = default;
};

struct TlbKeyHash {
  size_t operator()(const TlbKey& k) const {
    uint64_t h = k.vpn * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<uint64_t>(k.page_shift) << 48) ^ (static_cast<uint64_t>(k.vpid) << 32) ^
         (static_cast<uint64_t>(k.pcid) << 16) ^ (k.ep4ta >> 12);
    h *= 0xbf58476d1ce4e5b9ULL;
    return static_cast<size_t>(h ^ (h >> 31));
  }
};

struct TlbEntry {
  Hpa frame = 0;  // Host-physical base of the page.
  bool global = false;
  bool writable = true;
};

// LRU-replaced translation cache of fixed capacity.
class Tlb {
 public:
  explicit Tlb(size_t capacity);

  // Probes 4K, 2M and 1G translations for `gva` under the given tags.
  // Returns the matched entry and sets *page_shift, or nullptr on miss.
  const TlbEntry* Lookup(Gva gva, uint16_t vpid, uint16_t pcid, Hpa ep4ta, uint8_t* page_shift);

  void Insert(Gva gva, uint8_t page_shift, uint16_t vpid, uint16_t pcid, Hpa ep4ta,
              const TlbEntry& entry);

  void FlushAll();
  // Flushes non-global entries with the given (vpid, pcid) — MOV CR3 semantics.
  void FlushPcid(uint16_t vpid, uint16_t pcid);
  // Flushes everything for a VPID (INVVPID all-context).
  void FlushVpid(uint16_t vpid);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  struct Node {
    TlbKey key;
    TlbEntry entry;
  };
  using LruList = std::list<Node>;

  void Touch(LruList::iterator it);

  size_t capacity_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<TlbKey, LruList::iterator, TlbKeyHash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace hw

#endif  // SRC_HW_TLB_H_
