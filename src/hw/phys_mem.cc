#include "src/hw/phys_mem.h"

#include "src/base/logging.h"

namespace hw {

HostPhysMem::HostPhysMem(uint64_t size_bytes) : size_(size_bytes) {
  SB_CHECK(sb::IsPageAligned(size_bytes)) << "RAM size must be page aligned";
}

uint8_t* HostPhysMem::FrameFor(Hpa addr) {
  SB_CHECK(Contains(addr)) << "HPA out of RAM: 0x" << std::hex << addr;
  const uint64_t frame = addr >> sb::kPageShift;
  if (auto cit = contig_frames_.find(frame); cit != contig_frames_.end()) {
    return cit->second;
  }
  auto it = frames_.find(frame);
  if (it == frames_.end()) {
    auto storage = std::make_unique<uint8_t[]>(sb::kPageSize);
    std::memset(storage.get(), 0, sb::kPageSize);
    it = frames_.emplace(frame, std::move(storage)).first;
  }
  return it->second.get();
}

const uint8_t* HostPhysMem::FrameForRead(Hpa addr) const {
  SB_CHECK(Contains(addr)) << "HPA out of RAM: 0x" << std::hex << addr;
  const uint64_t frame = addr >> sb::kPageShift;
  if (auto cit = contig_frames_.find(frame); cit != contig_frames_.end()) {
    return cit->second;
  }
  auto it = frames_.find(frame);
  if (it == frames_.end()) {
    return nullptr;  // Untouched frames read as zero.
  }
  return it->second.get();
}

void HostPhysMem::BackContiguous(Hpa base, uint64_t len) {
  SB_CHECK(sb::IsPageAligned(base)) << "BackContiguous base must be page aligned";
  SB_CHECK(Contains(base, len));
  const uint64_t first = base >> sb::kPageShift;
  const uint64_t count = sb::PageUp(len) >> sb::kPageShift;
  if (ContiguousSpan(base, len) != nullptr) {
    return;  // Already one region.
  }
  auto region = std::make_unique<ContigRegion>();
  region->first_frame = first;
  region->num_frames = count;
  region->storage = std::make_unique<uint8_t[]>(count * sb::kPageSize);
  std::memset(region->storage.get(), 0, count * sb::kPageSize);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t frame = first + i;
    uint8_t* dst = region->storage.get() + i * sb::kPageSize;
    // Preserve whatever was already materialized for this frame, then retire
    // the old backing so the region's storage is authoritative.
    if (auto cit = contig_frames_.find(frame); cit != contig_frames_.end()) {
      std::memcpy(dst, cit->second, sb::kPageSize);
      contig_frames_.erase(cit);
    } else if (auto it = frames_.find(frame); it != frames_.end()) {
      std::memcpy(dst, it->second.get(), sb::kPageSize);
      frames_.erase(it);
    }
    contig_frames_[frame] = dst;
  }
  regions_.push_back(std::move(region));
}

uint8_t* HostPhysMem::ContiguousSpan(Hpa addr, uint64_t len) {
  if (len == 0 || !Contains(addr, len)) {
    return nullptr;
  }
  const uint64_t first = addr >> sb::kPageShift;
  auto it = contig_frames_.find(first);
  if (it == contig_frames_.end()) {
    return nullptr;
  }
  // Find the region that owns the first frame and check the range fits.
  for (const auto& region : regions_) {
    if (first >= region->first_frame && first < region->first_frame + region->num_frames) {
      const uint64_t region_end = (region->first_frame + region->num_frames) << sb::kPageShift;
      if (addr + len <= region_end) {
        return it->second + (addr & (sb::kPageSize - 1));
      }
      return nullptr;
    }
  }
  return nullptr;
}

void HostPhysMem::Read(Hpa addr, std::span<uint8_t> out) const {
  SB_CHECK(Contains(addr, out.size()));
  size_t done = 0;
  while (done < out.size()) {
    const Hpa cur = addr + done;
    const uint64_t offset = cur & (sb::kPageSize - 1);
    const size_t chunk = std::min<size_t>(out.size() - done, sb::kPageSize - offset);
    const uint8_t* frame = FrameForRead(cur);
    if (frame == nullptr) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      std::memcpy(out.data() + done, frame + offset, chunk);
    }
    done += chunk;
  }
}

void HostPhysMem::Write(Hpa addr, std::span<const uint8_t> in) {
  SB_CHECK(Contains(addr, in.size()));
  size_t done = 0;
  while (done < in.size()) {
    const Hpa cur = addr + done;
    const uint64_t offset = cur & (sb::kPageSize - 1);
    const size_t chunk = std::min<size_t>(in.size() - done, sb::kPageSize - offset);
    std::memcpy(FrameFor(cur) + offset, in.data() + done, chunk);
    done += chunk;
  }
}

uint64_t HostPhysMem::ReadU64(Hpa addr) const {
  uint64_t v = 0;
  Read(addr, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&v), sizeof(v)));
  return v;
}

void HostPhysMem::WriteU64(Hpa addr, uint64_t value) {
  Write(addr, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&value), sizeof(value)));
}

uint32_t HostPhysMem::ReadU32(Hpa addr) const {
  uint32_t v = 0;
  Read(addr, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&v), sizeof(v)));
  return v;
}

void HostPhysMem::WriteU32(Hpa addr, uint32_t value) {
  Write(addr, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&value), sizeof(value)));
}

uint8_t HostPhysMem::ReadU8(Hpa addr) const {
  uint8_t v = 0;
  Read(addr, std::span<uint8_t>(&v, 1));
  return v;
}

void HostPhysMem::WriteU8(Hpa addr, uint8_t value) { Write(addr, std::span<const uint8_t>(&value, 1)); }

void HostPhysMem::ZeroFrame(Hpa frame_base) {
  SB_CHECK(sb::IsPageAligned(frame_base));
  std::memset(FrameFor(frame_base), 0, sb::kPageSize);
}

FrameAllocator::FrameAllocator(Hpa base, uint64_t size_bytes)
    : base_(base), size_(size_bytes), next_(base) {
  SB_CHECK(sb::IsPageAligned(base));
  SB_CHECK(sb::IsPageAligned(size_bytes));
}

sb::StatusOr<Hpa> FrameAllocator::Alloc(HostPhysMem& mem) {
  if (!free_list_.empty()) {
    const Hpa frame = free_list_.back();
    free_list_.pop_back();
    mem.ZeroFrame(frame);
    ++allocated_;
    return frame;
  }
  if (next_ + sb::kPageSize > base_ + size_) {
    return sb::ResourceExhausted("frame allocator exhausted");
  }
  const Hpa frame = next_;
  next_ += sb::kPageSize;
  mem.ZeroFrame(frame);
  ++allocated_;
  return frame;
}

sb::StatusOr<Hpa> FrameAllocator::AllocContiguous(HostPhysMem& mem, uint64_t count) {
  if (next_ + count * sb::kPageSize > base_ + size_) {
    return sb::ResourceExhausted("frame allocator exhausted (contiguous)");
  }
  const Hpa first = next_;
  next_ += count * sb::kPageSize;
  for (uint64_t i = 0; i < count; ++i) {
    mem.ZeroFrame(first + i * sb::kPageSize);
  }
  allocated_ += count;
  return first;
}

void FrameAllocator::Free(Hpa frame) {
  SB_CHECK(sb::IsPageAligned(frame));
  SB_CHECK(frame >= base_ && frame < base_ + size_);
  SB_CHECK(allocated_ > 0);
  --allocated_;
  free_list_.push_back(frame);
}

}  // namespace hw
