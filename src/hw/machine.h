// The simulated machine: RAM, cores, shared L3, VM-exit dispatch, IPIs.

#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/telemetry/metrics.h"
#include "src/base/units.h"
#include "src/hw/cache.h"
#include "src/hw/core.h"
#include "src/hw/cost_model.h"
#include "src/hw/phys_mem.h"

namespace hw {

struct MachineConfig {
  int num_cores = 8;  // 4 cores x 2 hyperthreads on the paper's i7-6700K.
  uint64_t ram_bytes = 16 * sb::kGiB;
  size_t itlb_entries = 128;
  size_t dtlb_entries = 1536;  // dTLB + STLB combined.
  CostModel costs;
};

// Arguments of a VM exit delivered to the hypervisor.
struct VmExitInfo {
  VmExitReason reason;
  uint64_t qualification = 0;  // e.g. faulting GPA, or hypercall code.
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
  uint64_t arg3 = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  HostPhysMem& mem() { return mem_; }
  Cache& l3() { return l3_; }
  Core& core(int i) { return *cores_[static_cast<size_t>(i)]; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  const CostModel& costs() const { return config_.costs; }
  const MachineConfig& config() const { return config_; }

  // Hypervisor VM-exit handler; returns a value (for VMCALL). Unset handler
  // on a VM exit is a triple fault (CHECK failure).
  using VmExitHandler = std::function<uint64_t(Core&, const VmExitInfo&)>;
  void SetVmExitHandler(VmExitHandler handler) { vm_exit_handler_ = std::move(handler); }
  bool has_vm_exit_handler() const { return static_cast<bool>(vm_exit_handler_); }

  // Dispatches a VM exit from `core`, charging the exit/entry round trip.
  uint64_t DeliverVmExit(Core& core, const VmExitInfo& info);

  // Counts and charges an IPI from one core to another; returns the cycle
  // cost charged to the sender (the delivery latency is modeled by the
  // virtual-time layer on the receiver side).
  void SendIpi(int from_core, int to_core);

  uint64_t total_vm_exits() const { return total_vm_exits_; }
  uint64_t total_ipis() const { return total_ipis_; }
  void ResetExitCounters() {
    total_vm_exits_ = 0;
    total_ipis_ = 0;
  }

  // This machine's metrics registry. Every simulated layer (skybridge, mk,
  // vmm, hw) reports here; provider gauges registered by the constructor
  // surface the per-core PMU tallies (hw.tlb.*, hw.cache.*, ...).
  sb::telemetry::Registry& telemetry() { return telemetry_; }
  const sb::telemetry::Registry& telemetry() const { return telemetry_; }

 private:
  // Declared first so it is destroyed after everything that reports into it.
  sb::telemetry::Registry telemetry_;
  MachineConfig config_;
  HostPhysMem mem_;
  Cache l3_;
  std::vector<std::unique_ptr<Core>> cores_;
  VmExitHandler vm_exit_handler_;
  uint64_t total_vm_exits_ = 0;
  uint64_t total_ipis_ = 0;
};

}  // namespace hw

#endif  // SRC_HW_MACHINE_H_
