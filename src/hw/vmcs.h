// Virtual Machine Control Structure (the slice of it SkyBridge needs).
//
// The Rootkernel configures one VMCS per core. The EPTP list holds up to 512
// EPT roots; VMFUNC leaf 0 (EPTP switching) atomically activates one of them
// from non-root mode without a VM exit.

#ifndef SRC_HW_VMCS_H_
#define SRC_HW_VMCS_H_

#include <cstdint>
#include <vector>

#include "src/hw/addr.h"

namespace hw {

class Ept;

inline constexpr size_t kEptpListCapacity = 512;

enum class VmExitReason : uint8_t {
  kCpuid,
  kVmcall,
  kEptViolation,
  // Instruction fetch from a page whose EPT leaf lacks the execute bit.
  // Distinguished from the generic data-access violation so the Rootkernel
  // can route it into the lazy rewrite-on-first-execute slow path.
  kEptExecViolation,
  kVmfuncInvalid,
  kTriplefault,
};

struct Vmcs {
  uint16_t vpid = 1;
  // Non-owning; slot 0 conventionally holds the process's own EPT.
  std::vector<Ept*> eptp_list;
  size_t active_index = 0;

  // Exit controls: with both false (SkyBridge Rootkernel configuration),
  // privileged instructions and external interrupts are handled by the guest
  // directly and cause no VM exits.
  bool exit_on_cr3_write = false;
  bool exit_on_external_interrupt = false;

  Ept* active_ept() const {
    if (active_index >= eptp_list.size()) {
      return nullptr;
    }
    return eptp_list[active_index];
  }
};

}  // namespace hw

#endif  // SRC_HW_VMCS_H_
