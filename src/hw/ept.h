// Extended Page Tables (EPT): GPA -> HPA translation structures.
//
// The tables live in host physical memory and use the Intel EPT entry layout:
// bits 0..2 are read/write/execute permissions, bit 7 marks a large-page leaf
// (1 GiB at the PDPT level, 2 MiB at the PD level), bits 51:12 hold the frame.
//
// Two operations carry SkyBridge's core mechanism:
//  * ShallowCopy()   — a derived EPT whose root duplicates the base root but
//                      shares every lower-level table.
//  * RemapGpaPage()  — rewrites the translation of a single 4 KiB GPA page,
//                      cloning only the tables on the path (and splitting the
//                      base EPT's huge pages as needed). This is how a server
//                      EPT maps the GPA of the *client's* CR3 to the HPA of
//                      the *server's* page-table root (Section 4.3): after
//                      VMFUNC, the hardware walker fetches the server's page
//                      tables while CR3 still holds the client's value.

#ifndef SRC_HW_EPT_H_
#define SRC_HW_EPT_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/base/status.h"
#include "src/hw/addr.h"
#include "src/hw/phys_mem.h"

namespace hw {

inline constexpr uint8_t kEptRead = 1;
inline constexpr uint8_t kEptWrite = 2;
inline constexpr uint8_t kEptExec = 4;
inline constexpr uint8_t kEptRwx = kEptRead | kEptWrite | kEptExec;

// Result of a structural EPT walk. `table_reads` lists the HPA of every
// entry the hardware walker fetched, so the caller can charge cache costs.
struct EptWalk {
  bool ok = false;
  Hpa hpa = 0;
  uint8_t perms = 0;
  uint8_t page_shift = 12;
  Hpa table_reads[4] = {0, 0, 0, 0};
  int num_table_reads = 0;
  Gpa fault_gpa = 0;
};

class Ept {
 public:
  // Allocates the root table from `frames` (the Rootkernel's reserved pool).
  static sb::StatusOr<std::unique_ptr<Ept>> Create(HostPhysMem& mem, FrameAllocator& frames);

  // A derived EPT: new private root, shared subtrees.
  sb::StatusOr<std::unique_ptr<Ept>> ShallowCopy() const;

  Hpa root() const { return root_; }

  // Maps [gpa, gpa+page_size) -> [hpa, ...). page_size is 4K, 2M or 1G and
  // both addresses must be aligned to it. Fails on remap of an existing leaf
  // (use RemapGpaPage for that).
  sb::Status Map(Gpa gpa, Hpa hpa, uint64_t page_size, uint8_t perms);

  // Points the 4 KiB translation of `page_gpa` at `new_target`, cloning the
  // path and splitting large pages. Perms default to RWX like the original.
  sb::Status RemapGpaPage(Gpa page_gpa, Hpa new_target);

  // Removes the translation for the 4 KiB page (subsequent walks fault).
  sb::Status UnmapGpaPage(Gpa page_gpa);

  // Sets or clears the execute bit on the 4 KiB translation of `page_gpa`,
  // cloning the path (and splitting large pages) like RemapGpaPage so shared
  // subtrees in sibling EPTs keep their permissions. The translation target
  // is preserved. This is the lazy-registration knob: a non-executable code
  // page faults on first instruction fetch and is rewritten on demand.
  sb::Status SetGpaPageExec(Gpa page_gpa, bool exec);

  // Structural walk. `need` is the permission mask the access requires.
  EptWalk Walk(Gpa gpa, uint8_t need) const;

  // Number of table pages private to this EPT (metric for "shallow copy
  // modifies only four pages").
  size_t private_table_pages() const { return private_tables_.size(); }

 private:
  Ept(HostPhysMem& mem, FrameAllocator& frames, Hpa root)
      : mem_(&mem), frames_(&frames), root_(root) {
    private_tables_.insert(root);
  }

  static uint64_t MakeEntry(Hpa target, uint8_t perms, bool large);
  // Ensures the table entry at (table, index) refers to a table page private
  // to this EPT, splitting large leaves into next-level tables as needed.
  // `level` is the level of the entry being privatized (4 = PML4E).
  sb::StatusOr<Hpa> PrivatizeChild(Hpa table, int index, int level);

  HostPhysMem* mem_;
  FrameAllocator* frames_;
  Hpa root_;
  std::unordered_set<Hpa> private_tables_;
};

}  // namespace hw

#endif  // SRC_HW_EPT_H_
