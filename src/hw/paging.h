// Guest page tables: x86-64 4-level paging (GVA -> GPA).
//
// AddressSpace is the *builder* the Subkernel uses to construct and edit a
// process's page tables inside guest-physical memory. The authoritative
// translation at run time is performed by hw::Core, which walks the raw table
// bytes through the active EPT — that raw walk is what makes SkyBridge's
// CR3-GPA remapping behave exactly as on hardware.
//
// PTE layout (subset of x86-64): bit 0 present, bit 1 writable, bit 2 user,
// bit 7 page-size (large leaf), bit 8 global, bits 51:12 frame number.

#ifndef SRC_HW_PAGING_H_
#define SRC_HW_PAGING_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/hw/addr.h"
#include "src/hw/phys_mem.h"

namespace hw {

inline constexpr uint64_t kPtePresent = 1ULL << 0;
inline constexpr uint64_t kPteWrite = 1ULL << 1;
inline constexpr uint64_t kPteUser = 1ULL << 2;
inline constexpr uint64_t kPteLarge = 1ULL << 7;
inline constexpr uint64_t kPteGlobal = 1ULL << 8;
inline constexpr uint64_t kPteNoExec = 1ULL << 63;
inline constexpr uint64_t kPteFrameMask = 0x000ffffffffff000ULL;

struct PageFlags {
  bool writable = true;
  bool user = true;
  bool global = false;
  bool executable = true;
};

// Structural guest-walk result (builder-side; no EPT, no cost accounting).
struct GuestWalk {
  bool ok = false;
  Gpa gpa = 0;
  uint64_t pte = 0;
  uint8_t page_shift = 12;
};

class AddressSpace {
 public:
  // `frames` allocates guest-physical frames for the table pages. Under the
  // Rootkernel's identity base EPT, GPA == HPA for this pool, so the builder
  // writes table bytes into host memory directly.
  static sb::StatusOr<std::unique_ptr<AddressSpace>> Create(HostPhysMem& mem,
                                                            FrameAllocator& frames,
                                                            uint16_t pcid);

  // Guest-physical address of the PML4 (the CR3 value, sans flags).
  Gpa root_gpa() const { return root_; }
  uint16_t pcid() const { return pcid_; }

  // Maps [va, va+page_size) -> [pa, ...); page_size is 4K or 2M.
  sb::Status Map(Gva va, Gpa pa, uint64_t page_size, const PageFlags& flags);

  // Maps a byte range with 4K pages, allocating backing frames from `frames`.
  // Returns the GPA of the first backing frame.
  sb::StatusOr<Gpa> MapAnonymous(Gva va, uint64_t len, const PageFlags& flags);

  // Maps an existing physical range (e.g. a shared buffer) at `va`.
  sb::Status MapRange(Gva va, Gpa pa, uint64_t len, const PageFlags& flags);

  sb::Status Unmap(Gva va);

  // Copies the upper-half (kernel) PML4 entries from `other`, sharing its
  // kernel subtree. Used to stitch the kernel mapping into every process.
  sb::Status ShareUpperHalf(const AddressSpace& other);

  GuestWalk WalkVa(Gva va) const;

  HostPhysMem& mem() { return *mem_; }
  FrameAllocator& frames() { return *frames_; }

 private:
  AddressSpace(HostPhysMem& mem, FrameAllocator& frames, Gpa root, uint16_t pcid)
      : mem_(&mem), frames_(&frames), root_(root), pcid_(pcid) {}

  sb::StatusOr<Gpa> EnsureTable(Gpa table, int index, bool user);

  HostPhysMem* mem_;
  FrameAllocator* frames_;
  Gpa root_;
  uint16_t pcid_;
};

}  // namespace hw

#endif  // SRC_HW_PAGING_H_
