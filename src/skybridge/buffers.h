// Shared-buffer plane: per-binding buffer regions carved into
// per-connection slices (paper Section 6.3 per-thread buffers), the slice
// resolution the in-place zero-copy API builds on, and the batch
// submission/completion ring geometry carved from a slice (DESIGN.md
// section 13).
//
// Region layout is fixed at registration. Slice ownership is handed out by
// a per-binding free-list allocator: a connection (thread) acquires a slice
// on first use and keeps it, with explicit exhaustion when more live
// connections than slices exist — the old `tid % num_slices` mapping let
// two threads silently share (and corrupt the ordering of) one slice.
// Steady-state calls only read the established assignment, so slice
// resolution stays safe under concurrent calls on different cores.

#ifndef SRC_SKYBRIDGE_BUFFERS_H_
#define SRC_SKYBRIDGE_BUFFERS_H_

#include <cstdint>
#include <span>

#include "src/base/status.h"
#include "src/mk/kernel.h"
#include "src/skybridge/config.h"
#include "src/skybridge/routing.h"

namespace skybridge {

// The caller's per-connection slice of a binding's buffer region: its
// guest VA (same in client and server) and, when the region has contiguous
// host backing, the host view used for borrowed messages. Both empty/0 for
// bufferless (chain) bindings.
struct SliceRef {
  hw::Gva va = 0;
  std::span<uint8_t> host;
};

// A submission/completion ring carved from one per-connection slice
// (DESIGN.md section 13). Layout, from the slice base:
//
//   [ header 64 B | descriptor[entries] 64 B each | payload arena ]
//
// The header holds the ring indices (sq_tail published by the client,
// sq_head consumed by the server); each descriptor is one cache line of
// {token, tag, reply_tag, req_len, reply_len, status, call_id}; entry slot
// token % entries owns the fixed payload_cap-byte span at
// arena + slot * payload_cap, used for the request bytes on submit and
// reused for the reply bytes on completion. Completion is posted by
// writing the reply fields and then the nonzero status word (the ring's
// "phase bit") — never by a per-call return crossing.
struct BatchRingView {
  static constexpr uint64_t kHeaderBytes = 64;
  static constexpr uint64_t kDescBytes = 64;
  // Header field offsets (u32 each).
  static constexpr uint64_t kSqTailOff = 0;
  static constexpr uint64_t kSqHeadOff = 8;
  // Descriptor field offsets.
  static constexpr uint64_t kDescToken = 0;     // u64
  static constexpr uint64_t kDescTag = 8;       // u64
  static constexpr uint64_t kDescReplyTag = 16; // u64
  static constexpr uint64_t kDescReqLen = 24;   // u32
  static constexpr uint64_t kDescReplyLen = 28; // u32
  static constexpr uint64_t kDescStatus = 32;   // u32: 0 pending, else 1+code
  // Span-tracing call id (span.h): rides the descriptor so the server-side
  // drain and the final poll attribute their trace events to the submitting
  // call without any host-side side table.
  static constexpr uint64_t kDescCallId = 40;   // u64

  uint8_t* base = nullptr;   // Host view of the slice.
  hw::Gva va = 0;            // Guest VA of the slice (same in both spaces).
  uint32_t entries = 0;      // Ring size (power of two).
  uint32_t payload_cap = 0;  // Per-entry payload arena capacity.

  bool valid() const { return base != nullptr && entries != 0; }
  uint32_t Slot(uint64_t token) const { return static_cast<uint32_t>(token % entries); }
  uint64_t DescOff(uint64_t token) const { return kHeaderBytes + Slot(token) * kDescBytes; }
  uint64_t ArenaOff(uint64_t token) const {
    return kHeaderBytes + entries * kDescBytes +
           static_cast<uint64_t>(Slot(token)) * payload_cap;
  }
  std::span<uint8_t> Payload(uint64_t token) const {
    return std::span<uint8_t>(base + ArenaOff(token), payload_cap);
  }
  hw::Gva PayloadVa(uint64_t token) const { return va + ArenaOff(token); }

  // Raw field access through the shared host view. Memory-ordering rules
  // (DESIGN.md section 13): the producer writes payload + descriptor fields
  // first and publishes with the index/status store; the consumer reads the
  // index/status first and the fields after. In the simulator all accesses
  // run in virtual time on one host thread per connection, so plain
  // loads/stores implement the protocol.
  uint32_t LoadU32(uint64_t off) const;
  void StoreU32(uint64_t off, uint32_t v) const;
  uint64_t LoadU64(uint64_t off) const;
  void StoreU64(uint64_t off, uint64_t v) const;
};

class BufferPool {
 public:
  BufferPool(mk::Kernel& kernel, const SkyBridgeConfig& config);

  // A freshly mapped shared-buffer region: base VA (same in both address
  // spaces), its slice geometry, and the host-contiguous view.
  struct Region {
    hw::Gva va = 0;
    uint64_t slice_stride = 0;
    uint32_t num_slices = 0;
    uint8_t* host_base = nullptr;
  };

  // Registration-time (slow path): maps a region at the same VA in client
  // and server, gives it one host-contiguous backing and carves it into
  // `buffer_slices` page-aligned slices of shared_buffer_bytes capacity.
  sb::StatusOr<Region> CreateRegion(mk::Process* client, mk::Process* server);

  // The caller's slice of `binding`'s region: returns the established
  // assignment, or takes the next slice off the binding's free list on the
  // connection's first use. ResourceExhausted when more live connections
  // than slices contend for the region — explicit, instead of the silent
  // sharing `tid % num_slices` produced. FailedPrecondition for bufferless
  // (chain) bindings.
  sb::StatusOr<SliceRef> AcquireSlice(Binding& binding, const mk::Thread* caller) const;

  // Read-only resolution of an already-acquired slice; empty SliceRef when
  // the connection never acquired one (or the binding has no buffer).
  SliceRef SliceOf(const Binding& binding, const mk::Thread* caller) const;

  // Carves the caller's slice into a submission/completion ring with
  // `batch_ring_entries` descriptors and an evenly divided payload arena.
  // Same exhaustion rules as AcquireSlice; InvalidArgument when the slice
  // is too small for the configured ring.
  sb::StatusOr<BatchRingView> CarveRing(Binding& binding, const mk::Thread* caller) const;

 private:
  SliceRef SliceAt(const Binding& binding, uint32_t index) const;

  mk::Kernel* kernel_;
  const SkyBridgeConfig* config_;
  hw::Gva next_va_;
};

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_BUFFERS_H_
