// Shared-buffer plane: per-binding buffer regions carved into
// per-connection slices (paper Section 6.3 per-thread buffers), and the
// slice resolution the in-place zero-copy API builds on.
//
// Region layout is fixed at registration; steady-state calls only *read*
// binding fields and compute a slice offset from the caller's tid, so slice
// resolution is safe under concurrent calls on different cores.

#ifndef SRC_SKYBRIDGE_BUFFERS_H_
#define SRC_SKYBRIDGE_BUFFERS_H_

#include <cstdint>
#include <span>

#include "src/base/status.h"
#include "src/mk/kernel.h"
#include "src/skybridge/config.h"
#include "src/skybridge/routing.h"

namespace skybridge {

// The caller's per-connection slice of a binding's buffer region: its
// guest VA (same in client and server) and, when the region has contiguous
// host backing, the host view used for borrowed messages. Both empty/0 for
// bufferless (chain) bindings.
struct SliceRef {
  hw::Gva va = 0;
  std::span<uint8_t> host;
};

class BufferPool {
 public:
  BufferPool(mk::Kernel& kernel, const SkyBridgeConfig& config);

  // A freshly mapped shared-buffer region: base VA (same in both address
  // spaces), its slice geometry, and the host-contiguous view.
  struct Region {
    hw::Gva va = 0;
    uint64_t slice_stride = 0;
    uint32_t num_slices = 0;
    uint8_t* host_base = nullptr;
  };

  // Registration-time (slow path): maps a region at the same VA in client
  // and server, gives it one host-contiguous backing and carves it into
  // `buffer_slices` page-aligned slices of shared_buffer_bytes capacity.
  sb::StatusOr<Region> CreateRegion(mk::Process* client, mk::Process* server);

  // The caller's slice of `binding`'s region (thread t -> slice
  // t % num_slices). Empty for bufferless (chain) bindings.
  SliceRef SliceOf(const Binding& binding, const mk::Thread* caller) const;

 private:
  mk::Kernel* kernel_;
  const SkyBridgeConfig* config_;
  hw::Gva next_va_;
};

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_BUFFERS_H_
