#include "src/skybridge/routing.h"

#include <algorithm>

#include "src/base/faultpoint.h"
#include "src/base/logging.h"
#include "src/base/telemetry/trace.h"
#include "src/vmm/rootkernel.h"

namespace skybridge {

using sb::telemetry::TraceEventType;

size_t BindingIndex::Hash(const mk::Process* client, ServerId server) {
  // splitmix64 finalizer over the pointer/id mix: cheap and well spread for
  // linear probing.
  uint64_t x = reinterpret_cast<uintptr_t>(client) ^ (server * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x);
}

Binding* BindingIndex::Find(const mk::Process* client, ServerId server) const {
  const size_t mask = slots_.size() - 1;
  for (size_t i = Hash(client, server) & mask;; i = (i + 1) & mask) {
    Binding* b = slots_[i];
    if (b == nullptr) {
      return nullptr;
    }
    if (b->client == client && b->server == server) {
      return b;
    }
  }
}

void BindingIndex::Insert(Binding* binding) {
  if ((size_ + 1) * 4 > slots_.size() * 3) {  // Keep load factor under 3/4.
    Grow();
  }
  const size_t mask = slots_.size() - 1;
  size_t i = Hash(binding->client, binding->server) & mask;
  while (slots_[i] != nullptr) {
    i = (i + 1) & mask;
  }
  slots_[i] = binding;
  ++size_;
}

void BindingIndex::Grow() {
  std::vector<Binding*> old = std::move(slots_);
  slots_.assign(old.size() * 2, nullptr);
  const size_t mask = slots_.size() - 1;
  for (Binding* b : old) {
    if (b == nullptr) {
      continue;
    }
    size_t i = Hash(b->client, b->server) & mask;
    while (slots_[i] != nullptr) {
      i = (i + 1) & mask;
    }
    slots_[i] = b;
  }
}

RouteTable::RouteTable(mk::Kernel& kernel, const SkyBridgeConfig& config)
    : kernel_(&kernel), config_(&config) {
  sb::telemetry::Registry& reg = kernel.machine().telemetry();
  lookup_hits_ = &reg.GetCounter("skybridge.lookup.hits");
  lookup_misses_ = &reg.GetCounter("skybridge.lookup.misses");
  bindings_revoked_ = &reg.GetCounter("skybridge.bindings.revoked");
  slot_installs_ = &reg.GetCounter("skybridge.eptp.slot_installs");
  slot_evictions_ = &reg.GetCounter("skybridge.eptp.slot_evictions");
  budget_ = std::min(config.eptp_working_set, static_cast<size_t>(hw::kEptpListCapacity));
  if (budget_ < 2) {
    budget_ = 2;  // Base view + at least one cacheable slot.
  }
  core_cache_.resize(static_cast<size_t>(kernel.machine().num_cores()));
  if (kernel.rootkernel() == nullptr) {
    return;
  }
  // Normalize every core to the known boot shape: slot 0 = base EPT, active
  // view = base. From here on, residency only ever appends or replaces in
  // place — the list never reshuffles.
  for (int i = 0; i < kernel.machine().num_cores(); ++i) {
    hw::Core& core = kernel.machine().core(i);
    SB_CHECK(core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kEptpListClear)) == 0)
        << "EPTP list clear failed during route-table init";
    SB_CHECK(core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kEptpListAppend), 0) !=
             vmm::kHypercallError)
        << "base-EPT append failed during route-table init";
    CoreSlotCache& cache = core_cache_[static_cast<size_t>(i)];
    cache.ids.assign(1, 0);
    cache.slot_of = {{0, 0}};
    cache.lru_prev.assign(1, kNoEptpSlot);
    cache.lru_next.assign(1, kNoEptpSlot);
    cache.pins.assign(1, 0);
  }
}

Binding* RouteTable::Find(const mk::Process* client, ServerId server) const {
  return index_.Find(client, server);
}

Binding* RouteTable::Lookup(mk::Thread* caller, ServerId server) {
  hw::Core& core = kernel_->machine().core(caller->core_id());
  mk::Thread::RouteCache& cache = caller->route_cache();
  if (cache.generation == generation() && cache.key == server && cache.route != nullptr) {
    Binding* cached = static_cast<Binding*>(cache.route);
    if (cached->client == caller->process()) {
      lookup_hits_->Add();
      SB_TRACE_EVENT(TraceEventType::kLookupHit, core.cycles(), core.id(),
                     caller->process()->pid(), server);
      return cached;
    }
  }
  lookup_misses_->Add();
  Binding* binding = index_.Find(caller->process(), server);
  SB_TRACE_EVENT(binding != nullptr ? TraceEventType::kLookupHit : TraceEventType::kLookupMiss,
                 core.cycles(), core.id(), caller->process()->pid(), server);
  if (binding != nullptr) {
    cache.key = server;
    cache.route = binding;
    cache.generation = generation();
  }
  return binding;
}

Binding* RouteTable::Adopt(std::unique_ptr<Binding> binding) {
  Binding* b = binding.get();
  ClientState& state = clients_[b->client];  // Node pointers are stable.
  b->lru_owner = &state;
  b->lru_next = state.lru_head;
  if (state.lru_head != nullptr) {
    state.lru_head->lru_prev = b;
  }
  state.lru_head = b;
  if (state.lru_tail == nullptr) {
    state.lru_tail = b;
  }
  index_.Insert(b);
  by_ept_[b->ept_id].push_back(b);
  bindings_.push_back(std::move(binding));
  return b;
}

void RouteTable::Touch(Binding& binding) {
  ClientState& state = *binding.lru_owner;
  if (state.lru_head == &binding) {
    return;
  }
  // Unlink, then relink at the head — pure pointer surgery, no traversal.
  if (binding.lru_prev != nullptr) {
    binding.lru_prev->lru_next = binding.lru_next;
  }
  if (binding.lru_next != nullptr) {
    binding.lru_next->lru_prev = binding.lru_prev;
  }
  if (state.lru_tail == &binding) {
    state.lru_tail = binding.lru_prev;
  }
  binding.lru_prev = nullptr;
  binding.lru_next = state.lru_head;
  state.lru_head->lru_prev = &binding;
  state.lru_head = &binding;
}

size_t RouteTable::EptpSlotOfId(const std::vector<uint64_t>& ids, uint64_t ept_id) {
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == ept_id) {
      return i;
    }
  }
  return kSlotNotFound;
}

sb::Status RouteTable::Install(hw::Core& core, Binding& binding, uint64_t pinned_ept) {
  auto& ids = binding.client->eptp_list_ids();
  // Slot 0 is the client's own EPT; bindings occupy the rest.
  while (ids.size() + 1 > config_->eptp_capacity) {
    // Evict the least-recently-used installed binding (paper Section 10),
    // walking the intrusive list from its cold end. Residency is left
    // alone: the per-core slot caches notice on their own timescale (an
    // un-installed binding fails the ArmGate installed check first).
    Binding* victim = nullptr;
    for (Binding* b = binding.lru_owner->lru_tail; b != nullptr; b = b->lru_prev) {
      if (b->installed && b != &binding && b->ept_id != pinned_ept && b->in_flight == 0) {
        victim = b;
        break;
      }
    }
    if (victim == nullptr) {
      return sb::ResourceExhausted("EPTP working set full and nothing evictable");
    }
    SB_TRACE_EVENT(TraceEventType::kEptEvict, core.cycles(), core.id(), victim->server,
                   ResidentSlot(core.id(), victim->ept_id));
    SB_LOG(kDebug) << "eptp evict " << sb::kv("client", binding.client->pid())
                   << " " << sb::kv("server", victim->server);
    victim->installed = false;
    ids.erase(std::remove(ids.begin(), ids.end(), victim->ept_id), ids.end());
  }
  if (EptpSlotOfId(ids, binding.ept_id) == kSlotNotFound) {
    ids.push_back(binding.ept_id);
  }
  binding.installed = true;
  return sb::OkStatus();
}

void RouteTable::LruUnlink(CoreSlotCache& cache, uint32_t slot) {
  if (cache.lru_prev[slot] != kNoEptpSlot) {
    cache.lru_next[cache.lru_prev[slot]] = cache.lru_next[slot];
  } else {
    cache.lru_head = cache.lru_next[slot];
  }
  if (cache.lru_next[slot] != kNoEptpSlot) {
    cache.lru_prev[cache.lru_next[slot]] = cache.lru_prev[slot];
  } else {
    cache.lru_tail = cache.lru_prev[slot];
  }
  cache.lru_prev[slot] = kNoEptpSlot;
  cache.lru_next[slot] = kNoEptpSlot;
}

void RouteTable::LruPushFront(CoreSlotCache& cache, uint32_t slot) {
  cache.lru_prev[slot] = kNoEptpSlot;
  cache.lru_next[slot] = cache.lru_head;
  if (cache.lru_head != kNoEptpSlot) {
    cache.lru_prev[cache.lru_head] = slot;
  } else {
    cache.lru_tail = slot;
  }
  cache.lru_head = slot;
}

void RouteTable::LruTouch(CoreSlotCache& cache, uint32_t slot) {
  if (cache.lru_head == slot) {
    return;
  }
  LruUnlink(cache, slot);
  LruPushFront(cache, slot);
}

uint32_t RouteTable::PickVictim(const hw::Core& core, CoreSlotCache& cache) const {
  const uint32_t active = static_cast<uint32_t>(core.vmcs().active_index);
  if (config_->lru_slot_eviction) {
    for (uint32_t s = cache.lru_tail; s != kNoEptpSlot; s = cache.lru_prev[s]) {
      if (s != active && cache.pins[s] == 0) {
        return s;
      }
    }
    return kNoEptpSlot;
  }
  // Naive ablation: round-robin over occupied slots >= 1, recency-blind.
  const uint32_t n = static_cast<uint32_t>(cache.ids.size());
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t s = cache.rr_cursor;
    cache.rr_cursor = (cache.rr_cursor + 1 >= n) ? 1 : cache.rr_cursor + 1;
    if (s == 0 || s >= n || cache.ids[s] == 0) {
      continue;
    }
    if (s != active && cache.pins[s] == 0) {
      return s;
    }
  }
  return kNoEptpSlot;
}

sb::StatusOr<uint32_t> RouteTable::EnsureResident(hw::Core& core, uint64_t ept_id,
                                                  bool faultable) {
  CoreSlotCache& cache = core_cache_[static_cast<size_t>(core.id())];
  auto it = cache.slot_of.find(ept_id);
  if (it != cache.slot_of.end()) {
    if (it->second != 0) {
      LruTouch(cache, it->second);
    }
    return it->second;
  }
  if (faultable && SB_FAULT_POINT(kFaultSlotInstall)) {
    return sb::Unavailable("rootkernel refused the slot install");
  }
  uint32_t slot = kNoEptpSlot;
  if (!cache.free_slots.empty()) {
    // Reuse a freed slot in place; nothing else moves.
    slot = cache.free_slots.back();
    if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kEptpListReplace), slot, ept_id) ==
        vmm::kHypercallError) {
      return sb::Internal("EPTP slot replace refused on a free slot");
    }
    cache.free_slots.pop_back();
    cache.ids[slot] = ept_id;
  } else if (cache.ids.size() < budget_) {
    // Grow the list while under the working-set budget.
    const uint64_t appended =
        core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kEptpListAppend), ept_id);
    if (appended == vmm::kHypercallError) {
      return sb::Internal("EPTP list append refused");
    }
    slot = static_cast<uint32_t>(appended);
    SB_CHECK(slot == cache.ids.size()) << "rootkernel append slot disagrees with the cache";
    cache.ids.push_back(ept_id);
    cache.lru_prev.push_back(kNoEptpSlot);
    cache.lru_next.push_back(kNoEptpSlot);
    cache.pins.push_back(0);
  } else {
    // Budget exhausted: evict a victim and take its slot in place.
    const uint32_t victim = PickVictim(core, cache);
    if (victim == kNoEptpSlot) {
      return sb::ResourceExhausted("every EPTP slot is pinned or active");
    }
    SB_TRACE_EVENT(TraceEventType::kEptEvict, core.cycles(), core.id(), cache.ids[victim],
                   victim);
    if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kEptpListReplace), victim, ept_id) ==
        vmm::kHypercallError) {
      return sb::Internal("EPTP slot replace refused");
    }
    slot_evictions_->Add();
    cache.slot_of.erase(cache.ids[victim]);
    LruUnlink(cache, victim);
    cache.ids[victim] = ept_id;
    slot = victim;
  }
  cache.slot_of.emplace(ept_id, slot);
  LruPushFront(cache, slot);
  slot_installs_->Add();
  SB_TRACE_EVENT(TraceEventType::kEptInstall, core.cycles(), core.id(), ept_id, slot);
  return slot;
}

sb::Status RouteTable::InstallProcessView(hw::Core& core, mk::Process* process, bool eager) {
  process_ept_ids_.insert(process->ept_id());
  SB_ASSIGN_OR_RETURN(const uint32_t slot, EnsureResident(core, process->ept_id(), false));
  core.vmcs().active_index = slot;
  if (!eager) {
    return sb::OkStatus();
  }
  // Migration prefetch: warm the destination core with the client's
  // installed bindings, most recently used first, but only into spare
  // capacity — prefetch never evicts what the core already runs hot.
  CoreSlotCache& cache = core_cache_[static_cast<size_t>(core.id())];
  auto it = clients_.find(process);
  if (it == clients_.end()) {
    return sb::OkStatus();
  }
  for (Binding* b = it->second.lru_head; b != nullptr; b = b->lru_next) {
    if (!b->installed || b->revoked) {
      continue;
    }
    if (cache.slot_of.find(b->ept_id) != cache.slot_of.end()) {
      continue;
    }
    if (cache.free_slots.empty() && cache.ids.size() >= budget_) {
      break;
    }
    SB_RETURN_IF_ERROR(EnsureResident(core, b->ept_id, false).status());
  }
  return sb::OkStatus();
}

void RouteTable::EvictResidency(hw::Core& core, uint64_t ept_id) {
  CoreSlotCache& cache = core_cache_[static_cast<size_t>(core.id())];
  auto it = cache.slot_of.find(ept_id);
  if (it == cache.slot_of.end() || it->second == 0) {
    return;
  }
  const uint32_t slot = it->second;
  if (cache.pins[slot] > 0 || slot == core.vmcs().active_index) {
    // Eviction ordering rule: a slot a live call depends on (or the active
    // view) keeps its translation; callers treat residual residency as
    // benign and retry later.
    return;
  }
  if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kEptpListReplace), slot, 0) ==
      vmm::kHypercallError) {
    return;
  }
  SB_TRACE_EVENT(TraceEventType::kEptEvict, core.cycles(), core.id(), ept_id, slot);
  slot_evictions_->Add();
  LruUnlink(cache, slot);
  cache.slot_of.erase(it);
  cache.ids[slot] = 0;
  cache.free_slots.push_back(slot);
}

void RouteTable::EvictResidencyEverywhere(uint64_t ept_id) {
  for (int i = 0; i < kernel_->machine().num_cores(); ++i) {
    EvictResidency(kernel_->machine().core(i), ept_id);
  }
}

uint32_t RouteTable::ResidentSlot(int core_id, uint64_t ept_id) const {
  const CoreSlotCache& cache = core_cache_[static_cast<size_t>(core_id)];
  auto it = cache.slot_of.find(ept_id);
  return it != cache.slot_of.end() ? it->second : kNoEptpSlot;
}

uint64_t RouteTable::EptIdAtSlot(int core_id, uint32_t slot) const {
  const CoreSlotCache& cache = core_cache_[static_cast<size_t>(core_id)];
  return slot < cache.ids.size() ? cache.ids[slot] : 0;
}

void RouteTable::PinSlot(int core_id, uint32_t slot) {
  CoreSlotCache& cache = core_cache_[static_cast<size_t>(core_id)];
  if (slot < cache.pins.size()) {
    ++cache.pins[slot];
  }
}

void RouteTable::UnpinSlot(int core_id, uint32_t slot) {
  CoreSlotCache& cache = core_cache_[static_cast<size_t>(core_id)];
  if (slot < cache.pins.size() && cache.pins[slot] > 0) {
    --cache.pins[slot];
  }
}

sb::Status RouteTable::Revoke(mk::Process* client, ServerId server) {
  Binding* binding = Find(client, server);
  if (binding == nullptr) {
    return sb::NotFound("client not registered to server");
  }
  if (!binding->revoked) {
    binding->revoked = true;
    binding->swept = false;
    generation_.fetch_add(1, std::memory_order_relaxed);  // Drop cached routes.
    bindings_revoked_->Add();
    hw::Core& core = kernel_->machine().core(0);
    SB_TRACE_EVENT(TraceEventType::kBindingRevoked, core.cycles(), core.id(), client->pid(),
                   server);
    SB_LOG(kDebug) << "binding revoked " << sb::kv("client", client->pid())
                   << " " << sb::kv("server", server);
  }
  SweepRevoked(client);
  return sb::OkStatus();
}

void RouteTable::FinishCall(Binding& binding) {
  if (binding.in_flight > 0) {
    --binding.in_flight;
  }
  ClientState* state = binding.lru_owner;
  if (state == nullptr) {
    return;
  }
  if (state->inflight > 0) {
    --state->inflight;
  }
  if (state->inflight == 0 && state->pending_revocations) {
    SweepRevoked(binding.client);
  }
}

void RouteTable::SweepRevoked(mk::Process* client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return;
  }
  ClientState& state = it->second;
  if (state.inflight > 0) {
    // Never scrub under a live call: the server-side reply still translates
    // through the binding EPT. The last drain of this client re-runs the
    // sweep.
    state.pending_revocations = true;
    return;
  }
  state.pending_revocations = false;
  auto& ids = client->eptp_list_ids();
  for (Binding* b = state.lru_head; b != nullptr; b = b->lru_next) {
    if (!b->revoked || b->swept) {
      continue;
    }
    if (b->installed) {
      ids.erase(std::remove(ids.begin(), ids.end(), b->ept_id), ids.end());
      b->installed = false;
    }
    if (revoke_scrub_) {
      // Facade teardown: zero the calling-key slot; under consolidation,
      // restore the client's CR3 translation inside the shared EPT.
      revoke_scrub_(*b);
    }
    b->swept = true;
    // Drop residency everywhere once no sibling still translates through
    // the EPT (consolidated siblings of other clients keep it resident).
    bool sibling_holds = false;
    auto siblings = by_ept_.find(b->ept_id);
    if (siblings != by_ept_.end()) {
      for (Binding* s : siblings->second) {
        if (s != b && !(s->revoked && s->swept)) {
          sibling_holds = true;
          break;
        }
      }
    }
    if (!sibling_holds) {
      EvictResidencyEverywhere(b->ept_id);
    }
  }
}

void RouteTable::FaultEvict(hw::Core& core, Binding& binding) {
  if (!binding.installed) {
    return;
  }
  SB_TRACE_EVENT(TraceEventType::kEptEvict, core.cycles(), core.id(), binding.server,
                 ResidentSlot(core.id(), binding.ept_id));
  auto& ids = binding.client->eptp_list_ids();
  ids.erase(std::remove(ids.begin(), ids.end(), binding.ept_id), ids.end());
  binding.installed = false;
  // Drop this core's residency too, so the retry leg exercises the full
  // re-install path (skips pinned/active slots, exactly like a concurrent
  // eviction would have to).
  EvictResidency(core, binding.ept_id);
}

std::vector<mk::Process*> RouteTable::ClientsOfServer(ServerId server) const {
  std::vector<mk::Process*> out;
  for (const auto& binding : bindings_) {
    if (binding->server == server && !binding->revoked) {
      out.push_back(binding->client);
    }
  }
  return out;
}

sb::Status RouteTable::CheckInvariants() const {
  for (const auto& entry : clients_) {
    mk::Process* client = entry.first;
    const ClientState& state = entry.second;
    size_t chain = 0;
    uint64_t inflight_sum = 0;
    const Binding* prev = nullptr;
    for (const Binding* b = state.lru_head; b != nullptr; b = b->lru_next) {
      if (++chain > bindings_.size()) {
        return sb::Internal("LRU cycle detected");
      }
      if (b->lru_prev != prev) {
        return sb::Internal("LRU prev link broken");
      }
      if (b->lru_owner != &state) {
        return sb::Internal("LRU owner mismatch");
      }
      if (b->client != client) {
        return sb::Internal("binding threaded onto the wrong client's LRU list");
      }
      inflight_sum += b->in_flight;
      prev = b;
    }
    if (state.lru_tail != prev) {
      return sb::Internal("LRU tail does not terminate the chain");
    }
    if (inflight_sum != state.inflight) {
      return sb::Internal("per-client in-flight sum out of sync");
    }
    const auto& ids = client->eptp_list_ids();
    if (ids.size() > config_->eptp_capacity) {
      return sb::Internal("client working set exceeds the configured capacity");
    }
    for (const Binding* b = state.lru_head; b != nullptr; b = b->lru_next) {
      const bool on_list = EptpSlotOfId(ids, b->ept_id) != kSlotNotFound;
      if (b->installed && !on_list) {
        return sb::Internal("installed binding missing from the client working set");
      }
      if (!b->installed && on_list) {
        // Consolidated siblings of the *same* client cannot share an id
        // (one binding per (client, server)), so an uninstalled binding's
        // id must be gone from its client's list.
        return sb::Internal("evicted binding still on the client working set");
      }
      if (b->revoked && b->installed && state.inflight == 0) {
        return sb::Internal("drained revoked binding still installed");
      }
      if (b->revoked && b->swept && b->installed) {
        return sb::Internal("swept binding still installed");
      }
      if (b->queued_submissions > config_->batch_ring_entries) {
        return sb::Internal("queued batch submissions exceed the ring geometry");
      }
      if (b->slices_carved) {
        // Free-list slice allocator: every slice is either free or owned by
        // exactly one connection, and owners never alias.
        if (b->slice_of_tid.size() + b->free_slices.size() != b->num_slices) {
          return sb::Internal("slice free list out of sync with assignments");
        }
        std::vector<bool> seen(b->num_slices, false);
        for (const auto& [tid, slice] : b->slice_of_tid) {
          if (slice >= b->num_slices || seen[slice]) {
            return sb::Internal("two connections share one buffer slice");
          }
          seen[slice] = true;
        }
        for (const uint32_t slice : b->free_slices) {
          if (slice >= b->num_slices || seen[slice]) {
            return sb::Internal("free slice also assigned to a connection");
          }
          seen[slice] = true;
        }
      }
    }
  }
  // ---- Per-core residency cross-check (DESIGN.md section 15) ----
  if (kernel_->rootkernel() == nullptr) {
    return sb::OkStatus();
  }
  for (int c = 0; c < kernel_->machine().num_cores(); ++c) {
    const CoreSlotCache& cache = core_cache_[static_cast<size_t>(c)];
    if (cache.ids.empty()) {
      continue;  // Core never initialized (no rootkernel at table birth).
    }
    const auto& mirror = kernel_->rootkernel()->core_eptp_state(c).slot_ids;
    if (cache.ids != mirror) {
      return sb::Internal("per-core slot cache disagrees with the rootkernel mirror");
    }
    if (cache.ids[0] != 0) {
      return sb::Internal("slot 0 no longer holds the base EPT");
    }
    if (cache.ids.size() > budget_ ||
        cache.lru_prev.size() != cache.ids.size() ||
        cache.lru_next.size() != cache.ids.size() || cache.pins.size() != cache.ids.size()) {
      return sb::Internal("slot cache shape out of bounds");
    }
    std::vector<bool> free_slot(cache.ids.size(), false);
    for (const uint32_t s : cache.free_slots) {
      if (s == 0 || s >= cache.ids.size() || free_slot[s]) {
        return sb::Internal("free-slot list corrupt");
      }
      if (cache.ids[s] != 0) {
        return sb::Internal("free slot does not hold the base EPT placeholder");
      }
      if (cache.pins[s] != 0) {
        return sb::Internal("free slot still pinned");
      }
      free_slot[s] = true;
    }
    // The LRU chain covers exactly the occupied slots >= 1, and slot_of is
    // their exact inverse.
    size_t occupied = 0;
    for (uint32_t s = 1; s < cache.ids.size(); ++s) {
      if (cache.ids[s] == 0) {
        if (!free_slot[s]) {
          return sb::Internal("empty slot missing from the free list");
        }
        continue;
      }
      ++occupied;
      auto it = cache.slot_of.find(cache.ids[s]);
      if (it == cache.slot_of.end() || it->second != s) {
        return sb::Internal("slot_of inverse map out of sync");
      }
    }
    if (cache.slot_of.size() != occupied + 1) {  // +1 for the base entry.
      return sb::Internal("slot_of carries ids not on the list");
    }
    size_t linked = 0;
    uint32_t prev_slot = kNoEptpSlot;
    for (uint32_t s = cache.lru_head; s != kNoEptpSlot; s = cache.lru_next[s]) {
      if (++linked > cache.ids.size()) {
        return sb::Internal("slot LRU cycle detected");
      }
      if (s == 0 || s >= cache.ids.size() || cache.ids[s] == 0) {
        return sb::Internal("slot LRU links a free or base slot");
      }
      if (cache.lru_prev[s] != prev_slot) {
        return sb::Internal("slot LRU prev link broken");
      }
      prev_slot = s;
    }
    if (cache.lru_tail != prev_slot) {
      return sb::Internal("slot LRU tail does not terminate the chain");
    }
    if (linked != occupied) {
      return sb::Internal("slot LRU chain does not cover the occupied slots");
    }
    // Every resident non-process EPT maps back to at least one live binding
    // (satellite: resident slot <-> live, non-revoked binding).
    for (uint32_t s = 1; s < cache.ids.size(); ++s) {
      const uint64_t id = cache.ids[s];
      if (id == 0 || process_ept_ids_.count(id) != 0) {
        continue;
      }
      auto holders = by_ept_.find(id);
      bool live = false;
      if (holders != by_ept_.end()) {
        for (const Binding* b : holders->second) {
          if (!(b->revoked && b->swept)) {
            live = true;
            break;
          }
        }
      }
      if (!live) {
        return sb::Internal("resident slot maps to no live binding");
      }
    }
  }
  return sb::OkStatus();
}

uint64_t RouteTable::InFlightCalls() const {
  uint64_t total = 0;
  for (const auto& entry : clients_) {
    total += entry.second.inflight;
  }
  return total;
}

uint64_t RouteTable::QueuedSubmissions() const {
  uint64_t total = 0;
  for (const auto& binding : bindings_) {
    total += binding->queued_submissions;
  }
  return total;
}

sb::StatusOr<size_t> RouteTable::InstalledBindings(const mk::Process* client) const {
  size_t count = 0;
  auto it = clients_.find(const_cast<mk::Process*>(client));
  if (it == clients_.end()) {
    return count;
  }
  for (const Binding* b = it->second.lru_head; b != nullptr; b = b->lru_next) {
    if (b->installed) {
      ++count;
    }
  }
  return count;
}

}  // namespace skybridge
