#include "src/skybridge/routing.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/telemetry/trace.h"

namespace skybridge {

using sb::telemetry::TraceEventType;

size_t BindingIndex::Hash(const mk::Process* client, ServerId server) {
  // splitmix64 finalizer over the pointer/id mix: cheap and well spread for
  // linear probing.
  uint64_t x = reinterpret_cast<uintptr_t>(client) ^ (server * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x);
}

Binding* BindingIndex::Find(const mk::Process* client, ServerId server) const {
  const size_t mask = slots_.size() - 1;
  for (size_t i = Hash(client, server) & mask;; i = (i + 1) & mask) {
    Binding* b = slots_[i];
    if (b == nullptr) {
      return nullptr;
    }
    if (b->client == client && b->server == server) {
      return b;
    }
  }
}

void BindingIndex::Insert(Binding* binding) {
  if ((size_ + 1) * 4 > slots_.size() * 3) {  // Keep load factor under 3/4.
    Grow();
  }
  const size_t mask = slots_.size() - 1;
  size_t i = Hash(binding->client, binding->server) & mask;
  while (slots_[i] != nullptr) {
    i = (i + 1) & mask;
  }
  slots_[i] = binding;
  ++size_;
}

void BindingIndex::Grow() {
  std::vector<Binding*> old = std::move(slots_);
  slots_.assign(old.size() * 2, nullptr);
  const size_t mask = slots_.size() - 1;
  for (Binding* b : old) {
    if (b == nullptr) {
      continue;
    }
    size_t i = Hash(b->client, b->server) & mask;
    while (slots_[i] != nullptr) {
      i = (i + 1) & mask;
    }
    slots_[i] = b;
  }
}

RouteTable::RouteTable(mk::Kernel& kernel, const SkyBridgeConfig& config)
    : kernel_(&kernel), config_(&config) {
  sb::telemetry::Registry& reg = kernel.machine().telemetry();
  lookup_hits_ = &reg.GetCounter("skybridge.lookup.hits");
  lookup_misses_ = &reg.GetCounter("skybridge.lookup.misses");
  bindings_revoked_ = &reg.GetCounter("skybridge.bindings.revoked");
}

Binding* RouteTable::Find(const mk::Process* client, ServerId server) const {
  return index_.Find(client, server);
}

Binding* RouteTable::Lookup(mk::Thread* caller, ServerId server) {
  hw::Core& core = kernel_->machine().core(caller->core_id());
  mk::Thread::RouteCache& cache = caller->route_cache();
  if (cache.generation == generation() && cache.key == server && cache.route != nullptr) {
    Binding* cached = static_cast<Binding*>(cache.route);
    if (cached->client == caller->process()) {
      lookup_hits_->Add();
      SB_TRACE_EVENT(TraceEventType::kLookupHit, core.cycles(), core.id(),
                     caller->process()->pid(), server);
      return cached;
    }
  }
  lookup_misses_->Add();
  Binding* binding = index_.Find(caller->process(), server);
  SB_TRACE_EVENT(binding != nullptr ? TraceEventType::kLookupHit : TraceEventType::kLookupMiss,
                 core.cycles(), core.id(), caller->process()->pid(), server);
  if (binding != nullptr) {
    cache.key = server;
    cache.route = binding;
    cache.generation = generation();
  }
  return binding;
}

Binding* RouteTable::Adopt(std::unique_ptr<Binding> binding) {
  Binding* b = binding.get();
  ClientState& state = clients_[b->client];  // Node pointers are stable.
  b->lru_owner = &state;
  b->lru_next = state.lru_head;
  if (state.lru_head != nullptr) {
    state.lru_head->lru_prev = b;
  }
  state.lru_head = b;
  if (state.lru_tail == nullptr) {
    state.lru_tail = b;
  }
  index_.Insert(b);
  bindings_.push_back(std::move(binding));
  return b;
}

void RouteTable::Touch(Binding& binding) {
  ClientState& state = *binding.lru_owner;
  if (state.lru_head == &binding) {
    return;
  }
  // Unlink, then relink at the head — pure pointer surgery, no traversal.
  if (binding.lru_prev != nullptr) {
    binding.lru_prev->lru_next = binding.lru_next;
  }
  if (binding.lru_next != nullptr) {
    binding.lru_next->lru_prev = binding.lru_prev;
  }
  if (state.lru_tail == &binding) {
    state.lru_tail = binding.lru_prev;
  }
  binding.lru_prev = nullptr;
  binding.lru_next = state.lru_head;
  state.lru_head->lru_prev = &binding;
  state.lru_head = &binding;
}

size_t RouteTable::EptpSlotOfId(const std::vector<uint64_t>& ids, uint64_t ept_id) {
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == ept_id) {
      return i;
    }
  }
  return kSlotNotFound;
}

void RouteTable::RefreshEptpSlots(mk::Process* client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return;
  }
  const auto& ids = client->eptp_list_ids();
  std::unordered_map<uint64_t, uint32_t> slot_of;
  slot_of.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    slot_of.emplace(ids[i], static_cast<uint32_t>(i));
  }
  for (Binding* b = it->second.lru_head; b != nullptr; b = b->lru_next) {
    if (!b->installed) {
      b->eptp_slot = kNoEptpSlot;
      continue;
    }
    auto found = slot_of.find(b->ept_id);
    SB_CHECK(found != slot_of.end()) << "installed binding missing from the EPTP list";
    b->eptp_slot = found->second;
  }
}

sb::Status RouteTable::Install(hw::Core& core, Binding& binding, uint64_t pinned_ept) {
  auto& ids = binding.client->eptp_list_ids();
  bool reshuffled = false;
  // Slot 0 is the client's own EPT; bindings occupy the rest.
  while (ids.size() + 1 > config_->eptp_capacity) {
    // Evict the least-recently-used installed binding (paper Section 10),
    // walking the intrusive list from its cold end.
    Binding* victim = nullptr;
    for (Binding* b = binding.lru_owner->lru_tail; b != nullptr; b = b->lru_prev) {
      if (b->installed && b != &binding && b->ept_id != pinned_ept && b->in_flight == 0) {
        victim = b;
        break;
      }
    }
    if (victim == nullptr) {
      return sb::ResourceExhausted("EPTP list full and nothing evictable");
    }
    SB_TRACE_EVENT(TraceEventType::kEptEvict, core.cycles(), core.id(), victim->server,
                   victim->eptp_slot);
    SB_LOG(kDebug) << "eptp evict " << sb::kv("client", binding.client->pid())
                   << " " << sb::kv("server", victim->server)
                   << " " << sb::kv("slot", victim->eptp_slot);
    victim->installed = false;
    victim->eptp_slot = kNoEptpSlot;
    ids.erase(std::remove(ids.begin(), ids.end(), victim->ept_id), ids.end());
    reshuffled = true;  // Later slots shifted down; caches are now stale.
  }
  const size_t existing = EptpSlotOfId(ids, binding.ept_id);
  if (existing == kSlotNotFound) {
    ids.push_back(binding.ept_id);
    binding.eptp_slot = static_cast<uint32_t>(ids.size() - 1);
  } else {
    binding.eptp_slot = static_cast<uint32_t>(existing);
  }
  binding.installed = true;
  if (reshuffled) {
    // Central invalidation point: recompute every cached slot for this
    // client so no binding carries a stale index.
    RefreshEptpSlots(binding.client);
  }
  // Reinstall the EPTP list on every core currently running this client.
  for (int i = 0; i < kernel_->machine().num_cores(); ++i) {
    if (kernel_->current_process(i) == binding.client) {
      SB_RETURN_IF_ERROR(kernel_->ContextSwitchTo(kernel_->machine().core(i), binding.client));
    }
  }
  return sb::OkStatus();
}

sb::Status RouteTable::Revoke(mk::Process* client, ServerId server) {
  Binding* binding = Find(client, server);
  if (binding == nullptr) {
    return sb::NotFound("client not registered to server");
  }
  if (!binding->revoked) {
    binding->revoked = true;
    generation_.fetch_add(1, std::memory_order_relaxed);  // Drop cached routes.
    bindings_revoked_->Add();
    hw::Core& core = kernel_->machine().core(0);
    SB_TRACE_EVENT(TraceEventType::kBindingRevoked, core.cycles(), core.id(), client->pid(),
                   server);
    SB_LOG(kDebug) << "binding revoked " << sb::kv("client", client->pid())
                   << " " << sb::kv("server", server);
  }
  SweepRevoked(client);
  return sb::OkStatus();
}

void RouteTable::FinishCall(Binding& binding) {
  if (binding.in_flight > 0) {
    --binding.in_flight;
  }
  ClientState* state = binding.lru_owner;
  if (state == nullptr) {
    return;
  }
  if (state->inflight > 0) {
    --state->inflight;
  }
  if (state->inflight == 0 && state->pending_revocations) {
    SweepRevoked(binding.client);
  }
}

void RouteTable::SweepRevoked(mk::Process* client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return;
  }
  ClientState& state = it->second;
  if (state.inflight > 0) {
    // Never reshape the EPTP list under a live call: the last drain of this
    // client re-runs the sweep.
    state.pending_revocations = true;
    return;
  }
  state.pending_revocations = false;
  auto& ids = client->eptp_list_ids();
  bool removed = false;
  for (Binding* b = state.lru_head; b != nullptr; b = b->lru_next) {
    if (!b->revoked || !b->installed) {
      continue;
    }
    ids.erase(std::remove(ids.begin(), ids.end(), b->ept_id), ids.end());
    b->installed = false;
    b->eptp_slot = kNoEptpSlot;
    removed = true;
  }
  if (!removed) {
    return;
  }
  RefreshEptpSlots(client);
  for (int i = 0; i < kernel_->machine().num_cores(); ++i) {
    if (kernel_->current_process(i) == client) {
      (void)kernel_->ContextSwitchTo(kernel_->machine().core(i), client);
    }
  }
}

void RouteTable::FaultEvict(hw::Core& core, Binding& binding) {
  if (!binding.installed) {
    return;
  }
  SB_TRACE_EVENT(TraceEventType::kEptEvict, core.cycles(), core.id(), binding.server,
                 binding.eptp_slot);
  auto& ids = binding.client->eptp_list_ids();
  ids.erase(std::remove(ids.begin(), ids.end(), binding.ept_id), ids.end());
  binding.installed = false;
  binding.eptp_slot = kNoEptpSlot;
  RefreshEptpSlots(binding.client);
  for (int i = 0; i < kernel_->machine().num_cores(); ++i) {
    if (kernel_->current_process(i) == binding.client) {
      (void)kernel_->ContextSwitchTo(kernel_->machine().core(i), binding.client);
    }
  }
}

sb::Status RouteTable::CheckInvariants() const {
  for (const auto& entry : clients_) {
    mk::Process* client = entry.first;
    const ClientState& state = entry.second;
    size_t chain = 0;
    uint64_t inflight_sum = 0;
    const Binding* prev = nullptr;
    for (const Binding* b = state.lru_head; b != nullptr; b = b->lru_next) {
      if (++chain > bindings_.size()) {
        return sb::Internal("LRU cycle detected");
      }
      if (b->lru_prev != prev) {
        return sb::Internal("LRU prev link broken");
      }
      if (b->lru_owner != &state) {
        return sb::Internal("LRU owner mismatch");
      }
      if (b->client != client) {
        return sb::Internal("binding threaded onto the wrong client's LRU list");
      }
      inflight_sum += b->in_flight;
      prev = b;
    }
    if (state.lru_tail != prev) {
      return sb::Internal("LRU tail does not terminate the chain");
    }
    if (inflight_sum != state.inflight) {
      return sb::Internal("per-client in-flight sum out of sync");
    }
    const auto& ids = client->eptp_list_ids();
    if (ids.size() > config_->eptp_capacity) {
      return sb::Internal("EPTP list exceeds the configured capacity");
    }
    for (const Binding* b = state.lru_head; b != nullptr; b = b->lru_next) {
      if (b->installed) {
        if (b->eptp_slot == kNoEptpSlot || b->eptp_slot >= ids.size() ||
            ids[b->eptp_slot] != b->ept_id) {
          return sb::Internal("installed binding's cached slot disagrees with the EPTP list");
        }
      } else if (b->eptp_slot != kNoEptpSlot) {
        return sb::Internal("evicted binding still caches a slot");
      }
      if (b->revoked && b->installed && state.inflight == 0) {
        return sb::Internal("drained revoked binding still installed");
      }
      if (b->queued_submissions > config_->batch_ring_entries) {
        return sb::Internal("queued batch submissions exceed the ring geometry");
      }
      if (b->slices_carved) {
        // Free-list slice allocator: every slice is either free or owned by
        // exactly one connection, and owners never alias.
        if (b->slice_of_tid.size() + b->free_slices.size() != b->num_slices) {
          return sb::Internal("slice free list out of sync with assignments");
        }
        std::vector<bool> seen(b->num_slices, false);
        for (const auto& [tid, slice] : b->slice_of_tid) {
          if (slice >= b->num_slices || seen[slice]) {
            return sb::Internal("two connections share one buffer slice");
          }
          seen[slice] = true;
        }
        for (const uint32_t slice : b->free_slices) {
          if (slice >= b->num_slices || seen[slice]) {
            return sb::Internal("free slice also assigned to a connection");
          }
          seen[slice] = true;
        }
      }
    }
  }
  return sb::OkStatus();
}

uint64_t RouteTable::InFlightCalls() const {
  uint64_t total = 0;
  for (const auto& entry : clients_) {
    total += entry.second.inflight;
  }
  return total;
}

uint64_t RouteTable::QueuedSubmissions() const {
  uint64_t total = 0;
  for (const auto& binding : bindings_) {
    total += binding->queued_submissions;
  }
  return total;
}

sb::StatusOr<size_t> RouteTable::InstalledBindings(const mk::Process* client) const {
  size_t count = 0;
  auto it = clients_.find(const_cast<mk::Process*>(client));
  if (it == clients_.end()) {
    return count;
  }
  for (const Binding* b = it->second.lru_head; b != nullptr; b = b->lru_next) {
    if (b->installed) {
      ++count;
    }
  }
  return count;
}

}  // namespace skybridge
