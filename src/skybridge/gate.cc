#include "src/skybridge/gate.h"

#include "src/base/faultpoint.h"
#include "src/base/logging.h"
#include "src/base/telemetry/trace.h"
#include "src/vmm/rootkernel.h"

namespace skybridge {
namespace {

// Section 6.3: the non-VMFUNC trampoline work costs 64 cycles per direction.
// The charged memory traffic (trampoline i-fetch, calling-key table read,
// stack install) accounts for ~20 of those when warm, so the flat charge is
// the remainder — the measured roundtrip lands on 2 x (134 + 64) = 396.
constexpr uint64_t kTrampolineLegCycles = 44;

// Batch drain (DESIGN.md section 13): per-entry ring work on the server
// side — descriptor read, completion-status publish, sq_head advance. Kept
// small so a depth-1 flush stays within a few percent of DirectServerCall.
constexpr uint64_t kDrainEntryCycles = 4;

using sb::telemetry::TraceEventType;

// Completion status word: 0 = pending, else 1 + ErrorCode so kOk posts as 1.
uint32_t StatusWord(sb::ErrorCode code) { return 1u + static_cast<uint32_t>(code); }

}  // namespace

Gate::Gate(mk::Kernel& kernel, const SkyBridgeConfig& config)
    : kernel_(&kernel), config_(&config) {
  for (int k = 0; k < kNumCrossingBackends; ++k) {
    backends_[k] = MakeCrossingBackend(static_cast<CrossingBackendKind>(k), kernel, config);
  }
  sb::telemetry::Registry& reg = kernel.machine().telemetry();
  aborted_calls_ = &reg.GetCounter("skybridge.ipc.aborted_calls");
  gate_rejections_ = &reg.GetCounter("skybridge.ipc.gate_rejections");
  phase_slot_fault_ = &reg.GetHistogram("skybridge.phase.slot_fault");
  phase_drain_ = &reg.GetHistogram("skybridge.phase.drain");
  phase_vmfunc_ = &reg.GetHistogram("skybridge.phase.vmfunc");
  phase_trampoline_ = &reg.GetHistogram("skybridge.phase.trampoline");
  phase_copy_ = &reg.GetHistogram("skybridge.phase.copy");
  phase_syscall_ = &reg.GetHistogram("skybridge.phase.syscall");
  phase_total_ = &reg.GetHistogram("skybridge.phase.total");
}

void Gate::ChargeTrampolineLeg(hw::Core& core, mk::CostBreakdown* bd) const {
  ChargeTrampolineLeg(core, bd, mk::kTrampolineVa);
}

void Gate::ChargeTrampolineLeg(hw::Core& core, mk::CostBreakdown* bd,
                               hw::Gva trampoline_va) const {
  core.AdvanceCycles(kTrampolineLegCycles);
  (void)core.FetchCode(trampoline_va, 128);
  if (bd != nullptr) {
    bd->others += kTrampolineLegCycles;
  }
}

sb::Status Gate::EnterServer(CallContext& ctx) const {
  const uint64_t before = ctx.core->cycles();
  SB_RETURN_IF_ERROR(ctx.backend->Enter(ctx));
  ctx.backend->RecordEnter(ctx.core->cycles() - before);
  return sb::OkStatus();
}

sb::Status Gate::ReturnToEntry(CallContext& ctx) const {
  const uint64_t before = ctx.core->cycles();
  SB_RETURN_IF_ERROR(ctx.backend->Return(ctx));
  if (ctx.backend->caps().uses_trampoline) {
    ChargeTrampolineLeg(*ctx.core, ctx.pbd, ctx.backend->trampoline_va());
  }
  ctx.backend->RecordReturn(ctx.core->cycles() - before);
  return sb::OkStatus();
}

bool Gate::CheckCallingKey(CallContext& ctx) const {
  if (!config_->calling_keys) {
    return true;
  }
  hw::Core& core = *ctx.core;
  const hw::Gva slot_va = mk::kCallingKeyTableVa + ctx.perm->key_slot * kKeySlotBytes;
  auto stored = core.ReadVirtU64(slot_va);
  if (!stored.ok()) {
    return false;
  }
  core.AdvanceCycles(8);  // Compare + branch.
  return *stored == ctx.perm->server_key;
}

void Gate::VerifyReturnKey(CallContext& ctx) const {
  if (!config_->calling_keys) {
    return;
  }
  // The client verifies the echoed per-call key (illegal-return defence).
  ctx.core->AdvanceCycles(8);
  (void)ctx.client_key;
}

sb::Status Gate::AbortServerCrash(CallContext& ctx) const {
  hw::Core& core = *ctx.core;
  // The server thread dies mid-handler, stranding the client in the
  // server's domain. The backend restores the entry domain (Rootkernel
  // kAbortToView for view-switch backends, a kernel reschedule for the
  // syscall fastpath), then the frame pop and caller wakeup are common.
  aborted_calls_->Add();
  ctx.backend->RecordAbort();
  SB_TRACE_EVENT(TraceEventType::kCallAborted, core.cycles(), core.id(), ctx.proc->pid(),
                 ctx.server->process->pid());
  SB_LOG(kDebug) << "handler crash " << sb::kv("client", ctx.proc->pid())
                 << " " << sb::kv("server", ctx.server->process->pid());
  SB_RETURN_IF_ERROR(ctx.backend->Abort(ctx));
  if (ctx.backend->caps().uses_trampoline) {
    // The popped frame's restore leg.
    ChargeTrampolineLeg(core, ctx.pbd, ctx.backend->trampoline_va());
  }
  kernel_->FinishAbortedCall(core, ctx.caller, ctx.pbd);
  RecordPhases(ctx);
  return sb::Aborted("server thread crashed mid-handler; call aborted");
}

Gate::ReplyVerdict Gate::ClassifyReply(const CallContext& ctx, const mk::Message& reply) const {
  ReplyVerdict verdict;
  // A borrowed reply whose bytes already live inside this connection's slice
  // was built in place: the reply copy is skipped entirely.
  if (!ctx.slice.host.empty() && reply.borrowed() && !reply.view.empty()) {
    const uint8_t* base = ctx.slice.host.data();
    const uint8_t* p = reply.view.data();
    verdict.in_place = p >= base && p + reply.view.size() <= base + ctx.slice.host.size();
  }
  // Return-gate integrity: a borrowed reply that straddles the slice
  // boundary is a corrupt descriptor — the server scribbled the pointer or
  // the length. Detected structurally here, or injected by
  // gate.reply_corrupt; either way the reply is rejected after the EPT view
  // is restored, never delivered.
  verdict.corrupt = SB_FAULT_POINT(kFaultReplyCorrupt);
  if (!verdict.corrupt && !ctx.slice.host.empty() && reply.borrowed() && !reply.view.empty() &&
      !verdict.in_place) {
    const uint8_t* base = ctx.slice.host.data();
    const uint8_t* p = reply.view.data();
    verdict.corrupt = p < base + ctx.slice.host.size() && p + reply.view.size() > base;
  }
  return verdict;
}

Gate::DrainOutcome Gate::DrainBatch(CallContext& ctx, const BatchRingView& ring,
                                    const std::function<void()>& refill) const {
  hw::Core& core = *ctx.core;
  ServerEntry& server = *ctx.server;
  DrainOutcome out;
  const uint64_t drain_start = core.cycles();
  // One server stack install per crossing — not per entry; that is the
  // point of the batch.
  const hw::Gva stack_va = mk::kServerStacksVa + ctx.server_id * 256 * kServerStackBytes +
                           ctx.perm->key_slot * kServerStackBytes;
  (void)core.TouchData(stack_va + kServerStackBytes - 64, 64, true);

  uint64_t sq_head = ring.LoadU64(BatchRingView::kSqHeadOff);
  uint32_t rounds_left = std::max<uint32_t>(1, config_->max_drain_rounds);
  while (rounds_left-- > 0) {
    // Re-poll the doorbell: submissions that arrived during the previous
    // round drain on this crossing too (adaptive drain).
    const uint64_t sq_tail = ring.LoadU64(BatchRingView::kSqTailOff);
    if (sq_head == sq_tail) {
      break;
    }
    ++out.rounds;
    while (sq_head != sq_tail) {
      const uint64_t token = sq_head;
      const uint64_t desc = ring.DescOff(token);
      core.AdvanceCycles(kDrainEntryCycles);
      (void)core.TouchData(ring.va + desc, BatchRingView::kDescBytes, true);
      const uint64_t tag = ring.LoadU64(desc + BatchRingView::kDescTag);
      const uint32_t req_len = ring.LoadU32(desc + BatchRingView::kDescReqLen);
      const std::span<uint8_t> payload = ring.Payload(token);
      const mk::Message request = mk::Message::Borrowed(
          tag, std::span<const uint8_t>(payload.data(), req_len));
      SB_TRACE_EVENT(TraceEventType::kBatchDrain, core.cycles(), core.id(),
                     ring.LoadU64(desc + BatchRingView::kDescCallId), token);

      if (SB_FAULT_POINT(kFaultHandlerCrash)) {
        // Server thread dies on this entry: post its Aborted completion,
        // leave the rest of the ring untouched (a later flush drains them)
        // and tell the facade to abort the crossing.
        ring.StoreU64(desc + BatchRingView::kDescReplyTag, 0);
        ring.StoreU32(desc + BatchRingView::kDescReplyLen, 0);
        ring.StoreU32(desc + BatchRingView::kDescStatus, StatusWord(sb::ErrorCode::kAborted));
        ring.StoreU64(BatchRingView::kSqHeadOff, ++sq_head);
        ++out.completed;
        out.crashed = true;
        phase_drain_->Record(core.cycles() - drain_start);
        return out;
      }

      mk::CallEnv env{*kernel_, core, *server.process, request};
      env.reply_buffer = payload;
      env.reply_buffer_va = ring.PayloadVa(token);
      SB_TRACE_EVENT(TraceEventType::kHandlerEnter, core.cycles(), core.id(),
                     server.process->pid());
      mk::Message reply = server.handler(env);
      SB_TRACE_EVENT(TraceEventType::kHandlerExit, core.cycles(), core.id(),
                     server.process->pid(), 0);

      // Per-entry return gate: the reply must live within (or fit into) the
      // ENTRY's payload span. A borrowed descriptor that escapes it is
      // corrupt, exactly like the single-call return gate — the entry is
      // rejected, the batch continues.
      sb::ErrorCode code = sb::ErrorCode::kOk;
      uint32_t reply_len = 0;
      bool in_place = false;
      bool corrupt = SB_FAULT_POINT(kFaultReplyCorrupt);
      if (!corrupt && reply.borrowed() && !reply.view.empty()) {
        const uint8_t* base = payload.data();
        const uint8_t* p = reply.view.data();
        in_place = p >= base && p + reply.view.size() <= base + payload.size();
        corrupt = !in_place && !ctx.slice.host.empty() &&
                  p < ctx.slice.host.data() + ctx.slice.host.size() &&
                  p + reply.view.size() > ctx.slice.host.data();
      }
      if (corrupt || reply.size() > payload.size()) {
        code = sb::ErrorCode::kOutOfRange;
        gate_rejections_->Add();
      } else {
        reply_len = static_cast<uint32_t>(reply.size());
        if (!in_place && reply_len > 0) {
          // Completion posting: owned reply bytes land in the entry's span.
          const uint64_t before = core.cycles();
          (void)core.WriteVirt(ring.PayloadVa(token), reply.payload());
          ctx.pbd->copy += core.cycles() - before;
        }
      }
      ring.StoreU64(desc + BatchRingView::kDescReplyTag, reply.tag);
      ring.StoreU32(desc + BatchRingView::kDescReplyLen, reply_len);
      // Publish order: reply fields first, status word last (the ring's
      // phase bit; see DESIGN.md section 13 for the ordering rules).
      ring.StoreU32(desc + BatchRingView::kDescStatus, StatusWord(code));
      ring.StoreU64(BatchRingView::kSqHeadOff, ++sq_head);
      ++out.completed;
    }
    if (rounds_left > 0 && refill) {
      refill();
    }
  }
  phase_drain_->Record(core.cycles() - drain_start);
  return out;
}

void Gate::RecordPhases(const CallContext& ctx) const {
  phase_vmfunc_->Record(ctx.pbd->vmfunc - ctx.bd_before.vmfunc);
  phase_trampoline_->Record(ctx.pbd->others - ctx.bd_before.others);
  phase_copy_->Record(ctx.pbd->copy - ctx.bd_before.copy);
  phase_syscall_->Record(ctx.pbd->syscall_sysret - ctx.bd_before.syscall_sysret);
  phase_total_->Record(ctx.core->cycles() - ctx.start_cycles);
}

void Gate::RecordSlotFault(uint64_t cycles) const { phase_slot_fault_->Record(cycles); }

uint64_t Gate::PerCallKey(const mk::Thread& caller, uint64_t cycles) {
  uint64_t x = (static_cast<uint64_t>(caller.tid()) << 32) ^ cycles ^
               (reinterpret_cast<uintptr_t>(&caller) * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace skybridge
