// Crossing backends (DESIGN.md section 16).
//
// The domain-switch primitive is pluggable: a CrossingBackend owns the
// enter/return/abort legs of a call crossing plus the per-leg cost model and
// a capability descriptor the pipeline uses to gate backend-specific
// machinery (EPTP slot residency, trampoline legs, binary rewriting).
//
// Three implementations:
//   kEptp    — the paper's VMFUNC EPTP switch (~134 cycles/leg, hypervisor-
//              validated, full memory isolation).
//   kMpk     — Intel MPK protection-key switch (~20-cycle WRPKRU/leg).
//              Cheaper, but PKRU is unprivileged: any code can forge the
//              rights write, so cross-domain reads are not hardware-blocked
//              (see SkyBridge::ProbeCrossDomainRead and the security tests).
//   kSyscall — seL4-style kernel fastpath baseline: SYSCALL into the kernel,
//              CR3 address-space switch, SYSRET. No rewriting, no trampoline,
//              no EPTP slots; the kernel mediates every leg.
//
// Backends are stateless per call — all per-call state rides in CallContext —
// so one instance per kind is shared by every binding of that kind.

#ifndef SRC_SKYBRIDGE_BACKEND_H_
#define SRC_SKYBRIDGE_BACKEND_H_

#include <cstdint>
#include <memory>

#include "src/base/status.h"
#include "src/base/telemetry/metrics.h"
#include "src/mk/kernel.h"
#include "src/mk/process.h"
#include "src/skybridge/config.h"

namespace skybridge {

struct CallContext;

// What a backend's crossing primitive provides / requires. The pipeline keys
// off these instead of the kind, so a fourth backend is a new class, not a
// new special case.
struct BackendCaps {
  // Cross-domain memory is inaccessible without the hardware's cooperation.
  // True for EPTP (hypervisor-validated view switch) and syscall (separate
  // CR3); false for MPK, whose PKRU rights register is forgeable from user
  // mode — the documented weaker envelope.
  bool isolates_memory = true;
  // Crossings target per-core EPTP-list view slots: the binding must be
  // installed/resident and slots are pinned for the life of the call.
  bool uses_view_slots = true;
  // Registration must scrub the backend's gate-instruction byte pattern from
  // the process image (Section 5 rewriting).
  bool needs_rewrite = true;
  // Crossings run through a user-mode trampoline page whose save/restore legs
  // are charged per direction.
  bool uses_trampoline = true;
  // A crashed handler is unwound by the Rootkernel's kAbortToView hypercall
  // (ticks the vmm abort counter). False when the microkernel itself unwinds.
  bool kernel_mediated_abort = true;
};

class CrossingBackend {
 public:
  CrossingBackend(CrossingBackendKind kind, mk::Kernel& kernel,
                  const SkyBridgeConfig& config);
  virtual ~CrossingBackend() = default;

  CrossingBackend(const CrossingBackend&) = delete;
  CrossingBackend& operator=(const CrossingBackend&) = delete;

  CrossingBackendKind kind() const { return kind_; }
  const char* name() const { return CrossingBackendName(kind_); }
  virtual const BackendCaps& caps() const = 0;

  // Architectural cost of one crossing leg's switch primitive (the VMFUNC /
  // WRPKRU / syscall+CR3+sysret component — trampoline and copy legs are
  // charged separately by the pipeline).
  virtual uint64_t LegCycles(const hw::CostModel& costs) const = 0;

  // The trampoline page this backend's crossings fetch through (meaningful
  // only when caps().uses_trampoline).
  virtual hw::Gva trampoline_va() const { return mk::kTrampolineVa; }

  // Entry leg: cross from the armed client context into the server domain.
  virtual sb::Status Enter(CallContext& ctx) const = 0;
  // Return leg: cross back to the entry domain.
  virtual sb::Status Return(CallContext& ctx) const = 0;
  // Crash unwind: restore the entry domain after the handler died (the
  // view/address-space half only — frame pop and kernel wakeup are common
  // and stay in the gate).
  virtual sb::Status Abort(CallContext& ctx) const = 0;

  // skybridge.crossing.<name>.* accounting, folded in by the gate wrappers.
  void RecordEnter(uint64_t cycles) const {
    enters_->Add();
    leg_cycles_->Record(cycles);
  }
  void RecordReturn(uint64_t cycles) const {
    returns_->Add();
    leg_cycles_->Record(cycles);
  }
  void RecordAbort() const { aborts_->Add(); }

 protected:
  CrossingBackendKind kind_;
  mk::Kernel* kernel_;
  const SkyBridgeConfig* config_;
  sb::telemetry::Counter* enters_;
  sb::telemetry::Counter* returns_;
  sb::telemetry::Counter* aborts_;
  sb::telemetry::LatencyHistogram* leg_cycles_;
};

// Builds the backend implementation for `kind`.
std::unique_ptr<CrossingBackend> MakeCrossingBackend(CrossingBackendKind kind,
                                                     mk::Kernel& kernel,
                                                     const SkyBridgeConfig& config);

// PKRU value granting access to `pkey`'s domain (plus key 0, the default
// domain): all other keys keep access-disable | write-disable set.
uint32_t PkruAllow(uint8_t pkey);
// The deny-everything-but-key-0 resting value client code runs under.
inline constexpr uint32_t kPkruDefault = 0xfffffffcu;

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_BACKEND_H_
