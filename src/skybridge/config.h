// SkyBridge library-wide types shared by the control-plane modules
// (routing, gate, buffers) and the public facade in skybridge.h.
//
// Kept free of any module dependency so routing.h / gate.h / buffers.h can
// include it without cycling back into skybridge.h.

#ifndef SRC_SKYBRIDGE_CONFIG_H_
#define SRC_SKYBRIDGE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "src/hw/vmcs.h"

namespace skybridge {

using ServerId = uint64_t;

// ---- Crossing backends (DESIGN.md section 16) ----
// The domain-switch primitive a binding crosses on. Selected per binding at
// registration time; the default comes from config.crossing_backend.
enum class CrossingBackendKind : uint8_t {
  kEptp = 0,     // VMFUNC EPTP switch — the paper's design (~134 cycles/leg).
  kMpk = 1,      // WRPKRU protection-key switch (~20 cycles/leg, weaker
                 // isolation: PKRU is unprivileged and forgeable).
  kSyscall = 2,  // seL4-style kernel fastpath (syscall + CR3 switch + sysret).
};

inline constexpr int kNumCrossingBackends = 3;

inline constexpr const char* CrossingBackendName(CrossingBackendKind kind) {
  switch (kind) {
    case CrossingBackendKind::kEptp:
      return "eptp";
    case CrossingBackendKind::kMpk:
      return "mpk";
    case CrossingBackendKind::kSyscall:
      return "syscall";
  }
  return "unknown";
}

// Default backend for new worlds: the SB_CROSSING_BACKEND environment
// variable ({eptp, mpk, syscall}; anything else falls back to eptp) so the CI
// backend matrix can steer whole test binaries without code changes.
inline CrossingBackendKind DefaultCrossingBackend() {
  const char* env = std::getenv("SB_CROSSING_BACKEND");
  if (env != nullptr) {
    if (std::strcmp(env, "mpk") == 0) {
      return CrossingBackendKind::kMpk;
    }
    if (std::strcmp(env, "syscall") == 0) {
      return CrossingBackendKind::kSyscall;
    }
  }
  return CrossingBackendKind::kEptp;
}

// ---- Registration modes (staged pipeline, DESIGN.md section 17) ----
// How a process's code pages get their gate-pattern scrub:
//   kEager    — scan/rewrite the whole image at registration (the paper's
//               Section 5 behaviour; the default).
//   kLazy     — leave code pages non-executable in the EPTs and rewrite one
//               page per exec-violation fault (rewrite-on-first-execute).
//   kSnapshot — restore post-rewrite state from a registration snapshot of
//               an identical template image; falls back to an eager prepare
//               (auto-captured into the snapshot library) on the first
//               sighting of an image.
enum class RegistrationMode : uint8_t {
  kEager = 0,
  kLazy = 1,
  kSnapshot = 2,
};

inline constexpr int kNumRegistrationModes = 3;

inline constexpr const char* RegistrationModeName(RegistrationMode mode) {
  switch (mode) {
    case RegistrationMode::kEager:
      return "eager";
    case RegistrationMode::kLazy:
      return "lazy";
    case RegistrationMode::kSnapshot:
      return "snapshot";
  }
  return "unknown";
}

// Default registration mode: the SB_REGISTRATION_MODE environment variable
// ({eager, lazy, snapshot}; anything else falls back to eager) so the CI
// matrix can steer whole test binaries without code changes.
inline RegistrationMode DefaultRegistrationMode() {
  const char* env = std::getenv("SB_REGISTRATION_MODE");
  if (env != nullptr) {
    if (std::strcmp(env, "lazy") == 0) {
      return RegistrationMode::kLazy;
    }
    if (std::strcmp(env, "snapshot") == 0) {
      return RegistrationMode::kSnapshot;
    }
  }
  return RegistrationMode::kEager;
}

// ---- Gate-frame layout constants (registration writes, the gate reads) ----
// Per-connection server stack size (Section 4.4).
inline constexpr uint64_t kServerStackBytes = 64 * 1024;
// Calling-key table entry: {key, client pid}.
inline constexpr uint64_t kKeySlotBytes = 16;

// ---- Fault-point catalog (src/base/faultpoint.h, DESIGN.md section 10) ----
// Each point has a tested recovery path; arming one must never turn into an
// SB_CHECK death.
//
// The caller's cached EPTP slot is evicted between route lookup and VMFUNC
// (a concurrent registration LRU-evicted the binding). Recovery: detect the
// stale slot, re-arm via the slowpath with bounded backoff; the call retries
// transparently or fails Unavailable after max_stale_slot_retries.
inline constexpr const char kFaultPreVmfunc[] = "skybridge.call.pre_vmfunc";
// The server thread crashes mid-handler, stranding the client in the
// server's address space. Recovery: Rootkernel-mediated abort (kAbortToView)
// restores the client's EPT view, the trampoline frame is popped, the kernel
// unblocks the caller and the call returns Status::Aborted.
inline constexpr const char kFaultHandlerCrash[] = "skybridge.handler.crash";
// The server scribbles the reply descriptor so the reply escapes the
// caller's shared-buffer slice. Recovery: the return gate rejects the reply
// — after the EPT view is restored — with a gate_rejections metric.
inline constexpr const char kFaultReplyCorrupt[] = "skybridge.gate.reply_corrupt";
// The caller's binding is revoked while its call is in flight. Recovery:
// the in-flight call drains normally; EPTP-list surgery is deferred to the
// drain and new calls are refused with PermissionDenied.
inline constexpr const char kFaultRevokeInflight[] = "skybridge.call.revoke_inflight";
// The Rootkernel refuses the kEptpListReplace/kEptpListAppend that would
// make a faulted binding resident (slot-virtualization install failure,
// DESIGN.md section 15). Recovery: the slot fault fails cleanly with
// Unavailable; residency state is untouched and the next call retries.
inline constexpr const char kFaultSlotInstall[] = "skybridge.eptp.slot_install_failed";
// The lazy-registration exec-fault slow path fails mid-rewrite (the scan or
// the EPT permission flip refuses). Recovery: bounded retry inside the
// handler; after that the fault reports clean Unavailable, the page stays
// non-executable, and the next call through it retries the whole slow path.
inline constexpr const char kFaultExecScan[] = "skybridge.registration.exec_scan_failed";

struct SkyBridgeConfig {
  // Crossing backend for bindings whose registration does not name one
  // explicitly (RegisterServer's backend parameter). See CrossingBackendKind.
  CrossingBackendKind crossing_backend = DefaultCrossingBackend();
  // Maximum EPTP list slots a client may occupy (hardware limit 512). The
  // library LRU-evicts bindings beyond this (paper Section 10 future work).
  size_t eptp_capacity = hw::kEptpListCapacity;
  // ---- EPTP slot virtualization (DESIGN.md section 15) ----
  // Per-core slot working set: how many EPTP-list slots each core may hold
  // resident at once (clamped to the hardware list capacity). Bindings
  // beyond this fault in on demand, evicting the per-core LRU victim via an
  // in-place kEptpListReplace — the "millions of bindings from 512 slots"
  // oversubscription story.
  size_t eptp_working_set = hw::kEptpListCapacity;
  // Binding consolidation: N clients of one server share a single binding
  // EPT (per-client CR3 remaps added with kAddCr3Remap; calling keys and
  // buffer slices stay per-client), collapsing slot pressure from
  // O(clients x servers) to O(servers). Off = one EPT per binding (the
  // pre-section-15 shape; the mesh bench's >=10k-EPT ablation).
  bool consolidate_bindings = true;
  // Ablation switch: pick slot-fault victims by LRU (true) or naive
  // round-robin over evictable slots (false). Exists to measure what
  // recency tracking buys under zipfian routing.
  bool lru_slot_eviction = true;
  // Per-(binding, connection) shared buffer for long messages.
  uint64_t shared_buffer_bytes = 64 * 1024;
  // Connection slices carved out of each binding's buffer region (paper
  // Section 6.3 per-thread buffers): each connection (thread) is handed its
  // own shared_buffer_bytes slice by the binding's free-list allocator, with
  // explicit ResourceExhausted once more live connections than slices exist.
  uint64_t buffer_slices = 4;
  // Ablation switch: model the legacy two-copy long path (client WriteVirt
  // in, server WriteVirt reply, client ReadVirt out into the returned
  // message). Off by default — the handler gets a borrowed view over the
  // slice and the client consumes the reply straight from the buffer, which
  // is the paper's one-copy claim; pair with the in-place API for zero-copy.
  bool legacy_two_copy = false;
  // Enforce calling-key checks (ablation switch).
  bool calling_keys = true;
  // Rewrite process binaries at registration (ablation switch; disabling is
  // insecure and exists only to measure the cost).
  bool rewrite_binaries = true;
  // Staged registration pipeline mode (DESIGN.md section 17): eager scan at
  // registration, rewrite-on-first-execute, or snapshot/restore.
  RegistrationMode registration_mode = DefaultRegistrationMode();
  // Budget for the content-hashed rewrite cache (entries ≈ distinct
  // (page, backend) contents across live images). 0 disables caching —
  // every page scan runs from scratch (the cold-start ablation baseline).
  size_t rewrite_cache_entries = 4096;
  // DoS defence: force return to the client if a handler runs longer.
  uint64_t timeout_cycles = 1ULL << 32;
  uint64_t key_seed = 0x5eedULL;
  // Worker threads for the registration-scan pool. A fixed count — never
  // derived from std::thread::hardware_concurrency — so scan fan-out (and
  // the scan_threads gauge tests assert on) matches between a 2-vCPU CI
  // runner and a large workstation.
  int scan_pool_threads = 4;
  // Bounded backoff for re-arming a binding whose cached EPTP slot went
  // stale between lookup and VMFUNC (concurrent eviction). After this many
  // slowpath re-installs the call fails Unavailable.
  uint64_t max_stale_slot_retries = 3;
  // ---- Batched + asynchronous IPC (DESIGN.md section 13) ----
  // Submission/completion ring entries carved from a connection's slice
  // (power of two). The remainder of the slice is the per-entry payload
  // arena, so each entry carries up to
  // (slice - header - entries * desc) / entries payload bytes.
  uint32_t batch_ring_entries = 64;
  // Adaptive drain bound: after draining the submission ring, the server
  // re-polls it up to this many further rounds for entries that arrived
  // while it was draining (the client keeps producing on its own core in
  // real hardware), amortizing their crossing too. 1 = drain exactly what
  // was pending at VMFUNC time.
  uint32_t max_drain_rounds = 4;
};

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_CONFIG_H_
