// SkyBridge registration: the kernel- and Rootkernel-mediated slow path.
// Code-page scanning/rewriting (Section 5), trampoline/key-table/stack/
// buffer mapping, binding-EPT creation and the lazy chain bindings nested
// calls use. Nothing here runs on the call fast path (skybridge.cc).

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/units.h"
#include "src/skybridge/skybridge.h"
#include "src/vmm/rootkernel.h"
#include "src/x86/rewriter.h"
#include "src/x86/scanner.h"

namespace skybridge {

namespace {

// Which bit of the per-process rewritten_patterns_ mask a backend's gate
// pattern occupies (kSyscall has no pattern: needs_rewrite is false).
uint8_t PatternBit(CrossingBackendKind backend) {
  return backend == CrossingBackendKind::kMpk ? 0x2 : 0x1;
}

}  // namespace

sb::Status SkyBridge::RewriteProcessImage(mk::Process* process, CrossingBackendKind backend) {
  if (!config_.rewrite_binaries || backend == CrossingBackendKind::kSyscall) {
    return sb::OkStatus();
  }
  uint8_t& mask = rewritten_patterns_[process];
  const uint8_t bit = PatternBit(backend);
  if ((mask & bit) != 0) {
    return sb::OkStatus();
  }
  x86::RewriteConfig rw;
  rw.code_base = mk::kCodeVa;
  // Each pattern owns a fixed 16-page snippet window — VMFUNC at window 0,
  // WRPKRU at window 1 — so a process prepared for both EPTP and MPK keeps
  // both rewrite pages mapped, at addresses stable across re-rewrites.
  rw.rewrite_page_base =
      mk::kRewritePageVa +
      (backend == CrossingBackendKind::kMpk ? 16 * sb::kPageSize : 0);
  rw.scan_pool = &scan_pool_;
  rw.pattern =
      backend == CrossingBackendKind::kMpk ? x86::kWrpkruBytes : x86::kVmfuncBytes;
  SB_ASSIGN_OR_RETURN(x86::RewriteResult result,
                      x86::RewriteVmfunc(process->code_image(), rw));
  metrics_.rewritten_vmfuncs->Add(
      static_cast<uint64_t>(result.stats.nop_replaced + result.stats.windows_relocated));
  metrics_.scan_pages->Add(result.stats.scan_pages);
  metrics_.scan_threads->SetMax(result.stats.scan_threads);
  SB_LOG(kDebug) << "rewrite " << sb::kv("pid", process->pid())
                 << " " << sb::kv("pattern", CrossingBackendName(backend))
                 << " " << sb::kv("scan_pages", result.stats.scan_pages)
                 << " " << sb::kv("scan_threads", result.stats.scan_threads);

  // Write the rewritten image back over the process's code pages.
  const hw::GuestWalk code_walk = process->address_space().WalkVa(mk::kCodeVa);
  SB_CHECK(code_walk.ok);
  kernel_->machine().mem().Write(code_walk.gpa, result.code);
  process->set_code_image(std::move(result.code));

  // Map and fill the rewrite page (the deliberately-unmapped second page).
  if (!result.rewrite_page.empty()) {
    hw::PageFlags flags;
    flags.writable = false;
    SB_ASSIGN_OR_RETURN(
        const hw::Gpa rw_gpa,
        process->address_space().MapAnonymous(
            rw.rewrite_page_base, sb::PageUp(result.rewrite_page.size()), flags));
    kernel_->machine().mem().Write(rw_gpa, result.rewrite_page);
  }
  mask |= bit;
  if (!process->code_rewritten()) {
    process->set_code_rewritten(true);
    metrics_.processes_rewritten->Add();
  }
  return sb::OkStatus();
}

sb::Status SkyBridge::UpdateProcessCode(mk::Process* process, std::vector<uint8_t> new_image) {
  if (new_image.size() > mk::kCodeSize) {
    return sb::InvalidArgument("code image larger than the code window");
  }
  // The generation phase: code pages are writable and non-executable; the
  // new bytes land in place.
  const hw::GuestWalk code_walk = process->address_space().WalkVa(mk::kCodeVa);
  if (!code_walk.ok) {
    return sb::FailedPrecondition("process has no code mapping");
  }
  kernel_->machine().mem().Write(code_walk.gpa, new_image);
  process->set_code_image(std::move(new_image));
  // Remap executable: the Subkernel rescans before the pages may run again.
  process->set_code_rewritten(false);
  const uint8_t prepared = rewritten_patterns_[process];
  rewritten_patterns_[process] = 0;
  // Drop any previous rewrite pages so the rescan can lay out fresh
  // snippets. Sweep both fixed windows (VMFUNC at 0, WRPKRU at 1) — either
  // may be sparsely mapped depending on which patterns the old image hit.
  for (hw::Gva va = mk::kRewritePageVa; va < mk::kRewritePageVa + 32 * sb::kPageSize;
       va += sb::kPageSize) {
    if (process->address_space().WalkVa(va).ok) {
      SB_RETURN_IF_ERROR(process->address_space().Unmap(va));
    }
  }
  // Re-run every pattern pass the process had been prepared with; a process
  // never prepared (or prepared for kSyscall only) gets the VMFUNC pass, the
  // historical W^X contract.
  if (prepared == 0 || (prepared & PatternBit(CrossingBackendKind::kEptp)) != 0) {
    SB_RETURN_IF_ERROR(RewriteProcessImage(process, CrossingBackendKind::kEptp));
  }
  if ((prepared & PatternBit(CrossingBackendKind::kMpk)) != 0) {
    SB_RETURN_IF_ERROR(RewriteProcessImage(process, CrossingBackendKind::kMpk));
  }
  return sb::OkStatus();
}

sb::Status SkyBridge::EnsureProcessPrepared(mk::Process* process, CrossingBackendKind backend) {
  const CrossingBackend& be = gate_.backend(backend);
  if (be.caps().needs_rewrite) {
    // Every view-slot process gets the VMFUNC scrub (its EPTP list entries
    // are reachable by a planted 0f 01 d4 regardless of backend); MPK
    // additionally scrubs WRPKRU so only its trampoline can switch keys.
    if (be.caps().uses_view_slots) {
      SB_RETURN_IF_ERROR(RewriteProcessImage(process, CrossingBackendKind::kEptp));
    }
    if (backend != CrossingBackendKind::kEptp) {
      SB_RETURN_IF_ERROR(RewriteProcessImage(process, backend));
    }
  }
  // Trampoline page (exec-only for users, shared frame). Each view-switch
  // backend maps its own variant; kSyscall maps none.
  if (be.caps().uses_trampoline &&
      !process->address_space().WalkVa(be.trampoline_va()).ok) {
    hw::PageFlags flags;
    flags.writable = false;
    const hw::Gpa tramp_gpa =
        backend == CrossingBackendKind::kMpk ? mpk_trampoline_gpa_ : trampoline_gpa_;
    SB_RETURN_IF_ERROR(process->address_space().MapRange(
        be.trampoline_va(), tramp_gpa, sb::kPageSize, flags));
  }
  // Per-process calling-key table page (all backends check calling keys).
  if (!process->address_space().WalkVa(mk::kCallingKeyTableVa).ok) {
    SB_RETURN_IF_ERROR(
        process->address_space()
            .MapAnonymous(mk::kCallingKeyTableVa, sb::kPageSize, hw::PageFlags{})
            .status());
  }
  return sb::OkStatus();
}

sb::StatusOr<ServerId> SkyBridge::RegisterServer(mk::Process* server, int max_connections,
                                                 mk::Handler handler) {
  return RegisterServer(server, max_connections, std::move(handler), config_.crossing_backend);
}

sb::StatusOr<ServerId> SkyBridge::RegisterServer(mk::Process* server, int max_connections,
                                                 mk::Handler handler,
                                                 CrossingBackendKind backend) {
  if (max_connections <= 0 || max_connections > 256) {
    return sb::InvalidArgument("connection count out of range");
  }
  SB_RETURN_IF_ERROR(EnsureProcessPrepared(server, backend));

  const ServerId id = servers_.size();
  // Per-connection server stacks (Section 4.4: the stack count bounds the
  // concurrency the server supports).
  const hw::Gva stacks_va = mk::kServerStacksVa + id * 256 * kServerStackBytes;
  SB_RETURN_IF_ERROR(server->address_space()
                         .MapAnonymous(stacks_va,
                                       static_cast<uint64_t>(max_connections) * kServerStackBytes,
                                       hw::PageFlags{})
                         .status());

  ServerEntry entry;
  entry.id = id;
  entry.process = server;
  entry.handler = std::move(handler);
  entry.max_connections = max_connections;
  entry.handler_va = mk::kCodeVa + 0x100;
  entry.backend = backend;
  servers_.push_back(std::move(entry));
  return id;
}

sb::Status SkyBridge::RegisterClient(mk::Process* client, ServerId server_id) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  ServerEntry& server = servers_[server_id];
  if (Binding* existing = routes_.Find(client, server_id); existing != nullptr) {
    if (!existing->revoked) {
      return sb::AlreadyExists("client already registered to this server");
    }
    // Revival: the record persisted through revocation (bindings are never
    // destroyed). Re-registration issues a fresh calling key and reinstalls
    // the EPT entry; the buffer region and EPT id are reused as-is.
    hw::Core& core = kernel_->machine().core(0);
    kernel_->SyscallEnter(core, nullptr);
    const uint64_t key = key_rng_.Next();
    const hw::GuestWalk table = server.process->address_space().WalkVa(mk::kCallingKeyTableVa);
    SB_CHECK(table.ok);
    kernel_->machine().mem().WriteU64(table.gpa + existing->key_slot * kKeySlotBytes, key);
    kernel_->machine().mem().WriteU64(table.gpa + existing->key_slot * kKeySlotBytes + 8,
                                      client->pid());
    existing->server_key = key;
    existing->revoked = false;
    // A swept consolidated binding had its CR3 translation restored to
    // identity by the revocation scrub: re-add the remap into the shared EPT.
    if (config_.consolidate_bindings && !existing->chain &&
        existing->ept_id == server.shared_ept_id) {
      core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kAddCr3Remap), existing->ept_id,
                  client->cr3(), server.process->cr3());
    }
    existing->swept = false;
    sb::Status install = sb::OkStatus();
    if (!existing->installed && gate_.backend(server.backend).caps().uses_view_slots) {
      install = routes_.Install(core, *existing, /*pinned_ept=*/0);
    }
    kernel_->SyscallExit(core, nullptr);
    return install;
  }
  if (server.next_connection >= static_cast<uint64_t>(server.max_connections)) {
    return sb::ResourceExhausted("server connection limit reached");
  }
  SB_RETURN_IF_ERROR(EnsureProcessPrepared(client, server.backend));

  hw::Core& core = kernel_->machine().core(0);
  // Registration is a syscall: charge the kernel path.
  kernel_->SyscallEnter(core, nullptr);

  // Binding-EPT consolidation (DESIGN.md section 15): all direct clients of
  // one server share a single binding EPT — each client only adds its own
  // CR3 remap to it — collapsing O(clients x servers) EPTs to O(servers).
  // Without consolidation every pair gets its own shallow copy of the base
  // EPT with the client's CR3 GPA remapped to the server's page-table root
  // and the identity GPA remapped to the server's identity frame.
  uint64_t ept_id = 0;
  if (config_.consolidate_bindings && server.shared_ept_id != 0) {
    ept_id = server.shared_ept_id;
    if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kAddCr3Remap), ept_id,
                    client->cr3(), server.process->cr3()) != 0) {
      kernel_->SyscallExit(core, nullptr);
      return sb::Internal("rootkernel refused CR3 remap into the shared EPT");
    }
  } else {
    ept_id = core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kCreateBindingEpt),
                         client->cr3(), server.process->cr3());
    if (ept_id == vmm::kHypercallError) {
      kernel_->SyscallExit(core, nullptr);
      return sb::Internal("rootkernel refused binding EPT");
    }
    if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kRemapIdentityPage), ept_id,
                    kernel_->identity_gpa(), server.process->identity_frame()) != 0) {
      kernel_->SyscallExit(core, nullptr);
      return sb::Internal("rootkernel refused identity remap");
    }
    if (config_.consolidate_bindings) {
      server.shared_ept_id = ept_id;
    }
  }

  // Shared buffer region for long messages, carved into per-connection
  // slices (buffers.cc owns the geometry).
  SB_ASSIGN_OR_RETURN(const BufferPool::Region region,
                      buffers_.CreateRegion(client, server.process));

  // Calling key: random 8 bytes, written into the server's key table.
  const uint64_t key = key_rng_.Next();
  const uint64_t slot = server.next_connection++;
  const hw::GuestWalk table = server.process->address_space().WalkVa(mk::kCallingKeyTableVa);
  SB_CHECK(table.ok);
  kernel_->machine().mem().WriteU64(table.gpa + slot * kKeySlotBytes, key);
  kernel_->machine().mem().WriteU64(table.gpa + slot * kKeySlotBytes + 8, client->pid());

  auto binding = std::make_unique<Binding>();
  binding->client = client;
  binding->server = server_id;
  binding->ept_id = ept_id;
  binding->server_key = key;
  binding->backend = server.backend;
  if (server.backend == CrossingBackendKind::kMpk) {
    binding->pkey = static_cast<uint8_t>(1 + (next_pkey_++ % 15));
  }
  binding->shared_buf = region.va;
  binding->key_slot = slot;
  binding->slice_stride = region.slice_stride;
  binding->num_slices = region.num_slices;
  binding->host_base = region.host_base;
  binding->installed = false;
  Binding* b = routes_.Adopt(std::move(binding));

  // kSyscall bindings never occupy an EPTP slot: the kernel fastpath
  // switches CR3 directly, so there is nothing to install.
  sb::Status install = sb::OkStatus();
  if (gate_.backend(server.backend).caps().uses_view_slots) {
    install = routes_.Install(core, *b, /*pinned_ept=*/0);
  }
  kernel_->SyscallExit(core, nullptr);
  return install;
}

sb::StatusOr<Binding*> SkyBridge::GetOrCreateChainBinding(hw::Core& core, mk::Process* origin,
                                                          ServerId server_id) {
  Binding* existing = routes_.Find(origin, server_id);
  if (existing != nullptr) {
    return existing;
  }
  // Lazy chain setup: kernel + Rootkernel mediated (slow path).
  ServerEntry& server = servers_[server_id];
  const uint64_t ept_id =
      core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kCreateBindingEpt), origin->cr3(),
                  server.process->cr3());
  if (ept_id == vmm::kHypercallError) {
    return sb::Internal("rootkernel refused chain binding EPT");
  }
  if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kRemapIdentityPage), ept_id,
                  kernel_->identity_gpa(), server.process->identity_frame()) != 0) {
    return sb::Internal("rootkernel refused identity remap");
  }
  auto binding = std::make_unique<Binding>();
  binding->client = origin;
  binding->server = server_id;
  binding->ept_id = ept_id;
  binding->server_key = 0;
  binding->backend = server.backend;
  if (server.backend == CrossingBackendKind::kMpk) {
    binding->pkey = static_cast<uint8_t>(1 + (next_pkey_++ % 15));
  }
  binding->shared_buf = 0;
  binding->key_slot = 0;
  binding->installed = false;
  binding->chain = true;
  return routes_.Adopt(std::move(binding));
}

}  // namespace skybridge
