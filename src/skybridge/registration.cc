// SkyBridge registration: the kernel- and Rootkernel-mediated slow path.
// Code-page scanning/rewriting (Section 5), trampoline/key-table/stack/
// buffer mapping, binding-EPT creation and the lazy chain bindings nested
// calls use. Nothing here runs on the call fast path (skybridge.cc).
//
// The scrub itself is a staged pipeline (DESIGN.md section 17): every page
// flows through the content-hashed rewrite cache, and the registration mode
// picks when pages flow — eagerly at registration, one page per
// exec-violation fault (rewrite-on-first-execute), or never (restored from a
// snapshot of an identical template).

#include <algorithm>

#include "src/base/faultpoint.h"
#include "src/base/logging.h"
#include "src/base/units.h"
#include "src/skybridge/skybridge.h"
#include "src/vmm/rootkernel.h"
#include "src/x86/rewrite_cache.h"
#include "src/x86/rewriter.h"
#include "src/x86/scanner.h"

namespace skybridge {

namespace {

// Which bit of the per-process rewritten_patterns_ mask a backend's gate
// pattern occupies (kSyscall has no pattern: needs_rewrite is false).
uint8_t PatternBit(CrossingBackendKind backend) {
  return backend == CrossingBackendKind::kMpk ? 0x2 : 0x1;
}

// Cache pattern id: 0 = VMFUNC (EPTP), 1 = WRPKRU (MPK).
uint32_t PatternId(CrossingBackendKind backend) {
  return backend == CrossingBackendKind::kMpk ? 1 : 0;
}

// Each pattern owns a fixed 16-page snippet window — VMFUNC at window 0,
// WRPKRU at window 1 — and within a window code page p's snippets live in
// their own sub-window page, so a page's rewrite is position-independent of
// every other page's (the property the content-hashed cache and the lazy
// per-page scrub rely on). Page 0's sub-window is the historical rewrite
// page address.
hw::Gva WindowVa(CrossingBackendKind backend, size_t page_index) {
  return mk::kRewritePageVa +
         (16 * PatternId(backend) + page_index) * sb::kPageSize;
}

size_t ImagePages(size_t image_bytes) {
  const size_t pages = sb::PageUp(image_bytes) / sb::kPageSize;
  return pages == 0 ? 1 : pages;
}

uint64_t AllPagesMask(size_t pages) {
  return pages >= 64 ? ~0ULL : (1ULL << pages) - 1;
}

CrossingBackendKind BackendForBit(uint8_t bit) {
  return bit == 0x2 ? CrossingBackendKind::kMpk : CrossingBackendKind::kEptp;
}

}  // namespace

sb::StatusOr<SkyBridge::RegState*> SkyBridge::EnsureRegStateLocked(mk::Process* process) {
  auto it = reg_states_.find(process);
  if (it != reg_states_.end()) {
    return &it->second;
  }
  const hw::GuestWalk code_walk = process->address_space().WalkVa(mk::kCodeVa);
  if (!code_walk.ok) {
    return sb::FailedPrecondition("process has no code mapping");
  }
  RegState st;
  st.pristine_image = process->code_image();
  st.pristine_hash = x86::HashBytes(st.pristine_image);
  st.image_pages = ImagePages(st.pristine_image.size());
  st.page_gpas.resize(st.image_pages);
  for (size_t p = 0; p < st.image_pages; ++p) {
    st.page_gpas[p] = code_walk.gpa + p * sb::kPageSize;
    gpa_to_page_[st.page_gpas[p]] = {process, p};
  }
  auto [nit, inserted] = reg_states_.emplace(process, std::move(st));
  (void)inserted;
  return &nit->second;
}

sb::Status SkyBridge::ScrubPagesLocked(mk::Process* process, RegState& st,
                                       CrossingBackendKind backend, uint64_t page_mask,
                                       hw::Core& core) {
  const uint32_t pattern_id = PatternId(backend);
  const hw::GuestWalk code_walk = process->address_space().WalkVa(mk::kCodeVa);
  SB_CHECK(code_walk.ok);
  const hw::CostModel& costs = core.costs();
  const bool cached = config_.rewrite_cache_entries > 0;
  std::vector<uint8_t> image = process->code_image();
  auto& keys = st.page_keys[pattern_id];
  if (keys.size() < st.image_pages) {
    keys.resize(st.image_pages);
  }
  for (size_t p = 0; p < st.image_pages; ++p) {
    if (((page_mask >> p) & 1) == 0) {
      continue;
    }
    x86::RewriteCacheKey key;
    key.content_hash = x86::HashCodePage(image, p);
    key.page_index = static_cast<uint32_t>(p);
    key.pattern_id = pattern_id;
    x86::PageRewrite pr;
    bool replayed = false;
    if (cached) {
      if (std::optional<x86::PageRewrite> hit = rewrite_cache_.Lookup(key)) {
        pr = *std::move(hit);
        replayed = true;
        metrics_.cache_hits->Add();
        core.AdvanceCycles(costs.rewrite_cache_replay);
      } else {
        metrics_.cache_misses->Add();
      }
    }
    if (!replayed) {
      x86::RewriteConfig rw;
      rw.code_base = mk::kCodeVa;
      rw.rewrite_page_base = WindowVa(backend, p);
      rw.rewrite_page_capacity = sb::kPageSize;
      rw.scan_pool = &scan_pool_;
      rw.pattern = backend == CrossingBackendKind::kMpk ? x86::kWrpkruBytes
                                                        : x86::kVmfuncBytes;
      SB_ASSIGN_OR_RETURN(pr, x86::RewriteVmfuncPage(image, p, rw));
      core.AdvanceCycles(costs.rewrite_scan_page);
      metrics_.pages_rescanned->Add();
      metrics_.scan_pages->Add(pr.stats.scan_pages);
      metrics_.scan_threads->SetMax(pr.stats.scan_threads);
      if (cached) {
        rewrite_cache_.Insert(key, pr);
      }
    }
    // Only a page whose content actually changed retires its old entry —
    // UpdateProcessCode re-runs this path and clean pages replay instead.
    if (keys[p].content_hash != 0 && !(keys[p] == key)) {
      rewrite_cache_.Invalidate(keys[p]);
    }
    keys[p] = key;
    metrics_.rewritten_vmfuncs->Add(
        static_cast<uint64_t>(pr.stats.nop_replaced + pr.stats.windows_relocated));
    for (const x86::PagePatch& patch : pr.patches) {
      if (patch.code_off + patch.bytes.size() > image.size()) {
        return sb::Internal("page rewrite patch outside the image");
      }
      std::copy(patch.bytes.begin(), patch.bytes.end(), image.begin() + patch.code_off);
    }
    if (!pr.snippets.empty()) {
      const hw::Gva wva = WindowVa(backend, p);
      hw::Gpa wgpa = 0;
      if (const hw::GuestWalk ww = process->address_space().WalkVa(wva); ww.ok) {
        wgpa = ww.gpa;
      } else {
        hw::PageFlags flags;
        flags.writable = false;
        SB_ASSIGN_OR_RETURN(
            wgpa, process->address_space().MapAnonymous(wva, sb::kPageSize, flags));
      }
      kernel_->machine().mem().Write(wgpa, pr.snippets);
      st.window_pages[wva] = pr.snippets;
    }
  }
  // Write the (partially) rewritten image back over the code pages.
  kernel_->machine().mem().Write(code_walk.gpa, image);
  process->set_code_image(std::move(image));
  return sb::OkStatus();
}

sb::Status SkyBridge::EagerPassLocked(mk::Process* process, CrossingBackendKind backend) {
  if (!config_.rewrite_binaries || backend == CrossingBackendKind::kSyscall) {
    return sb::OkStatus();
  }
  const uint8_t bit = PatternBit(backend);
  if ((rewritten_patterns_[process] & bit) != 0) {
    return sb::OkStatus();
  }
  SB_ASSIGN_OR_RETURN(RegState * st, EnsureRegStateLocked(process));
  hw::Core& core = kernel_->machine().core(0);
  SB_RETURN_IF_ERROR(
      ScrubPagesLocked(process, *st, backend, AllPagesMask(st->image_pages), core));
  rewritten_patterns_[process] |= bit;
  SB_LOG(kDebug) << "rewrite " << sb::kv("pid", process->pid()) << " "
                 << sb::kv("pattern", CrossingBackendName(backend)) << " "
                 << sb::kv("pages", st->image_pages);
  if (st->nonexec_mask == 0 && !process->code_rewritten()) {
    process->set_code_rewritten(true);
    metrics_.processes_rewritten->Add();
  }
  return sb::OkStatus();
}

sb::Status SkyBridge::ArmLazyLocked(mk::Process* process, CrossingBackendKind backend) {
  const uint8_t bit = PatternBit(backend);
  if ((rewritten_patterns_[process] & bit) != 0) {
    return sb::OkStatus();
  }
  SB_ASSIGN_OR_RETURN(RegState * st, EnsureRegStateLocked(process));
  if (st->protect_epts.empty()) {
    st->protect_epts.push_back(process->ept_id());
  }
  // Every code page goes (back to) non-executable in every enrolled EPT; the
  // exec-fault slow path scrubs pages one by one as they first run. Arming a
  // second pattern re-protects already-scrubbed pages so the fault re-scrubs
  // them for the union of prepared patterns.
  hw::Core& core = kernel_->machine().core(0);
  const bool was_pending = st->nonexec_mask != 0;
  for (size_t p = 0; p < st->image_pages; ++p) {
    if (((st->nonexec_mask >> p) & 1) != 0) {
      continue;  // Already protected.
    }
    for (uint64_t ept : st->protect_epts) {
      if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kProtectGpaExec), ept,
                      st->page_gpas[p], 0) != 0) {
        return sb::Internal("rootkernel refused exec protection");
      }
    }
  }
  st->nonexec_mask = AllPagesMask(st->image_pages);
  if (!was_pending && st->nonexec_mask != 0) {
    lazy_pending_.fetch_add(1, std::memory_order_relaxed);
  }
  rewritten_patterns_[process] |= bit;
  SB_LOG(kDebug) << "lazy-arm " << sb::kv("pid", process->pid()) << " "
                 << sb::kv("pattern", CrossingBackendName(backend)) << " "
                 << sb::kv("pages", st->image_pages);
  return sb::OkStatus();
}

sb::Status SkyBridge::RewriteProcessImage(mk::Process* process, CrossingBackendKind backend) {
  if (!config_.rewrite_binaries || backend == CrossingBackendKind::kSyscall) {
    return sb::OkStatus();
  }
  if (config_.registration_mode == RegistrationMode::kLazy) {
    return ArmLazyLocked(process, backend);
  }
  return EagerPassLocked(process, backend);
}

sb::Status SkyBridge::UpdateProcessCode(mk::Process* process, std::vector<uint8_t> new_image) {
  if (new_image.size() > mk::kCodeSize) {
    return sb::InvalidArgument("code image larger than the code window");
  }
  // The generation phase: code pages are writable and non-executable; the
  // new bytes land in place.
  const hw::GuestWalk code_walk = process->address_space().WalkVa(mk::kCodeVa);
  if (!code_walk.ok) {
    return sb::FailedPrecondition("process has no code mapping");
  }
  std::lock_guard<std::mutex> lock(reg_mu_);
  kernel_->machine().mem().Write(code_walk.gpa, new_image);
  process->set_code_image(std::move(new_image));
  // Remap executable: the Subkernel rescans before the pages may run again.
  process->set_code_rewritten(false);

  if (auto rit = reg_states_.find(process); rit != reg_states_.end()) {
    RegState& st = rit->second;
    // Updates are always eager (the new code must be scrub-verified before
    // it may run), so a lazy registration mid-flight lifts its exec
    // protection here and the rescan below covers everything.
    if (st.nonexec_mask != 0) {
      hw::Core& core = kernel_->machine().core(0);
      for (size_t p = 0; p < st.image_pages; ++p) {
        if (((st.nonexec_mask >> p) & 1) == 0) {
          continue;
        }
        for (uint64_t ept : st.protect_epts) {
          core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kProtectGpaExec), ept,
                      st.page_gpas[p], 1);
        }
      }
      st.nonexec_mask = 0;
      lazy_pending_.fetch_sub(1, std::memory_order_relaxed);
    }
    // Re-pristine against the new image; page GPAs are position-stable.
    // st.page_keys is deliberately retained: ScrubPagesLocked diffs each
    // page's fresh key against it and invalidates exactly the dirtied
    // pages' cache entries — clean pages replay from the cache.
    st.pristine_image = process->code_image();
    st.pristine_hash = x86::HashBytes(st.pristine_image);
    const size_t new_pages = ImagePages(st.pristine_image.size());
    if (new_pages != st.image_pages) {
      for (size_t p = new_pages; p < st.image_pages; ++p) {
        gpa_to_page_.erase(st.page_gpas[p]);
      }
      st.page_gpas.resize(new_pages);
      for (size_t p = 0; p < new_pages; ++p) {
        st.page_gpas[p] = code_walk.gpa + p * sb::kPageSize;
        gpa_to_page_[st.page_gpas[p]] = {process, p};
      }
      st.image_pages = new_pages;
    }
    st.window_pages.clear();
  }

  const uint8_t prepared = rewritten_patterns_[process];
  rewritten_patterns_[process] = 0;
  // Drop any previous rewrite pages so the rescan can lay out fresh
  // snippets. Sweep both fixed windows (VMFUNC at 0, WRPKRU at 1) — either
  // may be sparsely mapped depending on which patterns the old image hit.
  for (hw::Gva va = mk::kRewritePageVa; va < mk::kRewritePageVa + 32 * sb::kPageSize;
       va += sb::kPageSize) {
    if (process->address_space().WalkVa(va).ok) {
      SB_RETURN_IF_ERROR(process->address_space().Unmap(va));
    }
  }
  // Re-run every pattern pass the process had been prepared with; a process
  // never prepared (or prepared for kSyscall only) gets the VMFUNC pass, the
  // historical W^X contract. Always eager, whatever the registration mode.
  if (prepared == 0 || (prepared & PatternBit(CrossingBackendKind::kEptp)) != 0) {
    SB_RETURN_IF_ERROR(EagerPassLocked(process, CrossingBackendKind::kEptp));
  }
  if ((prepared & PatternBit(CrossingBackendKind::kMpk)) != 0) {
    SB_RETURN_IF_ERROR(EagerPassLocked(process, CrossingBackendKind::kMpk));
  }
  return sb::OkStatus();
}

sb::Status SkyBridge::EnsureProcessPrepared(mk::Process* process, CrossingBackendKind backend) {
  const CrossingBackend& be = gate_.backend(backend);
  if (be.caps().needs_rewrite && config_.rewrite_binaries) {
    // Every view-slot process gets the VMFUNC scrub (its EPTP list entries
    // are reachable by a planted 0f 01 d4 regardless of backend); MPK
    // additionally scrubs WRPKRU so only its trampoline can switch keys.
    uint8_t needed = 0;
    if (be.caps().uses_view_slots) {
      needed |= PatternBit(CrossingBackendKind::kEptp);
    }
    if (backend != CrossingBackendKind::kEptp) {
      needed |= PatternBit(backend);
    }
    std::lock_guard<std::mutex> lock(reg_mu_);
    const uint8_t have = rewritten_patterns_[process];
    if ((needed & ~have) != 0) {
      bool restored = false;
      if (config_.registration_mode == RegistrationMode::kSnapshot && have == 0) {
        // Near-instant cold start: an identical template was registered
        // before — restore its post-rewrite state instead of scanning.
        const uint64_t h = x86::HashBytes(process->code_image());
        if (auto lib = snapshot_library_.find(h); lib != snapshot_library_.end() &&
            (lib->second.prepared_mask & needed) == needed) {
          SB_RETURN_IF_ERROR(RestoreLocked(process, lib->second));
          restored = true;
        }
      }
      if (!restored) {
        for (uint8_t bit : {uint8_t{0x1}, uint8_t{0x2}}) {
          if ((needed & bit) != 0) {
            SB_RETURN_IF_ERROR(RewriteProcessImage(process, BackendForBit(bit)));
          }
        }
        if (config_.registration_mode == RegistrationMode::kSnapshot) {
          // First sighting of this template: auto-capture so the next clone
          // restores.
          sb::StatusOr<RegistrationSnapshot> snap = SnapshotLocked(process);
          if (snap.ok()) {
            snapshot_library_[snap->pristine_hash] = *std::move(snap);
          }
        }
      }
    }
  }
  // Trampoline page (exec-only for users, shared frame). Each view-switch
  // backend maps its own variant; kSyscall maps none.
  if (be.caps().uses_trampoline &&
      !process->address_space().WalkVa(be.trampoline_va()).ok) {
    hw::PageFlags flags;
    flags.writable = false;
    const hw::Gpa tramp_gpa =
        backend == CrossingBackendKind::kMpk ? mpk_trampoline_gpa_ : trampoline_gpa_;
    SB_RETURN_IF_ERROR(process->address_space().MapRange(
        be.trampoline_va(), tramp_gpa, sb::kPageSize, flags));
  }
  // Per-process calling-key table page (all backends check calling keys).
  if (!process->address_space().WalkVa(mk::kCallingKeyTableVa).ok) {
    SB_RETURN_IF_ERROR(
        process->address_space()
            .MapAnonymous(mk::kCallingKeyTableVa, sb::kPageSize, hw::PageFlags{})
            .status());
  }
  return sb::OkStatus();
}

// ---- Registration snapshot / restore (DESIGN.md section 17) ----

sb::StatusOr<SkyBridge::RegistrationSnapshot> SkyBridge::SnapshotLocked(mk::Process* process) {
  auto mit = rewritten_patterns_.find(process);
  const uint8_t mask = mit == rewritten_patterns_.end() ? 0 : mit->second;
  auto rit = reg_states_.find(process);
  if (rit == reg_states_.end() || mask == 0) {
    return sb::FailedPrecondition("process is not a prepared registration");
  }
  RegState& st = rit->second;
  if (st.nonexec_mask != 0) {
    return sb::FailedPrecondition(
        "lazy rewrite incomplete: execute the image (or register eagerly) before capturing");
  }
  RegistrationSnapshot snap;
  snap.pristine_hash = st.pristine_hash;
  snap.prepared_mask = mask;
  snap.code = process->code_image();
  snap.window_pages.assign(st.window_pages.begin(), st.window_pages.end());
  return snap;
}

sb::Status SkyBridge::RestoreLocked(mk::Process* process,
                                    const RegistrationSnapshot& snapshot) {
  if (auto mit = rewritten_patterns_.find(process);
      mit != rewritten_patterns_.end() && mit->second != 0) {
    return sb::FailedPrecondition("process already prepared; restore targets fresh clones");
  }
  if (snapshot.prepared_mask == 0 || snapshot.code.empty()) {
    return sb::InvalidArgument("empty registration snapshot");
  }
  if (x86::HashBytes(process->code_image()) != snapshot.pristine_hash) {
    return sb::FailedPrecondition("process image does not match the snapshot's template");
  }
  const hw::GuestWalk code_walk = process->address_space().WalkVa(mk::kCodeVa);
  if (!code_walk.ok) {
    return sb::FailedPrecondition("process has no code mapping");
  }
  SB_ASSIGN_OR_RETURN(RegState * st, EnsureRegStateLocked(process));
  // A restore is bulk page copies — no scanning, no decoding.
  uint64_t bytes = snapshot.code.size();
  kernel_->machine().mem().Write(code_walk.gpa, snapshot.code);
  process->set_code_image(snapshot.code);
  for (const auto& [wva, page] : snapshot.window_pages) {
    hw::Gpa wgpa = 0;
    if (const hw::GuestWalk ww = process->address_space().WalkVa(wva); ww.ok) {
      wgpa = ww.gpa;
    } else {
      hw::PageFlags flags;
      flags.writable = false;
      SB_ASSIGN_OR_RETURN(
          wgpa, process->address_space().MapAnonymous(wva, sb::kPageSize, flags));
    }
    kernel_->machine().mem().Write(wgpa, page);
    st->window_pages[wva] = page;
    bytes += page.size();
  }
  hw::Core& core = kernel_->machine().core(0);
  const hw::CostModel& costs = core.costs();
  core.AdvanceCycles(costs.bulk_startup + (bytes / 64) * costs.bulk_line);
  rewritten_patterns_[process] = snapshot.prepared_mask;
  metrics_.snapshot_restores->Add();
  if (!process->code_rewritten()) {
    process->set_code_rewritten(true);
    metrics_.processes_rewritten->Add();
  }
  return sb::OkStatus();
}

sb::StatusOr<SkyBridge::RegistrationSnapshot> SkyBridge::SnapshotRegistration(
    mk::Process* process) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return SnapshotLocked(process);
}

sb::Status SkyBridge::RestoreRegistration(mk::Process* process,
                                          const RegistrationSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return RestoreLocked(process, snapshot);
}

// ---- Rewrite-on-first-execute (DESIGN.md section 17) ----

sb::Status SkyBridge::ProtectServerPagesInEpt(hw::Core& core, mk::Process* server,
                                              uint64_t ept_id) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto it = reg_states_.find(server);
  if (it == reg_states_.end() || it->second.nonexec_mask == 0) {
    return sb::OkStatus();
  }
  RegState& st = it->second;
  if (std::find(st.protect_epts.begin(), st.protect_epts.end(), ept_id) !=
      st.protect_epts.end()) {
    return sb::OkStatus();
  }
  for (size_t p = 0; p < st.image_pages; ++p) {
    if (((st.nonexec_mask >> p) & 1) == 0) {
      continue;
    }
    if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kProtectGpaExec), ept_id,
                    st.page_gpas[p], 0) != 0) {
      return sb::Internal("rootkernel refused exec protection in binding EPT");
    }
  }
  st.protect_epts.push_back(ept_id);
  return sb::OkStatus();
}

sb::Status SkyBridge::EnsureCallExecutable(CallContext& ctx) {
  if (lazy_pending_.load(std::memory_order_relaxed) == 0) {
    return sb::OkStatus();  // Steady state: one relaxed load, zero cycles.
  }
  hw::Core& core = *ctx.core;
  // The client executes its call site; the server executes the handler entry
  // plus the tag-dispatched code path of this request.
  SB_RETURN_IF_ERROR(TouchExecPage(core, ctx.proc, 0));
  mk::Process* server_proc = ctx.server->process;
  const size_t handler_page =
      static_cast<size_t>((ctx.server->handler_va - mk::kCodeVa) / sb::kPageSize);
  SB_RETURN_IF_ERROR(TouchExecPage(core, server_proc, handler_page));
  size_t tag_page = 0;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    auto it = reg_states_.find(server_proc);
    if (it == reg_states_.end() || it->second.image_pages == 0) {
      return sb::OkStatus();
    }
    tag_page = ctx.request->tag % it->second.image_pages;
  }
  return TouchExecPage(core, server_proc, tag_page);
}

sb::Status SkyBridge::TouchExecPage(hw::Core& core, mk::Process* process,
                                    size_t page_index) {
  hw::Gpa gpa = 0;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    auto it = reg_states_.find(process);
    if (it == reg_states_.end()) {
      return sb::OkStatus();
    }
    RegState& st = it->second;
    if (page_index >= st.image_pages ||
        ((st.nonexec_mask >> page_index) & 1) == 0) {
      return sb::OkStatus();
    }
    gpa = st.page_gpas[page_index];
  }
  // Deliver the exec-violation exit with reg_mu_ released — the handler
  // (HandleExecFault, via Rootkernel and mk) re-acquires it.
  return kernel_->RaiseExecFault(core, gpa);
}

sb::Status SkyBridge::HandleExecFault(hw::Core& core, hw::Gpa gpa) {
  const uint64_t t0 = core.cycles();
  metrics_.exec_faults->Add();
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto it = gpa_to_page_.find(sb::PageDown(gpa));
  if (it == gpa_to_page_.end()) {
    return sb::NotFound("exec fault on an untracked page");
  }
  mk::Process* process = it->second.first;
  const size_t page = it->second.second;
  auto rit = reg_states_.find(process);
  if (rit == reg_states_.end()) {
    return sb::NotFound("exec fault on an unprepared process");
  }
  RegState& st = rit->second;
  if (((st.nonexec_mask >> page) & 1) == 0) {
    return sb::OkStatus();  // Raced: a concurrent fault already rewrote it.
  }
  auto mit = rewritten_patterns_.find(process);
  const uint8_t prepared = mit == rewritten_patterns_.end() ? 0 : mit->second;
  // Bounded retry around the scrub (the kFaultExecScan recovery contract):
  // a failed attempt leaves the page non-executable and the next execution
  // re-enters this slow path.
  sb::Status status = sb::Unavailable("exec-fault rewrite not attempted");
  for (uint64_t attempt = 0; attempt <= config_.max_stale_slot_retries; ++attempt) {
    if (SB_FAULT_POINT(kFaultExecScan)) {
      status = sb::Unavailable("exec-fault page scan failed");
      continue;
    }
    status = sb::OkStatus();
    for (uint8_t bit : {uint8_t{0x1}, uint8_t{0x2}}) {
      if ((prepared & bit) == 0) {
        continue;
      }
      status = ScrubPagesLocked(process, st, BackendForBit(bit), 1ULL << page, core);
      if (!status.ok()) {
        break;
      }
    }
    if (status.ok()) {
      break;
    }
  }
  if (!status.ok()) {
    return status;
  }
  st.nonexec_mask &= ~(1ULL << page);
  // We are already inside the Rootkernel's exit context: flip the permission
  // directly, no nested hypercall.
  vmm::Rootkernel* rk = kernel_->rootkernel();
  for (uint64_t ept : st.protect_epts) {
    SB_RETURN_IF_ERROR(rk->ProtectGpaExec(ept, st.page_gpas[page], true));
  }
  metrics_.lazy_rewrites->Add();
  if (st.nonexec_mask == 0) {
    lazy_pending_.fetch_sub(1, std::memory_order_relaxed);
    if (!process->code_rewritten()) {
      process->set_code_rewritten(true);
      metrics_.processes_rewritten->Add();
    }
  }
  phase_exec_fault_->Record(core.cycles() - t0);
  return sb::OkStatus();
}

sb::StatusOr<ServerId> SkyBridge::RegisterServer(mk::Process* server, int max_connections,
                                                 mk::Handler handler) {
  return RegisterServer(server, max_connections, std::move(handler), config_.crossing_backend);
}

sb::StatusOr<ServerId> SkyBridge::RegisterServer(mk::Process* server, int max_connections,
                                                 mk::Handler handler,
                                                 CrossingBackendKind backend) {
  if (max_connections <= 0 || max_connections > 256) {
    return sb::InvalidArgument("connection count out of range");
  }
  SB_RETURN_IF_ERROR(EnsureProcessPrepared(server, backend));

  const ServerId id = servers_.size();
  // Per-connection server stacks (Section 4.4: the stack count bounds the
  // concurrency the server supports).
  const hw::Gva stacks_va = mk::kServerStacksVa + id * 256 * kServerStackBytes;
  SB_RETURN_IF_ERROR(server->address_space()
                         .MapAnonymous(stacks_va,
                                       static_cast<uint64_t>(max_connections) * kServerStackBytes,
                                       hw::PageFlags{})
                         .status());

  ServerEntry entry;
  entry.id = id;
  entry.process = server;
  entry.handler = std::move(handler);
  entry.max_connections = max_connections;
  entry.handler_va = mk::kCodeVa + 0x100;
  entry.backend = backend;
  servers_.push_back(std::move(entry));
  return id;
}

sb::Status SkyBridge::RegisterClient(mk::Process* client, ServerId server_id) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  ServerEntry& server = servers_[server_id];
  if (Binding* existing = routes_.Find(client, server_id); existing != nullptr) {
    if (!existing->revoked) {
      return sb::AlreadyExists("client already registered to this server");
    }
    // Revival: the record persisted through revocation (bindings are never
    // destroyed). Re-registration issues a fresh calling key and reinstalls
    // the EPT entry; the buffer region and EPT id are reused as-is.
    hw::Core& core = kernel_->machine().core(0);
    kernel_->SyscallEnter(core, nullptr);
    const uint64_t key = key_rng_.Next();
    const hw::GuestWalk table = server.process->address_space().WalkVa(mk::kCallingKeyTableVa);
    SB_CHECK(table.ok);
    kernel_->machine().mem().WriteU64(table.gpa + existing->key_slot * kKeySlotBytes, key);
    kernel_->machine().mem().WriteU64(table.gpa + existing->key_slot * kKeySlotBytes + 8,
                                      client->pid());
    existing->server_key = key;
    existing->revoked = false;
    // A swept consolidated binding had its CR3 translation restored to
    // identity by the revocation scrub: re-add the remap into the shared EPT.
    if (config_.consolidate_bindings && !existing->chain &&
        existing->ept_id == server.shared_ept_id) {
      core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kAddCr3Remap), existing->ept_id,
                  client->cr3(), server.process->cr3());
    }
    existing->swept = false;
    sb::Status install = sb::OkStatus();
    if (!existing->installed && gate_.backend(server.backend).caps().uses_view_slots) {
      install = routes_.Install(core, *existing, /*pinned_ept=*/0);
    }
    kernel_->SyscallExit(core, nullptr);
    return install;
  }
  if (server.next_connection >= static_cast<uint64_t>(server.max_connections)) {
    return sb::ResourceExhausted("server connection limit reached");
  }
  SB_RETURN_IF_ERROR(EnsureProcessPrepared(client, server.backend));

  hw::Core& core = kernel_->machine().core(0);
  // Registration is a syscall: charge the kernel path.
  kernel_->SyscallEnter(core, nullptr);

  // Binding-EPT consolidation (DESIGN.md section 15): all direct clients of
  // one server share a single binding EPT — each client only adds its own
  // CR3 remap to it — collapsing O(clients x servers) EPTs to O(servers).
  // Without consolidation every pair gets its own shallow copy of the base
  // EPT with the client's CR3 GPA remapped to the server's page-table root
  // and the identity GPA remapped to the server's identity frame.
  uint64_t ept_id = 0;
  if (config_.consolidate_bindings && server.shared_ept_id != 0) {
    ept_id = server.shared_ept_id;
    if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kAddCr3Remap), ept_id,
                    client->cr3(), server.process->cr3()) != 0) {
      kernel_->SyscallExit(core, nullptr);
      return sb::Internal("rootkernel refused CR3 remap into the shared EPT");
    }
  } else {
    ept_id = core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kCreateBindingEpt),
                         client->cr3(), server.process->cr3());
    if (ept_id == vmm::kHypercallError) {
      kernel_->SyscallExit(core, nullptr);
      return sb::Internal("rootkernel refused binding EPT");
    }
    if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kRemapIdentityPage), ept_id,
                    kernel_->identity_gpa(), server.process->identity_frame()) != 0) {
      kernel_->SyscallExit(core, nullptr);
      return sb::Internal("rootkernel refused identity remap");
    }
    if (config_.consolidate_bindings) {
      server.shared_ept_id = ept_id;
    }
  }
  // Lazy registration: the server's still-unscrubbed pages must be
  // non-executable through this binding EPT too, so the first call through
  // it faults into the rewrite slow path instead of running unscanned code.
  if (sb::Status ps = ProtectServerPagesInEpt(core, server.process, ept_id); !ps.ok()) {
    kernel_->SyscallExit(core, nullptr);
    return ps;
  }

  // Shared buffer region for long messages, carved into per-connection
  // slices (buffers.cc owns the geometry).
  SB_ASSIGN_OR_RETURN(const BufferPool::Region region,
                      buffers_.CreateRegion(client, server.process));

  // Calling key: random 8 bytes, written into the server's key table.
  const uint64_t key = key_rng_.Next();
  const uint64_t slot = server.next_connection++;
  const hw::GuestWalk table = server.process->address_space().WalkVa(mk::kCallingKeyTableVa);
  SB_CHECK(table.ok);
  kernel_->machine().mem().WriteU64(table.gpa + slot * kKeySlotBytes, key);
  kernel_->machine().mem().WriteU64(table.gpa + slot * kKeySlotBytes + 8, client->pid());

  auto binding = std::make_unique<Binding>();
  binding->client = client;
  binding->server = server_id;
  binding->ept_id = ept_id;
  binding->server_key = key;
  binding->backend = server.backend;
  if (server.backend == CrossingBackendKind::kMpk) {
    binding->pkey = static_cast<uint8_t>(1 + (next_pkey_++ % 15));
  }
  binding->shared_buf = region.va;
  binding->key_slot = slot;
  binding->slice_stride = region.slice_stride;
  binding->num_slices = region.num_slices;
  binding->host_base = region.host_base;
  binding->installed = false;
  Binding* b = routes_.Adopt(std::move(binding));

  // kSyscall bindings never occupy an EPTP slot: the kernel fastpath
  // switches CR3 directly, so there is nothing to install.
  sb::Status install = sb::OkStatus();
  if (gate_.backend(server.backend).caps().uses_view_slots) {
    install = routes_.Install(core, *b, /*pinned_ept=*/0);
  }
  kernel_->SyscallExit(core, nullptr);
  return install;
}

sb::StatusOr<Binding*> SkyBridge::GetOrCreateChainBinding(hw::Core& core, mk::Process* origin,
                                                          ServerId server_id) {
  Binding* existing = routes_.Find(origin, server_id);
  if (existing != nullptr) {
    return existing;
  }
  // Lazy chain setup: kernel + Rootkernel mediated (slow path).
  ServerEntry& server = servers_[server_id];
  const uint64_t ept_id =
      core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kCreateBindingEpt), origin->cr3(),
                  server.process->cr3());
  if (ept_id == vmm::kHypercallError) {
    return sb::Internal("rootkernel refused chain binding EPT");
  }
  if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kRemapIdentityPage), ept_id,
                  kernel_->identity_gpa(), server.process->identity_frame()) != 0) {
    return sb::Internal("rootkernel refused identity remap");
  }
  // Same lazy-registration contract as direct bindings: unscrubbed server
  // pages stay non-executable through the chain EPT.
  SB_RETURN_IF_ERROR(ProtectServerPagesInEpt(core, server.process, ept_id));
  auto binding = std::make_unique<Binding>();
  binding->client = origin;
  binding->server = server_id;
  binding->ept_id = ept_id;
  binding->server_key = 0;
  binding->backend = server.backend;
  if (server.backend == CrossingBackendKind::kMpk) {
    binding->pkey = static_cast<uint8_t>(1 + (next_pkey_++ % 15));
  }
  binding->shared_buf = 0;
  binding->key_slot = 0;
  binding->installed = false;
  binding->chain = true;
  return routes_.Adopt(std::move(binding));
}

}  // namespace skybridge
