#include "src/skybridge/buffers.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/units.h"

namespace skybridge {

BufferPool::BufferPool(mk::Kernel& kernel, const SkyBridgeConfig& config)
    : kernel_(&kernel), config_(&config), next_va_(mk::kSharedBufVa) {}

sb::StatusOr<BufferPool::Region> BufferPool::CreateRegion(mk::Process* client,
                                                          mk::Process* server) {
  // Shared buffer region for long messages: same VA, same frames, both
  // processes. The region is carved into per-connection slices (Section 6.3
  // per-thread buffers): `buffer_slices` page-aligned slices, each with
  // shared_buffer_bytes of capacity, so concurrent connections of this
  // binding never alias one buffer.
  Region region;
  region.slice_stride = sb::PageUp(config_->shared_buffer_bytes);
  const uint64_t num_slices = std::max<uint64_t>(1, config_->buffer_slices);
  region.num_slices = static_cast<uint32_t>(num_slices);
  const uint64_t region_bytes = region.slice_stride * num_slices;
  region.va = next_va_;
  next_va_ += region_bytes;
  SB_ASSIGN_OR_RETURN(const hw::Gpa buf_gpa,
                      client->address_space().MapAnonymous(
                          region.va, region_bytes, hw::PageFlags{}));
  SB_RETURN_IF_ERROR(server->address_space().MapRange(
      region.va, buf_gpa, region_bytes, hw::PageFlags{}));
  // Give the region one host-contiguous backing so in-place messages can be
  // exposed as a single span. Guest frames are identity-mapped by the base
  // EPT (GPA == HPA), so the GPA range addresses host memory directly.
  kernel_->machine().mem().BackContiguous(buf_gpa, region_bytes);
  region.host_base = kernel_->machine().mem().ContiguousSpan(buf_gpa, region_bytes);
  SB_CHECK(region.host_base != nullptr) << "shared buffer region not host-contiguous";
  return region;
}

SliceRef BufferPool::SliceOf(const Binding& binding, const mk::Thread* caller) const {
  SliceRef ref;
  if (binding.shared_buf == 0) {
    return ref;  // Chain bindings carry no buffer.
  }
  const uint64_t slices = binding.num_slices != 0 ? binding.num_slices : 1;
  const uint64_t stride = binding.slice_stride != 0 ? binding.slice_stride
                                                    : sb::PageUp(config_->shared_buffer_bytes);
  const uint64_t index = static_cast<uint64_t>(caller->tid()) % slices;
  ref.va = binding.shared_buf + index * stride;
  if (binding.host_base != nullptr) {
    ref.host = std::span<uint8_t>(binding.host_base + index * stride,
                                  static_cast<size_t>(config_->shared_buffer_bytes));
  }
  return ref;
}

}  // namespace skybridge
