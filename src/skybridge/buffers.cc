#include "src/skybridge/buffers.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"
#include "src/base/units.h"

namespace skybridge {

uint32_t BatchRingView::LoadU32(uint64_t off) const {
  uint32_t v = 0;
  std::memcpy(&v, base + off, sizeof(v));
  return v;
}

void BatchRingView::StoreU32(uint64_t off, uint32_t v) const {
  std::memcpy(base + off, &v, sizeof(v));
}

uint64_t BatchRingView::LoadU64(uint64_t off) const {
  uint64_t v = 0;
  std::memcpy(&v, base + off, sizeof(v));
  return v;
}

void BatchRingView::StoreU64(uint64_t off, uint64_t v) const {
  std::memcpy(base + off, &v, sizeof(v));
}

BufferPool::BufferPool(mk::Kernel& kernel, const SkyBridgeConfig& config)
    : kernel_(&kernel), config_(&config), next_va_(mk::kSharedBufVa) {}

sb::StatusOr<BufferPool::Region> BufferPool::CreateRegion(mk::Process* client,
                                                          mk::Process* server) {
  // Shared buffer region for long messages: same VA, same frames, both
  // processes. The region is carved into per-connection slices (Section 6.3
  // per-thread buffers): `buffer_slices` page-aligned slices, each with
  // shared_buffer_bytes of capacity, so concurrent connections of this
  // binding never alias one buffer.
  Region region;
  region.slice_stride = sb::PageUp(config_->shared_buffer_bytes);
  const uint64_t num_slices = std::max<uint64_t>(1, config_->buffer_slices);
  region.num_slices = static_cast<uint32_t>(num_slices);
  const uint64_t region_bytes = region.slice_stride * num_slices;
  region.va = next_va_;
  next_va_ += region_bytes;
  SB_ASSIGN_OR_RETURN(const hw::Gpa buf_gpa,
                      client->address_space().MapAnonymous(
                          region.va, region_bytes, hw::PageFlags{}));
  SB_RETURN_IF_ERROR(server->address_space().MapRange(
      region.va, buf_gpa, region_bytes, hw::PageFlags{}));
  // Give the region one host-contiguous backing so in-place messages can be
  // exposed as a single span. Guest frames are identity-mapped by the base
  // EPT (GPA == HPA), so the GPA range addresses host memory directly.
  kernel_->machine().mem().BackContiguous(buf_gpa, region_bytes);
  region.host_base = kernel_->machine().mem().ContiguousSpan(buf_gpa, region_bytes);
  SB_CHECK(region.host_base != nullptr) << "shared buffer region not host-contiguous";
  return region;
}

SliceRef BufferPool::SliceAt(const Binding& binding, uint32_t index) const {
  SliceRef ref;
  const uint64_t stride = binding.slice_stride != 0 ? binding.slice_stride
                                                    : sb::PageUp(config_->shared_buffer_bytes);
  ref.va = binding.shared_buf + index * stride;
  if (binding.host_base != nullptr) {
    ref.host = std::span<uint8_t>(binding.host_base + index * stride,
                                  static_cast<size_t>(config_->shared_buffer_bytes));
  }
  return ref;
}

sb::StatusOr<SliceRef> BufferPool::AcquireSlice(Binding& binding,
                                                const mk::Thread* caller) const {
  if (binding.shared_buf == 0) {
    return sb::FailedPrecondition("binding has no shared buffer");
  }
  if (!binding.slices_carved) {
    // First touch of the region: populate the free list so slices hand out
    // in ascending order (LIFO list built high-to-low).
    const uint32_t slices = std::max<uint32_t>(1, binding.num_slices);
    binding.free_slices.reserve(slices);
    for (uint32_t i = slices; i-- > 0;) {
      binding.free_slices.push_back(i);
    }
    binding.slices_carved = true;
  }
  const auto assigned = binding.slice_of_tid.find(caller->tid());
  if (assigned != binding.slice_of_tid.end()) {
    return SliceAt(binding, assigned->second);
  }
  if (binding.free_slices.empty()) {
    return sb::ResourceExhausted("connection slices exhausted for this binding");
  }
  const uint32_t index = binding.free_slices.back();
  binding.free_slices.pop_back();
  binding.slice_of_tid.emplace(caller->tid(), index);
  return SliceAt(binding, index);
}

SliceRef BufferPool::SliceOf(const Binding& binding, const mk::Thread* caller) const {
  if (binding.shared_buf == 0) {
    return SliceRef{};  // Chain bindings carry no buffer.
  }
  const auto assigned = binding.slice_of_tid.find(caller->tid());
  if (assigned == binding.slice_of_tid.end()) {
    return SliceRef{};
  }
  return SliceAt(binding, assigned->second);
}

sb::StatusOr<BatchRingView> BufferPool::CarveRing(Binding& binding,
                                                  const mk::Thread* caller) const {
  SB_ASSIGN_OR_RETURN(const SliceRef slice, AcquireSlice(binding, caller));
  if (slice.host.empty()) {
    return sb::FailedPrecondition("slice has no host-contiguous backing");
  }
  const uint32_t entries = std::max<uint32_t>(1, config_->batch_ring_entries);
  const uint64_t fixed = BatchRingView::kHeaderBytes +
                         static_cast<uint64_t>(entries) * BatchRingView::kDescBytes;
  if (fixed + entries >= slice.host.size()) {
    return sb::InvalidArgument("slice too small for the configured batch ring");
  }
  BatchRingView ring;
  ring.base = slice.host.data();
  ring.va = slice.va;
  ring.entries = entries;
  ring.payload_cap = static_cast<uint32_t>((slice.host.size() - fixed) / entries);
  // Fresh ring: zero the header and every descriptor's status word so no
  // stale completion from a previous carving is visible.
  std::memset(ring.base, 0, fixed);
  return ring;
}

}  // namespace skybridge
