#include "src/skybridge/backend.h"

#include <string>

#include "src/base/logging.h"
#include "src/base/telemetry/trace.h"
#include "src/skybridge/gate.h"
#include "src/vmm/rootkernel.h"

namespace skybridge {

using sb::telemetry::TraceEventType;

uint32_t PkruAllow(uint8_t pkey) {
  // Two rights bits (AD, WD) per key; clear the pair for `pkey` and key 0.
  return kPkruDefault & ~(3u << (2u * pkey));
}

CrossingBackend::CrossingBackend(CrossingBackendKind kind, mk::Kernel& kernel,
                                 const SkyBridgeConfig& config)
    : kind_(kind), kernel_(&kernel), config_(&config) {
  sb::telemetry::Registry& reg = kernel.machine().telemetry();
  const std::string prefix = std::string("skybridge.crossing.") + CrossingBackendName(kind);
  enters_ = &reg.GetCounter(prefix + ".enters");
  returns_ = &reg.GetCounter(prefix + ".returns");
  aborts_ = &reg.GetCounter(prefix + ".aborts");
  leg_cycles_ = &reg.GetHistogram(prefix + ".leg_cycles");
}

namespace {

// ---- EPTP backend: the paper's VMFUNC switch ----------------------------

class EptpBackend : public CrossingBackend {
 public:
  EptpBackend(mk::Kernel& kernel, const SkyBridgeConfig& config)
      : CrossingBackend(CrossingBackendKind::kEptp, kernel, config) {}

  const BackendCaps& caps() const override {
    static constexpr BackendCaps kCaps{/*isolates_memory=*/true,
                                       /*uses_view_slots=*/true,
                                       /*needs_rewrite=*/true,
                                       /*uses_trampoline=*/true,
                                       /*kernel_mediated_abort=*/true};
    return kCaps;
  }

  uint64_t LegCycles(const hw::CostModel& costs) const override { return costs.vmfunc; }

  sb::Status Enter(CallContext& ctx) const override {
    hw::Core& core = *ctx.core;
    const uint64_t before = core.cycles();
    SB_RETURN_IF_ERROR(core.Vmfunc(0, ctx.route_slot));
    ctx.pbd->vmfunc += core.cycles() - before;
    SB_TRACE_EVENT(TraceEventType::kVmfuncSwitch, core.cycles(), core.id(), ctx.route_slot);
    SB_TRACE_EVENT(TraceEventType::kSpanVmfunc, core.cycles(), core.id(), ctx.call_id,
                   ctx.route_slot);
    return sb::OkStatus();
  }

  sb::Status Return(CallContext& ctx) const override {
    hw::Core& core = *ctx.core;
    const uint64_t t0 = core.cycles();
    SB_RETURN_IF_ERROR(core.Vmfunc(0, static_cast<uint32_t>(ctx.return_index)));
    ctx.pbd->vmfunc += core.cycles() - t0;
    SB_TRACE_EVENT(TraceEventType::kVmfuncSwitch, core.cycles(), core.id(), ctx.return_index);
    SB_TRACE_EVENT(TraceEventType::kSpanReturn, core.cycles(), core.id(), ctx.call_id,
                   ctx.return_index);
    return sb::OkStatus();
  }

  sb::Status Abort(CallContext& ctx) const override {
    hw::Core& core = *ctx.core;
    const uint64_t abort_start = core.cycles();
    if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kAbortToView),
                    static_cast<uint64_t>(ctx.return_index)) == vmm::kHypercallError) {
      return sb::Internal("rootkernel refused the abort view restore");
    }
    ctx.pbd->others += core.cycles() - abort_start;
    return sb::OkStatus();
  }
};

// ---- MPK backend: WRPKRU protection-key switch --------------------------
//
// The simulator models the MPK domain switch as: (1) the architectural
// WRPKRU charge + PKRU update, (2) an *unvalidated* flip of the active view
// to the binding's slot — standing in for "the server's pages, already
// mapped in the shared address space, become accessible". The flip performs
// the same bounds check VMFUNC's microcode does, but a bad index is a plain
// error with no hypervisor backstop, and nothing stops user code from
// forging the same two steps — which is exactly the weaker isolation
// envelope ProbeCrossDomainRead demonstrates.

class MpkBackend : public CrossingBackend {
 public:
  MpkBackend(mk::Kernel& kernel, const SkyBridgeConfig& config)
      : CrossingBackend(CrossingBackendKind::kMpk, kernel, config) {}

  const BackendCaps& caps() const override {
    static constexpr BackendCaps kCaps{/*isolates_memory=*/false,
                                       /*uses_view_slots=*/true,
                                       /*needs_rewrite=*/true,
                                       /*uses_trampoline=*/true,
                                       /*kernel_mediated_abort=*/true};
    return kCaps;
  }

  uint64_t LegCycles(const hw::CostModel& costs) const override { return costs.wrpkru; }

  hw::Gva trampoline_va() const override { return mk::kMpkTrampolineVa; }

  sb::Status Enter(CallContext& ctx) const override {
    hw::Core& core = *ctx.core;
    const uint64_t before = core.cycles();
    core.Wrpkru(PkruAllow(ctx.route->pkey));
    SB_RETURN_IF_ERROR(SwitchView(core, ctx.route_slot));
    ctx.pbd->vmfunc += core.cycles() - before;
    SB_TRACE_EVENT(TraceEventType::kVmfuncSwitch, core.cycles(), core.id(), ctx.route_slot);
    SB_TRACE_EVENT(TraceEventType::kSpanVmfunc, core.cycles(), core.id(), ctx.call_id,
                   ctx.route_slot);
    return sb::OkStatus();
  }

  sb::Status Return(CallContext& ctx) const override {
    hw::Core& core = *ctx.core;
    const uint64_t t0 = core.cycles();
    core.Wrpkru(kPkruDefault);
    SB_RETURN_IF_ERROR(SwitchView(core, static_cast<uint32_t>(ctx.return_index)));
    ctx.pbd->vmfunc += core.cycles() - t0;
    SB_TRACE_EVENT(TraceEventType::kVmfuncSwitch, core.cycles(), core.id(), ctx.return_index);
    SB_TRACE_EVENT(TraceEventType::kSpanReturn, core.cycles(), core.id(), ctx.call_id,
                   ctx.return_index);
    return sb::OkStatus();
  }

  sb::Status Abort(CallContext& ctx) const override {
    hw::Core& core = *ctx.core;
    // The stranded client's PKRU is kernel-restored along with the view:
    // recovery stays Rootkernel-mediated so the abort counters and
    // invariants match the EPTP backend exactly.
    core.Wrpkru(kPkruDefault);
    const uint64_t abort_start = core.cycles();
    if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kAbortToView),
                    static_cast<uint64_t>(ctx.return_index)) == vmm::kHypercallError) {
      return sb::Internal("rootkernel refused the abort view restore");
    }
    ctx.pbd->others += core.cycles() - abort_start;
    return sb::OkStatus();
  }

 private:
  static sb::Status SwitchView(hw::Core& core, uint32_t index) {
    if (index >= core.vmcs().eptp_list.size() || core.vmcs().eptp_list[index] == nullptr) {
      return sb::InvalidArgument("invalid MPK domain index");
    }
    core.vmcs().active_index = index;
    return sb::OkStatus();
  }
};

// ---- Syscall backend: seL4-style kernel fastpath ------------------------
//
// The baseline the paper compares against: every leg traps into the
// microkernel (SYSCALL), runs the fastpath IPC logic, switches CR3 to the
// peer's address space and SYSRETs. No trampoline, no rewriting, no EPTP
// slots — and the kernel really switches current_process, so nested-call
// chain bindings never arise on this backend.

class SyscallBackend : public CrossingBackend {
 public:
  SyscallBackend(mk::Kernel& kernel, const SkyBridgeConfig& config)
      : CrossingBackend(CrossingBackendKind::kSyscall, kernel, config) {}

  const BackendCaps& caps() const override {
    static constexpr BackendCaps kCaps{/*isolates_memory=*/true,
                                       /*uses_view_slots=*/false,
                                       /*needs_rewrite=*/false,
                                       /*uses_trampoline=*/false,
                                       /*kernel_mediated_abort=*/false};
    return kCaps;
  }

  uint64_t LegCycles(const hw::CostModel& costs) const override {
    return costs.syscall_insn + costs.cr3_write + costs.sysret_insn;
  }

  sb::Status Enter(CallContext& ctx) const override {
    hw::Core& core = *ctx.core;
    kernel_->SyscallEnter(core, ctx.pbd);
    kernel_->ChargeIpcLogic(core, /*fastpath=*/true, ctx.pbd);
    SB_RETURN_IF_ERROR(kernel_->ContextSwitchTo(core, ctx.server->process, ctx.pbd));
    kernel_->SyscallExit(core, ctx.pbd);
    SB_TRACE_EVENT(TraceEventType::kSpanVmfunc, core.cycles(), core.id(), ctx.call_id, 0);
    return sb::OkStatus();
  }

  sb::Status Return(CallContext& ctx) const override {
    hw::Core& core = *ctx.core;
    kernel_->SyscallEnter(core, ctx.pbd);
    kernel_->ChargeIpcLogic(core, /*fastpath=*/true, ctx.pbd);
    SB_RETURN_IF_ERROR(kernel_->ContextSwitchTo(core, ctx.proc, ctx.pbd));
    kernel_->SyscallExit(core, ctx.pbd);
    SB_TRACE_EVENT(TraceEventType::kSpanReturn, core.cycles(), core.id(), ctx.call_id, 0);
    return sb::OkStatus();
  }

  sb::Status Abort(CallContext& ctx) const override {
    // The kernel reaped the dead server thread and reschedules the blocked
    // caller in its own address space — no hypervisor involved.
    hw::Core& core = *ctx.core;
    kernel_->SyscallEnter(core, ctx.pbd);
    SB_RETURN_IF_ERROR(kernel_->ContextSwitchTo(core, ctx.proc, ctx.pbd));
    kernel_->SyscallExit(core, ctx.pbd);
    return sb::OkStatus();
  }
};

}  // namespace

std::unique_ptr<CrossingBackend> MakeCrossingBackend(CrossingBackendKind kind,
                                                     mk::Kernel& kernel,
                                                     const SkyBridgeConfig& config) {
  switch (kind) {
    case CrossingBackendKind::kEptp:
      return std::make_unique<EptpBackend>(kernel, config);
    case CrossingBackendKind::kMpk:
      return std::make_unique<MpkBackend>(kernel, config);
    case CrossingBackendKind::kSyscall:
      return std::make_unique<SyscallBackend>(kernel, config);
  }
  SB_CHECK(false) << "unknown crossing backend";
  return nullptr;
}

}  // namespace skybridge
