// SkyBridge: kernel-less synchronous IPC via VMFUNC EPTP switching.
//
// Public programming model (paper Figure 4):
//
//   // server process
//   ServerId sid = sky.RegisterServer(server, /*connections=*/8, handler);
//   // client process
//   sky.RegisterClient(client, sid);
//   Message reply = sky.DirectServerCall(client_thread, sid, request);
//
// Registration is a (slow, kernel-mediated) syscall path: the Subkernel scans
// and rewrites the process's code pages (Section 5), maps the trampoline,
// server stacks and shared buffers, and asks the Rootkernel for a binding
// EPT whose CR3-GPA remap points the client's CR3 at the server's page
// tables. The call itself never enters the kernel: the trampoline saves
// registers, executes VMFUNC, installs a server stack, checks the calling
// key and jumps to the registered handler — 2 x (134 + 64) = 396 cycles of
// direct cost per roundtrip.
//
// The control plane is decomposed into per-concern modules, and this class
// is the facade that drives one typed CallContext through them:
//
//   routing.h  — binding records, (client, server) hash index, per-thread
//                last-route cache, intrusive LRU, EPTP-slot caches; the
//                read-mostly route table (epoch-versioned for revocation).
//   gate.h     — VMFUNC entry/return legs, trampoline cost model, calling
//                keys, abort/unwind, return-gate reply validation, phases.
//   buffers.h  — shared-buffer regions and per-connection slice carving.
//
// Steady-state calls on different simulated cores share no mutable word
// (DESIGN.md section 11): lookups hit per-thread caches, in-flight counters
// live on the caller's own binding, and telemetry is sharded — so N disjoint
// (client, server) pairs on N cores scale without serializing.

#ifndef SRC_SKYBRIDGE_SKYBRIDGE_H_
#define SRC_SKYBRIDGE_SKYBRIDGE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/telemetry/metrics.h"
#include "src/base/thread_pool.h"
#include "src/mk/kernel.h"
#include "src/skybridge/buffers.h"
#include "src/skybridge/config.h"
#include "src/skybridge/gate.h"
#include "src/skybridge/routing.h"
#include "src/skybridge/trampoline.h"
#include "src/x86/rewrite_cache.h"

namespace skybridge {

// Point-in-time snapshot of the library's counters. The live values are
// telemetry registry metrics (skybridge.* on the machine's registry); this
// struct is folded from them by stats() to keep the historical accessor.
struct SkyBridgeStats {
  uint64_t direct_calls = 0;
  uint64_t long_calls = 0;       // Used the shared buffer.
  uint64_t inplace_calls = 0;    // Request built in place (no request copy).
  uint64_t inplace_replies = 0;  // Reply built in place (no reply copy).
  uint64_t rejected_calls = 0;   // Calling-key, binding or capacity failures.
  uint64_t timeouts = 0;
  uint64_t eptp_misses = 0;      // Binding had been LRU-evicted; reinstalled.
  uint64_t rewritten_vmfuncs = 0;
  uint64_t processes_rewritten = 0;
  // Fast-path lookup accounting: hits were served by the per-thread
  // last-route cache; misses fell through to the binding hash index.
  uint64_t binding_lookup_hits = 0;
  uint64_t binding_lookup_misses = 0;
  // Registration-scan accounting (the parallel slow path).
  uint64_t scan_pages = 0;    // Code-page chunks scanned across rewrites.
  uint64_t scan_threads = 0;  // Widest fan-out any scan used.
  // ---- Fault model & recovery (DESIGN.md section 10) ----
  uint64_t aborted_calls = 0;      // Server crashed mid-handler; rootkernel abort.
  uint64_t gate_rejections = 0;    // Replies rejected at the return gate.
  uint64_t stale_slot_retries = 0; // Pre-VMFUNC stale-slot slowpath re-arms.
  uint64_t revoked_rejections = 0; // Calls refused on a revoked binding.
  uint64_t bindings_revoked = 0;   // RevokeBinding transitions.
  // ---- EPTP slot virtualization (DESIGN.md section 15) ----
  // Calls whose routed binding was not resident in the core's slot working
  // set; the slot-fault slow path made it resident (evicting the per-core
  // LRU victim when the budget was full) before the entry VMFUNC.
  uint64_t slot_faults = 0;
  // ---- Per-core control plane (DESIGN.md section 11) ----
  // EPTP lists eagerly re-installed by the scheduler hook when a thread
  // migrated cores (vs. the lazy stale_slot_retries fallback).
  uint64_t migration_installs = 0;
  // ---- Batched + asynchronous IPC (DESIGN.md section 13) ----
  uint64_t batched_calls = 0;      // Requests submitted into batch rings.
  uint64_t batch_flushes = 0;      // FlushBatch crossings that drained >= 1.
  uint64_t batch_drain_rounds = 0; // Server drain rounds across all flushes.
  // ---- Staged registration pipeline (DESIGN.md section 17) ----
  uint64_t exec_faults = 0;        // Exec-violation exits taken (lazy mode).
  uint64_t lazy_rewrites = 0;      // Pages rewritten by the exec-fault path.
  uint64_t cache_hits = 0;         // Rewrite-cache page hits (replays).
  uint64_t cache_misses = 0;       // Rewrite-cache page misses.
  uint64_t snapshot_restores = 0;  // Registrations restored from a snapshot.
  uint64_t pages_rescanned = 0;    // Pages scanned from scratch (cache misses
                                   // plus cache-disabled scans).
};

class SkyBridge {
 public:
  // Requires a kernel booted with the Rootkernel.
  explicit SkyBridge(mk::Kernel& kernel, SkyBridgeConfig config = {});
  ~SkyBridge();

  // ---- Registration (paper Figure 4) ----
  // `backend` fixes the crossing backend for every binding of this server
  // (DESIGN.md section 16); by default the config's crossing_backend. The
  // kSyscall backend skips rewriting and trampoline mapping entirely.
  sb::StatusOr<ServerId> RegisterServer(mk::Process* server, int max_connections,
                                        mk::Handler handler);
  sb::StatusOr<ServerId> RegisterServer(mk::Process* server, int max_connections,
                                        mk::Handler handler, CrossingBackendKind backend);
  sb::Status RegisterClient(mk::Process* client, ServerId server_id);

  // ---- Dynamic code (paper Section 9, W^X) ----
  // Replaces a registered process's code image, as a JIT or live-update
  // would: the pages are treated as writable+non-executable during the
  // update, then this call remaps them executable and *rescans/rewrites*
  // them so no new VMFUNC gate can appear.
  sb::Status UpdateProcessCode(mk::Process* process, std::vector<uint8_t> new_image);

  // ---- Registration snapshot / restore (DESIGN.md section 17) ----
  // Everything a fully-prepared registration derived from the code image:
  // the post-rewrite code bytes, the populated snippet sub-window pages, and
  // the pattern set they were scrubbed for. Keyed by the hash of the
  // PRISTINE (pre-rewrite) image so a spawned worker cloned from the same
  // template can restore without scanning a single page.
  struct RegistrationSnapshot {
    uint64_t pristine_hash = 0;  // FNV-1a of the pre-rewrite image.
    uint8_t prepared_mask = 0;   // Pattern bits scrubbed (1=VMFUNC, 2=WRPKRU).
    std::vector<uint8_t> code;   // Post-rewrite image.
    // Snippet sub-window pages (va -> bytes), mapped read-only on restore.
    std::vector<std::pair<hw::Gva, std::vector<uint8_t>>> window_pages;
  };

  // Captures the registration state of a fully-rewritten process.
  // FailedPrecondition if the process was never prepared or still has
  // non-executable pages awaiting their lazy rewrite (execute them, or
  // register eagerly, before capturing).
  sb::StatusOr<RegistrationSnapshot> SnapshotRegistration(mk::Process* process);

  // Applies a snapshot to an unprepared process whose current image hashes
  // to the snapshot's pristine_hash (an identical clone of the template).
  // Charges only the bulk page copies — no scanning. FailedPrecondition on
  // an already-prepared process or a pristine-hash mismatch.
  sb::Status RestoreRegistration(mk::Process* process,
                                 const RegistrationSnapshot& snapshot);

  // ---- The IPC itself ----
  // Executes the requested procedure in the server's address space on the
  // caller's core without entering the kernel.
  sb::StatusOr<mk::Message> DirectServerCall(mk::Thread* caller, ServerId server_id,
                                             const mk::Message& msg,
                                             mk::CostBreakdown* bd = nullptr);

  // ---- In-place long-message API (zero-copy path) ----
  // Returns a host-writable view of the caller's per-connection slice of the
  // binding's shared buffer. The client builds its payload directly in the
  // span — no staging vector — then issues DirectServerCallInPlace with the
  // number of bytes written. The span stays valid until the next call or
  // acquire on the same connection reuses the slice; there is no explicit
  // release.
  sb::StatusOr<std::span<uint8_t>> AcquireSendBuffer(mk::Thread* caller, ServerId server_id);

  // Calls `server_id` with the `len` payload bytes previously written into
  // the acquired slice. No request copy is charged (the bytes are already in
  // the shared buffer); the handler receives a borrowed view, may build its
  // reply in env.reply_buffer (same slice) and return Message::Borrowed —
  // then no reply copy is charged either and the roundtrip moves zero bytes.
  sb::StatusOr<mk::Message> DirectServerCallInPlace(mk::Thread* caller, ServerId server_id,
                                                    uint64_t tag, uint64_t len,
                                                    mk::CostBreakdown* bd = nullptr);

  // ---- Batched + asynchronous IPC (DESIGN.md section 13) ----
  // A submission/completion ring carved from the caller's per-connection
  // slice amortizes the VMFUNC crossing: the client enqueues N requests,
  // one FlushBatch crossing drains them all server-side, and completions
  // post back into the ring without per-call return crossings.
  //
  // SubmitCall enqueues one request and returns its token (no crossing).
  // Errors: ResourceExhausted when the ring is full (slot of the next token
  // still holds an uncollected completion), OutOfRange when the payload
  // exceeds the ring's per-entry capacity, PermissionDenied for
  // unregistered/revoked pairs.
  sb::StatusOr<uint64_t> SubmitCall(mk::Thread* caller, ServerId server_id,
                                    const mk::Message& msg);

  // Non-blocking completion check for `token`. Unavailable while the entry
  // is still pending (submit not yet flushed, or left untouched by a
  // crashed crossing); the entry's own error (Aborted for a handler crash,
  // OutOfRange for a reply rejected at the per-entry return gate,
  // PermissionDenied for a revoked-binding flush) once posted. A successful
  // poll frees the entry's slot; like the in-place API, the returned reply
  // is a borrowed view of the entry's payload span, valid until the slot is
  // resubmitted.
  sb::StatusOr<mk::Message> PollCompletion(mk::Thread* caller, ServerId server_id,
                                           uint64_t token);

  // Blocking completion wait: flushes the connection's pending submissions
  // if `token` is not yet complete, and otherwise parks on the kernel
  // notification path (mk::Notification) until a concurrent flush posts the
  // completion.
  sb::StatusOr<mk::Message> WaitCompletion(mk::Thread* caller, ServerId server_id,
                                           uint64_t token, mk::CostBreakdown* bd = nullptr);

  // Drains every pending submission of the caller's connection in ONE
  // VMFUNC crossing (the batch-dispatch leg). With submissions arriving
  // during the drain (SetBatchRefill), the server keeps draining up to
  // config.max_drain_rounds rounds before returning. No-op when nothing is
  // pending. Aborted when the handler crashed mid-drain — completions
  // already posted stay posted, untouched entries complete on the next
  // flush. On a revoked binding, posts PermissionDenied completions
  // client-side without crossing.
  sb::Status FlushBatch(mk::Thread* caller, ServerId server_id,
                        mk::CostBreakdown* bd = nullptr);

  // Synchronous convenience: submit all of `msgs` (flushing in ring-sized
  // chunks when needed), flush, and collect every completion. Per-entry
  // outcomes come back in order; replies are owned (detached from the ring,
  // which CallBatch recycles across chunks).
  struct BatchEntryResult {
    sb::Status status;
    mk::Message reply;  // Valid when status.ok().
  };
  sb::StatusOr<std::vector<BatchEntryResult>> CallBatch(mk::Thread* caller, ServerId server_id,
                                                        std::span<const mk::Message> msgs,
                                                        mk::CostBreakdown* bd = nullptr);

  // Hook invoked between server drain rounds — models the client core
  // producing new submissions while the server drains (the adaptive-drain
  // experiment). Null disables (the default: one round drains what was
  // pending at entry).
  void SetBatchRefill(std::function<void()> refill) { batch_refill_ = std::move(refill); }

  // Simulates a malicious caller that skips registration / forges a key;
  // returns the error the legitimate path produces (for the security tests).
  sb::StatusOr<mk::Message> CallWithForgedKey(mk::Thread* caller, ServerId server_id,
                                              const mk::Message& msg, uint64_t forged_key);

  // Simulates a malicious client trying to read server memory at `va`
  // WITHOUT authorization: forge the crossing primitive by hand (no
  // trampoline, no calling key) and dereference through the server's
  // tables. On the MPK backend this SUCCEEDS — WRPKRU is unprivileged and
  // the shared mapping is reachable once PKRU is forged — returning the
  // stolen word; that is the backend's documented weaker isolation envelope,
  // pinned by the security tests. On EPTP the hypervisor validates the view
  // switch and on syscall the kernel validates the capability, so both
  // return PermissionDenied.
  sb::StatusOr<uint64_t> ProbeCrossDomainRead(mk::Thread* caller, ServerId server_id,
                                              hw::Gva va);

  // Folds the registry-backed counters into the snapshot struct.
  //
  // Consistency rule: safe to call concurrently with calls on other
  // threads. Each field is one atomic per-counter read, so every field is
  // individually monotonic and exact at its read point, but the snapshot is
  // NOT a consistent cut across counters — a call racing the fold may be
  // reflected in direct_calls and not yet in binding_lookup_hits (or vice
  // versa; fields are read in declaration order). The returned reference is
  // thread-local: it stays valid, and stable, until the same thread calls
  // stats() again.
  const SkyBridgeStats& stats() const;
  const SkyBridgeConfig& config() const { return config_; }
  mk::Kernel& kernel() { return *kernel_; }

  // ---- Revocation (fault model, DESIGN.md section 10) ----
  // Revokes the (client, server) binding: new calls and buffer acquisitions
  // are refused with PermissionDenied, every thread's cached route drops,
  // and the binding's EPTP-list entry is removed — immediately if the client
  // has no calls in flight, otherwise deferred until the client drains (the
  // EPTP list is never reshaped under a live call). Re-registering the pair
  // later revives the binding with a fresh calling key.
  sb::Status RevokeBinding(mk::Process* client, ServerId server_id);

  // Revokes every live client binding of `server_id` (chain origins
  // included): under consolidation this drains the whole shared-EPT sibling
  // set, and the last drained sibling drops the EPT's residency on every
  // core. NotFound for an unknown server id; ok (no-op) when the server has
  // no live clients.
  sb::Status RevokeServer(ServerId server_id);

  // Structural invariants the stress runner asserts between events: LRU
  // list consistency, cached-slot/EPTP-list agreement, per-client capacity,
  // revoked bindings uninstalled once drained, in-flight accounting, and
  // the Rootkernel's per-core EPTP mirrors. Returns the first violation.
  sb::Status CheckInvariants() const;

  // Calls currently between entry and return across all bindings. Zero at
  // quiesce; a nonzero value with no call on the stack is a leaked slice.
  uint64_t InFlightCalls() const;

  // Number of EPTP slots currently installed for a client (tests).
  sb::StatusOr<size_t> InstalledBindings(mk::Process* client) const;

  // The per-core EPTP slot currently holding the (client, server) binding's
  // EPT, or kNoEptpSlot when the binding is unknown or not resident on that
  // core (tests/benches: slot indices are virtualized, never architectural).
  uint32_t ResidentBindingSlot(mk::Process* client, ServerId server_id,
                               uint32_t core_id) const;

 private:
  // ---- Staged registration pipeline state (DESIGN.md section 17) ----
  // Per prepared process. Guarded by reg_mu_ (slow path only: registration,
  // code update, snapshot, exec-fault resolution).
  struct RegState {
    uint64_t pristine_hash = 0;           // Hash of the pre-rewrite image.
    std::vector<uint8_t> pristine_image;  // Pre-rewrite bytes (update diff).
    size_t image_pages = 0;
    uint64_t nonexec_mask = 0;  // Bit p set: page p awaits its lazy rewrite.
    std::vector<hw::Gpa> page_gpas;
    // EPTs mirroring the non-exec bits: the process's own EPT plus every
    // binding/chain EPT created while pages were still pending. A page's
    // rewrite flips it executable in all of them.
    std::vector<uint64_t> protect_epts;
    // Snippet sub-window pages written so far (va -> bytes), accumulated for
    // snapshot capture.
    std::map<hw::Gva, std::vector<uint8_t>> window_pages;
    // Cache key inserted per (pattern, page) by the last scrub — compared on
    // UpdateProcessCode so only dirtied pages invalidate their entries.
    std::map<uint32_t, std::vector<x86::RewriteCacheKey>> page_keys;
  };

  sb::Status EnsureProcessPrepared(mk::Process* process, CrossingBackendKind backend);
  // Mode dispatch: eager scrub, lazy arm, or (for UpdateProcessCode and the
  // snapshot fallback) the unconditional eager pass. reg_mu_ held.
  sb::Status RewriteProcessImage(mk::Process* process, CrossingBackendKind backend);
  sb::Status EagerPassLocked(mk::Process* process, CrossingBackendKind backend);
  // Finds-or-creates the process's RegState (pristine capture, page GPAs,
  // gpa_to_page_ index). reg_mu_ held.
  sb::StatusOr<RegState*> EnsureRegStateLocked(mk::Process* process);
  // The per-page scrub engine: runs every page in `page_mask` through the
  // content-hashed rewrite cache for `backend`'s pattern, applies patches,
  // maps/fills the per-page snippet sub-windows and writes the image back.
  // Charges rewrite_scan_page or rewrite_cache_replay per page on `core`.
  // reg_mu_ held.
  sb::Status ScrubPagesLocked(mk::Process* process, RegState& st,
                              CrossingBackendKind backend, uint64_t page_mask,
                              hw::Core& core);
  // Lazy mode: record RegState and drop exec from every code page in the
  // process's own EPT instead of scanning. reg_mu_ held.
  sb::Status ArmLazyLocked(mk::Process* process, CrossingBackendKind backend);
  // Drops exec on the server's still-pending pages in a freshly created
  // binding/chain EPT and enrolls it in protect_epts. No-op when the server
  // has no pending pages.
  sb::Status ProtectServerPagesInEpt(hw::Core& core, mk::Process* server,
                                     uint64_t ept_id);
  // reg_mu_-held bodies of the public snapshot API.
  sb::StatusOr<RegistrationSnapshot> SnapshotLocked(mk::Process* process);
  sb::Status RestoreLocked(mk::Process* process, const RegistrationSnapshot& snapshot);
  // Hot-path guard: when any process still has non-executable pages, touch
  // the pages this call is about to execute (client call site, server
  // handler entry, the tag-dispatched code path) and deliver exec faults.
  sb::Status EnsureCallExecutable(CallContext& ctx);
  sb::Status TouchExecPage(hw::Core& core, mk::Process* process, size_t page_index);
  // The exec-violation exit handler (Rootkernel -> mk -> here): rewrites the
  // faulting page through the cache and flips it executable everywhere.
  sb::Status HandleExecFault(hw::Core& core, hw::Gpa gpa);
  // Lazily creates the chain binding (origin's CR3 -> target server) used by
  // nested calls; kernel- and Rootkernel-mediated.
  sb::StatusOr<Binding*> GetOrCreateChainBinding(hw::Core& core, mk::Process* origin,
                                                 ServerId server_id);

  // ---- The call pipeline (shared by DirectServerCall / ...InPlace) ----
  // CallCommon builds a CallContext and drives it through the stages below;
  // the fault-recovery and gate logic lives once, in the shared pipeline.
  sb::StatusOr<mk::Message> CallCommon(mk::Thread* caller, ServerId server_id,
                                       const mk::Message* msg_in, uint64_t inplace_tag,
                                       uint64_t inplace_len, bool in_place,
                                       mk::CostBreakdown* bd);
  // Stage 1 — authorization: resolve the caller's binding through the
  // per-thread cache / hash index; reject unregistered or revoked pairs.
  sb::Status ResolveRoute(CallContext& ctx);
  // Stage 2 — request staging: slice resolution and (for the in-place API)
  // the borrowed request view over bytes already in the slice.
  sb::Status PrepareRequest(CallContext& ctx, const mk::Message* msg_in,
                            uint64_t inplace_tag, uint64_t inplace_len, bool in_place);
  // Stage 3 — origin binding: detect nested calls (chain binding) or
  // dispatch the caller onto its core.
  sb::Status BindOrigin(CallContext& ctx);
  // Stage 4 — arm the gate: entry-EPT capture, reinstall-if-evicted, LRU
  // touch, client trampoline leg + request copy, per-call key, stale-slot
  // retry loop. Leaves the route armed for the entry VMFUNC.
  sb::Status ArmGate(CallContext& ctx);
  // Stage 5 — server side + return gate: key check, handler, reply
  // validation and materialization, return VMFUNC.
  sb::StatusOr<mk::Message> ServeAndReturn(CallContext& ctx);

  // Live counters on the machine's telemetry registry (skybridge.*). Handles
  // are registered once in the constructor; the hot path only does relaxed
  // sharded adds. `metrics_.scan_threads` is a high-water gauge. The
  // routing/gate modules hold their own handles to the same registry
  // entries (GetCounter returns one shared instance per name).
  struct Metrics {
    sb::telemetry::Counter* direct_calls;
    sb::telemetry::Counter* long_calls;
    sb::telemetry::Counter* inplace_calls;
    sb::telemetry::Counter* inplace_replies;
    sb::telemetry::Counter* rejected_calls;
    sb::telemetry::Counter* timeouts;
    sb::telemetry::Counter* eptp_misses;
    sb::telemetry::Counter* rewritten_vmfuncs;
    sb::telemetry::Counter* processes_rewritten;
    sb::telemetry::Counter* lookup_hits;
    sb::telemetry::Counter* lookup_misses;
    sb::telemetry::Counter* scan_pages;
    sb::telemetry::Gauge* scan_threads;
    // Fault model & recovery.
    sb::telemetry::Counter* aborted_calls;
    sb::telemetry::Counter* gate_rejections;
    sb::telemetry::Counter* stale_slot_retries;
    sb::telemetry::Counter* revoked_rejections;
    sb::telemetry::Counter* bindings_revoked;
    // EPTP slot virtualization.
    sb::telemetry::Counter* slot_faults;
    // Per-core control plane.
    sb::telemetry::Counter* migration_installs;
    // Batched + async IPC.
    sb::telemetry::Counter* batched_calls;
    sb::telemetry::Counter* batch_flushes;
    sb::telemetry::Counter* drain_rounds;
    sb::telemetry::Gauge* ring_depth;  // High-water pending depth at flush.
    // Staged registration pipeline.
    sb::telemetry::Counter* exec_faults;
    sb::telemetry::Counter* lazy_rewrites;
    sb::telemetry::Counter* cache_hits;
    sb::telemetry::Counter* cache_misses;
    sb::telemetry::Counter* snapshot_restores;
    sb::telemetry::Counter* pages_rescanned;
  };

  // ---- Batch-ring connection state (host-side bookkeeping) ----
  // One per (binding, thread) connection that uses the batch API; the ring
  // itself lives in the connection's shared-buffer slice, this records the
  // host mirrors that never cross the EPT boundary.
  struct BatchConn {
    Binding* binding = nullptr;
    SliceRef slice;
    BatchRingView ring;
    uint64_t sq_tail = 0;           // Next token; mirrors the shared header.
    std::vector<uint8_t> busy;      // Slot submitted and not yet reaped.
    mk::Notification* notify = nullptr;  // Completion parking (WaitCompletion).
    bool wait_armed = false;        // A waiter parked; flush signals it.
  };
  // Resolves (and on first use creates, carving the ring) the caller's
  // batch connection to `server_id`. Refuses revoked bindings — used on the
  // submit path only.
  sb::StatusOr<BatchConn*> GetBatchConn(mk::Thread* caller, ServerId server_id);
  // Lookup without the revoked check (completions already in the ring stay
  // readable after revocation; the revoked flush posts through this too).
  BatchConn* FindBatchConn(const Binding* perm, int tid);
  // Posts PermissionDenied completions client-side for every pending entry
  // (revoked-binding flush: no crossing).
  void FailPendingClientSide(BatchConn& conn, sb::ErrorCode code);

  mk::Kernel* kernel_;
  SkyBridgeConfig config_;
  Metrics metrics_;
  // Registration-time key stream (calling keys). Slow path only: per-call
  // keys come from Gate::PerCallKey so the hot path shares no RNG state.
  sb::Rng key_rng_;
  TrampolineLayout trampoline_;
  hw::Gpa trampoline_gpa_ = 0;  // Shared trampoline code frame.
  // MPK-backend trampoline variant (WRPKRU gates), mapped at
  // mk::kMpkTrampolineVa alongside the VMFUNC one.
  TrampolineLayout mpk_trampoline_;
  hw::Gpa mpk_trampoline_gpa_ = 0;
  // Which gate patterns have been scrubbed from each prepared process:
  // bit 0 = VMFUNC (EPTP backend), bit 1 = WRPKRU (MPK backend). A process
  // serving/calling both backends gets both passes; UpdateProcessCode
  // re-runs every prepared pass on the new image.
  std::unordered_map<const mk::Process*, uint8_t> rewritten_patterns_;
  // ---- Staged registration pipeline (DESIGN.md section 17) ----
  // Slow-path lock for registration state; never taken on the steady-state
  // call path (EnsureCallExecutable bails on lazy_pending_ first).
  mutable std::mutex reg_mu_;
  std::unordered_map<const mk::Process*, RegState> reg_states_;
  // Page-aligned code GPA -> (process, page index) for exec-fault routing.
  std::unordered_map<uint64_t, std::pair<mk::Process*, size_t>> gpa_to_page_;
  // Processes that still have >= 1 non-executable code page. Zero in eager /
  // snapshot / drained-lazy steady state, making EnsureCallExecutable one
  // relaxed load.
  std::atomic<uint64_t> lazy_pending_{0};
  x86::RewriteCache rewrite_cache_;
  // Latency of the exec-fault slow path (fault delivery through rewrite).
  sb::telemetry::LatencyHistogram* phase_exec_fault_ = nullptr;
  // Snapshot library for kSnapshot mode, keyed by pristine image hash.
  std::unordered_map<uint64_t, RegistrationSnapshot> snapshot_library_;
  // Round-robin MPK protection-key allocator (keys 1..15; key 0 is the
  // default domain).
  uint8_t next_pkey_ = 0;
  std::vector<ServerEntry> servers_;
  RouteTable routes_;
  BufferPool buffers_;
  Gate gate_;
  // Fans out the registration-time code-page scans (slow path only).
  sb::ThreadPool scan_pool_;
  // Batch connections, keyed by (binding, tid). std::map keeps BatchConn
  // addresses stable across inserts; the mutex guards map shape only —
  // steady-state submit/poll/flush on an established connection touch only
  // that connection's own state (one host thread per connection, like the
  // slice it is carved from).
  std::map<std::pair<const Binding*, int>, BatchConn> batch_conns_;
  mutable std::mutex batch_mu_;
  std::function<void()> batch_refill_;
};

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_SKYBRIDGE_H_
